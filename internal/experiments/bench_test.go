package experiments

import (
	"testing"
)

// BenchmarkHotloopSweep is the top of the hot-loop stack for the committed
// BENCH_hotloop.json baseline (make bench): a small multi-seed Fig. 4(b)
// sweep fanned over the worker pool. One op = 2 seeds × 2 rates × 2
// schedulers = 8 full simulations; every one of their epoch loops runs the
// zero-allocation stepping path, so allocs/op here tracks only per-epoch and
// harness-level work.
func BenchmarkHotloopSweep(b *testing.B) {
	opts := Options{GridEdge: 4, WorkScale: 0.3}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := Fig4bMultiSeed(opts, []float64{100, 200}, 6, []int64{1, 2})
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 2 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}
