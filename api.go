// Package hotpotato is a pure-Go reproduction of "Thermal Management for
// S-NUCA Many-Cores via Synchronous Thread Rotations" (Shen, Niknam,
// Pathania, Pimentel — DATE 2023).
//
// It bundles, behind one import path, everything the paper builds on:
//
//   - an interval thermal simulator for S-NUCA many-cores (the HotSniper
//     substitute): grid floorplan, XY-routed NoC, S-NUCA cache hierarchy,
//     HotSpot-style RC thermal model with an exact matrix-exponential
//     transient solver, DVFS power model, and PARSEC-like workload models;
//   - the paper's analytical peak-temperature method for synchronous thread
//     rotations (Eqs. 4–11, Algorithm 1);
//   - the HotPotato scheduler (Algorithm 2) and its baselines: PCMig
//     (TSP-based DVFS + asynchronous migrations), a TSP-DVFS governor, a
//     static pinner, and a fixed synchronous rotation;
//   - harnesses regenerating every figure and table of the paper's
//     evaluation.
//
// Quick start:
//
//	plat, _ := hotpotato.NewPlatform(8, 8)       // the Table I 64-core chip
//	specs, _ := hotpotato.HomogeneousFullLoad(hotpotato.MustBenchmark("x264"), 64, []int{2, 4, 8})
//	tasks, _ := hotpotato.Instantiate(specs)
//	sched := hotpotato.NewHotPotatoScheduler(plat, 70)
//	res, _ := hotpotato.Run(plat, hotpotato.DefaultSimConfig(), sched, tasks)
//	fmt.Printf("makespan %.1f ms, peak %.1f °C\n", res.Makespan*1e3, res.PeakTemp)
//
// # The declarative v1 surface
//
// Everything above can also be driven by data instead of code. A RunSpec is
// the JSON description of one run (platform, sim, scheduler, workload
// sections — the same document POST /v1/run accepts); ExecuteSpec runs it.
// Specs have a canonical form and a content address:
//
//   - Canonicalize normalizes a spec (defaults applied, irrelevant fields
//     stripped, Version pinned) so that every equivalent spelling of a run
//     becomes one representation;
//   - SpecHash hashes that form ("sha256:…") — equal hashes mean equal
//     runs, which is what makes results cacheable by content and lets the
//     server answer repeated specs with ETag/304 instead of re-simulating.
//
// A SweepSpec lifts one RunSpec into a parameter study: a base document
// plus axes (platforms, workloads, schedulers, solvers, seeds) whose
// cross-product ExecuteSweep expands and runs over a bounded worker pool,
// emitting one SweepCellResult per cell in completion order. The wire
// records (SweepStarted, SweepResultRecord, SweepProgress, SweepSummary)
// are shared by `hotpotato-sim -sweep` and the server's streaming
// POST /v1/batch endpoint. docs/API.md specifies the documents, the
// hashing contract, and the HTTP surface.
//
// # Concurrency and determinism
//
// The package follows one contract, spelled out in docs/CONCURRENCY.md:
//
//   - Hardware models (Platform, ThermalModel, PeakCalculator, Benchmark)
//     are immutable after construction and safe to share across any number
//     of goroutines. A single Platform may back many concurrent Runs.
//   - Run-state objects (Simulation, Scheduler instances, Task,
//     TraceRecorder) are single-goroutine: build fresh ones per concurrent
//     run and never share an instance between two live simulations.
//   - Everything is deterministic: no package-level mutable state, no
//     shared rand sources, and the experiment harnesses (Fig4a, Fig4b, …)
//     fan their independent cells out over a bounded worker pool
//     (ExperimentOptions.Workers, default GOMAXPROCS) while collecting
//     results by index — output is bit-identical at any worker count.
package hotpotato

import (
	"context"
	"io"
	"log/slog"

	"repro/internal/experiments"
	"repro/internal/floorplan"
	"repro/internal/obs"
	"repro/internal/rotation"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/thermal"
	"repro/internal/tracerec"
	"repro/internal/workload"
)

// Core simulation types, re-exported from the internal toolkit.
type (
	// Platform bundles the hardware models of one simulated chip. It is
	// immutable after NewPlatform returns and safe to share across
	// concurrent simulations and goroutines.
	Platform = sim.Platform
	// PlatformConfig collects all substrate parameters. A plain value:
	// copy freely, one per NewPlatformFromConfig call.
	PlatformConfig = sim.PlatformConfig
	// SimConfig controls one simulation run (DTM threshold, slice, ...).
	// A plain value: copy freely; each Run gets its own copy.
	SimConfig = sim.Config
	// Result carries the metrics of a completed run. It is not written
	// after Run returns; treat it as read-only when sharing.
	Result = sim.Result
	// TaskStat is the per-task outcome inside a Result.
	TaskStat = sim.TaskStat
	// Scheduler is the policy plug-in interface. Implementations are
	// stateful and single-goroutine: build one instance per Simulation and
	// never share a live instance between two runs.
	Scheduler = sim.Scheduler
	// SchedulerState is the snapshot handed to a Scheduler. The simulator
	// hands each Scheduler private copies of the mutable slices.
	SchedulerState = sim.State
	// SchedulerDecision is a scheduler's thread→core mapping and DVFS answer.
	SchedulerDecision = sim.Decision
	// ThreadID identifies one thread of one task. A comparable value type.
	ThreadID = sim.ThreadID
	// ThreadInfo is the scheduler-visible view of one thread.
	ThreadInfo = sim.ThreadInfo
	// TraceFunc observes every simulation slice. It is called on the
	// goroutine driving Run, never concurrently with itself.
	TraceFunc = sim.TraceFunc
)

// Workload types.
type (
	// Benchmark is the interval-level model of one PARSEC application. A
	// plain value; copy and share freely.
	Benchmark = workload.Benchmark
	// Task is a live multi-threaded benchmark instance. Tasks carry run
	// state (progress, timestamps): instantiate a fresh set per simulation
	// and never feed the same Task objects to two Runs.
	Task = workload.Task
	// Spec describes one task of a mix before instantiation. A plain
	// value; reusable across any number of Instantiate calls.
	Spec = workload.Spec
)

// Rotation analytics (the paper's Algorithm 1).
type (
	// RotationPlan is a periodic power schedule: δ epochs of τ seconds.
	// Treated as read-only by the calculator; safe to share once built.
	RotationPlan = rotation.Plan
	// PeakCalculator evaluates rotation plans analytically. It is
	// immutable after construction — evaluations allocate their own
	// scratch — so one calculator may serve concurrent goroutines.
	// Against a sparse-mode thermal model it evaluates by certified
	// fixed-point iteration instead of the eigenbasis (same results
	// within rotation.DefaultIterTol; see Calculator.Iterative).
	PeakCalculator = rotation.Calculator
	// RotationResult is the detailed periodic steady state of a plan.
	RotationResult = rotation.Result
)

// Scheduler options.
type (
	// HotPotatoOption customises the HotPotato scheduler.
	HotPotatoOption = sched.HotPotatoOption
	// PCMigOption customises the PCMig baseline.
	PCMigOption = sched.PCMigOption
)

// Thermal solver backends, re-exported for PlatformConfig.Thermal.Solver
// (JSON: platform.thermal.solver). SolverAuto — also the zero value "" —
// picks dense below thermal.SparseAutoNodeThreshold nodes and sparse above;
// both backends agree to ≤ 1e-9 K. See docs/THEORY.md §"Sparse numerics".
const (
	SolverAuto   = thermal.SolverAuto
	SolverDense  = thermal.SolverDense
	SolverSparse = thermal.SolverSparse
)

// ValidateSolver checks a thermal solver name ("" is accepted as auto) and
// returns the same error RunSpec.Validate would report for it.
func ValidateSolver(name string) error { return thermal.ValidateSolver(name) }

// ErrTimeout reports that a run hit SimConfig.MaxTime before completing.
var ErrTimeout = sim.ErrTimeout

// ErrCanceled reports that a RunContext (or ExecuteSpec) was cancelled
// before completing; the partial Result returned alongside it is valid up to
// the moment of cancellation.
var ErrCanceled = sim.ErrCanceled

// NewPlatform builds the default (Table I) platform at the given grid size.
// The paper's evaluation chip is NewPlatform(8, 8); the motivational example
// uses NewPlatform(4, 4). The returned Platform is immutable and safe to
// share across concurrent simulations; construction itself is deterministic.
func NewPlatform(width, height int) (*Platform, error) {
	return sim.NewPlatform(sim.DefaultPlatformConfig(width, height))
}

// NewPlatformFromConfig builds a platform with customised substrates.
func NewPlatformFromConfig(cfg PlatformConfig) (*Platform, error) {
	return sim.NewPlatform(cfg)
}

// DefaultPlatformConfig returns the Table I parameters at a grid size.
func DefaultPlatformConfig(width, height int) PlatformConfig {
	return sim.DefaultPlatformConfig(width, height)
}

// DefaultSimConfig returns the §VI evaluation configuration: 70 °C DTM
// threshold, 0.5 ms scheduler epochs, 0.1 ms slices.
func DefaultSimConfig() SimConfig { return sim.DefaultConfig() }

// Run executes tasks under a scheduler on a platform and returns the
// metrics. It wraps sim.New + Run for the common case; use NewSimulation to
// attach a trace observer first.
//
// Concurrency: Run is safe to call from many goroutines at once provided
// each call gets its own Scheduler instance and Task set; the Platform may
// be shared. A run is deterministic — same platform, config, scheduler
// construction, and tasks always yield the same Result (only the host-time
// fields SchedulerHostTime vary).
func Run(plat *Platform, cfg SimConfig, s Scheduler, tasks []*Task) (*Result, error) {
	simulation, err := sim.New(plat, cfg, s, tasks)
	if err != nil {
		return nil, err
	}
	return simulation.Run()
}

// RunContext is Run with cooperative cancellation: the context is polled
// once per scheduler invocation, so a cancelled run stops within one
// scheduler epoch of simulated progress and returns its partial Result with
// an error wrapping ErrCanceled. Deadlines and client disconnects propagate
// the same way — this is what lets the serving layer abandon a simulation
// the moment its request goes away.
func RunContext(ctx context.Context, plat *Platform, cfg SimConfig, s Scheduler, tasks []*Task) (*Result, error) {
	simulation, err := sim.New(plat, cfg, s, tasks)
	if err != nil {
		return nil, err
	}
	return simulation.RunContext(ctx)
}

// Simulation is a prepared run that can be instrumented before starting.
// A Simulation is single-goroutine and single-shot: configure it, call Run
// once, and do not share the instance.
type Simulation = sim.Simulator

// NewSimulation prepares a run without starting it. See Run for the
// concurrency and determinism contract.
func NewSimulation(plat *Platform, cfg SimConfig, s Scheduler, tasks []*Task) (*Simulation, error) {
	return sim.New(plat, cfg, s, tasks)
}

// NewHotPotatoScheduler builds the paper's scheduler (Algorithm 2) for a
// platform and DTM threshold. The returned Scheduler is stateful (rotation
// phase, τ adaptation): build one per Simulation, never share an instance.
// Given the same sequence of states it makes the same decisions.
func NewHotPotatoScheduler(plat *Platform, tdtm float64, opts ...HotPotatoOption) Scheduler {
	return sched.NewHotPotato(plat, tdtm, opts...)
}

// WithRotationInterval sets HotPotato's initial τ (default 0.5 ms).
func WithRotationInterval(tau float64) HotPotatoOption { return sched.WithRotationInterval(tau) }

// WithHeadroom sets HotPotato's Δ headroom (default 1 °C).
func WithHeadroom(delta float64) HotPotatoOption { return sched.WithHeadroom(delta) }

// WithRotationBounds sets HotPotato's τ adaptation range.
func WithRotationBounds(min, max float64) HotPotatoOption {
	return sched.WithRotationBounds(min, max)
}

// NewHotPotatoDVFSScheduler builds the paper's §VII future-work extension:
// synchronous rotation unified with DVFS. It behaves like HotPotato until
// even the fastest rotation is predicted unsafe, then trims the chip
// frequency instead of riding the hardware DTM.
func NewHotPotatoDVFSScheduler(plat *Platform, tdtm float64, opts ...HotPotatoOption) Scheduler {
	return sched.NewHotPotatoDVFS(plat, tdtm, opts...)
}

// NewPCMigScheduler builds the state-of-the-art baseline (TSP DVFS +
// asynchronous migrations). Like all scheduler constructors here it returns
// a stateful single-run instance — one per Simulation.
func NewPCMigScheduler(tdtm float64, opts ...PCMigOption) Scheduler {
	return sched.NewPCMig(tdtm, opts...)
}

// NewStaticScheduler pins threads to cores at a fixed frequency (0 = peak).
func NewStaticScheduler(pins map[ThreadID]int, freq float64) Scheduler {
	return sched.NewStatic(pins, freq)
}

// NewTSPScheduler pins threads like NewStaticScheduler but budgets their
// power with TSP-driven DVFS.
func NewTSPScheduler(pins map[ThreadID]int, tdtm float64) Scheduler {
	return sched.NewTSPGovernor(pins, tdtm)
}

// NewRotationScheduler rotates threads synchronously around a core cycle at
// a fixed interval (the paper's Fig. 2(c) policy).
func NewRotationScheduler(slots map[ThreadID]int, cores []int, tau float64) (Scheduler, error) {
	return sched.NewRotationStatic(slots, cores, tau)
}

// TSPBudget computes the Thermal Safe Power budget [14] for a set of active
// cores at the given threshold.
func TSPBudget(plat *Platform, active []int, tdtm float64) float64 {
	return sched.TSPBudget(plat, active, tdtm)
}

// PARSEC returns the eight benchmark models of the paper's evaluation.
func PARSEC() []Benchmark { return workload.PARSEC() }

// BenchmarkByName looks up one PARSEC benchmark model.
func BenchmarkByName(name string) (Benchmark, error) { return workload.ByName(name) }

// MustBenchmark is BenchmarkByName but panics on unknown names; for
// examples and tests.
func MustBenchmark(name string) Benchmark {
	b, err := workload.ByName(name)
	if err != nil {
		panic(err)
	}
	return b
}

// NewTask instantiates a benchmark as a live task.
func NewTask(id int, b Benchmark, threads int, arrival, workScale float64) (*Task, error) {
	return workload.NewTask(id, b, threads, arrival, workScale)
}

// HomogeneousFullLoad builds the Fig. 4(a) closed-system workload.
func HomogeneousFullLoad(b Benchmark, totalThreads int, sizes []int) ([]Spec, error) {
	return workload.HomogeneousFullLoad(b, totalThreads, sizes)
}

// RandomMix builds the Fig. 4(b) open-system workload (Poisson arrivals).
// Deterministic for a fixed seed: the generator is a private rand source,
// so concurrent RandomMix calls never perturb each other.
func RandomMix(count int, arrivalRate float64, seed int64) ([]Spec, error) {
	return workload.RandomMix(count, arrivalRate, seed)
}

// Instantiate converts specs into live tasks. Call it once per simulation —
// Tasks carry run state and must not be shared between concurrent Runs.
func Instantiate(specs []Spec) ([]*Task, error) { return workload.Instantiate(specs) }

// NewPeakCalculator builds the Algorithm 1 peak-temperature calculator for a
// platform's thermal model (the design-time phase). The calculator is
// immutable and safe for concurrent evaluations from many goroutines.
func NewPeakCalculator(plat *Platform) *PeakCalculator {
	return rotation.NewCalculator(plat.Thermal)
}

// RotatePlan builds a rotation plan that cycles the base power vector's
// values around the given core sequence with epoch length tau.
func RotatePlan(tau float64, base []float64, cores []int) RotationPlan {
	return rotation.Rotate(tau, base, cores)
}

// Experiment harnesses (paper figure/table regeneration).
type (
	// Fig2Result holds the three motivational-example executions.
	Fig2Result = experiments.Fig2Result
	// Fig4aRow is one benchmark of the homogeneous comparison.
	Fig4aRow = experiments.Fig4aRow
	// Fig4bRow is one load level of the heterogeneous comparison.
	Fig4bRow = experiments.Fig4bRow
	// ExperimentOptions scales experiments (zero value = paper scale) and
	// bounds the sweep worker pool via its Workers field (0 = GOMAXPROCS).
	// Results are bit-identical at any Workers value.
	ExperimentOptions = experiments.Options
	// OverheadResult reports scheduler run-time cost.
	OverheadResult = experiments.OverheadResult
)

// Fig2 regenerates the paper's motivational example (Fig. 2a–c). The three
// policy executions run concurrently on isolated platforms; the result is
// deterministic.
func Fig2(traceStride int) (*Fig2Result, error) { return experiments.Fig2(traceStride) }

// Fig4a regenerates the homogeneous full-load comparison (Fig. 4a). Its
// benchmark × scheduler cells fan out over opts.Workers goroutines; rows
// are ordered and bit-identical at any worker count.
func Fig4a(opts ExperimentOptions) ([]Fig4aRow, error) { return experiments.Fig4a(opts) }

// Fig4b regenerates the heterogeneous open-system comparison (Fig. 4b).
// Deterministic for a fixed seed; the rate × scheduler cells fan out over
// opts.Workers goroutines without affecting the output.
func Fig4b(opts ExperimentOptions, rates []float64, taskCount int, seed int64) ([]Fig4bRow, error) {
	return experiments.Fig4b(opts, rates, taskCount, seed)
}

// Overhead measures HotPotato's run-time cost on the 64-core platform
// (paper §VI: 23.76 µs per decision). Deliberately serial — it reports host
// wall-clock timings, which parallel cells would inflate — so its numbers
// (and only its numbers) vary with the host machine and load.
func Overhead() (*OverheadResult, error) { return experiments.Overhead() }

// TraceRecorder collects per-slice traces (temperatures, powers,
// frequencies) from a Simulation and exports CSV files and summaries.
type TraceRecorder = tracerec.Recorder

// NewTraceRecorder creates a recorder keeping every stride-th slice; install
// it with Simulation.SetTrace(rec.Hook()).
func NewTraceRecorder(stride int) (*TraceRecorder, error) { return tracerec.New(stride) }

// Observability types (docs/OBSERVABILITY.md).
type (
	// EpochEvent is one structured record per scheduler epoch: the mapping
	// and frequencies chosen, the temperatures at the decision instant, and
	// the decision's cost (migrations, host wall-clock).
	EpochEvent = obs.EpochEvent
	// EpochTracer receives one EpochEvent per scheduler epoch; install it
	// with Simulation.SetEpochTracer before Run. It is called on the
	// goroutine driving the simulation, never concurrently with itself.
	EpochTracer = obs.Tracer
	// RingTracer is the bounded EpochTracer: a concurrency-safe ring buffer
	// that overwrites the oldest epochs once full, so tracing a long run
	// costs fixed memory.
	RingTracer = obs.RingTracer
	// MetricsRegistry holds named counters, gauges and histograms and
	// renders them as Prometheus text or a JSON-encodable snapshot.
	MetricsRegistry = obs.Registry
	// Span is one live timed phase of a run; close it with End. Spans are
	// nil-safe: every method no-ops on a nil receiver, so uninstrumented
	// paths need no conditionals.
	Span = obs.Span
	// SpanRecorder is the bounded in-memory store the spans of one run
	// record into; export with WriteJSONL or Tree.
	SpanRecorder = obs.SpanRecorder
	// SpanRecord is the exported plain-data view of one span.
	SpanRecord = obs.SpanRecord
	// SpanNode is one node of an assembled span tree.
	SpanNode = obs.SpanNode
	// RunProfile is the wall-clock breakdown of one served run
	// (total/queue/build/decide/step), embedded in job responses.
	RunProfile = obs.RunProfile
)

// NewRingTracer returns a tracer retaining the last `capacity` epochs
// (capacity ≤ 0 selects obs.DefaultTraceDepth, 4096 — about 2 s of simulated
// time at the paper's 0.5 ms epochs).
func NewRingTracer(capacity int) *RingTracer { return obs.NewRingTracer(capacity) }

// Metrics returns the process-wide metrics registry that the simulator,
// schedulers, rotation evaluator and serving layer all register into. Serve
// it with WriteMetrics or Registry.Snapshot.
func Metrics() *MetricsRegistry { return obs.Default() }

// WriteMetrics renders every registered metric in Prometheus text exposition
// format — what the hotpotato-server GET /metrics endpoint serves.
func WriteMetrics(w io.Writer) error { return obs.Default().WritePrometheus(w) }

// NewSpanRecorder returns a span recorder retaining up to `capacity` spans
// (capacity ≤ 0 selects obs.DefaultSpanDepth, 8192). Put its root span into a
// context with ContextWithSpan and pass that to RunContext/ExecuteSpec: the
// library records one child span per phase (workload_build, simulate) and per
// scheduler epoch — never per slice, so the hot loop stays allocation-free.
func NewSpanRecorder(capacity int) *SpanRecorder { return obs.NewSpanRecorder(capacity) }

// ContextWithSpan returns a context carrying s as the current span; library
// phases executed under that context record as children of s.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	return obs.ContextWithSpan(ctx, s)
}

// SpanFromContext returns the context's current span, or nil (which every
// Span method tolerates) when the context is uninstrumented.
func SpanFromContext(ctx context.Context) *Span { return obs.SpanFromContext(ctx) }

// StartSpan starts a child of the context's current span and returns a
// context carrying it; on an uninstrumented context it returns (ctx, nil).
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	return obs.StartSpan(ctx, name)
}

// NewLogger builds the structured logger shared by the binaries' -log-level /
// -log-format flags: level is debug/info/warn/error, format json or text.
func NewLogger(w io.Writer, level, format string) (*slog.Logger, error) {
	return obs.NewLogger(w, level, format)
}

// NopLogger returns a logger that discards every record — the safe default
// for library callers that have no logging destination yet.
func NopLogger() *slog.Logger { return obs.NopLogger() }

// ContextWithLogger returns a context carrying l; the simulator emits its
// per-run debug summary through it (obs.LoggerFrom falls back to a no-op
// logger on uninstrumented contexts).
func ContextWithLogger(ctx context.Context, l *slog.Logger) context.Context {
	return obs.ContextWithLogger(ctx, l)
}

// LoggerFromContext returns the context's logger, or a no-op logger when the
// context is uninstrumented.
func LoggerFromContext(ctx context.Context) *slog.Logger { return obs.LoggerFrom(ctx) }

// EpochHeatmapRecorder converts a run's epoch-event trace into a
// TraceRecorder, so the heatmap/CSV exports work from an EpochTracer exactly
// as they do from a per-slice trace hook.
func EpochHeatmapRecorder(events []EpochEvent) (*TraceRecorder, error) {
	return tracerec.FromEpochEvents(events)
}

// NewStackedPlatformThermal builds the 3D-stacked RC thermal model of the
// §VII future-work exploration: `layers` core layers over a width×height
// grid, only the top layer adjacent to the heatsink path. The returned model
// plugs into NewPeakCalculatorForModel unchanged.
func NewStackedPlatformThermal(width, height, layers int) (*ThermalModel, error) {
	fp, err := floorplan.New(width, height, 0.0009)
	if err != nil {
		return nil, err
	}
	return thermal.NewStacked(fp, thermal.DefaultStackedConfig(layers))
}

// ThermalModel is the RC thermal network (planar or 3D-stacked).
type ThermalModel = thermal.Model

// NewPeakCalculatorForModel builds the Algorithm 1 calculator directly over
// a thermal model (use for 3D-stacked models; NewPeakCalculator covers the
// planar platform case).
func NewPeakCalculatorForModel(m *ThermalModel) *PeakCalculator {
	return rotation.NewCalculator(m)
}

// StackedCoreID returns the core ID of (layer, position) in a stacked model
// whose layers hold perLayer cores each.
func StackedCoreID(layer, position, perLayer int) int {
	return thermal.StackedCoreID(layer, position, perLayer)
}

// BenchmarksFromJSON decodes custom benchmark models from r (see
// internal/workload's JSON schema: name, nominal_watts, base_cpi, mpki,
// work, phases).
func BenchmarksFromJSON(r io.Reader) ([]Benchmark, error) { return workload.FromJSON(r) }

// BenchmarksToJSON encodes benchmark models in the BenchmarksFromJSON schema.
func BenchmarksToJSON(w io.Writer, benchmarks []Benchmark) error {
	return workload.ToJSON(w, benchmarks)
}

// HeatmapASCII renders a per-core temperature vector as an ASCII grid with a
// legend; lo and hi bound the glyph ramp.
func HeatmapASCII(temps []float64, width, height int, lo, hi float64) (string, error) {
	return tracerec.Heatmap(temps, width, height, lo, hi)
}

// NewReactiveScheduler builds the naive feedback baseline: a per-core
// ondemand-style thermal governor with no model or prediction.
func NewReactiveScheduler(tdtm float64) Scheduler {
	return sched.NewReactive(tdtm)
}
