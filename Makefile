# Convenience targets for the hotpotato reproduction.

GO ?= go

# Benchtime for the hot-loop baseline; CI overrides with BENCHTIME=1x for a
# smoke run, a committed baseline should use the default statistical run.
BENCHTIME ?= 1s

.PHONY: all build test test-short race bench bench-compare bench-all experiments vet fmt cover serve

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Race-detector pass over the short suite — validates docs/CONCURRENCY.md.
race:
	$(GO) test -short -race ./...

cover:
	$(GO) test -cover ./...

# Run the HTTP simulation service (docs/SERVICE.md) on :8080.
serve:
	$(GO) run ./cmd/hotpotato-server

# Regenerate every paper table & figure (tables to stdout).
experiments:
	$(GO) run ./cmd/experiments -exp all

# Hot-loop perf trajectory: kernel (matrix/thermal), epoch (sim), ring-scan
# (rotation) and sweep (experiments) benchmarks → BENCH_hotloop.json
# (docs/PERFORMANCE.md describes the format).
bench:
	$(GO) test -run '^$$' -bench '^BenchmarkHotloop' -benchmem -benchtime $(BENCHTIME) ./... \
		| $(GO) run ./cmd/benchjson -out BENCH_hotloop.json
	@echo "wrote BENCH_hotloop.json"

# Re-run the hot-loop suite and diff it against the committed baseline;
# fails when any shared benchmark's ns/op regressed more than 10%
# (benchjson -compare). The fresh run is left in /tmp, the committed
# BENCH_hotloop.json is untouched. Run with the default statistical
# BENCHTIME on the same class of machine as the baseline: a BENCHTIME=1x
# smoke run is warm-up-dominated and will report phantom regressions.
bench-compare:
	$(GO) test -run '^$$' -bench '^BenchmarkHotloop' -benchmem -benchtime $(BENCHTIME) ./... \
		| $(GO) run ./cmd/benchjson -out /tmp/bench_hotloop_new.json
	$(GO) run ./cmd/benchjson -compare BENCH_hotloop.json /tmp/bench_hotloop_new.json

# One testing.B benchmark per paper table/figure.
bench-all:
	$(GO) test -bench=. -benchmem -benchtime 1x -run '^$$' ./...
