// Command thermal-trace runs one simulation and streams the per-core
// temperature trace as CSV — the raw material of the paper's Fig. 2 plots.
//
// Example:
//
//	thermal-trace -grid 4 -bench blackscholes -threads 2 -sched rotation > trace.csv
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	hotpotato "repro"
)

func main() {
	grid := flag.Int("grid", 4, "chip edge length")
	bench := flag.String("bench", "blackscholes", "PARSEC benchmark")
	threads := flag.Int("threads", 2, "threads of the single task")
	schedName := flag.String("sched", "rotation", "scheduler: static|tsp|rotation|hotpotato|pcmig")
	tau := flag.Float64("tau", 0.5e-3, "rotation interval for -sched rotation/hotpotato")
	stride := flag.Int("stride", 5, "output every N-th slice")
	flag.Parse()

	plat, err := hotpotato.NewPlatform(*grid, *grid)
	if err != nil {
		log.Fatal(err)
	}
	b, err := hotpotato.BenchmarkByName(*bench)
	if err != nil {
		log.Fatal(err)
	}
	task, err := hotpotato.NewTask(0, b, *threads, 0, 1)
	if err != nil {
		log.Fatal(err)
	}

	// Pin threads to the lowest-AMD cores for the static policies.
	rings := plat.FP.Rings()
	var pinCores []int
	for _, ring := range rings {
		pinCores = append(pinCores, ring.Cores...)
	}
	pins := map[hotpotato.ThreadID]int{}
	slots := map[hotpotato.ThreadID]int{}
	inner := rings[0].Cores
	for i := 0; i < *threads; i++ {
		pins[hotpotato.ThreadID{Task: 0, Thread: i}] = pinCores[i]
		slots[hotpotato.ThreadID{Task: 0, Thread: i}] = (i * len(inner) / max(*threads, 1)) % len(inner)
	}

	var sch hotpotato.Scheduler
	cfg := hotpotato.DefaultSimConfig()
	switch *schedName {
	case "static":
		cfg.DTMEnabled = false
		sch = hotpotato.NewStaticScheduler(pins, 0)
	case "tsp":
		sch = hotpotato.NewTSPScheduler(pins, cfg.TDTM)
	case "rotation":
		sch, err = hotpotato.NewRotationScheduler(slots, inner, *tau)
		if err != nil {
			log.Fatal(err)
		}
	case "hotpotato":
		sch = hotpotato.NewHotPotatoScheduler(plat, cfg.TDTM, hotpotato.WithRotationInterval(*tau))
	case "pcmig":
		sch = hotpotato.NewPCMigScheduler(cfg.TDTM)
	default:
		log.Fatalf("unknown scheduler %q", *schedName)
	}

	s, err := hotpotato.NewSimulation(plat, cfg, sch, []*hotpotato.Task{task})
	if err != nil {
		log.Fatal(err)
	}

	rec, err := hotpotato.NewTraceRecorder(*stride)
	if err != nil {
		log.Fatal(err)
	}
	s.SetTrace(rec.Hook())
	res, err := s.Run()
	if err != nil {
		log.Fatal(err)
	}
	if err := rec.WriteTemperatureCSV(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "response %.1f ms, peak %.2f °C, %d migrations, trace %s\n",
		res.AvgResponse*1e3, res.PeakTemp, res.Migrations, rec.TempSummary())
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
