package matrix

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Golden property: the destination-passing kernels are bit-identical to their
// allocating twins across random seeds — same arithmetic, same order, so the
// hot loop can switch between them without perturbing simulation output.

func randomVec(r *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = r.NormFloat64()
	}
	return v
}

func bitIdentical(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestPropMulVecToBitIdenticalToMulVec(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows, cols := 1+r.Intn(40), 1+r.Intn(40)
		m := randomDense(r, rows, cols)
		x := randomVec(r, cols)
		dst := randomVec(r, rows) // stale garbage must be fully overwritten
		m.MulVecTo(dst, x)
		return bitIdentical(dst, m.MulVec(x))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPropVecSubToBitIdenticalToVecSub(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(64)
		a, b := randomVec(r, n), randomVec(r, n)
		dst := make([]float64, n)
		VecSubTo(dst, a, b)
		if !bitIdentical(dst, VecSub(a, b)) {
			return false
		}
		// Aliasing dst == a is allowed and must give the same answer.
		want := VecSub(a, b)
		VecSubTo(a, a, b)
		return bitIdentical(a, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPropMulToBitIdenticalToMul(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows, inner, cols := 1+r.Intn(12), 1+r.Intn(12), 1+r.Intn(12)
		a := randomDense(r, rows, inner)
		b := randomDense(r, inner, cols)
		dst := randomDense(r, rows, cols) // stale garbage
		a.MulTo(dst, b)
		want := a.Mul(b)
		for i := range dst.data {
			if dst.data[i] != want.data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPropExpmEigenToBitIdenticalToExpmEigen(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(8)
		aDiag := make([]float64, n)
		for i := range aDiag {
			aDiag[i] = 0.5 + r.Float64()
		}
		ge, err := SymDefEigen(aDiag, randomSPD(r, n))
		if err != nil {
			return false
		}
		neg := VecScale(-1, ge.Lambda)
		tstep := 1e-4 + r.Float64()*1e-3
		want := ExpmEigen(ge.V, neg, ge.VInv, tstep)
		dst, scratch := New(n, n), New(n, n)
		ExpmEigenTo(dst, scratch, ge.V, neg, ge.VInv, tstep)
		for i := range dst.data {
			if dst.data[i] != want.data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestDestinationKernelsZeroAllocs(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	const n = 129 // 8×8 chip: N = 2·64 + 1 thermal nodes
	m := randomDense(r, n, n)
	x := randomVec(r, n)
	dst := make([]float64, n)
	if a := testing.AllocsPerRun(100, func() { m.MulVecTo(dst, x) }); a != 0 {
		t.Errorf("MulVecTo allocates %v per run, want 0", a)
	}
	b := randomVec(r, n)
	if a := testing.AllocsPerRun(100, func() { VecSubTo(dst, x, b) }); a != 0 {
		t.Errorf("VecSubTo allocates %v per run, want 0", a)
	}
	md, ms := New(n, n), New(n, n)
	lambda := randomVec(r, n)
	if a := testing.AllocsPerRun(5, func() { ExpmEigenTo(md, ms, m, lambda, m, 1e-4) }); a != 0 {
		t.Errorf("ExpmEigenTo allocates %v per run, want 0", a)
	}
}

func TestMulVecToShapePanics(t *testing.T) {
	m := New(3, 4)
	for _, tc := range []struct {
		name   string
		dst, x []float64
	}{
		{"short dst", make([]float64, 2), make([]float64, 4)},
		{"short x", make([]float64, 3), make([]float64, 3)},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: MulVecTo did not panic", tc.name)
				}
			}()
			m.MulVecTo(tc.dst, tc.x)
		}()
	}
}

// --- hot-loop kernel baseline (make bench → BENCH_hotloop.json) -------------

func benchKernelSetup(b *testing.B) (*Dense, []float64, []float64) {
	b.Helper()
	r := rand.New(rand.NewSource(11))
	const n = 129
	return randomDense(r, n, n), randomVec(r, n), make([]float64, n)
}

func BenchmarkHotloopMulVecAlloc(b *testing.B) {
	m, x, _ := benchKernelSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.MulVec(x)
	}
}

func BenchmarkHotloopMulVecTo(b *testing.B) {
	m, x, dst := benchKernelSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MulVecTo(dst, x)
	}
}
