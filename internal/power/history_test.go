package power

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewHistoryValidation(t *testing.T) {
	if _, err := NewHistory(0); err == nil {
		t.Error("zero window accepted")
	}
	if _, err := NewHistory(-1); err == nil {
		t.Error("negative window accepted")
	}
}

func TestEmptyHistoryUsesFallback(t *testing.T) {
	h, err := NewHistory(DefaultWindow)
	if err != nil {
		t.Fatal(err)
	}
	if got := h.Average(4.2); got != 4.2 {
		t.Errorf("empty Average = %v, want fallback", got)
	}
	if h.Span() != 0 {
		t.Errorf("empty Span = %v", h.Span())
	}
}

func TestAverageTimeWeighted(t *testing.T) {
	h, _ := NewHistory(10e-3)
	h.Record(6e-3, 2) // 6 ms at 2 W
	h.Record(2e-3, 8) // 2 ms at 8 W
	want := (6e-3*2 + 2e-3*8) / 8e-3
	if got := h.Average(0); math.Abs(got-want) > 1e-12 {
		t.Errorf("Average = %v, want %v", got, want)
	}
	if math.Abs(h.Span()-8e-3) > 1e-15 {
		t.Errorf("Span = %v", h.Span())
	}
}

func TestEvictionBeyondWindow(t *testing.T) {
	h, _ := NewHistory(10e-3)
	h.Record(10e-3, 10) // fills the window
	h.Record(10e-3, 2)  // fully displaces the first sample
	if got := h.Average(0); math.Abs(got-2) > 1e-12 {
		t.Errorf("Average = %v, want 2 after full displacement", got)
	}
}

func TestPartialEvictionTrimsBoundarySample(t *testing.T) {
	h, _ := NewHistory(10e-3)
	h.Record(8e-3, 0)
	h.Record(4e-3, 6)
	// Window now holds 6 ms of the 0 W sample and 4 ms of the 6 W sample.
	want := (6e-3*0 + 4e-3*6) / 10e-3
	if got := h.Average(0); math.Abs(got-want) > 1e-12 {
		t.Errorf("Average = %v, want %v", got, want)
	}
	if math.Abs(h.Span()-10e-3) > 1e-15 {
		t.Errorf("Span = %v, want full window", h.Span())
	}
}

func TestZeroDurationIgnored(t *testing.T) {
	h, _ := NewHistory(10e-3)
	h.Record(0, 100)
	h.Record(-1e-3, 100)
	if got := h.Average(1); got != 1 {
		t.Errorf("Average = %v, want fallback (nothing recorded)", got)
	}
}

func TestReset(t *testing.T) {
	h, _ := NewHistory(10e-3)
	h.Record(5e-3, 3)
	h.Reset()
	if h.Span() != 0 || h.Average(7) != 7 {
		t.Error("Reset did not clear the history")
	}
}

// Record runs once per live thread per simulation slice. Once the window is
// full at a fixed cadence, the compacting buffer must stop allocating —
// before the head-index rework, the evicted-prefix reslice made append
// reallocate the backing array forever.
func TestRecordZeroAllocsInSteadyState(t *testing.T) {
	h, _ := NewHistory(DefaultWindow)
	const dt = 0.1e-3
	for i := 0; i < 400; i++ { // several windows' worth of warmup
		h.Record(dt, 5)
	}
	a := testing.AllocsPerRun(1000, func() { h.Record(dt, 5) })
	if a != 0 {
		t.Errorf("steady-state Record allocates %v per call, want 0", a)
	}
}

// Compaction must preserve the window contents exactly: a compacting history
// reports the same average as a freshly rebuilt one at every step.
func TestRecordCompactionPreservesWindow(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	h, _ := NewHistory(5e-3)
	type rec struct{ d, w float64 }
	var all []rec
	for i := 0; i < 500; i++ {
		s := rec{d: r.Float64()*0.5e-3 + 1e-6, w: r.Float64() * 10}
		all = append(all, s)
		h.Record(s.d, s.w)
		fresh, _ := NewHistory(5e-3)
		for _, e := range all {
			fresh.Record(e.d, e.w)
		}
		if got, want := h.Average(0), fresh.Average(0); math.Abs(got-want) > 1e-12 {
			t.Fatalf("step %d: compacted Average = %v, fresh rebuild = %v", i, got, want)
		}
	}
}

// Property: Average lies within [min, max] of the recorded sample powers.
func TestPropAverageBounded(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		h, err := NewHistory(10e-3)
		if err != nil {
			return false
		}
		lo, hi := math.Inf(1), math.Inf(-1)
		n := 1 + r.Intn(20)
		for i := 0; i < n; i++ {
			w := r.Float64() * 10
			h.Record(r.Float64()*3e-3, w)
			if w < lo {
				lo = w
			}
			if w > hi {
				hi = w
			}
		}
		avg := h.Average(0)
		return avg >= lo-1e-9 && avg <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: span never exceeds the window.
func TestPropSpanBoundedByWindow(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		h, err := NewHistory(5e-3)
		if err != nil {
			return false
		}
		for i := 0; i < 30; i++ {
			h.Record(r.Float64()*2e-3, r.Float64()*10)
		}
		return h.Span() <= 5e-3+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: constant-power recording always averages to that power.
func TestPropConstantPowerAverage(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		h, err := NewHistory(10e-3)
		if err != nil {
			return false
		}
		w := r.Float64() * 12
		for i := 0; i < 25; i++ {
			h.Record(r.Float64()*2e-3+1e-6, w)
		}
		return math.Abs(h.Average(0)-w) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
