package experiments

import (
	"fmt"
	"io"
)

// CSV emitters: gnuplot/pandas-ready flat files for every figure, so the
// paper's plots can be regenerated outside Go.

// WriteFig2TracesCSV writes the three Fig. 2 thermal traces side by side:
// time_ms, unmanaged_C, tsp_C, rotation_C. The result must have been
// produced with a positive trace stride.
func WriteFig2TracesCSV(w io.Writer, res *Fig2Result) error {
	n := len(res.None.Trace)
	if len(res.TSP.Trace) < n {
		n = len(res.TSP.Trace)
	}
	if len(res.Rotation.Trace) < n {
		n = len(res.Rotation.Trace)
	}
	if n == 0 {
		return fmt.Errorf("experiments: Fig2 result carries no traces (run Fig2 with a stride)")
	}
	if _, err := fmt.Fprintln(w, "time_ms,unmanaged_C,tsp_C,rotation_C"); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		if _, err := fmt.Fprintf(w, "%.3f,%.3f,%.3f,%.3f\n",
			res.None.Trace[i].Time*1e3,
			res.None.Trace[i].MaxTemp,
			res.TSP.Trace[i].MaxTemp,
			res.Rotation.Trace[i].MaxTemp); err != nil {
			return err
		}
	}
	return nil
}

// WriteFig4aCSV writes the homogeneous comparison as CSV.
func WriteFig4aCSV(w io.Writer, rows []Fig4aRow) error {
	if _, err := fmt.Fprintln(w, "benchmark,hotpotato_ms,pcmig_ms,normalized,speedup_pct,hotpotato_J,pcmig_J"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%s,%.3f,%.3f,%.4f,%.2f,%.3f,%.3f\n",
			r.Benchmark, r.HotPotatoMakespan*1e3, r.PCMigMakespan*1e3,
			r.NormalizedMakespan, r.SpeedupPercent, r.HotPotatoEnergy, r.PCMigEnergy); err != nil {
			return err
		}
	}
	return nil
}

// WriteFig4bCSV writes the heterogeneous comparison as CSV.
func WriteFig4bCSV(w io.Writer, rows []Fig4bRow) error {
	if _, err := fmt.Fprintln(w, "arrival_rate,hotpotato_ms,pcmig_ms,speedup_pct"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%.1f,%.3f,%.3f,%.2f\n",
			r.ArrivalRate, r.HotPotatoResponse*1e3, r.PCMigResponse*1e3, r.SpeedupPercent); err != nil {
			return err
		}
	}
	return nil
}

// WriteTauSweepCSV writes the τ ablation as CSV.
func WriteTauSweepCSV(w io.Writer, rows []TauSweepRow) error {
	if _, err := fmt.Fprintln(w, "tau_ms,response_ms,peak_C,migrations"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%.3f,%.3f,%.3f,%d\n",
			r.Tau*1e3, r.Response*1e3, r.PeakTemp, r.Migrations); err != nil {
			return err
		}
	}
	return nil
}
