package experiments

import (
	"repro/internal/floorplan"
	"repro/internal/matrix"
	"repro/internal/rotation"
	"repro/internal/thermal"
)

// ThreeDRow is one policy of the 3D future-work exploration.
type ThreeDRow struct {
	Policy string
	Peak   float64 // °C, Algorithm 1 steady-periodic peak
}

// ThreeDResult explores the paper's §VII 3D direction analytically on a
// two-layer stacked 4×4 chip: a hot thread placed on the buried layer is
// evaluated pinned, rotating horizontally within its layer's centre ring,
// rotating vertically with the core stacked above it, and rotating through
// both layers' centre rings.
type ThreeDResult struct {
	Rows         []ThreeDRow
	BuriedHotter float64 // buried−top steady gap at uniform power, K
}

// ThreeD runs the 3D exploration.
func ThreeD() (*ThreeDResult, error) {
	fp := floorplan.MustNew(4, 4, 0.0009)
	m, err := thermal.NewStacked(fp, thermal.DefaultStackedConfig(2))
	if err != nil {
		return nil, err
	}
	calc := rotation.NewCalculator(m)
	const perLayer = 16

	// Layer asymmetry at uniform 2 W.
	uniform := matrix.Constant(32, 2)
	ss := m.SteadyState(uniform)
	gap := ss[thermal.StackedCoreID(0, 5, perLayer)] - ss[thermal.StackedCoreID(1, 5, perLayer)]

	base := matrix.Constant(32, 0.3)
	buried5 := thermal.StackedCoreID(0, 5, perLayer)
	base[buried5] = 9

	// Horizontal ring on the buried layer (centre cores 5,6,10,9).
	horiz := []int{
		thermal.StackedCoreID(0, 5, perLayer),
		thermal.StackedCoreID(0, 6, perLayer),
		thermal.StackedCoreID(0, 10, perLayer),
		thermal.StackedCoreID(0, 9, perLayer),
	}
	// Vertical pair: buried core 5 and the core directly above.
	vert := []int{buried5, thermal.StackedCoreID(1, 5, perLayer)}
	// Both layers' centre rings (8 cores).
	both := append(append([]int(nil), horiz...),
		thermal.StackedCoreID(1, 5, perLayer),
		thermal.StackedCoreID(1, 6, perLayer),
		thermal.StackedCoreID(1, 10, perLayer),
		thermal.StackedCoreID(1, 9, perLayer),
	)

	policies := []struct {
		name string
		plan rotation.Plan
	}{
		{"pinned buried", rotation.Plan{Tau: 0.5e-3, Powers: [][]float64{base}}},
		{"horizontal ring (buried layer)", rotation.Rotate(0.5e-3, base, horiz)},
		{"vertical pair", rotation.Rotate(0.5e-3, base, vert)},
		{"both layers' rings", rotation.Rotate(0.5e-3, base, both)},
	}

	res := &ThreeDResult{BuriedHotter: gap}
	for _, p := range policies {
		peak, err := calc.PeakTemperature(p.plan)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, ThreeDRow{Policy: p.name, Peak: peak})
	}
	return res, nil
}
