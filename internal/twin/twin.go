// Package twin is the analytical surrogate ("digital twin") of the
// simulator: a closed-form + fitted model that predicts the peak
// steady-state temperature, the transient peak temperature, and the
// makespan of a run in microseconds instead of the milliseconds-to-seconds
// a full interval simulation costs. The serving tier exposes it as
// POST /v1/predict, the batch path uses it to prune sweep cells whose
// outcome is certain either way, and HotPotato can consult it as a Decide
// pre-filter that falls back to Algorithm 1 whenever the bound is
// inconclusive.
//
// The twin is calibrated offline against the full simulator over a seeded
// design grid (see the root package's CalibrateTwin); the artifact is a
// versioned JSON document with its own content hash, committed to the
// repository and loaded at server start. Every estimate travels with a
// conservative confidence bound — the maximum residual observed against the
// simulator during calibration, inflated by a safety factor and a
// small-sample penalty — and the differential property suite
// (twin_diff_test.go) holds the twin to exactly that contract:
// |twin − simulator| ≤ bound on seeded out-of-calibration samples. The
// theory and the bound construction are documented in docs/THEORY.md
// §"Surrogate model and error bounds".
//
// The package is deliberately dependency-light: it knows nothing about
// RunSpecs, platforms, or the simulator. Callers reduce a run to a numeric
// Case (per-core power fields plus a closed-form horizon) and ground truth
// to an Observation; package twin only fits and evaluates.
package twin

import (
	"fmt"
	"math"
)

// Case is one prediction (or calibration) point, fully reduced to numbers:
// the grid geometry, the per-core power fields a run induces, and the
// closed-form timing of its workload. The root package derives a Case from
// an in-domain RunSpec; the twin never sees the spec itself.
type Case struct {
	// Width and Height are the core grid dimensions (the platform bucket).
	Width, Height int
	// Ambient is the ambient temperature in °C.
	Ambient float64
	// HotPower is the per-core power (W) with every thread of every task
	// executing its hottest phase simultaneously — the spatial worst case.
	// The steady-state prediction is the steady peak of this field.
	HotPower []float64
	// AvgPower is the per-core power (W) averaged over the run's horizon:
	// each thread duty-cycled by the fraction of the run it actually
	// executes (serial phases idle the workers, barriers idle the fast
	// threads, arrival staggers idle everyone early).
	AvgPower []float64
	// SteadyHotDeltaC and SteadyAvgDeltaC are the exact steady-state peak
	// temperature rises (K) of the HotPower and AvgPower fields — closed-form
	// linear solves the case builder performs against the platform's thermal
	// model. They are the strongest transient regressors: the transient peak
	// lives between the average-driven quasi-steady rise and the worst-case
	// hot rise, blended by how far toward steady state the horizon gets.
	SteadyHotDeltaC float64
	SteadyAvgDeltaC float64
	// Horizon is the closed-form run length in seconds (the raw makespan
	// estimate); the transient prediction uses it to judge how far toward
	// steady state the chip gets.
	Horizon float64
	// RawMakespan is the closed-form makespan estimate in seconds: for each
	// task its arrival plus the barrier-exact sum of phase times at the
	// pinned cores' interval-model speeds, maximized over tasks.
	RawMakespan float64
}

// Validate checks the case's structural invariants.
func (c Case) Validate() error {
	n := c.Width * c.Height
	switch {
	case c.Width < 1 || c.Height < 1:
		return fmt.Errorf("twin: invalid grid %dx%d", c.Width, c.Height)
	case len(c.HotPower) != n:
		return fmt.Errorf("twin: hot power has %d cores, want %d", len(c.HotPower), n)
	case len(c.AvgPower) != n:
		return fmt.Errorf("twin: avg power has %d cores, want %d", len(c.AvgPower), n)
	case !(c.Horizon > 0) || math.IsInf(c.Horizon, 0):
		return fmt.Errorf("twin: horizon must be positive and finite, got %g", c.Horizon)
	case math.IsNaN(c.SteadyHotDeltaC) || c.SteadyHotDeltaC < 0 || math.IsInf(c.SteadyHotDeltaC, 0):
		return fmt.Errorf("twin: steady hot delta must be a finite non-negative rise, got %g", c.SteadyHotDeltaC)
	case math.IsNaN(c.SteadyAvgDeltaC) || c.SteadyAvgDeltaC < 0 || math.IsInf(c.SteadyAvgDeltaC, 0):
		return fmt.Errorf("twin: steady avg delta must be a finite non-negative rise, got %g", c.SteadyAvgDeltaC)
	case !(c.RawMakespan > 0) || math.IsInf(c.RawMakespan, 0):
		return fmt.Errorf("twin: raw makespan must be positive and finite, got %g", c.RawMakespan)
	}
	for i, p := range c.HotPower {
		if math.IsNaN(p) || p < 0 {
			return fmt.Errorf("twin: hot power[%d] = %g", i, p)
		}
	}
	for i, p := range c.AvgPower {
		if math.IsNaN(p) || p < 0 {
			return fmt.Errorf("twin: avg power[%d] = %g", i, p)
		}
	}
	return nil
}

// Observation is the simulator's ground truth for a Case: the oracle values
// the twin is fitted against and judged by.
type Observation struct {
	// SteadyTemps are the exact steady-state node temperatures (°C) of the
	// case's HotPower field; only the first Width×Height (core) entries are
	// consumed. Used to fit the spatial influence kernel.
	SteadyTemps []float64
	// SteadyPeakC is the hottest core of SteadyTemps.
	SteadyPeakC float64
	// TransientPeakC is the full simulation's peak core temperature (°C).
	TransientPeakC float64
	// MakespanS is the full simulation's makespan in seconds.
	MakespanS float64
}

// Sample pairs a calibration case with its simulator observation.
type Sample struct {
	Case Case
	Obs  Observation
}

// RingCase is one ring-rotation evaluation point: the inputs of Algorithm
// 1's HotPotato fast path (rotation.RingEvaluator.PeakRingRotation), reduced
// to numbers. The twin's ring model predicts the steady-periodic peak so the
// scheduler can skip the eigenspace evaluation when the bound is conclusive.
type RingCase struct {
	// Width and Height are the grid dimensions (the platform bucket).
	Width, Height int
	// Ambient is the ambient temperature in °C.
	Ambient float64
	// Tau is the rotation epoch length in seconds.
	Tau float64
	// Base is the per-core background power field (W).
	Base []float64
	// RingCores are the rotating ring's core indices.
	RingCores []int
	// SlotWatts are the per-slot powers rotating around the ring.
	SlotWatts []float64
	// SteadyFieldDeltaC is the exact steady-state peak temperature rise (K)
	// of the rotation's time-averaged power field (Base with the ring cores
	// replaced by the mean slot power) — a closed-form linear solve the
	// caller performs against the platform's thermal model. It anchors the
	// ring prediction from below: an infinitely fast rotation averages the
	// slots out and settles exactly there.
	SteadyFieldDeltaC float64
	// SteadyMaxDeltaC is the exact steady peak rise (K) with the rotation
	// frozen at its worst epoch: the maximum over rotation offsets of the
	// steady solve of the instantaneous field (Base with ring core
	// (i+e) mod δ carrying slot i). It anchors the prediction from above —
	// an infinitely slow rotation dwells long enough to reach it — and the
	// fitted model blends the two anchors by the epoch dwell time. See
	// MaxInstantSteadyDelta.
	SteadyMaxDeltaC float64
}

// RingSample pairs a ring case with the exact Algorithm 1 peak (°C).
type RingSample struct {
	Case  RingCase
	PeakC float64
}

// Fixed response-curve constants of the transient features (seconds). They
// mirror the substrate time scales documented in docs/CALIBRATION.md: the
// silicon surface answers in about a millisecond, the heatsink in about a
// second. The fit only sees them through smooth saturating features, so
// their exact values are not critical — the least squares places the weight.
const (
	tauFast = 0.010 // local silicon+spreader response, 10 ms
	tauSlow = 1.0   // heatsink response, 1 s

	// The ring blend gets a small basis of response curves instead of one
	// fixed time constant: the effective local response varies with ring
	// geometry (corner vs. center cores), and the least squares shapes the
	// dwell curve from the basis.
	tauRingA = 0.0003 // fast silicon response against one epoch's dwell
	tauRingB = 0.003  // slow silicon+spreader response against the dwell
	tauRingP = 0.010  // recovery response against the full rotation period
)

// manhattan returns the Manhattan distance between cores a and b on a
// width-wide grid.
func manhattan(width, a, b int) int {
	ax, ay := a%width, a/width
	bx, by := b%width, b/width
	dx, dy := ax-bx, ay-by
	if dx < 0 {
		dx = -dx
	}
	if dy < 0 {
		dy = -dy
	}
	return dx + dy
}

// missingNeighbors returns how many of core i's four grid neighbors fall off
// the die edge: 0 interior, 1 edge, 2 corner. Edge cores lose lateral heat
// spreading paths and run hotter per watt than the pure distance kernel can
// express, so the kernel carries two edge-correction terms (see
// BucketModel.Kernel).
func missingNeighbors(width, height, i int) int {
	x, y := i%width, i/width
	m := 0
	if x == 0 {
		m++
	}
	if x == width-1 {
		m++
	}
	if y == 0 {
		m++
	}
	if y == height-1 {
		m++
	}
	return m
}

// totalPower returns Σ p.
func totalPower(p []float64) float64 {
	sum := 0.0
	for _, v := range p {
		sum += v
	}
	return sum
}

// transientFeatures fills x with the transient-peak regressors of a case:
// the exact steady rises of the average and worst-case power fields, each
// entering through the fast (silicon) and slow (heatsink) saturation curves
// of the horizon — [1, sad·g_fast, sad·g_slow, shd·g_fast, shd·g_slow]. The
// least squares places the blend; physically the transient peak lives
// between sad·g and shd·g. x must have length transientDim. Shared verbatim
// between fitting and prediction so the two can never drift.
func transientFeatures(x []float64, c Case) {
	gFast := 1 - math.Exp(-c.Horizon/tauFast)
	gSlow := 1 - math.Exp(-c.Horizon/tauSlow)
	x[0] = 1
	x[1] = c.SteadyAvgDeltaC * gFast
	x[2] = c.SteadyAvgDeltaC * gSlow
	x[3] = c.SteadyHotDeltaC * gFast
	x[4] = c.SteadyHotDeltaC * gSlow
}

// transientDim is the number of transient regressors.
const transientDim = 5

// makespanFeatures fills x with the makespan regressors: [1, RawMakespan].
func makespanFeatures(x []float64, c Case) {
	x[0] = 1
	x[1] = c.RawMakespan
}

// makespanDim is the number of makespan regressors.
const makespanDim = 2

// ringDim is the number of ring regressors.
const ringDim = 7

// ringFeaturesInto fills x with the ring-rotation regressors using field as
// scratch for the time-averaged power field (len = cores):
// [1, SteadyFieldDeltaC, Σfield, rip, rip·g_A(τ), rip·g_B(τ), rip·g_P(τδ)],
// where rip is the ripple headroom SteadyMaxDeltaC − SteadyFieldDeltaC and
// g_T(t) = 1−e^{−t/T}. The two exact steady solves bracket the true
// steady-periodic peak (fast rotation settles at the averaged field, slow
// rotation dwells to the frozen-worst field); the fitted model shapes the
// blend from the dwell- and period-response basis. Allocates nothing.
func ringFeaturesInto(x, field []float64, c RingCase) {
	copy(field, c.Base)
	mean := 0.0
	for _, w := range c.SlotWatts {
		mean += w
	}
	mean /= float64(len(c.SlotWatts))
	for _, core := range c.RingCores {
		field[core] = mean
	}
	rip := c.SteadyMaxDeltaC - c.SteadyFieldDeltaC
	if rip < 0 {
		rip = 0
	}
	period := c.Tau * float64(len(c.RingCores))
	x[0] = 1
	x[1] = c.SteadyFieldDeltaC
	x[2] = totalPower(field)
	x[3] = rip
	x[4] = rip * (1 - math.Exp(-c.Tau/tauRingA))
	x[5] = rip * (1 - math.Exp(-c.Tau/tauRingB))
	x[6] = rip * (1 - math.Exp(-period/tauRingP))
}

// MaxInstantSteadyDelta returns the exact steady peak rise of a rotation
// frozen at its worst epoch (RingCase.SteadyMaxDeltaC): the maximum over
// rotation offsets e of steadyPeak on the instantaneous field, where slot i
// executes on ringCores[(i+e) mod δ] — the evaluator's rotation convention.
// field is caller-provided scratch (len = cores). Allocates nothing beyond
// what steadyPeak does.
func MaxInstantSteadyDelta(field, base []float64, ringCores []int, slotWatts []float64, steadyPeak SteadyPeakFunc) float64 {
	delta := len(ringCores)
	peak := math.Inf(-1)
	for e := 0; e < delta; e++ {
		copy(field, base)
		for i, w := range slotWatts {
			field[ringCores[(i+e)%delta]] = w
		}
		if v := steadyPeak(field); v > peak {
			peak = v
		}
	}
	return peak
}
