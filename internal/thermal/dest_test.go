package thermal

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/floorplan"
	"repro/internal/matrix"
)

// Tests for the zero-allocation stepping path: StepTo/SteadyStateInto/
// ExtendPowerInto must be bit-identical to the allocating APIs (the engine
// swaps between them freely) and must not allocate.

func destModel(t testing.TB, w, h int) *Model {
	t.Helper()
	fp, err := floorplan.New(w, h, 0.0009)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(fp, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func randPower(r *rand.Rand, n int) []float64 {
	p := make([]float64, n)
	for i := range p {
		p[i] = r.Float64() * 8
	}
	return p
}

func TestPropStepToBitIdenticalToStep(t *testing.T) {
	m := destModel(t, 4, 4)
	s, err := m.NewStepper(0.5e-3)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tv := m.InitialTemps()
		for i := range tv {
			tv[i] += r.Float64() * 20
		}
		p := randPower(r, m.NumCores())
		want := s.Step(tv, p)
		dst := make([]float64, m.NumNodes())
		s.StepTo(dst, tv, p)
		for i := range dst {
			if dst[i] != want[i] {
				return false
			}
		}
		// In-place stepping (dst aliases t) must give the same answer.
		s.StepTo(tv, tv, p)
		for i := range tv {
			if tv[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestPropSteadyStateIntoBitIdentical(t *testing.T) {
	m := destModel(t, 4, 4)
	s, err := m.NewStepper(0.5e-3)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randPower(r, m.NumCores())
		want := m.SteadyState(p)
		dst := make([]float64, m.NumNodes())
		s.SteadyStateInto(dst, p)
		for i := range dst {
			if dst[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestExtendPowerIntoClearsStaleTail(t *testing.T) {
	m := destModel(t, 4, 4)
	dst := make([]float64, m.NumNodes())
	for i := range dst {
		dst[i] = 99
	}
	p := make([]float64, m.NumCores())
	p[3] = 7
	m.ExtendPowerInto(dst, p)
	want := m.ExtendPower(p)
	for i := range dst {
		if dst[i] != want[i] {
			t.Fatalf("node %d: ExtendPowerInto = %v, ExtendPower = %v", i, dst[i], want[i])
		}
	}
}

func TestTransientMatchesManualStepLoop(t *testing.T) {
	m := destModel(t, 4, 4)
	s, err := m.NewStepper(1e-3)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(42))
	powers := make([][]float64, 6)
	for i := range powers {
		powers[i] = randPower(r, m.NumCores())
	}
	traj := s.Transient(m.InitialTemps(), powers)
	if len(traj) != len(powers)+1 {
		t.Fatalf("trajectory has %d rows, want %d", len(traj), len(powers)+1)
	}
	cur := m.InitialTemps()
	for i := range cur {
		if traj[0][i] != cur[i] {
			t.Fatal("trajectory row 0 is not the initial state")
		}
	}
	for e, p := range powers {
		cur = s.Step(cur, p)
		for i := range cur {
			if traj[e+1][i] != cur[i] {
				t.Fatalf("trajectory row %d differs from Step loop at node %d", e+1, i)
			}
		}
	}
}

// Transient must not alias its rows: mutating one row leaves the rest intact.
func TestTransientRowsIndependent(t *testing.T) {
	m := destModel(t, 4, 4)
	s, err := m.NewStepper(1e-3)
	if err != nil {
		t.Fatal(err)
	}
	p := randPower(rand.New(rand.NewSource(1)), m.NumCores())
	traj := s.Transient(m.InitialTemps(), [][]float64{p, p})
	traj[1][0] = -1000
	if traj[0][0] == -1000 || traj[2][0] == -1000 {
		t.Fatal("Transient rows share storage")
	}
}

func TestStepToZeroAllocs(t *testing.T) {
	m := destModel(t, 8, 8)
	s, err := m.NewStepper(0.1e-3)
	if err != nil {
		t.Fatal(err)
	}
	temps := m.InitialTemps()
	p := randPower(rand.New(rand.NewSource(5)), m.NumCores())
	if a := testing.AllocsPerRun(100, func() { s.StepTo(temps, temps, p) }); a != 0 {
		t.Errorf("StepTo allocates %v per run, want 0", a)
	}
	dst := make([]float64, m.NumNodes())
	if a := testing.AllocsPerRun(100, func() { s.SteadyStateInto(dst, p) }); a != 0 {
		t.Errorf("SteadyStateInto allocates %v per run, want 0", a)
	}
	if a := testing.AllocsPerRun(100, func() { m.ExtendPowerInto(dst, p) }); a != 0 {
		t.Errorf("ExtendPowerInto allocates %v per run, want 0", a)
	}
}

// --- hot-loop step baseline (make bench → BENCH_hotloop.json) ---------------

func benchStepper(b *testing.B) (*Stepper, []float64, []float64) {
	b.Helper()
	m := destModel(b, 8, 8)
	s, err := m.NewStepper(0.1e-3)
	if err != nil {
		b.Fatal(err)
	}
	return s, m.InitialTemps(), randPower(rand.New(rand.NewSource(5)), m.NumCores())
}

func BenchmarkHotloopStepAlloc(b *testing.B) {
	s, temps, p := benchStepper(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		temps = s.Step(temps, p)
	}
}

func BenchmarkHotloopStepTo(b *testing.B) {
	s, temps, p := benchStepper(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.StepTo(temps, temps, p)
	}
}

// --- solver scaling baselines (docs/PERFORMANCE.md "Scaling to big chips") --

// benchSolverStepper builds a model at edge×edge with the given solver and
// returns its stepper plus a state to advance.
func benchSolverStepper(b *testing.B, edge int, solver string) (*Stepper, []float64, []float64) {
	b.Helper()
	fp, err := floorplan.New(edge, edge, 0.0009)
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Solver = solver
	m, err := New(fp, cfg)
	if err != nil {
		b.Fatal(err)
	}
	s, err := m.NewStepper(0.1e-3)
	if err != nil {
		b.Fatal(err)
	}
	return s, m.InitialTemps(), randPower(rand.New(rand.NewSource(5)), m.NumCores())
}

// BenchmarkHotloopStepSparse times the matrix-free Krylov transient step at
// the chip sizes of the scaling study (the 8×8 paper chip stays dense and is
// covered by BenchmarkHotloopStepTo).
func BenchmarkHotloopStepSparse(b *testing.B) {
	for _, edge := range []int{16, 32, 64} {
		b.Run(fmt.Sprintf("%dx%d", edge, edge), func(b *testing.B) {
			s, temps, p := benchSolverStepper(b, edge, SolverSparse)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.StepTo(temps, temps, p)
			}
		})
	}
}

// BenchmarkHotloopStepDense is the dense per-step cost at the same sizes —
// the denominator of the sparse speedups pinned in CI. At 16×16 the real
// dense model is built and stepped. At 32×32 and 64×64 the dense setup is
// not feasible inside a benchmark run (O(N³) eigendecomposition; the N×N
// propagator alone is ≈0.5 GB at 64×64), so the per-step cost is measured on
// a synthetic N×N matrix driving exactly the work a dense StepTo performs:
// one B⁻¹ matvec (the steady-state solve) plus one propagator matvec, with
// the O(N) vector ops in between. That is the floor of what the dense path
// would cost per step if one could afford to build it, so the reported
// speedup is an underestimate.
func BenchmarkHotloopStepDense(b *testing.B) {
	b.Run("16x16", func(b *testing.B) {
		s, temps, p := benchSolverStepper(b, 16, SolverDense)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.StepTo(temps, temps, p)
		}
	})
	for _, edge := range []int{32, 64} {
		b.Run(fmt.Sprintf("%dx%d", edge, edge), func(b *testing.B) {
			N := 2*edge*edge + 1
			rng := rand.New(rand.NewSource(7))
			kernel := matrix.New(N, N) // stands in for both B⁻¹ and e^{C·dt}
			for i := 0; i < N; i++ {
				for j := 0; j < N; j++ {
					kernel.Set(i, j, rng.Float64()*1e-3)
				}
			}
			temps := make([]float64, N)
			tss := make([]float64, N)
			diff := make([]float64, N)
			p := make([]float64, N)
			for i := range p {
				p[i] = rng.Float64() * 8
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				kernel.MulVecTo(tss, p)
				matrix.VecSubTo(diff, temps, tss)
				kernel.MulVecTo(temps, diff)
				matrix.VecAddTo(temps, tss)
			}
		})
	}
}
