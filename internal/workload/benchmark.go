// Package workload models the PARSEC benchmarks the paper evaluates with
// (§VI, sim-small inputs) as interval-level synthetic workloads: each
// benchmark is described by its CPI stack, nominal power, total work, and a
// phase structure of serial (master-only) and parallel (worker) regions
// separated by barriers. The blackscholes model reproduces the three-phase
// master/slave alternation of the paper's Fig. 2 walkthrough.
//
// The package also generates the paper's two workload scenarios: homogeneous
// full-load mixes (Fig. 4a) and random multi-program mixes with Poisson
// arrivals (Fig. 4b).
package workload

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/perf"
)

// PhaseKind distinguishes serial from parallel benchmark regions.
type PhaseKind int

const (
	// Serial phases execute on the master thread only; workers idle at the
	// barrier (blackscholes Phase ① and ③ in the paper's Fig. 2).
	Serial PhaseKind = iota
	// Parallel phases split their work evenly across the worker threads; the
	// master idles (blackscholes Phase ②). A single-threaded task runs
	// parallel phases on its only thread.
	Parallel
)

// String implements fmt.Stringer.
func (k PhaseKind) String() string {
	switch k {
	case Serial:
		return "serial"
	case Parallel:
		return "parallel"
	default:
		return fmt.Sprintf("PhaseKind(%d)", int(k))
	}
}

// Phase is one region of a benchmark: Frac of the benchmark's total
// instructions executed in the given mode.
type Phase struct {
	Kind PhaseKind
	Frac float64
}

// Benchmark is the interval-level model of one PARSEC application.
type Benchmark struct {
	Name string

	// NominalWatts is the core power of one actively computing thread at
	// peak frequency (4 GHz).
	NominalWatts float64

	// CPI stack parameters (see internal/perf).
	BaseCPI float64
	MPKI    float64
	// LLCMissRatio is the fraction of LLC accesses missing off-chip
	// (canneal's working set famously exceeds any LLC; blackscholes is
	// cache-resident).
	LLCMissRatio float64

	// Work is the total instruction count of the benchmark at the reference
	// (sim-small) input size, summed over all phases.
	Work float64

	// Phases in execution order; Frac values sum to 1.
	Phases []Phase
}

// Perf returns the benchmark's CPI-stack parameters.
func (b Benchmark) Perf() perf.Params {
	return perf.Params{BaseCPI: b.BaseCPI, MPKI: b.MPKI, LLCMissRatio: b.LLCMissRatio}
}

// Validate checks internal consistency.
func (b Benchmark) Validate() error {
	if b.Name == "" {
		return fmt.Errorf("workload: benchmark has no name")
	}
	if b.NominalWatts <= 0 {
		return fmt.Errorf("workload: %s: nominal power must be positive", b.Name)
	}
	if err := b.Perf().Validate(); err != nil {
		return fmt.Errorf("workload: %s: %w", b.Name, err)
	}
	if b.Work <= 0 {
		return fmt.Errorf("workload: %s: work must be positive", b.Name)
	}
	if len(b.Phases) == 0 {
		return fmt.Errorf("workload: %s: needs at least one phase", b.Name)
	}
	sum := 0.0
	for i, ph := range b.Phases {
		if ph.Frac <= 0 {
			return fmt.Errorf("workload: %s: phase %d has non-positive fraction", b.Name, i)
		}
		if ph.Kind != Serial && ph.Kind != Parallel {
			return fmt.Errorf("workload: %s: phase %d has unknown kind", b.Name, i)
		}
		sum += ph.Frac
	}
	if math.Abs(sum-1) > 1e-9 {
		return fmt.Errorf("workload: %s: phase fractions sum to %g, want 1", b.Name, sum)
	}
	return nil
}

// PARSEC returns the eight benchmarks of the paper's evaluation (§VI), in
// the order of Fig. 4(a). Power and CPI-stack values are calibrated to the
// qualitative characterisation the paper relies on: blackscholes/swaptions
// hot and compute-bound, canneal cool and memory-intensive ("produces very
// little heat", §VI), streamcluster memory-streaming, the rest in between.
func PARSEC() []Benchmark {
	return []Benchmark{
		{
			Name:         "blackscholes",
			NominalWatts: 9.0,
			BaseCPI:      0.8,
			MPKI:         1.0,
			LLCMissRatio: 0.02,
			Work:         2.6e8,
			// The Fig. 2 structure: master data preparation, worker pricing
			// loop, master wrap-up.
			Phases: []Phase{{Serial, 0.25}, {Parallel, 0.55}, {Serial, 0.20}},
		},
		{
			Name:         "bodytrack",
			NominalWatts: 7.5,
			BaseCPI:      0.9,
			MPKI:         3.0,
			LLCMissRatio: 0.05,
			Work:         3.2e8,
			Phases: []Phase{
				{Serial, 0.10}, {Parallel, 0.40}, {Serial, 0.10},
				{Parallel, 0.30}, {Serial, 0.10},
			},
		},
		{
			Name:         "canneal",
			NominalWatts: 4.0,
			BaseCPI:      1.2,
			MPKI:         25.0,
			LLCMissRatio: 0.30,
			Work:         2.0e8,
			Phases:       []Phase{{Serial, 0.05}, {Parallel, 0.90}, {Serial, 0.05}},
		},
		{
			Name:         "dedup",
			NominalWatts: 6.5,
			BaseCPI:      1.0,
			MPKI:         8.0,
			LLCMissRatio: 0.10,
			Work:         3.0e8,
			Phases:       []Phase{{Serial, 0.10}, {Parallel, 0.70}, {Serial, 0.20}},
		},
		{
			Name:         "fluidanimate",
			NominalWatts: 7.0,
			BaseCPI:      0.9,
			MPKI:         6.0,
			LLCMissRatio: 0.08,
			Work:         3.6e8,
			Phases:       []Phase{{Serial, 0.05}, {Parallel, 0.85}, {Serial, 0.10}},
		},
		{
			Name:         "streamcluster",
			NominalWatts: 5.5,
			BaseCPI:      1.0,
			MPKI:         15.0,
			LLCMissRatio: 0.25,
			Work:         3.4e8,
			Phases:       []Phase{{Serial, 0.05}, {Parallel, 0.80}, {Serial, 0.15}},
		},
		{
			Name:         "swaptions",
			NominalWatts: 8.5,
			BaseCPI:      0.7,
			MPKI:         0.5,
			LLCMissRatio: 0.01,
			Work:         3.0e8,
			Phases:       []Phase{{Serial, 0.05}, {Parallel, 0.90}, {Serial, 0.05}},
		},
		{
			Name:         "x264",
			NominalWatts: 8.0,
			BaseCPI:      0.85,
			MPKI:         4.0,
			LLCMissRatio: 0.06,
			Work:         3.3e8,
			Phases:       []Phase{{Parallel, 0.85}, {Serial, 0.15}},
		},
	}
}

// ByName returns the PARSEC benchmark with the given name.
func ByName(name string) (Benchmark, error) {
	for _, b := range PARSEC() {
		if b.Name == name {
			return b, nil
		}
	}
	return Benchmark{}, fmt.Errorf("workload: unknown benchmark %q", name)
}

// Names returns the benchmark names in Fig. 4(a) order.
func Names() []string {
	bs := PARSEC()
	out := make([]string, len(bs))
	for i, b := range bs {
		out[i] = b.Name
	}
	sort.Strings(out)
	return out
}
