package rotation

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/floorplan"
	"repro/internal/thermal"
)

// iterPair builds calculators over the same floorplan with the dense
// eigenbasis path and the sparse iterative path.
func iterPair(t testing.TB, w, h int, cfg thermal.Config) (*Calculator, *Calculator) {
	t.Helper()
	fp := floorplan.MustNew(w, h, 0.0009)
	cfgD := cfg
	cfgD.Solver = thermal.SolverDense
	cfgS := cfg
	cfgS.Solver = thermal.SolverSparse
	md, err := thermal.New(fp, cfgD)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := thermal.New(fp, cfgS)
	if err != nil {
		t.Fatal(err)
	}
	return NewCalculator(md), NewCalculator(ms)
}

// TestIterativeMatchesEigenbasis pins the fixed-point evaluator against
// Algorithm 1's eigenbasis evaluation of the same plans: peak, peak
// location, start state and every epoch boundary must agree within the
// iterative tolerance.
func TestIterativeMatchesEigenbasis(t *testing.T) {
	cd, cs := iterPair(t, 4, 4, fastConfig())
	if cd.Iterative() || !cs.Iterative() {
		t.Fatal("calculator mode detection is wrong")
	}
	rng := rand.New(rand.NewSource(31))
	n := cd.n
	for trial := 0; trial < 5; trial++ {
		base := make([]float64, n)
		for i := range base {
			base[i] = rng.Float64() * 8
		}
		cores := rng.Perm(n)[:3+rng.Intn(4)]
		plan := Rotate(2e-4, base, cores)

		want, err := cd.Evaluate(plan)
		if err != nil {
			t.Fatal(err)
		}
		got, err := cs.Evaluate(plan)
		if err != nil {
			t.Fatal(err)
		}
		// The iterative tolerance bounds the start-state error; one period
		// walk from it cannot amplify (the step map is a contraction), and
		// the thermal backends themselves agree to 1e-9.
		const tol = 2 * DefaultIterTol
		if math.Abs(want.Peak-got.Peak) > tol {
			t.Fatalf("trial %d: peak %.9f (eigen) vs %.9f (iterative)", trial, want.Peak, got.Peak)
		}
		for i := range want.Start {
			if math.Abs(want.Start[i]-got.Start[i]) > tol {
				t.Fatalf("trial %d: start[%d] differs by %g", trial, i, want.Start[i]-got.Start[i])
			}
		}
		for e := range want.EpochEnd {
			for i := range want.EpochEnd[e] {
				if math.Abs(want.EpochEnd[e][i]-got.EpochEnd[e][i]) > tol {
					t.Fatalf("trial %d: epoch %d node %d differs by %g",
						trial, e, i, want.EpochEnd[e][i]-got.EpochEnd[e][i])
				}
			}
		}
	}
}

// TestIterativeFineMatchesEigenbasis checks the subsampled variant.
func TestIterativeFineMatchesEigenbasis(t *testing.T) {
	cd, cs := iterPair(t, 3, 3, fastConfig())
	base := []float64{8, 1, 6, 1, 7, 1, 5, 1, 4}
	plan := Rotate(3e-4, base, []int{0, 2, 4, 6})
	want, err := cd.EvaluateFine(plan, 4)
	if err != nil {
		t.Fatal(err)
	}
	got, err := cs.EvaluateFine(plan, 4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(want.Peak-got.Peak) > 2*DefaultIterTol {
		t.Fatalf("fine peak %.9f (eigen) vs %.9f (iterative)", want.Peak, got.Peak)
	}
}

// TestRingEvaluatorSparseFallback checks the ring evaluator built over a
// sparse model delegates to the iterative path and matches the dense ring
// evaluator.
func TestRingEvaluatorSparseFallback(t *testing.T) {
	cd, cs := iterPair(t, 4, 4, fastConfig())
	red := cd.NewRingEvaluator()
	res := cs.NewRingEvaluator()

	base := make([]float64, cd.n)
	for i := range base {
		base[i] = 1.5
	}
	ring := []int{0, 5, 10, 15}
	slots := []float64{9, 7, 2, 1}

	want, err := red.PeakRingRotation(2e-4, base, ring, slots)
	if err != nil {
		t.Fatal(err)
	}
	got, err := res.PeakRingRotation(2e-4, base, ring, slots)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(want-got) > 2*DefaultIterTol {
		t.Fatalf("ring peak %.9f (eigen) vs %.9f (fallback)", want, got)
	}

	// Argument validation must behave identically in fallback mode.
	if _, err := res.PeakRingRotation(2e-4, base, []int{}, nil); err == nil {
		t.Fatal("empty ring accepted by fallback")
	}
	if _, err := res.PeakRingRotation(2e-4, base, []int{99}, []float64{1}); err == nil {
		t.Fatal("out-of-range ring core accepted by fallback")
	}
}

// TestIterativeAgainstBruteForce ties the iterative evaluator to the
// mode-agnostic brute-force reference on a sparse model.
func TestIterativeAgainstBruteForce(t *testing.T) {
	fp := floorplan.MustNew(3, 3, 0.0009)
	cfg := fastConfig()
	cfg.Solver = thermal.SolverSparse
	m, err := thermal.New(fp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCalculator(m)
	base := []float64{9, 1, 5, 1, 8, 1, 3, 1, 6}
	plan := Rotate(2e-4, base, []int{0, 4, 8})

	want, err := c.BruteForcePeak(plan, 400, 1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.PeakTemperature(plan)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(want-got) > 1e-4 {
		t.Fatalf("iterative peak %.6f, brute force %.6f", got, want)
	}
}
