// Package service is the HTTP/JSON serving layer of the reproduction: it
// turns declarative hotpotato.RunSpec documents into simulation runs on a
// bounded worker pool (the internal/experiments pool pattern, made
// long-lived), shares eigendecomposed Platforms between requests through a
// cache, and honours request deadlines and disconnects mid-run through
// hotpotato.RunContext.
package service

import (
	"sync"
	"sync/atomic"

	hotpotato "repro"
)

// PlatformCache shares immutable Platforms between requests. Building a
// Platform eigendecomposes its RC thermal model — by far the most expensive
// part of serving a run on a small chip — so concurrent requests for the
// same chip must share one model instead of re-factorizing per request.
//
// The cache is keyed by the canonicalized PlatformConfig (a comparable plain
// value; RunSpec.WithDefaults is the canonical form, and both the JSON
// decoder and ExecuteSpec apply it), and leans on the documented
// immutable-after-construction contract of docs/CONCURRENCY.md: a cached
// *Platform may back any number of concurrent runs.
type PlatformCache struct {
	mu      sync.Mutex
	entries map[hotpotato.PlatformConfig]*cacheEntry

	hits   atomic.Int64
	misses atomic.Int64
}

// cacheEntry is a singleflight slot: the first requester builds, everyone
// else blocks on ready.
type cacheEntry struct {
	ready chan struct{}
	plat  *hotpotato.Platform
	err   error
}

// NewPlatformCache returns an empty cache.
func NewPlatformCache() *PlatformCache {
	return &PlatformCache{entries: make(map[hotpotato.PlatformConfig]*cacheEntry)}
}

// Get returns the shared Platform for cfg, building it exactly once per
// distinct configuration. Concurrent callers with an equal cfg coalesce onto
// a single construction (and a single eigendecomposition); later callers get
// the cached pointer immediately. Construction errors are deterministic in
// cfg, so they are cached too.
func (c *PlatformCache) Get(cfg hotpotato.PlatformConfig) (*hotpotato.Platform, error) {
	c.mu.Lock()
	e, ok := c.entries[cfg]
	if !ok {
		e = &cacheEntry{ready: make(chan struct{})}
		c.entries[cfg] = e
		c.mu.Unlock()
		c.misses.Add(1)
		metricCacheMisses.Inc()
		e.plat, e.err = hotpotato.NewPlatformFromConfig(cfg)
		close(e.ready)
		return e.plat, e.err
	}
	c.mu.Unlock()
	c.hits.Add(1)
	metricCacheHits.Inc()
	<-e.ready
	return e.plat, e.err
}

// Len returns the number of distinct configurations cached.
func (c *PlatformCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats returns how many Get calls were served from the cache (hits) and how
// many triggered a construction (misses).
func (c *PlatformCache) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}
