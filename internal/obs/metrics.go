// Package obs is the reproduction's observability layer: a dependency-free
// metrics registry (counters, gauges, fixed-bucket histograms) and a
// per-scheduler-epoch tracer, shared by the simulation engine, the
// schedulers, the rotation evaluator, and the HTTP service.
//
// Design constraints, in order:
//
//   - The simulator's slice loop and the rotation ring scan are zero-alloc
//     hot paths (docs/PERFORMANCE.md). Every metric operation — Counter.Add,
//     Gauge.Set, Histogram.Observe — is a handful of atomic instructions and
//     never allocates; instrumented packages hold pre-registered *Counter /
//     *Gauge / *Histogram handles in package-level variables so the hot path
//     performs no registry lookups and no interface calls.
//   - No dependencies: exposition is hand-rolled Prometheus text format
//     (version 0.0.4) plus an expvar.Func JSON snapshot, both reading the
//     same atomics.
//   - Metrics are process-global by default (the Default registry), matching
//     expvar and net/http/pprof: one process serves one /metrics page.
//
// See docs/OBSERVABILITY.md for the metric inventory.
package obs

import (
	"expvar"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is unusable;
// obtain one from Registry.NewCounter (or the package-level NewCounter).
type Counter struct {
	name string
	help string
	v    atomic.Int64
}

// Name returns the metric name.
func (c *Counter) Name() string { return c.name }

// Inc adds 1. Allocation-free and safe for concurrent use.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative for the value to stay meaningful as a
// counter; this is not enforced on the hot path).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down, stored as float64 bits.
// The zero value is unusable; obtain one from Registry.NewGauge.
type Gauge struct {
	name string
	help string
	bits atomic.Uint64
}

// Name returns the metric name.
func (g *Gauge) Name() string { return g.name }

// Set stores v. Allocation-free and safe for concurrent use.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add atomically adds d to the gauge.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket cumulative histogram. Buckets are upper bounds
// in ascending order; an implicit +Inf bucket catches the rest. The zero
// value is unusable; obtain one from Registry.NewHistogram.
type Histogram struct {
	name    string
	help    string
	bounds  []float64 // ascending upper bounds, +Inf excluded
	counts  []atomic.Int64
	inf     atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64
}

// Name returns the metric name.
func (h *Histogram) Name() string { return h.name }

// Observe records v. Allocation-free and safe for concurrent use; the bucket
// scan is linear, which beats binary search at the ≤16 buckets used here.
func (h *Histogram) Observe(v float64) {
	placed := false
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i].Add(1)
			placed = true
			break
		}
	}
	if !placed {
		h.inf.Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Buckets returns the upper bounds and the cumulative count at each bound
// (Prometheus le semantics), ending with the +Inf bucket.
func (h *Histogram) Buckets() (bounds []float64, cumulative []int64) {
	bounds = append(append([]float64(nil), h.bounds...), math.Inf(1))
	cumulative = make([]int64, len(bounds))
	var cum int64
	for i := range h.bounds {
		cum += h.counts[i].Load()
		cumulative[i] = cum
	}
	cumulative[len(bounds)-1] = cum + h.inf.Load()
	return bounds, cumulative
}

// DefLatencyBuckets are the default request-latency bounds in seconds,
// spanning sub-millisecond spec validation to multi-minute simulations.
var DefLatencyBuckets = []float64{
	0.001, 0.005, 0.025, 0.1, 0.25, 1, 2.5, 10, 30, 60, 300,
}

// Registry holds named metrics. Registration is rare (package init);
// observation is constant-time on pre-registered handles. A Registry is safe
// for concurrent use.
type Registry struct {
	mu         sync.Mutex
	names      map[string]bool
	counters   []*Counter
	gauges     []*Gauge
	histograms []*Histogram

	publishOnce sync.Once
}

// NewRegistry returns an empty registry. Most code uses Default instead.
func NewRegistry() *Registry {
	return &Registry{names: map[string]bool{}}
}

var defaultRegistry = NewRegistry()

// Default returns the process-global registry that /metrics serves.
func Default() *Registry { return defaultRegistry }

func (r *Registry) claim(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.names[name] {
		panic(fmt.Sprintf("obs: metric %q registered twice", name))
	}
	r.names[name] = true
}

// NewCounter registers and returns a counter. Duplicate names panic —
// registration happens at package init, where a duplicate is a bug.
func (r *Registry) NewCounter(name, help string) *Counter {
	r.claim(name)
	c := &Counter{name: name, help: help}
	r.mu.Lock()
	r.counters = append(r.counters, c)
	r.mu.Unlock()
	return c
}

// NewGauge registers and returns a gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	r.claim(name)
	g := &Gauge{name: name, help: help}
	r.mu.Lock()
	r.gauges = append(r.gauges, g)
	r.mu.Unlock()
	return g
}

// NewHistogram registers and returns a histogram with the given ascending
// upper bounds (nil means DefLatencyBuckets).
func (r *Registry) NewHistogram(name, help string, bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefLatencyBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bounds not ascending: %v", name, bounds))
		}
	}
	r.claim(name)
	h := &Histogram{
		name:   name,
		help:   help,
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)),
	}
	r.mu.Lock()
	r.histograms = append(r.histograms, h)
	r.mu.Unlock()
	return h
}

// NewCounter registers a counter on the Default registry.
func NewCounter(name, help string) *Counter { return defaultRegistry.NewCounter(name, help) }

// NewGauge registers a gauge on the Default registry.
func NewGauge(name, help string) *Gauge { return defaultRegistry.NewGauge(name, help) }

// NewHistogram registers a histogram on the Default registry.
func NewHistogram(name, help string, bounds []float64) *Histogram {
	return defaultRegistry.NewHistogram(name, help, bounds)
}

// snapshotLists copies the metric handle slices under the lock; the handles
// themselves are read with atomics afterwards.
func (r *Registry) snapshotLists() (cs []*Counter, gs []*Gauge, hs []*Histogram) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append(cs, r.counters...), append(gs, r.gauges...), append(hs, r.histograms...)
}

// WritePrometheus renders every metric in Prometheus text exposition format
// (version 0.0.4), sorted by name so the output is diff-stable.
func (r *Registry) WritePrometheus(w io.Writer) error {
	cs, gs, hs := r.snapshotLists()
	type row struct {
		name  string
		write func(io.Writer) error
	}
	rows := make([]row, 0, len(cs)+len(gs)+len(hs))
	for _, c := range cs {
		c := c
		rows = append(rows, row{c.name, func(w io.Writer) error {
			_, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n",
				c.name, c.help, c.name, c.name, c.Value())
			return err
		}})
	}
	for _, g := range gs {
		g := g
		rows = append(rows, row{g.name, func(w io.Writer) error {
			_, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n",
				g.name, g.help, g.name, g.name, promFloat(g.Value()))
			return err
		}})
	}
	for _, h := range hs {
		h := h
		rows = append(rows, row{h.name, func(w io.Writer) error {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", h.name, h.help, h.name); err != nil {
				return err
			}
			bounds, cum := h.Buckets()
			for i, b := range bounds {
				le := promFloat(b)
				if math.IsInf(b, 1) {
					le = "+Inf"
				}
				if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", h.name, le, cum[i]); err != nil {
					return err
				}
			}
			_, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n",
				h.name, promFloat(h.Sum()), h.name, h.Count())
			return err
		}})
	}
	sort.Slice(rows, func(a, b int) bool { return rows[a].name < rows[b].name })
	for _, row := range rows {
		if err := row.write(w); err != nil {
			return err
		}
	}
	return nil
}

// promFloat renders a float the way Prometheus expects (no exponent for
// common values, NaN/Inf spelled out).
func promFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return fmt.Sprintf("%g", v)
}

// Snapshot returns a plain-data view of every metric, suitable for JSON
// encoding: counters as integers, gauges as floats, histograms as
// {count, sum, buckets: {"le": cumulative}}.
func (r *Registry) Snapshot() map[string]any {
	cs, gs, hs := r.snapshotLists()
	out := make(map[string]any, len(cs)+len(gs)+len(hs))
	for _, c := range cs {
		out[c.name] = c.Value()
	}
	for _, g := range gs {
		v := g.Value()
		if math.IsNaN(v) || math.IsInf(v, 0) {
			out[g.name] = promFloat(v) // JSON has no NaN/Inf
			continue
		}
		out[g.name] = v
	}
	for _, h := range hs {
		bounds, cum := h.Buckets()
		buckets := make(map[string]int64, len(bounds))
		for i, b := range bounds {
			le := promFloat(b)
			if math.IsInf(b, 1) {
				le = "+Inf"
			}
			buckets[le] = cum[i]
		}
		out[h.name] = map[string]any{
			"count":   h.Count(),
			"sum":     h.Sum(),
			"buckets": buckets,
		}
	}
	return out
}

// Values snapshots every counter and gauge value by name — the federation
// payload a fabric worker diffs between heartbeats. Histograms are excluded:
// their cumulative buckets do not fold additively across processes without
// identical bounds, so federation carries scalars only.
func (r *Registry) Values() (counters map[string]int64, gauges map[string]float64) {
	cs, gs, _ := r.snapshotLists()
	counters = make(map[string]int64, len(cs))
	for _, c := range cs {
		counters[c.name] = c.Value()
	}
	gauges = make(map[string]float64, len(gs))
	for _, g := range gs {
		gauges[g.name] = g.Value()
	}
	return counters, gauges
}

// PublishExpvar publishes the registry under the given expvar name (JSON at
// GET /debug/vars), once; later calls are no-ops. expvar panics on duplicate
// names, so the once-guard makes the call safe from multiple servers in one
// process (tests).
func (r *Registry) PublishExpvar(name string) {
	r.publishOnce.Do(func() {
		expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
	})
}
