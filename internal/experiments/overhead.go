package experiments

import (
	"fmt"
	"time"

	"repro/internal/matrix"
	"repro/internal/rotation"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

// OverheadResult reports the scheduler's run-time cost on a fully loaded
// 64-core chip — the paper's §VI measurement (23.76 µs per scheduling
// computation, 4.75% of a 0.5 ms epoch).
type OverheadResult struct {
	// Alg1PerCall is the mean wall-clock cost of one Algorithm 1 peak
	// temperature evaluation (one ring, 64-core model).
	Alg1PerCall time.Duration
	// DecidePerCall is the mean cost of one HotPotato scheduling decision
	// during steady rotation (the per-epoch fast path).
	DecidePerCall time.Duration
	// PlacementPerThread is the mean cost of placing one arriving thread
	// (the slow path with ring scans).
	PlacementPerThread time.Duration
	// EpochFraction is DecidePerCall / 0.5 ms — comparable to the paper's
	// 4.75% overhead claim.
	EpochFraction float64
	// Calls is the number of measured fast-path decisions.
	Calls int
}

// Overhead measures HotPotato's run-time cost on a fully loaded 64-core
// platform. Deliberately serial — unlike the sweep experiments it reports
// host wall-clock timings, which concurrent cells sharing the CPU would
// inflate; do not fan this out over the worker pool.
func Overhead() (*OverheadResult, error) {
	plat, err := newPlatform(8)
	if err != nil {
		return nil, err
	}
	out := &OverheadResult{}

	// Algorithm 1 cost: one mid-chip ring evaluation.
	calc := rotation.NewCalculator(plat.Thermal)
	ev := calc.NewRingEvaluator()
	rings := plat.FP.Rings()
	ring := rings[len(rings)/2]
	base := matrix.Constant(64, 2.0)
	slotWatts := make([]float64, len(ring.Cores))
	for i := range slotWatts {
		slotWatts[i] = 0.3 + float64(i%3)*2.5
	}
	const alg1Iters = 2000
	start := time.Now()
	for i := 0; i < alg1Iters; i++ {
		if _, err := ev.PeakRingRotation(0.5e-3, base, ring.Cores, slotWatts); err != nil {
			return nil, err
		}
	}
	out.Alg1PerCall = time.Since(start) / alg1Iters

	// Fast-path Decide cost: full 64-thread load rotating steadily.
	hp := sched.NewHotPotato(plat, 70)
	st, err := fullLoadState(plat)
	if err != nil {
		return nil, err
	}
	hp.Decide(st) // placement (slow path) happens once here
	const decideIters = 2000
	start = time.Now()
	for i := 0; i < decideIters; i++ {
		st.Time += 0.5e-3
		hp.Decide(st)
	}
	out.DecidePerCall = time.Since(start) / decideIters
	out.Calls = decideIters
	out.EpochFraction = out.DecidePerCall.Seconds() / 0.5e-3

	// Placement cost: fresh scheduler, place all 64 threads, divide.
	hp2 := sched.NewHotPotato(plat, 70)
	st2, err := fullLoadState(plat)
	if err != nil {
		return nil, err
	}
	start = time.Now()
	hp2.Decide(st2)
	out.PlacementPerThread = time.Since(start) / time.Duration(len(st2.Threads))

	return out, nil
}

// fullLoadState builds a synthetic scheduler state with 64 live threads of a
// mixed workload, as seen by the scheduler at steady full load.
func fullLoadState(plat *sim.Platform) (*sim.State, error) {
	bs := workload.PARSEC()
	temps := make([]float64, plat.NumCores())
	for i := range temps {
		temps[i] = 62
	}
	var threads []sim.ThreadInfo
	for i := 0; i < plat.NumCores(); i++ {
		b := bs[i%len(bs)]
		threads = append(threads, sim.ThreadInfo{
			ID:           sim.ThreadID{Task: i / 4, Thread: i % 4},
			Benchmark:    b.Name,
			Perf:         b.Perf(),
			NominalWatts: b.NominalWatts,
			Core:         -1,
			AvgPower:     2.2,
			CPI:          1 + float64(i%5)*0.3,
		})
	}
	return &sim.State{
		Time:      0,
		CoreTemps: temps,
		Threads:   threads,
		Platform:  plat,
		TDTM:      70,
	}, nil
}

// String renders the result in the paper's reporting style.
func (o *OverheadResult) String() string {
	return fmt.Sprintf(
		"Algorithm 1 (one ring eval): %v\n"+
			"HotPotato decision (rotation fast path): %v (%.2f%% of a 0.5 ms epoch)\n"+
			"HotPotato placement (per arriving thread): %v",
		o.Alg1PerCall, o.DecidePerCall, o.EpochFraction*100, o.PlacementPerThread)
}
