// Package matrix provides the dense linear algebra needed by the RC thermal
// model and the analytical peak-temperature method: matrix arithmetic, LU
// factorization with partial pivoting, a cyclic Jacobi eigensolver for
// symmetric matrices, the symmetric-definite generalized eigenproblem, and
// the matrix exponential (both Padé scaling-and-squaring and eigen-based).
//
// Matrices are small and dense (an N-node thermal network has N on the order
// of a few hundred), so the package favours clarity and numerical robustness
// over blocked performance tricks.
package matrix

import (
	"fmt"
	"math"
	"strings"
)

// Dense is a row-major dense matrix.
type Dense struct {
	rows, cols int
	data       []float64
}

// New returns a zeroed rows×cols matrix.
func New(rows, cols int) *Dense {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("matrix: invalid dimensions %dx%d", rows, cols))
	}
	return &Dense{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// NewFromRows builds a matrix from row slices. All rows must have equal length.
func NewFromRows(rows [][]float64) *Dense {
	if len(rows) == 0 || len(rows[0]) == 0 {
		panic("matrix: NewFromRows needs at least one non-empty row")
	}
	m := New(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.cols {
			panic(fmt.Sprintf("matrix: ragged rows: row %d has %d entries, want %d", i, len(r), m.cols))
		}
		copy(m.data[i*m.cols:(i+1)*m.cols], r)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Dense {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.data[i*n+i] = 1
	}
	return m
}

// Diagonal returns a square matrix with d on the diagonal.
func Diagonal(d []float64) *Dense {
	m := New(len(d), len(d))
	for i, v := range d {
		m.data[i*len(d)+i] = v
	}
	return m
}

// Rows returns the number of rows.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Dense) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Dense) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set stores v at row i, column j.
func (m *Dense) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

// Add adds v to the element at row i, column j.
func (m *Dense) Add(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] += v
}

func (m *Dense) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("matrix: index (%d,%d) out of range for %dx%d matrix", i, j, m.rows, m.cols))
	}
}

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	c := New(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// Row returns a copy of row i.
func (m *Dense) Row(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("matrix: row %d out of range for %dx%d matrix", i, m.rows, m.cols))
	}
	out := make([]float64, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// RowView returns row i as a slice sharing the matrix's storage. It avoids
// the copy of Row on hot paths; the caller must not modify the contents.
func (m *Dense) RowView(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("matrix: row %d out of range for %dx%d matrix", i, m.rows, m.cols))
	}
	return m.data[i*m.cols : (i+1)*m.cols]
}

// Col returns a copy of column j.
func (m *Dense) Col(j int) []float64 {
	if j < 0 || j >= m.cols {
		panic(fmt.Sprintf("matrix: col %d out of range for %dx%d matrix", j, m.rows, m.cols))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = m.data[i*m.cols+j]
	}
	return out
}

// DiagonalOf returns a copy of the main diagonal.
func (m *Dense) DiagonalOf() []float64 {
	n := m.rows
	if m.cols < n {
		n = m.cols
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = m.data[i*m.cols+i]
	}
	return out
}

// Plus returns m + b.
func (m *Dense) Plus(b *Dense) *Dense {
	m.sameShape(b)
	c := New(m.rows, m.cols)
	for i := range m.data {
		c.data[i] = m.data[i] + b.data[i]
	}
	return c
}

// Minus returns m - b.
func (m *Dense) Minus(b *Dense) *Dense {
	m.sameShape(b)
	c := New(m.rows, m.cols)
	for i := range m.data {
		c.data[i] = m.data[i] - b.data[i]
	}
	return c
}

// Scaled returns s*m.
func (m *Dense) Scaled(s float64) *Dense {
	c := New(m.rows, m.cols)
	for i := range m.data {
		c.data[i] = s * m.data[i]
	}
	return c
}

func (m *Dense) sameShape(b *Dense) {
	if m.rows != b.rows || m.cols != b.cols {
		panic(fmt.Sprintf("matrix: shape mismatch %dx%d vs %dx%d", m.rows, m.cols, b.rows, b.cols))
	}
}

// Mul returns the matrix product m*b.
func (m *Dense) Mul(b *Dense) *Dense {
	c := New(m.rows, b.cols)
	m.MulTo(c, b)
	return c
}

// MulTo computes the matrix product m*b into dst, which must be
// m.Rows()×b.Cols(). It performs no allocation. dst must not alias m or b.
func (m *Dense) MulTo(dst, b *Dense) {
	if m.cols != b.rows {
		panic(fmt.Sprintf("matrix: cannot multiply %dx%d by %dx%d", m.rows, m.cols, b.rows, b.cols))
	}
	if dst.rows != m.rows || dst.cols != b.cols {
		panic(fmt.Sprintf("matrix: MulTo destination is %dx%d, want %dx%d", dst.rows, dst.cols, m.rows, b.cols))
	}
	for i := range dst.data {
		dst.data[i] = 0
	}
	for i := 0; i < m.rows; i++ {
		ci := dst.data[i*dst.cols : (i+1)*dst.cols]
		for k := 0; k < m.cols; k++ {
			aik := m.data[i*m.cols+k]
			if aik == 0 {
				continue
			}
			bk := b.data[k*b.cols : (k+1)*b.cols]
			for j := range ci {
				ci[j] += aik * bk[j]
			}
		}
	}
}

// MulVec returns the matrix-vector product m*x.
func (m *Dense) MulVec(x []float64) []float64 {
	y := make([]float64, m.rows)
	m.MulVecTo(y, x)
	return y
}

// MulVecTo computes the matrix-vector product m*x into dst, which must have
// length m.Rows(). It performs no allocation — the destination-passing twin of
// MulVec for hot loops. dst must not alias x (the product reads every element
// of x for every element of dst it writes).
func (m *Dense) MulVecTo(dst, x []float64) {
	if m.cols != len(x) {
		panic(fmt.Sprintf("matrix: cannot multiply %dx%d by vector of length %d", m.rows, m.cols, len(x)))
	}
	if len(dst) != m.rows {
		panic(fmt.Sprintf("matrix: MulVecTo destination length %d, want %d", len(dst), m.rows))
	}
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		dst[i] = s
	}
}

// Transpose returns mᵀ.
func (m *Dense) Transpose() *Dense {
	t := New(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			t.data[j*t.cols+i] = m.data[i*m.cols+j]
		}
	}
	return t
}

// IsSymmetric reports whether m is square and symmetric within tol.
func (m *Dense) IsSymmetric(tol float64) bool {
	if m.rows != m.cols {
		return false
	}
	for i := 0; i < m.rows; i++ {
		for j := i + 1; j < m.cols; j++ {
			if math.Abs(m.data[i*m.cols+j]-m.data[j*m.cols+i]) > tol {
				return false
			}
		}
	}
	return true
}

// MaxAbs returns the largest absolute entry of m.
func (m *Dense) MaxAbs() float64 {
	var max float64
	for _, v := range m.data {
		if a := math.Abs(v); a > max {
			max = a
		}
	}
	return max
}

// FrobeniusNorm returns the Frobenius norm of m.
func (m *Dense) FrobeniusNorm() float64 {
	var s float64
	for _, v := range m.data {
		s += v * v
	}
	return math.Sqrt(s)
}

// InfNorm returns the maximum absolute row sum of m.
func (m *Dense) InfNorm() float64 {
	var max float64
	for i := 0; i < m.rows; i++ {
		var s float64
		for _, v := range m.data[i*m.cols : (i+1)*m.cols] {
			s += math.Abs(v)
		}
		if s > max {
			max = s
		}
	}
	return max
}

// ApproxEqual reports whether m and b have the same shape and agree entrywise
// within tol.
func (m *Dense) ApproxEqual(b *Dense, tol float64) bool {
	if m.rows != b.rows || m.cols != b.cols {
		return false
	}
	for i := range m.data {
		if math.Abs(m.data[i]-b.data[i]) > tol {
			return false
		}
	}
	return true
}

// String renders the matrix for debugging.
func (m *Dense) String() string {
	var sb strings.Builder
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				sb.WriteByte(' ')
			}
			fmt.Fprintf(&sb, "% .6g", m.data[i*m.cols+j])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
