// Package tracerec collects per-slice simulation traces (temperatures,
// powers, frequencies) and turns them into CSV files, time series, and
// summary statistics — the raw material of the paper's Fig. 2 plots.
package tracerec

import (
	"fmt"
	"io"

	"repro/internal/stats"
)

// Recorder accumulates simulation trace samples. Install Hook() on a
// simulation via SetTrace before Run.
type Recorder struct {
	stride int
	slice  int

	times []float64
	temps [][]float64
	watts [][]float64
	freqs [][]float64
}

// New creates a recorder that keeps every stride-th slice (stride ≥ 1).
func New(stride int) (*Recorder, error) {
	if stride < 1 {
		return nil, fmt.Errorf("tracerec: stride must be ≥ 1, got %d", stride)
	}
	return &Recorder{stride: stride}, nil
}

// Hook returns the observer to install with Simulator.SetTrace.
func (r *Recorder) Hook() func(t float64, coreTemps, coreWatts, coreFreq []float64) {
	return func(t float64, coreTemps, coreWatts, coreFreq []float64) {
		if r.slice%r.stride == 0 {
			r.times = append(r.times, t)
			r.temps = append(r.temps, append([]float64(nil), coreTemps...))
			r.watts = append(r.watts, append([]float64(nil), coreWatts...))
			r.freqs = append(r.freqs, append([]float64(nil), coreFreq...))
		}
		r.slice++
	}
}

// Len returns the number of recorded samples.
func (r *Recorder) Len() int { return len(r.times) }

// Cores returns the number of cores per sample (0 before any sample).
func (r *Recorder) Cores() int {
	if len(r.temps) == 0 {
		return 0
	}
	return len(r.temps[0])
}

// Times returns a copy of the sample timestamps.
func (r *Recorder) Times() []float64 {
	return append([]float64(nil), r.times...)
}

// TempSeries returns the temperature time series of one core.
func (r *Recorder) TempSeries(core int) []float64 {
	out := make([]float64, len(r.temps))
	for i, row := range r.temps {
		out[i] = row[core]
	}
	return out
}

// MaxTempSeries returns, per sample, the hottest core temperature.
func (r *Recorder) MaxTempSeries() []float64 {
	out := make([]float64, len(r.temps))
	for i, row := range r.temps {
		m := row[0]
		for _, v := range row[1:] {
			if v > m {
				m = v
			}
		}
		out[i] = m
	}
	return out
}

// TotalPowerSeries returns, per sample, the summed core power.
func (r *Recorder) TotalPowerSeries() []float64 {
	out := make([]float64, len(r.watts))
	for i, row := range r.watts {
		var s float64
		for _, v := range row {
			s += v
		}
		out[i] = s
	}
	return out
}

// TempSummary summarises the hottest-core series.
func (r *Recorder) TempSummary() stats.Summary {
	return stats.Summarize(r.MaxTempSeries())
}

// WriteTemperatureCSV writes "time_ms, core0_C, core1_C, ..." rows.
func (r *Recorder) WriteTemperatureCSV(w io.Writer) error {
	if r.Len() == 0 {
		return fmt.Errorf("tracerec: no samples recorded")
	}
	if _, err := fmt.Fprint(w, "time_ms"); err != nil {
		return err
	}
	for c := 0; c < r.Cores(); c++ {
		if _, err := fmt.Fprintf(w, ", core%d_C", c); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	for i, t := range r.times {
		if _, err := fmt.Fprintf(w, "%.3f", t*1e3); err != nil {
			return err
		}
		for _, v := range r.temps[i] {
			if _, err := fmt.Fprintf(w, ", %.3f", v); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// WriteSummaryCSV writes one row per sample: time, max temp, total power,
// and min/max frequency — a compact overview trace.
func (r *Recorder) WriteSummaryCSV(w io.Writer) error {
	if r.Len() == 0 {
		return fmt.Errorf("tracerec: no samples recorded")
	}
	if _, err := fmt.Fprintln(w, "time_ms, max_temp_C, total_power_W, fmin_GHz, fmax_GHz"); err != nil {
		return err
	}
	maxT := r.MaxTempSeries()
	power := r.TotalPowerSeries()
	for i, t := range r.times {
		lo, hi := r.freqs[i][0], r.freqs[i][0]
		for _, f := range r.freqs[i][1:] {
			if f < lo {
				lo = f
			}
			if f > hi {
				hi = f
			}
		}
		if _, err := fmt.Fprintf(w, "%.3f, %.3f, %.3f, %.2f, %.2f\n",
			t*1e3, maxT[i], power[i], lo/1e9, hi/1e9); err != nil {
			return err
		}
	}
	return nil
}
