package service

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"net/http"
	"time"

	"repro/internal/obs"
)

// RequestIDHeader is the correlation header: an inbound value is honored (so
// a caller or an upstream proxy can stitch its own traces to ours) and the
// chosen ID is always echoed back on the response.
const RequestIDHeader = "X-Request-Id"

// maxRequestIDLen bounds an inbound correlation ID; anything longer (or
// containing non-printable bytes, which would corrupt the log stream) is
// replaced with a generated one.
const maxRequestIDLen = 128

// newRequestID returns a fresh 16-hex-char correlation ID.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; a degraded ID is
		// still better than a missing one.
		return "rid-unavailable"
	}
	return hex.EncodeToString(b[:])
}

// validRequestID accepts printable ASCII without spaces, bounded in length —
// enough for every sane client convention (UUIDs, hex, ULIDs) while keeping
// header-injection and log-forgery bytes out.
func validRequestID(id string) bool {
	if id == "" || len(id) > maxRequestIDLen {
		return false
	}
	for i := 0; i < len(id); i++ {
		if id[i] <= ' ' || id[i] > '~' {
			return false
		}
	}
	return true
}

// requestIDCtxKey carries the request's correlation ID through its context.
type requestIDCtxKey struct{}

// requestIDFrom returns the correlation ID assigned by the middleware, or ""
// outside a request context.
func requestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDCtxKey{}).(string)
	return id
}

// statusWriter captures the status code and body size for the access log.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

// Flush forwards to the underlying writer so long-running synchronous
// responses keep streaming through the wrapper.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// withObservability is the request middleware: it assigns or propagates the
// correlation ID and trace context, echoes the ID on the response, attaches
// a request-scoped logger (with both identities) to the context, and emits
// exactly one structured access-log line per request with status, latency
// and byte count. Handlers and the job pipeline retrieve the logger with
// obs.LoggerFrom(ctx) so every line they emit carries the request ID.
//
// Trace context follows the same honor-or-mint rule as the request ID: a
// valid inbound traceparent header (the fabric dispatcher sends one on every
// lease, and any W3C-aware client may too) is adopted so worker-side spans
// parent into the caller's trace; anything else gets a fresh trace ID.
// Handlers read it back with obs.TraceContextFrom(ctx).
func (s *Server) withObservability(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get(RequestIDHeader)
		if !validRequestID(id) {
			id = newRequestID()
		}
		w.Header().Set(RequestIDHeader, id)
		tc, ok := obs.ParseTraceParent(r.Header.Get(obs.TraceParentHeader))
		if !ok {
			tc = obs.NewTraceContext()
		}

		logger := s.logger.With("request_id", id, "trace_id", tc.TraceID)
		ctx := obs.ContextWithLogger(r.Context(), logger)
		ctx = context.WithValue(ctx, requestIDCtxKey{}, id)
		ctx = obs.ContextWithTraceContext(ctx, tc)

		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		began := time.Now()
		next.ServeHTTP(sw, r.WithContext(ctx))
		logger.Info("http request",
			"method", r.Method,
			"path", r.URL.Path,
			"status", sw.status,
			"bytes", sw.bytes,
			"duration_ms", float64(time.Since(began).Nanoseconds())/1e6,
		)
	})
}
