package thermal

import (
	"fmt"

	"repro/internal/matrix"
)

// stepKrylovTol is the per-step relative error target the sparse stepper
// hands the Krylov kernel; see NewStepper for why it undercuts
// matrix.DefaultKrylovTol.
const stepKrylovTol = 1e-14

// Stepper advances the transient thermal state with a fixed step dt using the
// exact matrix-exponential solution of Eq. 4 (the MatEx method [22]):
//
//	T(t+dt) = T_steady(P) + e^{C·dt} (T(t) − T_steady(P))
//
// In dense mode e^{C·dt} is computed once from the model's
// eigendecomposition, so each step costs one matrix–vector product (O(N²)).
// In sparse mode the propagator is never materialized: the difference term
// is whitened to v̂ = A^{1/2}(T − T_steady), e^{Ĉ·dt}·v̂ is evaluated by the
// matrix-free Krylov kernel (matrix.KrylovExpm over Â = −A^{−1/2}BA^{−1/2},
// a similarity transform of C), and the result unwhitened — O(nnz·m) per
// step with subspace dimension m chosen adaptively against
// matrix.DefaultKrylovTol. Both paths are exact for power held constant
// over the step, agreeing to well below the 1e-9 K golden bound — the
// interval-simulation contract.
//
// A Stepper owns a scratch block that StepTo and SteadyStateInto reuse, so
// the per-step hot path allocates nothing in either mode. The scratch makes
// a Stepper NOT goroutine-safe: build one per worker (they are cheap next
// to the model's factorization), per the run-state rule of
// docs/CONCURRENCY.md. The underlying Model remains freely shareable.
type Stepper struct {
	m   *Model
	dt  float64
	exp *matrix.Dense // e^{C·dt}; nil in sparse mode

	// Sparse-mode kernel (nil in dense mode).
	kry          *matrix.KrylovExpm
	solveScratch []float64 // banded-solve scratch, length N−1

	// Scratch reused by StepTo/SteadyStateInto (never escapes a call).
	p    []float64 // extended power vector, length N
	tss  []float64 // steady state for the step's power, length N
	diff []float64 // T − T_steady, length N
}

// NewStepper precomputes the transient kernel for step size dt (seconds):
// the dense propagator e^{C·dt}, or in sparse mode the Krylov scratch (the
// step size is then only used at evaluation time).
func (m *Model) NewStepper(dt float64) (*Stepper, error) {
	if dt <= 0 {
		return nil, fmt.Errorf("thermal: step size must be positive, got %g", dt)
	}
	s := &Stepper{
		m: m, dt: dt,
		p:    make([]float64, m.N),
		tss:  make([]float64, m.N),
		diff: make([]float64, m.N),
	}
	if m.sp != nil {
		// Tighter than matrix.DefaultKrylovTol: the estimate lives in the
		// whitened space, where unwhitening by A^{−1/2} can amplify it by
		// max 1/√a_ii (small silicon capacitances), and step errors
		// accumulate over a trajectory. Two extra orders keep long
		// trajectories inside the 1e-9 K dense-equivalence bound for the
		// cost of about one extra Lanczos dimension per step.
		s.kry = matrix.NewKrylovExpm(newWhitenedOp(m.sp), 0, stepKrylovTol)
		s.solveScratch = make([]float64, m.N-1)
		return s, nil
	}
	negLambda := matrix.VecScale(-1, m.eig.Lambda) // eigenvalues of C
	s.exp = matrix.ExpmEigen(m.eig.V, negLambda, m.eig.VInv, dt)
	return s, nil
}

// Dt returns the step size in seconds.
func (s *Stepper) Dt() float64 { return s.dt }

// Step advances the node temperature vector t by dt under the per-core power
// vector coreWatts (held constant for the step) and returns the new node
// temperatures.
func (s *Stepper) Step(t []float64, coreWatts []float64) []float64 {
	next := make([]float64, s.m.N)
	s.StepTo(next, t, coreWatts)
	return next
}

// StepTo advances the node temperature vector t by dt under coreWatts,
// writing the new node temperatures into dst (length N). It allocates
// nothing. dst may alias t — stepping a state in place is the intended hot
// path — but must not alias the stepper's scratch or coreWatts.
func (s *Stepper) StepTo(dst, t, coreWatts []float64) {
	if len(t) != s.m.N {
		panic(fmt.Sprintf("thermal: temperature vector length %d, want %d", len(t), s.m.N))
	}
	if len(dst) != s.m.N {
		panic(fmt.Sprintf("thermal: step destination length %d, want %d", len(dst), s.m.N))
	}
	s.SteadyStateInto(s.tss, coreWatts)
	matrix.VecSubTo(s.diff, t, s.tss)
	if s.exp != nil {
		s.exp.MulVecTo(dst, s.diff)
		matrix.VecAddTo(dst, s.tss)
		return
	}
	// Sparse path: whiten, propagate in the Krylov subspace, unwhiten.
	sp := s.m.sp
	for i, v := range s.diff {
		s.diff[i] = v * sp.sqrtA[i]
	}
	if _, _, err := s.kry.ExpmVTo(s.diff, s.dt, s.diff); err != nil {
		// Only reachable through non-finite inputs: the whitened operator is
		// negative semidefinite by construction, where the kernel cannot
		// fail. Treat like the singular-matrix panics of internal/matrix.
		panic(fmt.Sprintf("thermal: Krylov propagator failed: %v", err))
	}
	for i := range dst {
		dst[i] = s.diff[i]*sp.invSqrtA[i] + s.tss[i]
	}
}

// SteadyStateInto solves Eq. 3 into dst (length N) using the stepper's
// scratch for the extended power vector; the zero-allocation twin of
// Model.SteadyState, in either solver mode. dst must not alias the
// stepper's scratch. Not goroutine-safe (see the Stepper doc).
func (s *Stepper) SteadyStateInto(dst, coreWatts []float64) {
	s.m.ExtendPowerInto(s.p, coreWatts)
	if s.m.sp != nil {
		s.m.sp.solveInto(dst, s.p, s.solveScratch)
	} else {
		s.m.binv.MulVecTo(dst, s.p)
	}
	matrix.VecAddTo(dst, s.m.steadyAmbient)
}

// Propagator returns e^{C·dt}, or nil in sparse mode, where the propagator
// is never materialized (the Krylov kernel applies it matrix-free). The
// caller must not modify it.
func (s *Stepper) Propagator() *matrix.Dense { return s.exp }

// Transient simulates from the initial node temperatures t0 under a sequence
// of per-core power vectors (one per step) and returns the temperature
// trajectory including the initial point: len(powers)+1 node vectors. Only
// the returned trajectory rows are allocated.
func (s *Stepper) Transient(t0 []float64, powers [][]float64) [][]float64 {
	out := make([][]float64, 0, len(powers)+1)
	out = append(out, append([]float64(nil), t0...))
	cur := out[0]
	for _, p := range powers {
		next := make([]float64, len(cur))
		s.StepTo(next, cur, p)
		out = append(out, next)
		cur = next
	}
	return out
}
