package sched

import "repro/internal/obs"

// metricTau tracks the HotPotato rotation epoch length τ chosen by the most
// recent Decide call — 0 while rotation is off. Algorithm 2 halves τ under
// thermal pressure and relaxes it back, so this gauge is the live view of how
// hard the policy is working.
var metricTau = obs.NewGauge("sched_hotpotato_tau_seconds",
	"Rotation epoch length τ selected by the last HotPotato decision (0 = not rotating).")
