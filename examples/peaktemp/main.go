// Peaktemp: use the paper's analytical method (Algorithm 1) directly —
// compute the steady-periodic peak temperature of a synchronous thread
// rotation for a range of rotation intervals, and contrast it with pinning
// the thread and with the time-averaged power field.
package main

import (
	"fmt"
	"log"

	hotpotato "repro"
)

func main() {
	plat, err := hotpotato.NewPlatform(4, 4)
	if err != nil {
		log.Fatal(err)
	}
	calc := hotpotato.NewPeakCalculator(plat)

	// One 9 W thread (a blackscholes-class compute phase) among idle cores.
	base := make([]float64, plat.NumCores())
	for i := range base {
		base[i] = 0.3
	}
	base[5] = 9

	// Static pinning = a one-epoch "rotation".
	static := hotpotato.RotationPlan{Tau: 1e-3, Powers: [][]float64{base}}
	staticPeak, err := calc.PeakTemperature(static)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pinned at core 5:            peak %.2f °C\n", staticPeak)

	// Rotating over the four centre cores at various intervals.
	centre := []int{5, 6, 10, 9}
	fmt.Println("\nrotating over the centre ring (cores 5,6,10,9):")
	fmt.Println("tau_ms, peak_C")
	for _, tau := range []float64{4e-3, 2e-3, 1e-3, 0.5e-3, 0.25e-3, 0.125e-3} {
		plan := hotpotato.RotatePlan(tau, base, centre)
		peak, err := calc.PeakTemperature(plan)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%.3f, %.2f\n", tau*1e3, peak)
	}

	// The τ→0 limit: the spatially averaged power field.
	avg := append([]float64(nil), base...)
	mean := (9 + 3*0.3) / 4
	for _, c := range centre {
		avg[c] = mean
	}
	limit := hotpotato.RotationPlan{Tau: 1e-3, Powers: [][]float64{avg}}
	limitPeak, err := calc.PeakTemperature(limit)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nτ→0 limit (averaged power): peak %.2f °C\n", limitPeak)
	fmt.Println("\nfaster rotation pushes the peak toward the averaged-power limit —")
	fmt.Println("this is the knob HotPotato's Algorithm 2 turns when headroom runs out.")
}
