package sim

import (
	"context"
	"math"
	"testing"

	"repro/internal/obs"
	"repro/internal/workload"
)

func TestEpochTracerRecordsOneEventPerEpoch(t *testing.T) {
	plat := testPlatform(t, 2, 2)
	cfg := DefaultConfig()
	task := smallTask(t, "blackscholes", 2, 0, 0.02)
	s, err := New(plat, cfg, &greedy{}, []*workload.Task{task})
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.NewRingTracer(1 << 16)
	s.SetEpochTracer(tr)
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if tr.Total() != int64(res.SchedulerInvocations) {
		t.Fatalf("recorded %d events for %d scheduler invocations", tr.Total(), res.SchedulerInvocations)
	}
	if tr.Dropped() != 0 {
		t.Fatalf("dropped %d events with an oversized ring", tr.Dropped())
	}
	events := tr.Events()
	ambient := plat.Thermal.Ambient()
	n := plat.NumCores()
	var migrations int
	for i, ev := range events {
		if ev.Epoch != i {
			t.Fatalf("event %d has epoch %d", i, ev.Epoch)
		}
		if i > 0 && ev.Time <= events[i-1].Time {
			t.Errorf("event %d time %g not after %g", i, ev.Time, events[i-1].Time)
		}
		if len(ev.Freqs) != n || len(ev.CoreTemps) != n || len(ev.CorePower) != n {
			t.Fatalf("event %d vectors sized %d/%d/%d, want %d",
				i, len(ev.Freqs), len(ev.CoreTemps), len(ev.CorePower), n)
		}
		peak := math.Inf(-1)
		for _, temp := range ev.CoreTemps {
			peak = math.Max(peak, temp)
		}
		if ev.PeakTemp < peak {
			t.Errorf("event %d peak %g below hottest core %g", i, ev.PeakTemp, peak)
		}
		if got := ev.PeakTemp - ambient; math.Abs(got-ev.AmbientDelta) > 1e-9 {
			t.Errorf("event %d ambient delta %g, want %g", i, ev.AmbientDelta, got)
		}
		for key, core := range ev.Mapping {
			var id ThreadID
			if err := id.UnmarshalText([]byte(key)); err != nil {
				t.Fatalf("event %d mapping key %q: %v", i, key, err)
			}
			if core < 0 || core >= n {
				t.Fatalf("event %d maps %q to invalid core %d", i, key, core)
			}
		}
		if ev.WallNS < 0 {
			t.Errorf("event %d negative wall clock %d", i, ev.WallNS)
		}
		migrations += ev.Migrations
	}
	if migrations != res.Migrations {
		t.Errorf("events sum to %d migrations, result has %d", migrations, res.Migrations)
	}
	// The greedy scheduler pins threads on first assignment: epoch 0 maps both
	// threads, later epochs keep them mapped.
	if len(events) == 0 || len(events[0].Mapping) != 2 {
		t.Fatalf("epoch 0 mapping = %v, want 2 threads", events[0].Mapping)
	}
}

func TestRunAdvancesObsCounters(t *testing.T) {
	plat := testPlatform(t, 2, 2)
	cfg := DefaultConfig()
	task := smallTask(t, "swaptions", 1, 0, 0.02)
	s, err := New(plat, cfg, &greedy{}, []*workload.Task{task})
	if err != nil {
		t.Fatal(err)
	}
	runs0 := metricRuns.Value()
	epochs0 := metricEpochs.Value()
	slices0 := metricSlices.Value()
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if d := metricRuns.Value() - runs0; d < 1 {
		t.Errorf("sim_runs_total advanced by %d, want ≥ 1", d)
	}
	if d := metricEpochs.Value() - epochs0; d < int64(res.SchedulerInvocations) {
		t.Errorf("sim_epochs_total advanced by %d, want ≥ %d", d, res.SchedulerInvocations)
	}
	wantSlices := int64(math.Round(res.SimulatedTime / cfg.TimeSlice))
	if d := metricSlices.Value() - slices0; d < wantSlices {
		t.Errorf("sim_slices_total advanced by %d, want ≥ %d", d, wantSlices)
	}
	if got := metricPeakTemp.Value(); math.Abs(got-res.PeakTemp) > 1e-9 && got < res.PeakTemp {
		// Another run may have finalized later with a different peak; the
		// gauge must at least be a finite plausible temperature.
		t.Errorf("sim_peak_temp_celsius = %g after run peaking at %g", got, res.PeakTemp)
	}
}

// TestRunContextRecordsEpochSpans pins the span granularity contract: one
// child span per scheduler epoch (never per slice), each carrying the epoch
// index and the decision's host wall-clock.
func TestRunContextRecordsEpochSpans(t *testing.T) {
	plat := testPlatform(t, 2, 2)
	task := smallTask(t, "blackscholes", 2, 0, 0.02)
	s, err := New(plat, DefaultConfig(), &greedy{}, []*workload.Task{task})
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.NewSpanRecorder(1 << 16)
	root := rec.Start("run")
	ctx := obs.ContextWithSpan(context.Background(), root)
	res, err := s.RunContext(ctx)
	if err != nil {
		t.Fatal(err)
	}
	root.End()

	roots := rec.Tree()
	if len(roots) != 1 {
		t.Fatalf("got %d root spans, want 1", len(roots))
	}
	epochs := roots[0].Children
	if len(epochs) != res.SchedulerInvocations {
		t.Fatalf("recorded %d epoch spans for %d scheduler invocations",
			len(epochs), res.SchedulerInvocations)
	}
	var decideTotal int64
	for i, ep := range epochs {
		if ep.Name != "epoch" {
			t.Fatalf("child %d named %q, want epoch", i, ep.Name)
		}
		if !ep.Done {
			t.Errorf("epoch span %d left open", i)
		}
		if got, ok := ep.Attrs["epoch"].(int); !ok || got != i {
			t.Errorf("epoch span %d attr epoch = %v", i, ep.Attrs["epoch"])
		}
		ns, ok := ep.Attrs["decide_ns"].(int64)
		if !ok || ns < 0 {
			t.Errorf("epoch span %d attr decide_ns = %v", i, ep.Attrs["decide_ns"])
		}
		decideTotal += ns
		if _, ok := ep.Attrs["sim_time_s"].(float64); !ok {
			t.Errorf("epoch span %d missing sim_time_s", i)
		}
		if _, ok := ep.Attrs["migrations"].(int); !ok {
			t.Errorf("epoch span %d missing migrations", i)
		}
	}
	if decideTotal > res.SchedulerHostTime.Nanoseconds() {
		t.Errorf("epoch spans sum to %d ns of decide time, result says %d",
			decideTotal, res.SchedulerHostTime.Nanoseconds())
	}
}

// TestRunContextWithoutSpansIsUnchanged guards the uninstrumented fast path:
// no recorder in the context means no spans, and the run still succeeds.
func TestRunContextWithoutSpansIsUnchanged(t *testing.T) {
	plat := testPlatform(t, 2, 2)
	task := smallTask(t, "swaptions", 1, 0, 0.02)
	s, err := New(plat, DefaultConfig(), &greedy{}, []*workload.Task{task})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.RunContext(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestFinalizeObservesPeakTempDistribution(t *testing.T) {
	plat := testPlatform(t, 2, 2)
	task := smallTask(t, "swaptions", 1, 0, 0.02)
	s, err := New(plat, DefaultConfig(), &greedy{}, []*workload.Task{task})
	if err != nil {
		t.Fatal(err)
	}
	count0, sum0 := metricPeakTempDist.Count(), metricPeakTempDist.Sum()
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	count1, sum1 := metricPeakTempDist.Count(), metricPeakTempDist.Sum()
	if count1 != count0+1 {
		t.Errorf("sim_peak_temp_distribution count %d -> %d, want exactly one new observation", count0, count1)
	}
	if got := sum1 - sum0; math.Abs(got-res.PeakTemp) > 1e-6 {
		t.Errorf("distribution sum advanced by %g, want the run's peak %g", got, res.PeakTemp)
	}
}
