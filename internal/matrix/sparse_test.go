package matrix

import (
	"math"
	"math/rand"
	"testing"
)

// randomSparse builds a random n×n matrix with the given fill fraction as
// both a builder and its dense mirror, exercising duplicate accumulation.
func randomSparse(rng *rand.Rand, n int, fill float64) (*SparseBuilder, *Dense) {
	b := NewSparseBuilder(n, n)
	d := New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if rng.Float64() < fill {
				v := rng.NormFloat64()
				b.Add(i, j, v)
				d.Add(i, j, v)
				if rng.Float64() < 0.3 { // duplicate triplet for the same slot
					w := rng.NormFloat64()
					b.Add(i, j, w)
					d.Add(i, j, w)
				}
			}
		}
	}
	return b, d
}

func TestCSRMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(20)
		b, d := randomSparse(rng, n, 0.25)
		c := b.ToCSR()

		if !c.ToDense().ApproxEqual(d, 1e-14) {
			t.Fatalf("trial %d: CSR→dense mismatch", trial)
		}
		if got := b.ToDense(); !got.ApproxEqual(d, 1e-14) {
			t.Fatalf("trial %d: builder→dense mismatch", trial)
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if math.Abs(c.At(i, j)-d.At(i, j)) > 1e-14 {
					t.Fatalf("trial %d: At(%d,%d) = %g, dense %g", trial, i, j, c.At(i, j), d.At(i, j))
				}
			}
		}

		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		want := d.MulVec(x)
		got := c.MulVec(x)
		for i := range want {
			if math.Abs(want[i]-got[i]) > 1e-12 {
				t.Fatalf("trial %d: MulVec[%d] = %g, want %g", trial, i, got[i], want[i])
			}
		}
	}
}

func TestCSREmptyRows(t *testing.T) {
	b := NewSparseBuilder(4, 4)
	b.Add(0, 0, 2)
	b.Add(3, 1, -1)
	c := b.ToCSR()
	if c.NNZ() != 2 {
		t.Fatalf("NNZ = %d, want 2", c.NNZ())
	}
	got := c.MulVec([]float64{1, 2, 3, 4})
	want := []float64{2, 0, 0, -2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("MulVec = %v, want %v", got, want)
		}
	}
}

func TestCSRSymmetry(t *testing.T) {
	b := NewSparseBuilder(3, 3)
	b.Add(0, 1, 2)
	b.Add(1, 0, 2)
	b.Add(0, 0, 1)
	if !b.ToCSR().IsSymmetric(0) {
		t.Fatal("symmetric matrix reported asymmetric")
	}
	b.Add(2, 0, 5)
	if b.ToCSR().IsSymmetric(1e-9) {
		t.Fatal("asymmetric matrix reported symmetric")
	}
}

func TestCSRMulVecToAllocationFree(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	b, _ := randomSparse(rng, 64, 0.1)
	c := b.ToCSR()
	x := make([]float64, 64)
	dst := make([]float64, 64)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	if allocs := testing.AllocsPerRun(100, func() { c.MulVecTo(dst, x) }); allocs != 0 {
		t.Fatalf("CSR.MulVecTo allocates %v times per call, want 0", allocs)
	}
}

func TestRCMReducesGridBandwidth(t *testing.T) {
	// 2D grid Laplacian numbered in the thermal model's natural order
	// (block si, then block sp) has O(n) bandwidth; RCM must bring it to
	// O(width).
	const w, h = 8, 8
	n := w * h
	b := NewSparseBuilder(2*n, 2*n)
	id := func(x, y int) int { return y*w + x }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			i := id(x, y)
			b.Add(i, i, 4)
			b.Add(n+i, n+i, 4)
			b.Add(i, n+i, -1) // vertical si→sp
			b.Add(n+i, i, -1)
			if x+1 < w {
				for _, off := range []int{0, n} {
					b.Add(off+i, off+id(x+1, y), -1)
					b.Add(off+id(x+1, y), off+i, -1)
				}
			}
			if y+1 < h {
				for _, off := range []int{0, n} {
					b.Add(off+i, off+id(x, y+1), -1)
					b.Add(off+id(x, y+1), off+i, -1)
				}
			}
		}
	}
	c := b.ToCSR()
	natural := BandwidthUnder(c, IdentityOrder(2*n))
	order := RCMOrder(c)

	seen := make([]bool, 2*n)
	for _, v := range order {
		if v < 0 || v >= 2*n || seen[v] {
			t.Fatalf("RCM ordering is not a permutation: %v", order)
		}
		seen[v] = true
	}

	rcm := BandwidthUnder(c, order)
	if rcm >= natural {
		t.Fatalf("RCM bandwidth %d not below natural %d", rcm, natural)
	}
	if rcm > 4*w {
		t.Fatalf("RCM bandwidth %d on a %dx%d grid stack, want O(width)", rcm, w, h)
	}
}

func TestRCMDisconnectedComponents(t *testing.T) {
	b := NewSparseBuilder(6, 6)
	b.Add(0, 1, -1)
	b.Add(1, 0, -1)
	b.Add(4, 5, -1)
	b.Add(5, 4, -1)
	order := RCMOrder(b.ToCSR())
	if len(order) != 6 {
		t.Fatalf("ordering covers %d of 6 nodes", len(order))
	}
	seen := map[int]bool{}
	for _, v := range order {
		seen[v] = true
	}
	if len(seen) != 6 {
		t.Fatalf("ordering is not a permutation: %v", order)
	}
}
