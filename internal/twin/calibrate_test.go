package twin

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// The calibration pipeline is differentially tested against the real
// simulator by the root package (twin_diff_test.go). Here we test it against
// a synthetic ground truth that is *exactly* linear in the twin's regressors:
// FitBucket must recover it to numerical precision, held-out predictions must
// land inside the published bounds, and every rejection branch must fire on
// malformed input.

const synthW, synthH = 3, 3 // 9 cores, kernelDim = 7

// The synthetic truth: a spatial kernel (distances 0..4 plus the two
// edge-correction terms) and linear coefficients over the package's own
// feature vectors. Values are arbitrary but physically-shaped (decaying
// kernel, positive responses).
var (
	synthKernel = []float64{2.0, 0.8, 0.3, 0.12, 0.05, 0.4, 0.02}
	synthTrans  = []float64{0.5, 0.3, 0.2, 0.35, 0.15}
	synthMake   = []float64{0.002, 1.1}
	synthRing   = []float64{0.2, 0.9, 0.05, 0.3, 0.2, 0.15, 0.1}
)

// synthRise evaluates the synthetic kernel at core i — the same feature
// construction fitKernel regresses on.
func synthRise(p []float64, i int) float64 {
	total := totalPower(p)
	sum := 0.0
	for j := range p {
		sum += synthKernel[manhattan(synthW, i, j)] * p[j]
	}
	e := float64(missingNeighbors(synthW, synthH, i))
	return sum + e*(synthKernel[5]*p[i]+synthKernel[6]*total)
}

// synthSteadyPeak is the SteadyPeakFunc of the synthetic substrate.
func synthSteadyPeak(p []float64) float64 {
	peak := math.Inf(-1)
	for i := range p {
		if r := synthRise(p, i); r > peak {
			peak = r
		}
	}
	return peak
}

const synthAmbient = 45.0

// synthSample draws one calibration point whose observation is the exact
// synthetic truth — zero model error by construction.
func synthSample(rng *rand.Rand) Sample {
	n := synthW * synthH
	c := Case{
		Width: synthW, Height: synthH, Ambient: synthAmbient,
		HotPower: make([]float64, n),
		AvgPower: make([]float64, n),
	}
	for i := range c.HotPower {
		c.HotPower[i] = 0.5 + 2.5*rng.Float64()
		c.AvgPower[i] = c.HotPower[i] * (0.3 + 0.6*rng.Float64())
	}
	c.SteadyHotDeltaC = synthSteadyPeak(c.HotPower)
	c.SteadyAvgDeltaC = synthSteadyPeak(c.AvgPower)
	c.Horizon = 0.005 + 2*rng.Float64()
	c.RawMakespan = c.Horizon * (0.8 + 0.2*rng.Float64())

	temps := make([]float64, n)
	peak := math.Inf(-1)
	for i := range temps {
		temps[i] = synthAmbient + synthRise(c.HotPower, i)
		if temps[i] > peak {
			peak = temps[i]
		}
	}
	var tx [transientDim]float64
	transientFeatures(tx[:], c)
	var mx [makespanDim]float64
	makespanFeatures(mx[:], c)
	return Sample{
		Case: c,
		Obs: Observation{
			SteadyTemps:    temps,
			SteadyPeakC:    peak,
			TransientPeakC: synthAmbient + dot(synthTrans, tx[:]),
			MakespanS:      dot(synthMake, mx[:]),
		},
	}
}

// synthRingSample draws one ring point with the exact synthetic anchors and
// an exactly-linear peak.
func synthRingSample(rng *rand.Rand) RingSample {
	n := synthW * synthH
	c := RingCase{
		Width: synthW, Height: synthH, Ambient: synthAmbient,
		Tau:  1e-4 + 3.9e-3*rng.Float64(),
		Base: make([]float64, n),
	}
	for i := range c.Base {
		c.Base[i] = 0.2 + 0.8*rng.Float64()
	}
	delta := 3 + rng.Intn(3)
	perm := rng.Perm(n)
	c.RingCores = perm[:delta]
	c.SlotWatts = make([]float64, delta)
	for i := range c.SlotWatts {
		c.SlotWatts[i] = 1 + 4*rng.Float64()
	}
	field := make([]float64, n)
	c.SteadyMaxDeltaC = MaxInstantSteadyDelta(field, c.Base, c.RingCores, c.SlotWatts, synthSteadyPeak)
	copy(field, c.Base)
	mean := 0.0
	for _, w := range c.SlotWatts {
		mean += w
	}
	mean /= float64(delta)
	for _, core := range c.RingCores {
		field[core] = mean
	}
	c.SteadyFieldDeltaC = synthSteadyPeak(field)

	var x [ringDim]float64
	ringFeaturesInto(x[:], field, c)
	return RingSample{Case: c, PeakC: synthAmbient + dot(synthRing, x[:])}
}

func synthSets(seed int64, samples, rings int) ([]Sample, []RingSample) {
	rng := rand.New(rand.NewSource(seed))
	ss := make([]Sample, samples)
	for i := range ss {
		ss[i] = synthSample(rng)
	}
	rs := make([]RingSample, rings)
	for i := range rs {
		rs[i] = synthRingSample(rng)
	}
	return ss, rs
}

// synthBucket is a fitted bucket over the synthetic truth, shared by tests.
func synthBucket(t *testing.T) BucketModel {
	t.Helper()
	samples, rings := synthSets(1, 64, 64)
	b, err := FitBucket(synthW, synthH, synthAmbient, samples, rings)
	if err != nil {
		t.Fatalf("FitBucket on exact synthetic data: %v", err)
	}
	return b
}

func synthModel(t *testing.T) *Model {
	t.Helper()
	m := &Model{
		Version: ModelVersion,
		Seed:    1,
		Buckets: map[string]BucketModel{BucketKey(synthW, synthH): synthBucket(t)},
	}
	hash, err := m.ComputeHash()
	if err != nil {
		t.Fatalf("ComputeHash: %v", err)
	}
	m.Hash = hash
	return m
}

func TestFitBucketRecoversSyntheticTruth(t *testing.T) {
	b := synthBucket(t)
	if b.Samples != 64 || b.RingSamples != 64 {
		t.Errorf("bucket records %d/%d samples, want 64/64", b.Samples, b.RingSamples)
	}
	if b.MinTotalW >= b.MaxTotalW || !(b.MaxTauS > 0) {
		t.Errorf("degenerate envelope: W [%g, %g], tau %g", b.MinTotalW, b.MaxTotalW, b.MaxTauS)
	}

	// The truth is exactly linear in the regressors, so the held-out
	// residuals are numerical noise and every published bound collapses to
	// its floor + penalty. If a bound is far above the floor the fit failed
	// to recover the truth.
	if b.SteadyBoundC > steadyFloorC+1 {
		t.Errorf("steady bound %g did not collapse toward the %g floor", b.SteadyBoundC, steadyFloorC)
	}
	if b.Transient.Bound > transFloorC+1 {
		t.Errorf("transient bound %g did not collapse toward the %g floor", b.Transient.Bound, transFloorC)
	}
	if b.Makespan.Bound > 0.2 {
		t.Errorf("makespan bound %g did not collapse toward its floor", b.Makespan.Bound)
	}
	if b.Ring.Bound > ringFloorC+1 {
		t.Errorf("ring bound %g did not collapse toward the %g floor", b.Ring.Bound, ringFloorC)
	}

	// Held-out cases from a fresh stream: every estimate within its bound.
	m := synthModel(t)
	if err := m.Validate(); err != nil {
		t.Fatalf("fitted model does not validate: %v", err)
	}
	fresh, _ := synthSets(99, 50, 0)
	for i, s := range fresh {
		pred, err := m.Predict(s.Case)
		if err != nil {
			t.Fatalf("Predict on held-out case %d: %v", i, err)
		}
		if d := math.Abs(pred.SteadyPeakC.Estimate - s.Obs.SteadyPeakC); d > pred.SteadyPeakC.Bound {
			t.Errorf("case %d: steady |err| %g > bound %g", i, d, pred.SteadyPeakC.Bound)
		}
		if d := math.Abs(pred.TransientPeakC.Estimate - s.Obs.TransientPeakC); d > pred.TransientPeakC.Bound {
			t.Errorf("case %d: transient |err| %g > bound %g", i, d, pred.TransientPeakC.Bound)
		}
		if d := math.Abs(pred.MakespanS.Estimate - s.Obs.MakespanS); d > pred.MakespanS.Bound {
			t.Errorf("case %d: makespan |err| %g > bound %g", i, d, pred.MakespanS.Bound)
		}
	}
}

func TestFitBucketRejectsMalformedInput(t *testing.T) {
	samples, rings := synthSets(1, 64, 64)

	// Deep-enough copies that per-case mutation cannot leak across subtests.
	cloneSamples := func() []Sample {
		out := make([]Sample, len(samples))
		copy(out, samples)
		return out
	}
	cloneRings := func() []RingSample {
		out := make([]RingSample, len(rings))
		copy(out, rings)
		return out
	}

	cases := []struct {
		name    string
		mutate  func(ss []Sample, rs []RingSample) ([]Sample, []RingSample)
		w, h    int
		wantErr string
	}{
		{"invalid grid", nil, 0, 3, "invalid bucket grid"},
		{"too few samples", func(ss []Sample, rs []RingSample) ([]Sample, []RingSample) {
			return ss[:32], rs
		}, synthW, synthH, "needs at least"},
		{"too few ring samples", func(ss []Sample, rs []RingSample) ([]Sample, []RingSample) {
			return ss, rs[:32]
		}, synthW, synthH, "ring samples"},
		{"invalid case", func(ss []Sample, rs []RingSample) ([]Sample, []RingSample) {
			ss[3].Case.Horizon = 0
			return ss, rs
		}, synthW, synthH, "horizon"},
		{"sample grid mismatch", func(ss []Sample, rs []RingSample) ([]Sample, []RingSample) {
			ss[5].Case.Width, ss[5].Case.Height = 4, 4
			ss[5].Case.HotPower = make([]float64, 16)
			ss[5].Case.AvgPower = make([]float64, 16)
			return ss, rs
		}, synthW, synthH, "bucket is"},
		{"short steady temps", func(ss []Sample, rs []RingSample) ([]Sample, []RingSample) {
			ss[7].Obs.SteadyTemps = ss[7].Obs.SteadyTemps[:4]
			return ss, rs
		}, synthW, synthH, "steady temps"},
		{"ring grid mismatch", func(ss []Sample, rs []RingSample) ([]Sample, []RingSample) {
			rs[2].Case.Width = 4
			return ss, rs
		}, synthW, synthH, "bucket is"},
		{"ring base length", func(ss []Sample, rs []RingSample) ([]Sample, []RingSample) {
			rs[4].Case.Base = rs[4].Case.Base[:5]
			return ss, rs
		}, synthW, synthH, "base has"},
		{"ring slot mismatch", func(ss []Sample, rs []RingSample) ([]Sample, []RingSample) {
			rs[6].Case.SlotWatts = rs[6].Case.SlotWatts[:1]
			return ss, rs
		}, synthW, synthH, "slots for"},
		{"ring NaN field anchor", func(ss []Sample, rs []RingSample) ([]Sample, []RingSample) {
			rs[8].Case.SteadyFieldDeltaC = math.NaN()
			return ss, rs
		}, synthW, synthH, "steady field delta"},
		{"ring negative max anchor", func(ss []Sample, rs []RingSample) ([]Sample, []RingSample) {
			rs[9].Case.SteadyMaxDeltaC = -1
			return ss, rs
		}, synthW, synthH, "steady max delta"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ss, rs := cloneSamples(), cloneRings()
			if tc.mutate != nil {
				// Mutations touch value copies inside the slices; re-clone
				// the mutated element's inner state only via the mutator.
				ss, rs = tc.mutate(ss, rs)
			}
			_, err := FitBucket(tc.w, tc.h, synthAmbient, ss, rs)
			if err == nil {
				t.Fatalf("FitBucket accepted %s", tc.name)
			}
		})
	}
}

func TestRingEstimatorSyntheticBoundHolds(t *testing.T) {
	m := synthModel(t)
	est, err := NewRingEstimator(m, synthW, synthH, synthSteadyPeak)
	if err != nil {
		t.Fatalf("NewRingEstimator: %v", err)
	}
	if !(est.Bound() > 0) {
		t.Fatalf("ring bound %g, want > 0", est.Bound())
	}
	_, fresh := synthSets(77, 0, 100)
	conclusive := 0
	for i, r := range fresh {
		peak, bound, ok := est.EstimateRingPeak(r.Case.Tau, r.Case.Base, r.Case.RingCores, r.Case.SlotWatts)
		if !ok {
			continue
		}
		conclusive++
		if bound != est.Bound() {
			t.Errorf("case %d: bound %g != model bound %g", i, bound, est.Bound())
		}
		if d := math.Abs(peak - r.PeakC); d > bound {
			t.Errorf("case %d: ring |err| %g > bound %g", i, d, bound)
		}
	}
	// The fresh stream draws from the calibration distribution, so the
	// envelope must admit the bulk of it.
	if conclusive < 80 {
		t.Errorf("only %d/100 fresh ring cases conclusive", conclusive)
	}
}

func TestRingEstimatorInconclusivePaths(t *testing.T) {
	m := synthModel(t)
	est, err := NewRingEstimator(m, synthW, synthH, synthSteadyPeak)
	if err != nil {
		t.Fatalf("NewRingEstimator: %v", err)
	}
	_, fresh := synthSets(78, 0, 1)
	r := fresh[0].Case
	if _, _, ok := est.EstimateRingPeak(r.Tau, r.Base, r.RingCores, r.SlotWatts); !ok {
		t.Fatal("baseline case must be conclusive")
	}
	bad := []struct {
		name string
		call func() bool
	}{
		{"short base", func() bool {
			_, _, ok := est.EstimateRingPeak(r.Tau, r.Base[:4], r.RingCores, r.SlotWatts)
			return ok
		}},
		{"no ring cores", func() bool {
			_, _, ok := est.EstimateRingPeak(r.Tau, r.Base, nil, nil)
			return ok
		}},
		{"slot mismatch", func() bool {
			_, _, ok := est.EstimateRingPeak(r.Tau, r.Base, r.RingCores, r.SlotWatts[:1])
			return ok
		}},
		{"zero tau", func() bool {
			_, _, ok := est.EstimateRingPeak(0, r.Base, r.RingCores, r.SlotWatts)
			return ok
		}},
		{"tau beyond envelope", func() bool {
			_, _, ok := est.EstimateRingPeak(1e3, r.Base, r.RingCores, r.SlotWatts)
			return ok
		}},
		{"power beyond envelope", func() bool {
			huge := make([]float64, len(r.SlotWatts))
			for i := range huge {
				huge[i] = 1e6
			}
			_, _, ok := est.EstimateRingPeak(r.Tau, r.Base, r.RingCores, huge)
			return ok
		}},
	}
	for _, tc := range bad {
		if tc.call() {
			t.Errorf("%s: estimate claims to be conclusive", tc.name)
		}
	}

	// A substrate solve going non-finite must demote, not propagate.
	nan, err := NewRingEstimator(m, synthW, synthH, func([]float64) float64 { return math.NaN() })
	if err != nil {
		t.Fatalf("NewRingEstimator: %v", err)
	}
	if _, _, ok := nan.EstimateRingPeak(r.Tau, r.Base, r.RingCores, r.SlotWatts); ok {
		t.Error("NaN steady solve marked conclusive")
	}
}

func TestRingEstimatorConstruction(t *testing.T) {
	m := synthModel(t)
	if _, err := NewRingEstimator(m, 2, 2, synthSteadyPeak); err == nil {
		t.Error("NewRingEstimator answered for an uncalibrated bucket")
	}
	if _, err := NewRingEstimator(m, synthW, synthH, nil); err == nil {
		t.Error("NewRingEstimator accepted a nil steady-peak solver")
	}
}

func TestRingEstimatorAllocFree(t *testing.T) {
	m := synthModel(t)
	est, err := NewRingEstimator(m, synthW, synthH, synthSteadyPeak)
	if err != nil {
		t.Fatalf("NewRingEstimator: %v", err)
	}
	_, fresh := synthSets(79, 0, 1)
	r := fresh[0].Case
	allocs := testing.AllocsPerRun(200, func() {
		est.EstimateRingPeak(r.Tau, r.Base, r.RingCores, r.SlotWatts)
	})
	if allocs != 0 {
		t.Errorf("EstimateRingPeak allocates %.1f objects per call, want 0", allocs)
	}
}

func TestMaxInstantSteadyDelta(t *testing.T) {
	// Two slots rotating over cores {0, 2} with an asymmetric solve: the
	// maximum over both offsets must be returned.
	base := []float64{0, 0, 0, 0}
	ring := []int{0, 2}
	slots := []float64{5, 1}
	solve := func(f []float64) float64 { return f[0] + 0.1*f[2] }
	field := make([]float64, 4)
	// offset 0: core0=5, core2=1 → 5.1; offset 1: core0=1, core2=5 → 1.5.
	if got := MaxInstantSteadyDelta(field, base, ring, slots, solve); math.Abs(got-5.1) > 1e-12 {
		t.Errorf("MaxInstantSteadyDelta = %g, want 5.1", got)
	}
}

func TestLoadFile(t *testing.T) {
	m := testModel(t)
	data, err := m.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "model.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFile(path)
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	if back.Hash != m.Hash {
		t.Errorf("LoadFile changed the hash: %s vs %s", back.Hash, m.Hash)
	}
	if _, err := LoadFile(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("LoadFile answered for a missing file")
	}
	bad := filepath.Join(dir, "corrupt.json")
	if err := os.WriteFile(bad, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(bad); err == nil {
		t.Error("LoadFile accepted a truncated artifact")
	}
}

func TestCaseValidate(t *testing.T) {
	valid := func() Case {
		return Case{
			Width: 2, Height: 2, Ambient: 45,
			HotPower:        []float64{1, 1, 1, 1},
			AvgPower:        []float64{1, 1, 1, 1},
			SteadyHotDeltaC: 1, SteadyAvgDeltaC: 1,
			Horizon: 0.1, RawMakespan: 0.1,
		}
	}
	if err := valid().Validate(); err != nil {
		t.Fatalf("valid case rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Case)
	}{
		{"zero width", func(c *Case) { c.Width = 0 }},
		{"hot power length", func(c *Case) { c.HotPower = c.HotPower[:3] }},
		{"avg power length", func(c *Case) { c.AvgPower = c.AvgPower[:3] }},
		{"zero horizon", func(c *Case) { c.Horizon = 0 }},
		{"infinite horizon", func(c *Case) { c.Horizon = math.Inf(1) }},
		{"NaN steady hot", func(c *Case) { c.SteadyHotDeltaC = math.NaN() }},
		{"negative steady avg", func(c *Case) { c.SteadyAvgDeltaC = -1 }},
		{"zero makespan", func(c *Case) { c.RawMakespan = 0 }},
		{"negative hot power", func(c *Case) { c.HotPower[2] = -1 }},
		{"NaN avg power", func(c *Case) { c.AvgPower[1] = math.NaN() }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := valid()
			tc.mutate(&c)
			if c.Validate() == nil {
				t.Errorf("Validate accepted a case with %s", tc.name)
			}
		})
	}
}

func TestBucketValidateRejects(t *testing.T) {
	base := testModel(t).Buckets[BucketKey(2, 2)]
	key := BucketKey(2, 2)
	if err := base.validate(key); err != nil {
		t.Fatalf("baseline bucket rejected: %v", err)
	}
	cases := []struct {
		name   string
		key    string
		mutate func(*BucketModel)
	}{
		{"invalid grid", key, func(b *BucketModel) { b.Width = 0 }},
		{"key mismatch", "8x8", func(b *BucketModel) {}},
		{"kernel length", key, func(b *BucketModel) { b.Kernel = b.Kernel[:2] }},
		{"NaN kernel", key, func(b *BucketModel) { b.Kernel = []float64{1, 0.5, 0.25, 0.1, math.NaN()} }},
		{"NaN ambient", key, func(b *BucketModel) { b.Ambient = math.NaN() }},
		{"zero steady bound", key, func(b *BucketModel) { b.SteadyBoundC = 0 }},
		{"transient coef length", key, func(b *BucketModel) { b.Transient.Coef = b.Transient.Coef[:2] }},
		{"NaN transient coef", key, func(b *BucketModel) {
			b.Transient.Coef = []float64{math.Inf(1), 1, 0.2, 0.3, 0.4}
		}},
		{"zero makespan bound", key, func(b *BucketModel) { b.Makespan.Bound = 0 }},
		{"infinite ring bound", key, func(b *BucketModel) { b.Ring.Bound = math.Inf(1) }},
		{"no samples", key, func(b *BucketModel) { b.Samples = 0 }},
		{"inverted power envelope", key, func(b *BucketModel) { b.MinTotalW, b.MaxTotalW = 10, 1 }},
		{"zero max tau", key, func(b *BucketModel) { b.MaxTauS = 0 }},
		{"NaN ring envelope", key, func(b *BucketModel) { b.RingMinW = math.NaN() }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := base
			b.Kernel = append([]float64(nil), base.Kernel...)
			b.Transient.Coef = append([]float64(nil), base.Transient.Coef...)
			tc.mutate(&b)
			if b.validate(tc.key) == nil {
				t.Errorf("validate accepted a bucket with %s", tc.name)
			}
		})
	}
}
