package thermal

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/floorplan"
)

// goldenTol is the dense-vs-sparse equivalence bound of the numerics
// contract (docs/THEORY.md §"Sparse numerics"): every temperature the two
// backends produce must agree to 1e-9 K.
const goldenTol = 1e-9

// denseSparsePair builds the same model under both solver backends.
func denseSparsePair(t testing.TB, w, h int) (*Model, *Model) {
	t.Helper()
	fp := floorplan.MustNew(w, h, 0.0009)
	cfgD := DefaultConfig()
	cfgD.Solver = SolverDense
	cfgS := DefaultConfig()
	cfgS.Solver = SolverSparse
	md, err := New(fp, cfgD)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := New(fp, cfgS)
	if err != nil {
		t.Fatal(err)
	}
	return md, ms
}

func maxAbsDiff(a, b []float64) float64 {
	var m float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

// TestSparseGoldenSteadyState pins the sparse steady-state solve against the
// dense inverse across platform sizes from 3×3 to 8×8 under ≥100 random
// power vectors total.
func TestSparseGoldenSteadyState(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, wh := range [][2]int{{3, 3}, {4, 4}, {5, 4}, {6, 6}, {7, 5}, {8, 8}} {
		md, ms := denseSparsePair(t, wh[0], wh[1])
		if d := maxAbsDiff(md.AmbientSteady(), ms.AmbientSteady()); d > goldenTol {
			t.Fatalf("%dx%d: ambient steady state differs by %g K", wh[0], wh[1], d)
		}
		for trial := 0; trial < 20; trial++ {
			watts := make([]float64, md.NumCores())
			for i := range watts {
				watts[i] = rng.Float64() * 10
			}
			got := ms.SteadyState(watts)
			want := md.SteadyState(watts)
			if d := maxAbsDiff(want, got); d > goldenTol {
				t.Fatalf("%dx%d trial %d: steady state differs by %g K", wh[0], wh[1], trial, d)
			}
		}
	}
}

// TestSparseGoldenTransient pins the Krylov stepper against the dense
// propagator along a full trajectory: both backends step the same power
// schedule from ambient, and every node of every step must agree to the
// golden bound.
func TestSparseGoldenTransient(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for _, wh := range [][2]int{{3, 3}, {5, 4}, {8, 8}} {
		md, ms := denseSparsePair(t, wh[0], wh[1])
		const dt = 0.5e-3
		sd, err := md.NewStepper(dt)
		if err != nil {
			t.Fatal(err)
		}
		ss, err := ms.NewStepper(dt)
		if err != nil {
			t.Fatal(err)
		}

		n := md.NumCores()
		td := md.InitialTemps()
		ts := ms.InitialTemps()
		watts := make([]float64, n)
		for step := 0; step < 120; step++ {
			if step%10 == 0 { // piecewise-constant schedule with jumps
				for i := range watts {
					watts[i] = rng.Float64() * 9
				}
			}
			sd.StepTo(td, td, watts)
			ss.StepTo(ts, ts, watts)
			if d := maxAbsDiff(td, ts); d > goldenTol {
				t.Fatalf("%dx%d step %d: trajectories differ by %g K", wh[0], wh[1], step, d)
			}
		}
	}
}

// TestSparseGoldenStacked runs the differential check on a 3D-stacked model,
// whose buried layers stress the arrowhead split differently (spreader block
// in the middle of the numbering).
func TestSparseGoldenStacked(t *testing.T) {
	fp := floorplan.MustNew(4, 4, 0.0009)
	cfgD := DefaultStackedConfig(3)
	cfgD.Solver = SolverDense
	cfgS := DefaultStackedConfig(3)
	cfgS.Solver = SolverSparse
	md, err := NewStacked(fp, cfgD)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := NewStacked(fp, cfgS)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(23))
	watts := make([]float64, md.NumCores())
	for i := range watts {
		watts[i] = rng.Float64() * 8
	}
	if d := maxAbsDiff(md.SteadyState(watts), ms.SteadyState(watts)); d > goldenTol {
		t.Fatalf("stacked steady state differs by %g K", d)
	}

	sd, _ := md.NewStepper(1e-3)
	ss, _ := ms.NewStepper(1e-3)
	td, ts := md.InitialTemps(), ms.InitialTemps()
	for step := 0; step < 60; step++ {
		sd.StepTo(td, td, watts)
		ss.StepTo(ts, ts, watts)
		if d := maxAbsDiff(td, ts); d > goldenTol {
			t.Fatalf("stacked step %d: trajectories differ by %g K", step, d)
		}
	}
}

// TestSparseGoldenCoreInfluence checks the lazily computed core block of
// B⁻¹ agrees between backends — the TSP budgeting substrate.
func TestSparseGoldenCoreInfluence(t *testing.T) {
	md, ms := denseSparsePair(t, 5, 5)
	infD, infS := md.CoreInfluence(), ms.CoreInfluence()
	for i := 0; i < md.NumCores(); i++ {
		for j := 0; j < md.NumCores(); j++ {
			if d := math.Abs(infD.At(i, j) - infS.At(i, j)); d > goldenTol {
				t.Fatalf("core influence (%d,%d) differs by %g", i, j, d)
			}
		}
	}
	if infS != ms.CoreInfluence() {
		t.Fatal("CoreInfluence must cache its result")
	}
}

// TestSolverSelection pins the auto threshold: 8×8 (129 nodes) stays dense,
// 16×16 (513 nodes) goes sparse, and explicit choices win over size.
func TestSolverSelection(t *testing.T) {
	small, err := New(floorplan.MustNew(8, 8, 0.0009), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if small.Solver() != SolverDense {
		t.Fatalf("8x8 auto solver = %q, want dense", small.Solver())
	}
	if small.BInv() == nil || small.Eigen() == nil || small.SparseB() != nil {
		t.Fatal("dense mode must expose BInv/Eigen and no CSR")
	}

	big, err := New(floorplan.MustNew(16, 16, 0.0009), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if big.Solver() != SolverSparse {
		t.Fatalf("16x16 auto solver = %q, want sparse", big.Solver())
	}
	if big.BInv() != nil || big.Eigen() != nil || big.SparseB() == nil {
		t.Fatal("sparse mode must return nil dense artifacts and a CSR")
	}

	cfg := DefaultConfig()
	cfg.Solver = SolverSparse
	forced, err := New(floorplan.MustNew(3, 3, 0.0009), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if forced.Solver() != SolverSparse {
		t.Fatalf("explicit sparse on 3x3 resolved to %q", forced.Solver())
	}

	cfg.Solver = "cholmod"
	if _, err := New(floorplan.MustNew(3, 3, 0.0009), cfg); err == nil {
		t.Fatal("unknown solver name must be rejected")
	}
}

// TestSparseStepToAllocationFree asserts the sparse hot loop keeps the
// repo-wide zero-allocation stepping contract.
func TestSparseStepToAllocationFree(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Solver = SolverSparse
	m, err := New(floorplan.MustNew(8, 8, 0.0009), cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := m.NewStepper(0.5e-3)
	if err != nil {
		t.Fatal(err)
	}
	temps := m.InitialTemps()
	watts := make([]float64, m.NumCores())
	for i := range watts {
		watts[i] = 5
	}
	if allocs := testing.AllocsPerRun(50, func() { s.StepTo(temps, temps, watts) }); allocs != 0 {
		t.Fatalf("sparse StepTo allocates %v times per call, want 0", allocs)
	}
}

// TestSparse64x64EndToEnd is the scale acceptance test: a 64×64 platform
// (N = 8193 — far beyond dense eigendecomposition reach) must construct and
// step through the sparse path with physically sane temperatures.
func TestSparse64x64EndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("64x64 construction takes a few seconds")
	}
	m, err := New(floorplan.MustNew(64, 64, 0.0009), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if m.Solver() != SolverSparse {
		t.Fatalf("64x64 resolved to %q, want sparse", m.Solver())
	}
	if bw := m.sp.bandwidth(); bw > 4*64 {
		t.Fatalf("head-block bandwidth %d, want O(grid width)", bw)
	}

	s, err := m.NewStepper(1e-3)
	if err != nil {
		t.Fatal(err)
	}
	temps := m.InitialTemps()
	watts := make([]float64, m.NumCores())
	for i := range watts {
		watts[i] = 4
	}
	for step := 0; step < 20; step++ {
		s.StepTo(temps, temps, watts)
	}
	peak := m.MaxCoreTemp(temps)
	if math.IsNaN(peak) || peak <= m.Ambient() || peak > 400 {
		t.Fatalf("64x64 peak after 20 ms = %g °C, outside sane range", peak)
	}
	// Monotone heating from ambient under constant power.
	prev := peak
	s.StepTo(temps, temps, watts)
	if m.MaxCoreTemp(temps) < prev-goldenTol {
		t.Fatalf("heating trajectory not monotone: %g then %g", prev, m.MaxCoreTemp(temps))
	}
}
