package hotpotato

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// decodeSpec is a test helper: JSON document → RunSpec via the wire decoder.
func decodeSpec(t *testing.T, doc string) RunSpec {
	t.Helper()
	var spec RunSpec
	if err := json.Unmarshal([]byte(doc), &spec); err != nil {
		t.Fatalf("decoding %s: %v", doc, err)
	}
	return spec
}

func mustHash(t *testing.T, spec RunSpec) string {
	t.Helper()
	h, err := SpecHash(spec)
	if err != nil {
		t.Fatalf("SpecHash: %v", err)
	}
	return h
}

// TestSpecHashGolden pins the exact hash values of representative documents.
// These constants are part of the wire contract — /v1/run ETags, result-cache
// keys, and sweep cell identities are all SpecHash values — so a change here
// is a breaking API change and must come with a SpecVersion bump, not a
// constant update.
func TestSpecHashGolden(t *testing.T) {
	golden := []struct {
		name, doc, hash string
	}{
		{
			"minimal 4x4 homogeneous",
			`{"platform":{"width":4,"height":4},"scheduler":{"name":"hotpotato"},"workload":{"kind":"homogeneous","bench":"blackscholes","total_threads":4}}`,
			"sha256:52201581a9fe578d713dacedbd969886b8e22cd18916fc0934682dd022718eae",
		},
		{
			"default chip random mix",
			`{"scheduler":{"name":"pcmig","tdtm":70},"workload":{"kind":"random","count":5,"rate":100,"seed":7}}`,
			"sha256:f6d97af52d2da674167566f5ddca34fbf3946b52a7f873633b59896016a4149c",
		},
		{
			"versioned explicit with pins",
			`{"version":"v1","platform":{"width":4,"height":4},"scheduler":{"name":"static","pins":{"0:0":0,"0:1":1}},"workload":{"kind":"explicit","tasks":[{"bench":"swaptions","threads":2}]}}`,
			"sha256:d6a362eb7d1bdf540d3a444d2a6e6aeef0f231e98b4dd36b443606ff934c02e4",
		},
	}
	for _, g := range golden {
		t.Run(g.name, func(t *testing.T) {
			if h := mustHash(t, decodeSpec(t, g.doc)); h != g.hash {
				t.Errorf("hash drifted:\n got  %s\n want %s\n(SpecHash is wire contract: a semantic encoding change needs a SpecVersion bump)", h, g.hash)
			}
		})
	}
}

// TestSpecHashEqualAcrossSpellings proves the canonicalization property:
// field order, elided defaults, an explicit version, explicit fill-the-chip
// thread counts, explicit default sizes, unit work scales, and stray fields
// of other workload kinds all spell the same run and must hash equal.
func TestSpecHashEqualAcrossSpellings(t *testing.T) {
	base := `{"platform":{"width":4,"height":4},"scheduler":{"name":"hotpotato"},"workload":{"kind":"homogeneous","bench":"blackscholes","total_threads":4}}`
	want := mustHash(t, decodeSpec(t, base))

	equivalent := map[string]string{
		"field order":                   `{"workload":{"total_threads":4,"kind":"homogeneous","bench":"blackscholes"},"scheduler":{"name":"hotpotato"},"platform":{"height":4,"width":4}}`,
		"explicit v1":                   `{"version":"v1","platform":{"width":4,"height":4},"scheduler":{"name":"hotpotato"},"workload":{"kind":"homogeneous","bench":"blackscholes","total_threads":4}}`,
		"explicit default sizes":        `{"platform":{"width":4,"height":4},"scheduler":{"name":"hotpotato"},"workload":{"kind":"homogeneous","bench":"blackscholes","total_threads":4,"sizes":[2,4,8]}}`,
		"stray random fields":           `{"platform":{"width":4,"height":4},"scheduler":{"name":"hotpotato"},"workload":{"kind":"homogeneous","bench":"blackscholes","total_threads":4,"seed":99,"count":3,"rate":5}}`,
		"explicit defaults spelled out": `{"platform":{"width":4,"height":4,"core_edge":0.0009},"sim":{"tdtm":70,"dtm_enabled":true},"scheduler":{"name":"hotpotato"},"workload":{"kind":"homogeneous","bench":"blackscholes","total_threads":4}}`,
	}
	for name, doc := range equivalent {
		if got := mustHash(t, decodeSpec(t, doc)); got != want {
			t.Errorf("%s: hash %s differs from base %s; equivalent spellings must hash equal", name, got, want)
		}
	}

	// Fill-the-chip: an elided homogeneous total_threads means one thread per
	// core, so on a 4×4 chip it equals an explicit 16.
	elided := decodeSpec(t, `{"platform":{"width":4,"height":4},"scheduler":{"name":"hotpotato"},"workload":{"kind":"homogeneous","bench":"blackscholes"}}`)
	full := decodeSpec(t, `{"platform":{"width":4,"height":4},"scheduler":{"name":"hotpotato"},"workload":{"kind":"homogeneous","bench":"blackscholes","total_threads":16}}`)
	if mustHash(t, elided) != mustHash(t, full) {
		t.Error("elided total_threads did not hash like the explicit chip-filling count")
	}

	// Unit work scale: explicit workloads with work_scale 0 and 1 are the
	// same run (0 means 1 in the task model).
	a := decodeSpec(t, `{"platform":{"width":4,"height":4},"scheduler":{"name":"hotpotato"},"workload":{"kind":"explicit","tasks":[{"bench":"x264","threads":2}]}}`)
	b := decodeSpec(t, `{"platform":{"width":4,"height":4},"scheduler":{"name":"hotpotato"},"workload":{"kind":"explicit","tasks":[{"bench":"x264","threads":2,"work_scale":1}]}}`)
	if mustHash(t, a) != mustHash(t, b) {
		t.Error("work_scale 0 and 1 hashed differently; both mean unit scale")
	}

	// Programmatic construction (no JSON in sight) matches the wire path.
	prog := RunSpec{
		Platform:  DefaultPlatformConfig(4, 4),
		Scheduler: SchedulerSpec{Name: "hotpotato"},
		Workload:  WorkloadSpec{Kind: WorkloadHomogeneous, Bench: "blackscholes", TotalThreads: 4},
	}
	if got := mustHash(t, prog); got != want {
		t.Errorf("programmatic spec hashed %s, wire spec %s", got, want)
	}
}

// TestSpecHashSeparatesSemanticChanges: any change that could alter the
// Result must change the hash.
func TestSpecHashSeparatesSemanticChanges(t *testing.T) {
	base := `{"platform":{"width":4,"height":4},"scheduler":{"name":"hotpotato"},"workload":{"kind":"homogeneous","bench":"blackscholes","total_threads":4}}`
	want := mustHash(t, decodeSpec(t, base))

	different := map[string]string{
		"grid size":     `{"platform":{"width":8,"height":8},"scheduler":{"name":"hotpotato"},"workload":{"kind":"homogeneous","bench":"blackscholes","total_threads":4}}`,
		"scheduler":     `{"platform":{"width":4,"height":4},"scheduler":{"name":"pcmig"},"workload":{"kind":"homogeneous","bench":"blackscholes","total_threads":4}}`,
		"tdtm":          `{"platform":{"width":4,"height":4},"sim":{"tdtm":71},"scheduler":{"name":"hotpotato"},"workload":{"kind":"homogeneous","bench":"blackscholes","total_threads":4}}`,
		"benchmark":     `{"platform":{"width":4,"height":4},"scheduler":{"name":"hotpotato"},"workload":{"kind":"homogeneous","bench":"x264","total_threads":4}}`,
		"thread count":  `{"platform":{"width":4,"height":4},"scheduler":{"name":"hotpotato"},"workload":{"kind":"homogeneous","bench":"blackscholes","total_threads":8}}`,
		"solver":        `{"platform":{"width":4,"height":4,"thermal":{"solver":"sparse"}},"scheduler":{"name":"hotpotato"},"workload":{"kind":"homogeneous","bench":"blackscholes","total_threads":4}}`,
		"dtm off":       `{"platform":{"width":4,"height":4},"sim":{"dtm_enabled":false},"scheduler":{"name":"hotpotato"},"workload":{"kind":"homogeneous","bench":"blackscholes","total_threads":4}}`,
		"rotation tau":  `{"platform":{"width":4,"height":4},"scheduler":{"name":"hotpotato","tau":0.001},"workload":{"kind":"homogeneous","bench":"blackscholes","total_threads":4}}`,
		"instance size": `{"platform":{"width":4,"height":4},"scheduler":{"name":"hotpotato"},"workload":{"kind":"homogeneous","bench":"blackscholes","total_threads":4,"sizes":[4]}}`,
	}
	seen := map[string]string{"base": want}
	for name, doc := range different {
		got := mustHash(t, decodeSpec(t, doc))
		if got == want {
			t.Errorf("%s: semantic change did not change the hash (%s)", name, got)
		}
		if prev, dup := seen[got]; dup {
			t.Errorf("%s and %s collided on %s", name, prev, got)
		}
		seen[got] = name
	}
}

// TestCanonicalizeIdempotent: canonical forms are fixed points, and the
// canonical spec still validates and describes the same run.
func TestCanonicalizeIdempotent(t *testing.T) {
	spec := decodeSpec(t, `{"platform":{"width":4,"height":4},"scheduler":{"name":"hotpotato"},"workload":{"kind":"homogeneous","bench":"blackscholes"}}`)
	once, err := spec.Canonicalize()
	if err != nil {
		t.Fatal(err)
	}
	twice, err := once.Canonicalize()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(once, twice) {
		t.Errorf("Canonicalize is not idempotent:\nonce:  %+v\ntwice: %+v", once, twice)
	}
	if once.Version != SpecVersion {
		t.Errorf("canonical version = %q, want %q", once.Version, SpecVersion)
	}
	if once.Workload.TotalThreads != 16 {
		t.Errorf("fill-the-chip total_threads not resolved: %d", once.Workload.TotalThreads)
	}
	if err := once.Validate(); err != nil {
		t.Errorf("canonical spec no longer validates: %v", err)
	}
}

// TestSpecVersionValidation: absent and "v1" pass, anything else is a field
// error naming the version, on RunSpec and SweepSpec alike.
func TestSpecVersionValidation(t *testing.T) {
	valid := decodeSpec(t, `{"platform":{"width":4,"height":4},"scheduler":{"name":"hotpotato"},"workload":{"kind":"homogeneous","bench":"blackscholes","total_threads":4}}`)
	for _, v := range []string{"", SpecVersion} {
		s := valid
		s.Version = v
		if err := s.Validate(); err != nil {
			t.Errorf("version %q rejected: %v", v, err)
		}
	}
	for _, v := range []string{"v2", "V1", "1", "v1.1"} {
		s := valid
		s.Version = v
		err := s.Validate()
		if err == nil {
			t.Errorf("version %q accepted", v)
			continue
		}
		if !strings.Contains(err.Error(), "version") {
			t.Errorf("version error does not name the field: %v", err)
		}
		if _, herr := SpecHash(s); herr == nil {
			t.Errorf("SpecHash accepted invalid version %q", v)
		}

		sweep := SweepSpec{Version: v, Base: valid}
		if err := sweep.Validate(); err == nil {
			t.Errorf("SweepSpec version %q accepted", v)
		}
	}
}

// TestSpecHashInvalidSpec: hashing an invalid spec fails with the same error
// Validate reports, never with a bogus hash.
func TestSpecHashInvalidSpec(t *testing.T) {
	if h, err := SpecHash(RunSpec{Scheduler: SchedulerSpec{Name: "nope"}, Workload: WorkloadSpec{Kind: "bogus"}}); err == nil {
		t.Errorf("invalid spec hashed to %s", h)
	}
}
