package fabric

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	hotpotato "repro"
)

// Archive is the dispatcher's durable result store. Two trees under one
// root:
//
//	by-hash/<hex[:2]>/<hex>.json       one completed cell per SpecHash
//	sweeps/<YYYY-MM-DD>/<sweep-id>.json one manifest per completed sweep
//
// by-hash is content-addressed: simulations are deterministic, so a record
// stored under its spec's hash is never stale and a later sweep containing
// the same cell replays it without leasing a worker. Only status "ok"
// records are archived — failures are worth retrying, and canceled cells
// carry no result. Writes are atomic (tmp + rename) so a crashed dispatcher
// never leaves a torn record for the hit path to read.
type Archive struct {
	root  string
	clock Clock
}

// Manifest is the per-sweep archive index entry: what ran, when, and how it
// went. It mirrors the stream's terminal summary plus identity fields.
type Manifest struct {
	SweepID   string  `json:"sweep_id"`
	RequestID string  `json:"request_id,omitempty"`
	Total     int     `json:"total"`
	Completed int     `json:"completed"`
	Failed    int     `json:"failed"`
	Canceled  int     `json:"canceled"`
	Pruned    int     `json:"pruned"`
	CacheHits int     `json:"cache_hits"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

// NewArchive opens (creating if needed) an archive rooted at dir. clock
// dates the sweep manifests; nil means the real clock.
func NewArchive(dir string, clock Clock) (*Archive, error) {
	if clock == nil {
		clock = realClock{}
	}
	for _, sub := range []string{"by-hash", "sweeps"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("fabric: create archive: %w", err)
		}
	}
	return &Archive{root: dir, clock: clock}, nil
}

// hashPath maps a SpecHash ("sha256:<hex>") to its by-hash file, rejecting
// anything that is not a plain hex digest so archive keys can never escape
// the root.
func (a *Archive) hashPath(hash string) (string, error) {
	hex, ok := strings.CutPrefix(hash, "sha256:")
	if !ok || len(hex) != 64 {
		return "", fmt.Errorf("fabric: malformed spec hash %q", hash)
	}
	for _, c := range hex {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return "", fmt.Errorf("fabric: malformed spec hash %q", hash)
		}
	}
	return filepath.Join(a.root, "by-hash", hex[:2], hex+".json"), nil
}

// Get returns the archived record for hash, if any. The returned record's
// Index is the archived sweep's — callers re-stamp it for the current sweep.
func (a *Archive) Get(hash string) (hotpotato.SweepResultRecord, bool) {
	var rec hotpotato.SweepResultRecord
	path, err := a.hashPath(hash)
	if err != nil {
		return rec, false
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return rec, false
	}
	if json.Unmarshal(data, &rec) != nil || rec.Status != "ok" {
		return rec, false
	}
	return rec, true
}

// Put archives one completed cell under its SpecHash. Non-"ok" records are
// rejected — the archive stores only replayable results.
func (a *Archive) Put(hash string, rec hotpotato.SweepResultRecord) error {
	if rec.Status != "ok" {
		return fmt.Errorf("fabric: refusing to archive status %q", rec.Status)
	}
	path, err := a.hashPath(hash)
	if err != nil {
		return err
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	return writeAtomic(path, data)
}

// WriteManifest records a completed sweep under sweeps/<date>/<id>.json.
func (a *Archive) WriteManifest(sweepID string, m Manifest) error {
	if strings.ContainsAny(sweepID, "/\\") || sweepID == "" {
		return fmt.Errorf("fabric: malformed sweep id %q", sweepID)
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	day := a.clock.Now().UTC().Format("2006-01-02")
	return writeAtomic(filepath.Join(a.root, "sweeps", day, sweepID+".json"), data)
}

// writeAtomic writes data to path via a same-directory temp file and rename,
// so readers only ever see complete files.
func writeAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
