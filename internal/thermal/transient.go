package thermal

import (
	"fmt"

	"repro/internal/matrix"
)

// Stepper advances the transient thermal state with a fixed step dt using the
// exact matrix-exponential solution of Eq. 4 (the MatEx method [22]):
//
//	T(t+dt) = T_steady(P) + e^{C·dt} (T(t) − T_steady(P))
//
// e^{C·dt} is computed once from the model's eigendecomposition, so each step
// costs one matrix–vector product (O(N²)). The solution is exact for power
// held constant over the step — the interval-simulation contract.
//
// A Stepper owns a scratch block that StepTo and SteadyStateInto reuse, so
// the per-step hot path allocates nothing. The scratch makes a Stepper NOT
// goroutine-safe: build one per worker (they are cheap next to the model's
// eigendecomposition), per the run-state rule of docs/CONCURRENCY.md. The
// underlying Model remains freely shareable.
type Stepper struct {
	m   *Model
	dt  float64
	exp *matrix.Dense // e^{C·dt}

	// Scratch reused by StepTo/SteadyStateInto (never escapes a call).
	p    []float64 // extended power vector, length N
	tss  []float64 // steady state for the step's power, length N
	diff []float64 // T − T_steady, length N
}

// NewStepper precomputes the propagator for step size dt (seconds).
func (m *Model) NewStepper(dt float64) (*Stepper, error) {
	if dt <= 0 {
		return nil, fmt.Errorf("thermal: step size must be positive, got %g", dt)
	}
	negLambda := matrix.VecScale(-1, m.eig.Lambda) // eigenvalues of C
	exp := matrix.ExpmEigen(m.eig.V, negLambda, m.eig.VInv, dt)
	return &Stepper{
		m: m, dt: dt, exp: exp,
		p:    make([]float64, m.N),
		tss:  make([]float64, m.N),
		diff: make([]float64, m.N),
	}, nil
}

// Dt returns the step size in seconds.
func (s *Stepper) Dt() float64 { return s.dt }

// Step advances the node temperature vector t by dt under the per-core power
// vector coreWatts (held constant for the step) and returns the new node
// temperatures.
func (s *Stepper) Step(t []float64, coreWatts []float64) []float64 {
	next := make([]float64, s.m.N)
	s.StepTo(next, t, coreWatts)
	return next
}

// StepTo advances the node temperature vector t by dt under coreWatts,
// writing the new node temperatures into dst (length N). It allocates
// nothing. dst may alias t — stepping a state in place is the intended hot
// path — but must not alias the stepper's scratch or coreWatts.
func (s *Stepper) StepTo(dst, t, coreWatts []float64) {
	if len(t) != s.m.N {
		panic(fmt.Sprintf("thermal: temperature vector length %d, want %d", len(t), s.m.N))
	}
	if len(dst) != s.m.N {
		panic(fmt.Sprintf("thermal: step destination length %d, want %d", len(dst), s.m.N))
	}
	s.SteadyStateInto(s.tss, coreWatts)
	matrix.VecSubTo(s.diff, t, s.tss)
	s.exp.MulVecTo(dst, s.diff)
	matrix.VecAddTo(dst, s.tss)
}

// SteadyStateInto solves Eq. 3 into dst (length N) using the stepper's
// scratch for the extended power vector; the zero-allocation twin of
// Model.SteadyState. Not goroutine-safe (see the Stepper doc).
func (s *Stepper) SteadyStateInto(dst, coreWatts []float64) {
	s.m.ExtendPowerInto(s.p, coreWatts)
	s.m.binv.MulVecTo(dst, s.p)
	matrix.VecAddTo(dst, s.m.steadyAmbient)
}

// Propagator returns e^{C·dt}. The caller must not modify it.
func (s *Stepper) Propagator() *matrix.Dense { return s.exp }

// Transient simulates from the initial node temperatures t0 under a sequence
// of per-core power vectors (one per step) and returns the temperature
// trajectory including the initial point: len(powers)+1 node vectors. Only
// the returned trajectory rows are allocated.
func (s *Stepper) Transient(t0 []float64, powers [][]float64) [][]float64 {
	out := make([][]float64, 0, len(powers)+1)
	out = append(out, append([]float64(nil), t0...))
	cur := out[0]
	for _, p := range powers {
		next := make([]float64, len(cur))
		s.StepTo(next, cur, p)
		out = append(out, next)
		cur = next
	}
	return out
}
