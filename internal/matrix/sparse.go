package matrix

import (
	"fmt"
	"sort"
)

// sparse.go holds the compressed-sparse-row machinery the large-platform
// thermal solver is built on. The RC conductance matrix of an n-core chip is
// a weighted graph Laplacian with O(n) non-zeros; storing it as CSR makes a
// matrix–vector product O(nnz) instead of O(N²) and is the substrate of the
// Krylov transient solver (krylov.go) and the banded steady-state
// factorization (banded.go). docs/THEORY.md §"Sparse numerics" derives why
// this structure exists; docs/PERFORMANCE.md lists the kernel costs.

// SparseBuilder accumulates coordinate-format (row, col, value) triplets and
// finalizes them into a CSR matrix. Duplicate entries for the same (row, col)
// are summed, which matches how a finite-volume/RC assembly naturally emits
// couplings (each edge contributes to four entries). A SparseBuilder is for
// construction-time use only and is not goroutine-safe.
type SparseBuilder struct {
	rows, cols int
	ri, ci     []int
	v          []float64
}

// NewSparseBuilder returns an empty builder for a rows×cols matrix.
func NewSparseBuilder(rows, cols int) *SparseBuilder {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("matrix: invalid sparse dimensions %dx%d", rows, cols))
	}
	return &SparseBuilder{rows: rows, cols: cols}
}

// Add accumulates v into entry (i, j). Adding zero is a no-op, so assembly
// loops need no special-casing of absent couplings.
func (b *SparseBuilder) Add(i, j int, v float64) {
	if i < 0 || i >= b.rows || j < 0 || j >= b.cols {
		panic(fmt.Sprintf("matrix: sparse index (%d,%d) out of range for %dx%d matrix", i, j, b.rows, b.cols))
	}
	if v == 0 {
		return
	}
	b.ri = append(b.ri, i)
	b.ci = append(b.ci, j)
	b.v = append(b.v, v)
}

// ToCSR finalizes the accumulated triplets into a CSR matrix: entries are
// sorted by (row, col) and duplicates summed. The builder remains usable
// (further Adds affect only later ToCSR calls).
func (b *SparseBuilder) ToCSR() *CSR {
	idx := make([]int, len(b.v))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(x, y int) bool {
		a, c := idx[x], idx[y]
		if b.ri[a] != b.ri[c] {
			return b.ri[a] < b.ri[c]
		}
		return b.ci[a] < b.ci[c]
	})

	m := &CSR{rows: b.rows, cols: b.cols, rowStart: make([]int, b.rows+1)}
	lastRow, lastCol := -1, -1
	for _, k := range idx {
		r, c, v := b.ri[k], b.ci[k], b.v[k]
		if r == lastRow && c == lastCol {
			m.val[len(m.val)-1] += v
			continue
		}
		m.colIdx = append(m.colIdx, c)
		m.val = append(m.val, v)
		lastRow, lastCol = r, c
		m.rowStart[r+1] = len(m.val)
	}
	// Rows with no entries inherit the running offset.
	for r := 1; r <= b.rows; r++ {
		if m.rowStart[r] < m.rowStart[r-1] {
			m.rowStart[r] = m.rowStart[r-1]
		}
	}
	return m
}

// ToDense materializes the accumulated triplets as a dense matrix — the
// small-platform path and the reference the differential tests compare
// against.
func (b *SparseBuilder) ToDense() *Dense {
	m := New(b.rows, b.cols)
	for k, v := range b.v {
		m.Add(b.ri[k], b.ci[k], v)
	}
	return m
}

// CSR is a compressed-sparse-row matrix: row r's entries are
// val[rowStart[r]:rowStart[r+1]] with column indices
// colIdx[rowStart[r]:rowStart[r+1]], sorted by column. A CSR is immutable
// after construction and therefore safe to share between goroutines
// (docs/CONCURRENCY.md: model substrate).
type CSR struct {
	rows, cols int
	rowStart   []int
	colIdx     []int
	val        []float64
}

// Rows returns the number of rows.
func (m *CSR) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *CSR) Cols() int { return m.cols }

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int { return len(m.val) }

// At returns the element at (i, j) by binary search over row i — O(log nnz
// per row), intended for tests and assembly-time inspection, not hot loops.
func (m *CSR) At(i, j int) float64 {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("matrix: index (%d,%d) out of range for %dx%d CSR", i, j, m.rows, m.cols))
	}
	lo, hi := m.rowStart[i], m.rowStart[i+1]
	k := lo + sort.SearchInts(m.colIdx[lo:hi], j)
	if k < hi && m.colIdx[k] == j {
		return m.val[k]
	}
	return 0
}

// MulVecTo computes the matrix–vector product m·x into dst in O(nnz), the
// destination-passing sparse twin of Dense.MulVecTo. It performs no
// allocation. dst must have length m.Rows() and must not alias x.
func (m *CSR) MulVecTo(dst, x []float64) {
	if m.cols != len(x) {
		panic(fmt.Sprintf("matrix: cannot multiply %dx%d CSR by vector of length %d", m.rows, m.cols, len(x)))
	}
	if len(dst) != m.rows {
		panic(fmt.Sprintf("matrix: MulVecTo destination length %d, want %d", len(dst), m.rows))
	}
	for i := 0; i < m.rows; i++ {
		var s float64
		for k := m.rowStart[i]; k < m.rowStart[i+1]; k++ {
			s += m.val[k] * x[m.colIdx[k]]
		}
		dst[i] = s
	}
}

// MulVec returns m·x, the allocating wrapper around MulVecTo.
func (m *CSR) MulVec(x []float64) []float64 {
	dst := make([]float64, m.rows)
	m.MulVecTo(dst, x)
	return dst
}

// Range calls f for every stored entry in row-major, column-sorted order —
// the assembly-time iteration primitive (splitting a matrix into blocks,
// filling a banded copy under a permutation).
func (m *CSR) Range(f func(i, j int, v float64)) {
	for i := 0; i < m.rows; i++ {
		for k := m.rowStart[i]; k < m.rowStart[i+1]; k++ {
			f(i, m.colIdx[k], m.val[k])
		}
	}
}

// ToDense materializes the CSR as a dense matrix. O(rows·cols) storage —
// intended for tests and small matrices only.
func (m *CSR) ToDense() *Dense {
	d := New(m.rows, m.cols)
	for i := 0; i < m.rows; i++ {
		for k := m.rowStart[i]; k < m.rowStart[i+1]; k++ {
			d.Set(i, m.colIdx[k], m.val[k])
		}
	}
	return d
}

// IsSymmetric reports whether m is square and symmetric within tol. O(nnz log
// nnz) — construction-time certification, not a hot path.
func (m *CSR) IsSymmetric(tol float64) bool {
	if m.rows != m.cols {
		return false
	}
	for i := 0; i < m.rows; i++ {
		for k := m.rowStart[i]; k < m.rowStart[i+1]; k++ {
			j := m.colIdx[k]
			if j == i {
				continue
			}
			// Check both triangles: an entry with no stored transpose
			// partner must still be caught.
			d := m.val[k] - m.At(j, i)
			if d < -tol || d > tol {
				return false
			}
		}
	}
	return true
}
