package rotation

import (
	"fmt"
	"math"

	"repro/internal/matrix"
)

// EvaluateFine computes the steady-periodic peak like Evaluate, but samples
// `subsamples` points inside every epoch instead of only the epoch
// boundaries Algorithm 1 inspects (Eq. 11). Within an epoch each node's
// temperature relaxes exponentially toward that epoch's steady state, and a
// node heating toward a hot steady state can peak strictly inside the epoch
// before the next epoch pulls it down — so the boundary-only peak is a
// (slight) underestimate. Subsampling quantifies that gap.
//
// subsamples = 1 reproduces Evaluate exactly.
func (c *Calculator) EvaluateFine(plan Plan, subsamples int) (*Result, error) {
	if subsamples < 1 {
		return nil, fmt.Errorf("rotation: subsamples must be ≥ 1, got %d", subsamples)
	}
	if err := plan.Validate(c.n); err != nil {
		return nil, err
	}
	if c.Iterative() {
		return c.evaluateIterative(plan, subsamples)
	}
	delta := plan.Delta()
	N := c.nNodes
	tau := plan.Tau
	sub := tau / float64(subsamples)

	decayEpoch := make([]float64, N) // e^{−λτ}
	decaySub := make([]float64, N)   // e^{−λτ/subsamples}
	for k, l := range c.lambda {
		decayEpoch[k] = math.Exp(-l * tau)
		decaySub[k] = math.Exp(-l * sub)
	}

	// Eigenspace images of the per-epoch steady states (node-space
	// intermediates reused across epochs, as in Evaluate).
	y := make([][]float64, delta)
	p := make([]float64, N)
	se := make([]float64, N)
	for e := 0; e < delta; e++ {
		c.m.ExtendPowerInto(p, plan.Powers[e])
		c.binv.MulVecTo(se, p)
		y[e] = c.vinv.MulVec(se)
	}

	// Period fixed point (same as Evaluate).
	z := make([]float64, N)
	for e := 0; e < delta; e++ {
		for k := 0; k < N; k++ {
			z[k] = decayEpoch[k]*z[k] + (1-decayEpoch[k])*y[e][k]
		}
	}
	u := make([]float64, N)
	for k := 0; k < N; k++ {
		denom := 1 - math.Exp(-c.lambda[k]*tau*float64(delta))
		if denom <= 0 {
			return nil, fmt.Errorf("rotation: non-decaying eigenmode %d", k)
		}
		u[k] = z[k] / denom
	}

	ambient := c.m.AmbientSteady()
	res := &Result{
		EpochEnd: make([][]float64, delta),
		Peak:     math.Inf(-1),
	}
	res.Start = matrix.VecAdd(c.v.MulVec(u), ambient)

	te := make([]float64, N)
	for e := 0; e < delta; e++ {
		for s := 0; s < subsamples; s++ {
			for k := 0; k < N; k++ {
				u[k] = decaySub[k]*u[k] + (1-decaySub[k])*y[e][k]
			}
			c.v.MulVecTo(te, u)
			abs := matrix.VecAdd(te, ambient)
			for core := 0; core < c.n; core++ {
				if abs[core] > res.Peak {
					res.Peak = abs[core]
					res.PeakEpoch = e
					res.PeakCore = core
				}
			}
			if s == subsamples-1 {
				res.EpochEnd[e] = abs
			}
		}
	}
	return res, nil
}
