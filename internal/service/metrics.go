package service

import "repro/internal/obs"

// Pre-registered serving metrics. Package-level and process-wide: tests (and
// any embedder) construct many Servers, so per-instance registration would
// panic on duplicate names — instances sum into one set of series instead.
var (
	metricRunRequests = obs.NewCounter("service_run_requests_total",
		"Synchronous POST /v1/run requests accepted for execution.")
	metricJobsSubmitted = obs.NewCounter("service_jobs_submitted_total",
		"Asynchronous jobs accepted via POST /v1/jobs.")
	metricJobsRejected = obs.NewCounter("service_jobs_rejected_total",
		"Job submissions answered 429 because the queue was full.")
	metricJobsFinished = obs.NewCounter("service_jobs_finished_total",
		"Asynchronous jobs that reached a terminal status (done, failed, canceled).")
	metricBadRequests = obs.NewCounter("service_bad_requests_total",
		"Request bodies rejected with 400 (undecodable or invalid RunSpec).")
	metricQueueDepth = obs.NewGauge("service_job_queue_depth",
		"Asynchronous jobs currently waiting in the queue.")
	metricRunLatency = obs.NewHistogram("service_run_seconds",
		"POST /v1/run wall-clock from accepted spec to response, seconds.",
		obs.DefLatencyBuckets)
	metricJobLatency = obs.NewHistogram("service_job_seconds",
		"Asynchronous job execution wall-clock (running to terminal), seconds.",
		obs.DefLatencyBuckets)
	metricCacheHits = obs.NewCounter("service_platform_cache_hits_total",
		"Platform cache lookups served from an existing entry.")
	metricCacheMisses = obs.NewCounter("service_platform_cache_misses_total",
		"Platform cache lookups that built (eigendecomposed) a new platform.")
	metricResultCacheHits = obs.NewCounter("service_result_cache_hits_total",
		"Result cache lookups served from a cached (or coalesced in-flight) run.")
	metricResultCacheMisses = obs.NewCounter("service_result_cache_misses_total",
		"Result cache lookups that started a fresh simulation.")
	metricResultCacheEvictions = obs.NewCounter("service_result_cache_evictions_total",
		"Results dropped from the cache by the LRU bound.")
	metricResultCacheBytes = obs.NewGauge("service_result_cache_bytes",
		"Approximate JSON-encoded size of all cached results.")
	metricBatchRequests = obs.NewCounter("service_batch_requests_total",
		"POST /v1/batch sweeps accepted for streaming execution.")
	metricBatchCells = obs.NewCounter("service_batch_cells_total",
		"Sweep cells executed (or served from cache) across all batches.")
	metricBatchRejected = obs.NewCounter("service_batch_rejected_total",
		"Sweeps answered 413 because the cross-product exceeded the admission limit.")
	metricBatchDroppedRecords = obs.NewCounter("service_batch_dropped_records_total",
		"Stream records /v1/batch refused to write (marshal failure or post-summary).")
	metricResultCacheAbandoned = obs.NewCounter("service_result_cache_abandoned_total",
		"Followers that re-ran a spec uncached after their singleflight leader abandoned it.")
	metricPredictRequests = obs.NewCounter("service_predict_requests_total",
		"POST /v1/predict requests answered by the analytical twin.")
	metricPredictDomainRejected = obs.NewCounter("service_predict_domain_rejected_total",
		"Predict requests answered 422 because the spec lies outside the twin's calibrated domain.")
	metricBatchPruned = obs.NewCounter("service_batch_pruned_total",
		"Sweep cells skipped by the twin pruner across all batches.")
)
