package matrix

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a factorization or solve encounters a
// (numerically) singular matrix.
var ErrSingular = errors.New("matrix: singular matrix")

// LU holds an LU factorization with partial pivoting: P*A = L*U, where L is
// unit lower triangular and U is upper triangular, stored compactly.
type LU struct {
	n     int
	lu    *Dense
	pivot []int
	sign  float64
}

// FactorLU computes the LU factorization of the square matrix a with partial
// pivoting. It returns ErrSingular when a pivot is exactly zero.
func FactorLU(a *Dense) (*LU, error) {
	if a.rows != a.cols {
		return nil, fmt.Errorf("matrix: LU of non-square %dx%d matrix", a.rows, a.cols)
	}
	n := a.rows
	f := &LU{n: n, lu: a.Clone(), pivot: make([]int, n), sign: 1}
	lu := f.lu.data
	for i := range f.pivot {
		f.pivot[i] = i
	}
	for k := 0; k < n; k++ {
		// Find pivot row.
		p := k
		max := math.Abs(lu[k*n+k])
		for i := k + 1; i < n; i++ {
			if v := math.Abs(lu[i*n+k]); v > max {
				max = v
				p = i
			}
		}
		if max == 0 {
			return nil, ErrSingular
		}
		if p != k {
			for j := 0; j < n; j++ {
				lu[k*n+j], lu[p*n+j] = lu[p*n+j], lu[k*n+j]
			}
			f.pivot[k], f.pivot[p] = f.pivot[p], f.pivot[k]
			f.sign = -f.sign
		}
		pivVal := lu[k*n+k]
		for i := k + 1; i < n; i++ {
			lik := lu[i*n+k] / pivVal
			lu[i*n+k] = lik
			if lik == 0 {
				continue
			}
			for j := k + 1; j < n; j++ {
				lu[i*n+j] -= lik * lu[k*n+j]
			}
		}
	}
	return f, nil
}

// SolveVec solves A*x = b for x using the factorization.
func (f *LU) SolveVec(b []float64) ([]float64, error) {
	if len(b) != f.n {
		return nil, fmt.Errorf("matrix: rhs length %d, want %d", len(b), f.n)
	}
	n := f.n
	lu := f.lu.data
	x := make([]float64, n)
	// Apply permutation.
	for i := 0; i < n; i++ {
		x[i] = b[f.pivot[i]]
	}
	// Forward substitution with unit lower triangle.
	for i := 1; i < n; i++ {
		var s float64
		for j := 0; j < i; j++ {
			s += lu[i*n+j] * x[j]
		}
		x[i] -= s
	}
	// Back substitution with upper triangle.
	for i := n - 1; i >= 0; i-- {
		var s float64
		for j := i + 1; j < n; j++ {
			s += lu[i*n+j] * x[j]
		}
		d := lu[i*n+i]
		if d == 0 {
			return nil, ErrSingular
		}
		x[i] = (x[i] - s) / d
	}
	return x, nil
}

// Solve solves A*X = B column by column.
func (f *LU) Solve(b *Dense) (*Dense, error) {
	if b.rows != f.n {
		return nil, fmt.Errorf("matrix: rhs has %d rows, want %d", b.rows, f.n)
	}
	x := New(f.n, b.cols)
	col := make([]float64, f.n)
	for j := 0; j < b.cols; j++ {
		for i := 0; i < f.n; i++ {
			col[i] = b.data[i*b.cols+j]
		}
		sol, err := f.SolveVec(col)
		if err != nil {
			return nil, err
		}
		for i := 0; i < f.n; i++ {
			x.data[i*x.cols+j] = sol[i]
		}
	}
	return x, nil
}

// Determinant returns det(A) from the factorization.
func (f *LU) Determinant() float64 {
	d := f.sign
	for i := 0; i < f.n; i++ {
		d *= f.lu.data[i*f.n+i]
	}
	return d
}

// Inverse returns A⁻¹ computed from an LU factorization of a.
func Inverse(a *Dense) (*Dense, error) {
	f, err := FactorLU(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(Identity(a.rows))
}

// Solve solves a*x = b for a single right-hand side.
func Solve(a *Dense, b []float64) ([]float64, error) {
	f, err := FactorLU(a)
	if err != nil {
		return nil, err
	}
	return f.SolveVec(b)
}
