package sim

import (
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/workload"
)

// greedy is a minimal test scheduler: first-come first-served onto the
// lowest-numbered free cores at peak frequency.
type greedy struct {
	freq float64 // 0 = peak
}

func (g *greedy) Name() string { return "greedy" }

func (g *greedy) Decide(st *State) Decision {
	assignment := map[ThreadID]int{}
	used := map[int]bool{}
	for _, th := range st.Threads {
		if th.Core >= 0 && !used[th.Core] {
			assignment[th.ID] = th.Core
			used[th.Core] = true
		}
	}
	for _, th := range st.Threads {
		if _, ok := assignment[th.ID]; ok {
			continue
		}
		for c := 0; c < st.Platform.NumCores(); c++ {
			if !used[c] {
				assignment[th.ID] = c
				used[c] = true
				break
			}
		}
	}
	var freqs []float64
	if g.freq > 0 {
		freqs = make([]float64, st.Platform.NumCores())
		for i := range freqs {
			freqs[i] = g.freq
		}
	}
	return Decision{Assignment: assignment, Freq: freqs}
}

// pinner maps exactly per its table; useful to construct pathological cases.
type pinner struct {
	name string
	pins map[ThreadID]int
}

func (p *pinner) Name() string { return p.name }
func (p *pinner) Decide(st *State) Decision {
	a := map[ThreadID]int{}
	for _, th := range st.Threads {
		if c, ok := p.pins[th.ID]; ok {
			a[th.ID] = c
		}
	}
	return Decision{Assignment: a}
}

func testPlatform(t testing.TB, w, h int) *Platform {
	t.Helper()
	plat, err := NewPlatform(DefaultPlatformConfig(w, h))
	if err != nil {
		t.Fatal(err)
	}
	return plat
}

func smallTask(t testing.TB, name string, threads int, arrival, scale float64) *workload.Task {
	t.Helper()
	b, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	task, err := workload.NewTask(0, b, threads, arrival, scale)
	if err != nil {
		t.Fatal(err)
	}
	return task
}

func TestNewPlatformValidation(t *testing.T) {
	cfg := DefaultPlatformConfig(0, 4)
	if _, err := NewPlatform(cfg); err == nil {
		t.Error("zero width accepted")
	}
	cfg = DefaultPlatformConfig(4, 4)
	cfg.NoC.HopLatency = -1
	if _, err := NewPlatform(cfg); err == nil {
		t.Error("bad NoC accepted")
	}
	cfg = DefaultPlatformConfig(4, 4)
	cfg.Thermal.SiCapacitance = 0
	if _, err := NewPlatform(cfg); err == nil {
		t.Error("bad thermal config accepted")
	}
	cfg = DefaultPlatformConfig(4, 4)
	cfg.BankAccess = -1
	if _, err := NewPlatform(cfg); err == nil {
		t.Error("bad bank access accepted")
	}
}

func TestConfigValidation(t *testing.T) {
	plat := testPlatform(t, 2, 2)
	task := smallTask(t, "blackscholes", 1, 0, 0.05)
	mutations := []func(*Config){
		func(c *Config) { c.TimeSlice = 0 },
		func(c *Config) { c.SchedulerEpoch = c.TimeSlice / 2 },
		func(c *Config) { c.TDTM = 0 },
		func(c *Config) { c.DTMThrottleFreq = 0 },
		func(c *Config) { c.DTMHysteresis = -1 },
		func(c *Config) { c.MaxTime = 0 },
		func(c *Config) { c.HistoryWindow = 0 },
	}
	for i, mut := range mutations {
		cfg := DefaultConfig()
		mut(&cfg)
		if _, err := New(plat, cfg, &greedy{}, []*workload.Task{task}); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
	if _, err := New(plat, DefaultConfig(), nil, []*workload.Task{task}); err == nil {
		t.Error("nil scheduler accepted")
	}
	if _, err := New(plat, DefaultConfig(), &greedy{}, nil); err == nil {
		t.Error("empty task list accepted")
	}
}

func TestRunCompletesSingleTask(t *testing.T) {
	plat := testPlatform(t, 4, 4)
	task := smallTask(t, "blackscholes", 2, 0, 0.2)
	s, err := New(plat, DefaultConfig(), &greedy{}, []*workload.Task{task})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tasks) != 1 {
		t.Fatalf("task stats = %d", len(res.Tasks))
	}
	st := res.Tasks[0]
	if st.Finish <= 0 || st.Start < 0 {
		t.Fatalf("task not run: %+v", st)
	}
	if math.IsNaN(st.Response) || st.Response <= 0 {
		t.Fatalf("response = %v", st.Response)
	}
	if res.Makespan != st.Finish {
		t.Errorf("makespan %v != finish %v", res.Makespan, st.Finish)
	}
	if res.AvgResponse != st.Response || res.MaxResponse != st.Response {
		t.Error("aggregate response stats wrong for single task")
	}
	if res.PeakTemp <= plat.Thermal.Ambient() {
		t.Errorf("peak temp %v not above ambient", res.PeakTemp)
	}
	if res.EnergyJ <= 0 {
		t.Error("no energy accounted")
	}
	if res.SchedulerInvocations == 0 {
		t.Error("scheduler never invoked")
	}
}

func TestArrivalDelaysStart(t *testing.T) {
	plat := testPlatform(t, 4, 4)
	task := smallTask(t, "swaptions", 1, 5e-3, 0.05)
	s, err := New(plat, DefaultConfig(), &greedy{}, []*workload.Task{task})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Tasks[0].Start < 5e-3-1e-4 {
		t.Errorf("task started at %v before its arrival 5ms", res.Tasks[0].Start)
	}
}

func TestQueuedThreadsMakeNoProgress(t *testing.T) {
	// Pin only thread 0; thread 1 stays queued, so a 2-thread blackscholes
	// (whose phase 2 runs on the worker) can never finish within MaxTime.
	plat := testPlatform(t, 4, 4)
	task := smallTask(t, "blackscholes", 2, 0, 0.05)
	sch := &pinner{name: "partial", pins: map[ThreadID]int{{Task: 0, Thread: 0}: 5}}
	cfg := DefaultConfig()
	cfg.MaxTime = 50e-3
	s, err := New(plat, cfg, sch, []*workload.Task{task})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("expected timeout, got err=%v", err)
	}
	if res.Tasks[0].Finish >= 0 {
		t.Error("task finished although its worker never ran")
	}
}

func TestDTMThrottlesUnmanagedRun(t *testing.T) {
	// Unmanaged blackscholes at peak frequency breaches 70 °C; DTM must fire
	// and cap the excursion. With DTM disabled the chip runs hotter.
	plat := testPlatform(t, 4, 4)
	run := func(dtm bool) *Result {
		task := smallTask(t, "blackscholes", 2, 0, 1)
		sch := &pinner{name: "pin", pins: map[ThreadID]int{
			{Task: 0, Thread: 0}: 5, {Task: 0, Thread: 1}: 10,
		}}
		cfg := DefaultConfig()
		cfg.DTMEnabled = dtm
		s, err := New(plat, cfg, sch, []*workload.Task{task})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	with := run(true)
	without := run(false)
	if without.PeakTemp <= 70 {
		t.Errorf("unprotected peak %v ≤ 70 °C; workload should breach", without.PeakTemp)
	}
	if with.DTMEvents == 0 || with.DTMTime <= 0 {
		t.Error("DTM never engaged on a breaching workload")
	}
	if without.DTMEvents != 0 {
		t.Error("DTM events counted while disabled")
	}
	if with.PeakTemp >= without.PeakTemp {
		t.Errorf("DTM run peaked at %v, not below unprotected %v", with.PeakTemp, without.PeakTemp)
	}
	if with.Makespan <= without.Makespan {
		t.Error("DTM throttling should cost performance")
	}
}

// migrator ping-pongs a single thread between two cores every decision.
type migrator struct {
	cores [2]int
	flip  bool
}

func (m *migrator) Name() string { return "migrator" }
func (m *migrator) Decide(st *State) Decision {
	a := map[ThreadID]int{}
	m.flip = !m.flip
	core := m.cores[0]
	if m.flip {
		core = m.cores[1]
	}
	for _, th := range st.Threads {
		a[th.ID] = core
	}
	return Decision{Assignment: a, NextInvoke: 0.5e-3}
}

func TestMigrationsCountedAndPenalised(t *testing.T) {
	plat := testPlatform(t, 4, 4)
	mk := func() *workload.Task { return smallTask(t, "swaptions", 1, 0, 0.1) }

	still, err := New(plat, DefaultConfig(), &pinner{name: "pin", pins: map[ThreadID]int{{}: 5}}, []*workload.Task{mk()})
	if err != nil {
		t.Fatal(err)
	}
	resStill, err := still.Run()
	if err != nil {
		t.Fatal(err)
	}

	moving, err := New(plat, DefaultConfig(), &migrator{cores: [2]int{5, 10}}, []*workload.Task{mk()})
	if err != nil {
		t.Fatal(err)
	}
	resMoving, err := moving.Run()
	if err != nil {
		t.Fatal(err)
	}

	if resStill.Migrations != 0 {
		t.Errorf("pinned run migrated %d times", resStill.Migrations)
	}
	if resMoving.Migrations == 0 {
		t.Fatal("ping-pong run recorded no migrations")
	}
	if resMoving.Makespan <= resStill.Makespan {
		t.Errorf("migration penalties did not slow the run: %v vs %v",
			resMoving.Makespan, resStill.Makespan)
	}
}

func TestFrequencyAffectsPerformance(t *testing.T) {
	plat := testPlatform(t, 4, 4)
	run := func(freq float64) float64 {
		task := smallTask(t, "swaptions", 1, 0, 0.1)
		cfg := DefaultConfig()
		cfg.DTMEnabled = false
		s, err := New(plat, cfg, &greedy{freq: freq}, []*workload.Task{task})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Makespan
	}
	fast := run(4e9)
	slow := run(2e9)
	// swaptions is compute-bound: halving f should roughly double time.
	ratio := slow / fast
	if ratio < 1.7 || ratio > 2.3 {
		t.Errorf("f/2 slowdown = %.2f, want ≈2 for a compute-bound task", ratio)
	}
}

func TestTraceObservesRun(t *testing.T) {
	plat := testPlatform(t, 4, 4)
	task := smallTask(t, "blackscholes", 2, 0, 0.1)
	s, err := New(plat, DefaultConfig(), &greedy{}, []*workload.Task{task})
	if err != nil {
		t.Fatal(err)
	}
	var slices int
	var lastT float64
	s.SetTrace(func(tm float64, temps, watts, freqs []float64) {
		slices++
		if tm <= lastT {
			t.Fatal("trace time not monotone")
		}
		lastT = tm
		if len(temps) != 16 || len(watts) != 16 || len(freqs) != 16 {
			t.Fatal("trace vector lengths wrong")
		}
	})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if slices == 0 {
		t.Fatal("trace never called")
	}
}

// badScheduler returns conflicting assignments.
type badScheduler struct{ mode string }

func (b *badScheduler) Name() string { return "bad" }
func (b *badScheduler) Decide(st *State) Decision {
	switch b.mode {
	case "clash":
		a := map[ThreadID]int{}
		for _, th := range st.Threads {
			a[th.ID] = 0 // everyone on core 0
		}
		return Decision{Assignment: a}
	case "range":
		a := map[ThreadID]int{}
		for _, th := range st.Threads {
			a[th.ID] = 999
		}
		return Decision{Assignment: a}
	case "unknown":
		return Decision{Assignment: map[ThreadID]int{{Task: 77, Thread: 3}: 0}}
	case "shortfreq":
		return Decision{Assignment: map[ThreadID]int{}, Freq: []float64{1e9}}
	}
	return Decision{}
}

func TestInvalidDecisionsRejected(t *testing.T) {
	for _, mode := range []string{"clash", "range", "unknown", "shortfreq"} {
		plat := testPlatform(t, 4, 4)
		task := smallTask(t, "blackscholes", 2, 0, 0.1)
		s, err := New(plat, DefaultConfig(), &badScheduler{mode: mode}, []*workload.Task{task})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Run(); err == nil {
			t.Errorf("mode %q: invalid decision accepted", mode)
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func() *Result {
		plat := testPlatform(t, 4, 4)
		b, _ := workload.ByName("bodytrack")
		t1, _ := workload.NewTask(0, b, 2, 0, 0.2)
		t2, _ := workload.NewTask(1, b, 2, 2e-3, 0.2)
		s, err := New(plat, DefaultConfig(), &greedy{}, []*workload.Task{t1, t2})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Makespan != b.Makespan || a.PeakTemp != b.PeakTemp || a.EnergyJ != b.EnergyJ {
		t.Fatalf("non-deterministic results: %+v vs %+v", a, b)
	}
}

func TestMultiTaskResponseAggregates(t *testing.T) {
	plat := testPlatform(t, 4, 4)
	b, _ := workload.ByName("swaptions")
	t1, _ := workload.NewTask(0, b, 1, 0, 0.05)
	t2, _ := workload.NewTask(1, b, 1, 0, 0.15)
	s, err := New(plat, DefaultConfig(), &greedy{}, []*workload.Task{t1, t2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tasks) != 2 {
		t.Fatalf("stats for %d tasks", len(res.Tasks))
	}
	want := (res.Tasks[0].Response + res.Tasks[1].Response) / 2
	if math.Abs(res.AvgResponse-want) > 1e-12 {
		t.Errorf("avg response %v, want %v", res.AvgResponse, want)
	}
	if res.MaxResponse < res.AvgResponse {
		t.Error("max response below average")
	}
}

func TestSensorNoiseValidationAndDeterminism(t *testing.T) {
	plat := testPlatform(t, 4, 4)
	cfg := DefaultConfig()
	cfg.SensorNoiseStdDev = -1
	if _, err := New(plat, cfg, &greedy{}, []*workload.Task{smallTask(t, "dedup", 1, 0, 0.05)}); err == nil {
		t.Error("negative noise accepted")
	}

	run := func(seed int64) *Result {
		cfg := DefaultConfig()
		cfg.SensorNoiseStdDev = 1.0
		cfg.SensorNoiseSeed = seed
		s, err := New(plat, cfg, &greedy{}, []*workload.Task{smallTask(t, "dedup", 1, 0, 0.05)})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(7), run(7)
	if a.Makespan != b.Makespan || a.PeakTemp != b.PeakTemp {
		t.Error("same noise seed produced different runs")
	}
}

// noiseProbe records the temperatures the scheduler observes.
type noiseProbe struct {
	greedy
	observed []float64
}

func (p *noiseProbe) Decide(st *State) Decision {
	p.observed = append(p.observed, st.CoreTemps...)
	return p.greedy.Decide(st)
}

func TestSensorNoisePerturbsSchedulerViewOnly(t *testing.T) {
	plat := testPlatform(t, 2, 2)
	cfg := DefaultConfig()
	cfg.SensorNoiseStdDev = 3
	cfg.SensorNoiseSeed = 42
	probe := &noiseProbe{}
	s, err := New(plat, cfg, probe, []*workload.Task{smallTask(t, "swaptions", 1, 0, 0.02)})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	// With 3 K noise the scheduler must have seen values below ambient at
	// least once early on (true temps start exactly at ambient).
	sawPerturbed := false
	amb := plat.Thermal.Ambient()
	for _, v := range probe.observed {
		if v < amb-0.5 {
			sawPerturbed = true
			break
		}
	}
	if !sawPerturbed {
		t.Error("scheduler never saw noisy temperatures")
	}
	// Physics unaffected: peak tracks true temperature, which never dips
	// below ambient.
	if res.PeakTemp < amb {
		t.Errorf("physical peak %v below ambient", res.PeakTemp)
	}
}

func TestEnergyMatchesTraceIntegral(t *testing.T) {
	// Result.EnergyJ must equal the time integral of the traced core power.
	plat := testPlatform(t, 4, 4)
	task := smallTask(t, "bodytrack", 2, 0, 0.1)
	cfg := DefaultConfig()
	s, err := New(plat, cfg, &greedy{}, []*workload.Task{task})
	if err != nil {
		t.Fatal(err)
	}
	var integral float64
	s.SetTrace(func(tm float64, temps, watts, freqs []float64) {
		for _, w := range watts {
			integral += w * cfg.TimeSlice
		}
	})
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.EnergyJ-integral) > 1e-9*(1+integral) {
		t.Fatalf("EnergyJ %v vs trace integral %v", res.EnergyJ, integral)
	}
}

func TestWorkConservation(t *testing.T) {
	// Every task must retire exactly its instruction budget: zero remaining
	// work at completion, no over- or under-execution.
	plat := testPlatform(t, 4, 4)
	b, _ := workload.ByName("fluidanimate")
	t1, _ := workload.NewTask(0, b, 3, 0, 0.3)
	t2, _ := workload.NewTask(1, b, 2, 3e-3, 0.7)
	s, err := New(plat, DefaultConfig(), &greedy{}, []*workload.Task{t1, t2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for _, task := range []*workload.Task{t1, t2} {
		if !task.Done() {
			t.Fatalf("task %d not done", task.ID)
		}
		if rem := task.TotalRemaining(); rem != 0 {
			t.Fatalf("task %d retired with %g instructions remaining", task.ID, rem)
		}
	}
}

func TestSimulatedTimeAdvancesInSlices(t *testing.T) {
	plat := testPlatform(t, 2, 2)
	task := smallTask(t, "swaptions", 1, 0, 0.02)
	cfg := DefaultConfig()
	s, err := New(plat, cfg, &greedy{}, []*workload.Task{task})
	if err != nil {
		t.Fatal(err)
	}
	var last float64
	var count int
	s.SetTrace(func(tm float64, temps, watts, freqs []float64) {
		if count > 0 {
			if math.Abs((tm-last)-cfg.TimeSlice) > 1e-12 {
				t.Fatalf("slice step %v, want %v", tm-last, cfg.TimeSlice)
			}
		}
		last = tm
		count++
	})
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.SimulatedTime-float64(count)*cfg.TimeSlice) > 1e-9 {
		t.Fatalf("simulated time %v vs %d slices", res.SimulatedTime, count)
	}
}

func TestAvgWaitReflectsQueueing(t *testing.T) {
	// On a 2x2 chip, a 4-thread task blocks a later 1-thread task; the
	// second task's wait shows up in AvgWait.
	plat := testPlatform(t, 2, 2)
	b, _ := workload.ByName("dedup")
	big, _ := workload.NewTask(0, b, 4, 0, 0.2)
	small, _ := workload.NewTask(1, b, 1, 1e-3, 0.05)
	s, err := New(plat, DefaultConfig(), &greedy{}, []*workload.Task{big, small})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgWait <= 1e-3 {
		t.Errorf("AvgWait = %v, expected clear queueing delay", res.AvgWait)
	}
	// An uncontended single task waits ≈0.
	solo, _ := workload.NewTask(0, b, 1, 0, 0.05)
	s2, err := New(plat, DefaultConfig(), &greedy{}, []*workload.Task{solo})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := s2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res2.AvgWait > 1e-3 {
		t.Errorf("solo AvgWait = %v, want ≈0", res2.AvgWait)
	}
}

func TestNoCContentionSlowsMemoryHeavyLoad(t *testing.T) {
	// A chip full of streaming threads loads the LLC banks: with the
	// contention model on, the parallel-dominated run takes measurably
	// longer; a near-idle chip is essentially unaffected. (With Table I
	// parameters the banks never saturate outright — peak utilization is
	// ≈10% — so the honest expected effect is a few percent.)
	run := func(contention bool, threads int) float64 {
		plat := testPlatform(t, 4, 4)
		b, _ := workload.ByName("canneal")
		specs, err := workload.HomogeneousFullLoad(b, threads, []int{4})
		if err != nil {
			t.Fatal(err)
		}
		tasks, err := workload.Instantiate(specs)
		if err != nil {
			t.Fatal(err)
		}
		for _, task := range tasks {
			task.WorkScale = 0.2
		}
		cfg := DefaultConfig()
		cfg.NoCContention = contention
		s, err := New(plat, cfg, &greedy{}, tasks)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Makespan
	}
	fullOff := run(false, 16)
	fullOn := run(true, 16)
	if fullOn <= fullOff*1.02 {
		t.Errorf("contention changed full-load makespan %.2f → %.2f ms (want clearly slower)",
			fullOff*1e3, fullOn*1e3)
	}
	soloOff := run(false, 2)
	soloOn := run(true, 2)
	if soloOn > soloOff*1.05 {
		t.Errorf("contention penalised a near-idle chip: %.2f → %.2f ms",
			soloOff*1e3, soloOn*1e3)
	}
}

func TestPerCoreDTMThrottlesOnlyHotCore(t *testing.T) {
	// Two pinned blackscholes threads heat their own cores; with per-core
	// DTM a cool third task on the far corner keeps running at peak, so it
	// finishes faster than under chip-wide DTM.
	run := func(perCore bool) *Result {
		plat := testPlatform(t, 4, 4)
		hot := smallTask(t, "blackscholes", 2, 0, 1)
		bCool, _ := workload.ByName("canneal")
		cool, _ := workload.NewTask(1, bCool, 1, 0, 0.1)
		sch := &pinner{name: "pin", pins: map[ThreadID]int{
			{Task: 0, Thread: 0}: 5,
			{Task: 0, Thread: 1}: 10,
			{Task: 1, Thread: 0}: 0, // far corner, stays cool
		}}
		cfg := DefaultConfig()
		cfg.DTMPerCore = perCore
		s, err := New(plat, cfg, sch, []*workload.Task{hot, cool})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	chipWide := run(false)
	perCore := run(true)
	if chipWide.DTMEvents == 0 {
		t.Fatal("scenario never tripped DTM; test needs a hotter workload")
	}
	coolChip := chipWide.Tasks[1]
	coolCore := perCore.Tasks[1]
	if coolCore.Response >= coolChip.Response {
		t.Errorf("per-core DTM cool task %.1f ms not faster than chip-wide %.1f ms",
			coolCore.Response*1e3, coolChip.Response*1e3)
	}
	if perCore.PeakTemp > chipWide.PeakTemp+1 {
		t.Errorf("per-core DTM peak %.2f far above chip-wide %.2f", perCore.PeakTemp, chipWide.PeakTemp)
	}
}

func TestResultString(t *testing.T) {
	plat := testPlatform(t, 4, 4)
	task := smallTask(t, "swaptions", 1, 0, 0.05)
	s, err := New(plat, DefaultConfig(), &greedy{}, []*workload.Task{task})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	out := res.String()
	for _, want := range []string{"greedy", "makespan", "peak", "migrations"} {
		if !strings.Contains(out, want) {
			t.Errorf("Result.String() missing %q: %s", want, out)
		}
	}
}
