package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanRecorderBasics(t *testing.T) {
	rec := NewSpanRecorder(16)
	root := rec.Start("run")
	if root.ID() != 1 {
		t.Errorf("root ID = %d, want 1", root.ID())
	}
	child := root.StartChild("phase")
	child.SetAttr("epoch", 3)
	child.SetAttr("epoch", 4) // last write wins
	child.End()
	child.End() // idempotent
	root.SetError(errors.New("boom"))
	root.End()

	records := rec.Records()
	if len(records) != 2 {
		t.Fatalf("got %d records, want 2", len(records))
	}
	r0, r1 := records[0], records[1]
	if r0.Name != "run" || !r0.Done || r0.Error != "boom" || r0.Parent != 0 {
		t.Errorf("root record = %+v", r0)
	}
	if r1.Name != "phase" || r1.Parent != r0.ID || r1.Attrs["epoch"] != 4 {
		t.Errorf("child record = %+v", r1)
	}
	if r1.Duration() < 0 || r0.Duration() < r1.Duration() {
		t.Errorf("durations: root %v, child %v", r0.Duration(), r1.Duration())
	}
}

func TestSpanRecordLiveSnapshot(t *testing.T) {
	rec := NewSpanRecorder(4)
	s := rec.Start("open")
	time.Sleep(time.Millisecond)
	r := rec.Records()[0]
	if r.Done {
		t.Error("un-ended span snapshot claims Done")
	}
	if r.DurationNS <= 0 {
		t.Errorf("running duration = %d, want > 0", r.DurationNS)
	}
	s.End()
	if !rec.Records()[0].Done {
		t.Error("ended span snapshot not Done")
	}
}

func TestSpanRecorderCapacityAndDrops(t *testing.T) {
	rec := NewSpanRecorder(2)
	root := rec.Start("run")
	kept := root.StartChild("kept")
	dropped := root.StartChild("dropped")
	// Dropped spans still function as live spans.
	dropped.SetAttr("k", "v")
	grandchild := dropped.StartChild("orphan")
	grandchild.End()
	dropped.End()
	kept.End()
	root.End()

	if rec.Len() != 2 {
		t.Errorf("Len = %d, want 2", rec.Len())
	}
	if rec.Total() != 4 {
		t.Errorf("Total = %d, want 4", rec.Total())
	}
	if rec.Dropped() != 2 {
		t.Errorf("Dropped = %d, want 2", rec.Dropped())
	}
}

func TestSpanTree(t *testing.T) {
	rec := NewSpanRecorder(16)
	root := rec.Start("run")
	a := root.StartChild("a")
	a.StartChild("a1").End()
	a.End()
	root.StartChild("b").End()
	root.End()

	roots := rec.Tree()
	if len(roots) != 1 {
		t.Fatalf("got %d roots, want 1", len(roots))
	}
	run := roots[0]
	if run.Name != "run" || len(run.Children) != 2 {
		t.Fatalf("root = %q with %d children, want run with 2", run.Name, len(run.Children))
	}
	if run.Children[0].Name != "a" || run.Children[1].Name != "b" {
		t.Errorf("children = %q, %q — want start order a, b", run.Children[0].Name, run.Children[1].Name)
	}
	if len(run.Children[0].Children) != 1 || run.Children[0].Children[0].Name != "a1" {
		t.Errorf("grandchildren = %+v", run.Children[0].Children)
	}
}

// TestSpanTreeDroppedSubtree pins the capacity interaction with Tree:
// retention is a start-order prefix, so dropped spans (and their descendants,
// which necessarily start later) simply never appear — the retained tree
// stays well-formed with no dangling parent references.
func TestSpanTreeDroppedSubtree(t *testing.T) {
	rec := NewSpanRecorder(2)
	root := rec.Start("root")
	root.StartChild("kept").End()
	lost := root.StartChild("lost") // beyond capacity, not retained
	lost.StartChild("lost-child").End()
	lost.End()
	root.End()

	roots := rec.Tree()
	if len(roots) != 1 || roots[0].Name != "root" {
		t.Fatalf("roots = %+v", roots)
	}
	if len(roots[0].Children) != 1 || roots[0].Children[0].Name != "kept" {
		t.Errorf("children = %+v", roots[0].Children)
	}
	if rec.Dropped() != 2 {
		t.Errorf("Dropped = %d, want 2", rec.Dropped())
	}
}

func TestSpanWriteJSONL(t *testing.T) {
	rec := NewSpanRecorder(8)
	root := rec.Start("run")
	root.SetAttr("grid", 8)
	root.StartChild("epoch").End()
	root.End()

	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2:\n%s", len(lines), buf.String())
	}
	var r SpanRecord
	if err := json.Unmarshal([]byte(lines[0]), &r); err != nil {
		t.Fatalf("line 0 not JSON: %v", err)
	}
	if r.Name != "run" || r.Attrs["grid"] != float64(8) || !r.Done {
		t.Errorf("decoded root = %+v", r)
	}
}

// TestSpanNilSafety drives the full API through nil receivers: the documented
// contract is that uninstrumented paths need no conditionals.
func TestSpanNilSafety(t *testing.T) {
	var rec *SpanRecorder
	s := rec.Start("ignored")
	if s != nil {
		t.Fatal("nil recorder started a non-nil span")
	}
	if c := s.StartChild("x"); c != nil {
		t.Fatal("nil span started a non-nil child")
	}
	s.SetAttr("k", "v")
	s.SetError(errors.New("e"))
	s.End()
	if s.ID() != 0 {
		t.Errorf("nil span ID = %d, want 0", s.ID())
	}
	if rec.Len() != 0 || rec.Total() != 0 || rec.Dropped() != 0 {
		t.Error("nil recorder reports non-zero counts")
	}
	if rec.Records() != nil || rec.Tree() != nil {
		t.Error("nil recorder returned non-nil snapshots")
	}
	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf); err != nil || buf.Len() != 0 {
		t.Errorf("nil recorder WriteJSONL: err=%v, wrote %d bytes", err, buf.Len())
	}
}

func TestSpanContext(t *testing.T) {
	ctx := context.Background()
	if got := SpanFromContext(ctx); got != nil {
		t.Fatal("uninstrumented context yielded a span")
	}
	childCtx, child := StartSpan(ctx, "x")
	if child != nil || childCtx != ctx {
		t.Fatal("StartSpan on uninstrumented context should return (ctx, nil)")
	}

	rec := NewSpanRecorder(8)
	root := rec.Start("run")
	ctx = ContextWithSpan(ctx, root)
	if SpanFromContext(ctx) != root {
		t.Fatal("span did not round-trip through context")
	}
	childCtx, child = StartSpan(ctx, "phase")
	if child == nil || SpanFromContext(childCtx) != child {
		t.Fatal("StartSpan did not nest a child span")
	}
	child.End()
	root.End()
	if got := rec.Records()[1].Parent; got != root.ID() {
		t.Errorf("child parent = %d, want %d", got, root.ID())
	}
	// ContextWithSpan(nil span) leaves the context untouched.
	if ContextWithSpan(ctx, nil) != ctx {
		t.Error("ContextWithSpan(nil) allocated a new context")
	}
}

// TestSpanRecorderConcurrent hammers one recorder from many goroutines under
// -race: concurrent starts, attribute writes, snapshots and tree assembly.
func TestSpanRecorderConcurrent(t *testing.T) {
	rec := NewSpanRecorder(256)
	root := rec.Start("run")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				s := root.StartChild(fmt.Sprintf("worker-%d", g))
				s.SetAttr("i", i)
				s.End()
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			rec.Records()
			rec.Tree()
		}
	}()
	wg.Wait()
	root.End()
	if got := rec.Total(); got != 401 {
		t.Errorf("Total = %d, want 401", got)
	}
	if rec.Len() != 256 {
		t.Errorf("Len = %d, want capacity 256", rec.Len())
	}
	if got := rec.Dropped(); got != 401-256 {
		t.Errorf("Dropped = %d, want %d", got, 401-256)
	}
}
