package sim

import "repro/internal/obs"

// Pre-registered metric handles (docs/OBSERVABILITY.md). Package-level
// concrete pointers keep the slice loop free of registry lookups and
// interface calls; every operation below is a single atomic instruction.
var (
	metricRuns = obs.NewCounter("sim_runs_total",
		"Simulation runs started (Run/RunContext entries).")
	metricEpochs = obs.NewCounter("sim_epochs_total",
		"Scheduler epochs simulated (Decide invocations) across all runs.")
	metricSlices = obs.NewCounter("sim_slices_total",
		"Time slices stepped through the thermal model across all runs.")
	metricMigrations = obs.NewCounter("sim_migrations_total",
		"Thread migrations performed by scheduler decisions across all runs.")
	metricDTMEvents = obs.NewCounter("sim_dtm_events_total",
		"Hardware DTM throttle engagements across all runs.")
	metricPeakTemp = obs.NewGauge("sim_peak_temp_celsius",
		"Peak core temperature of the last finished run, °C. Last-writer-wins "+
			"under concurrent runs; use sim_peak_temp_distribution for aggregates.")
	metricPeakTempDist = obs.NewHistogram("sim_peak_temp_distribution",
		"Peak core temperature per finalized run, °C — one observation per run, "+
			"so concurrent jobs aggregate instead of overwriting each other.",
		[]float64{45, 50, 55, 60, 65, 67.5, 70, 72.5, 75, 80, 85, 90, 100})
)
