package rotation

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/matrix"
	"repro/internal/thermal"
)

func TestEvaluateFineValidation(t *testing.T) {
	c := newCalc(t, 2, 2, thermal.DefaultConfig())
	plan := Plan{Tau: 1e-3, Powers: [][]float64{{1, 1, 1, 1}}}
	if _, err := c.EvaluateFine(plan, 0); err == nil {
		t.Error("zero subsamples accepted")
	}
	if _, err := c.EvaluateFine(Plan{Tau: -1, Powers: plan.Powers}, 2); err == nil {
		t.Error("invalid plan accepted")
	}
}

func TestEvaluateFineOneSubsampleEqualsEvaluate(t *testing.T) {
	c := newCalc(t, 4, 4, thermal.DefaultConfig())
	base := matrix.Constant(16, 0.3)
	base[5] = 9
	plan := Rotate(1e-3, base, []int{5, 6, 10, 9})
	coarse, err := c.Evaluate(plan)
	if err != nil {
		t.Fatal(err)
	}
	fine, err := c.EvaluateFine(plan, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(coarse.Peak-fine.Peak) > 1e-9 {
		t.Fatalf("subsamples=1 peak %.6f != Evaluate peak %.6f", fine.Peak, coarse.Peak)
	}
	for e := range coarse.EpochEnd {
		if !matrix.VecApproxEqual(coarse.EpochEnd[e], fine.EpochEnd[e], 1e-9) {
			t.Fatalf("epoch-end %d mismatch", e)
		}
	}
}

func TestEvaluateFinePeakAtLeastCoarse(t *testing.T) {
	// Subsampling can only reveal higher peaks, never lower ones.
	c := newCalc(t, 4, 4, thermal.DefaultConfig())
	base := matrix.Constant(16, 0.3)
	base[5] = 9
	for _, tau := range []float64{0.5e-3, 2e-3, 8e-3} {
		plan := Rotate(tau, base, []int{5, 6, 10, 9})
		coarse, err := c.PeakTemperature(plan)
		if err != nil {
			t.Fatal(err)
		}
		fine, err := c.EvaluateFine(plan, 16)
		if err != nil {
			t.Fatal(err)
		}
		if fine.Peak < coarse-1e-9 {
			t.Fatalf("τ=%v: fine peak %.4f below coarse %.4f", tau, fine.Peak, coarse)
		}
	}
}

func TestEvaluateFineConverges(t *testing.T) {
	// Doubling the sampling rate changes the peak less and less.
	c := newCalc(t, 4, 4, thermal.DefaultConfig())
	base := matrix.Constant(16, 0.3)
	base[5] = 9
	plan := Rotate(4e-3, base, []int{5, 6, 10, 9}) // long epochs: intra-epoch peak matters
	var prev float64
	var deltas []float64
	for _, k := range []int{1, 4, 16, 64} {
		res, err := c.EvaluateFine(plan, k)
		if err != nil {
			t.Fatal(err)
		}
		if prev != 0 {
			deltas = append(deltas, math.Abs(res.Peak-prev))
		}
		prev = res.Peak
	}
	for i := 1; i < len(deltas); i++ {
		if deltas[i] > deltas[i-1]+1e-9 {
			t.Fatalf("refinement not converging: deltas %v", deltas)
		}
	}
	if deltas[len(deltas)-1] > 0.05 {
		t.Errorf("still moving %.4f K at 64 subsamples", deltas[len(deltas)-1])
	}
}

// Property: fine and coarse evaluations agree on the period fixed point
// (Start), differing only in where they look for the peak.
func TestPropFineStartMatchesCoarse(t *testing.T) {
	c := newCalc(t, 3, 3, thermal.DefaultConfig())
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		base := make([]float64, 9)
		for i := range base {
			base[i] = r.Float64() * 8
		}
		plan := Rotate((0.3+r.Float64())*1e-3, base, []int{4, 1, 3})
		coarse, err := c.Evaluate(plan)
		if err != nil {
			return false
		}
		fine, err := c.EvaluateFine(plan, 2+r.Intn(8))
		if err != nil {
			return false
		}
		return matrix.VecApproxEqual(coarse.Start, fine.Start, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
