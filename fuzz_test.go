package hotpotato

import (
	"bytes"
	"encoding/json"
	"os"
	"reflect"
	"testing"
)

// FuzzDecodeRunSpec throws arbitrary bytes at the RunSpec wire path — the
// exact code POST /v1/run runs on untrusted request bodies. Two properties:
//
//  1. Decode-over-defaults plus WithDefaults plus Validate never panics,
//     whatever the input.
//  2. Any document that decodes and validates round-trips: Marshal → Decode →
//     WithDefaults → Marshal reproduces the same bytes, and the round-tripped
//     spec still validates. (Byte comparison rather than DeepEqual: an empty
//     "pins": {} decodes to a non-nil map that omitempty then drops, which is
//     wire-equivalent but not DeepEqual.)
//
// The committed seed corpus under testdata/fuzz/FuzzDecodeRunSpec/ carries
// the documented example specs from docs/SERVICE.md.
func FuzzDecodeRunSpec(f *testing.F) {
	seeds := []string{
		// The docs/SERVICE.md minimal document.
		`{"platform": {"width": 4, "height": 4}, "scheduler": {"name": "hotpotato"}, "workload": {"kind": "homogeneous", "bench": "blackscholes", "total_threads": 4}}`,
		// Every workload kind.
		`{"scheduler": {"name": "pcmig"}, "workload": {"kind": "random", "count": 5, "rate": 100, "seed": 7}}`,
		`{"scheduler": {"name": "static", "pins": {"0:0": 0}}, "workload": {"kind": "explicit", "tasks": [{"bench": "swaptions", "threads": 1}]}}`,
		// Explicit sim section with booleans.
		`{"sim": {"dtm_enabled": false, "max_time": 1}, "scheduler": {"name": "rotation"}, "workload": {"kind": "homogeneous", "bench": "x264"}}`,
		// Degenerate inputs.
		`{}`, `null`, `[]`, `{"platform": {"width": -1}}`,
		`{"workload": {"kind": "unknown"}}`, `{"sim": {"time_slice": 1e309}}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var spec RunSpec
		if err := json.Unmarshal(data, &spec); err != nil {
			return // undecodable input is a fine outcome, panicking is not
		}
		spec = spec.WithDefaults()
		if spec.Validate() != nil {
			return
		}

		first, err := json.Marshal(spec)
		if err != nil {
			t.Fatalf("valid spec does not marshal: %v", err)
		}
		var back RunSpec
		if err := json.Unmarshal(first, &back); err != nil {
			t.Fatalf("marshaled spec does not decode: %v\n%s", err, first)
		}
		back = back.WithDefaults()
		second, err := json.Marshal(back)
		if err != nil {
			t.Fatalf("round-tripped spec does not marshal: %v", err)
		}
		if !bytes.Equal(first, second) {
			t.Errorf("round trip changed the document:\nfirst:  %s\nsecond: %s", first, second)
		}
		if err := back.Validate(); err != nil {
			t.Errorf("round-tripped spec no longer validates: %v\n%s", err, first)
		}

		// Canonicalization of a valid spec never fails, is idempotent, and
		// gives the spec its stable content address.
		canon, err := spec.Canonicalize()
		if err != nil {
			t.Fatalf("valid spec does not canonicalize: %v\n%s", err, first)
		}
		again, err := canon.Canonicalize()
		if err != nil {
			t.Fatalf("canonical spec does not re-canonicalize: %v", err)
		}
		if !reflect.DeepEqual(canon, again) {
			t.Errorf("Canonicalize not idempotent:\nonce:  %+v\ntwice: %+v", canon, again)
		}
		h1, err := SpecHash(spec)
		if err != nil {
			t.Fatalf("valid spec does not hash: %v", err)
		}
		h2, err := SpecHash(back)
		if err != nil {
			t.Fatalf("round-tripped spec does not hash: %v", err)
		}
		if h1 != h2 {
			t.Errorf("round trip changed the hash: %s vs %s\n%s", h1, h2, first)
		}
	})
}

// FuzzDecodePredictSpec throws arbitrary bytes at the PredictSpec wire path —
// the exact code POST /v1/predict runs on untrusted request bodies.
// Properties:
//
//  1. Decode, WithDefaults, and Validate never panic, whatever the input.
//  2. Valid specs hash stably through a marshal round trip, because the
//     prediction ETag is built from that hash.
//
// The committed seed corpus lives under testdata/fuzz/FuzzDecodePredictSpec/.
func FuzzDecodePredictSpec(f *testing.F) {
	seeds := []string{
		// An in-domain document (the docs/API.md predict example).
		`{"platform": {"width": 4, "height": 4}, "scheduler": {"name": "static", "pins": {"0:0": 0, "0:1": 5}}, "workload": {"kind": "explicit", "tasks": [{"bench": "blackscholes", "threads": 2, "work_scale": 0.05}]}}`,
		// Well-formed but out-of-domain (the twin rejects, the decoder must not).
		`{"scheduler": {"name": "hotpotato"}, "workload": {"kind": "random", "count": 4, "rate": 100}}`,
		`{"platform": {"width": 3, "height": 3}, "scheduler": {"name": "static"}, "workload": {"kind": "homogeneous", "bench": "x264"}}`,
		// Degenerate inputs.
		`{}`, `null`, `[]`, `{"platform": {"width": 1e309}}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var spec PredictSpec
		if err := json.Unmarshal(data, &spec); err != nil {
			return
		}
		spec.RunSpec = spec.RunSpec.WithDefaults()
		if spec.RunSpec.Validate() != nil {
			return
		}
		h1, err := SpecHash(spec.RunSpec)
		if err != nil {
			t.Fatalf("valid spec does not hash: %v", err)
		}
		wire, err := json.Marshal(spec)
		if err != nil {
			t.Fatalf("valid spec does not marshal: %v", err)
		}
		var back PredictSpec
		if err := json.Unmarshal(wire, &back); err != nil {
			t.Fatalf("marshaled spec does not decode: %v\n%s", err, wire)
		}
		back.RunSpec = back.RunSpec.WithDefaults()
		h2, err := SpecHash(back.RunSpec)
		if err != nil {
			t.Fatalf("round-tripped spec does not hash: %v", err)
		}
		if h1 != h2 {
			t.Errorf("round trip changed the hash: %s vs %s\n%s", h1, h2, wire)
		}
	})
}

// FuzzTwinModelLoad throws arbitrary bytes at the calibration-artifact loader
// — the code behind the -twin-model flag. Corrupt, truncated, or tampered
// input must be rejected with an error, never a panic; anything accepted must
// be a fully valid model whose embedded hash verifies and which survives an
// Encode → Load round trip. The committed seed corpus under
// testdata/fuzz/FuzzTwinModelLoad/ includes the shipped TWIN_model.json and
// systematic corruptions of it.
func FuzzTwinModelLoad(f *testing.F) {
	if artifact, err := os.ReadFile("TWIN_model.json"); err == nil {
		f.Add(artifact)
		f.Add(artifact[:len(artifact)/2])
		f.Add(bytes.Replace(artifact, []byte(`"seed": 1`), []byte(`"seed": 3`), 1))
		f.Add(bytes.Replace(artifact, []byte(`twin-v1`), []byte(`twin-v9`), 1))
	}
	for _, s := range []string{
		``, `{}`, `null`, `[]`, `not json`,
		`{"version": "twin-v1", "hash": "sha256:00", "seed": 1, "buckets": {}}`,
		`{"version": "twin-v1", "hash": "", "seed": 1, "buckets": {"4x4": {"width": 4, "height": 4}}}`,
	} {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		model, err := LoadTwinModel(data)
		if err != nil {
			return // rejection is the expected outcome for hostile input
		}
		if err := model.Validate(); err != nil {
			t.Fatalf("Load accepted a model Validate rejects: %v", err)
		}
		hash, err := model.ComputeHash()
		if err != nil {
			t.Fatalf("accepted model does not hash: %v", err)
		}
		if hash != model.Hash {
			t.Fatalf("accepted model's embedded hash %s != recomputed %s", model.Hash, hash)
		}
		enc, err := model.Encode()
		if err != nil {
			t.Fatalf("accepted model does not encode: %v", err)
		}
		back, err := LoadTwinModel(enc)
		if err != nil {
			t.Fatalf("Encode output does not re-Load: %v", err)
		}
		if back.Hash != model.Hash {
			t.Errorf("Encode → Load changed the hash: %s vs %s", back.Hash, model.Hash)
		}
	})
}

// FuzzDecodeSweepSpec throws arbitrary bytes at the SweepSpec wire path — the
// exact code POST /v1/batch runs on untrusted request bodies. Properties:
//
//  1. Decode, CellCount, Validate, and Expand never panic, whatever the input.
//  2. The expanded cell count always matches the cross-product CellCount
//     reports (when the sweep is within bounds).
//  3. Expansion is deterministic: expanding twice yields DeepEqual cells.
//
// Expansion is purely structural, so no simulation runs here — a fuzz
// iteration stays microseconds even for thousands-of-cell documents.
func FuzzDecodeSweepSpec(f *testing.F) {
	seeds := []string{
		// The docs/API.md example sweep.
		`{"base": {"platform": {"width": 4, "height": 4}}, "axes": {"schedulers": [{"name": "hotpotato"}, {"name": "reactive"}], "seeds": [1, 2, 3]}}`,
		// Every axis at once.
		`{"version": "v1", "base": {"workload": {"kind": "random", "count": 2, "rate": 50}}, "axes": {"platforms": [{"width": 4, "height": 4}], "workloads": [{"kind": "homogeneous", "bench": "x264"}], "schedulers": [{"name": "tsp"}], "solvers": ["dense", "sparse"], "seeds": [7]}}`,
		// Axis-free sweep (one cell), and degenerate inputs.
		`{"base": {"scheduler": {"name": "rotation"}}}`,
		`{}`, `null`, `[]`, `{"axes": {"seeds": []}}`,
		`{"axes": {"solvers": ["bogus"]}}`, `{"version": "v2"}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var spec SweepSpec
		if err := json.Unmarshal(data, &spec); err != nil {
			return
		}
		count := spec.CellCount()
		_ = spec.Validate()
		cells, err := spec.Expand()
		if err != nil {
			if count <= MaxSweepCells {
				t.Fatalf("Expand failed on an in-bounds sweep (%d cells): %v", count, err)
			}
			return
		}
		if len(cells) != count {
			t.Errorf("Expand produced %d cells, CellCount says %d", len(cells), count)
		}
		for i, cell := range cells {
			if cell.Index != i {
				t.Errorf("cell %d carries Index %d", i, cell.Index)
			}
		}
		again, err := spec.Expand()
		if err != nil {
			t.Fatalf("second Expand failed: %v", err)
		}
		if !reflect.DeepEqual(cells, again) {
			t.Error("Expand is not deterministic")
		}
	})
}
