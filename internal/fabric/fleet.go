package fabric

import (
	"sort"
	"sync"

	"repro/internal/obs"
)

// fleet.go is the dispatcher half of metrics federation. Workers piggyback
// their metric movements on heartbeats (HeartbeatRequest.Counters carries
// deltas since the previous heartbeat, .Gauges carries absolute values); the
// dispatcher folds them into fleet_<name> aggregates on its own registry, so
// one /metrics scrape of the dispatcher answers "what is the whole fleet
// doing" without scraping every worker.
//
// Counters fold additively (sum of deltas across all workers and restarts);
// gauges fold as the sum of each worker's latest value. Histograms are not
// federated — cumulative buckets only merge across processes when every
// process uses identical bounds, a coupling the wire should not assume.
//
// The fleet_* metric families are created lazily (worker sets evolve), which
// is the one place the registry's register-at-init discipline is relaxed;
// the fold path still only touches pre-resolved handles from a map, never
// the hot loop. The fold state is process-global, like the registry itself:
// two dispatchers in one process (tests) share the fleet_* series.

// maxFleetSeries bounds how many distinct fleet_* series a fleet can create
// — a misbehaving worker must not be able to grow /metrics without bound.
// Overflow is counted in fabric_fleet_series_dropped_total.
const maxFleetSeries = 512

var (
	fleetMu       sync.Mutex
	fleetCounters = map[string]*obs.Counter{}
	fleetGauges   = map[string]*obs.Gauge{}
)

// validMetricName matches the Prometheus metric-name charset; anything else
// from the wire is dropped (a worker should never be able to break the
// dispatcher's exposition format).
func validMetricName(s string) bool {
	if s == "" || len(s) > 128 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// fleetCounter resolves (lazily creating) the fleet counter for a worker
// metric name. nil means the name is invalid or the series budget is spent.
func fleetCounter(name string) *obs.Counter {
	if !validMetricName(name) {
		metricFleetSeriesDropped.Inc()
		return nil
	}
	fleetMu.Lock()
	defer fleetMu.Unlock()
	if c, ok := fleetCounters[name]; ok {
		return c
	}
	if len(fleetCounters)+len(fleetGauges) >= maxFleetSeries {
		metricFleetSeriesDropped.Inc()
		return nil
	}
	c := obs.NewCounter("fleet_"+name, "Fleet-federated sum of the workers' "+name+" counter.")
	fleetCounters[name] = c
	return c
}

// fleetGauge resolves (lazily creating) the fleet gauge for a worker metric
// name.
func fleetGauge(name string) *obs.Gauge {
	if !validMetricName(name) {
		metricFleetSeriesDropped.Inc()
		return nil
	}
	fleetMu.Lock()
	defer fleetMu.Unlock()
	if g, ok := fleetGauges[name]; ok {
		return g
	}
	if len(fleetCounters)+len(fleetGauges) >= maxFleetSeries {
		metricFleetSeriesDropped.Inc()
		return nil
	}
	g := obs.NewGauge("fleet_"+name, "Fleet-federated sum of the workers' latest "+name+" gauge values.")
	fleetGauges[name] = g
	return g
}

// FoldTelemetry folds one worker's heartbeat telemetry into the fleet
// aggregates: counter deltas add to fleet counters; gauge values replace the
// worker's previous contribution and the fleet gauge becomes the sum across
// this dispatcher's workers. Negative counter deltas are dropped (a counter
// that went backwards is a worker bug, not a fleet signal).
func (d *Dispatcher) FoldTelemetry(workerID string, counters map[string]int64, gauges map[string]float64) {
	if workerID == "" || (len(counters) == 0 && len(gauges) == 0) {
		return
	}
	for name, delta := range counters {
		if delta <= 0 {
			continue
		}
		if c := fleetCounter(name); c != nil {
			c.Add(delta)
		}
	}
	if len(gauges) == 0 {
		return
	}
	d.mu.Lock()
	w := d.touchWorkerLocked(workerID)
	if w.gauges == nil {
		w.gauges = make(map[string]float64, len(gauges))
	}
	sums := make(map[string]float64, len(gauges))
	for name, v := range gauges {
		w.gauges[name] = v
		sums[name] = 0
	}
	for _, ws := range d.workers {
		for name := range sums {
			sums[name] += ws.gauges[name]
		}
	}
	d.mu.Unlock()
	for name, sum := range sums {
		if g := fleetGauge(name); g != nil {
			g.Set(sum)
		}
	}
}

// FleetCounters snapshots the folded fleet counter values by worker metric
// name (without the fleet_ prefix) — the /healthz federation section.
func FleetCounters() map[string]int64 {
	fleetMu.Lock()
	defer fleetMu.Unlock()
	out := make(map[string]int64, len(fleetCounters))
	for name, c := range fleetCounters {
		out[name] = c.Value()
	}
	return out
}

// fleetCounterNames returns the federated counter names, sorted (tests).
func fleetCounterNames() []string {
	fleetMu.Lock()
	defer fleetMu.Unlock()
	names := make([]string, 0, len(fleetCounters))
	for name := range fleetCounters {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
