package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// log.go is the structured-logging half of the observability layer: one
// shared constructor for the binaries' -log-level/-log-format flags plus
// context plumbing, so a request-scoped logger (request ID, job ID attached)
// travels alongside the span through the same context chain.

// Log formats accepted by NewLogger.
const (
	LogFormatJSON = "json"
	LogFormatText = "text"
)

// ParseLogLevel maps the flag spellings (debug, info, warn, error) onto
// slog levels.
func ParseLogLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "info", "":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("obs: unknown log level %q (have debug, info, warn, error)", s)
}

// NewLogger builds the binaries' shared *slog.Logger: level is one of
// debug/info/warn/error, format is json (one object per line, the service's
// machine-readable schema — see docs/OBSERVABILITY.md) or text
// (human-readable key=value).
func NewLogger(w io.Writer, level, format string) (*slog.Logger, error) {
	lv, err := ParseLogLevel(level)
	if err != nil {
		return nil, err
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch strings.ToLower(strings.TrimSpace(format)) {
	case LogFormatJSON, "":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	case LogFormatText:
		return slog.New(slog.NewTextHandler(w, opts)), nil
	}
	return nil, fmt.Errorf("obs: unknown log format %q (have %s, %s)", format, LogFormatJSON, LogFormatText)
}

// nopLogger discards everything at a level no record reaches, so an
// uninstrumented context logs into a black hole without nil checks. Its
// Enabled() is false for every level, which keeps handler work (attribute
// formatting, writes) off every path that consults it.
var nopLogger = slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{
	Level: slog.Level(127),
}))

// NopLogger returns a logger that discards every record. It is what
// LoggerFrom falls back to, and what performance tests install to prove the
// instrumented paths stay allocation-free when logging is disabled.
func NopLogger() *slog.Logger { return nopLogger }

// loggerCtxKey carries the request-scoped *slog.Logger through a context.
type loggerCtxKey struct{}

// ContextWithLogger returns a context carrying l. A nil l returns ctx
// unchanged.
func ContextWithLogger(ctx context.Context, l *slog.Logger) context.Context {
	if l == nil {
		return ctx
	}
	return context.WithValue(ctx, loggerCtxKey{}, l)
}

// LoggerFrom returns the context's logger, or NopLogger() when the context
// is uninstrumented — callers log unconditionally and the level gate decides.
func LoggerFrom(ctx context.Context) *slog.Logger {
	if l, ok := ctx.Value(loggerCtxKey{}).(*slog.Logger); ok {
		return l
	}
	return nopLogger
}
