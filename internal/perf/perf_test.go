package perf

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/floorplan"
	"repro/internal/noc"
)

var (
	computeBound = Params{BaseCPI: 0.8, MPKI: 1}
	memoryBound  = Params{BaseCPI: 1.2, MPKI: 25}
)

func testPerf(t testing.TB, w, h int) (*Model, *floorplan.Floorplan) {
	t.Helper()
	fp := floorplan.MustNew(w, h, 0.0009)
	net, err := noc.New(fp, noc.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(net, DefaultBankAccess)
	if err != nil {
		t.Fatal(err)
	}
	return m, fp
}

func TestParamsValidate(t *testing.T) {
	if err := (Params{BaseCPI: 1, MPKI: 5}).Validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
	if err := (Params{BaseCPI: 0, MPKI: 5}).Validate(); err == nil {
		t.Error("zero BaseCPI accepted")
	}
	if err := (Params{BaseCPI: 1, MPKI: -1}).Validate(); err == nil {
		t.Error("negative MPKI accepted")
	}
}

func TestNewValidation(t *testing.T) {
	fp := floorplan.MustNew(2, 2, 0.0009)
	net, _ := noc.New(fp, noc.DefaultConfig())
	if _, err := New(net, -1e-9); err == nil {
		t.Error("negative bank access accepted")
	}
}

func TestCentralCoreFasterForMemoryBound(t *testing.T) {
	// S-NUCA heterogeneity: memory-bound threads run faster on low-AMD cores.
	m, fp := testPerf(t, 8, 8)
	center := fp.ID(3, 3)
	corner := fp.ID(0, 0)
	if m.IPS(memoryBound, center, 4e9) <= m.IPS(memoryBound, corner, 4e9) {
		t.Error("memory-bound thread not faster on central core")
	}
	// The gap matters: several percent.
	ratio := m.IPS(memoryBound, center, 4e9) / m.IPS(memoryBound, corner, 4e9)
	if ratio < 1.02 {
		t.Errorf("center/corner speedup = %.4f, want noticeable (> 1.02)", ratio)
	}
}

func TestComputeBoundInsensitiveToPlacement(t *testing.T) {
	m, fp := testPerf(t, 8, 8)
	center := fp.ID(3, 3)
	corner := fp.ID(0, 0)
	ratio := m.IPS(computeBound, center, 4e9) / m.IPS(computeBound, corner, 4e9)
	if ratio > 1.05 {
		t.Errorf("compute-bound placement sensitivity %.4f too strong", ratio)
	}
}

func TestDVFSAsymmetry(t *testing.T) {
	// Halving f roughly halves compute-bound speed but barely touches a
	// memory-dominated thread — the asymmetry HotPotato exploits against
	// DVFS-based baselines.
	m, fp := testPerf(t, 8, 8)
	core := fp.ID(3, 3)
	slowCompute := m.SlowdownAt(computeBound, core, 2e9, 4e9)
	slowMemory := m.SlowdownAt(memoryBound, core, 2e9, 4e9)
	if slowCompute < 1.8 {
		t.Errorf("compute-bound slowdown at f/2 = %.3f, want ≈2", slowCompute)
	}
	if slowMemory > slowCompute-0.2 {
		t.Errorf("memory-bound slowdown %.3f not clearly below compute-bound %.3f",
			slowMemory, slowCompute)
	}
}

func TestEffectiveCPIOrdersByMemoryBoundness(t *testing.T) {
	m, fp := testPerf(t, 8, 8)
	core := fp.ID(3, 3)
	if m.EffectiveCPI(memoryBound, core, 4e9) <= m.EffectiveCPI(computeBound, core, 4e9) {
		t.Error("memory-bound thread does not have higher effective CPI")
	}
}

func TestFractionsSumToOne(t *testing.T) {
	m, fp := testPerf(t, 4, 4)
	for core := 0; core < fp.NumCores(); core++ {
		for _, p := range []Params{computeBound, memoryBound} {
			busy, stall := m.Fractions(p, core, 3e9)
			if math.Abs(busy+stall-1) > 1e-12 {
				t.Fatalf("fractions sum %v", busy+stall)
			}
			if busy < 0 || stall < 0 {
				t.Fatalf("negative fraction busy=%v stall=%v", busy, stall)
			}
		}
	}
}

func TestMemoryBoundStallsMore(t *testing.T) {
	m, fp := testPerf(t, 4, 4)
	core := fp.ID(1, 1)
	_, stallMem := m.Fractions(memoryBound, core, 4e9)
	_, stallCmp := m.Fractions(computeBound, core, 4e9)
	if stallMem <= stallCmp {
		t.Errorf("memory-bound stall %.3f not above compute-bound %.3f", stallMem, stallCmp)
	}
	if stallMem < 0.3 {
		t.Errorf("memory-bound stall fraction %.3f implausibly low", stallMem)
	}
}

func TestIPSPlausibleMagnitude(t *testing.T) {
	// A compute-bound thread at 4 GHz with CPI 0.8 must execute a few
	// billion instructions per second.
	m, fp := testPerf(t, 4, 4)
	ips := m.IPS(computeBound, fp.ID(1, 1), 4e9)
	if ips < 1e9 || ips > 6e9 {
		t.Errorf("IPS = %g, want O(10⁹)", ips)
	}
}

func TestTimePerInstrPanicsOnZeroFreq(t *testing.T) {
	m, _ := testPerf(t, 2, 2)
	defer func() {
		if recover() == nil {
			t.Error("zero frequency accepted")
		}
	}()
	m.TimePerInstr(computeBound, 0, 0)
}

// Property: IPS increases with frequency, and EffectiveCPI never drops below
// BaseCPI.
func TestPropIPSMonotoneAndCPIBounded(t *testing.T) {
	m, fp := testPerf(t, 4, 4)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := Params{BaseCPI: 0.5 + r.Float64()*2, MPKI: r.Float64() * 30}
		core := r.Intn(fp.NumCores())
		f1 := 1e9 + r.Float64()*2e9
		f2 := f1 + r.Float64()*1e9
		if m.IPS(p, core, f2) < m.IPS(p, core, f1) {
			return false
		}
		return m.EffectiveCPI(p, core, f1) >= p.BaseCPI-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: SlowdownAt(fMax) = 1 and slowdown ≥ 1 below fMax.
func TestPropSlowdownBounds(t *testing.T) {
	m, fp := testPerf(t, 4, 4)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := Params{BaseCPI: 0.5 + r.Float64()*2, MPKI: r.Float64() * 30}
		core := r.Intn(fp.NumCores())
		fq := 1e9 + r.Float64()*3e9
		atMax := m.SlowdownAt(p, core, 4e9, 4e9)
		below := m.SlowdownAt(p, core, fq, 4e9)
		return math.Abs(atMax-1) < 1e-12 && below >= 1-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestDRAMPenaltySlowsMissingWorkloads(t *testing.T) {
	fp := floorplan.MustNew(8, 8, 0.0009)
	net, _ := noc.New(fp, noc.DefaultConfig())
	noDram, err := New(net, DefaultBankAccess)
	if err != nil {
		t.Fatal(err)
	}
	withDram, err := NewWithDRAM(net, DefaultBankAccess, DefaultDRAMLatency)
	if err != nil {
		t.Fatal(err)
	}
	missing := Params{BaseCPI: 1.2, MPKI: 25, LLCMissRatio: 0.3}
	resident := Params{BaseCPI: 1.2, MPKI: 25, LLCMissRatio: 0}
	core := fp.ID(3, 3)
	if withDram.IPS(missing, core, 4e9) >= noDram.IPS(missing, core, 4e9) {
		t.Error("DRAM penalty did not slow a missing workload")
	}
	if withDram.IPS(resident, core, 4e9) != noDram.IPS(resident, core, 4e9) {
		t.Error("cache-resident workload affected by DRAM latency")
	}
}

func TestNewWithDRAMValidation(t *testing.T) {
	fp := floorplan.MustNew(2, 2, 0.0009)
	net, _ := noc.New(fp, noc.DefaultConfig())
	if _, err := NewWithDRAM(net, 1e-9, -1); err == nil {
		t.Error("negative DRAM latency accepted")
	}
	if err := (Params{BaseCPI: 1, MPKI: 1, LLCMissRatio: 1.5}).Validate(); err == nil {
		t.Error("miss ratio > 1 accepted")
	}
}

func TestContentionFactorProperties(t *testing.T) {
	if got := ContentionFactor(0); got != 1 {
		t.Errorf("factor(0) = %v", got)
	}
	if got := ContentionFactor(0.5); math.Abs(got-2) > 1e-12 {
		t.Errorf("factor(0.5) = %v, want 2", got)
	}
	if got := ContentionFactor(-1); got != 1 {
		t.Errorf("factor(-1) = %v", got)
	}
	// Clamped at ρ=0.95 → 20×.
	if got := ContentionFactor(2); math.Abs(got-20) > 1e-9 {
		t.Errorf("factor(overload) = %v, want 20", got)
	}
	// Monotone.
	prev := 0.0
	for rho := 0.0; rho < 1.0; rho += 0.05 {
		f := ContentionFactor(rho)
		if f < prev {
			t.Fatalf("factor not monotone at ρ=%v", rho)
		}
		prev = f
	}
}

func TestContendedVariantsReduceToBase(t *testing.T) {
	m, fp := testPerf(t, 4, 4)
	core := fp.ID(1, 1)
	p := memoryBound
	if m.TimePerInstrContended(p, core, 3e9, 1) != m.TimePerInstr(p, core, 3e9) {
		t.Error("factor 1 changed TimePerInstr")
	}
	if m.TimePerInstrContended(p, core, 3e9, 2) <= m.TimePerInstr(p, core, 3e9) {
		t.Error("factor 2 did not slow memory")
	}
	b1, s1 := m.Fractions(p, core, 3e9)
	b2, s2 := m.FractionsContended(p, core, 3e9, 1)
	if b1 != b2 || s1 != s2 {
		t.Error("factor 1 changed fractions")
	}
	b3, s3 := m.FractionsContended(p, core, 3e9, 3)
	if s3 <= s1 || b3 >= b1 {
		t.Error("contention did not shift time toward stall")
	}
	// Sub-1 factors clamp to 1.
	if m.TimePerInstrContended(p, core, 3e9, 0.5) != m.TimePerInstr(p, core, 3e9) {
		t.Error("factor < 1 not clamped")
	}
}
