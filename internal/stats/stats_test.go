package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMeanKnown(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Mean = %v", got)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) not NaN")
	}
}

func TestVarianceKnown(t *testing.T) {
	// Sample variance of {2,4,4,4,5,5,7,9} is 4.571428...
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); math.Abs(got-4.571428571428571) > 1e-12 {
		t.Errorf("Variance = %v", got)
	}
	if !math.IsNaN(Variance([]float64{1})) {
		t.Error("Variance of single sample not NaN")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Errorf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
	if !math.IsNaN(Min(nil)) || !math.IsNaN(Max(nil)) {
		t.Error("empty Min/Max not NaN")
	}
}

func TestPercentileKnown(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5}, {10, 1.4},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("empty percentile not NaN")
	}
	if !math.IsNaN(Percentile(xs, 101)) {
		t.Error("out-of-range percentile not NaN")
	}
}

func TestPercentileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Percentile sorted its input in place")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.P50 != 3 || s.Min != 1 || s.Max != 5 {
		t.Errorf("Summary = %+v", s)
	}
	if s.String() == "" {
		t.Error("empty String()")
	}
}

func TestConfidenceInterval(t *testing.T) {
	ci := ConfidenceInterval95([]float64{10, 10, 10, 10})
	if ci != 0 {
		t.Errorf("CI of constants = %v, want 0", ci)
	}
	if !math.IsNaN(ConfidenceInterval95([]float64{1})) {
		t.Error("CI of single sample not NaN")
	}
}

func TestHistogram(t *testing.T) {
	counts, edges, err := Histogram([]float64{0.5, 1.5, 1.6, 2.5, -10, 10}, 0, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(edges) != 4 || edges[0] != 0 || edges[3] != 3 {
		t.Errorf("edges = %v", edges)
	}
	// -10 clamps to bin 0, 10 clamps to bin 2.
	if counts[0] != 2 || counts[1] != 2 || counts[2] != 2 {
		t.Errorf("counts = %v", counts)
	}
}

func TestHistogramValidation(t *testing.T) {
	if _, _, err := Histogram(nil, 0, 1, 0); err == nil {
		t.Error("zero bins accepted")
	}
	if _, _, err := Histogram(nil, 1, 1, 3); err == nil {
		t.Error("empty range accepted")
	}
}

// Property: mean lies within [min, max]; percentiles are monotone in p.
func TestPropMeanAndPercentileBounds(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.NormFloat64() * 10
		}
		m := Mean(xs)
		if m < Min(xs)-1e-9 || m > Max(xs)+1e-9 {
			return false
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 10 {
			v := Percentile(xs, p)
			if v < prev-1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: variance is translation-invariant and scales quadratically.
func TestPropVarianceInvariants(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(30)
		xs := make([]float64, n)
		shifted := make([]float64, n)
		scaled := make([]float64, n)
		shift := r.NormFloat64() * 100
		for i := range xs {
			xs[i] = r.NormFloat64()
			shifted[i] = xs[i] + shift
			scaled[i] = 3 * xs[i]
		}
		v := Variance(xs)
		if math.Abs(Variance(shifted)-v) > 1e-6*(1+v) {
			return false
		}
		return math.Abs(Variance(scaled)-9*v) < 1e-6*(1+9*v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: histogram counts always sum to the sample size.
func TestPropHistogramConserves(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(100)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.NormFloat64() * 5
		}
		counts, _, err := Histogram(xs, -3, 3, 1+r.Intn(10))
		if err != nil {
			return false
		}
		total := 0
		for _, c := range counts {
			total += c
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
