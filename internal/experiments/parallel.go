package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/sched"
	"repro/internal/sim"
)

// forEach runs fn(0) … fn(n-1) across a pool of at most `workers` goroutines
// (0 or negative means runtime.GOMAXPROCS(0)). Each index is claimed exactly
// once from a shared atomic counter, so cells are load-balanced regardless of
// their individual run times.
//
// Determinism contract: fn must write its result into index i of a
// caller-owned slice and must not touch any other index, so the assembled
// output is ordered by index, never by completion order. All cells are
// attempted even after a failure; the error of the lowest failing index is
// returned, making the reported error independent of goroutine interleaving.
func forEach(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		// Serial fast path: no goroutines, but the same
		// keep-going-and-report-lowest-index error semantics.
		var first error
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// comparisonPair returns the scheduler factories of the paper's headline
// comparison: HotPotato at index 0, PCMig at index 1. Each factory builds a
// fresh Scheduler instance, so concurrent cells never share scheduler state.
func comparisonPair(opts Options) [2]func(*sim.Platform) sim.Scheduler {
	return [2]func(*sim.Platform) sim.Scheduler{
		func(p *sim.Platform) sim.Scheduler { return sched.NewHotPotato(p, opts.TDTM) },
		func(*sim.Platform) sim.Scheduler { return sched.NewPCMig(opts.TDTM) },
	}
}
