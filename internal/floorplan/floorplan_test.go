package floorplan

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 4, 0.0009); err == nil {
		t.Error("expected error for zero width")
	}
	if _, err := New(4, -1, 0.0009); err == nil {
		t.Error("expected error for negative height")
	}
	if _, err := New(4, 4, 0); err == nil {
		t.Error("expected error for zero core edge")
	}
}

func TestCoordIDRoundTrip(t *testing.T) {
	f := MustNew(8, 8, 0.0009)
	for id := 0; id < f.NumCores(); id++ {
		x, y := f.Coord(id)
		if got := f.ID(x, y); got != id {
			t.Fatalf("ID(Coord(%d)) = %d", id, got)
		}
	}
}

func TestManhattanDistance(t *testing.T) {
	f := MustNew(4, 4, 0.0009)
	// Core 0 is (0,0); core 15 is (3,3).
	if got := f.ManhattanDistance(0, 15); got != 6 {
		t.Errorf("distance 0..15 = %d, want 6", got)
	}
	if got := f.ManhattanDistance(5, 5); got != 0 {
		t.Errorf("self distance = %d, want 0", got)
	}
	if f.ManhattanDistance(3, 7) != f.ManhattanDistance(7, 3) {
		t.Error("distance not symmetric")
	}
}

func TestNeighborsCornerEdgeCenter(t *testing.T) {
	f := MustNew(4, 4, 0.0009)
	if got := len(f.Neighbors(0)); got != 2 {
		t.Errorf("corner neighbours = %d, want 2", got)
	}
	if got := len(f.Neighbors(1)); got != 3 {
		t.Errorf("edge neighbours = %d, want 3", got)
	}
	if got := len(f.Neighbors(5)); got != 4 {
		t.Errorf("center neighbours = %d, want 4", got)
	}
}

func TestNeighborsAreAdjacentAndMutual(t *testing.T) {
	f := MustNew(5, 3, 0.0009)
	for id := 0; id < f.NumCores(); id++ {
		for _, nb := range f.Neighbors(id) {
			if f.ManhattanDistance(id, nb) != 1 {
				t.Fatalf("neighbour %d of %d at distance %d", nb, id, f.ManhattanDistance(id, nb))
			}
			mutual := false
			for _, back := range f.Neighbors(nb) {
				if back == id {
					mutual = true
				}
			}
			if !mutual {
				t.Fatalf("neighbour relation %d->%d not mutual", id, nb)
			}
		}
	}
}

func TestAMDCenterLowest(t *testing.T) {
	// Paper §III-A: AMD increases as we traverse away from the centre.
	f := MustNew(4, 4, 0.0009)
	centerIDs := []int{5, 6, 9, 10}
	cornerIDs := []int{0, 3, 12, 15}
	for _, c := range centerIDs {
		for _, k := range cornerIDs {
			if f.AMD(c) >= f.AMD(k) {
				t.Errorf("AMD(center %d)=%v not < AMD(corner %d)=%v", c, f.AMD(c), k, f.AMD(k))
			}
		}
	}
}

func TestAMDKnownValue16Core(t *testing.T) {
	// For a 4x4 grid, core (0,0): sum over all cores of |dx|+|dy| =
	// 4*(0+1+2+3) [x part] + 4*(0+1+2+3) [y part] = 48; AMD = 48/16 = 3.
	f := MustNew(4, 4, 0.0009)
	if got := f.AMD(0); math.Abs(got-3.0) > 1e-12 {
		t.Errorf("AMD(corner) = %v, want 3.0", got)
	}
	// Core (1,1): x distances 4*(1+0+1+2)=16, y same = 16, total 32 → AMD 2.
	if got := f.AMD(f.ID(1, 1)); math.Abs(got-2.0) > 1e-12 {
		t.Errorf("AMD(1,1) = %v, want 2.0", got)
	}
}

func TestRingsPartitionChip(t *testing.T) {
	f := MustNew(8, 8, 0.0009)
	seen := map[int]bool{}
	for _, ring := range f.Rings() {
		for _, c := range ring.Cores {
			if seen[c] {
				t.Fatalf("core %d in two rings", c)
			}
			seen[c] = true
		}
	}
	if len(seen) != f.NumCores() {
		t.Fatalf("rings cover %d cores, want %d", len(seen), f.NumCores())
	}
}

func TestRingsAscendingAMD(t *testing.T) {
	f := MustNew(8, 8, 0.0009)
	rings := f.Rings()
	for i := 1; i < len(rings); i++ {
		if rings[i].AMD <= rings[i-1].AMD {
			t.Fatalf("ring %d AMD %v not > ring %d AMD %v", i, rings[i].AMD, i-1, rings[i-1].AMD)
		}
	}
}

func TestRingsHomogeneousAMD(t *testing.T) {
	f := MustNew(6, 6, 0.0009)
	for ri, ring := range f.Rings() {
		for _, c := range ring.Cores {
			if math.Abs(f.AMD(c)-ring.AMD) > 1e-9 {
				t.Fatalf("ring %d: core %d has AMD %v, ring AMD %v", ri, c, f.AMD(c), ring.AMD)
			}
		}
	}
}

func TestInnermostRingIsCenter16Core(t *testing.T) {
	// Paper Fig. 1/3: the innermost ring of a 16-core chip is cores 5,6,9,10.
	f := MustNew(4, 4, 0.0009)
	inner := f.Rings()[0]
	want := map[int]bool{5: true, 6: true, 9: true, 10: true}
	if len(inner.Cores) != 4 {
		t.Fatalf("inner ring size = %d, want 4 (%v)", len(inner.Cores), inner.Cores)
	}
	for _, c := range inner.Cores {
		if !want[c] {
			t.Fatalf("inner ring contains %d, want {5,6,9,10}", c)
		}
	}
}

func TestRingOf(t *testing.T) {
	f := MustNew(4, 4, 0.0009)
	if got := f.RingOf(5); got != 0 {
		t.Errorf("RingOf(5) = %d, want 0 (innermost)", got)
	}
	if got := f.RingOf(0); got != len(f.Rings())-1 {
		t.Errorf("RingOf(corner) = %d, want outermost %d", got, len(f.Rings())-1)
	}
}

func TestRotationOrderIsCycleOfAdjacentRingMembers(t *testing.T) {
	// The rotation walk must visit every ring member exactly once.
	f := MustNew(8, 8, 0.0009)
	for ri, ring := range f.Rings() {
		seen := map[int]bool{}
		for _, c := range ring.Cores {
			if seen[c] {
				t.Fatalf("ring %d repeats core %d", ri, c)
			}
			seen[c] = true
		}
	}
}

func TestCoreAreaTableI(t *testing.T) {
	// Table I: 0.81 mm² per core → edge 0.9 mm.
	f := MustNew(8, 8, 0.0009)
	if got := f.CoreArea(); math.Abs(got-0.81e-6) > 1e-12 {
		t.Errorf("core area = %v m², want 0.81e-6", got)
	}
}

func TestCenterDistanceSymmetry(t *testing.T) {
	f := MustNew(4, 4, 0.0009)
	// All four centre cores are equidistant from the chip centre.
	d := f.CenterDistance(5)
	for _, c := range []int{6, 9, 10} {
		if math.Abs(f.CenterDistance(c)-d) > 1e-12 {
			t.Errorf("CenterDistance(%d) = %v, want %v", c, f.CenterDistance(c), d)
		}
	}
}

// Property: AMD values are invariant under the chip's symmetries
// (here: 180° rotation maps core (x,y) to (W-1-x, H-1-y) with equal AMD).
func TestPropAMDSymmetric(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		w := 2 + r.Intn(7)
		h := 2 + r.Intn(7)
		fp := MustNew(w, h, 0.0009)
		for id := 0; id < fp.NumCores(); id++ {
			x, y := fp.Coord(id)
			mirror := fp.ID(w-1-x, h-1-y)
			if math.Abs(fp.AMD(id)-fp.AMD(mirror)) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: Manhattan distance satisfies the triangle inequality.
func TestPropManhattanTriangle(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		fp := MustNew(2+r.Intn(8), 2+r.Intn(8), 0.0009)
		n := fp.NumCores()
		a, b, c := r.Intn(n), r.Intn(n), r.Intn(n)
		return fp.ManhattanDistance(a, c) <= fp.ManhattanDistance(a, b)+fp.ManhattanDistance(b, c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: ring count and sizes cover the chip for arbitrary square grids.
func TestPropRingsPartition(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		w := 2 + r.Intn(8)
		fp := MustNew(w, w, 0.0009)
		total := 0
		for _, ring := range fp.Rings() {
			total += len(ring.Cores)
		}
		return total == fp.NumCores()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestCoordPanicsOutOfRange(t *testing.T) {
	f := MustNew(2, 2, 0.0009)
	defer func() {
		if recover() == nil {
			t.Error("Coord(-1) did not panic")
		}
	}()
	f.Coord(-1)
}

func TestIDPanicsOutOfRange(t *testing.T) {
	f := MustNew(2, 2, 0.0009)
	defer func() {
		if recover() == nil {
			t.Error("ID(2,0) did not panic")
		}
	}()
	f.ID(2, 0)
}
