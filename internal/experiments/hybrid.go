package experiments

import (
	"fmt"

	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

// HybridRow compares the three policies of the future-work experiment on one
// benchmark.
type HybridRow struct {
	Benchmark string
	// Makespans, seconds.
	HotPotato float64
	Hybrid    float64
	PCMig     float64
	// DTM throttling time, seconds.
	HotPotatoDTM float64
	HybridDTM    float64
}

// Hybrid runs the paper's §VII future work — synchronous rotation unified
// with DVFS — against pure HotPotato and PCMig on hot full-load workloads.
// The hybrid's promise: the thermal excursions pure rotation rides out via
// hardware DTM are instead absorbed by a gentle frequency trim. The
// benchmark × policy cells fan out over Options.Workers goroutines; rows
// keep the input benchmark order.
func Hybrid(opts Options, benchmarks []string) ([]HybridRow, error) {
	opts = opts.withDefaults()
	total := opts.GridEdge * opts.GridEdge
	specsPer := make([][]workload.Spec, len(benchmarks))
	for i, name := range benchmarks {
		b, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		specs, err := workload.HomogeneousFullLoad(b, total, []int{2, 4, 8})
		if err != nil {
			return nil, err
		}
		specsPer[i] = specs
	}
	policies := []func(*sim.Platform) sim.Scheduler{
		func(p *sim.Platform) sim.Scheduler { return sched.NewHotPotato(p, opts.TDTM) },
		func(p *sim.Platform) sim.Scheduler { return sched.NewHotPotatoDVFS(p, opts.TDTM) },
		func(*sim.Platform) sim.Scheduler { return sched.NewPCMig(opts.TDTM) },
	}
	results := make([]*sim.Result, len(benchmarks)*len(policies))
	err := forEach(opts.workers(), len(results), func(i int) error {
		bi, pi := i/len(policies), i%len(policies)
		res, err := runWorkload(opts, policies[pi], specsPer[bi], sim.DefaultConfig())
		if err != nil {
			return fmt.Errorf("experiments: hybrid %s: %w", benchmarks[bi], err)
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	rows := make([]HybridRow, len(benchmarks))
	for bi, name := range benchmarks {
		hp := results[bi*len(policies)]
		hy := results[bi*len(policies)+1]
		pc := results[bi*len(policies)+2]
		rows[bi] = HybridRow{
			Benchmark:    name,
			HotPotato:    hp.Makespan,
			Hybrid:       hy.Makespan,
			PCMig:        pc.Makespan,
			HotPotatoDTM: hp.DTMTime,
			HybridDTM:    hy.DTMTime,
		}
	}
	return rows, nil
}
