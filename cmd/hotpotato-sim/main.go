// Command hotpotato-sim runs one interval thermal simulation and prints the
// resulting metrics.
//
// Examples:
//
//	hotpotato-sim -sched hotpotato -bench blackscholes -threads 64
//	hotpotato-sim -sched pcmig -mix 20 -rate 100
//	hotpotato-sim -sched hotpotato -grid 4 -bench canneal -threads 8 -v
//	hotpotato-sim -sched hotpotato -bench swaptions -spans spans.jsonl
//	hotpotato-sim -sweep sweep.json > results.ndjson
//
// With -sweep the single-run flags are ignored: the file is a SweepSpec
// document (base RunSpec + axes) and every cell of its cross-product runs
// over a bounded worker pool, streaming the same NDJSON records that
// POST /v1/batch serves — one "sweep" header, one "result" per cell in
// completion order, and a terminal "summary" — to stdout.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"text/tabwriter"
	"time"

	hotpotato "repro"
)

// logger is the process logger; flags replace it before any fatal can fire.
var logger = hotpotato.NopLogger()

// fatal logs the error at error level and exits non-zero.
func fatal(err error) {
	logger.Error("fatal", "error", err.Error())
	os.Exit(1)
}

func main() {
	schedName := flag.String("sched", "hotpotato",
		"scheduler: "+strings.Join(hotpotato.SchedulerNames(), "|"))
	grid := flag.Int("grid", 8, "chip edge length (grid×grid cores)")
	solver := flag.String("solver", "", "thermal solver backend: auto|dense|sparse (default: auto — sparse above 512 nodes)")
	bench := flag.String("bench", "", "homogeneous workload: PARSEC benchmark name")
	benchFile := flag.String("benchfile", "", "JSON file with custom benchmark models (see BenchmarksFromJSON)")
	threads := flag.Int("threads", 0, "homogeneous workload: total threads (default: fill the chip)")
	mix := flag.Int("mix", 0, "heterogeneous workload: number of random tasks (overrides -bench)")
	rate := flag.Float64("rate", 100, "heterogeneous workload: Poisson arrival rate, tasks/s")
	seed := flag.Int64("seed", 12345, "random seed for -mix")
	tdtm := flag.Float64("tdtm", 70, "DTM threshold, °C")
	tau := flag.Float64("tau", 0.5e-3, "HotPotato initial rotation interval, seconds")
	verbose := flag.Bool("v", false, "print per-task statistics")
	heatmap := flag.Bool("heatmap", false, "print an ASCII heatmap of the hottest moment")
	traceOut := flag.String("trace", "", "write one JSON line per scheduler epoch to this file")
	spansOut := flag.String("spans", "", "write the run's span tree as JSON lines to this file")
	sweepFile := flag.String("sweep", "", "run a SweepSpec JSON file (\"-\" = stdin) and stream NDJSON results to stdout; ignores the single-run flags")
	sweepWorkers := flag.Int("sweep-workers", 0, "concurrent cells for -sweep (0 = GOMAXPROCS)")
	twinModel := flag.String("twin-model", "", "analytical-twin artifact (TWIN_model.json) enabling prune_above_temp cell pruning for -sweep")
	calibrate := flag.String("calibrate", "", "calibrate the analytical twin against the simulator and write the artifact to this path; ignores the other flags")
	calSeed := flag.Int64("calibrate-seed", 0, "calibration design-grid seed (0 = the committed artifact's recipe)")
	calSamples := flag.Int("calibrate-samples", 0, "full-simulation oracle samples per bucket (0 = default recipe)")
	calRings := flag.Int("calibrate-ring-samples", 0, "Algorithm 1 oracle samples per bucket (0 = default recipe)")
	logLevel := flag.String("log-level", "warn", "log level: debug|info|warn|error")
	logFormat := flag.String("log-format", "text", "log format: json|text")
	flag.Parse()

	var err error
	logger, err = hotpotato.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *calibrate != "" {
		runCalibrate(*calibrate, *calSeed, *calSamples, *calRings)
		return
	}
	if *sweepFile != "" {
		runSweep(*sweepFile, *sweepWorkers, *twinModel)
		return
	}

	if err := hotpotato.ValidateSolver(*solver); err != nil {
		fatal(err)
	}
	platCfg := hotpotato.DefaultPlatformConfig(*grid, *grid)
	platCfg.Thermal.Solver = *solver
	plat, err := hotpotato.NewPlatformFromConfig(platCfg)
	if err != nil {
		fatal(err)
	}

	lookup := hotpotato.BenchmarkByName
	if *benchFile != "" {
		f, ferr := os.Open(*benchFile)
		if ferr != nil {
			fatal(ferr)
		}
		custom, ferr := hotpotato.BenchmarksFromJSON(f)
		f.Close()
		if ferr != nil {
			fatal(ferr)
		}
		lookup = func(name string) (hotpotato.Benchmark, error) {
			for _, b := range custom {
				if b.Name == name {
					return b, nil
				}
			}
			return hotpotato.Benchmark{}, fmt.Errorf("benchmark %q not in %s", name, *benchFile)
		}
	}

	var specs []hotpotato.Spec
	switch {
	case *mix > 0:
		specs, err = hotpotato.RandomMix(*mix, *rate, *seed)
	case *bench != "":
		total := *threads
		if total == 0 {
			total = plat.NumCores()
		}
		var b hotpotato.Benchmark
		b, err = lookup(*bench)
		if err == nil {
			specs, err = hotpotato.HomogeneousFullLoad(b, total, []int{2, 4, 8})
		}
	default:
		fmt.Fprintln(os.Stderr, "need -bench or -mix")
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fatal(err)
	}
	tasks, err := hotpotato.Instantiate(specs)
	if err != nil {
		fatal(err)
	}

	// Scheduler construction goes through the one registry, so every policy
	// the library knows is available here — and the -sched help text above
	// is generated from the same table.
	spec := hotpotato.SchedulerSpec{Name: *schedName, TDTM: *tdtm, Tau: *tau}
	spec, err = spec.AutoPin(plat, tasks)
	if err != nil {
		fatal(err)
	}
	sch, err := hotpotato.NewSchedulerFromSpec(plat, spec)
	if err != nil {
		fatal(err)
	}

	simulation, err := hotpotato.NewSimulation(plat, hotpotato.DefaultSimConfig(), sch, tasks)
	if err != nil {
		fatal(err)
	}
	var rec *hotpotato.TraceRecorder
	if *heatmap {
		rec, err = hotpotato.NewTraceRecorder(1)
		if err != nil {
			fatal(err)
		}
		simulation.SetTrace(rec.Hook())
	}
	var tracer *hotpotato.RingTracer
	if *traceOut != "" {
		// Unbounded for practical purposes: at the paper's 0.5 ms epochs this
		// holds over an hour of simulated time, so the dump is complete.
		tracer = hotpotato.NewRingTracer(1 << 23)
		simulation.SetEpochTracer(tracer)
	}

	// The run is driven through a context carrying the logger and, when
	// -spans is set, a root span: the engine opens one child span per
	// scheduler epoch under it.
	ctx := hotpotato.ContextWithLogger(context.Background(), logger)
	var spans *hotpotato.SpanRecorder
	var rootSpan *hotpotato.Span
	if *spansOut != "" {
		// Same sizing rationale as the epoch trace ring: one span per epoch
		// means 1<<23 covers over an hour of simulated time.
		spans = hotpotato.NewSpanRecorder(1 << 23)
		rootSpan = spans.Start("run")
		rootSpan.SetAttr("scheduler", *schedName)
		rootSpan.SetAttr("grid", *grid)
		ctx = hotpotato.ContextWithSpan(ctx, rootSpan)
	}
	res, err := simulation.RunContext(ctx)
	rootSpan.SetError(err)
	rootSpan.End()
	if err != nil {
		fatal(err)
	}
	if tracer != nil {
		f, ferr := os.Create(*traceOut)
		if ferr != nil {
			fatal(ferr)
		}
		if ferr := tracer.WriteJSONL(f); ferr != nil {
			fatal(ferr)
		}
		if ferr := f.Close(); ferr != nil {
			fatal(ferr)
		}
		fmt.Printf("epoch trace:   %d events -> %s (%d dropped)\n", tracer.Len(), *traceOut, tracer.Dropped())
	}
	if spans != nil {
		if ferr := writeSpans(spans, *spansOut); ferr != nil {
			fatal(ferr)
		}
		fmt.Printf("span trace:    %d spans -> %s (%d dropped)\n", spans.Len(), *spansOut, spans.Dropped())
	}

	fmt.Printf("scheduler:     %s\n", res.Scheduler)
	fmt.Printf("tasks:         %d\n", len(res.Tasks))
	fmt.Printf("makespan:      %.1f ms\n", res.Makespan*1e3)
	fmt.Printf("avg response:  %.1f ms\n", res.AvgResponse*1e3)
	fmt.Printf("max response:  %.1f ms\n", res.MaxResponse*1e3)
	fmt.Printf("peak temp:     %.2f °C (threshold %.1f)\n", res.PeakTemp, *tdtm)
	fmt.Printf("DTM:           %d events, %.1f ms throttled\n", res.DTMEvents, res.DTMTime*1e3)
	fmt.Printf("migrations:    %d\n", res.Migrations)
	fmt.Printf("core energy:   %.2f J\n", res.EnergyJ)
	fmt.Printf("sched calls:   %d (%.1f µs avg host time)\n", res.SchedulerInvocations,
		float64(res.SchedulerHostTime.Microseconds())/float64(res.SchedulerInvocations))

	if *heatmap {
		out, err := rec.HottestSampleHeatmap(*grid, *grid, 45, *tdtm+5)
		if err != nil {
			fatal(err)
		}
		fmt.Println()
		fmt.Print(out)
	}

	if *verbose {
		fmt.Println()
		tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "task\tbenchmark\tthreads\tarrival\tresponse")
		for _, t := range res.Tasks {
			fmt.Fprintf(tw, "%d\t%s\t%d\t%.1f ms\t%.1f ms\n",
				t.ID, t.Benchmark, t.Threads, t.Arrival*1e3, t.Response*1e3)
		}
		tw.Flush()
	}
}

// runSweep executes a SweepSpec document and streams the wire records —
// "sweep" header, one "result" per cell in completion order, terminal
// "summary" — as NDJSON on stdout. Exactly the stream POST /v1/batch serves
// (minus the request_id and heartbeats, which only matter over HTTP), so the
// same tooling consumes both. Ctrl-C cancels: in-flight cells stop at their
// next scheduler epoch and the remainder is reported "canceled", but the
// stream still ends with its summary.
func runSweep(path string, workers int, twinPath string) {
	in := os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	var sweep hotpotato.SweepSpec
	if err := json.NewDecoder(in).Decode(&sweep); err != nil {
		fatal(fmt.Errorf("decoding SweepSpec from %s: %w", path, err))
	}
	if err := sweep.Validate(); err != nil {
		fatal(err)
	}
	// Pruning needs both halves: a sweep that opts in and a loaded model.
	var prune func(context.Context, hotpotato.SweepCell) (hotpotato.PruneDecision, bool)
	if twinPath != "" && sweep.PruneAboveTemp != nil {
		twin, err := hotpotato.LoadTwinModelFile(twinPath)
		if err != nil {
			fatal(err)
		}
		prune = hotpotato.NewTwinSweepPruner(twin, *sweep.PruneAboveTemp)
	}

	ctx, stop := signal.NotifyContext(
		hotpotato.ContextWithLogger(context.Background(), logger),
		os.Interrupt, syscall.SIGTERM)
	defer stop()

	enc := json.NewEncoder(os.Stdout)
	total := sweep.CellCount()
	if err := enc.Encode(hotpotato.SweepStarted{Type: "sweep", Total: total}); err != nil {
		fatal(err)
	}

	began := time.Now()
	summary := hotpotato.SweepSummary{Type: "summary", Total: total}
	err := hotpotato.ExecuteSweep(ctx, sweep, hotpotato.SweepOptions{Workers: workers, Prune: prune},
		func(r hotpotato.SweepCellResult) {
			rec := hotpotato.NewSweepResultRecord(r)
			summary.Observe(rec)
			if err := enc.Encode(rec); err != nil {
				fatal(err)
			}
		})
	if err != nil && ctx.Err() == nil {
		// Validation or expansion failure: nothing streamed beyond the header.
		fatal(err)
	}
	summary.ElapsedMS = float64(time.Since(began).Nanoseconds()) / 1e6
	if err := enc.Encode(summary); err != nil {
		fatal(err)
	}
	if summary.Failed > 0 || summary.Canceled > 0 {
		os.Exit(1)
	}
}

// runCalibrate fits the analytical twin against the full simulator and writes
// the versioned artifact. Zero-valued tuning flags keep the committed
// artifact's recipe, so a bare `-calibrate TWIN_model.json` reproduces it
// byte for byte (the content hash is printed for comparison).
func runCalibrate(path string, seed int64, samples, ringSamples int) {
	cal := hotpotato.DefaultTwinCalibration()
	if seed != 0 {
		cal.Seed = seed
	}
	if samples != 0 {
		cal.Samples = samples
	}
	if ringSamples != 0 {
		cal.RingSamples = ringSamples
	}

	ctx, stop := signal.NotifyContext(
		hotpotato.ContextWithLogger(context.Background(), logger),
		os.Interrupt, syscall.SIGTERM)
	defer stop()

	began := time.Now()
	model, err := hotpotato.CalibrateTwin(ctx, cal)
	if err != nil {
		fatal(err)
	}
	data, err := model.Encode()
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("twin model:    %s (%d bytes)\n", path, len(data))
	fmt.Printf("hash:          %s\n", model.Hash)
	fmt.Printf("buckets:       %d (seed %d, %d+%d samples each)\n",
		len(model.Buckets), cal.Seed, cal.Samples, cal.RingSamples)
	fmt.Printf("calibration:   %.1f s\n", time.Since(began).Seconds())
}

// writeSpans dumps the recorder as JSON lines to path.
func writeSpans(spans *hotpotato.SpanRecorder, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := spans.WriteJSONL(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
