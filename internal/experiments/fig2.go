package experiments

import (
	"fmt"

	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Fig2Policy is one curve of the motivational example.
type Fig2Policy struct {
	Name       string
	Response   float64 // seconds
	PeakTemp   float64 // °C
	Breaches   bool    // exceeded the 70 °C threshold
	Migrations int
	Trace      []Fig2Sample
}

// Fig2Sample is one point of a thermal trace: the hottest of the four centre
// cores, which the paper's Fig. 2 plots.
type Fig2Sample struct {
	Time    float64
	MaxTemp float64
}

// Fig2Result holds the three executions of Fig. 2(a)–(c).
type Fig2Result struct {
	None     Fig2Policy // (a) unmanaged at peak frequency
	TSP      Fig2Policy // (b) TSP DVFS power budgeting
	Rotation Fig2Policy // (c) synchronous rotation, τ = 0.5 ms
}

// Fig2 reproduces the paper's motivational example: a two-threaded
// blackscholes on cores 5 and 10 of a 16-core S-NUCA chip, under (a) no
// management, (b) TSP-based DVFS, and (c) synchronous rotation over the four
// centre cores at τ = 0.5 ms. traceStride > 0 records every traceStride-th
// slice of the centre-core thermal trace. The three policy executions run
// concurrently — each on its own platform, task, and trace buffer — and are
// deterministic at any parallelism.
func Fig2(traceStride int) (*Fig2Result, error) {
	pins := map[sim.ThreadID]int{
		{Task: 0, Thread: 0}: 5,
		{Task: 0, Thread: 1}: 10,
	}
	slots := map[sim.ThreadID]int{
		{Task: 0, Thread: 0}: 0,
		{Task: 0, Thread: 1}: 2,
	}
	centre := []int{5, 6, 10, 9} // ring-walk order of the innermost ring

	rotSched, err := sched.NewRotationStatic(slots, centre, 0.5e-3)
	if err != nil {
		return nil, err
	}

	res := &Fig2Result{}
	type policy struct {
		out  *Fig2Policy
		name string
		mk   func(*sim.Platform) sim.Scheduler
		dtm  bool
	}
	policies := []policy{
		{&res.None, "unmanaged-4GHz", func(*sim.Platform) sim.Scheduler { return sched.NewStatic(pins, 0) }, false},
		{&res.TSP, "tsp-dvfs", func(*sim.Platform) sim.Scheduler { return sched.NewTSPGovernor(pins, 70) }, true},
		{&res.Rotation, "sync-rotation-0.5ms", func(*sim.Platform) sim.Scheduler { return rotSched }, true},
	}

	err = forEach(0, len(policies), func(i int) error {
		p := policies[i]
		plat, err := newPlatform(4)
		if err != nil {
			return err
		}
		b, err := workload.ByName("blackscholes")
		if err != nil {
			return err
		}
		task, err := workload.NewTask(0, b, 2, 0, 1)
		if err != nil {
			return err
		}
		cfg := sim.DefaultConfig()
		cfg.DTMEnabled = p.dtm
		s, err := sim.New(plat, cfg, p.mk(plat), []*workload.Task{task})
		if err != nil {
			return err
		}
		var trace []Fig2Sample
		if traceStride > 0 {
			slice := 0
			s.SetTrace(func(t float64, temps, watts, freqs []float64) {
				if slice%traceStride == 0 {
					maxT := temps[5]
					for _, c := range centre[1:] {
						if temps[c] > maxT {
							maxT = temps[c]
						}
					}
					trace = append(trace, Fig2Sample{Time: t, MaxTemp: maxT})
				}
				slice++
			})
		}
		out, err := s.Run()
		if err != nil {
			return fmt.Errorf("experiments: fig2 %s: %w", p.name, err)
		}
		*p.out = Fig2Policy{
			Name:       p.name,
			Response:   out.AvgResponse,
			PeakTemp:   out.PeakTemp,
			Breaches:   out.PeakTemp > 70,
			Migrations: out.Migrations,
			Trace:      trace,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}
