package sched

import (
	"repro/internal/sim"
)

// HotPotatoDVFS is the paper's stated future work (§VII): synchronous thread
// rotation unified with DVFS. It behaves exactly like HotPotato while
// rotation alone can hold the thermal threshold; when even the fastest
// rotation (τ = τ_min) is predicted unsafe, it trims the chip-wide frequency
// one DVFS step at a time until Algorithm 1 predicts safety, and raises the
// frequency back toward peak as soon as rotation regains headroom.
//
// Candidate frequencies are evaluated by projecting each thread's measured
// power along the P(f) curve (the above-idle component scales with the
// active-power ratio) and re-running the Algorithm 1 check — the same
// machinery, one extra knob.
type HotPotatoDVFS struct {
	*HotPotato
	plat *sim.Platform
	freq float64
	// lastAdjust rate-limits frequency moves to one step per control period.
	lastAdjust float64
	// adjustEvery is the minimum time between frequency steps.
	adjustEvery float64
}

// NewHotPotatoDVFS builds the rotation+DVFS scheduler.
func NewHotPotatoDVFS(plat *sim.Platform, tdtm float64, opts ...HotPotatoOption) *HotPotatoDVFS {
	return &HotPotatoDVFS{
		HotPotato:   NewHotPotato(plat, tdtm, opts...),
		plat:        plat,
		freq:        plat.Power.DVFS().FMax,
		adjustEvery: 1e-3,
	}
}

// Name implements sim.Scheduler.
func (h *HotPotatoDVFS) Name() string { return "hotpotato-dvfs" }

// Freq returns the current chip-wide frequency (for instrumentation).
func (h *HotPotatoDVFS) Freq() float64 { return h.freq }

// Decide implements sim.Scheduler.
func (h *HotPotatoDVFS) Decide(st *sim.State) sim.Decision {
	dec := h.HotPotato.Decide(st)

	if st.Time-h.lastAdjust >= h.adjustEvery {
		h.lastAdjust = st.Time
		h.adjustFrequency(st)
	}

	dec.Freq = uniformFreq(st.Platform.NumCores(), h.freq)
	return dec
}

// adjustFrequency moves the chip frequency one DVFS step per call: down when
// even τ_min rotation at the current frequency is predicted unsafe, up when
// the next level would still be safe.
func (h *HotPotatoDVFS) adjustFrequency(st *sim.State) {
	live := liveSet(st)
	d := h.plat.Power.DVFS()

	// Safety at the current frequency (measurements were taken at it, so no
	// projection needed).
	if h.evalPeak(st, live) >= h.tdtm-h.delta {
		// Rotation has already been tightened by HotPotato.Decide; if it is
		// at its floor and still unsafe, DVFS is the remaining knob.
		if h.tau <= h.tauMin+1e-12 && h.freq > d.FMin {
			h.freq = d.StepDown(h.freq)
		}
		return
	}

	// Headroom: probe one step up by projecting powers to the higher level.
	if h.freq >= d.FMax {
		return
	}
	next := d.StepUp(h.freq)
	h.powerScale = h.projectionScale(next)
	safe := h.evalPeak(st, live) < h.tdtm-h.delta
	h.powerScale = 1
	if safe {
		h.freq = next
	}
}

// projectionScale returns the factor by which the above-idle component of a
// measured power changes when moving the chip from the current frequency to
// target. ActivePower is linear in nominal watts, so the ratio is
// benchmark-independent.
func (h *HotPotatoDVFS) projectionScale(target float64) float64 {
	cur := h.plat.Power.ActivePower(1, h.freq)
	if cur <= 0 {
		return 1
	}
	return h.plat.Power.ActivePower(1, target) / cur
}
