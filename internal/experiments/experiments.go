// Package experiments regenerates every table and figure of the paper's
// evaluation (§VI): the Table I platform, the Fig. 2 motivational thermal
// traces, the Fig. 4(a) homogeneous and Fig. 4(b) heterogeneous comparative
// evaluations of HotPotato vs. PCMig, the run-time overhead measurement, and
// the ablations DESIGN.md calls out. Each experiment is a plain function
// returning typed rows, so tests can assert the paper's qualitative shape
// and the cmd/experiments binary can print paper-style tables.
//
// # Concurrency
//
// Every sweep is embarrassingly parallel: each (benchmark, scheduler, seed,
// load-level) cell builds its own Platform, Scheduler, and task set, so
// cells share no mutable state and fan out across a bounded worker pool
// (see forEach). Options.Workers bounds the pool; the default is
// runtime.GOMAXPROCS(0). Results are collected by cell index, never by
// completion order, so output is bit-identical at any worker count — the
// determinism contract docs/CONCURRENCY.md spells out. The two exceptions,
// Overhead and AnalyticVsBrute, measure host wall-clock time and stay
// deliberately serial: concurrent cells would contend for cores and corrupt
// the very numbers they report.
package experiments

import (
	"fmt"
	"runtime"

	"repro/internal/sim"
	"repro/internal/workload"
)

// Options scales experiments down for quick runs; the zero value means the
// paper's full scale.
type Options struct {
	// Cores is the chip's edge length (default 8 → 64 cores, Table I).
	GridEdge int
	// WorkScale multiplies every task's instruction count (default 1).
	WorkScale float64
	// TDTM is the DTM threshold (default 70 °C, §VI).
	TDTM float64
	// Workers bounds the number of simulation cells run concurrently
	// (default runtime.GOMAXPROCS(0)). Any value yields bit-identical
	// results: cells are independent and collected by index.
	Workers int
}

// workers resolves the effective pool size.
func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (o Options) withDefaults() Options {
	if o.GridEdge == 0 {
		o.GridEdge = 8
	}
	if o.WorkScale == 0 {
		o.WorkScale = 1
	}
	if o.TDTM == 0 {
		o.TDTM = 70
	}
	return o
}

func newPlatform(edge int) (*sim.Platform, error) {
	return sim.NewPlatform(sim.DefaultPlatformConfig(edge, edge))
}

// runWorkload executes one scheduler over one set of specs on a fresh
// platform. Safe to call concurrently: every invocation builds its own
// Platform, Scheduler, and task instances and reads specs without mutating
// them (the WorkScale adjustment happens on a private copy).
func runWorkload(opts Options, mkSched func(*sim.Platform) sim.Scheduler, specs []workload.Spec, cfg sim.Config) (*sim.Result, error) {
	plat, err := newPlatform(opts.GridEdge)
	if err != nil {
		return nil, err
	}
	scaled := make([]workload.Spec, len(specs))
	copy(scaled, specs)
	for i := range scaled {
		scaled[i].WorkScale *= opts.WorkScale
	}
	tasks, err := workload.Instantiate(scaled)
	if err != nil {
		return nil, err
	}
	s, err := sim.New(plat, cfg, mkSched(plat), tasks)
	if err != nil {
		return nil, err
	}
	return s.Run()
}

// TableIRow is one platform parameter.
type TableIRow struct {
	Parameter string
	Value     string
}

// TableI returns the simulated platform parameters in the paper's Table I
// form, read back from the live default configuration (not re-typed
// constants), so drift between code and documentation is impossible.
func TableI() ([]TableIRow, error) {
	cfg := sim.DefaultPlatformConfig(8, 8)
	plat, err := sim.NewPlatform(cfg)
	if err != nil {
		return nil, err
	}
	cc := plat.Caches.Config()
	nc := plat.Net.Config()
	return []TableIRow{
		{"Number of Cores", fmt.Sprintf("%d", plat.NumCores())},
		{"Core Model", fmt.Sprintf("x86, %.1f GHz, out-of-order (interval model)", plat.Power.DVFS().FMax/1e9)},
		{"L1 I/D cache", fmt.Sprintf("%d/%d KB, %d/%d-way, %dB-block", cc.L1IKB, cc.L1DKB, cc.L1Ways, cc.L1Ways, cc.BlockBytes)},
		{"LLC", fmt.Sprintf("%d KB per core, %d-way, %dB-block", cc.LLCPerCoreKB, cc.LLCWays, cc.BlockBytes)},
		{"NoC Latency", fmt.Sprintf("%.1f ns per hop", nc.HopLatency*1e9)},
		{"NoC link width", fmt.Sprintf("%d Bit", nc.LinkWidthBits)},
		{"The area of core", fmt.Sprintf("%.2f mm²", plat.FP.CoreArea()*1e6)},
	}, nil
}
