package obs

import "time"

// RunProfile is the wall-clock breakdown of one served run — the summary a
// caller reads straight from the job response instead of scraping the span
// tree. All durations are host nanoseconds.
//
// The phases tile the run: Total ≈ Queue + Build + Decide + Step (small gaps
// are bookkeeping between phases). Queue covers both the async job queue and
// the worker-semaphore wait; Build is the platform-cache lookup (microseconds
// on a hit, the full eigendecomposition on a miss); Decide is the host time
// inside scheduler Decide calls summed over every epoch; Step is the
// remainder of the simulation — dominated by slice-batch thermal stepping.
type RunProfile struct {
	TotalNS  int64 `json:"total_ns"`
	QueueNS  int64 `json:"queue_ns"`
	BuildNS  int64 `json:"build_ns"`
	DecideNS int64 `json:"decide_ns"`
	StepNS   int64 `json:"step_ns"`
	// Epochs is how many scheduler epochs the run executed (DecideNS/Epochs
	// is the paper's §VI per-decision overhead metric).
	Epochs int `json:"epochs"`
}

// Total returns the end-to-end duration.
func (p RunProfile) Total() time.Duration { return time.Duration(p.TotalNS) }
