package fabric

import (
	"net/http/httptest"
	"strings"
	"testing"

	hotpotato "repro"
)

// TestRecordStreamTerminalGuard: once the "summary" record is sent the
// stream is sealed — later sends are refused, counted, and reported, never
// written. This is the structural backstop behind the summary-last contract.
func TestRecordStreamTerminalGuard(t *testing.T) {
	rec := httptest.NewRecorder()
	var drops []string
	s := NewRecordStream(rec, false, func(typ, reason string) { drops = append(drops, typ+": "+reason) })

	if !s.Send("sweep", hotpotato.SweepStarted{Type: "sweep", Total: 1}) {
		t.Fatal("header send refused")
	}
	if !s.Send("summary", hotpotato.SweepSummary{Type: "summary", Total: 1}) {
		t.Fatal("summary send refused")
	}
	if s.Send("progress", hotpotato.SweepProgress{Type: "progress"}) {
		t.Fatal("post-summary progress was written")
	}
	if s.Send("result", hotpotato.SweepResultRecord{Type: "result"}) {
		t.Fatal("post-summary result was written")
	}

	body := rec.Body.String()
	if strings.Contains(body, `"progress"`) || strings.Contains(body, `"type":"result"`) {
		t.Fatalf("sealed stream leaked records:\n%s", body)
	}
	lines := strings.Split(strings.TrimSpace(body), "\n")
	if len(lines) != 2 || !strings.Contains(lines[1], `"summary"`) {
		t.Fatalf("stream is not header+summary:\n%s", body)
	}
	if s.Dropped() != 2 || len(drops) != 2 {
		t.Fatalf("dropped = %d (reported %d), want 2", s.Dropped(), len(drops))
	}
}

// TestRecordStreamMarshalFailure: a record whose body cannot marshal is
// dropped loudly (counted + reported), not silently skipped — and does not
// seal the stream.
func TestRecordStreamMarshalFailure(t *testing.T) {
	rec := httptest.NewRecorder()
	var drops int
	s := NewRecordStream(rec, false, func(string, string) { drops++ })

	if s.Send("result", map[string]any{"bad": make(chan int)}) {
		t.Fatal("unmarshalable record reported as sent")
	}
	if drops != 1 || s.Dropped() != 1 {
		t.Fatalf("drops = %d / %d, want 1", drops, s.Dropped())
	}
	if !s.Send("summary", hotpotato.SweepSummary{Type: "summary"}) {
		t.Fatal("stream unusable after a marshal failure")
	}
}

// TestRecordStreamSSEFraming: SSE mode frames each record as an event/data
// pair whose event name is the record type, with the right Content-Type.
func TestRecordStreamSSEFraming(t *testing.T) {
	rec := httptest.NewRecorder()
	s := NewRecordStream(rec, true, nil)
	if !s.SSE() {
		t.Fatal("SSE() false on an SSE stream")
	}
	s.Send("sweep", hotpotato.SweepStarted{Type: "sweep", Total: 1})
	s.Send("summary", hotpotato.SweepSummary{Type: "summary", Total: 1})

	if ct := rec.Header().Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type %q", ct)
	}
	body := rec.Body.String()
	for _, want := range []string{"event: sweep\ndata: ", "event: summary\ndata: "} {
		if !strings.Contains(body, want) {
			t.Errorf("SSE body missing %q:\n%s", want, body)
		}
	}
}
