package hotpotato

// spec.go is the declarative RunSpec API: one serializable JSON document that
// names everything a run needs — platform, simulation config, scheduler, and
// workload — with ExecuteSpec as the single entry point shared by the CLIs
// and the hotpotato-server HTTP service. Run/NewSimulation remain as the
// imperative path; ExecuteSpec of an equivalent spec is bit-identical to them
// (only the host-time fields of the Result differ).

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"

	"repro/internal/cache"
	"repro/internal/noc"
	"repro/internal/obs"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/thermal"
	"repro/internal/workload"
)

// Workload kinds accepted by WorkloadSpec.Kind.
const (
	// WorkloadHomogeneous is the Fig. 4(a) scenario: vari-sized instances of
	// one benchmark filling TotalThreads threads, all arriving at t=0.
	WorkloadHomogeneous = "homogeneous"
	// WorkloadRandom is the Fig. 4(b) scenario: Count random PARSEC tasks
	// arriving as a Poisson process with Rate, seeded by Seed.
	WorkloadRandom = "random"
	// WorkloadExplicit lists every task by hand.
	WorkloadExplicit = "explicit"
)

// TaskSpec declares one task of an explicit workload.
type TaskSpec struct {
	Bench     string  `json:"bench"`
	Threads   int     `json:"threads"`
	Arrival   float64 `json:"arrival,omitempty"`
	WorkScale float64 `json:"work_scale,omitempty"` // 0 means 1
}

// WorkloadSpec declares the task mix of a run. Exactly the fields of its
// Kind are consulted; the rest are ignored.
type WorkloadSpec struct {
	Kind string `json:"kind"`

	// Homogeneous (Fig. 4a).
	Bench        string `json:"bench,omitempty"`
	TotalThreads int    `json:"total_threads,omitempty"` // 0 = fill the chip
	Sizes        []int  `json:"sizes,omitempty"`         // nil = {2, 4, 8}

	// Random (Fig. 4b).
	Count int     `json:"count,omitempty"`
	Rate  float64 `json:"rate,omitempty"` // tasks per second
	Seed  int64   `json:"seed,omitempty"`

	// Explicit.
	Tasks []TaskSpec `json:"tasks,omitempty"`
}

// RunSpec is a complete simulation run as one serializable document.
//
// JSON decoding overlays the document onto the paper defaults: an absent
// platform section means the Table I 8×8 chip, a platform section with only
// width/height keeps every other substrate at its default, and an absent sim
// section means DefaultSimConfig (DTM enabled). Programmatically-built specs
// get the same treatment through WithDefaults, which ExecuteSpec applies.
type RunSpec struct {
	// Version is the wire version of the document: absent or SpecVersion
	// ("v1"). Anything else fails validation, and Canonicalize pins it to
	// SpecVersion so the version is part of every SpecHash.
	Version   string         `json:"version,omitempty"`
	Platform  PlatformConfig `json:"platform"`
	Sim       SimConfig      `json:"sim"`
	Scheduler SchedulerSpec  `json:"scheduler"`
	Workload  WorkloadSpec   `json:"workload"`
}

// UnmarshalJSON decodes the document over the paper defaults, so minimal
// specs stay minimal: fields not present keep their default values,
// including booleans like sim.dtm_enabled (default true).
func (s *RunSpec) UnmarshalJSON(b []byte) error {
	var shadow struct {
		Version   string          `json:"version"`
		Platform  json.RawMessage `json:"platform"`
		Sim       json.RawMessage `json:"sim"`
		Scheduler SchedulerSpec   `json:"scheduler"`
		Workload  WorkloadSpec    `json:"workload"`
	}
	if err := json.Unmarshal(b, &shadow); err != nil {
		return err
	}

	plat, err := decodePlatformSection(shadow.Platform)
	if err != nil {
		return err
	}

	cfg := DefaultSimConfig()
	if isPresent(shadow.Sim) {
		if err := json.Unmarshal(shadow.Sim, &cfg); err != nil {
			return fmt.Errorf("hotpotato: sim section: %w", err)
		}
	}

	*s = RunSpec{Version: shadow.Version, Platform: plat, Sim: cfg, Scheduler: shadow.Scheduler, Workload: shadow.Workload}
	return nil
}

// decodePlatformSection decodes one JSON platform section over the paper
// defaults at its own grid size — the overlay rule RunSpec documents have
// always used, shared with SweepSpec's platform axis. An absent section
// yields the Table I 8×8 chip.
func decodePlatformSection(raw json.RawMessage) (PlatformConfig, error) {
	// The platform defaults depend on the grid size, so peek at it first.
	var dims struct {
		Width  int `json:"width"`
		Height int `json:"height"`
	}
	if isPresent(raw) {
		if err := json.Unmarshal(raw, &dims); err != nil {
			return PlatformConfig{}, fmt.Errorf("hotpotato: platform section: %w", err)
		}
	}
	if dims.Width == 0 {
		dims.Width = 8
	}
	if dims.Height == 0 {
		dims.Height = 8
	}
	plat := DefaultPlatformConfig(dims.Width, dims.Height)
	if isPresent(raw) {
		if err := json.Unmarshal(raw, &plat); err != nil {
			return PlatformConfig{}, fmt.Errorf("hotpotato: platform section: %w", err)
		}
	}
	return plat, nil
}

func isPresent(raw json.RawMessage) bool {
	return len(raw) > 0 && string(raw) != "null"
}

// WithDefaults returns a copy with zero sections replaced by the paper
// defaults: a zero platform becomes the Table I chip at the spec's grid size
// (8×8 when unset), zero substrate sub-configs are filled in individually, a
// zero sim section becomes DefaultSimConfig (positive-valued fields are also
// defaulted one by one), and a zero scheduler TDTM inherits the sim TDTM.
// Booleans inside a non-zero sim section are taken literally. The method is
// idempotent; ExecuteSpec applies it before validation, and the platform
// cache of the serving layer relies on it as the canonical form of a
// PlatformConfig.
func (s RunSpec) WithDefaults() RunSpec {
	p := &s.Platform
	if p.Width == 0 && p.Height == 0 {
		p.Width, p.Height = 8, 8
	}
	base := DefaultPlatformConfig(p.Width, p.Height)
	if p.CoreEdge == 0 {
		p.CoreEdge = base.CoreEdge
	}
	if p.NoC == (noc.Config{}) {
		p.NoC = base.NoC
	}
	if p.Cache == (cache.Config{}) {
		p.Cache = base.Cache
	}
	if p.Thermal == (thermal.Config{}) {
		p.Thermal = base.Thermal
	}
	if p.Power == (power.Model{}) {
		p.Power = base.Power
	}
	if p.BankAccess == 0 {
		p.BankAccess = base.BankAccess
	}
	if p.DRAMLatency == 0 {
		p.DRAMLatency = base.DRAMLatency
	}

	if s.Sim == (SimConfig{}) {
		s.Sim = DefaultSimConfig()
	} else {
		def := DefaultSimConfig()
		c := &s.Sim
		if c.TimeSlice == 0 {
			c.TimeSlice = def.TimeSlice
		}
		if c.SchedulerEpoch == 0 {
			c.SchedulerEpoch = def.SchedulerEpoch
		}
		if c.TDTM == 0 {
			c.TDTM = def.TDTM
		}
		if c.DTMThrottleFreq == 0 {
			c.DTMThrottleFreq = def.DTMThrottleFreq
		}
		if c.MaxTime == 0 {
			c.MaxTime = def.MaxTime
		}
		if c.HistoryWindow == 0 {
			c.HistoryWindow = def.HistoryWindow
		}
	}

	if s.Scheduler.TDTM == 0 {
		s.Scheduler.TDTM = s.Sim.TDTM
	}
	return s
}

// Validate reports every invalid field of the spec at once (errors.Join), so
// a client fixes a rejected document in one round trip instead of peeling
// errors one by one. It checks declaratively-visible constraints; deeper
// model inconsistencies still surface from platform construction.
func (s RunSpec) Validate() error {
	var errs []error

	if err := validateVersion(s.Version); err != nil {
		errs = append(errs, err)
	}
	if s.Platform.Width < 1 || s.Platform.Height < 1 {
		errs = append(errs, fmt.Errorf("hotpotato: platform grid %dx%d invalid", s.Platform.Width, s.Platform.Height))
	}
	if s.Platform.CoreEdge <= 0 {
		errs = append(errs, fmt.Errorf("hotpotato: platform core edge must be positive, got %g", s.Platform.CoreEdge))
	}
	if err := s.Platform.Power.DVFS().Validate(); err != nil {
		errs = append(errs, err)
	}
	if s.Platform.BankAccess <= 0 {
		errs = append(errs, fmt.Errorf("hotpotato: platform bank access time must be positive, got %g", s.Platform.BankAccess))
	}
	if s.Platform.DRAMLatency < 0 {
		errs = append(errs, fmt.Errorf("hotpotato: platform DRAM latency must be non-negative, got %g", s.Platform.DRAMLatency))
	}
	if err := thermal.ValidateSolver(s.Platform.Thermal.Solver); err != nil {
		errs = append(errs, err)
	}

	if err := s.Sim.Validate(); err != nil {
		errs = append(errs, err)
	}

	errs = append(errs, s.Scheduler.validate()...)
	errs = append(errs, s.Workload.validate()...)
	return errors.Join(errs...)
}

func (s SchedulerSpec) validate() []error {
	var errs []error
	if _, ok := schedulerRegistry[s.Name]; !ok {
		errs = append(errs, fmt.Errorf("hotpotato: unknown scheduler %q (have %s)",
			s.Name, strings.Join(SchedulerNames(), ", ")))
	}
	for name, v := range map[string]float64{
		"tdtm": s.TDTM, "tau": s.Tau, "tau_min": s.TauMin, "tau_max": s.TauMax,
		"headroom": s.Headroom, "rebalance_every": s.RebalanceEvery,
		"epoch": s.Epoch, "margin": s.Margin, "freq": s.Freq,
	} {
		if v < 0 {
			errs = append(errs, fmt.Errorf("hotpotato: scheduler %s must be non-negative, got %g", name, v))
		}
	}
	if (s.TauMin > 0) != (s.TauMax > 0) {
		errs = append(errs, fmt.Errorf("hotpotato: scheduler needs both rotation bounds or neither (tau_min=%g tau_max=%g)", s.TauMin, s.TauMax))
	} else if s.TauMin > s.TauMax && s.TauMax > 0 {
		errs = append(errs, fmt.Errorf("hotpotato: scheduler rotation bounds inverted (tau_min=%g > tau_max=%g)", s.TauMin, s.TauMax))
	}
	return errs
}

func (w WorkloadSpec) validate() []error {
	var errs []error
	badBench := func(name string) error {
		if name == "" {
			return fmt.Errorf("hotpotato: workload %s needs a benchmark name", w.Kind)
		}
		if _, err := workload.ByName(name); err != nil {
			return err
		}
		return nil
	}
	switch w.Kind {
	case WorkloadHomogeneous:
		if err := badBench(w.Bench); err != nil {
			errs = append(errs, err)
		}
		if w.TotalThreads < 0 {
			errs = append(errs, fmt.Errorf("hotpotato: workload total_threads must be non-negative, got %d", w.TotalThreads))
		}
		for _, size := range w.Sizes {
			if size < 1 {
				errs = append(errs, fmt.Errorf("hotpotato: workload instance size %d invalid", size))
			}
		}
	case WorkloadRandom:
		if w.Count < 1 {
			errs = append(errs, fmt.Errorf("hotpotato: workload count must be positive, got %d", w.Count))
		}
		if w.Rate <= 0 {
			errs = append(errs, fmt.Errorf("hotpotato: workload rate must be positive, got %g", w.Rate))
		}
	case WorkloadExplicit:
		if len(w.Tasks) == 0 {
			errs = append(errs, errors.New("hotpotato: explicit workload needs at least one task"))
		}
		for i, t := range w.Tasks {
			if err := badBench(t.Bench); err != nil {
				errs = append(errs, fmt.Errorf("hotpotato: task %d: %w", i, err))
			}
			if t.Threads < 1 {
				errs = append(errs, fmt.Errorf("hotpotato: task %d: threads must be positive, got %d", i, t.Threads))
			}
			if t.Arrival < 0 {
				errs = append(errs, fmt.Errorf("hotpotato: task %d: arrival must be non-negative, got %g", i, t.Arrival))
			}
			if t.WorkScale < 0 {
				errs = append(errs, fmt.Errorf("hotpotato: task %d: work_scale must be non-negative, got %g", i, t.WorkScale))
			}
		}
	default:
		errs = append(errs, fmt.Errorf("hotpotato: unknown workload kind %q (have %s, %s, %s)",
			w.Kind, WorkloadHomogeneous, WorkloadRandom, WorkloadExplicit))
	}
	return errs
}

// specs expands the workload declaration into task specs; numCores resolves
// the fill-the-chip default of the homogeneous kind.
func (w WorkloadSpec) specs(numCores int) ([]Spec, error) {
	switch w.Kind {
	case WorkloadHomogeneous:
		b, err := workload.ByName(w.Bench)
		if err != nil {
			return nil, err
		}
		total := w.TotalThreads
		if total == 0 {
			total = numCores
		}
		sizes := w.Sizes
		if len(sizes) == 0 {
			sizes = []int{2, 4, 8}
		}
		return workload.HomogeneousFullLoad(b, total, sizes)
	case WorkloadRandom:
		return workload.RandomMix(w.Count, w.Rate, w.Seed)
	case WorkloadExplicit:
		specs := make([]Spec, 0, len(w.Tasks))
		for _, t := range w.Tasks {
			b, err := workload.ByName(t.Bench)
			if err != nil {
				return nil, err
			}
			scale := t.WorkScale
			if scale == 0 {
				scale = 1
			}
			specs = append(specs, Spec{Bench: b, Threads: t.Threads, Arrival: t.Arrival, WorkScale: scale})
		}
		return specs, nil
	default:
		return nil, fmt.Errorf("hotpotato: unknown workload kind %q", w.Kind)
	}
}

// ExecuteSpec is the one entry point behind the server and the CLIs: it
// fills the spec's defaults, validates it, builds the platform it declares,
// and runs it under ctx. Cancelling ctx stops the simulation within one
// scheduler epoch of simulated progress (the partial Result comes back with
// an error wrapping ErrCanceled); hitting Sim.MaxTime returns the partial
// Result with ErrTimeout. The run is deterministic: the same spec always
// yields the same Result, bit for bit, modulo the host-time fields.
func ExecuteSpec(ctx context.Context, spec RunSpec) (*Result, error) {
	spec = spec.WithDefaults()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	plat, err := NewPlatformFromConfig(spec.Platform)
	if err != nil {
		return nil, err
	}
	return ExecuteSpecOnPlatform(ctx, plat, spec)
}

// ExecuteSpecOnPlatform is ExecuteSpec on an already-built platform — the
// serving path, where plat comes from a cache shared between requests and
// must match spec.Platform. The Platform is only read (it is immutable after
// construction), so any number of concurrent calls may share one.
func ExecuteSpecOnPlatform(ctx context.Context, plat *Platform, spec RunSpec) (*Result, error) {
	return ExecuteSpecOnPlatformTraced(ctx, plat, spec, nil)
}

// ExecuteSpecOnPlatformTraced is ExecuteSpecOnPlatform with an epoch tracer
// attached to the run: tracer receives one EpochEvent per scheduler epoch
// (GET /v1/jobs/{id}/trace and hotpotato-sim -trace are built on it). A nil
// tracer is the untraced fast path — identical to ExecuteSpecOnPlatform.
func ExecuteSpecOnPlatformTraced(ctx context.Context, plat *Platform, spec RunSpec, tracer EpochTracer) (*Result, error) {
	spec = spec.WithDefaults()
	if err := spec.Validate(); err != nil {
		return nil, err
	}

	// Span instrumentation (docs/OBSERVABILITY.md): when the context carries
	// a span — a service job root or the CLI's -spans recorder — the two
	// phases of an execution show up as children: workload_build (task
	// instantiation + scheduler construction) and simulate (the run itself,
	// which the engine further splits into per-epoch spans). With no span in
	// ctx all of this is nil no-ops.
	buildSpan := obs.SpanFromContext(ctx).StartChild("workload_build")
	taskSpecs, err := spec.Workload.specs(plat.NumCores())
	if err != nil {
		buildSpan.SetError(err)
		buildSpan.End()
		return nil, err
	}
	tasks, err := Instantiate(taskSpecs)
	if err != nil {
		buildSpan.SetError(err)
		buildSpan.End()
		return nil, err
	}
	schedSpec, err := spec.Scheduler.AutoPin(plat, tasks)
	if err != nil {
		buildSpan.SetError(err)
		buildSpan.End()
		return nil, err
	}
	scheduler, err := NewSchedulerFromSpec(plat, schedSpec)
	if err != nil {
		buildSpan.SetError(err)
		buildSpan.End()
		return nil, err
	}
	buildSpan.SetAttr("tasks", len(tasks))
	buildSpan.SetAttr("scheduler", schedSpec.Name)
	buildSpan.End()

	simulation, err := sim.New(plat, spec.Sim, scheduler, tasks)
	if err != nil {
		return nil, err
	}
	if tracer != nil {
		simulation.SetEpochTracer(tracer)
	}
	runCtx, simSpan := obs.StartSpan(ctx, "simulate")
	res, err := simulation.RunContext(runCtx)
	simSpan.SetError(err)
	if res != nil {
		simSpan.SetAttr("epochs", res.SchedulerInvocations)
		simSpan.SetAttr("simulated_s", res.SimulatedTime)
	}
	simSpan.End()
	return res, err
}
