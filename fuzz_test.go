package hotpotato

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzDecodeRunSpec throws arbitrary bytes at the RunSpec wire path — the
// exact code POST /v1/run runs on untrusted request bodies. Two properties:
//
//  1. Decode-over-defaults plus WithDefaults plus Validate never panics,
//     whatever the input.
//  2. Any document that decodes and validates round-trips: Marshal → Decode →
//     WithDefaults → Marshal reproduces the same bytes, and the round-tripped
//     spec still validates. (Byte comparison rather than DeepEqual: an empty
//     "pins": {} decodes to a non-nil map that omitempty then drops, which is
//     wire-equivalent but not DeepEqual.)
//
// The committed seed corpus under testdata/fuzz/FuzzDecodeRunSpec/ carries
// the documented example specs from docs/SERVICE.md.
func FuzzDecodeRunSpec(f *testing.F) {
	seeds := []string{
		// The docs/SERVICE.md minimal document.
		`{"platform": {"width": 4, "height": 4}, "scheduler": {"name": "hotpotato"}, "workload": {"kind": "homogeneous", "bench": "blackscholes", "total_threads": 4}}`,
		// Every workload kind.
		`{"scheduler": {"name": "pcmig"}, "workload": {"kind": "random", "count": 5, "rate": 100, "seed": 7}}`,
		`{"scheduler": {"name": "static", "pins": {"0:0": 0}}, "workload": {"kind": "explicit", "tasks": [{"bench": "swaptions", "threads": 1}]}}`,
		// Explicit sim section with booleans.
		`{"sim": {"dtm_enabled": false, "max_time": 1}, "scheduler": {"name": "rotation"}, "workload": {"kind": "homogeneous", "bench": "x264"}}`,
		// Degenerate inputs.
		`{}`, `null`, `[]`, `{"platform": {"width": -1}}`,
		`{"workload": {"kind": "unknown"}}`, `{"sim": {"time_slice": 1e309}}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var spec RunSpec
		if err := json.Unmarshal(data, &spec); err != nil {
			return // undecodable input is a fine outcome, panicking is not
		}
		spec = spec.WithDefaults()
		if spec.Validate() != nil {
			return
		}

		first, err := json.Marshal(spec)
		if err != nil {
			t.Fatalf("valid spec does not marshal: %v", err)
		}
		var back RunSpec
		if err := json.Unmarshal(first, &back); err != nil {
			t.Fatalf("marshaled spec does not decode: %v\n%s", err, first)
		}
		back = back.WithDefaults()
		second, err := json.Marshal(back)
		if err != nil {
			t.Fatalf("round-tripped spec does not marshal: %v", err)
		}
		if !bytes.Equal(first, second) {
			t.Errorf("round trip changed the document:\nfirst:  %s\nsecond: %s", first, second)
		}
		if err := back.Validate(); err != nil {
			t.Errorf("round-tripped spec no longer validates: %v\n%s", err, first)
		}
	})
}
