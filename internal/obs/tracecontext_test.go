package obs

import (
	"context"
	"strings"
	"testing"
)

func TestNewTraceContextIsValidAndUnique(t *testing.T) {
	a, b := NewTraceContext(), NewTraceContext()
	if !a.Valid() || !b.Valid() {
		t.Fatalf("fresh contexts must be valid: %+v %+v", a, b)
	}
	if a.TraceID == b.TraceID {
		t.Errorf("two fresh trace IDs collided: %s", a.TraceID)
	}
	if len(a.TraceID) != 32 || len(a.SpanID) != 16 {
		t.Errorf("field lengths: trace %d span %d, want 32/16", len(a.TraceID), len(a.SpanID))
	}
}

func TestTraceParentRoundTrip(t *testing.T) {
	tc := NewTraceContext()
	header := tc.Header()
	if !strings.HasPrefix(header, "00-") || !strings.HasSuffix(header, "-01") {
		t.Fatalf("header %q, want 00-...-01", header)
	}
	got, ok := ParseTraceParent(header)
	if !ok || got != tc {
		t.Fatalf("round trip: got %+v ok=%v, want %+v", got, ok, tc)
	}
}

func TestParseTraceParentRejectsMalformed(t *testing.T) {
	valid := NewTraceContext().Header()
	bad := []string{
		"",
		"garbage",
		valid[:54],                          // truncated
		valid + "0",                         // too long
		"01" + valid[2:],                    // unknown version
		strings.ToUpper(valid),              // uppercase hex
		strings.Replace(valid, "-", "_", 1), // wrong separator
		"00-" + strings.Repeat("0", 32) + "-" + valid[36:52] + "-01", // all-zero trace ID
		valid[:53] + "zz", // non-hex flags
	}
	for _, s := range bad {
		if _, ok := ParseTraceParent(s); ok {
			t.Errorf("ParseTraceParent(%q) accepted, want rejection", s)
		}
	}
}

func TestInvalidContextRendersEmptyHeader(t *testing.T) {
	if h := (TraceContext{}).Header(); h != "" {
		t.Errorf("zero context header %q, want empty", h)
	}
	if h := (TraceContext{TraceID: "short", SpanID: "also"}).Header(); h != "" {
		t.Errorf("malformed context header %q, want empty", h)
	}
}

func TestTraceContextChild(t *testing.T) {
	tc := NewTraceContext()
	child := tc.Child(SpanID(7))
	if child.TraceID != tc.TraceID {
		t.Errorf("child trace ID %s, want parent's %s", child.TraceID, tc.TraceID)
	}
	if child.SpanID != "0000000000000007" {
		t.Errorf("child span ID %s, want 0000000000000007", child.SpanID)
	}
	if !child.Valid() {
		t.Errorf("child %+v invalid", child)
	}
}

func TestTraceContextPlumbing(t *testing.T) {
	ctx := context.Background()
	if got := TraceContextFrom(ctx); got.Valid() {
		t.Fatalf("uninstrumented context yielded %+v", got)
	}
	tc := NewTraceContext()
	ctx = ContextWithTraceContext(ctx, tc)
	if got := TraceContextFrom(ctx); got != tc {
		t.Errorf("got %+v, want %+v", got, tc)
	}
	// An invalid context must not overwrite: the helper leaves ctx unchanged.
	ctx2 := ContextWithTraceContext(ctx, TraceContext{})
	if got := TraceContextFrom(ctx2); got != tc {
		t.Errorf("invalid overwrite: got %+v, want %+v", got, tc)
	}
}

func TestGraftRenumbersAndReparents(t *testing.T) {
	local := NewSpanRecorder(16)
	root := local.Start("sweep")
	lease := root.StartChild("lease")

	// A remote recorder's export: IDs count from 1 and would collide with
	// the local root/lease spans.
	remote := NewSpanRecorder(16)
	cell := remote.Start("cell")
	cell.SetAttr("index", 3)
	exec := cell.StartChild("execute_spec")
	exec.End()
	cell.End()

	kept := local.Graft(lease.ID(), remote.Records())
	if kept != 2 {
		t.Fatalf("kept %d, want 2", kept)
	}
	tree := local.Tree()
	if len(tree) != 1 || tree[0].Name != "sweep" {
		t.Fatalf("want a single sweep root, got %d roots", len(tree))
	}
	leaseNode := tree[0].Children[0]
	if len(leaseNode.Children) != 1 || leaseNode.Children[0].Name != "cell" {
		t.Fatalf("grafted cell not under lease: %+v", leaseNode)
	}
	cellNode := leaseNode.Children[0]
	if got := cellNode.Attrs["index"]; got != 3 {
		t.Errorf("cell attr index = %v, want 3", got)
	}
	if len(cellNode.Children) != 1 || cellNode.Children[0].Name != "execute_spec" {
		t.Fatalf("intra-batch parent link lost: %+v", cellNode)
	}
	if cellNode.ID == 1 || cellNode.ID == 2 {
		t.Errorf("grafted span kept a colliding remote ID %d", cellNode.ID)
	}
}

func TestGraftCopiesAttrMaps(t *testing.T) {
	local := NewSpanRecorder(8)
	parent := local.Start("root")
	recs := []SpanRecord{{ID: 1, Name: "cell", Attrs: map[string]any{"k": "v"}}}
	local.Graft(parent.ID(), recs)
	recs[0].Attrs["k"] = "mutated"
	got := local.Records()
	if got[1].Attrs["k"] != "v" {
		t.Errorf("graft shared the caller's attr map: %v", got[1].Attrs)
	}
}

func TestGraftRespectsCapacity(t *testing.T) {
	local := NewSpanRecorder(3)
	parent := local.Start("root")
	recs := []SpanRecord{
		{ID: 1, Name: "a"}, {ID: 2, Name: "b"}, {ID: 3, Name: "c"},
	}
	kept := local.Graft(parent.ID(), recs)
	if kept != 2 {
		t.Fatalf("kept %d, want 2 (capacity 3, one local span)", kept)
	}
	if local.Dropped() != 1 {
		t.Errorf("dropped %d, want 1", local.Dropped())
	}
	if local.Len() != 3 {
		t.Errorf("len %d, want 3", local.Len())
	}
}

func TestGraftOntoNilAndEmpty(t *testing.T) {
	var nilRec *SpanRecorder
	if kept := nilRec.Graft(0, []SpanRecord{{ID: 1}}); kept != 0 {
		t.Errorf("nil recorder kept %d", kept)
	}
	local := NewSpanRecorder(4)
	if kept := local.Graft(0, nil); kept != 0 {
		t.Errorf("empty batch kept %d", kept)
	}
	// parent 0 grafts batch roots as additional recorder roots.
	local.Graft(0, []SpanRecord{{ID: 1, Name: "orphan"}})
	tree := local.Tree()
	if len(tree) != 1 || tree[0].Name != "orphan" {
		t.Fatalf("parent-0 graft: got %d roots", len(tree))
	}
}
