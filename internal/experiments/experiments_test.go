package experiments

import (
	"bytes"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
)

func TestTableIMatchesPaper(t *testing.T) {
	rows, err := TableI()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{
		"Number of Cores":  "64",
		"L1 I/D cache":     "16/16 KB, 8/8-way, 64B-block",
		"LLC":              "128 KB per core, 16-way, 64B-block",
		"NoC Latency":      "1.5 ns per hop",
		"NoC link width":   "256 Bit",
		"The area of core": "0.81 mm²",
	}
	got := map[string]string{}
	for _, r := range rows {
		got[r.Parameter] = r.Value
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("%s = %q, want %q", k, got[k], v)
		}
	}
	if !strings.Contains(got["Core Model"], "4.0 GHz") {
		t.Errorf("core model %q missing 4.0 GHz", got["Core Model"])
	}
}

func TestFig2Shape(t *testing.T) {
	res, err := Fig2(0)
	if err != nil {
		t.Fatal(err)
	}
	// (a) unmanaged breaches the threshold.
	if !res.None.Breaches {
		t.Errorf("unmanaged run peaked at %.1f °C, expected a breach of 70", res.None.PeakTemp)
	}
	// (b) and (c) stay thermally safe (small DTM-hysteresis excursions allowed).
	if res.TSP.PeakTemp > 70.5 {
		t.Errorf("TSP peak %.1f °C", res.TSP.PeakTemp)
	}
	if res.Rotation.PeakTemp > 70.5 {
		t.Errorf("rotation peak %.1f °C", res.Rotation.PeakTemp)
	}
	// Response-time ordering of the paper: none < rotation < TSP.
	if !(res.None.Response < res.Rotation.Response) {
		t.Errorf("rotation (%.1f ms) not slower than unmanaged (%.1f ms)",
			res.Rotation.Response*1e3, res.None.Response*1e3)
	}
	if !(res.Rotation.Response < res.TSP.Response) {
		t.Errorf("rotation (%.1f ms) not faster than TSP (%.1f ms)",
			res.Rotation.Response*1e3, res.TSP.Response*1e3)
	}
	// Rotation migrates; the others never do.
	if res.Rotation.Migrations == 0 {
		t.Error("rotation recorded no migrations")
	}
	if res.None.Migrations != 0 || res.TSP.Migrations != 0 {
		t.Error("static policies migrated")
	}
}

func TestFig2TraceRecording(t *testing.T) {
	res, err := Fig2(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.None.Trace) == 0 {
		t.Fatal("no trace recorded")
	}
	prev := 0.0
	for _, s := range res.None.Trace {
		if s.Time <= prev {
			t.Fatal("trace times not monotone")
		}
		prev = s.Time
	}
}

func TestFig4aShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full 64-core sweep in -short mode")
	}
	rows, err := Fig4a(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d, want 8 benchmarks", len(rows))
	}
	var cannealSpeedup, minSpeedup float64 = -1, 1e9
	for _, r := range rows {
		// HotPotato must win (or tie within noise) on every benchmark.
		if r.SpeedupPercent < -1 {
			t.Errorf("%s: HotPotato slower than PCMig by %.2f%%", r.Benchmark, -r.SpeedupPercent)
		}
		if r.Benchmark == "canneal" {
			cannealSpeedup = r.SpeedupPercent
		}
		if r.SpeedupPercent < minSpeedup {
			minSpeedup = r.SpeedupPercent
		}
		// Both schedulers essentially respect the threshold.
		if r.HotPotatoPeak > 72 || r.PCMigPeak > 72 {
			t.Errorf("%s: peaks %.1f / %.1f °C", r.Benchmark, r.HotPotatoPeak, r.PCMigPeak)
		}
	}
	// canneal produces very little heat → the smallest gain (paper: 0.73%).
	if cannealSpeedup > 3 {
		t.Errorf("canneal speedup %.2f%%, expected the near-zero paper shape", cannealSpeedup)
	}
	avg := Fig4aAverageSpeedup(rows)
	// Paper: 10.72% average. Accept the same decade: 5–25%.
	if avg < 5 || avg > 25 {
		t.Errorf("average speedup %.2f%%, want the paper's ≈10%% decade (5–25)", avg)
	}
}

func TestFig4bShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full 64-core sweep in -short mode")
	}
	rows, err := Fig4b(Options{}, DefaultFig4bRates(), 20, 12345)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	best, bestIdx := -1e9, -1
	for i, r := range rows {
		if r.SpeedupPercent < -1 {
			t.Errorf("rate %.0f: HotPotato slower by %.2f%%", r.ArrivalRate, -r.SpeedupPercent)
		}
		if r.SpeedupPercent > best {
			best, bestIdx = r.SpeedupPercent, i
		}
	}
	// The paper's hump: the gain peaks at a medium load, not at either end.
	if bestIdx == 0 || bestIdx == len(rows)-1 {
		t.Errorf("speedup maximal at load extreme (index %d); paper shows a medium-load peak", bestIdx)
	}
	if best < 5 || best > 25 {
		t.Errorf("peak speedup %.2f%%, want the paper's ≈12%% decade", best)
	}
}

func TestOverheadWithinEpoch(t *testing.T) {
	res, err := Overhead()
	if err != nil {
		t.Fatal(err)
	}
	// The paper reports 23.76 µs per scheduling computation (4.75% of a
	// 0.5 ms epoch). Our fast-path decision must also fit comfortably within
	// an epoch on commodity hardware.
	if res.DecidePerCall.Seconds() > 0.25e-3 {
		t.Errorf("per-epoch decision %v exceeds half an epoch", res.DecidePerCall)
	}
	if res.Alg1PerCall <= 0 || res.PlacementPerThread <= 0 {
		t.Error("degenerate timings")
	}
	if s := res.String(); !strings.Contains(s, "Algorithm 1") {
		t.Errorf("String() = %q", s)
	}
}

func TestTauSweepShape(t *testing.T) {
	rows, err := TauSweep(DefaultTaus())
	if err != nil {
		t.Fatal(err)
	}
	// Peak temperature grows with τ (slower rotation averages worse)...
	for i := 1; i < len(rows); i++ {
		if rows[i].PeakTemp < rows[i-1].PeakTemp-0.2 {
			t.Errorf("peak not increasing with τ: %.2f at %.3f ms vs %.2f at %.3f ms",
				rows[i].PeakTemp, rows[i].Tau*1e3, rows[i-1].PeakTemp, rows[i-1].Tau*1e3)
		}
	}
	// ...while migration count shrinks.
	if rows[0].Migrations <= rows[len(rows)-1].Migrations {
		t.Error("migration count not decreasing with τ")
	}
}

func TestMigrationCostSweepShape(t *testing.T) {
	if testing.Short() {
		t.Skip("64-core sweep in -short mode")
	}
	rows, err := MigrationCostSweep([]float64{1, 8}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rows[1].SpeedupPercent >= rows[0].SpeedupPercent {
		t.Errorf("HotPotato's edge did not shrink with 8× migration cost: %.2f%% → %.2f%%",
			rows[0].SpeedupPercent, rows[1].SpeedupPercent)
	}
}

func TestAnalyticVsBruteAgreesAndWins(t *testing.T) {
	rows, err := AnalyticVsBrute([]int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if diff := r.AnalyticPeak - r.BrutePeak; diff > 0.1 || diff < -0.1 {
			t.Errorf("δ=%d: analytic %.3f vs brute %.3f", r.Delta, r.AnalyticPeak, r.BrutePeak)
		}
		if r.SpeedupFactor < 10 {
			t.Errorf("δ=%d: analytic only %.0f× faster", r.Delta, r.SpeedupFactor)
		}
	}
}

func TestReportWriters(t *testing.T) {
	var buf bytes.Buffer
	rows, err := TableI()
	if err != nil {
		t.Fatal(err)
	}
	WriteTableI(&buf, rows)
	if !strings.Contains(buf.String(), "Number of Cores") {
		t.Error("TableI report incomplete")
	}

	buf.Reset()
	WriteFig4a(&buf, []Fig4aRow{{Benchmark: "x264", HotPotatoMakespan: 0.1, PCMigMakespan: 0.12, NormalizedMakespan: 0.83, SpeedupPercent: 17}})
	if !strings.Contains(buf.String(), "x264") || !strings.Contains(buf.String(), "average speedup") {
		t.Error("Fig4a report incomplete")
	}

	buf.Reset()
	WriteFig4b(&buf, []Fig4bRow{{ArrivalRate: 100, HotPotatoResponse: 0.07, PCMigResponse: 0.08, SpeedupPercent: 12}})
	if !strings.Contains(buf.String(), "100/s") {
		t.Error("Fig4b report incomplete")
	}

	buf.Reset()
	WriteTauSweep(&buf, []TauSweepRow{{Tau: 0.5e-3, Response: 0.06, PeakTemp: 65, Migrations: 100}})
	if !strings.Contains(buf.String(), "0.500 ms") {
		t.Error("TauSweep report incomplete")
	}
}

func TestHybridShape(t *testing.T) {
	if testing.Short() {
		t.Skip("64-core sweep in -short mode")
	}
	rows, err := Hybrid(Options{}, []string{"blackscholes"})
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	// The hybrid must stay competitive with pure HotPotato and clearly beat
	// the DVFS-only baseline, while throttling no more than pure rotation.
	if r.Hybrid > r.HotPotato*1.15 {
		t.Errorf("hybrid %.1f ms much slower than pure %.1f ms", r.Hybrid*1e3, r.HotPotato*1e3)
	}
	if r.Hybrid >= r.PCMig {
		t.Errorf("hybrid %.1f ms not faster than PCMig %.1f ms", r.Hybrid*1e3, r.PCMig*1e3)
	}
	if r.HybridDTM > r.HotPotatoDTM+1e-3 {
		t.Errorf("hybrid DTM %.2f ms worse than pure %.2f ms", r.HybridDTM*1e3, r.HotPotatoDTM*1e3)
	}
	var buf bytes.Buffer
	WriteHybrid(&buf, rows)
	if !strings.Contains(buf.String(), "blackscholes") {
		t.Error("hybrid report incomplete")
	}
}

func TestFig4bMultiSeedAggregation(t *testing.T) {
	if testing.Short() {
		t.Skip("64-core multi-seed sweep in -short mode")
	}
	rows, err := Fig4bMultiSeed(Options{}, []float64{100}, 12, []int64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Seeds != 3 {
		t.Fatalf("rows = %+v", rows)
	}
	if rows[0].MeanSpeedup < 0 {
		t.Errorf("mean speedup %.2f%% negative across seeds", rows[0].MeanSpeedup)
	}
	if rows[0].SpeedupCI95 < 0 {
		t.Error("negative CI")
	}
	var buf bytes.Buffer
	WriteFig4bMultiSeed(&buf, rows)
	if !strings.Contains(buf.String(), "±") {
		t.Error("multi-seed report incomplete")
	}
	if _, err := Fig4bMultiSeed(Options{}, []float64{100}, 5, nil); err == nil {
		t.Error("empty seed list accepted")
	}
}

func TestThreeDShape(t *testing.T) {
	res, err := ThreeD()
	if err != nil {
		t.Fatal(err)
	}
	if res.BuriedHotter <= 0 {
		t.Errorf("buried layer not hotter (gap %.2f K)", res.BuriedHotter)
	}
	peaks := map[string]float64{}
	for _, r := range res.Rows {
		peaks[r.Policy] = r.Peak
	}
	pinned := peaks["pinned buried"]
	for name, p := range peaks {
		if name != "pinned buried" && p >= pinned {
			t.Errorf("%s peak %.2f not below pinned %.2f", name, p, pinned)
		}
	}
	// More cores in the rotation → lower peak.
	if !(peaks["both layers' rings"] < peaks["horizontal ring (buried layer)"]) {
		t.Error("8-core 3D rotation not cooler than 4-core horizontal rotation")
	}
	var buf bytes.Buffer
	WriteThreeD(&buf, res)
	if !strings.Contains(buf.String(), "vertical pair") {
		t.Error("3D report incomplete")
	}
}

func TestHeterogeneityShape(t *testing.T) {
	rows, err := Heterogeneity()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]HeterogeneityRow{}
	for _, r := range rows {
		byName[r.Benchmark] = r
		if r.BestIPS < r.WorstIPS {
			t.Errorf("%s: centre core slower than corner", r.Benchmark)
		}
	}
	// canneal: most placement-sensitive, least DVFS-sensitive; swaptions the
	// reverse ([19]'s characterization).
	if byName["canneal"].PlacementGainPercent <= byName["swaptions"].PlacementGainPercent {
		t.Error("canneal not more placement-sensitive than swaptions")
	}
	if byName["canneal"].DVFSSlowdownPercent >= byName["swaptions"].DVFSSlowdownPercent {
		t.Error("canneal not less DVFS-sensitive than swaptions")
	}
	var buf bytes.Buffer
	WriteHeterogeneity(&buf, rows)
	if !strings.Contains(buf.String(), "canneal") {
		t.Error("heterogeneity report incomplete")
	}
}

func TestNoiseSweepShape(t *testing.T) {
	if testing.Short() {
		t.Skip("64-core sweep in -short mode")
	}
	rows, err := NoiseSweep([]float64{0, 2}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	clean, noisy := rows[0], rows[1]
	if noisy.Makespan > clean.Makespan*1.2 {
		t.Errorf("2 K sensor noise cost %.0f%% makespan",
			100*(noisy.Makespan/clean.Makespan-1))
	}
	if noisy.PeakTemp > 73 {
		t.Errorf("noisy peak %.2f °C", noisy.PeakTemp)
	}
	var buf bytes.Buffer
	WriteNoiseSweep(&buf, rows)
	if !strings.Contains(buf.String(), "noise") {
		t.Error("noise report incomplete")
	}
}

func TestHeadroomSweepShape(t *testing.T) {
	if testing.Short() {
		t.Skip("64-core sweep in -short mode")
	}
	rows, err := HeadroomSweep([]float64{0.5, 4}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	tight, wide := rows[0], rows[1]
	// A wide margin must not throttle more than a tight one, and costs some
	// performance.
	if wide.DTMEvents > tight.DTMEvents {
		t.Errorf("Δ=4: %d DTM events vs %d at Δ=0.5", wide.DTMEvents, tight.DTMEvents)
	}
	if wide.Makespan < tight.Makespan*0.95 {
		t.Errorf("wide margin implausibly faster: %.1f vs %.1f ms",
			wide.Makespan*1e3, tight.Makespan*1e3)
	}
	var buf bytes.Buffer
	WriteHeadroomSweep(&buf, rows)
	if !strings.Contains(buf.String(), "DTM events") {
		t.Error("headroom report incomplete")
	}
}

func TestConcurrentPairDeterministic(t *testing.T) {
	// Fig4b fans its scheduler cells out on the worker pool; results must be
	// identical across repeated invocations (no shared state between cells).
	opts := Options{GridEdge: 4, WorkScale: 0.3}
	run := func() []Fig4bRow {
		rows, err := Fig4b(opts, []float64{100}, 6, 9)
		if err != nil {
			t.Fatal(err)
		}
		return rows
	}
	a, b := run(), run()
	if a[0].HotPotatoResponse != b[0].HotPotatoResponse ||
		a[0].PCMigResponse != b[0].PCMigResponse {
		t.Fatalf("concurrent pair runs diverge: %+v vs %+v", a[0], b[0])
	}
}

func TestForEach(t *testing.T) {
	// Every index runs exactly once and lands in its own slot, at any
	// worker count (including more workers than cells).
	for _, workers := range []int{0, 1, 2, 7, 64} {
		const n = 23
		got := make([]int, n)
		if err := forEach(workers, n, func(i int) error {
			got[i] = i + 1
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range got {
			if v != i+1 {
				t.Fatalf("workers=%d: slot %d = %d", workers, i, v)
			}
		}
	}
	// n = 0 is a no-op.
	if err := forEach(4, 0, func(int) error { t.Fatal("called"); return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestForEachReportsLowestIndexError(t *testing.T) {
	// The reported error must not depend on goroutine interleaving: it is
	// always the failure of the lowest index, and later cells still run.
	for _, workers := range []int{1, 4} {
		var ran atomic.Int64
		err := forEach(workers, 10, func(i int) error {
			ran.Add(1)
			if i == 7 || i == 3 {
				return fmt.Errorf("cell %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "cell 3 failed" {
			t.Errorf("workers=%d: err = %v, want the lowest-index failure", workers, err)
		}
		if ran.Load() != 10 {
			t.Errorf("workers=%d: %d cells ran, want all 10", workers, ran.Load())
		}
	}
}

func TestWorkerCountInvariance(t *testing.T) {
	// The acceptance property of the parallel harness: workers=1 and
	// workers=8 produce bit-identical Fig4b aggregate rows for the same
	// seeds. Any divergence means a cell leaked state into another.
	rates := []float64{100, 200}
	seeds := []int64{1, 2}
	run := func(workers int) []Fig4bAggRow {
		opts := Options{GridEdge: 4, WorkScale: 0.3, Workers: workers}
		rows, err := Fig4bMultiSeed(opts, rates, 6, seeds)
		if err != nil {
			t.Fatal(err)
		}
		return rows
	}
	serial, parallel := run(1), run(8)
	if len(serial) != len(rates) || len(parallel) != len(rates) {
		t.Fatalf("row counts %d / %d, want %d", len(serial), len(parallel), len(rates))
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Errorf("rate %.0f: workers=1 row %+v != workers=8 row %+v",
				rates[i], serial[i], parallel[i])
		}
	}
}

func TestBaselinesLadder(t *testing.T) {
	if testing.Short() {
		t.Skip("64-core ladder in -short mode")
	}
	rows, err := Baselines(Options{}, "x264")
	if err != nil {
		t.Fatal(err)
	}
	by := map[string]BaselineRow{}
	for _, r := range rows {
		by[r.Policy] = r
		if r.PeakTemp > 73 {
			t.Errorf("%s peak %.2f °C", r.Policy, r.PeakTemp)
		}
	}
	// The model-driven rotation policies beat both DVFS baselines.
	if by["hotpotato"].Makespan >= by["pcmig"].Makespan {
		t.Error("hotpotato not faster than pcmig")
	}
	if by["hotpotato"].Makespan >= by["reactive (ondemand-style)"].Makespan {
		t.Error("hotpotato not faster than the reactive governor")
	}
	var buf bytes.Buffer
	WriteBaselines(&buf, "x264", rows)
	if !strings.Contains(buf.String(), "hotpotato-dvfs") {
		t.Error("baseline report incomplete")
	}
}

func TestContentionShape(t *testing.T) {
	if testing.Short() {
		t.Skip("64-core contention sweep in -short mode")
	}
	rows, err := Contention(Options{}, []string{"streamcluster"})
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.ContentionCostPct <= 0 {
		t.Errorf("contention made the run faster (%.1f%%)", r.ContentionCostPct)
	}
	// The headline conclusion must survive the bandwidth model: HotPotato
	// does not lose to PCMig with contention on.
	if r.SpeedupOnPercent < -2 {
		t.Errorf("HotPotato loses %.2f%% to PCMig under contention", -r.SpeedupOnPercent)
	}
	var buf bytes.Buffer
	WriteContention(&buf, rows)
	if !strings.Contains(buf.String(), "streamcluster") {
		t.Error("contention report incomplete")
	}
}

func TestCSVEmitters(t *testing.T) {
	res, err := Fig2(50)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteFig2TracesCSV(&buf, res); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "time_ms,unmanaged_C,tsp_C,rotation_C") {
		t.Errorf("fig2 CSV header: %q", strings.SplitN(out, "\n", 2)[0])
	}
	if strings.Count(out, "\n") < 10 {
		t.Error("fig2 CSV has too few rows")
	}
	// Traceless result errors.
	empty, err := Fig2(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteFig2TracesCSV(&buf, empty); err == nil {
		t.Error("traceless Fig2 CSV accepted")
	}

	buf.Reset()
	if err := WriteFig4aCSV(&buf, []Fig4aRow{{Benchmark: "x264", HotPotatoMakespan: 0.1, PCMigMakespan: 0.12}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "x264,100.000,120.000") {
		t.Errorf("fig4a CSV: %q", buf.String())
	}

	buf.Reset()
	if err := WriteFig4bCSV(&buf, []Fig4bRow{{ArrivalRate: 100, HotPotatoResponse: 0.07, PCMigResponse: 0.08, SpeedupPercent: 12.5}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "100.0,70.000,80.000,12.50") {
		t.Errorf("fig4b CSV: %q", buf.String())
	}

	buf.Reset()
	if err := WriteTauSweepCSV(&buf, []TauSweepRow{{Tau: 0.5e-3, Response: 0.059, PeakTemp: 61.2, Migrations: 234}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "0.500,59.000,61.200,234") {
		t.Errorf("tau CSV: %q", buf.String())
	}
}
