package fabric

import (
	"context"
	"fmt"
	"log/slog"
	"sync"
	"time"

	hotpotato "repro"
	"repro/internal/obs"
)

// Clock abstracts time for the lease machinery so expiry is unit-testable
// with a fake clock; production uses the real one.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
}

// realClock is the production Clock.
type realClock struct{}

func (realClock) Now() time.Time { return time.Now() }

// Defaults of the dispatcher configuration.
const (
	// DefaultLeaseTTL is how long a lease stays booked without a heartbeat
	// before its cells are re-queued.
	DefaultLeaseTTL = 15 * time.Second
	// DefaultMaxRetries is how many times a cell is re-leased after lease
	// expiries before it is reported "failed". The first lease is not a
	// retry: a cell is abandoned after 1+DefaultMaxRetries bookings.
	DefaultMaxRetries = 3
	// DefaultLeaseCells caps how many cells one lease books. Small batches
	// keep re-queue cost low when a worker dies and spread a sweep evenly.
	DefaultLeaseCells = 4
	// DefaultRecentSweeps is how many finished sweeps the dispatcher retains
	// for the status surface (GET /v1/sweeps, /v1/sweeps/{id}/spans) after
	// their record streams close. Older sweeps remain visible through the
	// archive manifests only.
	DefaultRecentSweeps = 32
)

// Config sizes a Dispatcher.
type Config struct {
	// LeaseTTL is the lease deadline extension per heartbeat (0 =
	// DefaultLeaseTTL).
	LeaseTTL time.Duration
	// MaxRetries bounds re-leases per cell after expiries (0 =
	// DefaultMaxRetries; negative means no retries — one expiry fails the
	// cell).
	MaxRetries int
	// LeaseCells caps cells per lease (0 = DefaultLeaseCells).
	LeaseCells int
	// MaxSweepCells is the POST /v1/batch admission limit (0 = the
	// structural hotpotato.MaxSweepCells; servers typically set much less).
	MaxSweepCells int
	// Heartbeat is the client-stream progress cadence (0 = 10s, negative
	// disables) — the same knob as the single-node server's -batch-heartbeat.
	Heartbeat time.Duration
	// DefaultSolver fills platform.thermal.solver on cells that leave it
	// empty, exactly like hotpotato-server's -solver: the dispatcher must
	// apply the same default at the same point (post-expansion, pre-hash) or
	// the same sweep would hash differently here and on a single node.
	DefaultSolver string
	// Archive persists completed cells by SpecHash; nil disables archiving
	// (and the archive-hit fast path).
	Archive *Archive
	// SweepSpanDepth caps the merged span tree retained per sweep — the
	// dispatcher's own sweep/lease spans plus every worker-exported cell
	// subtree (0 = obs.DefaultSpanDepth, negative disables span tracking and
	// the TraceParent on lease grants).
	SweepSpanDepth int
	// RecentSweeps caps how many finished sweeps stay queryable on the status
	// surface (0 = DefaultRecentSweeps).
	RecentSweeps int
	// Clock drives lease deadlines; nil means the real clock.
	Clock Clock
	// Logger receives the dispatcher's structured log stream; nil is quiet.
	Logger *slog.Logger
}

// cell lifecycle states.
const (
	cellPending = iota
	cellLeased
	cellDone
	cellFailed
)

// cellTask is one cell's control-plane state.
type cellTask struct {
	sweep *sweepState
	cell  hotpotato.SweepCell
	hash  string
	// bookings counts leases granted for this cell; a cell whose lease
	// expires with bookings > MaxRetries is failed instead of re-queued.
	bookings int
	state    int
}

// sweepState is one submitted sweep: its cells, the record channel its
// client handler drains, and the tallies the summary and manifest report.
type sweepState struct {
	id        string
	requestID string
	total     int
	// outstanding counts cells not yet done/failed/canceled; the records
	// channel closes when it reaches zero.
	outstanding int
	// records is buffered to total, so emits never block — even when the
	// client handler has gone away.
	records  chan hotpotato.SweepResultRecord
	closed   bool
	canceled bool
	began    time.Time
	finished time.Time // zero while the sweep is active

	completed, failed, canceledN, prunedN, cacheHits int
	// requeues counts cells re-queued by lease expiries — the recovery work
	// the status surface reports per sweep.
	requeues int

	// traceID / spans / root are the sweep's merged fleet trace: the
	// dispatcher's own sweep and lease spans plus every worker-exported cell
	// subtree, grafted under root. spans is nil when tracking is disabled.
	traceID string
	spans   *obs.SpanRecorder
	root    *obs.Span
	// spanExportDropped sums the spans the workers' per-cell recorders
	// dropped before export (on top of spans.Dropped(), the merge-side drop).
	spanExportDropped int64

	// perWorker attributes completed cells to the workers that posted them.
	perWorker map[string]*sweepWorkerStats

	// drift tallies the twin-drift observations workers reported for this
	// sweep's cells.
	drift driftTally
}

// sweepWorkerStats is one worker's contribution to one sweep.
type sweepWorkerStats struct {
	done  int
	first time.Time // first result post, for the cells/s denominator
	last  time.Time
}

// driftTally accumulates twin-drift reports (see DriftReport).
type driftTally struct {
	checks      int
	violations  int
	sumResidual float64
	maxAbs      float64
}

// lease is one booked batch of cells (all from one sweep).
type lease struct {
	id       string
	workerID string
	sweep    *sweepState
	// cells indexes the lease's tasks by their sweep cell index.
	cells    map[int]*cellTask
	deadline time.Time
	// span times the lease in the sweep's merged trace (nil when tracking is
	// disabled); worker-exported cell subtrees graft under it.
	span *obs.Span
}

// workerState is everything the dispatcher knows about one worker — the
// GET /fabric/v1/workers row.
type workerState struct {
	id         string
	capacity   int
	registered time.Time
	// lastSeen is the last register/lease/heartbeat/results call — the
	// liveness signal the health state derives from.
	lastSeen time.Time
	// cellsDone counts results this worker posted (accepted records).
	cellsDone int64
	// gauges holds the worker's latest federated gauge values; fleet gauges
	// are the sum across workers.
	gauges map[string]float64
}

// Dispatcher is the control plane: it owns the pending-cell queue, the
// active leases and their deadlines, and the per-sweep record fan-in. All
// state transitions happen under one mutex — the dispatcher's work per
// operation is tiny (the simulations happen on workers), so a single lock
// is simpler and plenty fast.
type Dispatcher struct {
	cfg    Config
	clock  Clock
	logger *slog.Logger

	mu     sync.Mutex
	sweeps map[string]*sweepState
	// recent retains finished sweeps (newest last) for the status surface,
	// bounded by cfg.RecentSweeps.
	recent  []*sweepState
	queue   []*cellTask // FIFO; expiry re-queues at the front
	leases  map[string]*lease
	workers map[string]*workerState
	seq     int64
}

// NewDispatcher builds a dispatcher. Call Run to start the lease reaper (or
// drive ExpireLeases manually, as the unit tests do).
func NewDispatcher(cfg Config) *Dispatcher {
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = DefaultLeaseTTL
	}
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = DefaultMaxRetries
	}
	if cfg.MaxRetries < 0 {
		cfg.MaxRetries = 0
	}
	if cfg.LeaseCells <= 0 {
		cfg.LeaseCells = DefaultLeaseCells
	}
	if cfg.MaxSweepCells <= 0 || cfg.MaxSweepCells > hotpotato.MaxSweepCells {
		cfg.MaxSweepCells = hotpotato.MaxSweepCells
	}
	if cfg.Heartbeat == 0 {
		cfg.Heartbeat = 10 * time.Second
	}
	if cfg.SweepSpanDepth == 0 {
		cfg.SweepSpanDepth = obs.DefaultSpanDepth
	}
	if cfg.RecentSweeps <= 0 {
		cfg.RecentSweeps = DefaultRecentSweeps
	}
	if cfg.Clock == nil {
		cfg.Clock = realClock{}
	}
	if cfg.Logger == nil {
		cfg.Logger = obs.NopLogger()
	}
	return &Dispatcher{
		cfg:     cfg,
		clock:   cfg.Clock,
		logger:  cfg.Logger,
		sweeps:  map[string]*sweepState{},
		leases:  map[string]*lease{},
		workers: map[string]*workerState{},
	}
}

// Run drives the lease reaper until ctx is done: every quarter TTL it
// re-queues the booked cells of expired leases. Tests skip Run and call
// ExpireLeases with a fake clock instead.
func (d *Dispatcher) Run(ctx context.Context) {
	interval := d.cfg.LeaseTTL / 4
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			d.ExpireLeases(d.clock.Now())
		}
	}
}

// Sweep is the client handle of one submitted sweep: the handler drains
// Records until it closes, then reads the final tallies.
type Sweep struct {
	// ID names the sweep (and its archive manifest).
	ID string
	// Total is the cell count.
	Total int

	d  *Dispatcher
	st *sweepState
}

// Records returns the stream of finished-cell records in completion order.
// The channel closes once every cell is accounted for (done, failed, or the
// sweep was canceled).
func (s *Sweep) Records() <-chan hotpotato.SweepResultRecord { return s.st.records }

// Counts returns the sweep's tallies so far (completed, failed, canceled,
// pruned, cache hits — archive hits and worker-cache hits both count).
func (s *Sweep) Counts() (completed, failed, canceled, pruned, cacheHits int) {
	s.d.mu.Lock()
	defer s.d.mu.Unlock()
	return s.st.completed, s.st.failed, s.st.canceledN, s.st.prunedN, s.st.cacheHits
}

// Cancel aborts the sweep: pending cells are dropped, leased cells' late
// results are discarded, and workers learn on their next heartbeat. Safe to
// call more than once; the handler calls it when its client disconnects.
func (s *Sweep) Cancel() { s.d.cancelSweep(s.st) }

// Submit registers a sweep's expanded cells with the control plane. Cells
// whose spec fails to hash are failed immediately; cells whose hash is in
// the archive replay immediately (Cached: true); the rest are queued for
// workers. requestID is echoed into the archive manifest. traceParent is the
// client's optional traceparent header value: a valid one makes the sweep
// join the client's trace; anything else mints a fresh trace ID.
func (d *Dispatcher) Submit(cells []hotpotato.SweepCell, requestID, traceParent string) *Sweep {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.seq++
	sw := &sweepState{
		id:          fmt.Sprintf("sweep-%d", d.seq),
		requestID:   requestID,
		total:       len(cells),
		outstanding: len(cells),
		records:     make(chan hotpotato.SweepResultRecord, len(cells)),
		began:       d.clock.Now(),
		perWorker:   map[string]*sweepWorkerStats{},
	}
	if d.cfg.SweepSpanDepth > 0 {
		tc, ok := obs.ParseTraceParent(traceParent)
		if !ok {
			tc = obs.NewTraceContext()
		}
		sw.traceID = tc.TraceID
		sw.spans = obs.NewSpanRecorder(d.cfg.SweepSpanDepth)
		sw.root = sw.spans.Start("sweep")
		sw.root.SetAttr("sweep_id", sw.id)
		sw.root.SetAttr("trace_id", sw.traceID)
		sw.root.SetAttr("cells", len(cells))
		if ok {
			sw.root.SetAttr("parent_span_id", tc.SpanID)
		}
		if requestID != "" {
			sw.root.SetAttr("request_id", requestID)
		}
	}
	d.sweeps[sw.id] = sw
	metricSweeps.Inc()
	metricCells.Add(int64(len(cells)))

	for _, cell := range cells {
		hash, err := hotpotato.SpecHash(cell.Spec)
		if err != nil {
			// Mirror ExecuteSweepCells: an invalid cell is reported, not run.
			d.finishCellLocked(&cellTask{sweep: sw, cell: cell}, hotpotato.SweepResultRecord{
				Type: "result", Index: cell.Index, Status: "failed",
				Error: fmt.Sprintf("cell %d: %v", cell.Index, err),
			})
			continue
		}
		if d.cfg.Archive != nil {
			if rec, ok := d.cfg.Archive.Get(hash); ok {
				rec.Index = cell.Index
				rec.Cached = true
				metricArchiveHits.Inc()
				d.finishCellLocked(&cellTask{sweep: sw, cell: cell, hash: hash}, rec)
				continue
			}
		}
		d.queue = append(d.queue, &cellTask{sweep: sw, cell: cell, hash: hash})
	}
	metricQueueDepth.Set(float64(len(d.queue)))
	if sw.outstanding == 0 {
		d.closeSweepLocked(sw)
	}
	return &Sweep{ID: sw.id, Total: len(cells), d: d, st: sw}
}

// Register admits a worker (or refreshes a known one) and returns its
// identity plus the cadence contract.
func (d *Dispatcher) Register(req RegisterRequest) RegisterResponse {
	d.mu.Lock()
	defer d.mu.Unlock()
	id := req.ID
	if id == "" {
		d.seq++
		id = fmt.Sprintf("worker-%d", d.seq)
	}
	w := d.touchWorkerLocked(id)
	w.capacity = req.Capacity
	d.logger.Info("fabric worker registered", "worker", id, "capacity", req.Capacity)
	return RegisterResponse{
		ID:         id,
		LeaseTTLMS: d.cfg.LeaseTTL.Milliseconds(),
		// A third of the TTL tolerates two consecutive lost heartbeats.
		HeartbeatMS: (d.cfg.LeaseTTL / 3).Milliseconds(),
	}
}

// touchWorkerLocked records liveness for workerID, creating the state on
// first sight (unknown workers are admitted implicitly so a dispatcher
// restart does not strand running workers). Callers hold d.mu.
func (d *Dispatcher) touchWorkerLocked(workerID string) *workerState {
	w, known := d.workers[workerID]
	if !known {
		w = &workerState{id: workerID, registered: d.clock.Now()}
		d.workers[workerID] = w
		metricWorkers.Add(1)
	}
	w.lastSeen = d.clock.Now()
	return w
}

// Lease books up to maxCells pending cells (all from one sweep) to workerID.
// nil means no work is pending. Unknown workers are registered implicitly so
// a dispatcher restart does not strand running workers.
func (d *Dispatcher) Lease(workerID string, maxCells int) *LeaseGrant {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.touchWorkerLocked(workerID)
	if maxCells <= 0 || maxCells > d.cfg.LeaseCells {
		maxCells = d.cfg.LeaseCells
	}
	// Drop canceled sweeps' cells from the head first, so a dead sweep never
	// occupies a worker.
	for len(d.queue) > 0 && d.queue[0].sweep.canceled {
		d.queue = d.queue[1:]
	}
	if len(d.queue) == 0 {
		metricQueueDepth.Set(0)
		return nil
	}
	sw := d.queue[0].sweep
	grant := &LeaseGrant{TTLMS: d.cfg.LeaseTTL.Milliseconds(), SweepID: sw.id}
	tasks := map[int]*cellTask{}
	kept := d.queue[:0]
	for _, t := range d.queue {
		if len(grant.Cells) < maxCells && t.sweep == sw && !t.sweep.canceled {
			t.state = cellLeased
			t.bookings++
			tasks[t.cell.Index] = t
			grant.Cells = append(grant.Cells, t.cell)
			continue
		}
		kept = append(kept, t)
	}
	d.queue = kept
	metricQueueDepth.Set(float64(len(d.queue)))

	d.seq++
	grant.ID = fmt.Sprintf("lease-%d", d.seq)
	l := &lease{
		id: grant.ID, workerID: workerID, sweep: sw,
		cells: tasks, deadline: d.clock.Now().Add(d.cfg.LeaseTTL),
	}
	if sw.spans != nil {
		l.span = sw.root.StartChild("lease")
		l.span.SetAttr("lease", grant.ID)
		l.span.SetAttr("worker", workerID)
		l.span.SetAttr("cells", len(grant.Cells))
		// Workers parent their per-cell spans under this lease span: same
		// trace, lease span as parent.
		grant.TraceParent = obs.TraceContext{TraceID: sw.traceID}.Child(l.span.ID()).Header()
	}
	d.leases[grant.ID] = l
	metricLeases.Inc()
	d.logger.Info("fabric lease granted",
		"lease", grant.ID, "worker", workerID, "sweep", sw.id, "cells", len(grant.Cells))
	return grant
}

// Heartbeat extends leaseID's deadline. ok=false means the lease is unknown
// (expired or its sweep is gone) and the worker must abandon its cells;
// canceled=true keeps the lease but tells the worker to stop executing.
func (d *Dispatcher) Heartbeat(leaseID string) (ok, canceled bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	l, found := d.leases[leaseID]
	if !found {
		return false, false
	}
	l.deadline = d.clock.Now().Add(d.cfg.LeaseTTL)
	d.touchWorkerLocked(l.workerID)
	return true, l.sweep.canceled
}

// Results consumes finished-cell records for leaseID. First result wins: a
// record for an already-finished cell (a re-leased cell completing twice) is
// dropped. accepted counts consumed records; ok=false means the lease is
// unknown and the worker should abandon the rest.
func (d *Dispatcher) Results(leaseID string, recs []hotpotato.SweepResultRecord) (accepted int, ok bool) {
	return d.PostResults(ResultsRequest{LeaseID: leaseID, Records: recs})
}

// PostResults is Results plus the observability sidecars of the wire form:
// worker span subtrees are grafted into the sweep's merged trace (only for
// cells whose record was accepted — a duplicate result must not duplicate
// its subtree) and twin-drift reports are tallied into the sweep status.
func (d *Dispatcher) PostResults(req ResultsRequest) (accepted int, ok bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	l, found := d.leases[req.LeaseID]
	if !found {
		return 0, false
	}
	now := d.clock.Now()
	l.deadline = now.Add(d.cfg.LeaseTTL) // results are heartbeats too
	sw := l.sweep
	d.touchWorkerLocked(l.workerID)
	acceptedIdx := map[int]bool{}
	for _, rec := range req.Records {
		t, mine := l.cells[rec.Index]
		if !mine || t.state != cellLeased {
			continue
		}
		accepted++
		acceptedIdx[rec.Index] = true
		delete(l.cells, rec.Index)
		d.finishCellLocked(t, rec)
		if d.cfg.Archive != nil && rec.Status == "ok" && !rec.Cached && t.hash != "" {
			if err := d.cfg.Archive.Put(t.hash, rec); err != nil {
				d.logger.Warn("fabric archive write failed", "hash", t.hash, "error", err.Error())
			}
		}
	}
	if accepted > 0 {
		d.workers[l.workerID].cellsDone += int64(accepted)
		ws := sw.perWorker[l.workerID]
		if ws == nil {
			ws = &sweepWorkerStats{first: now}
			sw.perWorker[l.workerID] = ws
		}
		ws.done += accepted
		ws.last = now
	}
	if sw.spans != nil {
		for _, cs := range req.Spans {
			if !acceptedIdx[cs.Index] || len(cs.Spans) == 0 {
				continue
			}
			// Stamp authoritative worker attribution on the batch roots (the
			// lease, not the request body, says who executed the cell).
			inBatch := map[obs.SpanID]bool{}
			for _, r := range cs.Spans {
				inBatch[r.ID] = true
			}
			for i, r := range cs.Spans {
				if r.Parent != 0 && inBatch[r.Parent] {
					continue
				}
				if cs.Spans[i].Attrs == nil {
					cs.Spans[i].Attrs = map[string]any{}
				}
				cs.Spans[i].Attrs["worker"] = l.workerID
			}
			grafted := sw.spans.Graft(l.span.ID(), cs.Spans)
			metricSpansGrafted.Add(int64(grafted))
			sw.spanExportDropped += cs.Dropped
		}
	}
	for _, dr := range req.Drift {
		sw.drift.checks++
		sw.drift.sumResidual += dr.ResidualC
		if abs := dr.ResidualC; abs < 0 {
			if -abs > sw.drift.maxAbs {
				sw.drift.maxAbs = -abs
			}
		} else if abs > sw.drift.maxAbs {
			sw.drift.maxAbs = abs
		}
		if dr.Violated {
			sw.drift.violations++
		}
	}
	if len(l.cells) == 0 {
		l.span.End()
		delete(d.leases, req.LeaseID)
	}
	return accepted, true
}

// ExpireLeases re-queues the unfinished cells of every lease whose deadline
// is before now, and returns how many leases expired. Cells past their retry
// budget are failed instead of re-queued. The reaper calls this on a timer;
// unit tests call it directly with a fake clock.
func (d *Dispatcher) ExpireLeases(now time.Time) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	expired := 0
	for id, l := range d.leases {
		if !l.deadline.Before(now) {
			continue
		}
		expired++
		metricLeasesExpired.Inc()
		requeued, failed := 0, 0
		for _, t := range l.cells {
			if t.sweep.canceled {
				d.finishCellLocked(t, hotpotato.SweepResultRecord{
					Type: "result", Index: t.cell.Index, Hash: t.hash, Status: "canceled",
					Error: "sweep canceled",
				})
				continue
			}
			if t.bookings > d.cfg.MaxRetries {
				failed++
				d.finishCellLocked(t, hotpotato.SweepResultRecord{
					Type: "result", Index: t.cell.Index, Hash: t.hash, Status: "failed",
					Error: fmt.Sprintf("cell %d: lease expired %d times (worker died or stopped heartbeating)",
						t.cell.Index, t.bookings),
				})
				continue
			}
			t.state = cellPending
			requeued++
			t.sweep.requeues++
			metricCellsRequeued.Inc()
			// Front of the queue: recovered cells are the sweep's critical
			// path, so they go out on the next lease.
			d.queue = append([]*cellTask{t}, d.queue...)
		}
		if l.span != nil {
			l.span.SetError(fmt.Errorf("lease expired (worker %s stopped heartbeating); %d cells requeued, %d failed",
				l.workerID, requeued, failed))
			l.span.End()
		}
		delete(d.leases, id)
		d.logger.Warn("fabric lease expired",
			"lease", id, "worker", l.workerID, "requeued", requeued, "failed", failed)
	}
	metricQueueDepth.Set(float64(len(d.queue)))
	return expired
}

// cancelSweep aborts sw (idempotent): pending cells leave the queue as
// canceled, and the records channel closes once nothing remains outstanding.
func (d *Dispatcher) cancelSweep(sw *sweepState) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if sw.closed || sw.canceled {
		return
	}
	sw.canceled = true
	kept := d.queue[:0]
	for _, t := range d.queue {
		if t.sweep != sw {
			kept = append(kept, t)
			continue
		}
		d.finishCellLocked(t, hotpotato.SweepResultRecord{
			Type: "result", Index: t.cell.Index, Hash: t.hash, Status: "canceled",
			Error: "sweep canceled",
		})
	}
	d.queue = kept
	metricQueueDepth.Set(float64(len(d.queue)))
	// Leased cells are finished as canceled immediately — the client is gone,
	// so there is no reason to hold its handler until a lease resolves. The
	// leases themselves are dropped; their workers learn from the next
	// heartbeat's OK=false and abandon the cells (finishCellLocked's state
	// guard discards any result that still arrives).
	for id, l := range d.leases {
		if l.sweep != sw {
			continue
		}
		for _, t := range l.cells {
			d.finishCellLocked(t, hotpotato.SweepResultRecord{
				Type: "result", Index: t.cell.Index, Hash: t.hash, Status: "canceled",
				Error: "sweep canceled",
			})
		}
		l.span.End()
		delete(d.leases, id)
	}
	d.logger.Info("fabric sweep canceled", "sweep", sw.id)
}

// finishCellLocked records one cell outcome: tallies, stream emit, and sweep
// close when it was the last. A cell finishes exactly once — later calls
// (a late result for a canceled sweep's cell) are dropped. Callers hold d.mu.
func (d *Dispatcher) finishCellLocked(t *cellTask, rec hotpotato.SweepResultRecord) {
	if t.state == cellDone || t.state == cellFailed {
		return
	}
	sw := t.sweep
	switch rec.Status {
	case "ok":
		t.state = cellDone
		sw.completed++
		metricCellsCompleted.Inc()
	case "canceled":
		t.state = cellDone
		sw.canceledN++
	case "pruned":
		t.state = cellDone
		sw.prunedN++
	default:
		t.state = cellFailed
		sw.failed++
		metricCellsFailed.Inc()
	}
	if rec.Cached {
		sw.cacheHits++
	}
	sw.outstanding--
	if !sw.closed && !sw.canceled {
		// Buffered to total and each cell finishes exactly once, so this
		// never blocks.
		sw.records <- rec
	}
	if sw.outstanding == 0 {
		d.closeSweepLocked(sw)
	}
}

// closeSweepLocked seals a finished sweep: closes its record stream, writes
// the archive manifest, and moves the sweep from the active registry to the
// bounded recent ring (the status surface keeps answering for it; memory
// stays bounded because the ring evicts). Callers hold d.mu.
func (d *Dispatcher) closeSweepLocked(sw *sweepState) {
	if sw.closed {
		return
	}
	sw.closed = true
	sw.finished = d.clock.Now()
	close(sw.records)
	if sw.canceled {
		sw.root.SetError(fmt.Errorf("sweep canceled"))
	}
	sw.root.End()
	delete(d.sweeps, sw.id)
	d.recent = append(d.recent, sw)
	if len(d.recent) > d.cfg.RecentSweeps {
		d.recent = append(d.recent[:0], d.recent[len(d.recent)-d.cfg.RecentSweeps:]...)
	}
	if d.cfg.Archive != nil && !sw.canceled {
		m := Manifest{
			SweepID: sw.id, RequestID: sw.requestID, TraceID: sw.traceID,
			Total: sw.total, Completed: sw.completed, Failed: sw.failed,
			Canceled:  sw.canceledN,
			Pruned:    sw.prunedN,
			CacheHits: sw.cacheHits,
			Requeues:  sw.requeues,
			ElapsedMS: float64(sw.finished.Sub(sw.began).Nanoseconds()) / 1e6,
		}
		if err := d.cfg.Archive.WriteManifest(sw.id, m); err != nil {
			d.logger.Warn("fabric manifest write failed", "sweep", sw.id, "error", err.Error())
		}
	}
	d.logger.Info("fabric sweep finished",
		"sweep", sw.id, "completed", sw.completed, "failed", sw.failed,
		"canceled", sw.canceledN, "cache_hits", sw.cacheHits)
}

// Stats is the dispatcher's health snapshot.
type Stats struct {
	// Workers is how many distinct workers have registered.
	Workers int `json:"workers"`
	// QueuedCells is the pending-cell queue depth.
	QueuedCells int `json:"queued_cells"`
	// ActiveLeases is how many leases are currently booked.
	ActiveLeases int `json:"active_leases"`
	// ActiveSweeps is how many sweeps are still streaming.
	ActiveSweeps int `json:"active_sweeps"`
}

// Snapshot returns the current Stats (the /healthz body).
func (d *Dispatcher) Snapshot() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return Stats{
		Workers:      len(d.workers),
		QueuedCells:  len(d.queue),
		ActiveLeases: len(d.leases),
		// Closed sweeps leave the registry, so everything in it is active.
		ActiveSweeps: len(d.sweeps),
	}
}
