package obs

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("test_total", "a counter")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	g := r.NewGauge("test_gauge", "a gauge")
	g.Set(3.5)
	g.Add(-1)
	if got := g.Value(); got != 2.5 {
		t.Errorf("gauge = %v, want 2.5", got)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("dup", "")
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	r.NewGauge("dup", "")
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("lat_seconds", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-56.05) > 1e-9 {
		t.Errorf("sum = %v, want 56.05", h.Sum())
	}
	bounds, cum := h.Buckets()
	wantBounds := []float64{0.1, 1, 10, math.Inf(1)}
	wantCum := []int64{1, 3, 4, 5}
	for i := range wantBounds {
		if bounds[i] != wantBounds[i] || cum[i] != wantCum[i] {
			t.Errorf("bucket %d = (%v, %d), want (%v, %d)", i, bounds[i], cum[i], wantBounds[i], wantCum[i])
		}
	}
}

func TestHistogramRejectsBadBounds(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Error("non-ascending bounds did not panic")
		}
	}()
	r.NewHistogram("bad", "", []float64{1, 1})
}

// The hot-path operations must not allocate: the slice loop and the ring
// scan hold 0 allocs/op regression tests that these calls now sit inside.
func TestMetricOpsDoNotAllocate(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("c_total", "")
	g := r.NewGauge("g", "")
	h := r.NewHistogram("h_seconds", "", []float64{1, 2, 3})
	if a := testing.AllocsPerRun(100, func() { c.Inc(); c.Add(2) }); a != 0 {
		t.Errorf("counter ops allocate %v/op", a)
	}
	if a := testing.AllocsPerRun(100, func() { g.Set(1.5); g.Add(0.5) }); a != 0 {
		t.Errorf("gauge ops allocate %v/op", a)
	}
	if a := testing.AllocsPerRun(100, func() { h.Observe(2.5); h.Observe(99) }); a != 0 {
		t.Errorf("histogram ops allocate %v/op", a)
	}
}

func TestConcurrentObservation(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("conc_total", "")
	g := r.NewGauge("conc_gauge", "")
	h := r.NewHistogram("conc_seconds", "", []float64{0.5})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(0.25)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("counter = %d, want 8000", c.Value())
	}
	if g.Value() != 8000 {
		t.Errorf("gauge = %v, want 8000", g.Value())
	}
	if h.Count() != 8000 || math.Abs(h.Sum()-2000) > 1e-6 {
		t.Errorf("histogram count/sum = %d/%v, want 8000/2000", h.Count(), h.Sum())
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("runs_total", "runs started")
	c.Add(3)
	g := r.NewGauge("peak_celsius", "peak temperature")
	g.Set(71.25)
	h := r.NewHistogram("req_seconds", "request latency", []float64{0.5, 2})
	h.Observe(0.1)
	h.Observe(1)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE runs_total counter",
		"runs_total 3",
		"# TYPE peak_celsius gauge",
		"peak_celsius 71.25",
		"# TYPE req_seconds histogram",
		`req_seconds_bucket{le="0.5"} 1`,
		`req_seconds_bucket{le="2"} 2`,
		`req_seconds_bucket{le="+Inf"} 2`,
		"req_seconds_sum 1.1",
		"req_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// Sorted by name: peak_celsius < req_seconds < runs_total.
	if !(strings.Index(out, "peak_celsius") < strings.Index(out, "req_seconds") &&
		strings.Index(out, "req_seconds") < strings.Index(out, "runs_total")) {
		t.Errorf("output not sorted by metric name:\n%s", out)
	}
}

func TestSnapshotIsJSONEncodable(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("a_total", "").Add(2)
	r.NewGauge("b", "").Set(math.Inf(-1)) // non-finite must not break JSON
	r.NewHistogram("c_seconds", "", []float64{1}).Observe(0.5)

	snap := r.Snapshot()
	b, err := json.Marshal(snap)
	if err != nil {
		t.Fatalf("snapshot not JSON-encodable: %v", err)
	}
	var back map[string]any
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back["a_total"].(float64) != 2 {
		t.Errorf("a_total = %v", back["a_total"])
	}
	if back["b"].(string) != "-Inf" {
		t.Errorf("non-finite gauge = %v, want \"-Inf\"", back["b"])
	}
	hist := back["c_seconds"].(map[string]any)
	if hist["count"].(float64) != 1 {
		t.Errorf("histogram count = %v", hist["count"])
	}
}

func TestDefaultRegistryRegistersPackageMetrics(t *testing.T) {
	// The instrumented packages register on Default at init; a plain build of
	// this module must expose at least the engine's counters.
	var sb strings.Builder
	if err := Default().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	_ = sb.String() // content asserted by the packages' own tests
}
