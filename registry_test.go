package hotpotato_test

import (
	"context"
	"os"
	"reflect"
	"sort"
	"strings"
	"testing"

	hotpotato "repro"
)

// TestEveryRegisteredPolicyRunsAnEpoch drives each registry entry through the
// full declarative path on a 4×4 chip: spec → AutoPin → construction → a real
// (tiny) run. A policy that registers but cannot actually schedule — or a
// registry edit that drops or reorders a name — fails here, not in an
// experiment harness hours later.
func TestEveryRegisteredPolicyRunsAnEpoch(t *testing.T) {
	names := hotpotato.SchedulerNames()
	want := []string{"hotpotato", "hotpotato-dvfs", "pcmig", "reactive", "rotation", "static", "tsp"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("SchedulerNames() = %v, want %v", names, want)
	}
	if !sort.StringsAreSorted(names) {
		t.Fatalf("SchedulerNames() not sorted: %v", names)
	}

	plat, err := hotpotato.NewPlatform(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			spec := hotpotato.RunSpec{
				Scheduler: hotpotato.SchedulerSpec{Name: name},
				Workload: hotpotato.WorkloadSpec{
					Kind:  hotpotato.WorkloadExplicit,
					Tasks: []hotpotato.TaskSpec{{Bench: "blackscholes", Threads: 2, WorkScale: 0.05}},
				},
			}
			spec.Platform.Width, spec.Platform.Height = 4, 4
			res, err := hotpotato.ExecuteSpecOnPlatform(context.Background(), plat, spec)
			if err != nil {
				t.Fatalf("run failed: %v", err)
			}
			if res.SchedulerInvocations < 1 {
				t.Fatalf("scheduler never invoked (%d epochs)", res.SchedulerInvocations)
			}
			if res.Makespan <= 0 {
				t.Fatalf("implausible result: %+v", res)
			}
		})
	}
}

// TestCLIUsageListsSchedulersFromRegistry pins the CLIs' -sched help text to
// the registry: each command must generate its scheduler list by calling
// SchedulerNames, so a newly registered policy shows up in usage output
// without anyone remembering to edit three strings.
func TestCLIUsageListsSchedulersFromRegistry(t *testing.T) {
	for _, path := range []string{
		"cmd/hotpotato-sim/main.go",
		"cmd/experiments/main.go",
		"cmd/thermal-trace/main.go",
	} {
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("reading %s: %v", path, err)
		}
		if !strings.Contains(string(src), "SchedulerNames()") {
			t.Errorf("%s does not derive its usage text from SchedulerNames()", path)
		}
	}
}
