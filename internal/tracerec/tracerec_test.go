package tracerec

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Error("zero stride accepted")
	}
	if _, err := New(-1); err == nil {
		t.Error("negative stride accepted")
	}
}

func TestRecorderAgainstLiveSimulation(t *testing.T) {
	plat, err := sim.NewPlatform(sim.DefaultPlatformConfig(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	b, err := workload.ByName("blackscholes")
	if err != nil {
		t.Fatal(err)
	}
	task, err := workload.NewTask(0, b, 2, 0, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	pins := map[sim.ThreadID]int{
		{Task: 0, Thread: 0}: 5,
		{Task: 0, Thread: 1}: 10,
	}
	s, err := sim.New(plat, sim.DefaultConfig(), sched.NewStatic(pins, 0), []*workload.Task{task})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := New(3)
	if err != nil {
		t.Fatal(err)
	}
	s.SetTrace(rec.Hook())
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}

	if rec.Len() == 0 {
		t.Fatal("nothing recorded")
	}
	if rec.Cores() != 16 {
		t.Fatalf("cores = %d", rec.Cores())
	}
	// Stride honoured: roughly a third of the slices.
	totalSlices := int(res.SimulatedTime/sim.DefaultConfig().TimeSlice + 0.5)
	if rec.Len() > totalSlices/3+2 {
		t.Errorf("recorded %d of %d slices with stride 3", rec.Len(), totalSlices)
	}

	// Times strictly increasing.
	times := rec.Times()
	for i := 1; i < len(times); i++ {
		if times[i] <= times[i-1] {
			t.Fatal("times not monotone")
		}
	}

	// The powered core's series must heat above ambient; the recorder's max
	// series must bound every individual series.
	series5 := rec.TempSeries(5)
	maxSeries := rec.MaxTempSeries()
	if series5[len(series5)-1] <= plat.Thermal.Ambient() {
		t.Error("powered core never heated in the trace")
	}
	for i := range maxSeries {
		if series5[i] > maxSeries[i]+1e-9 {
			t.Fatal("max series not an upper bound")
		}
	}

	// Total power must at least cover idle for all cores.
	for _, p := range rec.TotalPowerSeries() {
		if p < 16*plat.Power.IdleWatts-1e-9 {
			t.Fatalf("total power %v below idle floor", p)
		}
	}

	// Summary is coherent with the series.
	sum := rec.TempSummary()
	if sum.N != rec.Len() || sum.Max < sum.Min {
		t.Errorf("summary %+v", sum)
	}
}

func TestCSVOutputs(t *testing.T) {
	rec, err := New(1)
	if err != nil {
		t.Fatal(err)
	}
	hook := rec.Hook()
	hook(0.001, []float64{50, 51}, []float64{1, 2}, []float64{4e9, 3e9})
	hook(0.002, []float64{52, 50}, []float64{2, 1}, []float64{4e9, 4e9})

	var buf bytes.Buffer
	if err := rec.WriteTemperatureCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "time_ms, core0_C, core1_C") {
		t.Errorf("temperature header: %q", out)
	}
	if !strings.Contains(out, "52.000") {
		t.Errorf("missing sample: %q", out)
	}

	buf.Reset()
	if err := rec.WriteSummaryCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out = buf.String()
	if !strings.Contains(out, "max_temp_C") || !strings.Contains(out, "3.00, 4.00") {
		t.Errorf("summary CSV: %q", out)
	}
}

func TestCSVEmptyRecorderErrors(t *testing.T) {
	rec, err := New(1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rec.WriteTemperatureCSV(&buf); err == nil {
		t.Error("empty temperature CSV accepted")
	}
	if err := rec.WriteSummaryCSV(&buf); err == nil {
		t.Error("empty summary CSV accepted")
	}
}

func TestHeatmapRendering(t *testing.T) {
	temps := []float64{45, 55, 65, 75}
	out, err := Heatmap(temps, 2, 2, 45, 75)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 { // 2 rows + legend
		t.Fatalf("lines = %d: %q", len(lines), out)
	}
	if len(lines[0]) != 4 { // 2 cores × 2 glyphs
		t.Fatalf("row width = %d", len(lines[0]))
	}
	// Coldest cell uses the coldest glyph, hottest the hottest.
	if lines[0][0] != ' ' {
		t.Errorf("cold cell glyph %q", lines[0][0])
	}
	if lines[1][2] != '@' {
		t.Errorf("hot cell glyph %q", lines[1][2])
	}
	if !strings.Contains(out, "scale:") {
		t.Error("legend missing")
	}
}

func TestHeatmapValidation(t *testing.T) {
	if _, err := Heatmap([]float64{1}, 2, 2, 0, 1); err == nil {
		t.Error("wrong-length temps accepted")
	}
	if _, err := Heatmap([]float64{1, 2, 3, 4}, 0, 4, 0, 1); err == nil {
		t.Error("zero width accepted")
	}
	if _, err := Heatmap([]float64{1, 2, 3, 4}, 2, 2, 5, 5); err == nil {
		t.Error("empty range accepted")
	}
}

func TestHeatmapClamping(t *testing.T) {
	out, err := Heatmap([]float64{-100, 1000}, 2, 1, 40, 80)
	if err != nil {
		t.Fatal(err)
	}
	row := strings.Split(out, "\n")[0]
	if row[0] != ' ' || row[2] != '@' {
		t.Errorf("clamping wrong: %q", row)
	}
}

func TestHottestSampleHeatmap(t *testing.T) {
	rec, err := New(1)
	if err != nil {
		t.Fatal(err)
	}
	hook := rec.Hook()
	hook(0.001, []float64{50, 50, 50, 50}, make([]float64, 4), make([]float64, 4))
	hook(0.002, []float64{50, 72, 50, 50}, make([]float64, 4), make([]float64, 4)) // hottest
	hook(0.003, []float64{55, 55, 55, 55}, make([]float64, 4), make([]float64, 4))
	out, err := rec.HottestSampleHeatmap(2, 2, 45, 75)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "t = 2.0 ms") || !strings.Contains(out, "72.00") {
		t.Errorf("hottest sample heatmap: %q", out)
	}
	empty, _ := New(1)
	if _, err := empty.HottestSampleHeatmap(2, 2, 45, 75); err == nil {
		t.Error("empty recorder heatmap accepted")
	}
}
