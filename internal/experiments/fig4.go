package experiments

import (
	"fmt"

	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Fig4aRow is one benchmark of the homogeneous full-load comparison.
type Fig4aRow struct {
	Benchmark          string
	HotPotatoMakespan  float64 // seconds
	PCMigMakespan      float64
	NormalizedMakespan float64 // HotPotato / PCMig (the paper's Fig. 4a y-axis)
	SpeedupPercent     float64 // (PCMig − HotPotato) / PCMig × 100
	HotPotatoPeak      float64 // °C
	PCMigPeak          float64
	HotPotatoEnergy    float64 // J (core energy over the whole run)
	PCMigEnergy        float64
}

// Fig4a reproduces the homogeneous full-load evaluation: the chip is fully
// loaded with vari-sized (2/4/8-thread) instances of one benchmark, all
// arriving at t = 0 (a closed system), and the makespans of HotPotato and
// PCMig are compared.
func Fig4a(opts Options) ([]Fig4aRow, error) {
	opts = opts.withDefaults()
	total := opts.GridEdge * opts.GridEdge
	var rows []Fig4aRow
	for _, b := range workload.PARSEC() {
		specs, err := workload.HomogeneousFullLoad(b, total, []int{2, 4, 8})
		if err != nil {
			return nil, err
		}
		hp, pc, err := runPair(opts,
			func(p *sim.Platform) sim.Scheduler { return sched.NewHotPotato(p, opts.TDTM) },
			func(*sim.Platform) sim.Scheduler { return sched.NewPCMig(opts.TDTM) },
			specs, sim.DefaultConfig())
		if err != nil {
			return nil, fmt.Errorf("experiments: fig4a %s: %w", b.Name, err)
		}
		rows = append(rows, Fig4aRow{
			Benchmark:          b.Name,
			HotPotatoMakespan:  hp.Makespan,
			PCMigMakespan:      pc.Makespan,
			NormalizedMakespan: hp.Makespan / pc.Makespan,
			SpeedupPercent:     (pc.Makespan - hp.Makespan) / pc.Makespan * 100,
			HotPotatoPeak:      hp.PeakTemp,
			PCMigPeak:          pc.PeakTemp,
			HotPotatoEnergy:    hp.EnergyJ,
			PCMigEnergy:        pc.EnergyJ,
		})
	}
	return rows, nil
}

// Fig4aAverageSpeedup returns the mean speedup across rows (the paper's
// headline 10.72%).
func Fig4aAverageSpeedup(rows []Fig4aRow) float64 {
	if len(rows) == 0 {
		return 0
	}
	var sum float64
	for _, r := range rows {
		sum += r.SpeedupPercent
	}
	return sum / float64(len(rows))
}

// Fig4bRow is one load level of the heterogeneous open-system comparison.
type Fig4bRow struct {
	ArrivalRate       float64 // tasks per second
	HotPotatoResponse float64 // mean response time, seconds
	PCMigResponse     float64
	SpeedupPercent    float64
}

// Fig4b reproduces the heterogeneous evaluation: a random 20-benchmark
// multi-program multi-threaded workload arrives as a Poisson process at each
// of the given rates (an open system under varying load), and mean response
// times of HotPotato and PCMig are compared. Deterministic for a fixed seed.
func Fig4b(opts Options, rates []float64, taskCount int, seed int64) ([]Fig4bRow, error) {
	opts = opts.withDefaults()
	if taskCount <= 0 {
		taskCount = 20
	}
	var rows []Fig4bRow
	for _, rate := range rates {
		specs, err := workload.RandomMix(taskCount, rate, seed)
		if err != nil {
			return nil, err
		}
		hp, pc, err := runPair(opts,
			func(p *sim.Platform) sim.Scheduler { return sched.NewHotPotato(p, opts.TDTM) },
			func(*sim.Platform) sim.Scheduler { return sched.NewPCMig(opts.TDTM) },
			specs, sim.DefaultConfig())
		if err != nil {
			return nil, fmt.Errorf("experiments: fig4b rate %.0f: %w", rate, err)
		}
		rows = append(rows, Fig4bRow{
			ArrivalRate:       rate,
			HotPotatoResponse: hp.AvgResponse,
			PCMigResponse:     pc.AvgResponse,
			SpeedupPercent:    (pc.AvgResponse - hp.AvgResponse) / pc.AvgResponse * 100,
		})
	}
	return rows, nil
}

// DefaultFig4bRates spans under-loaded to over-loaded (tasks/second).
func DefaultFig4bRates() []float64 { return []float64{25, 50, 100, 200, 400} }

// Fig4bAggRow aggregates one load level over several workload seeds.
type Fig4bAggRow struct {
	ArrivalRate   float64
	MeanSpeedup   float64 // percent
	SpeedupCI95   float64 // ± half-width, percent
	MeanHotPotato float64 // seconds
	MeanPCMig     float64
	Seeds         int
}

// Fig4bMultiSeed repeats the heterogeneous comparison over several random
// workloads and reports mean speedup with a 95% confidence interval — the
// statistically honest form of Fig. 4(b).
func Fig4bMultiSeed(opts Options, rates []float64, taskCount int, seeds []int64) ([]Fig4bAggRow, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("experiments: need at least one seed")
	}
	perRate := make(map[float64][]Fig4bRow)
	for _, seed := range seeds {
		rows, err := Fig4b(opts, rates, taskCount, seed)
		if err != nil {
			return nil, err
		}
		for _, r := range rows {
			perRate[r.ArrivalRate] = append(perRate[r.ArrivalRate], r)
		}
	}
	var out []Fig4bAggRow
	for _, rate := range rates {
		rows := perRate[rate]
		speedups := make([]float64, len(rows))
		hps := make([]float64, len(rows))
		pcs := make([]float64, len(rows))
		for i, r := range rows {
			speedups[i] = r.SpeedupPercent
			hps[i] = r.HotPotatoResponse
			pcs[i] = r.PCMigResponse
		}
		out = append(out, Fig4bAggRow{
			ArrivalRate:   rate,
			MeanSpeedup:   stats.Mean(speedups),
			SpeedupCI95:   stats.ConfidenceInterval95(speedups),
			MeanHotPotato: stats.Mean(hps),
			MeanPCMig:     stats.Mean(pcs),
			Seeds:         len(seeds),
		})
	}
	return out, nil
}
