package sched

import (
	"sort"

	"repro/internal/sim"
)

// PCMig reproduces the state-of-the-art baseline scheduler for S-NUCA
// many-cores ([10], [21], building on PCGov [6]):
//
//   - cache-aware mapping: queued tasks are admitted FIFO (gang admission);
//     within a task, higher-CPI (memory-bound) threads get the lowest-AMD
//     free cores, where the distributed LLC is closest;
//   - TSP-based power budgeting: every control epoch the TSP budget for the
//     currently active cores is recomputed and each active core's DVFS level
//     is set to the highest frequency whose power fits the budget
//     (fine-grained 100 MHz steps, §VI);
//   - asynchronous on-demand thread migration: when a core approaches the
//     DTM threshold, its thread is migrated to the coolest free core — the
//     "measure of last resort" the paper describes.
type PCMig struct {
	tdtm float64
	// margin is how close (K) a core may get to TDTM before the on-demand
	// migration fires.
	margin float64
	// minGain is the minimum temperature advantage (K) a destination core
	// must offer for a migration to be worthwhile.
	minGain float64
	epoch   float64

	assignment map[sim.ThreadID]int
	lastFreq   map[sim.ThreadID]float64
}

// PCMigOption customises the baseline.
type PCMigOption func(*PCMig)

// WithPCMigEpoch sets the control epoch (default 1 ms).
func WithPCMigEpoch(epoch float64) PCMigOption {
	return func(p *PCMig) { p.epoch = epoch }
}

// WithPCMigMargin sets the migration trigger margin in K (default 2).
func WithPCMigMargin(margin float64) PCMigOption {
	return func(p *PCMig) { p.margin = margin }
}

// NewPCMig builds the baseline for the given DTM threshold.
func NewPCMig(tdtm float64, opts ...PCMigOption) *PCMig {
	p := &PCMig{
		tdtm:       tdtm,
		margin:     2,
		minGain:    2,
		epoch:      1e-3,
		assignment: map[sim.ThreadID]int{},
		lastFreq:   map[sim.ThreadID]float64{},
	}
	for _, o := range opts {
		o(p)
	}
	return p
}

// Name implements sim.Scheduler.
func (p *PCMig) Name() string { return "pcmig" }

// Decide implements sim.Scheduler.
func (p *PCMig) Decide(st *sim.State) sim.Decision {
	live := liveSet(st)

	// Drop departed threads.
	for id := range p.assignment {
		if _, ok := live[id]; !ok {
			delete(p.assignment, id)
			delete(p.lastFreq, id)
		}
	}

	// Gang admission, FIFO: map each queued task's threads onto free cores,
	// memory-bound threads to low-AMD cores first (PCGov's cache-aware rule).
	n := st.Platform.NumCores()
	for _, group := range queuedTasks(st) {
		free := coresByAMD(st, freeCores(n, p.assignment))
		if len(free) < len(group.threads) {
			break // head-of-line blocking keeps admission fair across schedulers
		}
		threads := append([]sim.ThreadInfo(nil), group.threads...)
		sort.SliceStable(threads, func(a, b int) bool {
			return threads[a].CPI > threads[b].CPI
		})
		for i, th := range threads {
			p.assignment[th.ID] = free[i]
		}
	}

	// Performance-driven migration (the prediction-based migrations of
	// [10], [21]): when cores free up, the thread with the highest effective
	// CPI — the one losing the most to LLC distance — moves to the best
	// free lower-AMD core, provided the steady-state prediction stays safe.
	// One move per control epoch, mirroring the baseline's caution.
	p.performanceMigration(st, live)

	// Asynchronous on-demand migration: threads on cores within margin of
	// TDTM move to the coolest free core if it is clearly cooler. Iterate in
	// deterministic ID order — map order would make tie-breaks (and thus
	// whole runs) irreproducible.
	free := freeCores(n, p.assignment)
	for _, id := range sortedIDs(p.assignment) {
		core := p.assignment[id]
		if st.CoreTemps[core] < p.tdtm-p.margin {
			continue
		}
		bestCore, bestTemp := -1, st.CoreTemps[core]-p.minGain
		bestIdx := -1
		for i, c := range free {
			if st.CoreTemps[c] < bestTemp {
				bestCore, bestTemp = c, st.CoreTemps[c]
				bestIdx = i
			}
		}
		if bestCore >= 0 {
			free[bestIdx] = core // the vacated core becomes free
			p.assignment[id] = bestCore
		}
	}

	// TSP-based DVFS on the active cores. The budget is enforced against
	// each thread's predicted power (PCMig's predictor works from observed
	// behaviour, not the worst-case nominal): the measured average power at
	// the previously set frequency is decomposed into an executing-power
	// component and a duty cycle using the interval model's busy/stall
	// fractions, and re-projected to each candidate frequency.
	var active []int
	for _, core := range p.assignment {
		active = append(active, core)
	}
	budget := TSPBudget(st.Platform, active, p.tdtm)
	d := st.Platform.Power.DVFS()
	fmax := d.FMax
	idle := st.Platform.Power.IdleWatts
	freqs := uniformFreq(n, fmax)
	for id, core := range p.assignment {
		th := live[id]
		prev, ok := p.lastFreq[id]
		if !ok {
			prev = fmax
		}
		execAt := func(f float64) float64 {
			busy, stall := st.Platform.Perf.Fractions(th.Perf, core, f)
			return busy*st.Platform.Power.ActivePower(th.NominalWatts, f) +
				stall*st.Platform.Power.StallWatts
		}
		duty := 1.0
		if execPrev := execAt(prev); execPrev > idle {
			duty = (th.AvgPower - idle) / (execPrev - idle)
			if duty < 0 {
				duty = 0
			} else if duty > 1 {
				duty = 1
			}
		}
		best := d.FMin
		for _, f := range d.Levels() {
			if duty*execAt(f)+(1-duty)*idle <= budget {
				best = f
			}
		}
		freqs[core] = best
		p.lastFreq[id] = best
	}

	out := make(map[sim.ThreadID]int, len(p.assignment))
	for id, core := range p.assignment {
		out[id] = core
	}
	return sim.Decision{Assignment: out, Freq: freqs, NextInvoke: p.epoch}
}

// performanceMigration moves at most one thread to a clearly better (lower
// AMD) free core when the predicted speedup justifies the migration cost and
// the steady-state temperature stays below the threshold.
func (p *PCMig) performanceMigration(st *sim.State, live map[sim.ThreadID]sim.ThreadInfo) {
	n := st.Platform.NumCores()
	free := coresByAMD(st, freeCores(n, p.assignment))
	if len(free) == 0 {
		return
	}
	fp := st.Platform.FP
	fmax := st.Platform.Power.DVFS().FMax

	type cand struct {
		id    sim.ThreadID
		gain  float64
		dst   int
		found bool
	}
	best := cand{gain: 1.02} // require > 2% predicted speedup
	for _, id := range sortedIDs(p.assignment) {
		core := p.assignment[id]
		th, ok := live[id]
		if !ok {
			continue
		}
		dst := free[0]
		if fp.AMD(dst) >= fp.AMD(core) {
			continue
		}
		cur := st.Platform.Perf.TimePerInstr(th.Perf, core, fmax)
		better := st.Platform.Perf.TimePerInstr(th.Perf, dst, fmax)
		if g := cur / better; g > best.gain {
			best = cand{id: id, gain: g, dst: dst, found: true}
		}
	}
	if !best.found {
		return
	}
	// Steady-state thermal check of the move using measured powers.
	powers := make([]float64, n)
	idle := st.Platform.Power.IdleWatts
	for i := range powers {
		powers[i] = idle
	}
	for id, core := range p.assignment {
		if th, ok := live[id]; ok {
			powers[core] = th.AvgPower
		}
	}
	powers[best.dst] = powers[p.assignment[best.id]]
	powers[p.assignment[best.id]] = idle
	ss := st.Platform.Thermal.SteadyState(powers)
	if st.Platform.Thermal.MaxCoreTemp(ss) < p.tdtm-p.margin {
		p.assignment[best.id] = best.dst
	}
}
