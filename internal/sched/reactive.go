package sched

import (
	"repro/internal/sim"
)

// Reactive is a classic feedback thermal governor (the style of Linux's
// "ondemand"/thermal step-wise governors): no model, no prediction — each
// control epoch it steps a core's frequency down when the core is hot and
// back up when it has cooled. Included as the naive baseline the
// model-driven policies (TSP, PCMig, HotPotato) are implicitly measured
// against.
type Reactive struct {
	tdtm float64
	// downMargin: step down when temp > tdtm − downMargin.
	downMargin float64
	// upMargin: step up when temp < tdtm − upMargin ( > downMargin).
	upMargin float64
	epoch    float64

	assignment map[sim.ThreadID]int
	coreFreq   map[int]float64
}

// NewReactive builds the governor for a DTM threshold.
func NewReactive(tdtm float64) *Reactive {
	return &Reactive{
		tdtm:       tdtm,
		downMargin: 2,
		upMargin:   6,
		epoch:      1e-3,
		assignment: map[sim.ThreadID]int{},
		coreFreq:   map[int]float64{},
	}
}

// Name implements sim.Scheduler.
func (r *Reactive) Name() string { return "reactive" }

// Decide implements sim.Scheduler.
func (r *Reactive) Decide(st *sim.State) sim.Decision {
	live := liveSet(st)
	for id := range r.assignment {
		if _, ok := live[id]; !ok {
			delete(r.assignment, id)
		}
	}

	// Same gang-FIFO admission as every other scheduler; cache-aware
	// ordering like PCMig.
	n := st.Platform.NumCores()
	for _, group := range queuedTasks(st) {
		free := coresByAMD(st, freeCores(n, r.assignment))
		if len(free) < len(group.threads) {
			break
		}
		for i, th := range group.threads {
			r.assignment[th.ID] = free[i]
		}
	}

	// Step-wise per-core DVFS feedback.
	d := st.Platform.Power.DVFS()
	freqs := uniformFreq(n, d.FMax)
	for _, core := range r.assignment {
		f, ok := r.coreFreq[core]
		if !ok {
			f = d.FMax
		}
		switch {
		case st.CoreTemps[core] > r.tdtm-r.downMargin:
			f = d.StepDown(f)
		case st.CoreTemps[core] < r.tdtm-r.upMargin:
			f = d.StepUp(f)
		}
		r.coreFreq[core] = f
		freqs[core] = f
	}

	out := make(map[sim.ThreadID]int, len(r.assignment))
	for id, core := range r.assignment {
		out[id] = core
	}
	return sim.Decision{Assignment: out, Freq: freqs, NextInvoke: r.epoch}
}
