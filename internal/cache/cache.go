// Package cache models the memory hierarchy of an S-NUCA many-core: private
// per-core L1 instruction/data caches and a physically distributed, logically
// shared LLC whose banks are statically mapped to the address space (S-NUCA,
// paper §I). The package also quantifies the thread-migration penalty — the
// property the whole paper rests on: because the LLC is shared, a migration
// only needs to flush/refill the small private caches, so migrating is cheap
// relative to DVFS (paper §I, §III-A).
package cache

import (
	"fmt"

	"repro/internal/noc"
)

// Config describes the cache hierarchy (paper Table I).
type Config struct {
	L1IKB        int `json:"l1i_kb"`          // L1 instruction cache size, KB (Table I: 16)
	L1DKB        int `json:"l1d_kb"`          // L1 data cache size, KB (Table I: 16)
	L1Ways       int `json:"l1_ways"`         // associativity (Table I: 8)
	LLCPerCoreKB int `json:"llc_per_core_kb"` // LLC bank per core, KB (Table I: 128)
	LLCWays      int `json:"llc_ways"`        // LLC associativity (Table I: 16)
	BlockBytes   int `json:"block_bytes"`     // cache line size (Table I: 64)

	// DirtyFraction is the expected fraction of private-cache lines that are
	// dirty at migration time and must be written back to the LLC.
	DirtyFraction float64 `json:"dirty_fraction"`
	// WarmFraction is the expected fraction of private-cache lines the
	// thread re-touches soon after migration (the refill cost it observes).
	WarmFraction float64 `json:"warm_fraction"`
	// OSOverhead is the fixed per-migration cost of moving a thread between
	// cores — context save/restore, TLB shootdown, run-queue handoff, and
	// pipeline warm-up. HotSniper charges an equivalent flat interval cost.
	OSOverhead float64 `json:"os_overhead"` // seconds
}

// DefaultConfig returns the Table I hierarchy with typical dirty/warm
// fractions for interval simulation.
func DefaultConfig() Config {
	return Config{
		L1IKB:         16,
		L1DKB:         16,
		L1Ways:        8,
		LLCPerCoreKB:  128,
		LLCWays:       16,
		BlockBytes:    64,
		DirtyFraction: 0.3,
		WarmFraction:  0.7,
		OSOverhead:    30e-6,
	}
}

// Hierarchy is an S-NUCA cache hierarchy bound to a NoC.
type Hierarchy struct {
	cfg Config
	net *noc.Network
	n   int // number of cores = number of LLC banks
}

// New validates the configuration and builds the hierarchy.
func New(net *noc.Network, numCores int, cfg Config) (*Hierarchy, error) {
	switch {
	case cfg.L1IKB <= 0 || cfg.L1DKB <= 0:
		return nil, fmt.Errorf("cache: L1 sizes must be positive, got %d/%d KB", cfg.L1IKB, cfg.L1DKB)
	case cfg.LLCPerCoreKB <= 0:
		return nil, fmt.Errorf("cache: LLC bank size must be positive, got %d KB", cfg.LLCPerCoreKB)
	case cfg.BlockBytes <= 0:
		return nil, fmt.Errorf("cache: block size must be positive, got %d", cfg.BlockBytes)
	case cfg.DirtyFraction < 0 || cfg.DirtyFraction > 1:
		return nil, fmt.Errorf("cache: dirty fraction %g outside [0,1]", cfg.DirtyFraction)
	case cfg.WarmFraction < 0 || cfg.WarmFraction > 1:
		return nil, fmt.Errorf("cache: warm fraction %g outside [0,1]", cfg.WarmFraction)
	case cfg.OSOverhead < 0:
		return nil, fmt.Errorf("cache: OS overhead %g must be non-negative", cfg.OSOverhead)
	case numCores <= 0:
		return nil, fmt.Errorf("cache: need at least one core, got %d", numCores)
	}
	return &Hierarchy{cfg: cfg, net: net, n: numCores}, nil
}

// Config returns the hierarchy parameters.
func (h *Hierarchy) Config() Config { return h.cfg }

// HomeBank returns the LLC bank (core ID) that statically owns the cache line
// containing address addr. S-NUCA interleaves consecutive lines across banks,
// so the mapping is (addr / blockSize) mod n — a pure function of the
// address, which is what makes S-NUCA lookups cheap and migrations coherent
// for free.
func (h *Hierarchy) HomeBank(addr uint64) int {
	return int((addr / uint64(h.cfg.BlockBytes)) % uint64(h.n))
}

// PrivateLines returns the total number of cache lines in one core's private
// caches (L1I + L1D) — the state that must move on a thread migration.
func (h *Hierarchy) PrivateLines() int {
	bytes := (h.cfg.L1IKB + h.cfg.L1DKB) * 1024
	return bytes / h.cfg.BlockBytes
}

// LLCLines returns the number of lines in the whole distributed LLC.
func (h *Hierarchy) LLCLines() int {
	return h.cfg.LLCPerCoreKB * 1024 * h.n / h.cfg.BlockBytes
}

// MigrationPenalty estimates the execution-time cost (seconds) a thread pays
// when migrating from core src to core dst:
//
//   - flush: dirty private lines are written back to their home LLC banks.
//     Writebacks overlap with each other, but the thread cannot restart
//     until the flush completes; we charge the average one-way latency from
//     src once per dirty line, pipelined on the NoC link (one line per
//     serialization slot).
//   - refill: after restart, the warm fraction of the working set misses in
//     the private caches and refills from the LLC at dst's average
//     round-trip. Misses overlap with execution only partially; interval
//     models charge them as stall time.
//
// The penalty is deliberately a smooth analytic function — HotSniper charges
// an equivalent interval-level cost rather than simulating each line.
func (h *Hierarchy) MigrationPenalty(src, dst int) float64 {
	lines := float64(h.PrivateLines())
	lineBits := h.cfg.BlockBytes * 8

	// Flush: pipeline of dirty lines leaving src. The first line pays the
	// full latency; subsequent lines stream behind at the serialization rate.
	dirty := lines * h.cfg.DirtyFraction
	flushFirst := h.net.AvgLLCRoundTrip(src) / 2 // one-way
	serialization := float64(lineBits/h.net.Config().LinkWidthBits) * h.net.Config().HopLatency
	flush := flushFirst + dirty*serialization

	// Refill: warm lines miss at dst and each costs a round-trip; misses
	// arrive as execution touches them, roughly half overlapped.
	warm := lines * h.cfg.WarmFraction
	refill := 0.5 * warm * h.net.AvgLLCRoundTrip(dst)

	return h.cfg.OSOverhead + flush + refill
}

// MigrationPenaltyMatrix returns the penalty for every (src, dst) pair.
func (h *Hierarchy) MigrationPenaltyMatrix() [][]float64 {
	m := make([][]float64, h.n)
	for s := range m {
		m[s] = make([]float64, h.n)
		for d := range m[s] {
			if s != d {
				m[s][d] = h.MigrationPenalty(s, d)
			}
		}
	}
	return m
}
