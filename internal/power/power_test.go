package power

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDefaultDVFSValid(t *testing.T) {
	if err := DefaultDVFS().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDVFSValidation(t *testing.T) {
	bad := []DVFS{
		{FMin: 0, FMax: 4e9, FStep: 1e8, VMin: 0.7, VMax: 1},
		{FMin: 1e9, FMax: 4e9, FStep: 0, VMin: 0.7, VMax: 1},
		{FMin: 5e9, FMax: 4e9, FStep: 1e8, VMin: 0.7, VMax: 1},
		{FMin: 1e9, FMax: 4e9, FStep: 1e8, VMin: 0, VMax: 1},
		{FMin: 1e9, FMax: 4e9, FStep: 1e8, VMin: 1.0, VMax: 0.7},
	}
	for i, d := range bad {
		if err := d.Validate(); err == nil {
			t.Errorf("case %d: invalid ladder accepted", i)
		}
	}
}

func TestLevelsCount(t *testing.T) {
	// 1.0 to 4.0 GHz in 100 MHz steps = 31 levels (paper §VI: PCMig DVFS at
	// 100 MHz granularity).
	levels := DefaultDVFS().Levels()
	if len(levels) != 31 {
		t.Fatalf("levels = %d, want 31", len(levels))
	}
	if levels[0] != 1.0e9 || math.Abs(levels[30]-4.0e9) > 1 {
		t.Errorf("endpoints = %v, %v", levels[0], levels[30])
	}
	for i := 1; i < len(levels); i++ {
		if levels[i] <= levels[i-1] {
			t.Fatal("levels not ascending")
		}
	}
}

func TestClamp(t *testing.T) {
	d := DefaultDVFS()
	cases := []struct{ in, want float64 }{
		{0.5e9, 1.0e9},   // below range
		{5e9, 4.0e9},     // above range
		{2.0e9, 2.0e9},   // exact level
		{2.349e9, 2.3e9}, // rounds down
		{1.0e9, 1.0e9},
		{4.0e9, 4.0e9},
	}
	for _, c := range cases {
		if got := d.Clamp(c.in); math.Abs(got-c.want) > 1e3 {
			t.Errorf("Clamp(%g) = %g, want %g", c.in, got, c.want)
		}
	}
}

func TestStepUpDown(t *testing.T) {
	d := DefaultDVFS()
	if got := d.StepDown(2.0e9); math.Abs(got-1.9e9) > 1e3 {
		t.Errorf("StepDown(2.0) = %g", got)
	}
	if got := d.StepDown(1.0e9); got != 1.0e9 {
		t.Errorf("StepDown(min) = %g, want min", got)
	}
	if got := d.StepUp(3.95e9); got != 4.0e9 {
		t.Errorf("StepUp(near max) = %g, want max", got)
	}
	if got := d.StepUp(1.0e9); math.Abs(got-1.1e9) > 1e3 {
		t.Errorf("StepUp(min) = %g", got)
	}
}

func TestVoltageEndpoints(t *testing.T) {
	d := DefaultDVFS()
	if got := d.VoltageAt(1.0e9); got != 0.70 {
		t.Errorf("V(fmin) = %v", got)
	}
	if got := d.VoltageAt(4.0e9); got != 1.00 {
		t.Errorf("V(fmax) = %v", got)
	}
	if got := d.VoltageAt(2.5e9); got != 0.85 {
		t.Errorf("V(midpoint) = %v, want 0.85", got)
	}
}

func TestNewModelValidation(t *testing.T) {
	if _, err := NewModel(DVFS{}, 0.3, 1, 0.8); err == nil {
		t.Error("invalid ladder accepted")
	}
	if _, err := NewModel(DefaultDVFS(), -1, 1, 0.8); err == nil {
		t.Error("negative idle accepted")
	}
	if _, err := NewModel(DefaultDVFS(), 0.5, 0.3, 0.8); err == nil {
		t.Error("stall < idle accepted")
	}
	if _, err := NewModel(DefaultDVFS(), 0.3, 1, 1.5); err == nil {
		t.Error("dyn fraction > 1 accepted")
	}
}

func TestActivePowerAtFMaxIsNominal(t *testing.T) {
	m := DefaultModel()
	if got := m.ActivePower(8, 4.0e9); math.Abs(got-8) > 1e-9 {
		t.Errorf("P(fmax) = %v, want nominal 8", got)
	}
}

func TestActivePowerDVFSSavings(t *testing.T) {
	// Halving frequency must save substantially more than half the dynamic
	// power (voltage drops too), but leakage persists.
	m := DefaultModel()
	p4 := m.ActivePower(8, 4.0e9)
	p2 := m.ActivePower(8, 2.0e9)
	if p2 >= 0.55*p4 {
		t.Errorf("P(2GHz)=%v not well below P(4GHz)=%v", p2, p4)
	}
	if p2 <= 0.2*p4 {
		t.Errorf("P(2GHz)=%v implausibly low (leakage floor missing)", p2)
	}
}

func TestIntervalPowerBlends(t *testing.T) {
	m := DefaultModel()
	full := m.IntervalPower(8, 4.0e9, 1, 0)
	idle := m.IntervalPower(8, 4.0e9, 0, 0)
	stall := m.IntervalPower(8, 4.0e9, 0, 1)
	if math.Abs(full-8) > 1e-9 {
		t.Errorf("fully busy = %v", full)
	}
	if idle != m.IdleWatts {
		t.Errorf("fully idle = %v, want %v", idle, m.IdleWatts)
	}
	if stall != m.StallWatts {
		t.Errorf("fully stalled = %v, want %v", stall, m.StallWatts)
	}
	half := m.IntervalPower(8, 4.0e9, 0.5, 0.25)
	want := 0.5*8 + 0.25*m.StallWatts + 0.25*m.IdleWatts
	if math.Abs(half-want) > 1e-9 {
		t.Errorf("blend = %v, want %v", half, want)
	}
}

func TestIntervalPowerPanicsOnBadFractions(t *testing.T) {
	m := DefaultModel()
	defer func() {
		if recover() == nil {
			t.Error("expected panic for fractions > 1")
		}
	}()
	m.IntervalPower(8, 4e9, 0.8, 0.5)
}

// Property: active power is monotone nondecreasing in frequency.
func TestPropActivePowerMonotoneInF(t *testing.T) {
	m := DefaultModel()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nominal := 1 + r.Float64()*10
		f1 := 1e9 + r.Float64()*3e9
		f2 := f1 + r.Float64()*(4e9-f1)
		return m.ActivePower(nominal, f2) >= m.ActivePower(nominal, f1)-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: power is linear in nominal watts at fixed frequency.
func TestPropActivePowerLinearInNominal(t *testing.T) {
	m := DefaultModel()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nominal := 1 + r.Float64()*10
		freq := 1e9 + r.Float64()*3e9
		lhs := m.ActivePower(2*nominal, freq)
		rhs := 2 * m.ActivePower(nominal, freq)
		return math.Abs(lhs-rhs) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: Clamp always lands on a ladder level.
func TestPropClampOnLadder(t *testing.T) {
	d := DefaultDVFS()
	levels := d.Levels()
	onLadder := func(f float64) bool {
		for _, l := range levels {
			if math.Abs(l-f) < 1 {
				return true
			}
		}
		return false
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		return onLadder(d.Clamp(r.Float64() * 6e9))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
