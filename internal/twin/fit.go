package twin

import (
	"fmt"
	"math"

	"repro/internal/matrix"
)

// ridge is the Tikhonov regularizer added to the normal equations' diagonal.
// It is large enough to keep near-collinear design matrices positive
// definite (the Cholesky factorization must never fail on a degenerate
// calibration grid) and small enough — relative to regressors measured in
// watts and °C — to leave well-conditioned fits numerically untouched.
const ridge = 1e-6

// leastSquares solves min_β ‖Xβ − y‖² + ridge·‖β‖² deterministically via the
// normal equations and a dense Cholesky factorization. rows is the design
// matrix (one regressor vector per observation). The result depends only on
// the inputs — no randomness, no iteration-order ambiguity — which is what
// makes calibration artifacts byte-identical across runs and platforms.
func leastSquares(rows [][]float64, y []float64) ([]float64, error) {
	if len(rows) == 0 {
		return nil, fmt.Errorf("twin: least squares needs at least one observation")
	}
	if len(rows) != len(y) {
		return nil, fmt.Errorf("twin: %d observations but %d targets", len(rows), len(y))
	}
	dim := len(rows[0])
	ata := matrix.New(dim, dim)
	atb := make([]float64, dim)
	for r, x := range rows {
		if len(x) != dim {
			return nil, fmt.Errorf("twin: ragged design matrix (row %d has %d regressors, want %d)", r, len(x), dim)
		}
		for i := 0; i < dim; i++ {
			atb[i] += x[i] * y[r]
			for j := i; j < dim; j++ {
				ata.Add(i, j, x[i]*x[j])
			}
		}
	}
	// Mirror the upper triangle and add the ridge.
	for i := 0; i < dim; i++ {
		ata.Add(i, i, ridge)
		for j := i + 1; j < dim; j++ {
			ata.Set(j, i, ata.At(i, j))
		}
	}
	chol, err := matrix.FactorCholesky(ata)
	if err != nil {
		return nil, fmt.Errorf("twin: normal equations not positive definite: %w", err)
	}
	beta, err := chol.SolveVec(atb)
	if err != nil {
		return nil, fmt.Errorf("twin: normal equations solve failed: %w", err)
	}
	for i, b := range beta {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			return nil, fmt.Errorf("twin: coefficient %d is not finite", i)
		}
	}
	return beta, nil
}

// dot returns coef·x.
func dot(coef, x []float64) float64 {
	sum := 0.0
	for i, c := range coef {
		sum += c * x[i]
	}
	return sum
}
