package rotation

import (
	"math/rand"
	"testing"

	"repro/internal/matrix"
	"repro/internal/thermal"
)

// The ring scan runs once per HotPotato decision per candidate ring — the
// scheduler's inner loop. After the evaluator's scratch has warmed up for a
// ring size, an evaluation must allocate nothing.
func TestPeakRingRotationZeroAllocsAfterWarmup(t *testing.T) {
	c := newCalc(t, 8, 8, thermal.DefaultConfig())
	ev := c.NewRingEvaluator()
	base := matrix.Constant(64, 0.5)
	ring := []int{27, 28, 36, 35}
	slotWatts := []float64{9, 0.3, 7, 0.3}
	// AllocsPerRun's warm-up call grows the per-size scratch rows.
	a := testing.AllocsPerRun(50, func() {
		if _, err := ev.PeakRingRotation(0.5e-3, base, ring, slotWatts); err != nil {
			t.Fatal(err)
		}
	})
	if a != 0 {
		t.Errorf("PeakRingRotation allocates %v per run after warmup, want 0", a)
	}
}

// Scratch reuse across calls must not leak state between evaluations: the
// same inputs give the same answer before and after evaluating a different
// (larger, then smaller) ring.
func TestPeakRingRotationScratchReuseIsStateless(t *testing.T) {
	c := newCalc(t, 4, 4, thermal.DefaultConfig())
	ev := c.NewRingEvaluator()
	base := matrix.Constant(16, 0.5)
	ringA := []int{5, 6, 10, 9}
	wattsA := []float64{9, 0.3, 7, 0.3}
	first, err := ev.PeakRingRotation(0.5e-3, base, ringA, wattsA)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(9))
	ringB := []int{0, 1, 2, 3, 7, 11, 15, 14}
	wattsB := make([]float64, len(ringB))
	for i := range wattsB {
		wattsB[i] = r.Float64() * 8
	}
	if _, err := ev.PeakRingRotation(1e-3, base, ringB, wattsB); err != nil {
		t.Fatal(err)
	}
	again, err := ev.PeakRingRotation(0.5e-3, base, ringA, wattsA)
	if err != nil {
		t.Fatal(err)
	}
	if first != again {
		t.Fatalf("scratch reuse changed the answer: %.12f then %.12f", first, again)
	}
}

// --- hot-loop ring-scan baseline (make bench → BENCH_hotloop.json) ----------

func BenchmarkHotloopRingScan(b *testing.B) {
	c := newCalc(b, 8, 8, thermal.DefaultConfig())
	ev := c.NewRingEvaluator()
	base := matrix.Constant(64, 0.5)
	ring := []int{27, 28, 36, 35, 34, 26}
	slotWatts := []float64{9, 0.3, 7, 0.3, 6, 0.3}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ev.PeakRingRotation(0.5e-3, base, ring, slotWatts); err != nil {
			b.Fatal(err)
		}
	}
}
