// Command benchjson converts `go test -bench` text output on stdin into the
// machine-readable perf-trajectory format committed as BENCH_hotloop.json.
//
//	go test -run '^$' -bench '^BenchmarkHotloop' -benchmem ./... | benchjson -out BENCH_hotloop.json
//
// Every benchmark line becomes one record carrying the iteration count and
// all reported metrics (ns/op, B/op, allocs/op, plus any b.ReportMetric
// extras). Context lines (goos/goarch/cpu/pkg) annotate the records that
// follow them. The raw input is echoed to stderr so the conversion does not
// swallow the benchmark log.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Package    string             `json:"package,omitempty"`
	Name       string             `json:"name"`
	Procs      int                `json:"procs,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// File is the top-level document: shared context plus one record per
// benchmark, in input order.
type File struct {
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "", "output file (default stdout)")
	flag.Parse()

	doc, err := parse(bufio.NewScanner(os.Stdin), os.Stderr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(doc.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found on stdin")
		os.Exit(1)
	}

	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

func parse(sc *bufio.Scanner, echo *os.File) (*File, error) {
	doc := &File{}
	pkg := ""
	for sc.Scan() {
		line := sc.Text()
		if echo != nil {
			fmt.Fprintln(echo, line)
		}
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			doc.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseBenchLine(line)
			if !ok {
				continue // e.g. "BenchmarkFoo ... FAIL"
			}
			b.Package = pkg
			doc.Benchmarks = append(doc.Benchmarks, b)
		}
	}
	return doc, sc.Err()
}

// parseBenchLine parses one result line of the standard benchmark format:
//
//	BenchmarkName-8   1234   56.7 ns/op   0 B/op   0 allocs/op   3.2 extra
//
// The shape is tolerated loosely rather than matched exactly: sub-benchmark
// names may contain dashes (only an all-digit -N suffix counts as the
// GOMAXPROCS tag), columns may be absent (runs without -benchmem report only
// ns/op), and a stray token between value/unit pairs skips that token instead
// of discarding the whole line. A line is rejected only when the iteration
// count is missing or no value/unit pair parses at all.
func parseBenchLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	b := Benchmark{
		Name:    strings.TrimPrefix(fields[0], "Benchmark"),
		Metrics: map[string]float64{},
	}
	if i := strings.LastIndex(b.Name, "-"); i > 0 {
		if procs, err := strconv.Atoi(b.Name[i+1:]); err == nil {
			b.Procs = procs
			b.Name = b.Name[:i]
		}
	}
	iter, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b.Iterations = iter
	for i := 2; i+1 < len(fields); {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			i++ // not a value: stray token, resync on the next field
			continue
		}
		unit := fields[i+1]
		if _, err := strconv.ParseFloat(unit, 64); err == nil {
			i++ // two adjacent numbers: fields[i] has no unit, drop it
			continue
		}
		b.Metrics[unit] = v
		i += 2
	}
	if len(b.Metrics) == 0 {
		return Benchmark{}, false
	}
	return b, true
}
