package hotpotato_test

import (
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"testing"

	hotpotato "repro"
)

// fourByFourSpec is the shared fixture: a small, fast run on the
// motivational 4×4 chip.
func fourByFourSpec(schedName string) hotpotato.RunSpec {
	return hotpotato.RunSpec{
		Platform:  hotpotato.DefaultPlatformConfig(4, 4),
		Sim:       hotpotato.DefaultSimConfig(),
		Scheduler: hotpotato.SchedulerSpec{Name: schedName, TDTM: 70},
		Workload: hotpotato.WorkloadSpec{
			Kind: hotpotato.WorkloadExplicit,
			Tasks: []hotpotato.TaskSpec{
				{Bench: "blackscholes", Threads: 2, WorkScale: 0.3},
			},
		},
	}
}

// stripHostTime zeroes the only Result fields documented to vary between
// identical runs.
func stripHostTime(r *hotpotato.Result) {
	r.SchedulerHostTime = 0
}

// TestExecuteSpecGoldenEquivalence is the backward-compatibility contract of
// the declarative API: ExecuteSpec of a JSON-round-tripped RunSpec must be
// bit-identical to the hand-constructed Run it replaces.
func TestExecuteSpecGoldenEquivalence(t *testing.T) {
	for _, schedName := range []string{"hotpotato", "pcmig"} {
		t.Run(schedName, func(t *testing.T) {
			t.Parallel()

			// Hand-constructed path, exactly as before the redesign.
			plat, err := hotpotato.NewPlatform(4, 4)
			if err != nil {
				t.Fatal(err)
			}
			b := hotpotato.MustBenchmark("blackscholes")
			task, err := hotpotato.NewTask(0, b, 2, 0, 0.3)
			if err != nil {
				t.Fatal(err)
			}
			var sch hotpotato.Scheduler
			if schedName == "hotpotato" {
				sch = hotpotato.NewHotPotatoScheduler(plat, 70)
			} else {
				sch = hotpotato.NewPCMigScheduler(70)
			}
			want, err := hotpotato.Run(plat, hotpotato.DefaultSimConfig(), sch, []*hotpotato.Task{task})
			if err != nil {
				t.Fatal(err)
			}

			// Declarative path, through a JSON round trip.
			blob, err := json.Marshal(fourByFourSpec(schedName))
			if err != nil {
				t.Fatal(err)
			}
			var spec hotpotato.RunSpec
			if err := json.Unmarshal(blob, &spec); err != nil {
				t.Fatal(err)
			}
			got, err := hotpotato.ExecuteSpec(context.Background(), spec)
			if err != nil {
				t.Fatal(err)
			}

			stripHostTime(want)
			stripHostTime(got)
			if !reflect.DeepEqual(want, got) {
				t.Errorf("ExecuteSpec diverged from hand-constructed Run:\nwant %+v\ngot  %+v", want, got)
			}
		})
	}
}

// TestRunSpecJSONMinimal checks decode-over-defaults: a minimal document
// gets the full Table I platform and §VI sim config, including the
// DTMEnabled=true default a plain zero value could not express.
func TestRunSpecJSONMinimal(t *testing.T) {
	doc := `{
		"platform":  {"width": 4, "height": 4},
		"scheduler": {"name": "hotpotato"},
		"workload":  {"kind": "homogeneous", "bench": "x264", "total_threads": 8}
	}`
	var spec hotpotato.RunSpec
	if err := json.Unmarshal([]byte(doc), &spec); err != nil {
		t.Fatal(err)
	}
	if want := hotpotato.DefaultPlatformConfig(4, 4); spec.Platform != want {
		t.Errorf("platform not defaulted: %+v", spec.Platform)
	}
	if want := hotpotato.DefaultSimConfig(); spec.Sim != want {
		t.Errorf("sim not defaulted: %+v", spec.Sim)
	}
	if !spec.Sim.DTMEnabled {
		t.Error("DTMEnabled default lost in decoding")
	}

	// A partial sim section keeps the other defaults.
	doc2 := `{"sim": {"max_time": 5}, "scheduler": {"name": "pcmig"}, "workload": {"kind": "random", "count": 3, "rate": 50}}`
	var spec2 hotpotato.RunSpec
	if err := json.Unmarshal([]byte(doc2), &spec2); err != nil {
		t.Fatal(err)
	}
	if spec2.Sim.MaxTime != 5 {
		t.Errorf("max_time override lost: %g", spec2.Sim.MaxTime)
	}
	if !spec2.Sim.DTMEnabled || spec2.Sim.TDTM != 70 {
		t.Errorf("partial sim section clobbered defaults: %+v", spec2.Sim)
	}
	if spec2.Platform.Width != 8 || spec2.Platform.Height != 8 {
		t.Errorf("absent platform should be the 8x8 chip, got %dx%d", spec2.Platform.Width, spec2.Platform.Height)
	}
}

// TestRunSpecValidateReportsAllErrors checks the errors.Join contract: one
// Validate call names every bad field.
func TestRunSpecValidateReportsAllErrors(t *testing.T) {
	spec := fourByFourSpec("no-such-policy")
	spec.Platform.CoreEdge = -1
	spec.Sim.MaxTime = -3
	spec.Workload = hotpotato.WorkloadSpec{Kind: "bogus"}

	err := spec.Validate()
	if err == nil {
		t.Fatal("Validate accepted a spec with four invalid fields")
	}
	for _, fragment := range []string{"core edge", "MaxTime", "no-such-policy", "bogus"} {
		if !strings.Contains(err.Error(), fragment) {
			t.Errorf("Validate error does not mention %q:\n%v", fragment, err)
		}
	}
}

// TestRunSpecSolverValidation checks the declarative solver knob: bad names
// are rejected by Validate (and by the exported helper the CLIs use), good
// names pass through to the platform.
func TestRunSpecSolverValidation(t *testing.T) {
	spec := fourByFourSpec("hotpotato")
	spec.Platform.Thermal.Solver = "cholmod"
	err := spec.Validate()
	if err == nil || !strings.Contains(err.Error(), "cholmod") {
		t.Fatalf("Validate did not reject solver \"cholmod\": %v", err)
	}
	if err := hotpotato.ValidateSolver("cholmod"); err == nil {
		t.Fatal("ValidateSolver accepted \"cholmod\"")
	}
	for _, good := range []string{"", hotpotato.SolverAuto, hotpotato.SolverDense, hotpotato.SolverSparse} {
		if err := hotpotato.ValidateSolver(good); err != nil {
			t.Errorf("ValidateSolver(%q) = %v", good, err)
		}
		spec.Platform.Thermal.Solver = good
		if err := spec.Validate(); err != nil {
			t.Errorf("Validate rejected solver %q: %v", good, err)
		}
	}
}

// TestExecuteSpecSolverEquivalence runs the same spec once per explicit
// backend: the simulated outcome must agree (the thermal backends agree to
// 1e-9 K, far inside any scheduling decision margin here).
func TestExecuteSpecSolverEquivalence(t *testing.T) {
	run := func(solver string) *hotpotato.Result {
		t.Helper()
		spec := fourByFourSpec("hotpotato")
		spec.Platform.Thermal.Solver = solver
		res, err := hotpotato.ExecuteSpec(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	dense := run(hotpotato.SolverDense)
	sparse := run(hotpotato.SolverSparse)
	if d := dense.PeakTemp - sparse.PeakTemp; d > 1e-6 || d < -1e-6 {
		t.Errorf("peak temperature diverged between backends: dense %.9f, sparse %.9f", dense.PeakTemp, sparse.PeakTemp)
	}
	if dense.Makespan != sparse.Makespan || dense.DTMEvents != sparse.DTMEvents || dense.Migrations != sparse.Migrations {
		t.Errorf("scheduling outcome diverged between backends:\ndense  %+v\nsparse %+v", dense, sparse)
	}
}

// TestSchedulerRegistryCoversAllPolicies pins the registry to the full
// policy set and checks every name constructs.
func TestSchedulerRegistryCoversAllPolicies(t *testing.T) {
	want := []string{"hotpotato", "hotpotato-dvfs", "pcmig", "reactive", "rotation", "static", "tsp"}
	if got := hotpotato.SchedulerNames(); !reflect.DeepEqual(got, want) {
		t.Fatalf("SchedulerNames() = %v, want %v", got, want)
	}

	plat, err := hotpotato.NewPlatform(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	task, err := hotpotato.NewTask(0, hotpotato.MustBenchmark("blackscholes"), 2, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range hotpotato.SchedulerNames() {
		spec := hotpotato.SchedulerSpec{Name: name, TDTM: 70}
		spec, err := spec.AutoPin(plat, []*hotpotato.Task{task})
		if err != nil {
			t.Errorf("%s: AutoPin: %v", name, err)
			continue
		}
		sch, err := hotpotato.NewSchedulerFromSpec(plat, spec)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if sch.Name() == "" {
			t.Errorf("%s: scheduler without a name", name)
		}
	}

	if _, err := hotpotato.NewSchedulerFromSpec(plat, hotpotato.SchedulerSpec{Name: "nope"}); err == nil {
		t.Error("unknown policy accepted")
	}
	// Pin-based policies without pins must fail loudly, not hang silently.
	if _, err := hotpotato.NewSchedulerFromSpec(plat, hotpotato.SchedulerSpec{Name: "static"}); err == nil {
		t.Error("static without pins accepted")
	}
}

// TestSchedulerSpecPinsJSONRoundTrip checks the "task:thread" map-key
// encoding survives a round trip.
func TestSchedulerSpecPinsJSONRoundTrip(t *testing.T) {
	spec := hotpotato.SchedulerSpec{
		Name: "static",
		Pins: map[hotpotato.ThreadID]int{
			{Task: 0, Thread: 0}: 5,
			{Task: 1, Thread: 3}: 10,
		},
	}
	blob, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(blob), `"1:3"`) {
		t.Errorf("pin keys not in task:thread form: %s", blob)
	}
	var back hotpotato.SchedulerSpec
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(spec, back) {
		t.Errorf("round trip lost data: %+v vs %+v", spec, back)
	}
}

// TestRunContextCancellationLatency is the latency bound of the issue: after
// cancellation, at most one scheduler epoch of *simulated* progress may
// elapse. The trace hook cancels deterministically at a simulated instant.
func TestRunContextCancellationLatency(t *testing.T) {
	plat, err := hotpotato.NewPlatform(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	task, err := hotpotato.NewTask(0, hotpotato.MustBenchmark("blackscholes"), 2, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	cfg := hotpotato.DefaultSimConfig()
	sch := hotpotato.NewHotPotatoScheduler(plat, cfg.TDTM)
	simulation, err := hotpotato.NewSimulation(plat, cfg, sch, []*hotpotato.Task{task})
	if err != nil {
		t.Fatal(err)
	}

	const cancelAt = 5e-3
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	simulation.SetTrace(func(tSim float64, _, _, _ []float64) {
		if tSim >= cancelAt {
			cancel()
		}
	})

	res, err := simulation.RunContext(ctx)
	if !errors.Is(err, hotpotato.ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	if res == nil {
		t.Fatal("cancelled run returned no partial result")
	}
	// The poll happens on the scheduler cadence: allow one full epoch plus
	// one slice of slack past the cancellation instant.
	limit := cancelAt + cfg.SchedulerEpoch + 2*cfg.TimeSlice
	if res.SimulatedTime < cancelAt || res.SimulatedTime > limit {
		t.Errorf("cancelled at t=%g but simulation stopped at t=%g (limit %g)",
			cancelAt, res.SimulatedTime, limit)
	}
}

// TestRunContextCompletesUncancelled checks RunContext with a background
// context matches plain Run bit for bit.
func TestRunContextCompletesUncancelled(t *testing.T) {
	plat, err := hotpotato.NewPlatform(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	mk := func() []*hotpotato.Task {
		task, err := hotpotato.NewTask(0, hotpotato.MustBenchmark("blackscholes"), 2, 0, 0.3)
		if err != nil {
			t.Fatal(err)
		}
		return []*hotpotato.Task{task}
	}
	cfg := hotpotato.DefaultSimConfig()
	want, err := hotpotato.Run(plat, cfg, hotpotato.NewHotPotatoScheduler(plat, 70), mk())
	if err != nil {
		t.Fatal(err)
	}
	got, err := hotpotato.RunContext(context.Background(), plat, cfg, hotpotato.NewHotPotatoScheduler(plat, 70), mk())
	if err != nil {
		t.Fatal(err)
	}
	stripHostTime(want)
	stripHostTime(got)
	if !reflect.DeepEqual(want, got) {
		t.Errorf("RunContext diverged from Run:\nwant %+v\ngot  %+v", want, got)
	}
}

// TestResultJSONRoundTrip checks the Result wire format, including the NaN
// response of an unfinished task (JSON has no NaN).
func TestResultJSONRoundTrip(t *testing.T) {
	spec := fourByFourSpec("hotpotato")
	res, err := hotpotato.ExecuteSpec(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var back hotpotato.Result
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	stripHostTime(res)
	stripHostTime(&back)
	if !reflect.DeepEqual(*res, back) {
		t.Errorf("Result JSON round trip lost data:\nwant %+v\ngot  %+v", *res, back)
	}

	// A timed-out run carries NaN responses; it must still encode.
	spec.Sim.MaxTime = 2e-3
	partial, err := hotpotato.ExecuteSpec(context.Background(), spec)
	if !errors.Is(err, hotpotato.ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
	if _, err := json.Marshal(partial); err != nil {
		t.Errorf("partial result does not encode: %v", err)
	}
}
