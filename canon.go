package hotpotato

// canon.go is the content-addressing layer of the v1 API: Canonicalize
// reduces a RunSpec to one normal form per semantic run, and SpecHash turns
// that normal form into a stable identity. The serving layer keys its result
// cache (and the /v1/run ETag) on SpecHash, so two clients asking the same
// question — however they spell it — share one simulation.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// SpecVersion is the wire version of the declarative API this package
// speaks. RunSpec and SweepSpec documents may state it explicitly
// ("version": "v1") or omit it; any other value fails validation, so a
// future v2 decoder can change semantics without silently reinterpreting
// old documents.
const SpecVersion = "v1"

// validateVersion accepts an absent ("") or current version string and
// rejects everything else with a field error.
func validateVersion(v string) error {
	if v != "" && v != SpecVersion {
		return fmt.Errorf("hotpotato: unknown spec version %q (want %q or omit the field)", v, SpecVersion)
	}
	return nil
}

// Canonicalize returns the canonical form of a validated spec: the unique
// representative of every RunSpec that declares the same run. It applies
// WithDefaults, pins Version to SpecVersion, resolves the workload fields
// that depend on the platform (a homogeneous total_threads of 0 becomes the
// chip's core count), drops the workload fields the declared kind ignores,
// normalizes zero-scale explicit tasks to scale 1, and nils empty pin maps
// and core cycles. Two specs that execute identically under ExecuteSpec
// canonicalize to equal values — field order and elided defaults never
// matter — while any semantically meaningful change survives.
//
// The method is idempotent and fails exactly when Validate fails; the
// returned spec runs bit-identically to the input.
func (s RunSpec) Canonicalize() (RunSpec, error) {
	s = s.WithDefaults()
	if err := s.Validate(); err != nil {
		return RunSpec{}, err
	}
	s.Version = SpecVersion
	s.Workload = s.Workload.canonical(s.Platform.Width * s.Platform.Height)
	if len(s.Scheduler.Pins) == 0 {
		s.Scheduler.Pins = nil
	}
	if len(s.Scheduler.Cores) == 0 {
		s.Scheduler.Cores = nil
	}
	return s, nil
}

// canonical reduces the workload declaration to exactly the fields its kind
// consults (the WorkloadSpec contract: the rest are ignored), with
// platform-dependent and per-task defaults resolved. numCores resolves the
// fill-the-chip default of the homogeneous kind.
func (w WorkloadSpec) canonical(numCores int) WorkloadSpec {
	switch w.Kind {
	case WorkloadHomogeneous:
		total := w.TotalThreads
		if total == 0 {
			total = numCores
		}
		sizes := w.Sizes
		if len(sizes) == 0 {
			sizes = []int{2, 4, 8}
		}
		return WorkloadSpec{Kind: w.Kind, Bench: w.Bench, TotalThreads: total, Sizes: sizes}
	case WorkloadRandom:
		return WorkloadSpec{Kind: w.Kind, Count: w.Count, Rate: w.Rate, Seed: w.Seed}
	case WorkloadExplicit:
		tasks := make([]TaskSpec, len(w.Tasks))
		for i, t := range w.Tasks {
			if t.WorkScale == 0 {
				t.WorkScale = 1
			}
			tasks[i] = t
		}
		return WorkloadSpec{Kind: w.Kind, Tasks: tasks}
	default:
		// Unknown kinds never pass Validate; keep them as-is so callers that
		// skip validation still get a deterministic value back.
		return w
	}
}

// SpecHash returns the content address of a spec: "sha256:" plus the
// lowercase hex SHA-256 of the canonical form's deterministic encoding. The
// encoding is encoding/json over Canonicalize's output — struct fields in
// declaration order, map keys (including text-keyed ThreadIDs) sorted,
// shortest-form floats — so the hash is a pure function of the run's
// semantics, not of its JSON spelling. Equal runs hash equal; any change
// that could alter the Result changes the hash.
//
// The hash is pinned by golden tests: it is part of the wire contract
// (/v1/run ETags, result-cache keys, sweep cell identities) and must not
// drift between releases without a SpecVersion bump.
func SpecHash(s RunSpec) (string, error) {
	c, err := s.Canonicalize()
	if err != nil {
		return "", err
	}
	b, err := json.Marshal(c)
	if err != nil {
		return "", fmt.Errorf("hotpotato: encoding canonical spec: %w", err)
	}
	sum := sha256.Sum256(b)
	return "sha256:" + hex.EncodeToString(sum[:]), nil
}
