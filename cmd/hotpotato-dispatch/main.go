// Command hotpotato-dispatch is the sweep-fabric dispatcher: an HTTP daemon
// that accepts SweepSpec documents on the same POST /v1/batch wire contract
// as hotpotato-server, expands them, and shards the cells across registered
// worker daemons (hotpotato-server instances started with -dispatcher).
//
//	hotpotato-dispatch -addr :9090 -archive /var/lib/hotpotato/archive
//	hotpotato-server   -addr :8081 -dispatcher http://localhost:9090
//	hotpotato-server   -addr :8082 -dispatcher http://localhost:9090
//	curl -X POST localhost:9090/v1/batch -d '{"base": {...}, "axes": {...}}'
//
// Workers pull: register → lease a batch of cells → stream results back →
// heartbeat. A worker that dies mid-lease costs one lease TTL, after which
// its booked cells are re-queued (bounded retries, then "failed"). Completed
// results are archived by SpecHash, so a re-posted sweep replays without
// touching a worker. See docs/SERVICE.md §"The sweep fabric" for operations,
// docs/API.md §"The sweep fabric" for the worker wire protocol.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	hotpotato "repro"
	"repro/internal/fabric"
	"repro/internal/obs"
)

func main() {
	addr := flag.String("addr", ":9090", "listen address")
	leaseTTL := flag.Duration("lease-ttl", 0, "lease deadline extension per heartbeat; an unrefreshed lease expires and its cells re-queue (0 = 15s)")
	maxRetries := flag.Int("max-retries", 0, "re-leases per cell after lease expiries before it is reported failed (0 = 3, negative = none)")
	leaseCells := flag.Int("lease-cells", 0, "max sweep cells booked per lease (0 = 4)")
	maxSweepCells := flag.Int("max-sweep-cells", 0, "largest sweep cross-product /v1/batch accepts (0 = library max 65536)")
	batchHeartbeat := flag.Duration("batch-heartbeat", 0, "interval between /v1/batch progress records (0 = 10s, negative = disable)")
	solver := flag.String("solver", "", "default thermal solver for cells that leave platform.thermal.solver empty: auto|dense|sparse")
	archiveDir := flag.String("archive", "", "directory for the SpecHash-keyed result archive and per-sweep manifests (empty = archiving disabled)")
	sweepSpanDepth := flag.Int("sweep-span-depth", 0, "spans retained per sweep for /v1/sweeps/{id}/spans, worker-exported spans included (0 = 8192, negative = disable)")
	logLevel := flag.String("log-level", "info", "log level: debug|info|warn|error")
	logFormat := flag.String("log-format", "json", "log format: json|text")
	enablePprof := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	readHeader := flag.Duration("read-header-timeout", 5*time.Second, "limit on reading request headers (slowloris guard)")
	idle := flag.Duration("idle-timeout", 2*time.Minute, "keep-alive idle connection limit")
	flag.Parse()

	logger, err := obs.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if err := hotpotato.ValidateSolver(*solver); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var archive *fabric.Archive
	if *archiveDir != "" {
		archive, err = fabric.NewArchive(*archiveDir, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}

	d := fabric.NewDispatcher(fabric.Config{
		LeaseTTL:       *leaseTTL,
		MaxRetries:     *maxRetries,
		LeaseCells:     *leaseCells,
		MaxSweepCells:  *maxSweepCells,
		Heartbeat:      *batchHeartbeat,
		DefaultSolver:  *solver,
		Archive:        archive,
		SweepSpanDepth: *sweepSpanDepth,
		Logger:         logger,
	})
	reaperCtx, stopReaper := context.WithCancel(context.Background())
	defer stopReaper()
	go d.Run(reaperCtx)

	var handler http.Handler = d.Handler()
	if *enablePprof {
		// Behind a flag: the profiling endpoints expose internals and cost
		// CPU, so an operator opts in per deployment.
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
	}

	// No ReadTimeout/WriteTimeout: /v1/batch responses stream for as long as
	// the sweep runs, and workers' results posts are small anyway.
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: *readHeader,
		IdleTimeout:       *idle,
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	logger.Info("hotpotato-dispatch listening", "addr", *addr, "archive", *archiveDir)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		logger.Error("serve failed", "error", err.Error())
		os.Exit(1)
	case sig := <-sigc:
		logger.Info("signal received, shutting down", "signal", sig.String())
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Error("http shutdown", "error", err.Error())
	}
	logger.Info("bye")
}
