package hotpotato_test

// docs_test.go keeps the documentation and the source from drifting apart.
// Three classes of check, all running in the ordinary test suite (and hence
// in CI):
//
//   - the flags tables in docs/SERVICE.md list exactly the flags the
//     binaries define — hotpotato-server above the "The sweep fabric"
//     heading, hotpotato-dispatch below it (TestServerFlagsMatchServiceDoc,
//     TestDispatchFlagsMatchServiceDoc) — and the docs/API.md reference
//     stays equal to the code: its route tables to the service and fabric
//     mux registrations (split at the same heading), its error-code table
//     to the Code* constants, its flag mentions to defined flags
//     (TestAPIDoc*, TestFabricDocRoutesMatchDispatcher);
//   - every docs-file §-heading reference in Go sources and markdown
//     resolves to a real heading (TestDocSectionReferencesResolve), and
//     every relative markdown link and backticked docs-path mention points
//     at an existing file (TestMarkdownLinksResolve);
//   - every exported identifier of the numerics packages carries a doc
//     comment (TestExportedAPIsAreDocumented) — the numerics contract is a
//     documented API or it is nothing.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// binaryFlags parses a cmd main.go and returns the defined flag names
// mapped to their default-value expression rendered as source.
func binaryFlags(t *testing.T, path string) map[string]string {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	flags := map[string]string{}
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || len(call.Args) != 3 {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); !ok || id.Name != "flag" {
			return true
		}
		switch sel.Sel.Name {
		case "String", "Int", "Bool", "Float64", "Duration":
		default:
			return true
		}
		name, ok := call.Args[0].(*ast.BasicLit)
		if !ok || name.Kind != token.STRING {
			return true
		}
		def := ""
		if lit, ok := call.Args[1].(*ast.BasicLit); ok {
			def = strings.Trim(lit.Value, `"`)
		}
		flags[strings.Trim(name.Value, `"`)] = def
		return true
	})
	if len(flags) == 0 {
		t.Fatalf("no flag definitions found in %s", path)
	}
	return flags
}

// fabricHeading splits docs/SERVICE.md (and docs/API.md): table rows above
// it document hotpotato-server, rows below document hotpotato-dispatch.
const fabricHeading = `## The sweep fabric`

// serviceDocFlags parses the flag tables of docs/SERVICE.md — rows of the
// form `| `-name` | `default` | meaning |` — returning the hotpotato-server
// table (above the fabric heading) and the hotpotato-dispatch table (below)
// separately. The same flag name may legitimately appear in both (e.g.
// -lease-cells, with per-binary meanings).
func serviceDocFlags(t *testing.T) (server, dispatch map[string]string) {
	t.Helper()
	data, err := os.ReadFile("docs/SERVICE.md")
	if err != nil {
		t.Fatal(err)
	}
	head, tail, found := strings.Cut(string(data), fabricHeading)
	if !found {
		t.Fatalf("docs/SERVICE.md has no %q heading", fabricHeading)
	}
	row := regexp.MustCompile("^\\| `-([a-z-]+)` \\| (.*?) \\|")
	parse := func(text string) map[string]string {
		flags := map[string]string{}
		for _, line := range strings.Split(text, "\n") {
			if m := row.FindStringSubmatch(line); m != nil {
				flags[m[1]] = m[2]
			}
		}
		return flags
	}
	server, dispatch = parse(head), parse(tail)
	if len(server) == 0 || len(dispatch) == 0 {
		t.Fatalf("docs/SERVICE.md flag tables: %d server rows, %d dispatch rows — want both non-empty",
			len(server), len(dispatch))
	}
	return server, dispatch
}

// matchFlagsAgainstDoc is the shared bidirectional check: the doc table
// lists exactly the binary's flags, and defaults quoted in the doc match
// the source defaults.
func matchFlagsAgainstDoc(t *testing.T, binary string, src, doc map[string]string) {
	t.Helper()
	for name := range src {
		if _, ok := doc[name]; !ok {
			t.Errorf("flag -%s is defined by %s but missing from its docs/SERVICE.md flags table", name, binary)
		}
	}
	for name := range doc {
		if _, ok := src[name]; !ok {
			t.Errorf("docs/SERVICE.md documents flag -%s which %s does not define", name, binary)
		}
	}
	// For flags with a non-empty literal default, the doc's default column
	// must quote it verbatim (e.g. `:8080`, `info`).
	for name, def := range src {
		if def == "" || def == "0" || def == "false" {
			continue
		}
		if cell, ok := doc[name]; ok && !strings.Contains(cell, def) {
			t.Errorf("docs/SERVICE.md default %q for %s -%s does not mention the source default %q", cell, binary, name, def)
		}
	}
}

func TestServerFlagsMatchServiceDoc(t *testing.T) {
	doc, _ := serviceDocFlags(t)
	matchFlagsAgainstDoc(t, "cmd/hotpotato-server", binaryFlags(t, "cmd/hotpotato-server/main.go"), doc)
}

func TestDispatchFlagsMatchServiceDoc(t *testing.T) {
	_, doc := serviceDocFlags(t)
	matchFlagsAgainstDoc(t, "cmd/hotpotato-dispatch", binaryFlags(t, "cmd/hotpotato-dispatch/main.go"), doc)
}

// muxRoutes parses a Go source file and returns every route pattern
// registered on a `mux` ("METHOD /path").
func muxRoutes(t *testing.T, path string) map[string]bool {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	routes := map[string]bool{}
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || len(call.Args) != 2 {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); !ok || id.Name != "mux" {
			return true
		}
		if name := sel.Sel.Name; name != "HandleFunc" && name != "Handle" {
			return true
		}
		if lit, ok := call.Args[0].(*ast.BasicLit); ok && lit.Kind == token.STRING {
			routes[strings.Trim(lit.Value, `"`)] = true
		}
		return true
	})
	if len(routes) == 0 {
		t.Fatalf("no mux registrations found in %s", path)
	}
	return routes
}

// apiDocRoutes parses the route tables of docs/API.md — rows of the form
// `| `METHOD /path` | purpose |` — returning the hotpotato-server table
// (above the fabric heading) and the hotpotato-dispatch table (below)
// separately. POST /v1/batch legitimately appears in both: the dispatcher
// reuses the wire contract.
func apiDocRoutes(t *testing.T) (server, dispatch map[string]bool) {
	t.Helper()
	data, err := os.ReadFile("docs/API.md")
	if err != nil {
		t.Fatal(err)
	}
	head, tail, found := strings.Cut(string(data), fabricHeading)
	if !found {
		t.Fatalf("docs/API.md has no %q heading", fabricHeading)
	}
	row := regexp.MustCompile("^\\| `((?:GET|POST|PUT|DELETE) /[^`]*)` \\|")
	parse := func(text string) map[string]bool {
		routes := map[string]bool{}
		for _, line := range strings.Split(text, "\n") {
			if m := row.FindStringSubmatch(line); m != nil {
				routes[m[1]] = true
			}
		}
		return routes
	}
	server, dispatch = parse(head), parse(tail)
	if len(server) == 0 || len(dispatch) == 0 {
		t.Fatalf("docs/API.md route tables: %d server rows, %d dispatch rows — want both non-empty",
			len(server), len(dispatch))
	}
	return server, dispatch
}

// matchRoutesAgainstDoc is the shared bidirectional check between one mux
// and one doc table.
func matchRoutesAgainstDoc(t *testing.T, pkg string, src, doc map[string]bool) {
	t.Helper()
	for r := range src {
		if !doc[r] {
			t.Errorf("route %q is registered by %s but missing from its docs/API.md routes table", r, pkg)
		}
	}
	for r := range doc {
		if !src[r] {
			t.Errorf("docs/API.md documents route %q which %s does not register", r, pkg)
		}
	}
}

// TestAPIDocRoutesMatchServer keeps the docs/API.md routes table equal to the
// mux registrations of internal/service — a route added or removed in code
// must show up here.
func TestAPIDocRoutesMatchServer(t *testing.T) {
	doc, _ := apiDocRoutes(t)
	matchRoutesAgainstDoc(t, "internal/service", muxRoutes(t, "internal/service/service.go"), doc)
}

// TestFabricDocRoutesMatchDispatcher holds the fabric section of docs/API.md
// to the same standard: its table lists exactly the dispatcher's mux.
func TestFabricDocRoutesMatchDispatcher(t *testing.T) {
	_, doc := apiDocRoutes(t)
	matchRoutesAgainstDoc(t, "internal/fabric", muxRoutes(t, "internal/fabric/http.go"), doc)
}

// TestAPIDocErrorCodesMatchService keeps the docs/API.md error-code table
// equal to the Code* string constants of internal/service/errors.go.
func TestAPIDocErrorCodesMatchService(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "internal/service/errors.go", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	codes := map[string]bool{}
	ast.Inspect(f, func(n ast.Node) bool {
		spec, ok := n.(*ast.ValueSpec)
		if !ok {
			return true
		}
		for i, name := range spec.Names {
			if !strings.HasPrefix(name.Name, "Code") || i >= len(spec.Values) {
				continue
			}
			if lit, ok := spec.Values[i].(*ast.BasicLit); ok && lit.Kind == token.STRING {
				codes[strings.Trim(lit.Value, `"`)] = true
			}
		}
		return true
	})
	if len(codes) == 0 {
		t.Fatal("no Code* constants found in internal/service/errors.go")
	}

	data, err := os.ReadFile("docs/API.md")
	if err != nil {
		t.Fatal(err)
	}
	row := regexp.MustCompile("^\\| `([a-z_]+)` \\| [0-9]{3} \\|")
	doc := map[string]bool{}
	for _, line := range strings.Split(string(data), "\n") {
		if m := row.FindStringSubmatch(line); m != nil {
			doc[m[1]] = true
		}
	}
	for c := range codes {
		if !doc[c] {
			t.Errorf("error code %q is defined by internal/service but missing from the docs/API.md code table", c)
		}
	}
	for c := range doc {
		if !codes[c] {
			t.Errorf("docs/API.md documents error code %q which internal/service does not define", c)
		}
	}
}

// TestAPIDocFlagsExist: every `-flag` mentioned in docs/API.md must be a
// flag one of the binaries actually defines.
func TestAPIDocFlagsExist(t *testing.T) {
	src := binaryFlags(t, "cmd/hotpotato-server/main.go")
	for name, def := range binaryFlags(t, "cmd/hotpotato-dispatch/main.go") {
		if _, ok := src[name]; !ok {
			src[name] = def
		}
	}
	data, err := os.ReadFile("docs/API.md")
	if err != nil {
		t.Fatal(err)
	}
	mention := regexp.MustCompile("`-([a-z][a-z-]+)`")
	for _, m := range mention.FindAllStringSubmatch(string(data), -1) {
		if _, ok := src[m[1]]; !ok {
			t.Errorf("docs/API.md mentions flag -%s which neither binary defines", m[1])
		}
	}
}

// docSectionRef matches docs-path section references of the shape
// docs/<NAME>.md §"Some heading" in source and documentation.
var docSectionRef = regexp.MustCompile(`docs/([A-Z_]+\.md) §"([^"]+)"`)

func TestDocSectionReferencesResolve(t *testing.T) {
	docs := map[string]string{}
	readDoc := func(name string) string {
		if s, ok := docs[name]; ok {
			return s
		}
		data, err := os.ReadFile(filepath.Join("docs", name))
		if err != nil {
			t.Fatalf("referenced doc does not exist: %v", err)
		}
		docs[name] = string(data)
		return docs[name]
	}
	err := filepath.WalkDir(".", func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == ".git" || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if ext := filepath.Ext(path); ext != ".go" && ext != ".md" {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, m := range docSectionRef.FindAllStringSubmatch(string(data), -1) {
			if !strings.Contains(readDoc(m[1]), m[2]) {
				t.Errorf("%s references docs/%s §%q, but no such heading text exists", path, m[1], m[2])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

var (
	mdLink     = regexp.MustCompile(`\]\(([^)\s]+)\)`)
	mdWikiLink = regexp.MustCompile(`\[\[([^\]\n]+)\]\]`)
	mdPathWord = regexp.MustCompile("`((?:docs/)?[A-Za-z_]+\\.md)`")
)

// TestMarkdownLinksResolve checks every relative markdown link and every
// backticked *.md path mention in README.md and docs/ against the
// filesystem.
func TestMarkdownLinksResolve(t *testing.T) {
	files, err := filepath.Glob("docs/*.md")
	if err != nil {
		t.Fatal(err)
	}
	files = append(files, "README.md", "DESIGN.md", "EXPERIMENTS.md", "ROADMAP.md")
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		text := string(data)
		dir := filepath.Dir(file)
		for _, m := range mdLink.FindAllStringSubmatch(text, -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "#") || strings.HasPrefix(target, "mailto:") {
				continue
			}
			target = strings.SplitN(target, "#", 2)[0]
			if target == "" {
				continue
			}
			if _, err := os.Stat(filepath.Join(dir, target)); err != nil {
				t.Errorf("%s links to %q which does not exist", file, m[1])
			}
		}
		// Mentions like `docs/THEORY.md` are links in spirit; they must
		// resolve from the repository root.
		for _, m := range mdPathWord.FindAllStringSubmatch(text, -1) {
			if _, err := os.Stat(m[1]); err != nil {
				t.Errorf("%s mentions %q which does not exist at the repo root", file, m[1])
			}
		}
		// Wiki-style [[target]] links (none today, but cheap to keep honest):
		// the target must exist as a file, with or without a .md suffix.
		for _, m := range mdWikiLink.FindAllStringSubmatch(text, -1) {
			target := m[1]
			if _, err := os.Stat(filepath.Join(dir, target)); err == nil {
				continue
			}
			if _, err := os.Stat(filepath.Join(dir, target+".md")); err == nil {
				continue
			}
			t.Errorf("%s wiki-links [[%s]] which resolves to no file", file, target)
		}
	}
}

// TestExportedAPIsAreDocumented walks the numerics packages and requires a
// doc comment on every exported top-level declaration — types, functions,
// methods on exported receivers, and const/var groups (a group comment
// covers its members).
func TestExportedAPIsAreDocumented(t *testing.T) {
	for _, dir := range []string{"internal/matrix", "internal/thermal", "internal/rotation"} {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		for _, pkg := range pkgs {
			for _, file := range pkg.Files {
				for _, decl := range file.Decls {
					checkDeclDocumented(t, fset, decl)
				}
			}
		}
	}
}

func checkDeclDocumented(t *testing.T, fset *token.FileSet, decl ast.Decl) {
	t.Helper()
	pos := func(n ast.Node) string { return fset.Position(n.Pos()).String() }
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() {
			return
		}
		if d.Recv != nil && !exportedReceiver(d.Recv) {
			return
		}
		if d.Doc.Text() == "" {
			t.Errorf("%s: exported func %s has no doc comment", pos(d), d.Name.Name)
		}
	case *ast.GenDecl:
		groupDoc := d.Doc.Text() != ""
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if s.Name.IsExported() && !groupDoc && s.Doc.Text() == "" {
					t.Errorf("%s: exported type %s has no doc comment", pos(s), s.Name.Name)
				}
			case *ast.ValueSpec:
				if groupDoc || s.Doc.Text() != "" {
					continue
				}
				for _, name := range s.Names {
					if name.IsExported() {
						t.Errorf("%s: exported %s has no doc comment (neither on the spec nor the group)", pos(s), name.Name)
					}
				}
			}
		}
	}
}

func exportedReceiver(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	typ := recv.List[0].Type
	for {
		switch x := typ.(type) {
		case *ast.StarExpr:
			typ = x.X
		case *ast.IndexExpr:
			typ = x.X
		case *ast.Ident:
			return x.IsExported()
		default:
			return false
		}
	}
}
