package thermal

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/floorplan"
	"repro/internal/matrix"
)

func TestNewStepperValidation(t *testing.T) {
	m := testModel(t, 2, 2)
	if _, err := m.NewStepper(0); err == nil {
		t.Error("expected error for zero dt")
	}
	if _, err := m.NewStepper(-1e-3); err == nil {
		t.Error("expected error for negative dt")
	}
}

func TestStepperHoldsAmbientWithoutPower(t *testing.T) {
	m := testModel(t, 4, 4)
	s, err := m.NewStepper(1e-3)
	if err != nil {
		t.Fatal(err)
	}
	tv := m.InitialTemps()
	for i := 0; i < 50; i++ {
		tv = s.Step(tv, make([]float64, 16))
	}
	for i, temp := range tv {
		if math.Abs(temp-m.Ambient()) > 1e-6 {
			t.Fatalf("node %d drifted to %v without power", i, temp)
		}
	}
}

func TestStepperConvergesToSteadyState(t *testing.T) {
	m := testModel(t, 4, 4)
	s, err := m.NewStepper(10e-3)
	if err != nil {
		t.Fatal(err)
	}
	p := matrix.Constant(16, 3)
	ss := m.SteadyState(p)
	tv := m.InitialTemps()
	// 30 s of simulated time — far beyond every time constant (the slowest
	// eigenmode, the heatsink, has τ ≈ 1 s).
	for i := 0; i < 3000; i++ {
		tv = s.Step(tv, p)
	}
	if !matrix.VecApproxEqual(tv, ss, 1e-3) {
		t.Fatalf("transient did not converge to steady state:\n%v\nvs\n%v", tv, ss)
	}
}

func TestStepperExactSemigroup(t *testing.T) {
	// The matrix-exponential step is exact for constant power: one 1 ms step
	// equals ten 0.1 ms steps.
	m := testModel(t, 4, 4)
	coarse, err := m.NewStepper(1e-3)
	if err != nil {
		t.Fatal(err)
	}
	fine, err := m.NewStepper(1e-4)
	if err != nil {
		t.Fatal(err)
	}
	p := make([]float64, 16)
	p[5], p[10] = 8, 8
	tc := coarse.Step(m.InitialTemps(), p)
	tf := m.InitialTemps()
	for i := 0; i < 10; i++ {
		tf = fine.Step(tf, p)
	}
	if !matrix.VecApproxEqual(tc, tf, 1e-8) {
		t.Fatal("coarse step disagrees with composed fine steps")
	}
}

func TestStepperHeatingIsMonotoneFromAmbient(t *testing.T) {
	m := testModel(t, 4, 4)
	s, err := m.NewStepper(0.5e-3)
	if err != nil {
		t.Fatal(err)
	}
	p := make([]float64, 16)
	p[5] = 8
	tv := m.InitialTemps()
	prev := tv[5]
	for i := 0; i < 40; i++ {
		tv = s.Step(tv, p)
		if tv[5] < prev-1e-9 {
			t.Fatalf("heating core cooled at step %d: %v -> %v", i, prev, tv[5])
		}
		prev = tv[5]
	}
}

func TestStepperCoolsAfterPowerRemoved(t *testing.T) {
	m := testModel(t, 4, 4)
	s, err := m.NewStepper(1e-3)
	if err != nil {
		t.Fatal(err)
	}
	p := make([]float64, 16)
	p[5] = 9
	tv := m.InitialTemps()
	for i := 0; i < 30; i++ {
		tv = s.Step(tv, p)
	}
	hot := tv[5]
	for i := 0; i < 30; i++ {
		tv = s.Step(tv, make([]float64, 16))
	}
	if tv[5] >= hot {
		t.Fatalf("core did not cool after power removal: %v -> %v", hot, tv[5])
	}
}

func TestSiliconTimeConstantSuitsRotation(t *testing.T) {
	// The rotation story requires the silicon node to respond on the ~ms
	// scale: fast enough to matter within a trace, slow enough that a 0.5 ms
	// rotation epoch averages the temperature. After 0.5 ms of 8 W the core
	// must have covered neither <5% nor >70% of its way to steady state.
	m := testModel(t, 4, 4)
	s, err := m.NewStepper(0.5e-3)
	if err != nil {
		t.Fatal(err)
	}
	p := make([]float64, 16)
	p[5] = 8
	ss := m.SteadyState(p)
	tv := s.Step(m.InitialTemps(), p)
	progress := (tv[5] - m.Ambient()) / (ss[5] - m.Ambient())
	if progress < 0.05 || progress > 0.7 {
		t.Errorf("0.5 ms progress toward steady = %.2f, want 0.05–0.7", progress)
	}
}

func TestTransientTrajectoryShape(t *testing.T) {
	m := testModel(t, 2, 2)
	s, err := m.NewStepper(1e-3)
	if err != nil {
		t.Fatal(err)
	}
	powers := [][]float64{
		matrix.Constant(4, 1),
		matrix.Constant(4, 2),
		matrix.Constant(4, 0),
	}
	traj := s.Transient(m.InitialTemps(), powers)
	if len(traj) != 4 {
		t.Fatalf("trajectory length %d, want 4", len(traj))
	}
	if traj[0][0] != m.Ambient() {
		t.Error("trajectory does not start at the initial state")
	}
	// Mutating the trajectory must not alias internal state.
	traj[1][0] = -1
	if traj[0][0] == -1 {
		t.Error("trajectory rows alias each other")
	}
}

func TestStepPanicsOnWrongLength(t *testing.T) {
	m := testModel(t, 2, 2)
	s, err := m.NewStepper(1e-3)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for short temperature vector")
		}
	}()
	s.Step(make([]float64, 3), make([]float64, 4))
}

// Property: temperatures stay between ambient and the hot steady state when
// heating from ambient with constant power.
func TestPropTransientBounded(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, err := New(floorplan.MustNew(3, 3, 0.0009), DefaultConfig())
		if err != nil {
			return false
		}
		s, err := m.NewStepper(0.5e-3)
		if err != nil {
			return false
		}
		p := make([]float64, 9)
		for i := range p {
			p[i] = r.Float64() * 6
		}
		ss := m.SteadyState(p)
		tv := m.InitialTemps()
		for step := 0; step < 50; step++ {
			tv = s.Step(tv, p)
			for i := range tv {
				if tv[i] < m.Ambient()-1e-6 || tv[i] > ss[i]+1e-6 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func BenchmarkStepper64Core(b *testing.B) {
	m, err := New(floorplan.MustNew(8, 8, 0.0009), DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	s, err := m.NewStepper(0.1e-3)
	if err != nil {
		b.Fatal(err)
	}
	p := matrix.Constant(64, 3)
	tv := m.InitialTemps()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tv = s.Step(tv, p)
	}
	_ = tv
}
