// Package fabric is the distributed sweep control plane: a dispatcher that
// shards expanded SweepSpec cells across worker daemons, and the worker pull
// loop those daemons run.
//
// The design follows the SIMQ booked/executing job lifecycle: workers pull
// work when idle instead of the dispatcher pushing it. One sweep submitted to
// the dispatcher's POST /v1/batch expands (hotpotato.SweepSpec.Expand) into
// cells; each cell walks
//
//	pending → leased → done | failed
//
// Workers register, then loop: lease a small batch of cells, execute each
// through their own serving stack (result cache included), stream
// SweepResultRecords back as cells finish, and heartbeat while they work.
// Leases carry deadlines — a worker that dies or stops heartbeating has its
// booked cells re-queued at the front of the queue (bounded retries, then the
// cell is reported "failed"), so a kill -9 mid-sweep costs one lease TTL, not
// the sweep.
//
// The client-facing POST /v1/batch keeps the exact NDJSON/SSE wire contract
// of the single-node server (sweep header, result records in completion
// order, progress heartbeats, terminal summary), so clients cannot tell a
// dispatcher from a hotpotato-server — except that the sweep header also
// carries a sweep_id naming the archive entry. Completed results land in a
// date/ID-organized Archive keyed by SpecHash; a re-posted sweep whose cells
// are archived replays without leasing anything.
//
// docs/API.md §"The sweep fabric" documents the wire surface;
// docs/SERVICE.md §"The sweep fabric" the operational story.
package fabric
