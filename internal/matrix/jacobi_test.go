package matrix

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSymEigenDiagonal(t *testing.T) {
	e, err := SymEigen(Diagonal([]float64{3, 1, 2}))
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 3} // sorted ascending
	if !VecApproxEqual(e.Values, want, 1e-12) {
		t.Fatalf("values = %v, want %v", e.Values, want)
	}
}

func TestSymEigenKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 1 and 3.
	e, err := SymEigen(NewFromRows([][]float64{{2, 1}, {1, 2}}))
	if err != nil {
		t.Fatal(err)
	}
	if !VecApproxEqual(e.Values, []float64{1, 3}, 1e-12) {
		t.Fatalf("values = %v, want [1 3]", e.Values)
	}
}

func TestSymEigenRejectsAsymmetric(t *testing.T) {
	if _, err := SymEigen(NewFromRows([][]float64{{1, 2}, {0, 1}})); err == nil {
		t.Fatal("expected error for asymmetric input")
	}
}

func TestSymEigenRejectsNonSquare(t *testing.T) {
	if _, err := SymEigen(New(2, 3)); err == nil {
		t.Fatal("expected error for non-square input")
	}
}

func randomSymmetric(r *rand.Rand, n int) *Dense {
	a := New(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := r.NormFloat64()
			a.Set(i, j, v)
			a.Set(j, i, v)
		}
	}
	return a
}

// Property: A·v_k = λ_k·v_k for every eigenpair.
func TestPropEigenpairsSatisfyDefinition(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(8)
		a := randomSymmetric(r, n)
		e, err := SymEigen(a)
		if err != nil {
			return false
		}
		for k := 0; k < n; k++ {
			v := e.Vectors.Col(k)
			av := a.MulVec(v)
			lv := VecScale(e.Values[k], v)
			if !VecApproxEqual(av, lv, 1e-8*(1+math.Abs(e.Values[k]))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: eigenvector matrix is orthonormal (VᵀV = I).
func TestPropEigenvectorsOrthonormal(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(8)
		a := randomSymmetric(r, n)
		e, err := SymEigen(a)
		if err != nil {
			return false
		}
		vtv := e.Vectors.Transpose().Mul(e.Vectors)
		return vtv.ApproxEqual(Identity(n), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: reconstruction V·diag(λ)·Vᵀ = A.
func TestPropEigenReconstruction(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(8)
		a := randomSymmetric(r, n)
		e, err := SymEigen(a)
		if err != nil {
			return false
		}
		rec := e.Vectors.Mul(Diagonal(e.Values)).Mul(e.Vectors.Transpose())
		return rec.ApproxEqual(a, 1e-8*(1+a.MaxAbs()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: trace(A) = Σλ and eigenvalues sorted ascending.
func TestPropEigenTraceAndOrder(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(8)
		a := randomSymmetric(r, n)
		e, err := SymEigen(a)
		if err != nil {
			return false
		}
		var trace, sum float64
		for i := 0; i < n; i++ {
			trace += a.At(i, i)
			sum += e.Values[i]
		}
		if math.Abs(trace-sum) > 1e-8*(1+math.Abs(trace)) {
			return false
		}
		for i := 1; i < n; i++ {
			if e.Values[i] < e.Values[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func randomSPD(r *rand.Rand, n int) *Dense {
	// Laplacian-like SPD matrix: diagonally dominant with negative couplings,
	// the structure a thermal conductance matrix has.
	b := New(n, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Float64() < 0.5 {
				g := r.Float64() + 0.1
				b.Add(i, j, -g)
				b.Add(j, i, -g)
				b.Add(i, i, g)
				b.Add(j, j, g)
			}
		}
		b.Add(i, i, r.Float64()+0.05) // conductance to ambient keeps it PD
	}
	return b
}

func TestSymDefEigenDimensionChecks(t *testing.T) {
	if _, err := SymDefEigen([]float64{1, 2}, New(3, 3)); err == nil {
		t.Fatal("expected dimension mismatch error")
	}
	if _, err := SymDefEigen([]float64{1, -1}, randomSPD(rand.New(rand.NewSource(1)), 2)); err == nil {
		t.Fatal("expected error for non-positive diagonal")
	}
}

// Property: SymDefEigen factors A⁻¹B, i.e. A⁻¹B·V = V·diag(λ), V·V⁻¹ = I,
// and with SPD B all eigenvalues are positive.
func TestPropSymDefEigenFactorization(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(8)
		aDiag := make([]float64, n)
		for i := range aDiag {
			aDiag[i] = 0.1 + r.Float64()*5
		}
		b := randomSPD(r, n)
		ge, err := SymDefEigen(aDiag, b)
		if err != nil {
			return false
		}
		// All eigenvalues positive.
		for _, l := range ge.Lambda {
			if l <= 0 {
				return false
			}
		}
		// V·V⁻¹ = I.
		if !ge.V.Mul(ge.VInv).ApproxEqual(Identity(n), 1e-8) {
			return false
		}
		// A⁻¹B = V·diag(λ)·V⁻¹.
		ainvB := New(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				ainvB.Set(i, j, b.At(i, j)/aDiag[i])
			}
		}
		rec := ge.V.Mul(Diagonal(ge.Lambda)).Mul(ge.VInv)
		return rec.ApproxEqual(ainvB, 1e-7*(1+ainvB.MaxAbs()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSymEigen129(b *testing.B) {
	r := rand.New(rand.NewSource(11))
	a := randomSymmetric(r, 129)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SymEigen(a); err != nil {
			b.Fatal(err)
		}
	}
}
