package service

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// promValue extracts the sample value of a plain (label-free) metric from a
// Prometheus text exposition body.
func promValue(t *testing.T, body, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, name+" ") {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimPrefix(line, name+" "), 64)
		if err != nil {
			t.Fatalf("parsing %q: %v", line, err)
		}
		return v
	}
	t.Fatalf("metric %s not in exposition:\n%s", name, body)
	return 0
}

func scrape(t *testing.T, url string) string {
	t.Helper()
	resp, body := getJSON(t, url+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("GET /metrics content type %q", ct)
	}
	return string(body)
}

// TestMetricsEndpointCountsRuns is the issue's acceptance check: scraping
// /metrics before and after a POST /v1/run shows the counters moving.
func TestMetricsEndpointCountsRuns(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	before := scrape(t, ts.URL)
	resp, body := postJSON(t, ts.URL+"/v1/run", quickSpecJSON)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run failed: %d %s", resp.StatusCode, body)
	}
	after := scrape(t, ts.URL)

	for _, name := range []string{
		"service_run_requests_total",
		"sim_runs_total",
		"sim_epochs_total",
		"sim_slices_total",
		"service_run_seconds_count",
	} {
		if d := promValue(t, after, name) - promValue(t, before, name); d < 1 {
			t.Errorf("%s advanced by %g after a run, want ≥ 1", name, d)
		}
	}
	if v := promValue(t, after, "sim_peak_temp_celsius"); v < 40 || v > 120 {
		t.Errorf("sim_peak_temp_celsius = %g, want a plausible temperature", v)
	}
}

func TestBadSpecCountsAsBadRequest(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	before := metricBadRequests.Value()
	resp, _ := postJSON(t, ts.URL+"/v1/run", `{"scheduler": {"name": "nope"}}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	if d := metricBadRequests.Value() - before; d < 1 {
		t.Errorf("service_bad_requests_total advanced by %d, want ≥ 1", d)
	}
}

func TestExpvarEndpointServesSnapshot(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, body := getJSON(t, ts.URL+"/debug/vars")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/vars: status %d", resp.StatusCode)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatalf("expvar body not JSON: %v", err)
	}
	snap, ok := vars["hotpotato"]
	if !ok {
		t.Fatal("expvar output missing the hotpotato metrics snapshot")
	}
	var metrics map[string]any
	if err := json.Unmarshal(snap, &metrics); err != nil {
		t.Fatalf("hotpotato snapshot not a JSON object: %v", err)
	}
	if _, ok := metrics["sim_runs_total"]; !ok {
		t.Error("snapshot missing sim_runs_total")
	}
}

// waitForJob polls until the job reaches a terminal status and returns it.
func waitForJob(t *testing.T, url, id string) Job {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, body := getJSON(t, url+"/v1/jobs/"+id)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
		var job Job
		if err := json.Unmarshal(body, &job); err != nil {
			t.Fatal(err)
		}
		if job.Status.Terminal() {
			return job
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", job.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestJobTraceReturnsOneEventPerEpoch is the issue's async acceptance check:
// a completed 4×4 job's trace holds exactly one event per scheduler epoch.
func TestJobTraceReturnsOneEventPerEpoch(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, TraceDepth: 1 << 16})

	resp, body := postJSON(t, ts.URL+"/v1/jobs", quickSpecJSON)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var job Job
	if err := json.Unmarshal(body, &job); err != nil {
		t.Fatal(err)
	}
	done := waitForJob(t, ts.URL, job.ID)
	if done.Status != JobDone {
		t.Fatalf("job ended as %s: %s", done.Status, done.Error)
	}

	resp, body = getJSON(t, ts.URL+"/v1/jobs/"+job.ID+"/trace")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET trace: status %d: %s", resp.StatusCode, body)
	}
	var trace struct {
		ID      string           `json:"id"`
		Status  JobStatus        `json:"status"`
		Total   int64            `json:"total"`
		Dropped int64            `json:"dropped"`
		Events  []obs.EpochEvent `json:"events"`
	}
	if err := json.Unmarshal(body, &trace); err != nil {
		t.Fatal(err)
	}
	if trace.ID != job.ID || trace.Status != JobDone {
		t.Errorf("trace envelope = %s/%s, want %s/done", trace.ID, trace.Status, job.ID)
	}
	want := done.Result.SchedulerInvocations
	if trace.Total != int64(want) || len(trace.Events) != want || trace.Dropped != 0 {
		t.Fatalf("trace has %d events (total %d, dropped %d), want %d",
			len(trace.Events), trace.Total, trace.Dropped, want)
	}
	for i, ev := range trace.Events {
		if ev.Epoch != i {
			t.Fatalf("event %d has epoch %d", i, ev.Epoch)
		}
		if len(ev.CoreTemps) != 16 {
			t.Fatalf("event %d has %d core temps on a 4×4 chip", i, len(ev.CoreTemps))
		}
	}

	resp, _ = getJSON(t, ts.URL+"/v1/jobs/job-does-not-exist/trace")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job trace: status %d, want 404", resp.StatusCode)
	}
}

func TestTraceDisabledAnswers404(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, TraceDepth: -1})
	resp, body := postJSON(t, ts.URL+"/v1/jobs", quickSpecJSON)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var job Job
	if err := json.Unmarshal(body, &job); err != nil {
		t.Fatal(err)
	}
	waitForJob(t, ts.URL, job.ID)
	resp, _ = getJSON(t, ts.URL+"/v1/jobs/"+job.ID+"/trace")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("disabled tracing: status %d, want 404", resp.StatusCode)
	}
}

// TestJobTraceReadableMidRun exercises the concurrent read path: the trace
// endpoint must answer while the job is still running (the -race build is the
// real assertion here).
func TestJobTraceReadableMidRun(t *testing.T) {
	svc, ts := newTestServer(t, Config{Workers: 1, TraceDepth: 64})
	resp, body := postJSON(t, ts.URL+"/v1/jobs", longSpecJSON)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var job Job
	if err := json.Unmarshal(body, &job); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, body = getJSON(t, ts.URL+"/v1/jobs/"+job.ID+"/trace")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET trace mid-run: status %d: %s", resp.StatusCode, body)
		}
		var trace struct {
			Total int64 `json:"total"`
		}
		if err := json.Unmarshal(body, &trace); err != nil {
			t.Fatal(err)
		}
		if trace.Total > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never recorded an epoch")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Cleanup's Shutdown cancels the long run; just make sure it can.
	_ = svc
}
