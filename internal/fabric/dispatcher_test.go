package fabric

import (
	"encoding/json"
	"sync"
	"testing"
	"time"

	hotpotato "repro"
)

// fakeClock is a settable Clock for lease-expiry tests.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// testCells builds n valid quick cells (distinct seeds so hashes differ).
func testCells(t *testing.T, n int) []hotpotato.SweepCell {
	t.Helper()
	var spec hotpotato.RunSpec
	if err := json.Unmarshal([]byte(`{
		"platform":  {"width": 4, "height": 4},
		"scheduler": {"name": "hotpotato"},
		"workload":  {"kind": "explicit", "tasks": [{"bench": "blackscholes", "threads": 2, "work_scale": 0.2}]}
	}`), &spec); err != nil {
		t.Fatal(err)
	}
	cells := make([]hotpotato.SweepCell, n)
	for i := range cells {
		var s hotpotato.RunSpec
		data, _ := json.Marshal(spec)
		if err := json.Unmarshal(data, &s); err != nil {
			t.Fatal(err)
		}
		// Distinct work scales keep every cell's SpecHash distinct (a seed
		// would not: canonicalization drops it for explicit workloads).
		s.Workload.Tasks[0].WorkScale = 0.2 + 0.01*float64(i)
		cells[i] = hotpotato.SweepCell{Index: i, Spec: s.WithDefaults()}
	}
	return cells
}

// okRecord fabricates a worker result for a cell.
func okRecord(index int) hotpotato.SweepResultRecord {
	return hotpotato.SweepResultRecord{Type: "result", Index: index, Status: "ok",
		Result: &hotpotato.Result{}}
}

func newTestDispatcher(clock Clock, maxRetries int) *Dispatcher {
	return NewDispatcher(Config{
		LeaseTTL:   10 * time.Second,
		MaxRetries: maxRetries,
		LeaseCells: 2,
		Clock:      clock,
	})
}

// TestLeaseExpiryRequeuesAtFront: a lease whose worker never heartbeats
// expires one TTL later; its cells return to the FRONT of the queue so the
// recovered cells (the sweep's critical path) go out on the very next lease.
func TestLeaseExpiryRequeuesAtFront(t *testing.T) {
	clock := &fakeClock{now: time.Unix(1000, 0)}
	d := newTestDispatcher(clock, 3)
	sweep := d.Submit(testCells(t, 4), "", "")

	dead := d.Lease("doomed", 2) // books cells 0,1
	if dead == nil || len(dead.Cells) != 2 {
		t.Fatalf("lease grant %+v, want 2 cells", dead)
	}

	// Before expiry nothing happens.
	if n := d.ExpireLeases(clock.Now().Add(5 * time.Second)); n != 0 {
		t.Fatalf("lease expired %d early", n)
	}
	// One TTL on, the lease dies and cells 0,1 lead the queue again.
	clock.Advance(11 * time.Second)
	if n := d.ExpireLeases(clock.Now()); n != 1 {
		t.Fatalf("expired %d leases, want 1", n)
	}

	next := d.Lease("healthy", 2)
	if next == nil || len(next.Cells) != 2 {
		t.Fatalf("re-lease grant %+v", next)
	}
	got := map[int]bool{next.Cells[0].Index: true, next.Cells[1].Index: true}
	if !got[0] || !got[1] {
		t.Fatalf("re-lease booked cells %v, want the expired 0 and 1 first", got)
	}

	// A late result on the dead lease is rejected so the worker abandons.
	if _, ok := d.Results(dead.ID, []hotpotato.SweepResultRecord{okRecord(0)}); ok {
		t.Fatal("dead lease accepted results")
	}
	if ok, _ := d.Heartbeat(dead.ID); ok {
		t.Fatal("dead lease accepted a heartbeat")
	}

	// Finish everything through live leases; the stream must hold exactly
	// one record per cell despite the expiry detour.
	if n, ok := d.Results(next.ID, []hotpotato.SweepResultRecord{okRecord(0), okRecord(1)}); !ok || n != 2 {
		t.Fatalf("results accepted=%d ok=%v", n, ok)
	}
	rest := d.Lease("healthy", 2)
	if n, ok := d.Results(rest.ID, []hotpotato.SweepResultRecord{okRecord(2), okRecord(3)}); !ok || n != 2 {
		t.Fatalf("results accepted=%d ok=%v", n, ok)
	}

	var indices []int
	for rec := range sweep.Records() {
		if rec.Status != "ok" {
			t.Errorf("cell %d status %q", rec.Index, rec.Status)
		}
		indices = append(indices, rec.Index)
	}
	if len(indices) != 4 {
		t.Fatalf("stream carried %d records, want 4: %v", len(indices), indices)
	}
	completed, failed, canceled, _, _ := sweep.Counts()
	if completed != 4 || failed != 0 || canceled != 0 {
		t.Fatalf("counts completed=%d failed=%d canceled=%d", completed, failed, canceled)
	}
}

// TestLeaseExpiryHonorsHeartbeat: heartbeats (and result posts) push the
// deadline out, so a slow-but-alive worker never loses its lease.
func TestLeaseExpiryHonorsHeartbeat(t *testing.T) {
	clock := &fakeClock{now: time.Unix(1000, 0)}
	d := newTestDispatcher(clock, 3)
	d.Submit(testCells(t, 2), "", "")

	grant := d.Lease("slow", 2)
	for i := 0; i < 5; i++ {
		clock.Advance(8 * time.Second) // inside the 10s TTL each time
		if ok, _ := d.Heartbeat(grant.ID); !ok {
			t.Fatalf("heartbeat %d rejected", i)
		}
		if n := d.ExpireLeases(clock.Now()); n != 0 {
			t.Fatalf("heartbeated lease expired on round %d", i)
		}
	}
}

// TestLeaseRetryExhaustion: a cell whose lease expires more than MaxRetries
// times is reported "failed" instead of re-queued forever.
func TestLeaseRetryExhaustion(t *testing.T) {
	clock := &fakeClock{now: time.Unix(1000, 0)}
	d := newTestDispatcher(clock, 1) // 1 retry: second expiry fails the cell
	sweep := d.Submit(testCells(t, 1), "", "")

	for round := 0; round < 2; round++ {
		if grant := d.Lease("flaky", 1); grant == nil {
			t.Fatalf("round %d: no lease for the re-queued cell", round)
		}
		clock.Advance(11 * time.Second)
		if n := d.ExpireLeases(clock.Now()); n != 1 {
			t.Fatalf("round %d: expired %d leases", round, n)
		}
	}
	// bookings is now 2 > MaxRetries=1, so the cell failed on the second
	// expiry and the sweep closed.
	if grant := d.Lease("flaky", 1); grant != nil {
		t.Fatalf("exhausted cell re-leased: %+v", grant)
	}
	var recs []hotpotato.SweepResultRecord
	for rec := range sweep.Records() {
		recs = append(recs, rec)
	}
	if len(recs) != 1 || recs[0].Status != "failed" {
		t.Fatalf("records %+v, want one failed", recs)
	}
	_, failed, _, _, _ := sweep.Counts()
	if failed != 1 {
		t.Fatalf("failed = %d, want 1", failed)
	}
}

// TestResultsFirstWins: when an expired lease's cell completes on a second
// worker, a duplicate record for the same cell is dropped — the stream
// carries exactly one record per index.
func TestResultsFirstWins(t *testing.T) {
	clock := &fakeClock{now: time.Unix(1000, 0)}
	d := newTestDispatcher(clock, 3)
	sweep := d.Submit(testCells(t, 1), "", "")

	first := d.Lease("w1", 1)
	clock.Advance(11 * time.Second)
	d.ExpireLeases(clock.Now())
	second := d.Lease("w2", 1)

	if n, ok := d.Results(second.ID, []hotpotato.SweepResultRecord{okRecord(0)}); !ok || n != 1 {
		t.Fatalf("second lease results accepted=%d ok=%v", n, ok)
	}
	// w1 finally reports the same cell on its dead lease: rejected outright.
	if _, ok := d.Results(first.ID, []hotpotato.SweepResultRecord{okRecord(0)}); ok {
		t.Fatal("dead lease accepted a duplicate result")
	}

	count := 0
	for range sweep.Records() {
		count++
	}
	if count != 1 {
		t.Fatalf("stream carried %d records for one cell", count)
	}
}

// TestSubmitArchiveHit: cells whose hash is already archived replay
// immediately as Cached records, without ever entering the queue.
func TestSubmitArchiveHit(t *testing.T) {
	clock := &fakeClock{now: time.Unix(1000, 0)}
	archive, err := NewArchive(t.TempDir(), clock)
	if err != nil {
		t.Fatal(err)
	}
	cells := testCells(t, 2)
	hash0, err := hotpotato.SpecHash(cells[0].Spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := archive.Put(hash0, okRecord(99)); err != nil {
		t.Fatal(err)
	}

	d := NewDispatcher(Config{LeaseTTL: 10 * time.Second, LeaseCells: 2, Clock: clock, Archive: archive})
	sweep := d.Submit(cells, "", "")

	grant := d.Lease("w", 2)
	if grant == nil || len(grant.Cells) != 1 || grant.Cells[0].Index != 1 {
		t.Fatalf("lease %+v, want only the unarchived cell 1", grant)
	}
	d.Results(grant.ID, []hotpotato.SweepResultRecord{okRecord(1)})

	byIndex := map[int]hotpotato.SweepResultRecord{}
	for rec := range sweep.Records() {
		byIndex[rec.Index] = rec
	}
	if len(byIndex) != 2 {
		t.Fatalf("stream carried %d records, want 2", len(byIndex))
	}
	if !byIndex[0].Cached {
		t.Error("archived cell not marked Cached")
	}
	if byIndex[0].Index != 0 {
		t.Error("archive replay did not re-stamp the cell index")
	}
	_, _, _, _, cacheHits := sweep.Counts()
	if cacheHits != 1 {
		t.Errorf("cacheHits = %d, want 1", cacheHits)
	}
}

// TestCancelReleasesLeasedCells: canceling a sweep finishes its pending AND
// leased cells immediately (canceled), closes the stream, and tells the
// worker on its next heartbeat.
func TestCancelReleasesLeasedCells(t *testing.T) {
	clock := &fakeClock{now: time.Unix(1000, 0)}
	d := newTestDispatcher(clock, 3)
	sweep := d.Submit(testCells(t, 3), "", "")

	grant := d.Lease("w", 2) // cells 0,1 leased; 2 pending
	sweep.Cancel()

	// The stream closes without blocking on the leased cells.
	deadline := time.After(2 * time.Second)
	count := 0
	for {
		select {
		case _, ok := <-sweep.Records():
			if !ok {
				goto drained
			}
			count++
		case <-deadline:
			t.Fatal("record stream did not close after Cancel")
		}
	}
drained:
	if count != 0 {
		t.Fatalf("canceled sweep emitted %d records", count)
	}
	_, _, canceled, _, _ := sweep.Counts()
	if canceled != 3 {
		t.Fatalf("canceled = %d, want 3", canceled)
	}
	if ok, _ := d.Heartbeat(grant.ID); ok {
		t.Fatal("lease of a canceled sweep still heartbeats")
	}
	if st := d.Snapshot(); st.ActiveSweeps != 0 || st.QueuedCells != 0 {
		t.Fatalf("snapshot after cancel: %+v", st)
	}
}
