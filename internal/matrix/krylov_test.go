package matrix

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// denseSymOp adapts a dense symmetric matrix to the SymOp interface.
type denseSymOp struct{ a *Dense }

func (o denseSymOp) Dim() int                  { return o.a.Rows() }
func (o denseSymOp) MulVecTo(dst, x []float64) { o.a.MulVecTo(dst, x) }

// randomNegDefSym returns a random symmetric negative semidefinite matrix
// A = −Qᵀdiag(λ)Q with λ ∈ [0, spread], built from a random orthogonal-ish
// basis — the spectral shape of the whitened thermal operator.
func randomNegDefSym(rng *rand.Rand, n int, spread float64) *Dense {
	// Random symmetric, then shift to make it negative semidefinite by
	// Gershgorin.
	a := New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			v := rng.NormFloat64() * spread / float64(n)
			a.Set(i, j, v)
			a.Set(j, i, v)
		}
	}
	for i := 0; i < n; i++ {
		var row float64
		for j := 0; j < n; j++ {
			if j != i {
				row += math.Abs(a.At(i, j))
			}
		}
		a.Set(i, i, a.At(i, i)-row-rng.Float64()*spread)
	}
	return a
}

// TestKrylovExpmMatchesDense pins the Lanczos expm·v kernel against the
// dense eigendecomposition across ≥100 seeded random symmetric
// negative-definite systems (the numerics-contract differential test).
func TestKrylovExpmMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	trial := 0
	f := func() bool {
		trial++
		n := 2 + rng.Intn(30)
		spread := math.Exp(rng.Float64()*4 - 1) // ‖A‖ from ~0.4 to ~20
		a := randomNegDefSym(rng, n, spread)
		tstep := rng.Float64() * 2

		es, err := SymEigen(a)
		if err != nil {
			t.Fatalf("trial %d: SymEigen: %v", trial, err)
		}
		// e^{tA} via the dense eigen path (V orthogonal ⇒ V⁻¹ = Vᵀ).
		exp := ExpmEigen(es.Vectors, es.Values, es.Vectors.Transpose(), tstep)

		v := make([]float64, n)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		want := exp.MulVec(v)

		k := NewKrylovExpm(denseSymOp{a}, 0, 0)
		got := make([]float64, n)
		dim, est, err := k.ExpmVTo(got, tstep, v)
		if err != nil {
			t.Fatalf("trial %d: ExpmVTo: %v", trial, err)
		}
		scale := VecNorm2(v)
		for i := range want {
			if math.Abs(want[i]-got[i]) > 1e-9*(1+scale) {
				t.Fatalf("trial %d (n=%d, t=%.3g, dim=%d, est=%.3g): w[%d] = %g, dense %g",
					trial, n, tstep, dim, est, i, got[i], want[i])
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestKrylovExpmHappyBreakdown(t *testing.T) {
	// v an exact eigenvector ⇒ the subspace is invariant after one step and
	// the kernel must terminate early with an (essentially) exact result.
	n := 12
	d := make([]float64, n)
	for i := range d {
		d[i] = -float64(i + 1)
	}
	a := Diagonal(d)
	v := make([]float64, n)
	v[3] = 2.5
	k := NewKrylovExpm(denseSymOp{a}, 0, 0)
	got := make([]float64, n)
	dim, est, err := k.ExpmVTo(got, 0.7, v)
	if err != nil {
		t.Fatal(err)
	}
	if dim > 2 {
		t.Fatalf("eigenvector input used %d Lanczos dimensions, want ≤ 2", dim)
	}
	if est > 1e-12 {
		t.Fatalf("happy breakdown should report ~0 estimate, got %g", est)
	}
	want := 2.5 * math.Exp(0.7*-4)
	if math.Abs(got[3]-want) > 1e-12*math.Abs(want) {
		t.Fatalf("got[3] = %g, want %g", got[3], want)
	}
}

func TestKrylovExpmEdgeCases(t *testing.T) {
	a := randomNegDefSym(rand.New(rand.NewSource(3)), 5, 1)
	k := NewKrylovExpm(denseSymOp{a}, 0, 0)
	dst := make([]float64, 5)

	// t = 0 ⇒ identity.
	v := []float64{1, -2, 3, -4, 5}
	if _, _, err := k.ExpmVTo(dst, 0, v); err != nil {
		t.Fatal(err)
	}
	for i := range v {
		if dst[i] != v[i] {
			t.Fatalf("t=0 must return v, got %v", dst)
		}
	}

	// v = 0 ⇒ 0.
	zero := make([]float64, 5)
	if _, _, err := k.ExpmVTo(dst, 1, zero); err != nil {
		t.Fatal(err)
	}
	for i := range dst {
		if dst[i] != 0 {
			t.Fatalf("v=0 must return 0, got %v", dst)
		}
	}

	// dst aliasing v is allowed.
	alias := append([]float64(nil), v...)
	want := make([]float64, 5)
	if _, _, err := k.ExpmVTo(want, 0.5, v); err != nil {
		t.Fatal(err)
	}
	if _, _, err := k.ExpmVTo(alias, 0.5, alias); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(alias[i]-want[i]) > 1e-14 {
			t.Fatalf("aliased call diverged: %v vs %v", alias, want)
		}
	}
}

// TestKrylovExpmReuseAcrossCalls reuses one kernel for many products with
// varying step sizes, so successive calls converge at different subspace
// dimensions below the cap. Regression test for the eigenvector workspace
// keeping stale rotations between calls (the z block is strided by maxDim,
// so resetting it as if it were densely packed m×m misses the tail rows).
func TestKrylovExpmReuseAcrossCalls(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	n := 25
	a := randomNegDefSym(rng, n, 8)
	es, err := SymEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	k := NewKrylovExpm(denseSymOp{a}, 0, 0)
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	got := make([]float64, n)
	scale := VecNorm2(v)
	// Long steps first (large subspace), then short (small subspace): the
	// small-m calls must not inherit the large-m rotations.
	for _, tstep := range []float64{2.0, 1.3, 0.4, 0.1, 0.02, 0.004, 0.6, 1.7} {
		exp := ExpmEigen(es.Vectors, es.Values, es.Vectors.Transpose(), tstep)
		want := exp.MulVec(v)
		dim, est, err := k.ExpmVTo(got, tstep, v)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if math.Abs(want[i]-got[i]) > 1e-9*(1+scale) {
				t.Fatalf("t=%.3g (dim=%d, est=%.3g): w[%d] = %g, dense %g",
					tstep, dim, est, i, got[i], want[i])
			}
		}
	}
}

func TestKrylovExpmAllocationFree(t *testing.T) {
	a := randomNegDefSym(rand.New(rand.NewSource(4)), 40, 3)
	k := NewKrylovExpm(denseSymOp{a}, 0, 0)
	v := make([]float64, 40)
	for i := range v {
		v[i] = rand.New(rand.NewSource(5)).NormFloat64() + float64(i)
	}
	dst := make([]float64, 40)
	if allocs := testing.AllocsPerRun(50, func() {
		if _, _, err := k.ExpmVTo(dst, 0.3, v); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("ExpmVTo allocates %v times per call, want 0", allocs)
	}
}

// TestSymTridEigen checks the QL sweep directly on random tridiagonals
// against the dense Jacobi eigensolver.
func TestSymTridEigen(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(20)
		d := make([]float64, n)
		e := make([]float64, n)
		full := New(n, n)
		for i := 0; i < n; i++ {
			d[i] = rng.NormFloat64() * 3
			full.Set(i, i, d[i])
			if i < n-1 {
				e[i] = rng.NormFloat64()
				full.Set(i, i+1, e[i])
				full.Set(i+1, i, e[i])
			}
		}
		z := make([]float64, n*n)
		for i := 0; i < n; i++ {
			z[i*n+i] = 1
		}
		if err := symTridEigen(d, e, n, z, n); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Each (d[q], z[:,q]) must satisfy A·z = d·z.
		for q := 0; q < n; q++ {
			for i := 0; i < n; i++ {
				var av float64
				for j := 0; j < n; j++ {
					av += full.At(i, j) * z[j*n+q]
				}
				if math.Abs(av-d[q]*z[i*n+q]) > 1e-10*(1+math.Abs(d[q])) {
					t.Fatalf("trial %d: eigenpair %d violates A·v = λ·v at row %d (%.3g vs %.3g)",
						trial, q, i, av, d[q]*z[i*n+q])
				}
			}
		}
	}
}
