package workload

import (
	"fmt"
	"math/rand"
)

// Spec describes one task of a workload mix before instantiation.
type Spec struct {
	Bench     Benchmark
	Threads   int
	Arrival   float64
	WorkScale float64
}

// Instantiate converts specs into live tasks with sequential IDs.
func Instantiate(specs []Spec) ([]*Task, error) {
	tasks := make([]*Task, 0, len(specs))
	for i, s := range specs {
		t, err := NewTask(i, s.Bench, s.Threads, s.Arrival, s.WorkScale)
		if err != nil {
			return nil, err
		}
		tasks = append(tasks, t)
	}
	return tasks, nil
}

// HomogeneousFullLoad builds the Fig. 4(a) scenario: vari-sized
// multi-threaded instances of a single benchmark that together occupy
// exactly totalThreads cores, all arriving at t=0 (a closed, fixed system).
// Sizes cycle through the given list, truncating the last instance if needed.
func HomogeneousFullLoad(b Benchmark, totalThreads int, sizes []int) ([]Spec, error) {
	if totalThreads < 1 {
		return nil, fmt.Errorf("workload: totalThreads must be positive, got %d", totalThreads)
	}
	if len(sizes) == 0 {
		return nil, fmt.Errorf("workload: need at least one instance size")
	}
	for _, s := range sizes {
		if s < 1 {
			return nil, fmt.Errorf("workload: instance size %d invalid", s)
		}
	}
	var specs []Spec
	remaining := totalThreads
	for i := 0; remaining > 0; i++ {
		threads := sizes[i%len(sizes)]
		if threads > remaining {
			threads = remaining
		}
		specs = append(specs, Spec{Bench: b, Threads: threads, Arrival: 0, WorkScale: 1})
		remaining -= threads
	}
	return specs, nil
}

// RandomMix builds the Fig. 4(b) scenario: `count` tasks drawn uniformly from
// the PARSEC set with random sizes, arriving as a Poisson process with the
// given rate (tasks per second). Deterministic for a fixed seed.
func RandomMix(count int, arrivalRate float64, seed int64) ([]Spec, error) {
	if count < 1 {
		return nil, fmt.Errorf("workload: count must be positive, got %d", count)
	}
	if arrivalRate <= 0 {
		return nil, fmt.Errorf("workload: arrival rate must be positive, got %g", arrivalRate)
	}
	rng := rand.New(rand.NewSource(seed))
	bs := PARSEC()
	sizes := []int{2, 4, 8}

	specs := make([]Spec, 0, count)
	now := 0.0
	for i := 0; i < count; i++ {
		now += rng.ExpFloat64() / arrivalRate
		specs = append(specs, Spec{
			Bench:     bs[rng.Intn(len(bs))],
			Threads:   sizes[rng.Intn(len(sizes))],
			Arrival:   now,
			WorkScale: 0.5 + rng.Float64(), // instance-to-instance size jitter
		})
	}
	return specs, nil
}

// TotalThreads sums the thread counts of a mix.
func TotalThreads(specs []Spec) int {
	total := 0
	for _, s := range specs {
		total += s.Threads
	}
	return total
}
