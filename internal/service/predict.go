package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"

	hotpotato "repro"
	"repro/internal/fabric"
	"repro/internal/obs"
)

// POST /v1/predict: the analytical-twin fast path. The body is a PredictSpec
// (today exactly a RunSpec — the run to predict instead of simulate); the
// response carries the twin's three fields (peak steady-state temperature,
// transient peak, makespan), each a point estimate with a conservative
// confidence bound, plus the model identity that produced them. The twin
// only answers inside its calibrated domain; out-of-domain specs get 422
// out_of_domain and must use /v1/run. Predictions are deterministic in
// (spec, model): equal canonical specs against the same artifact yield
// byte-identical responses, which is why the ETag covers both hashes.

// predictResponse is the envelope of POST /v1/predict.
type predictResponse struct {
	// Prediction is the twin's answer: per-field estimate, bound (the max
	// residual observed over the calibration grid's held-out samples, with
	// safety margin), and a conclusive flag — false means the spec drifted
	// outside the calibration envelope and the field is advisory only.
	Prediction hotpotato.TwinPrediction `json:"prediction"`
	// ModelVersion and ModelHash identify the calibration artifact; replays
	// against a different artifact produce a different ETag.
	ModelVersion string `json:"model_version"`
	ModelHash    string `json:"model_hash"`
	// SpecHash is the canonical spec's content hash — the same identity
	// /v1/run uses, so a client can correlate a prediction with the run
	// that validates it.
	SpecHash string `json:"spec_hash"`
}

// predictETag is the entity tag of a prediction: spec hash plus model hash,
// because the response is a pure function of both.
func predictETag(specHash, modelHash string) string {
	return `"` + specHash + "+" + strings.TrimPrefix(modelHash, "sha256:") + `"`
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	if s.closed.Load() {
		writeError(w, http.StatusServiceUnavailable, errors.New("server shutting down"))
		return
	}
	if s.twin == nil {
		writeError(w, http.StatusServiceUnavailable,
			errors.New("no twin model loaded (start the server with -twin-model)"))
		return
	}
	var spec hotpotato.PredictSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		metricBadRequests.Inc()
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding PredictSpec: %w", err))
		return
	}
	spec.RunSpec = spec.RunSpec.WithDefaults()
	fabric.ApplyDefaultSolver(&spec.RunSpec, s.cfg.DefaultSolver)
	if err := spec.RunSpec.Validate(); err != nil {
		metricBadRequests.Inc()
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// Validate succeeded, so hashing cannot fail.
	hash, _ := hotpotato.SpecHash(spec.RunSpec)
	etag := predictETag(hash, s.twin.Hash)
	if match := r.Header.Get("If-None-Match"); match != "" && ifNoneMatchHas(match, etag) {
		w.Header().Set("ETag", etag)
		w.WriteHeader(http.StatusNotModified)
		return
	}

	metricPredictRequests.Inc()
	plat, err := s.cache.Get(spec.RunSpec.Platform)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	pred, err := hotpotato.TwinPredict(s.twin, plat, spec.RunSpec)
	switch {
	case err == nil:
	case errors.Is(err, hotpotato.ErrTwinDomain):
		metricPredictDomainRejected.Inc()
		obs.LoggerFrom(r.Context()).Info("predict out of domain", "error", err.Error())
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	default:
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	// Arm the drift tracker: if a full run of this exact spec comes through
	// later, its peak temperature is checked against this transient-peak
	// prediction (see drift.go).
	s.drift.Predict(hash, pred.TransientPeakC)
	w.Header().Set("ETag", etag)
	writeJSON(w, http.StatusOK, predictResponse{
		Prediction:   pred,
		ModelVersion: s.twin.Version,
		ModelHash:    s.twin.Hash,
		SpecHash:     hash,
	})
}
