package service

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strings"
	"testing"
	"time"

	hotpotato "repro"
)

// TestErrorEnvelope drives every non-2xx path of the v1 surface and asserts
// the single JSON error envelope: {"error": {"code", "message", fields...}}
// with the documented status→code mapping.
func TestErrorEnvelope(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1, MaxSweepCells: 2})

	cases := []struct {
		name       string
		do         func(t *testing.T) (*http.Response, []byte)
		status     int
		code       string
		fragment   string // must appear in the message
		wantFields bool
	}{
		{
			name: "undecodable run body",
			do: func(t *testing.T) (*http.Response, []byte) {
				return postJSON(t, ts.URL+"/v1/run", `{not json`)
			},
			status: http.StatusBadRequest, code: CodeInvalidRequest, fragment: "decoding RunSpec",
		},
		{
			name: "invalid run spec lists every field",
			do: func(t *testing.T) (*http.Response, []byte) {
				return postJSON(t, ts.URL+"/v1/run", `{"scheduler": {"name": "no-such"}, "workload": {"kind": "bogus"}}`)
			},
			status: http.StatusBadRequest, code: CodeInvalidRequest, fragment: "no-such", wantFields: true,
		},
		{
			name: "undecodable sweep body",
			do: func(t *testing.T) (*http.Response, []byte) {
				return postJSON(t, ts.URL+"/v1/batch", `[1,2`)
			},
			status: http.StatusBadRequest, code: CodeInvalidRequest, fragment: "decoding SweepSpec",
		},
		{
			name: "unknown sweep version",
			do: func(t *testing.T) (*http.Response, []byte) {
				return postJSON(t, ts.URL+"/v1/batch", `{"version": "v9"}`)
			},
			status: http.StatusBadRequest, code: CodeInvalidRequest, fragment: "version",
		},
		{
			name: "oversized sweep",
			do: func(t *testing.T) (*http.Response, []byte) {
				return postJSON(t, ts.URL+"/v1/batch", `{"axes": {"seeds": [1, 2, 3], "solvers": ["dense", "sparse"]}}`)
			},
			status: http.StatusRequestEntityTooLarge, code: CodeTooLarge, fragment: "6 cells",
		},
		{
			name: "unknown job",
			do: func(t *testing.T) (*http.Response, []byte) {
				return getJSON(t, ts.URL+"/v1/jobs/job-999")
			},
			status: http.StatusNotFound, code: CodeNotFound, fragment: "job-999",
		},
		{
			name: "bad jobs status filter",
			do: func(t *testing.T) (*http.Response, []byte) {
				return getJSON(t, ts.URL+"/v1/jobs?status=exploded")
			},
			status: http.StatusBadRequest, code: CodeInvalidRequest, fragment: "exploded",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			resp, body := c.do(t)
			if resp.StatusCode != c.status {
				t.Fatalf("status %d, want %d: %s", resp.StatusCode, c.status, body)
			}
			var env errorEnvelope
			if err := json.Unmarshal(body, &env); err != nil {
				t.Fatalf("body is not the error envelope: %v\n%s", err, body)
			}
			if env.Error.Code != c.code {
				t.Errorf("code %q, want %q", env.Error.Code, c.code)
			}
			if env.Error.Message == "" || !strings.Contains(env.Error.Message, c.fragment) {
				t.Errorf("message %q does not contain %q", env.Error.Message, c.fragment)
			}
			if c.wantFields && len(env.Error.Fields) < 2 {
				t.Errorf("multi-error validation should itemize fields, got %v", env.Error.Fields)
			}
		})
	}
}

// TestErrorEnvelopeOverCapacityAndUnavailable covers the 429 (queue full)
// and 503 (shutdown) paths, which need server state the table above cannot
// set up statelessly.
func TestErrorEnvelopeOverCapacityAndUnavailable(t *testing.T) {
	svc, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})

	// Saturate: with one worker and a one-deep queue, three long submissions
	// leave the third with nowhere to go — the 429 path.
	var resp *http.Response
	var body []byte
	for i := 0; i < 3; i++ {
		resp, body = postJSON(t, ts.URL+"/v1/jobs", longSpecJSON)
	}
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("queue overflow status %d, want 429: %s", resp.StatusCode, body)
	}
	var env errorEnvelope
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("429 body is not the envelope: %v\n%s", err, body)
	}
	if env.Error.Code != CodeOverCapacity {
		t.Errorf("429 code %q, want %q", env.Error.Code, CodeOverCapacity)
	}

	// Shut down (force-cancel the long jobs) and assert the 503 envelope on
	// every POST surface.
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	_ = svc.Shutdown(shutdownCtx)
	for _, path := range []string{"/v1/run", "/v1/jobs", "/v1/batch"} {
		resp, body := postJSON(t, ts.URL+path, quickSpecJSON)
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("%s after shutdown: status %d", path, resp.StatusCode)
			continue
		}
		var env errorEnvelope
		if err := json.Unmarshal(body, &env); err != nil {
			t.Errorf("%s 503 body is not the envelope: %v\n%s", path, err, body)
			continue
		}
		if env.Error.Code != CodeUnavailable {
			t.Errorf("%s 503 code %q, want %q", path, env.Error.Code, CodeUnavailable)
		}
	}
}

// TestCachedErrorKeepsTimeoutIdentity: a replayed MaxTime stop must satisfy
// errors.Is(err, hotpotato.ErrTimeout) exactly like the live error, or
// handlers would misclassify cached timeouts as internal failures.
func TestCachedErrorKeepsTimeoutIdentity(t *testing.T) {
	err := error(cachedError{msg: "sim: simulation exceeded MaxTime after 1.0 s"})
	if !errors.Is(err, hotpotato.ErrTimeout) {
		t.Error("cachedError lost the ErrTimeout identity")
	}
	if errors.Is(err, hotpotato.ErrCanceled) {
		t.Error("cachedError must not claim the ErrCanceled identity")
	}
	if err.Error() == "" {
		t.Error("cachedError lost its message")
	}
}

// TestErrorCodeMapping pins the status→code table documented in docs/API.md.
func TestErrorCodeMapping(t *testing.T) {
	want := map[int]string{
		http.StatusBadRequest:            CodeInvalidRequest,
		http.StatusNotFound:              CodeNotFound,
		http.StatusRequestEntityTooLarge: CodeTooLarge,
		http.StatusTooManyRequests:       CodeOverCapacity,
		http.StatusServiceUnavailable:    CodeUnavailable,
		http.StatusInternalServerError:   CodeInternal,
		http.StatusTeapot:                CodeInternal, // anything unmapped is internal
	}
	for status, code := range want {
		if got := errorCode(status); got != code {
			t.Errorf("errorCode(%d) = %q, want %q", status, got, code)
		}
	}
}
