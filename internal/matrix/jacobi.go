package matrix

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrNoConvergence is returned when an iterative eigensolver fails to reach
// its tolerance within the sweep budget.
var ErrNoConvergence = errors.New("matrix: eigensolver did not converge")

// Eigen holds the eigendecomposition of a symmetric matrix:
// A = V * diag(Values) * Vᵀ with orthonormal columns in V, sorted ascending.
type Eigen struct {
	Values  []float64
	Vectors *Dense // column k is the eigenvector for Values[k]
}

// SymEigen computes the eigendecomposition of the symmetric matrix a with the
// cyclic Jacobi method. The input must be symmetric; asymmetry beyond 1e-9
// relative to the largest entry is rejected.
func SymEigen(a *Dense) (*Eigen, error) {
	if a.rows != a.cols {
		return nil, fmt.Errorf("matrix: SymEigen of non-square %dx%d matrix", a.rows, a.cols)
	}
	tol := 1e-9 * (1 + a.MaxAbs())
	if !a.IsSymmetric(tol) {
		return nil, fmt.Errorf("matrix: SymEigen input is not symmetric within %g", tol)
	}
	n := a.rows
	w := a.Clone()
	v := Identity(n)

	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := offDiagNorm(w)
		if off <= 1e-14*(1+w.MaxAbs()) {
			return sortedEigen(w, v), nil
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.data[p*n+q]
				if math.Abs(apq) <= 1e-300 {
					continue
				}
				app := w.data[p*n+p]
				aqq := w.data[q*n+q]
				// Classic Jacobi rotation parameters.
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c

				applyJacobiRotation(w, p, q, c, s)
				rotateColumns(v, p, q, c, s)
			}
		}
	}
	if offDiagNorm(w) <= 1e-10*(1+w.MaxAbs()) {
		// Converged to a slightly looser tolerance; accept.
		return sortedEigen(w, v), nil
	}
	return nil, ErrNoConvergence
}

// applyJacobiRotation applies the two-sided rotation J(p,q,θ)ᵀ W J(p,q,θ).
func applyJacobiRotation(w *Dense, p, q int, c, s float64) {
	n := w.rows
	for i := 0; i < n; i++ {
		if i == p || i == q {
			continue
		}
		wip := w.data[i*n+p]
		wiq := w.data[i*n+q]
		w.data[i*n+p] = c*wip - s*wiq
		w.data[p*n+i] = w.data[i*n+p]
		w.data[i*n+q] = s*wip + c*wiq
		w.data[q*n+i] = w.data[i*n+q]
	}
	wpp := w.data[p*n+p]
	wqq := w.data[q*n+q]
	wpq := w.data[p*n+q]
	w.data[p*n+p] = c*c*wpp - 2*s*c*wpq + s*s*wqq
	w.data[q*n+q] = s*s*wpp + 2*s*c*wpq + c*c*wqq
	w.data[p*n+q] = 0
	w.data[q*n+p] = 0
}

// rotateColumns applies the rotation to columns p and q of v (accumulating
// eigenvectors).
func rotateColumns(v *Dense, p, q int, c, s float64) {
	n := v.rows
	for i := 0; i < n; i++ {
		vip := v.data[i*n+p]
		viq := v.data[i*n+q]
		v.data[i*n+p] = c*vip - s*viq
		v.data[i*n+q] = s*vip + c*viq
	}
}

func offDiagNorm(w *Dense) float64 {
	n := w.rows
	var s float64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			s += 2 * w.data[i*n+j] * w.data[i*n+j]
		}
	}
	return math.Sqrt(s)
}

func sortedEigen(w, v *Dense) *Eigen {
	n := w.rows
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	vals := w.DiagonalOf()
	sort.Slice(idx, func(a, b int) bool { return vals[idx[a]] < vals[idx[b]] })

	e := &Eigen{Values: make([]float64, n), Vectors: New(n, n)}
	for k, src := range idx {
		e.Values[k] = vals[src]
		for i := 0; i < n; i++ {
			e.Vectors.data[i*n+k] = v.data[i*n+src]
		}
	}
	return e
}

// GeneralizedEigen holds the solution of the generalized symmetric-definite
// eigenproblem B·v = λ·A·v with A diagonal positive: eigenvalues Lambda and
// the (A-orthogonal) eigenvector matrix V together with its inverse.
//
// For the thermal system C = −A⁻¹B this gives C = V·diag(−Lambda)·V⁻¹, the
// factorization the paper's Eqs. (8)–(10) rely on.
type GeneralizedEigen struct {
	Lambda []float64 // eigenvalues of A⁻¹B, all positive for SPD B
	V      *Dense    // eigenvectors of A⁻¹B (columns)
	VInv   *Dense    // V⁻¹
}

// SymDefEigen solves A⁻¹B = V·diag(λ)·V⁻¹ where aDiag is the positive
// diagonal of A and b is symmetric positive definite. It reduces to the
// ordinary symmetric problem S = A^{-1/2} B A^{-1/2}, whose eigenvectors U
// map back as V = A^{-1/2} U and V⁻¹ = Uᵀ A^{1/2}.
func SymDefEigen(aDiag []float64, b *Dense) (*GeneralizedEigen, error) {
	n := len(aDiag)
	if b.rows != n || b.cols != n {
		return nil, fmt.Errorf("matrix: SymDefEigen dimension mismatch: diag %d vs %dx%d", n, b.rows, b.cols)
	}
	for i, v := range aDiag {
		if v <= 0 {
			return nil, fmt.Errorf("matrix: SymDefEigen requires positive diagonal A, got A[%d]=%g", i, v)
		}
	}
	invSqrt := make([]float64, n)
	sqrtA := make([]float64, n)
	for i, v := range aDiag {
		sqrtA[i] = math.Sqrt(v)
		invSqrt[i] = 1 / sqrtA[i]
	}
	// S = A^{-1/2} B A^{-1/2}, symmetric.
	s := New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			s.data[i*n+j] = invSqrt[i] * b.data[i*n+j] * invSqrt[j]
		}
	}
	es, err := SymEigen(s)
	if err != nil {
		return nil, err
	}
	ge := &GeneralizedEigen{Lambda: es.Values, V: New(n, n), VInv: New(n, n)}
	u := es.Vectors
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			ge.V.data[i*n+k] = invSqrt[i] * u.data[i*n+k]
			// VInv = Uᵀ A^{1/2}: row k of VInv is column k of U scaled by sqrtA.
			ge.VInv.data[k*n+i] = u.data[i*n+k] * sqrtA[i]
		}
	}
	return ge, nil
}
