package obs

// selfmetrics.go instruments the observability layer itself. SpanRecorder
// and RingTracer drop counts were previously visible only in the per-job
// endpoint envelopes (total/dropped fields), which makes a fleet-wide drop
// rate — the signal that retention depths are undersized — unobservable
// from /metrics. These process-global counters aggregate the drops across
// every recorder and tracer in the process; the per-instance Dropped()
// accessors remain the per-job view.
var (
	metricSpansDropped = NewCounter("obs_spans_dropped_total",
		"Spans dropped by SpanRecorder capacity bounds, summed over all recorders in the process.")
	metricTraceEventsDropped = NewCounter("obs_trace_events_dropped_total",
		"Epoch trace events overwritten by RingTracer ring bounds, summed over all tracers in the process.")
)
