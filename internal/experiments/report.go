package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"
)

// WriteTableI prints the platform parameters in the paper's Table I layout.
func WriteTableI(w io.Writer, rows []TableIRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Table I: Core parameters for simulated S-NUCA processor")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\n", r.Parameter, r.Value)
	}
	tw.Flush()
}

// WriteFig2 prints the motivational-example outcomes.
func WriteFig2(w io.Writer, res *Fig2Result) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Fig. 2: two-threaded blackscholes on the 16-core chip (threshold 70 °C)")
	fmt.Fprintln(tw, "policy\tresponse\tpeak temp\tbreaches 70 °C\tmigrations")
	for _, p := range []Fig2Policy{res.None, res.TSP, res.Rotation} {
		fmt.Fprintf(tw, "%s\t%.1f ms\t%.1f °C\t%v\t%d\n",
			p.Name, p.Response*1e3, p.PeakTemp, p.Breaches, p.Migrations)
	}
	tw.Flush()
}

// WriteFig4a prints the homogeneous full-load comparison.
func WriteFig4a(w io.Writer, rows []Fig4aRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Fig. 4(a): homogeneous full load, 64-core chip (normalized makespan, PCMig = 1.0)")
	fmt.Fprintln(tw, "benchmark\tHotPotato\tPCMig\tnormalized\tspeedup\tHP energy\tPCMig energy")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.1f ms\t%.1f ms\t%.3f\t%.2f%%\t%.1f J\t%.1f J\n",
			r.Benchmark, r.HotPotatoMakespan*1e3, r.PCMigMakespan*1e3,
			r.NormalizedMakespan, r.SpeedupPercent, r.HotPotatoEnergy, r.PCMigEnergy)
	}
	fmt.Fprintf(tw, "average speedup\t\t\t\t%.2f%%\n", Fig4aAverageSpeedup(rows))
	tw.Flush()
}

// WriteFig4b prints the heterogeneous open-system comparison.
func WriteFig4b(w io.Writer, rows []Fig4bRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Fig. 4(b): heterogeneous 20-task Poisson workload, 64-core chip")
	fmt.Fprintln(tw, "arrival rate\tHotPotato resp\tPCMig resp\tspeedup")
	for _, r := range rows {
		fmt.Fprintf(tw, "%.0f/s\t%.1f ms\t%.1f ms\t%.2f%%\n",
			r.ArrivalRate, r.HotPotatoResponse*1e3, r.PCMigResponse*1e3, r.SpeedupPercent)
	}
	tw.Flush()
}

// WriteTauSweep prints the rotation-interval ablation.
func WriteTauSweep(w io.Writer, rows []TauSweepRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Ablation: rotation interval τ (Fig. 2c scenario, DTM off)")
	fmt.Fprintln(tw, "τ\tresponse\tpeak temp\tmigrations")
	for _, r := range rows {
		fmt.Fprintf(tw, "%.3f ms\t%.1f ms\t%.2f °C\t%d\n",
			r.Tau*1e3, r.Response*1e3, r.PeakTemp, r.Migrations)
	}
	tw.Flush()
}

// WriteRingScope prints the rotation-scope ablation.
func WriteRingScope(w io.Writer, rows []RingScopeRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Ablation: rotation scope (memory-bound streamcluster)")
	fmt.Fprintln(tw, "scope\tresponse\tpeak temp")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.1f ms\t%.2f °C\n", r.Scope, r.Response*1e3, r.PeakTemp)
	}
	tw.Flush()
}

// WriteMigrationCostSweep prints the migration-cost sensitivity ablation.
func WriteMigrationCostSweep(w io.Writer, rows []MigrationCostRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Ablation: migration cost sensitivity (blackscholes full load)")
	fmt.Fprintln(tw, "cost scale\tHotPotato\tPCMig\tspeedup")
	for _, r := range rows {
		fmt.Fprintf(tw, "%.1f×\t%.1f ms\t%.1f ms\t%.2f%%\n",
			r.CostScale, r.HotPotato*1e3, r.PCMig*1e3, r.SpeedupPercent)
	}
	tw.Flush()
}

// WriteAnalyticVsBrute prints the Algorithm 1 validation ablation.
func WriteAnalyticVsBrute(w io.Writer, rows []AnalyticVsBruteRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Ablation: Algorithm 1 vs brute-force transient simulation")
	fmt.Fprintln(tw, "δ\tanalytic peak\tbrute peak\tanalytic time\tbrute time\tspeedup")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%.3f °C\t%.3f °C\t%v\t%v\t%.0f×\n",
			r.Delta, r.AnalyticPeak, r.BrutePeak, r.AnalyticTime, r.BruteTime, r.SpeedupFactor)
	}
	tw.Flush()
}

// WriteHybrid prints the future-work (rotation+DVFS) comparison.
func WriteHybrid(w io.Writer, rows []HybridRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Future work (§VII): synchronous rotation unified with DVFS")
	fmt.Fprintln(tw, "benchmark\tHotPotato\thybrid\tPCMig\tHP DTM\thybrid DTM")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.1f ms\t%.1f ms\t%.1f ms\t%.1f ms\t%.1f ms\n",
			r.Benchmark, r.HotPotato*1e3, r.Hybrid*1e3, r.PCMig*1e3,
			r.HotPotatoDTM*1e3, r.HybridDTM*1e3)
	}
	tw.Flush()
}

// WriteFig4bMultiSeed prints the seed-aggregated heterogeneous comparison.
func WriteFig4bMultiSeed(w io.Writer, rows []Fig4bAggRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Fig. 4(b), seed-aggregated: mean speedup ± 95% CI")
	fmt.Fprintln(tw, "arrival rate\tHotPotato resp\tPCMig resp\tspeedup\tseeds")
	for _, r := range rows {
		fmt.Fprintf(tw, "%.0f/s\t%.1f ms\t%.1f ms\t%.2f%% ± %.2f\t%d\n",
			r.ArrivalRate, r.MeanHotPotato*1e3, r.MeanPCMig*1e3,
			r.MeanSpeedup, r.SpeedupCI95, r.Seeds)
	}
	tw.Flush()
}

// WriteThreeD prints the 3D-stack exploration.
func WriteThreeD(w io.Writer, res *ThreeDResult) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Future work (§VII): 3D-stacked S-NUCA, 2×(4×4) chip, 9 W thread on the buried layer")
	fmt.Fprintf(tw, "buried layer runs %.2f K hotter than the top layer at uniform power\n", res.BuriedHotter)
	fmt.Fprintln(tw, "policy\tAlgorithm 1 peak")
	for _, r := range res.Rows {
		fmt.Fprintf(tw, "%s\t%.2f °C\n", r.Policy, r.Peak)
	}
	tw.Flush()
}

// WriteHeterogeneity prints the platform-characterization table.
func WriteHeterogeneity(w io.Writer, rows []HeterogeneityRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Platform characterization: S-NUCA placement gain and DVFS sensitivity [19]")
	fmt.Fprintln(tw, "benchmark\tIPS centre\tIPS corner\tplacement gain\tslowdown at f/2")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.2f G/s\t%.2f G/s\t%.1f%%\t%.1f%%\n",
			r.Benchmark, r.BestIPS/1e9, r.WorstIPS/1e9,
			r.PlacementGainPercent, r.DVFSSlowdownPercent)
	}
	tw.Flush()
}

// WriteNoiseSweep prints the sensor-noise robustness ablation.
func WriteNoiseSweep(w io.Writer, rows []NoiseSweepRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Ablation: thermal-sensor noise robustness (HotPotato, blackscholes full load)")
	fmt.Fprintln(tw, "noise σ\tmakespan\tpeak temp\tDTM time")
	for _, r := range rows {
		fmt.Fprintf(tw, "%.1f K\t%.1f ms\t%.2f °C\t%.1f ms\n",
			r.NoiseStdDev, r.Makespan*1e3, r.PeakTemp, r.DTMTime*1e3)
	}
	tw.Flush()
}

// WriteHeadroomSweep prints the Δ headroom ablation.
func WriteHeadroomSweep(w io.Writer, rows []HeadroomSweepRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Ablation: headroom Δ (HotPotato, blackscholes full load; paper default 1 °C)")
	fmt.Fprintln(tw, "Δ\tmakespan\tpeak temp\tDTM events")
	for _, r := range rows {
		fmt.Fprintf(tw, "%.1f K\t%.1f ms\t%.2f °C\t%d\n",
			r.Delta, r.Makespan*1e3, r.PeakTemp, r.DTMEvents)
	}
	tw.Flush()
}

// WriteBaselines prints the cross-policy summary.
func WriteBaselines(w io.Writer, bench string, rows []BaselineRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "Policy ladder on %s full load (64 cores)\n", bench)
	fmt.Fprintln(tw, "policy\tmakespan\tpeak\tDTM time\tmigrations\tenergy")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.1f ms\t%.2f °C\t%.1f ms\t%d\t%.1f J\n",
			r.Policy, r.Makespan*1e3, r.PeakTemp, r.DTMTime*1e3, r.Migrations, r.EnergyJ)
	}
	tw.Flush()
}

// WriteContention prints the bandwidth-model ablation.
func WriteContention(w io.Writer, rows []ContentionRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Ablation: NoC/bank contention model (memory-heavy full loads)")
	fmt.Fprintln(tw, "benchmark\tHP (no cont.)\tHP (cont.)\tPCMig (cont.)\tspeedup\tcontention cost")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.1f ms\t%.1f ms\t%.1f ms\t%.2f%%\t%.1f%%\n",
			r.Benchmark, r.HotPotatoOff*1e3, r.HotPotatoOn*1e3, r.PCMigOn*1e3,
			r.SpeedupOnPercent, r.ContentionCostPct)
	}
	tw.Flush()
}
