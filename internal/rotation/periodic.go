package rotation

import (
	"fmt"
	"math"
)

// periodic.go: the matrix-free periodic-steady-state evaluator used when the
// thermal model runs the sparse backend and therefore offers no eigenbasis.
//
// The start-of-period temperature obeys the affine fixed point T* = F(T*)
// with F one full rotation period of exact epoch steps (thermal.Stepper —
// in sparse mode the Krylov kernel). F's linear part is E^δ, whose spectral
// radius r = e^{−λ_min·δ·τ} < 1, so plain iteration converges geometrically
// with ratio r and the tail after an iterate with update Δ_k obeys
//
//	‖T* − T_k‖ ≤ ‖Δ_k‖ · r/(1 − r) ,
//
// with r estimated from consecutive update ratios. Because the slowest
// thermal mode (the heatsink) makes r close to 1 for realistic δ·τ, the
// iteration is accelerated by periodic Aitken extrapolation: once the ratio
// has stabilized, T ← T + Δ·r̂/(1 − r̂) jumps along the dominant eigenmode,
// leaving only the faster-decaying modes. The certified stop criterion is
// the tail bound above against the calculator's IterTol (default
// DefaultIterTol). docs/THEORY.md §"Sparse numerics" discusses convergence
// and when the dense eigenbasis path is preferable.

// maxPeriods bounds the fixed-point iteration; at the default tolerance even
// a pathological r = 0.999 converges within it, so hitting the cap means the
// model is non-dissipative (which model construction already rejects).
const maxPeriods = 200000

// evaluateIterative computes the plan's periodic steady state by fixed-point
// iteration and walks one period recording epoch boundaries; with
// subsamples > 1 it additionally samples inside every epoch like
// EvaluateFine. The plan is already validated.
func (c *Calculator) evaluateIterative(plan Plan, subsamples int) (*Result, error) {
	metricEvals.Inc()
	delta := plan.Delta()
	N := c.nNodes
	stepper, err := c.m.NewStepper(plan.Tau)
	if err != nil {
		return nil, err
	}

	t := append([]float64(nil), c.m.AmbientSteady()...)
	prev := make([]float64, N)
	prevNorm := math.Inf(1)
	converged := false
	for k := 0; k < maxPeriods; k++ {
		copy(prev, t)
		for e := 0; e < delta; e++ {
			stepper.StepTo(t, t, plan.Powers[e])
		}
		var nd float64
		for i := range t {
			if d := math.Abs(t[i] - prev[i]); d > nd {
				nd = d
			}
		}
		if nd == 0 {
			converged = true
			break
		}
		// The update ratio is only meaningful when the previous update came
		// from a plain (un-extrapolated) period — the first period and the
		// one after each extrapolation have no valid reference.
		rValid := !math.IsInf(prevNorm, 1)
		r := nd / prevNorm
		prevNorm = nd
		if rValid && r < 1 {
			if nd*r/(1-r) < c.iterTol {
				converged = true
				break
			}
			// Aitken extrapolation along the dominant mode. Only every few
			// periods: the ratio needs fresh un-extrapolated updates to be
			// meaningful, and extrapolating on a polluted ratio oscillates.
			if k%4 == 3 && r > 0.2 {
				f := r / (1 - r)
				for i := range t {
					t[i] += f * (t[i] - prev[i])
				}
				prevNorm = math.Inf(1) // next ratio spans the jump; discard it
			}
		}
	}
	if !converged {
		return nil, fmt.Errorf("rotation: periodic steady state did not converge within %d periods (tol %g K)", maxPeriods, c.iterTol)
	}

	res := &Result{
		EpochEnd: make([][]float64, delta),
		Peak:     math.Inf(-1),
		Start:    append([]float64(nil), t...),
	}
	record := func(e int, temps []float64) {
		for core := 0; core < c.n; core++ {
			if temps[core] > res.Peak {
				res.Peak = temps[core]
				res.PeakEpoch = e
				res.PeakCore = core
			}
		}
	}
	if subsamples <= 1 {
		for e := 0; e < delta; e++ {
			stepper.StepTo(t, t, plan.Powers[e])
			res.EpochEnd[e] = append([]float64(nil), t...)
			record(e, t)
		}
		return res, nil
	}
	sub, err := c.m.NewStepper(plan.Tau / float64(subsamples))
	if err != nil {
		return nil, err
	}
	for e := 0; e < delta; e++ {
		for s := 0; s < subsamples; s++ {
			sub.StepTo(t, t, plan.Powers[e])
			record(e, t)
		}
		res.EpochEnd[e] = append([]float64(nil), t...)
	}
	return res, nil
}
