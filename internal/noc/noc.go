// Package noc models the grid Network-on-Chip of an S-NUCA many-core:
// XY (dimension-ordered) routing, per-hop latency, and the average LLC
// access latency a core observes, which grows with its Average Manhattan
// Distance (AMD) to the distributed cache banks. This AMD-driven latency is
// the source of the performance heterogeneity HotPotato exploits
// (paper §III-A, [19]).
package noc

import (
	"fmt"

	"repro/internal/floorplan"
)

// Config holds NoC timing parameters (paper Table I).
type Config struct {
	HopLatency     float64 `json:"hop_latency"`     // seconds per hop (Table I: 1.5 ns)
	LinkWidthBits  int     `json:"link_width_bits"` // link width (Table I: 256 bit)
	RouterOverhead float64 `json:"router_overhead"` // fixed per-message router/serialization overhead, seconds
}

// DefaultConfig returns the Table I NoC parameters.
func DefaultConfig() Config {
	return Config{
		HopLatency:     1.5e-9,
		LinkWidthBits:  256,
		RouterOverhead: 0,
	}
}

// Network is an XY-routed grid NoC over a floorplan.
type Network struct {
	fp  *floorplan.Floorplan
	cfg Config
}

// New builds a network over the given floorplan.
func New(fp *floorplan.Floorplan, cfg Config) (*Network, error) {
	if cfg.HopLatency <= 0 {
		return nil, fmt.Errorf("noc: hop latency must be positive, got %g", cfg.HopLatency)
	}
	if cfg.LinkWidthBits <= 0 {
		return nil, fmt.Errorf("noc: link width must be positive, got %d", cfg.LinkWidthBits)
	}
	return &Network{fp: fp, cfg: cfg}, nil
}

// Config returns the network parameters.
func (n *Network) Config() Config { return n.cfg }

// Route returns the XY route from core src to core dst as a sequence of core
// IDs including both endpoints: first along X to the destination column, then
// along Y.
func (n *Network) Route(src, dst int) []int {
	sx, sy := n.fp.Coord(src)
	dx, dy := n.fp.Coord(dst)
	path := []int{src}
	x, y := sx, sy
	for x != dx {
		if x < dx {
			x++
		} else {
			x--
		}
		path = append(path, n.fp.ID(x, y))
	}
	for y != dy {
		if y < dy {
			y++
		} else {
			y--
		}
		path = append(path, n.fp.ID(x, y))
	}
	return path
}

// Hops returns the hop count between src and dst (equals the Manhattan
// distance for XY routing on a grid).
func (n *Network) Hops(src, dst int) int {
	return n.fp.ManhattanDistance(src, dst)
}

// Latency returns the one-way message latency from src to dst for a message
// of sizeBits bits: hop propagation plus serialization on the link width.
func (n *Network) Latency(src, dst, sizeBits int) float64 {
	hops := n.Hops(src, dst)
	flits := (sizeBits + n.cfg.LinkWidthBits - 1) / n.cfg.LinkWidthBits
	if flits < 1 {
		flits = 1
	}
	// Wormhole pipeline: head flit takes hops * hopLatency, body flits
	// stream one per hop time behind it.
	return float64(hops)*n.cfg.HopLatency + float64(flits-1)*n.cfg.HopLatency + n.cfg.RouterOverhead
}

// AvgLLCRoundTrip returns the average round-trip NoC time for an LLC access
// issued by core id under S-NUCA: cache lines are statically distributed over
// all banks, so the expected one-way distance is the core's AMD. A round trip
// (request + data reply) crosses the network twice; the reply carries a
// 64-byte cache line.
func (n *Network) AvgLLCRoundTrip(id int) float64 {
	amd := n.fp.AMD(id)
	const lineBits = 64 * 8
	flits := (lineBits + n.cfg.LinkWidthBits - 1) / n.cfg.LinkWidthBits
	oneWayRequest := amd * n.cfg.HopLatency
	oneWayReply := amd*n.cfg.HopLatency + float64(flits-1)*n.cfg.HopLatency
	return oneWayRequest + oneWayReply + 2*n.cfg.RouterOverhead
}

// AvgLLCRoundTrips returns AvgLLCRoundTrip for every core.
func (n *Network) AvgLLCRoundTrips() []float64 {
	out := make([]float64, n.fp.NumCores())
	for i := range out {
		out[i] = n.AvgLLCRoundTrip(i)
	}
	return out
}
