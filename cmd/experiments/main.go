// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -exp all            # everything (several minutes)
//	experiments -exp table1         # Table I platform parameters
//	experiments -exp characterize   # per-benchmark placement/DVFS sensitivity
//	experiments -exp fig2           # motivational thermal traces
//	experiments -exp fig4a          # homogeneous full-load comparison
//	experiments -exp fig4b          # heterogeneous open-system comparison
//	experiments -exp baselines      # policy ladder on one hot full load
//	experiments -exp overhead       # scheduler run-time cost
//	experiments -exp ablations      # τ sweep, ring scope, migration cost,
//	                                # analytic-vs-brute, sensor noise,
//	                                # headroom Δ, NoC contention
//	experiments -exp hybrid         # §VII future work: rotation + DVFS
//	experiments -exp threed         # §VII future work: 3D-stacked S-NUCA
//
// -quick shrinks workloads, -workers N bounds the simulation worker pool
// (default: GOMAXPROCS; results are identical at any value), -json emits
// machine-readable output, and -outdir DIR additionally writes plot-ready
// CSV files.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	hotpotato "repro"
	"repro/internal/experiments"
)

// jsonOut switches every experiment to JSON output.
var jsonOut bool

// csvDir, when non-empty, receives plot-ready CSV files per experiment.
var csvDir string

// writeCSV writes one CSV artifact into csvDir (no-op when unset).
func writeCSV(name string, write func(w *os.File) error) {
	if csvDir == "" {
		return
	}
	f, err := os.Create(filepath.Join(csvDir, name))
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := write(f); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", f.Name())
}

// emit prints v as indented JSON when -json is set and returns true.
func emit(name string, v any) bool {
	if !jsonOut {
		return false
	}
	out, err := json.MarshalIndent(map[string]any{"experiment": name, "result": v}, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	os.Stdout.Write(out)
	fmt.Println()
	return true
}

func main() {
	exp := flag.String("exp", "all", "experiment: all|table1|characterize|fig2|fig4a|fig4b|baselines|overhead|ablations|hybrid|threed")
	quick := flag.Bool("quick", false, "scale workloads down for a fast run")
	seed := flag.Int64("seed", 12345, "random seed for fig4b")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0),
		"max concurrent simulation cells (results are identical at any value)")
	asJSON := flag.Bool("json", false, "emit machine-readable JSON instead of tables")
	outdir := flag.String("outdir", "", "also write plot-ready CSV files into this directory")
	flag.Usage = func() {
		out := flag.CommandLine.Output()
		fmt.Fprintf(out, "Usage of %s:\n", os.Args[0])
		fmt.Fprintf(out, "Regenerates the paper's tables and figures. The comparisons exercise the\nregistered scheduling policies: %s.\n\n",
			strings.Join(hotpotato.SchedulerNames(), ", "))
		flag.PrintDefaults()
	}
	flag.Parse()
	jsonOut = *asJSON
	csvDir = *outdir
	if csvDir != "" {
		if err := os.MkdirAll(csvDir, 0o755); err != nil {
			log.Fatal(err)
		}
	}

	opts := experiments.Options{Workers: *workers}
	if *quick {
		opts.WorkScale = 0.25
	}

	run := map[string]func(experiments.Options, int64) error{
		"table1":       func(experiments.Options, int64) error { return table1() },
		"fig2":         func(experiments.Options, int64) error { return fig2() },
		"fig4a":        func(o experiments.Options, _ int64) error { return fig4a(o) },
		"fig4b":        func(o experiments.Options, s int64) error { return fig4b(o, s) },
		"overhead":     func(experiments.Options, int64) error { return overhead() },
		"ablations":    func(o experiments.Options, _ int64) error { return ablations(o) },
		"hybrid":       func(o experiments.Options, _ int64) error { return hybrid(o) },
		"threed":       func(experiments.Options, int64) error { return threed() },
		"characterize": func(experiments.Options, int64) error { return characterize() },
		"baselines":    func(o experiments.Options, _ int64) error { return baselines(o) },
	}
	order := []string{"table1", "characterize", "fig2", "fig4a", "fig4b", "baselines", "overhead", "ablations", "hybrid", "threed"}

	if *exp == "all" {
		for _, name := range order {
			if err := run[name](opts, *seed); err != nil {
				log.Fatalf("%s: %v", name, err)
			}
			fmt.Println()
		}
		return
	}
	fn, ok := run[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		flag.Usage()
		os.Exit(2)
	}
	if err := fn(opts, *seed); err != nil {
		log.Fatalf("%s: %v", *exp, err)
	}
}

func table1() error {
	rows, err := experiments.TableI()
	if err != nil {
		return err
	}
	if !emit("table1", rows) {
		experiments.WriteTableI(os.Stdout, rows)
	}
	return nil
}

func fig2() error {
	stride := 0
	if csvDir != "" {
		stride = 5
	}
	res, err := experiments.Fig2(stride)
	if err != nil {
		return err
	}
	if !emit("fig2", res) {
		experiments.WriteFig2(os.Stdout, res)
	}
	writeCSV("fig2_traces.csv", func(w *os.File) error {
		return experiments.WriteFig2TracesCSV(w, res)
	})
	return nil
}

func fig4a(opts experiments.Options) error {
	rows, err := experiments.Fig4a(opts)
	if err != nil {
		return err
	}
	if !emit("fig4a", rows) {
		experiments.WriteFig4a(os.Stdout, rows)
	}
	writeCSV("fig4a.csv", func(w *os.File) error {
		return experiments.WriteFig4aCSV(w, rows)
	})
	return nil
}

func fig4b(opts experiments.Options, seed int64) error {
	rows, err := experiments.Fig4b(opts, experiments.DefaultFig4bRates(), 20, seed)
	if err != nil {
		return err
	}
	if !emit("fig4b", rows) {
		experiments.WriteFig4b(os.Stdout, rows)
	}
	writeCSV("fig4b.csv", func(w *os.File) error {
		return experiments.WriteFig4bCSV(w, rows)
	})
	return nil
}

func overhead() error {
	res, err := experiments.Overhead()
	if err != nil {
		return err
	}
	if !emit("overhead", res) {
		fmt.Println("Run-time overhead (64-core full load):")
		fmt.Println(res)
	}
	return nil
}

func ablations(opts experiments.Options) error {
	taus, err := experiments.TauSweep(experiments.DefaultTaus())
	if err != nil {
		return err
	}
	experiments.WriteTauSweep(os.Stdout, taus)
	writeCSV("tau_sweep.csv", func(w *os.File) error {
		return experiments.WriteTauSweepCSV(w, taus)
	})
	fmt.Println()

	scope, err := experiments.RingScope()
	if err != nil {
		return err
	}
	experiments.WriteRingScope(os.Stdout, scope)
	fmt.Println()

	mig, err := experiments.MigrationCostSweep([]float64{0.5, 1, 2, 4, 8}, opts)
	if err != nil {
		return err
	}
	experiments.WriteMigrationCostSweep(os.Stdout, mig)
	fmt.Println()

	avb, err := experiments.AnalyticVsBrute([]int{2, 4, 8})
	if err != nil {
		return err
	}
	experiments.WriteAnalyticVsBrute(os.Stdout, avb)
	fmt.Println()

	noise, err := experiments.NoiseSweep([]float64{0, 0.5, 1, 2, 4}, opts)
	if err != nil {
		return err
	}
	experiments.WriteNoiseSweep(os.Stdout, noise)
	fmt.Println()

	headroom, err := experiments.HeadroomSweep([]float64{0.5, 1, 2, 4}, opts)
	if err != nil {
		return err
	}
	experiments.WriteHeadroomSweep(os.Stdout, headroom)
	fmt.Println()

	contention, err := experiments.Contention(opts, []string{"streamcluster", "canneal"})
	if err != nil {
		return err
	}
	experiments.WriteContention(os.Stdout, contention)
	return nil
}

func characterize() error {
	rows, err := experiments.Heterogeneity()
	if err != nil {
		return err
	}
	if !emit("characterize", rows) {
		experiments.WriteHeterogeneity(os.Stdout, rows)
	}
	return nil
}

func hybrid(opts experiments.Options) error {
	rows, err := experiments.Hybrid(opts, []string{"blackscholes", "x264", "swaptions"})
	if err != nil {
		return err
	}
	if !emit("hybrid", rows) {
		experiments.WriteHybrid(os.Stdout, rows)
	}
	return nil
}

func threed() error {
	res, err := experiments.ThreeD()
	if err != nil {
		return err
	}
	if !emit("threed", res) {
		experiments.WriteThreeD(os.Stdout, res)
	}
	return nil
}

func baselines(opts experiments.Options) error {
	rows, err := experiments.Baselines(opts, "x264")
	if err != nil {
		return err
	}
	if !emit("baselines", rows) {
		experiments.WriteBaselines(os.Stdout, "x264", rows)
	}
	return nil
}
