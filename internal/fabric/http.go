package fabric

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net/http"
	"strings"
	"time"

	hotpotato "repro"
	"repro/internal/obs"
)

// Handler is the dispatcher's HTTP surface. Client-facing:
//
//	POST /v1/batch              same wire contract as hotpotato-server's /v1/batch
//	GET  /v1/sweeps             active + recent sweeps, plus archive manifests
//	GET  /v1/sweeps/{id}        one sweep's status (counts, throughput, ETA)
//	GET  /v1/sweeps/{id}/spans  the merged fleet span tree (?format=jsonl for records)
//	GET  /healthz               dispatcher Stats plus fleet_* counter snapshot
//	GET  /metrics               Prometheus text exposition
//	GET  /debug/vars            expvar JSON (registry published as "hotpotato")
//
// Worker-facing (the wire.go types):
//
//	POST /fabric/v1/register
//	POST /fabric/v1/lease
//	POST /fabric/v1/heartbeat
//	POST /fabric/v1/results
//	GET  /fabric/v1/workers     registered workers with liveness and health
//
// Errors reuse the v1 envelope shape {"error":{"code","message"}} with the
// same code strings as the single-node server, so one client error path
// covers both.
func (d *Dispatcher) Handler() http.Handler {
	obs.Default().PublishExpvar("hotpotato")
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/batch", d.handleBatch)
	mux.HandleFunc("GET /v1/sweeps", d.handleSweeps)
	mux.HandleFunc("GET /v1/sweeps/{id}", d.handleSweep)
	mux.HandleFunc("GET /v1/sweeps/{id}/spans", d.handleSweepSpans)
	mux.HandleFunc("GET /healthz", d.handleHealth)
	mux.HandleFunc("GET /metrics", d.handleMetrics)
	mux.Handle("GET /debug/vars", expvar.Handler())
	mux.HandleFunc("POST /fabric/v1/register", d.handleRegister)
	mux.HandleFunc("POST /fabric/v1/lease", d.handleLease)
	mux.HandleFunc("POST /fabric/v1/heartbeat", d.handleHeartbeat)
	mux.HandleFunc("POST /fabric/v1/results", d.handleResults)
	mux.HandleFunc("GET /fabric/v1/workers", d.handleWorkers)
	return mux
}

// Error-envelope codes shared with the single-node server (see
// internal/service errors.go — duplicated literals rather than an import so
// fabric stays importable by service without a cycle).
const (
	codeInvalidRequest = "invalid_request"
	codeTooLarge       = "too_large"
	codeNotFound       = "not_found"
)

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, code string, err error) {
	type apiError struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	}
	writeJSON(w, status, struct {
		Error apiError `json:"error"`
	}{apiError{Code: code, Message: err.Error()}})
}

// wantsSSE mirrors the single-node server's negotiation: SSE only on an
// explicit Accept: text/event-stream, NDJSON otherwise.
func wantsSSE(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), "text/event-stream")
}

// handleBatch is the dispatcher's client-facing sweep endpoint: identical
// wire contract to hotpotato-server's POST /v1/batch (one "sweep" header,
// "result" records in completion order, "progress" heartbeats, terminal
// "summary"), except the header also carries the sweep_id naming the archive
// entry. Cells are executed by leased workers instead of a local pool.
func (d *Dispatcher) handleBatch(w http.ResponseWriter, r *http.Request) {
	var spec hotpotato.SweepSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, codeInvalidRequest, fmt.Errorf("decoding SweepSpec: %w", err))
		return
	}
	if err := spec.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, codeInvalidRequest, err)
		return
	}
	if n := spec.CellCount(); n > d.cfg.MaxSweepCells {
		writeError(w, http.StatusRequestEntityTooLarge, codeTooLarge,
			fmt.Errorf("sweep expands to %d cells, dispatcher limit is %d", n, d.cfg.MaxSweepCells))
		return
	}
	cells, err := spec.Expand()
	if err != nil {
		writeError(w, http.StatusRequestEntityTooLarge, codeTooLarge, err)
		return
	}
	// Apply the dispatcher's solver default exactly where the single-node
	// server applies its own (post-expansion, pre-hash): the workers execute
	// the cells verbatim and never re-default, so the hash the dispatcher
	// archives under is the hash the worker caches under.
	for i := range cells {
		ApplyDefaultSolver(&cells[i].Spec, d.cfg.DefaultSolver)
	}

	requestID := r.Header.Get("X-Request-Id")
	sweep := d.Submit(cells, requestID, r.Header.Get(obs.TraceParentHeader))
	defer sweep.Cancel() // no-op when the sweep already finished

	d.logger.Info("fabric batch started",
		"sweep", sweep.ID, "cells", sweep.Total, "sse", wantsSSE(r))

	stream := NewRecordStream(w, wantsSSE(r), func(typ, reason string) {
		metricDroppedRecords.Inc()
		d.logger.Warn("fabric dropped stream record", "sweep", sweep.ID, "record", typ, "reason", reason)
	})
	began := d.clock.Now()
	stream.Send("sweep", hotpotato.SweepStarted{
		Type: "sweep", Total: sweep.Total, RequestID: requestID, SweepID: sweep.ID,
	})

	var heartbeat <-chan time.Time
	if d.cfg.Heartbeat > 0 {
		tick := time.NewTicker(d.cfg.Heartbeat)
		defer tick.Stop()
		heartbeat = tick.C
	}

	records := sweep.Records()
	done := 0
stream:
	for {
		select {
		case rec, ok := <-records:
			if !ok {
				break stream
			}
			done++
			stream.Send("result", rec)
		case <-heartbeat:
			stream.Send("progress", hotpotato.SweepProgress{
				Type: "progress", Done: done, Total: sweep.Total,
				ElapsedMS: float64(d.clock.Now().Sub(began).Nanoseconds()) / 1e6,
			})
		case <-r.Context().Done():
			// Client went away: cancel the sweep and drain the (buffered,
			// already-closing) record channel so tallies settle.
			sweep.Cancel()
			for range records {
			}
			break stream
		}
	}

	completed, failed, canceled, pruned, cacheHits := sweep.Counts()
	// The select loop is the only sender and it has exited, so nothing can
	// interleave after this terminal record (and RecordStream would refuse
	// it anyway).
	stream.Send("summary", hotpotato.SweepSummary{
		Type: "summary", Total: sweep.Total, Completed: completed, Failed: failed,
		Canceled: canceled, Pruned: pruned, CacheHits: cacheHits,
		ElapsedMS: float64(d.clock.Now().Sub(began).Nanoseconds()) / 1e6,
	})
	d.logger.Info("fabric batch finished",
		"sweep", sweep.ID, "completed", completed, "failed", failed,
		"canceled", canceled, "pruned", pruned, "cache_hits", cacheHits,
		"dropped", stream.Dropped())
}

func (d *Dispatcher) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Stats
		// Fleet is the federated counter snapshot (worker metric name →
		// folded value), omitted until a worker has heartbeated telemetry.
		Fleet map[string]int64 `json:"fleet,omitempty"`
	}{d.Snapshot(), FleetCounters()})
}

func (d *Dispatcher) handleSweeps(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, d.SweepStatuses(50))
}

func (d *Dispatcher) handleSweep(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, ok := d.SweepStatus(id)
	if !ok {
		writeError(w, http.StatusNotFound, codeNotFound,
			fmt.Errorf("sweep %q is neither active nor retained (older sweeps live in the archive manifests)", id))
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (d *Dispatcher) handleSweepSpans(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	d.mu.Lock()
	sw := d.findSweepLocked(id)
	var spans *obs.SpanRecorder
	if sw != nil {
		spans = sw.spans
	}
	d.mu.Unlock()
	if sw == nil || spans == nil {
		writeError(w, http.StatusNotFound, codeNotFound,
			fmt.Errorf("no span tree for sweep %q (unknown sweep, or span tracking disabled)", id))
		return
	}
	if r.URL.Query().Get("format") == "jsonl" {
		// Flat records, one per line — the CI artifact format.
		w.Header().Set("Content-Type", "application/x-ndjson")
		spans.WriteJSONL(w)
		return
	}
	tree, _ := d.SweepSpans(id)
	writeJSON(w, http.StatusOK, tree)
}

func (d *Dispatcher) handleWorkers(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, d.WorkerStatuses())
}

func (d *Dispatcher) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	obs.Default().WritePrometheus(w)
}

func (d *Dispatcher) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, codeInvalidRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, d.Register(req))
}

func (d *Dispatcher) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, codeInvalidRequest, err)
		return
	}
	if req.WorkerID == "" {
		writeError(w, http.StatusBadRequest, codeInvalidRequest, fmt.Errorf("worker_id is required"))
		return
	}
	writeJSON(w, http.StatusOK, LeaseResponse{Lease: d.Lease(req.WorkerID, req.MaxCells)})
}

func (d *Dispatcher) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, codeInvalidRequest, err)
		return
	}
	ok, canceled := d.Heartbeat(req.LeaseID)
	d.FoldTelemetry(req.WorkerID, req.Counters, req.Gauges)
	writeJSON(w, http.StatusOK, HeartbeatResponse{OK: ok, Canceled: canceled})
}

func (d *Dispatcher) handleResults(w http.ResponseWriter, r *http.Request) {
	var req ResultsRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, codeInvalidRequest, err)
		return
	}
	accepted, ok := d.PostResults(req)
	writeJSON(w, http.StatusOK, ResultsResponse{Accepted: accepted, OK: ok})
}

// ApplyDefaultSolver fills spec's thermal solver when it is empty — the one
// post-defaults policy knob in the serving stack. Both of the single-node
// server's endpoints (/v1/run via decodeSpec, /v1/batch per expanded cell)
// and the dispatcher call this same helper at the same point in the pipeline
// (after WithDefaults, before hashing), which is what guarantees one spec
// yields one SpecHash — and so one cache key and one archive key — no matter
// which door it came through. WithDefaults never fills the solver itself
// (sim.DefaultConfig leaves it empty), so "empty after defaults" is exactly
// "the client did not choose".
func ApplyDefaultSolver(spec *hotpotato.RunSpec, solver string) {
	if solver != "" && spec.Platform.Thermal.Solver == "" {
		spec.Platform.Thermal.Solver = solver
	}
}
