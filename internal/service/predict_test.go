package service

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strings"
	"testing"

	hotpotato "repro"
)

// inDomainSpecJSON is a run the analytical twin can answer conclusively:
// default 4×4 substrates, the static pinner, an explicit workload, hardware
// DTM off (with DTM on, a transient estimate that cannot rule the trip out is
// demoted to inconclusive — see TwinPredict).
const inDomainSpecJSON = `{
	"platform":  {"width": 4, "height": 4},
	"scheduler": {"name": "static"},
	"sim":       {"dtm_enabled": false},
	"workload":  {"kind": "explicit", "tasks": [{"bench": "blackscholes", "threads": 2, "work_scale": 0.3}]}
}`

// testTwinModel loads the committed calibration artifact from the repo root.
func testTwinModel(t *testing.T) *hotpotato.TwinModel {
	t.Helper()
	model, err := hotpotato.LoadTwinModelFile("../../TWIN_model.json")
	if err != nil {
		t.Fatalf("loading committed TWIN_model.json: %v", err)
	}
	return model
}

func decodePrediction(t *testing.T, body []byte) (pred struct {
	Prediction   hotpotato.TwinPrediction `json:"prediction"`
	ModelVersion string                   `json:"model_version"`
	ModelHash    string                   `json:"model_hash"`
	SpecHash     string                   `json:"spec_hash"`
}) {
	t.Helper()
	if err := json.Unmarshal(body, &pred); err != nil {
		t.Fatalf("decoding predict response: %v\n%s", err, body)
	}
	return pred
}

func TestPredictWithoutModelUnavailable(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, body := postJSON(t, ts.URL+"/v1/predict", inDomainSpecJSON)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503 when no -twin-model is loaded", resp.StatusCode)
	}
	var env errorEnvelope
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("non-envelope error body: %v\n%s", err, body)
	}
	if env.Error.Code != CodeUnavailable {
		t.Errorf("code %q, want %q", env.Error.Code, CodeUnavailable)
	}
	if !strings.Contains(env.Error.Message, "twin-model") {
		t.Errorf("message does not point at the flag: %q", env.Error.Message)
	}
}

func TestPredictBadBody(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, TwinModel: testTwinModel(t)})
	for _, body := range []string{`{`, `{"platform": {"width": -4}}`} {
		resp, raw := postJSON(t, ts.URL+"/v1/predict", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST %q: status %d, want 400", body, resp.StatusCode)
		}
		var env errorEnvelope
		if err := json.Unmarshal(raw, &env); err != nil {
			t.Fatalf("non-envelope error body: %v\n%s", err, raw)
		}
		if env.Error.Code != CodeInvalidRequest {
			t.Errorf("POST %q: code %q, want %q", body, env.Error.Code, CodeInvalidRequest)
		}
	}
}

func TestPredictOutOfDomain(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, TwinModel: testTwinModel(t)})
	cases := map[string]string{
		// The twin is calibrated for the static pinner only.
		"scheduler": quickSpecJSON,
		// 5×5 is not a calibrated bucket.
		"bucket": `{"platform": {"width": 5, "height": 5}, "scheduler": {"name": "static"},
			"workload": {"kind": "explicit", "tasks": [{"bench": "blackscholes", "threads": 2, "work_scale": 0.3}]}}`,
	}
	for name, spec := range cases {
		resp, raw := postJSON(t, ts.URL+"/v1/predict", spec)
		if resp.StatusCode != http.StatusUnprocessableEntity {
			t.Errorf("%s: status %d, want 422", name, resp.StatusCode)
		}
		var env errorEnvelope
		if err := json.Unmarshal(raw, &env); err != nil {
			t.Fatalf("%s: non-envelope error body: %v\n%s", name, err, raw)
		}
		if env.Error.Code != CodeOutOfDomain {
			t.Errorf("%s: code %q, want %q", name, env.Error.Code, CodeOutOfDomain)
		}
	}
}

// TestPredictAnswersAndBoundHolds is the endpoint's acceptance test: an
// in-domain spec gets finite estimates with positive bounds, the response is
// deterministic (bit-identical replays, ETag → 304), and the transient-peak
// bound actually contains the simulator's answer from /v1/run.
func TestPredictAnswersAndBoundHolds(t *testing.T) {
	model := testTwinModel(t)
	_, ts := newTestServer(t, Config{Workers: 2, TwinModel: model})

	resp, body := postJSON(t, ts.URL+"/v1/predict", inDomainSpecJSON)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200: %s", resp.StatusCode, body)
	}
	etag := resp.Header.Get("ETag")
	if etag == "" {
		t.Error("200 response carries no ETag")
	}
	pred := decodePrediction(t, body)
	if pred.ModelHash != model.Hash || pred.ModelVersion != model.Version {
		t.Errorf("model identity %s/%s, want %s/%s", pred.ModelVersion, pred.ModelHash, model.Version, model.Hash)
	}
	if !strings.HasPrefix(pred.SpecHash, "sha256:") {
		t.Errorf("spec hash %q", pred.SpecHash)
	}
	for name, f := range map[string]hotpotato.TwinField{
		"peak_steady_c":    pred.Prediction.SteadyPeakC,
		"peak_transient_c": pred.Prediction.TransientPeakC,
		"makespan_s":       pred.Prediction.MakespanS,
	} {
		if !f.Conclusive {
			t.Errorf("%s inconclusive for the in-domain spec", name)
		}
		if math.IsNaN(f.Estimate) || math.IsInf(f.Estimate, 0) || !(f.Bound > 0) || math.IsInf(f.Bound, 0) {
			t.Errorf("%s: estimate %g bound %g, want finite estimate and positive finite bound", name, f.Estimate, f.Bound)
		}
	}

	// Bit-identical replay: the response is a pure function of (spec, model).
	_, again := postJSON(t, ts.URL+"/v1/predict", inDomainSpecJSON)
	if string(body) != string(again) {
		t.Errorf("replayed prediction differs:\n%s\n%s", body, again)
	}

	// Conditional replay: the ETag covers spec hash and model hash.
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/predict", strings.NewReader(inDomainSpecJSON))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("If-None-Match", etag)
	condResp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	condResp.Body.Close()
	if condResp.StatusCode != http.StatusNotModified {
		t.Errorf("If-None-Match replay: status %d, want 304", condResp.StatusCode)
	}

	// Simulator-as-oracle: run the same spec for real and hold the bound.
	runResp, runBody := postJSON(t, ts.URL+"/v1/run", inDomainSpecJSON)
	if runResp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/run status %d: %s", runResp.StatusCode, runBody)
	}
	var run struct {
		Result *hotpotato.Result `json:"result"`
	}
	if err := json.Unmarshal(runBody, &run); err != nil {
		t.Fatal(err)
	}
	// /v1/run's ETag is the bare quoted spec hash; both endpoints must agree
	// on the spec's identity.
	if runTag := strings.Trim(runResp.Header.Get("ETag"), `"`); runTag != pred.SpecHash {
		t.Errorf("/v1/run ETag %s != prediction spec hash %s — the two endpoints must agree on identity", runTag, pred.SpecHash)
	}
	tp := pred.Prediction.TransientPeakC
	if d := math.Abs(tp.Estimate - run.Result.PeakTemp); d > tp.Bound {
		t.Errorf("transient bound violated against the simulator: |%g − %g| = %g > %g",
			tp.Estimate, run.Result.PeakTemp, d, tp.Bound)
	}
	mk := pred.Prediction.MakespanS
	if d := math.Abs(mk.Estimate - run.Result.Makespan); d > mk.Bound {
		t.Errorf("makespan bound violated against the simulator: |%g − %g| = %g > %g",
			mk.Estimate, run.Result.Makespan, d, mk.Bound)
	}
}

// TestBatchPrunesWithTwin drives the opt-in sweep pruner end to end: a
// two-cell sweep where one cell is in the twin's domain (pruned below an
// adaptive threshold) and one is not (simulated as usual). The stream must
// carry the prune decision, and the summary counters must partition.
func TestBatchPrunesWithTwin(t *testing.T) {
	model := testTwinModel(t)
	_, ts := newTestServer(t, Config{Workers: 2, TwinModel: model})

	// Learn the twin's interval for the in-domain cell, then set the sweep
	// threshold safely above est+bound so the verdict must be "below".
	resp, body := postJSON(t, ts.URL+"/v1/predict", inDomainSpecJSON)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict: %d %s", resp.StatusCode, body)
	}
	tp := decodePrediction(t, body).Prediction.TransientPeakC
	if !tp.Conclusive {
		t.Fatal("in-domain cell inconclusive; cannot drive the pruner")
	}
	threshold := tp.Estimate + tp.Bound + 1

	sweep := fmt.Sprintf(`{
		"base": {"platform": {"width": 4, "height": 4}, "sim": {"dtm_enabled": false},
			"workload": {"kind": "explicit", "tasks": [{"bench": "blackscholes", "threads": 2, "work_scale": 0.3}]}},
		"axes": {"schedulers": [{"name": "static"}, {"name": "hotpotato"}]},
		"prune_above_temp": %g
	}`, threshold)
	httpResp, records := postBatch(t, ts.URL+"/v1/batch", sweep)
	if httpResp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d", httpResp.StatusCode)
	}

	var pruned, ok int
	var summary *batchRecord
	for i := range records {
		rec := records[i]
		switch rec.Type {
		case "result":
			switch rec.Status {
			case "pruned":
				pruned++
				if rec.Result != nil {
					t.Errorf("pruned cell %d carries a simulation result", rec.Index)
				}
				if string(rec.Pruned) != "true" {
					t.Errorf("pruned cell %d: pruned flag %s", rec.Index, rec.Pruned)
				}
				if rec.Prune == nil || rec.Prune.Verdict != "below" {
					t.Errorf("pruned cell %d: prune decision %+v, want verdict below", rec.Index, rec.Prune)
				} else if rec.Prune.PeakC+rec.Prune.BoundC >= threshold {
					t.Errorf("pruned cell %d: interval %g±%g does not clear threshold %g",
						rec.Index, rec.Prune.PeakC, rec.Prune.BoundC, threshold)
				}
				if !strings.HasPrefix(rec.Hash, "sha256:") {
					t.Errorf("pruned cell %d lost its spec hash: %q", rec.Index, rec.Hash)
				}
			case "ok":
				ok++
			default:
				t.Errorf("cell %d: status %q", rec.Index, rec.Status)
			}
		case "summary":
			summary = &records[i]
		}
	}
	if pruned != 1 || ok != 1 {
		t.Errorf("pruned=%d ok=%d, want 1 and 1 (static cell pruned, hotpotato cell out of the twin's domain)", pruned, ok)
	}
	if summary == nil {
		t.Fatal("no summary record")
	}
	if summary.Completed != 1 || string(summary.Pruned) != "1" {
		t.Errorf("summary completed=%d pruned=%s, want 1 and 1", summary.Completed, summary.Pruned)
	}
}

// TestBatchPruneRequiresModel: prune_above_temp on a server without a twin
// model degrades to a plain (unpruned) sweep rather than failing.
func TestBatchPruneRequiresModel(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	sweep := `{
		"base": {"platform": {"width": 4, "height": 4}, "scheduler": {"name": "static"},
			"workload": {"kind": "explicit", "tasks": [{"bench": "blackscholes", "threads": 2, "work_scale": 0.3}]}},
		"prune_above_temp": 200
	}`
	resp, records := postBatch(t, ts.URL+"/v1/batch", sweep)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d", resp.StatusCode)
	}
	for _, rec := range records {
		if rec.Type == "result" && rec.Status != "ok" {
			t.Errorf("cell %d: status %q, want ok (no model ⇒ no pruning)", rec.Index, rec.Status)
		}
		if rec.Type == "summary" && rec.Completed != 1 {
			t.Errorf("summary completed=%d, want 1", rec.Completed)
		}
	}
}
