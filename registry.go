package hotpotato

// registry.go is the single place a scheduler policy name is interpreted:
// one name→constructor table behind SchedulerNames and NewSchedulerFromSpec.
// The CLIs and the HTTP service all construct schedulers through it, so the
// set of supported policies (and every help string derived from
// SchedulerNames) can never drift between entry points again.

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/sched"
)

// SchedulerSpec declares a scheduler by name plus its knobs — the
// serializable counterpart of the New*Scheduler constructors. Every knob is
// optional; a zero value keeps the policy's paper default, so the minimal
// useful spec is just {"name": "hotpotato", "tdtm": 70}.
type SchedulerSpec struct {
	// Name selects the policy; SchedulerNames lists the valid values.
	Name string `json:"name"`
	// TDTM is the thermal threshold (°C) handed to the thermally-aware
	// policies. ExecuteSpec defaults it to the run's SimConfig.TDTM when
	// zero, so a RunSpec states the threshold once.
	TDTM float64 `json:"tdtm,omitempty"`
	// Tau is the rotation interval in seconds (hotpotato, hotpotato-dvfs,
	// rotation). Zero keeps the default 0.5 ms.
	Tau float64 `json:"tau,omitempty"`
	// TauMin and TauMax bound HotPotato's τ adaptation (defaults
	// 0.125–4 ms). Set both or neither.
	TauMin float64 `json:"tau_min,omitempty"`
	TauMax float64 `json:"tau_max,omitempty"`
	// Headroom is HotPotato's Δ in °C (default 1).
	Headroom float64 `json:"headroom,omitempty"`
	// RebalanceEvery is HotPotato's idle re-evaluation period (default 5 ms).
	RebalanceEvery float64 `json:"rebalance_every,omitempty"`
	// Epoch and Margin tune the PCMig baseline (defaults 1 ms, 2 K).
	Epoch  float64 `json:"epoch,omitempty"`
	Margin float64 `json:"margin,omitempty"`
	// Freq is the fixed frequency of the static policy in Hz (0 = peak).
	Freq float64 `json:"freq,omitempty"`
	// Pins maps threads to cores (static, tsp) or to rotation slots
	// (rotation). JSON object keys are "task:thread". When empty, AutoPin
	// (called by ExecuteSpec and the CLIs) derives a deterministic pinning.
	Pins map[ThreadID]int `json:"pins,omitempty"`
	// Cores is the rotation core cycle in walk order (rotation only).
	// Empty means the innermost floorplan ring, via AutoPin.
	Cores []int `json:"cores,omitempty"`
}

// schedulerRegistry is the one table naming every supported policy.
var schedulerRegistry = map[string]func(*Platform, SchedulerSpec) (Scheduler, error){
	"hotpotato": func(p *Platform, s SchedulerSpec) (Scheduler, error) {
		opts, err := s.hotPotatoOptions()
		if err != nil {
			return nil, err
		}
		if err := s.needTDTM(); err != nil {
			return nil, err
		}
		return sched.NewHotPotato(p, s.TDTM, opts...), nil
	},
	"hotpotato-dvfs": func(p *Platform, s SchedulerSpec) (Scheduler, error) {
		opts, err := s.hotPotatoOptions()
		if err != nil {
			return nil, err
		}
		if err := s.needTDTM(); err != nil {
			return nil, err
		}
		return sched.NewHotPotatoDVFS(p, s.TDTM, opts...), nil
	},
	"pcmig": func(_ *Platform, s SchedulerSpec) (Scheduler, error) {
		if err := s.needTDTM(); err != nil {
			return nil, err
		}
		var opts []PCMigOption
		if s.Epoch > 0 {
			opts = append(opts, sched.WithPCMigEpoch(s.Epoch))
		}
		if s.Margin > 0 {
			opts = append(opts, sched.WithPCMigMargin(s.Margin))
		}
		return sched.NewPCMig(s.TDTM, opts...), nil
	},
	"tsp": func(_ *Platform, s SchedulerSpec) (Scheduler, error) {
		if err := s.needTDTM(); err != nil {
			return nil, err
		}
		if err := s.needPins(); err != nil {
			return nil, err
		}
		return sched.NewTSPGovernor(s.Pins, s.TDTM), nil
	},
	"static": func(_ *Platform, s SchedulerSpec) (Scheduler, error) {
		if err := s.needPins(); err != nil {
			return nil, err
		}
		return sched.NewStatic(s.Pins, s.Freq), nil
	},
	"rotation": func(_ *Platform, s SchedulerSpec) (Scheduler, error) {
		if err := s.needPins(); err != nil {
			return nil, err
		}
		if len(s.Cores) == 0 {
			return nil, fmt.Errorf("hotpotato: scheduler %q needs a core cycle (set Cores or use AutoPin)", s.Name)
		}
		tau := s.Tau
		if tau == 0 {
			tau = 0.5e-3
		}
		return sched.NewRotationStatic(s.Pins, s.Cores, tau)
	},
	"reactive": func(_ *Platform, s SchedulerSpec) (Scheduler, error) {
		if err := s.needTDTM(); err != nil {
			return nil, err
		}
		return sched.NewReactive(s.TDTM), nil
	},
}

func (s SchedulerSpec) needTDTM() error {
	if s.TDTM <= 0 {
		return fmt.Errorf("hotpotato: scheduler %q needs a positive TDTM, got %g", s.Name, s.TDTM)
	}
	return nil
}

func (s SchedulerSpec) needPins() error {
	if len(s.Pins) == 0 {
		return fmt.Errorf("hotpotato: scheduler %q needs a pin map (set Pins or use AutoPin)", s.Name)
	}
	return nil
}

func (s SchedulerSpec) hotPotatoOptions() ([]HotPotatoOption, error) {
	var opts []HotPotatoOption
	if s.Tau > 0 {
		opts = append(opts, WithRotationInterval(s.Tau))
	}
	switch {
	case s.TauMin > 0 && s.TauMax > 0:
		opts = append(opts, WithRotationBounds(s.TauMin, s.TauMax))
	case s.TauMin != 0 || s.TauMax != 0:
		return nil, fmt.Errorf("hotpotato: scheduler %q needs both rotation bounds or neither (tau_min=%g tau_max=%g)",
			s.Name, s.TauMin, s.TauMax)
	}
	if s.Headroom > 0 {
		opts = append(opts, WithHeadroom(s.Headroom))
	}
	if s.RebalanceEvery > 0 {
		opts = append(opts, sched.WithRebalanceEvery(s.RebalanceEvery))
	}
	return opts, nil
}

// SchedulerNames returns the sorted names of every registered policy — the
// authoritative list behind CLI help strings and API error messages.
func SchedulerNames() []string {
	names := make([]string, 0, len(schedulerRegistry))
	for name := range schedulerRegistry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// NewSchedulerFromSpec builds a fresh scheduler instance from its declarative
// spec. Like every scheduler constructor, the result is stateful and
// single-run: build one per Simulation. Specs for pin-based policies
// (static, tsp, rotation) must carry pins — use AutoPin to derive them from a
// workload, as ExecuteSpec does.
func NewSchedulerFromSpec(plat *Platform, spec SchedulerSpec) (Scheduler, error) {
	ctor, ok := schedulerRegistry[spec.Name]
	if !ok {
		return nil, fmt.Errorf("hotpotato: unknown scheduler %q (have %s)",
			spec.Name, strings.Join(SchedulerNames(), ", "))
	}
	return ctor(plat, spec)
}

// AutoPin returns a copy of spec with the pin map (and, for rotation, the
// core cycle) filled in when empty, using the deterministic placement the
// thermal-trace tool has always used: threads are pinned over the
// platform's rings innermost-first in task order, and rotation slots spread
// evenly over the rotation cycle. Specs that already carry pins, and
// policies that take none, are returned unchanged.
func (s SchedulerSpec) AutoPin(plat *Platform, tasks []*Task) (SchedulerSpec, error) {
	switch s.Name {
	case "static", "tsp":
		if len(s.Pins) > 0 {
			return s, nil
		}
		ids := taskThreadIDs(tasks)
		cores := ringOrderedCores(plat)
		if len(ids) > len(cores) {
			return SchedulerSpec{}, fmt.Errorf("hotpotato: cannot auto-pin %d threads onto %d cores", len(ids), len(cores))
		}
		s.Pins = make(map[ThreadID]int, len(ids))
		for i, id := range ids {
			s.Pins[id] = cores[i]
		}
	case "rotation":
		if len(s.Cores) == 0 {
			s.Cores = append([]int(nil), plat.FP.Rings()[0].Cores...)
		}
		if len(s.Pins) == 0 {
			ids := taskThreadIDs(tasks)
			n := len(ids)
			if n == 0 {
				n = 1
			}
			s.Pins = make(map[ThreadID]int, len(ids))
			for i, id := range ids {
				s.Pins[id] = (i * len(s.Cores) / n) % len(s.Cores)
			}
		}
	}
	return s, nil
}

// taskThreadIDs enumerates every thread of tasks in task order — the
// deterministic ordering AutoPin pins by.
func taskThreadIDs(tasks []*Task) []ThreadID {
	var ids []ThreadID
	for _, t := range tasks {
		for ti := 0; ti < t.Threads; ti++ {
			ids = append(ids, ThreadID{Task: t.ID, Thread: ti})
		}
	}
	return ids
}

// ringOrderedCores lists every core innermost-ring-first — the AMD order
// static pinnings have always used.
func ringOrderedCores(plat *Platform) []int {
	var cores []int
	for _, ring := range plat.FP.Rings() {
		cores = append(cores, ring.Cores...)
	}
	return cores
}
