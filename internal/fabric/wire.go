package fabric

import (
	hotpotato "repro"
	"repro/internal/obs"
)

// Wire types of the worker-facing surface (/fabric/v1/*). All bodies are
// JSON; every response reuses the v1 error envelope on failure. The
// client-facing POST /v1/batch speaks the hotpotato.Sweep* record types
// unchanged — these types exist only between dispatcher and workers.

// RegisterRequest announces a worker to the dispatcher. ID may be empty, in
// which case the dispatcher assigns one.
type RegisterRequest struct {
	// ID is the worker's self-chosen identity (e.g. host:port); empty asks
	// the dispatcher to generate one.
	ID string `json:"id,omitempty"`
	// Capacity is how many cells the worker wants per lease; 0 lets the
	// dispatcher choose. The dispatcher may grant fewer, never more than its
	// own per-lease cap.
	Capacity int `json:"capacity,omitempty"`
}

// RegisterResponse tells the worker its identity and the cadence contract:
// heartbeat at least every HeartbeatMS or the lease expires LeaseTTLMS after
// its last extension.
type RegisterResponse struct {
	// ID is the worker identity to present on every later call.
	ID string `json:"id"`
	// LeaseTTLMS is the lease deadline extension granted by each heartbeat
	// (and the initial deadline of a fresh lease), in milliseconds.
	LeaseTTLMS int64 `json:"lease_ttl_ms"`
	// HeartbeatMS is the cadence the dispatcher expects heartbeats at —
	// comfortably inside the TTL so one dropped packet does not expire a
	// healthy worker's lease.
	HeartbeatMS int64 `json:"heartbeat_ms"`
}

// LeaseRequest asks for a batch of cells to execute.
type LeaseRequest struct {
	// WorkerID is the identity from RegisterResponse.
	WorkerID string `json:"worker_id"`
	// MaxCells bounds the grant; 0 means the dispatcher's per-lease default.
	MaxCells int `json:"max_cells,omitempty"`
}

// LeaseResponse carries the granted lease; a nil Lease means no work is
// pending and the worker should poll again after its idle interval.
type LeaseResponse struct {
	// Lease is the booked batch of cells, nil when the queue is empty.
	Lease *LeaseGrant `json:"lease,omitempty"`
}

// LeaseGrant is one booked batch of cells: all from one sweep, leased to one
// worker, with a deadline the worker keeps alive by heartbeating.
type LeaseGrant struct {
	// ID names the lease on heartbeat and result calls.
	ID string `json:"id"`
	// SweepID is the sweep the cells belong to.
	SweepID string `json:"sweep_id"`
	// Cells are the booked cells, each a complete RunSpec plus its index in
	// the sweep's expansion order.
	Cells []hotpotato.SweepCell `json:"cells"`
	// TTLMS echoes the lease TTL so a worker needs no registration state to
	// compute a safe heartbeat cadence.
	TTLMS int64 `json:"ttl_ms"`
	// TraceParent is the sweep's trace context in W3C traceparent form
	// (obs.ParseTraceParent): the trace ID every span of the sweep shares,
	// with the dispatcher's sweep span as the parent. Workers stamp it on
	// their per-cell span roots so the exported records merge into one
	// fleet-wide tree. Empty when the dispatcher has span tracking disabled.
	TraceParent string `json:"traceparent,omitempty"`
}

// HeartbeatRequest extends a lease's deadline.
type HeartbeatRequest struct {
	// WorkerID is the heartbeating worker.
	WorkerID string `json:"worker_id"`
	// LeaseID is the lease to extend.
	LeaseID string `json:"lease_id"`
	// Done reports how many of the lease's cells have finished — progress
	// telemetry for the dispatcher's logs, not a correctness input.
	Done int `json:"done,omitempty"`
	// Counters carries the worker's metric counter DELTAS since its previous
	// heartbeat (zero deltas omitted). The dispatcher folds them into its
	// fleet_* aggregates; deltas (not absolutes) make the fold restart-safe —
	// a rebooted worker resumes from zero without double counting.
	Counters map[string]int64 `json:"counters,omitempty"`
	// Gauges carries the worker's gauge values, absolute (gauges do not
	// accumulate; the dispatcher sums the latest value per worker).
	Gauges map[string]float64 `json:"gauges,omitempty"`
}

// HeartbeatResponse acknowledges (or rejects) a heartbeat.
type HeartbeatResponse struct {
	// OK reports the lease is still valid and its deadline was extended.
	// false means the dispatcher no longer knows the lease (it expired and
	// was re-queued, or its sweep is gone) — the worker must abandon the
	// lease's remaining cells and stop posting results for it.
	OK bool `json:"ok"`
	// Canceled reports the lease's sweep was canceled (its client
	// disconnected); the worker should stop executing the lease's cells.
	Canceled bool `json:"canceled,omitempty"`
}

// ResultsRequest streams finished cells back. Workers post records one at a
// time as cells finish (the dispatcher forwards them straight onto the
// client stream), but the wire accepts a batch so a worker can flush several
// at once after a transient dispatcher outage.
type ResultsRequest struct {
	// WorkerID is the reporting worker.
	WorkerID string `json:"worker_id"`
	// LeaseID is the lease the cells belong to.
	LeaseID string `json:"lease_id"`
	// Records are the finished cells in hotpotato wire form — exactly what a
	// single-node /v1/batch would have streamed for them.
	Records []hotpotato.SweepResultRecord `json:"records"`
	// Spans exports each finished cell's worker-side span records so the
	// dispatcher can graft them into the sweep's merged trace tree.
	Spans []CellSpans `json:"spans,omitempty"`
	// Drift reports twin-drift observations that closed on this worker: cells
	// whose SpecHash had a pending /v1/predict answer when the full simulation
	// completed. The dispatcher tallies them into the sweep's status.
	Drift []DriftReport `json:"drift,omitempty"`
}

// CellSpans is the exported span subtree of one finished cell. Span IDs are
// local to the worker's per-cell recorder; the dispatcher re-numbers them on
// merge (obs.SpanRecorder.Graft), so only intra-batch parent links matter.
type CellSpans struct {
	// Index is the cell's index in the sweep's expansion order.
	Index int `json:"index"`
	// Worker is the executing worker's identity, for attribution in the
	// merged tree.
	Worker string `json:"worker,omitempty"`
	// Spans are the cell's span records, roots first (the worker's "cell"
	// root span carries the trace_id / worker attribution attrs).
	Spans []obs.SpanRecord `json:"spans,omitempty"`
	// Dropped is how many spans the worker's per-cell recorder dropped beyond
	// its capacity (long simulations emit one span per scheduler epoch).
	Dropped int64 `json:"dropped,omitempty"`
}

// DriftReport is one closed twin-drift observation: the signed gap between
// the analytical twin's transient-peak prediction for a SpecHash and the
// full simulation's answer for the same hash.
type DriftReport struct {
	// Index is the cell's index in the sweep (stamped by the worker; -1 for
	// observations closed outside a sweep).
	Index int `json:"index"`
	// Hash is the SpecHash both answers share.
	Hash string `json:"hash"`
	// ResidualC is simulated peak minus predicted peak, °C (signed: positive
	// means the twin under-predicted).
	ResidualC float64 `json:"residual_c"`
	// BoundC is the prediction's error bound, °C.
	BoundC float64 `json:"bound_c"`
	// Violated reports |ResidualC| > BoundC for a conclusive prediction —
	// the live counterpart of twin_diff_test's offline guarantee failing.
	Violated bool `json:"violated"`
}

// ResultsResponse acknowledges a results post.
type ResultsResponse struct {
	// Accepted is how many records the dispatcher consumed. Records for
	// already-finished cells (a re-leased cell completing twice) are counted
	// here too — first result wins, duplicates are dropped silently.
	Accepted int `json:"accepted"`
	// OK mirrors HeartbeatResponse.OK: false means the lease is unknown and
	// the worker should abandon its remaining cells.
	OK bool `json:"ok"`
}
