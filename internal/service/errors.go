package service

import (
	"net/http"

	hotpotato "repro"
)

// Error codes of the v1 JSON error envelope. Every non-2xx response from a
// /v1 handler is {"error": {"code", "message", "fields"}}; the code is a
// stable machine-readable name derived from the HTTP status, so clients
// branch on it instead of parsing message text. The status→code mapping is
// documented in docs/API.md and pinned by its drift gate.
const (
	// CodeInvalidRequest (400): the body did not decode or the spec failed
	// validation; fields lists every problem found.
	CodeInvalidRequest = "invalid_request"
	// CodeNotFound (404): no such job (possibly evicted by the janitor).
	CodeNotFound = "not_found"
	// CodeTooLarge (413): the sweep's cross-product exceeds the server's
	// admission limit.
	CodeTooLarge = "too_large"
	// CodeOutOfDomain (422): the spec is well-formed but outside the
	// analytical twin's calibrated domain; run the full simulator instead.
	CodeOutOfDomain = "out_of_domain"
	// CodeOverCapacity (429): the async job queue is full; retry later.
	CodeOverCapacity = "over_capacity"
	// CodeUnavailable (503): the server is shutting down or the run was
	// canceled server-side.
	CodeUnavailable = "unavailable"
	// CodeInternal (500): an unexpected execution failure.
	CodeInternal = "internal"
)

// apiError is the inner object of the v1 error envelope.
type apiError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	// Fields itemizes multi-error validation failures (one entry per invalid
	// field, from errors.Join); absent when the error is singular.
	Fields []string `json:"fields,omitempty"`
}

// errorEnvelope is the uniform non-2xx response body of every /v1 handler.
type errorEnvelope struct {
	Error apiError `json:"error"`
}

// errorCode maps an HTTP status to its envelope code.
func errorCode(status int) string {
	switch status {
	case http.StatusBadRequest:
		return CodeInvalidRequest
	case http.StatusNotFound:
		return CodeNotFound
	case http.StatusRequestEntityTooLarge:
		return CodeTooLarge
	case http.StatusUnprocessableEntity:
		return CodeOutOfDomain
	case http.StatusTooManyRequests:
		return CodeOverCapacity
	case http.StatusServiceUnavailable:
		return CodeUnavailable
	default:
		return CodeInternal
	}
}

// writeError emits the v1 JSON error envelope — the single error path of
// every /v1 handler. Multi-errors (errors.Join from Validate) unpack into
// Fields so a client sees every invalid field in one round trip.
func writeError(w http.ResponseWriter, status int, err error) {
	env := errorEnvelope{Error: apiError{Code: errorCode(status), Message: err.Error()}}
	if multi, ok := err.(interface{ Unwrap() []error }); ok {
		for _, e := range multi.Unwrap() {
			env.Error.Fields = append(env.Error.Fields, e.Error())
		}
	}
	writeJSON(w, status, env)
}

// cachedError replays a MaxTime stop stored in the result cache. The live
// error chain (fmt.Errorf wrapping sim.ErrTimeout) is not serializable, so
// the cache stores only its text; this type restores the errors.Is identity
// clients and handlers branch on. Only timeout outcomes are ever cached —
// every other error is transient (cancellation) or already rejected before
// execution — so ErrTimeout is the only identity to restore.
type cachedError struct{ msg string }

func (e cachedError) Error() string { return e.msg }

func (e cachedError) Is(target error) bool { return target == hotpotato.ErrTimeout }
