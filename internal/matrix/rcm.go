package matrix

import (
	"fmt"
	"sort"
)

// rcm.go implements the reverse Cuthill–McKee bandwidth-reducing ordering.
// The banded Cholesky factorization of banded.go costs O(n·k²) for bandwidth
// k, so the ordering directly sets the cost of every steady-state solve of
// the sparse thermal path: on a w×h grid RC network RCM brings the bandwidth
// from O(n) (natural node numbering: silicon block, then spreader block) down
// to O(min(w,h)) — the textbook profile-reduction result for grid graphs.

// RCMOrder returns a reverse Cuthill–McKee ordering of the symmetric sparsity
// pattern of a: order[k] is the original index of the node placed at position
// k. The permutation tends to minimize the bandwidth of P·A·Pᵀ; use
// BandwidthUnder to measure the result. a must be square; its pattern is
// taken as the union of (i,j) and (j,i) entries, diagonal ignored.
//
// The ordering is deterministic: BFS levels are expanded in ascending degree
// with index as tie-break, and each connected component is rooted at its
// lowest-index minimum-degree node.
func RCMOrder(a *CSR) []int {
	if a.rows != a.cols {
		panic(fmt.Sprintf("matrix: RCMOrder of non-square %dx%d matrix", a.rows, a.cols))
	}
	n := a.rows

	// Symmetrized adjacency (the thermal Laplacian already is, but the
	// ordering must not silently depend on it).
	adj := make([][]int, n)
	deg := make([]int, n)
	add := func(i, j int) {
		adj[i] = append(adj[i], j)
	}
	for i := 0; i < n; i++ {
		for k := a.rowStart[i]; k < a.rowStart[i+1]; k++ {
			j := a.colIdx[k]
			if j == i {
				continue
			}
			add(i, j)
			add(j, i)
		}
	}
	for i := range adj {
		sort.Ints(adj[i])
		// Deduplicate (both (i,j) and (j,i) may be stored).
		w := 0
		for r, v := range adj[i] {
			if r == 0 || adj[i][r-1] != v {
				adj[i][w] = v
				w++
			}
		}
		adj[i] = adj[i][:w]
		deg[i] = w
	}

	order := make([]int, 0, n)
	visited := make([]bool, n)
	queue := make([]int, 0, n)
	for {
		// Root the next component at its minimum-degree unvisited node.
		root := -1
		for i := 0; i < n; i++ {
			if !visited[i] && (root == -1 || deg[i] < deg[root]) {
				root = i
			}
		}
		if root == -1 {
			break
		}
		visited[root] = true
		queue = append(queue[:0], root)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			order = append(order, v)
			frontier := frontier(adj[v], visited)
			sort.Slice(frontier, func(x, y int) bool {
				if deg[frontier[x]] != deg[frontier[y]] {
					return deg[frontier[x]] < deg[frontier[y]]
				}
				return frontier[x] < frontier[y]
			})
			for _, w := range frontier {
				visited[w] = true
				queue = append(queue, w)
			}
		}
	}

	// Reverse (the "R" of RCM): reversing a Cuthill–McKee ordering never
	// increases and usually decreases the profile (George & Liu 1981).
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order
}

// frontier returns the unvisited neighbours, marking none.
func frontier(neighbours []int, visited []bool) []int {
	var out []int
	for _, w := range neighbours {
		if !visited[w] {
			out = append(out, w)
		}
	}
	return out
}

// BandwidthUnder returns the half-bandwidth of a under the given ordering:
// the maximum |pos(i) − pos(j)| over stored off-diagonal entries, where
// pos is the inverse of order (order[k] sits at position k). With the
// identity ordering it measures a's natural bandwidth.
func BandwidthUnder(a *CSR, order []int) int {
	if len(order) != a.rows {
		panic(fmt.Sprintf("matrix: ordering of length %d for %dx%d matrix", len(order), a.rows, a.cols))
	}
	pos := make([]int, len(order))
	for k, v := range order {
		pos[v] = k
	}
	bw := 0
	for i := 0; i < a.rows; i++ {
		for k := a.rowStart[i]; k < a.rowStart[i+1]; k++ {
			d := pos[i] - pos[a.colIdx[k]]
			if d < 0 {
				d = -d
			}
			if d > bw {
				bw = d
			}
		}
	}
	return bw
}

// IdentityOrder returns the identity ordering of length n.
func IdentityOrder(n int) []int {
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	return order
}
