// Command benchjson converts `go test -bench` text output on stdin into the
// machine-readable perf-trajectory format committed as BENCH_hotloop.json.
//
//	go test -run '^$' -bench '^BenchmarkHotloop' -benchmem ./... | benchjson -out BENCH_hotloop.json
//
// Every benchmark line becomes one record carrying the iteration count and
// all reported metrics (ns/op, B/op, allocs/op, plus any b.ReportMetric
// extras). Context lines (goos/goarch/cpu/pkg) annotate the records that
// follow them. The raw input is echoed to stderr so the conversion does not
// swallow the benchmark log.
//
// With -compare it instead diffs two previously converted files:
//
//	benchjson -compare BENCH_hotloop.json new.json
//
// printing a benchstat-style delta table of ns/op and allocs/op per shared
// benchmark, and exiting non-zero when any benchmark's ns/op regressed by
// more than 10% — the CI tripwire for accidental hot-loop slowdowns.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Package    string             `json:"package,omitempty"`
	Name       string             `json:"name"`
	Procs      int                `json:"procs,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// File is the top-level document: shared context plus one record per
// benchmark, in input order.
type File struct {
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "", "output file (default stdout)")
	compare := flag.Bool("compare", false, "compare two benchjson files: benchjson -compare old.json new.json")
	threshold := flag.Float64("threshold", 10, "with -compare: fail when ns/op regresses by more than this percentage")
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -compare needs exactly two file arguments: old.json new.json")
			os.Exit(2)
		}
		regressed, err := compareFiles(os.Stdout, flag.Arg(0), flag.Arg(1), *threshold)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(2)
		}
		if regressed {
			os.Exit(1)
		}
		return
	}

	doc, err := parse(bufio.NewScanner(os.Stdin), os.Stderr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(doc.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found on stdin")
		os.Exit(1)
	}

	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

func parse(sc *bufio.Scanner, echo *os.File) (*File, error) {
	doc := &File{}
	pkg := ""
	for sc.Scan() {
		line := sc.Text()
		if echo != nil {
			fmt.Fprintln(echo, line)
		}
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			doc.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseBenchLine(line)
			if !ok {
				continue // e.g. "BenchmarkFoo ... FAIL"
			}
			b.Package = pkg
			doc.Benchmarks = append(doc.Benchmarks, b)
		}
	}
	return doc, sc.Err()
}

// parseBenchLine parses one result line of the standard benchmark format:
//
//	BenchmarkName-8   1234   56.7 ns/op   0 B/op   0 allocs/op   3.2 extra
//
// The shape is tolerated loosely rather than matched exactly: sub-benchmark
// names may contain dashes (only an all-digit -N suffix counts as the
// GOMAXPROCS tag), columns may be absent (runs without -benchmem report only
// ns/op), and a stray token between value/unit pairs skips that token instead
// of discarding the whole line. A line is rejected only when the iteration
// count is missing or no value/unit pair parses at all.
func parseBenchLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	b := Benchmark{
		Name:    strings.TrimPrefix(fields[0], "Benchmark"),
		Metrics: map[string]float64{},
	}
	if i := strings.LastIndex(b.Name, "-"); i > 0 {
		if procs, err := strconv.Atoi(b.Name[i+1:]); err == nil {
			b.Procs = procs
			b.Name = b.Name[:i]
		}
	}
	iter, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b.Iterations = iter
	for i := 2; i+1 < len(fields); {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			i++ // not a value: stray token, resync on the next field
			continue
		}
		unit := fields[i+1]
		if _, err := strconv.ParseFloat(unit, 64); err == nil {
			i++ // two adjacent numbers: fields[i] has no unit, drop it
			continue
		}
		b.Metrics[unit] = v
		i += 2
	}
	if len(b.Metrics) == 0 {
		return Benchmark{}, false
	}
	return b, true
}

// benchKey identifies a benchmark across files: two records compare only when
// package, name and GOMAXPROCS tag all match.
func benchKey(b Benchmark) string {
	return fmt.Sprintf("%s.%s-%d", b.Package, b.Name, b.Procs)
}

func loadFile(path string) (*File, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	doc := &File{}
	if err := json.Unmarshal(raw, doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(doc.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks", path)
	}
	return doc, nil
}

// delta formats a percentage change, using benchstat's "~" for a 0→0 pair
// (no change computable, none happened) and "+inf" for 0→x.
func delta(old, new float64) string {
	if old == 0 {
		if new == 0 {
			return "~"
		}
		return "+inf"
	}
	return fmt.Sprintf("%+.2f%%", (new-old)/old*100)
}

// compareFiles prints a per-benchmark delta table of ns/op and allocs/op for
// the benchmarks present in both files and reports whether any ns/op
// regression exceeded threshold percent. Benchmarks present in only one file
// are listed but never counted as regressions — a renamed benchmark should
// not fail CI, a slower one should.
func compareFiles(w io.Writer, oldPath, newPath string, threshold float64) (regressed bool, err error) {
	oldDoc, err := loadFile(oldPath)
	if err != nil {
		return false, err
	}
	newDoc, err := loadFile(newPath)
	if err != nil {
		return false, err
	}

	oldBy := make(map[string]Benchmark, len(oldDoc.Benchmarks))
	for _, b := range oldDoc.Benchmarks {
		oldBy[benchKey(b)] = b
	}

	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintf(tw, "benchmark\told ns/op\tnew ns/op\tdelta\told allocs/op\tnew allocs/op\tdelta\t\n")
	matched := 0
	var worst struct {
		key string
		pct float64
		ok  bool
	}
	for _, nb := range newDoc.Benchmarks {
		key := benchKey(nb)
		ob, ok := oldBy[key]
		if !ok {
			fmt.Fprintf(tw, "%s\t-\t%.1f\tnew\t-\t%.0f\tnew\t\n",
				nb.Name, nb.Metrics["ns/op"], nb.Metrics["allocs/op"])
			continue
		}
		delete(oldBy, key)
		matched++
		oldNs, newNs := ob.Metrics["ns/op"], nb.Metrics["ns/op"]
		fmt.Fprintf(tw, "%s\t%.1f\t%.1f\t%s\t%.0f\t%.0f\t%s\t\n",
			nb.Name, oldNs, newNs, delta(oldNs, newNs),
			ob.Metrics["allocs/op"], nb.Metrics["allocs/op"],
			delta(ob.Metrics["allocs/op"], nb.Metrics["allocs/op"]))
		if oldNs > 0 {
			pct := (newNs - oldNs) / oldNs * 100
			if !worst.ok || pct > worst.pct {
				worst.key, worst.pct, worst.ok = nb.Name, pct, true
			}
		}
	}
	for _, ob := range oldBy {
		fmt.Fprintf(tw, "%s\t%.1f\t-\tgone\t%.0f\t-\tgone\t\n",
			ob.Name, ob.Metrics["ns/op"], ob.Metrics["allocs/op"])
	}
	if err := tw.Flush(); err != nil {
		return false, err
	}
	if matched == 0 {
		return false, fmt.Errorf("no benchmarks in common between %s and %s", oldPath, newPath)
	}
	if worst.ok && worst.pct > threshold {
		fmt.Fprintf(w, "\nFAIL: %s ns/op regressed %.2f%% (threshold %.0f%%)\n", worst.key, worst.pct, threshold)
		return true, nil
	}
	fmt.Fprintf(w, "\nok: %d benchmarks compared, worst ns/op delta %+.2f%% (threshold %.0f%%)\n", matched, worst.pct, threshold)
	return false, nil
}
