package workload

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestJSONRoundTripPARSEC(t *testing.T) {
	var buf bytes.Buffer
	if err := ToJSON(&buf, PARSEC()); err != nil {
		t.Fatal(err)
	}
	decoded, err := FromJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	orig := PARSEC()
	if len(decoded) != len(orig) {
		t.Fatalf("decoded %d benchmarks, want %d", len(decoded), len(orig))
	}
	for i, b := range decoded {
		o := orig[i]
		if b.Name != o.Name || b.NominalWatts != o.NominalWatts ||
			b.BaseCPI != o.BaseCPI || b.MPKI != o.MPKI || b.Work != o.Work {
			t.Fatalf("benchmark %s scalar mismatch: %+v vs %+v", o.Name, b, o)
		}
		if len(b.Phases) != len(o.Phases) {
			t.Fatalf("%s phase count mismatch", o.Name)
		}
		for j := range b.Phases {
			if b.Phases[j].Kind != o.Phases[j].Kind ||
				math.Abs(b.Phases[j].Frac-o.Phases[j].Frac) > 1e-12 {
				t.Fatalf("%s phase %d mismatch", o.Name, j)
			}
		}
	}
}

func TestFromJSONCustomBenchmark(t *testing.T) {
	src := `[
	  {
	    "name": "mykernel",
	    "nominal_watts": 7.5,
	    "base_cpi": 0.9,
	    "mpki": 4,
	    "work": 3.0e8,
	    "phases": [
	      {"kind": "serial", "frac": 0.2},
	      {"kind": "parallel", "frac": 0.8}
	    ]
	  }
	]`
	bs, err := FromJSON(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(bs) != 1 || bs[0].Name != "mykernel" {
		t.Fatalf("decoded %+v", bs)
	}
	// The decoded benchmark must be usable as a task.
	task, err := NewTask(0, bs[0], 4, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if task.State(0) != ThreadRunning {
		t.Error("custom benchmark's serial phase not runnable")
	}
}

func TestFromJSONRejectsInvalid(t *testing.T) {
	cases := map[string]string{
		"bad kind":       `[{"name":"x","nominal_watts":5,"base_cpi":1,"mpki":1,"work":1e8,"phases":[{"kind":"weird","frac":1}]}]`,
		"fractions != 1": `[{"name":"x","nominal_watts":5,"base_cpi":1,"mpki":1,"work":1e8,"phases":[{"kind":"serial","frac":0.5}]}]`,
		"zero power":     `[{"name":"x","nominal_watts":0,"base_cpi":1,"mpki":1,"work":1e8,"phases":[{"kind":"serial","frac":1}]}]`,
		"unknown field":  `[{"name":"x","nominal_watts":5,"base_cpi":1,"mpki":1,"work":1e8,"threads":4,"phases":[{"kind":"serial","frac":1}]}]`,
		"empty list":     `[]`,
		"not even json":  `{{{`,
		"missing phases": `[{"name":"x","nominal_watts":5,"base_cpi":1,"mpki":1,"work":1e8}]`,
		"negative mpki":  `[{"name":"x","nominal_watts":5,"base_cpi":1,"mpki":-2,"work":1e8,"phases":[{"kind":"serial","frac":1}]}]`,
	}
	for name, src := range cases {
		if _, err := FromJSON(strings.NewReader(src)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestToJSONRejectsInvalidBenchmark(t *testing.T) {
	bad := Benchmark{Name: "", NominalWatts: 1, BaseCPI: 1, Work: 1, Phases: []Phase{{Serial, 1}}}
	var buf bytes.Buffer
	if err := ToJSON(&buf, []Benchmark{bad}); err == nil {
		t.Error("invalid benchmark encoded")
	}
}

func TestJSONRoundTripsMissRatio(t *testing.T) {
	var buf bytes.Buffer
	if err := ToJSON(&buf, PARSEC()); err != nil {
		t.Fatal(err)
	}
	decoded, err := FromJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range decoded {
		if b.LLCMissRatio != PARSEC()[i].LLCMissRatio {
			t.Fatalf("%s miss ratio lost in round trip", b.Name)
		}
	}
}

// FuzzFromJSON asserts the parser never panics and that anything it accepts
// is a valid, usable benchmark.
func FuzzFromJSON(f *testing.F) {
	var seed bytes.Buffer
	if err := ToJSON(&seed, PARSEC()); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.String())
	f.Add(`[]`)
	f.Add(`[{"name":"x","nominal_watts":5,"base_cpi":1,"mpki":1,"work":1e8,"phases":[{"kind":"serial","frac":1}]}]`)
	f.Add(`{"not": "a list"}`)
	f.Fuzz(func(t *testing.T, src string) {
		bs, err := FromJSON(strings.NewReader(src))
		if err != nil {
			return
		}
		for _, b := range bs {
			if err := b.Validate(); err != nil {
				t.Fatalf("FromJSON accepted invalid benchmark %q: %v", b.Name, err)
			}
			if _, err := NewTask(0, b, 2, 0, 1); err != nil {
				t.Fatalf("accepted benchmark unusable: %v", err)
			}
		}
	})
}
