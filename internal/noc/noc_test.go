package noc

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/floorplan"
)

func testNet(t testing.TB, w, h int) *Network {
	t.Helper()
	n, err := New(floorplan.MustNew(w, h, 0.0009), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestNewValidation(t *testing.T) {
	fp := floorplan.MustNew(2, 2, 0.0009)
	if _, err := New(fp, Config{HopLatency: 0, LinkWidthBits: 256}); err == nil {
		t.Error("expected error for zero hop latency")
	}
	if _, err := New(fp, Config{HopLatency: 1e-9, LinkWidthBits: 0}); err == nil {
		t.Error("expected error for zero link width")
	}
}

func TestDefaultConfigMatchesTableI(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.HopLatency != 1.5e-9 {
		t.Errorf("hop latency = %v, want 1.5 ns", cfg.HopLatency)
	}
	if cfg.LinkWidthBits != 256 {
		t.Errorf("link width = %v, want 256", cfg.LinkWidthBits)
	}
}

func TestRouteEndpoints(t *testing.T) {
	n := testNet(t, 4, 4)
	path := n.Route(0, 15)
	if path[0] != 0 || path[len(path)-1] != 15 {
		t.Fatalf("route endpoints wrong: %v", path)
	}
	if len(path) != n.Hops(0, 15)+1 {
		t.Fatalf("route length %d, want hops+1 = %d", len(path), n.Hops(0, 15)+1)
	}
}

func TestRouteIsXYOrdered(t *testing.T) {
	// XY routing travels along X first, then Y.
	n := testNet(t, 4, 4)
	fp := floorplan.MustNew(4, 4, 0.0009)
	path := n.Route(fp.ID(0, 0), fp.ID(2, 3))
	sawYMove := false
	for i := 1; i < len(path); i++ {
		px, py := fp.Coord(path[i-1])
		cx, cy := fp.Coord(path[i])
		if py != cy { // Y move
			sawYMove = true
			if px != cx {
				t.Fatal("diagonal move in route")
			}
		} else if sawYMove && px != cx {
			t.Fatalf("X move after Y move: XY order violated in %v", path)
		}
	}
}

func TestRouteSelf(t *testing.T) {
	n := testNet(t, 3, 3)
	path := n.Route(4, 4)
	if len(path) != 1 || path[0] != 4 {
		t.Fatalf("self route = %v", path)
	}
}

func TestHopsEqualsManhattan(t *testing.T) {
	n := testNet(t, 5, 5)
	fp := floorplan.MustNew(5, 5, 0.0009)
	for a := 0; a < fp.NumCores(); a += 3 {
		for b := 0; b < fp.NumCores(); b += 4 {
			if n.Hops(a, b) != fp.ManhattanDistance(a, b) {
				t.Fatalf("hops(%d,%d) != manhattan", a, b)
			}
		}
	}
}

func TestLatencySingleFlit(t *testing.T) {
	n := testNet(t, 4, 4)
	// 256-bit message = 1 flit; 3 hops at 1.5 ns.
	got := n.Latency(0, 3, 256)
	want := 3 * 1.5e-9
	if math.Abs(got-want) > 1e-15 {
		t.Errorf("latency = %v, want %v", got, want)
	}
}

func TestLatencyMultiFlit(t *testing.T) {
	n := testNet(t, 4, 4)
	// 512-bit message = 2 flits: one extra hop time of serialization.
	got := n.Latency(0, 3, 512)
	want := 3*1.5e-9 + 1*1.5e-9
	if math.Abs(got-want) > 1e-15 {
		t.Errorf("latency = %v, want %v", got, want)
	}
}

func TestLatencyZeroBitsStillOneFlit(t *testing.T) {
	n := testNet(t, 4, 4)
	if got, want := n.Latency(0, 1, 0), 1.5e-9; math.Abs(got-want) > 1e-15 {
		t.Errorf("zero-size latency = %v, want one hop %v", got, want)
	}
}

func TestAvgLLCRoundTripCenterFasterThanCorner(t *testing.T) {
	// The S-NUCA performance heterogeneity: central cores see lower average
	// LLC latency than corner cores.
	n := testNet(t, 8, 8)
	fp := floorplan.MustNew(8, 8, 0.0009)
	center := fp.ID(3, 3)
	corner := fp.ID(0, 0)
	if n.AvgLLCRoundTrip(center) >= n.AvgLLCRoundTrip(corner) {
		t.Errorf("center RT %v not < corner RT %v",
			n.AvgLLCRoundTrip(center), n.AvgLLCRoundTrip(corner))
	}
}

func TestAvgLLCRoundTripsVectorMatchesScalar(t *testing.T) {
	n := testNet(t, 4, 4)
	v := n.AvgLLCRoundTrips()
	for i, rt := range v {
		if rt != n.AvgLLCRoundTrip(i) {
			t.Fatalf("vector[%d] mismatch", i)
		}
	}
}

// Property: latency is monotone in distance and in message size.
func TestPropLatencyMonotone(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		w := 2 + r.Intn(7)
		fp := floorplan.MustNew(w, w, 0.0009)
		n, err := New(fp, DefaultConfig())
		if err != nil {
			return false
		}
		a := r.Intn(fp.NumCores())
		b := r.Intn(fp.NumCores())
		c := r.Intn(fp.NumCores())
		// Pick the farther of b, c from a; its latency must be >= the nearer.
		far, near := b, c
		if n.Hops(a, far) < n.Hops(a, near) {
			far, near = near, far
		}
		if n.Latency(a, far, 256) < n.Latency(a, near, 256) {
			return false
		}
		return n.Latency(a, b, 1024) >= n.Latency(a, b, 256)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: every route is a valid path of unit steps with the right length.
func TestPropRouteValid(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		w := 2 + r.Intn(7)
		h := 2 + r.Intn(7)
		fp := floorplan.MustNew(w, h, 0.0009)
		n, err := New(fp, DefaultConfig())
		if err != nil {
			return false
		}
		src := r.Intn(fp.NumCores())
		dst := r.Intn(fp.NumCores())
		path := n.Route(src, dst)
		if path[0] != src || path[len(path)-1] != dst {
			return false
		}
		for i := 1; i < len(path); i++ {
			if fp.ManhattanDistance(path[i-1], path[i]) != 1 {
				return false
			}
		}
		return len(path) == fp.ManhattanDistance(src, dst)+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
