package experiments

import (
	"fmt"

	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

// BaselineRow is one policy of the cross-policy summary.
type BaselineRow struct {
	Policy     string
	Makespan   float64 // seconds
	PeakTemp   float64 // °C
	DTMTime    float64 // seconds throttled
	Migrations int
	EnergyJ    float64
}

// Baselines runs the full policy ladder on one hot full-load workload: a
// naive reactive DVFS governor, PCMig, HotPotato, and the rotation+DVFS
// hybrid — the one-table summary of the repo's comparative landscape. The
// policies run concurrently over Options.Workers goroutines; the ladder
// keeps its fixed order.
func Baselines(opts Options, benchName string) ([]BaselineRow, error) {
	opts = opts.withDefaults()
	b, err := workload.ByName(benchName)
	if err != nil {
		return nil, err
	}
	specs, err := workload.HomogeneousFullLoad(b, opts.GridEdge*opts.GridEdge, []int{2, 4, 8})
	if err != nil {
		return nil, err
	}
	policies := []struct {
		name string
		mk   func(*sim.Platform) sim.Scheduler
	}{
		{"async-migration (no DVFS)", func(*sim.Platform) sim.Scheduler { return sched.NewAsyncMigrate(opts.TDTM) }},
		{"reactive (ondemand-style)", func(*sim.Platform) sim.Scheduler { return sched.NewReactive(opts.TDTM) }},
		{"pcmig", func(*sim.Platform) sim.Scheduler { return sched.NewPCMig(opts.TDTM) }},
		{"hotpotato", func(p *sim.Platform) sim.Scheduler { return sched.NewHotPotato(p, opts.TDTM) }},
		{"hotpotato-dvfs", func(p *sim.Platform) sim.Scheduler { return sched.NewHotPotatoDVFS(p, opts.TDTM) }},
	}
	rows := make([]BaselineRow, len(policies))
	err = forEach(opts.workers(), len(policies), func(i int) error {
		p := policies[i]
		res, err := runWorkload(opts, p.mk, specs, sim.DefaultConfig())
		if err != nil {
			return fmt.Errorf("experiments: baselines %s: %w", p.name, err)
		}
		rows[i] = BaselineRow{
			Policy:     p.name,
			Makespan:   res.Makespan,
			PeakTemp:   res.PeakTemp,
			DTMTime:    res.DTMTime,
			Migrations: res.Migrations,
			EnergyJ:    res.EnergyJ,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}
