package sched

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/workload"
)

func TestHybridNameAndDefaults(t *testing.T) {
	plat := testPlatform(t, 4, 4)
	h := NewHotPotatoDVFS(plat, 70)
	if h.Name() != "hotpotato-dvfs" {
		t.Errorf("name = %q", h.Name())
	}
	if h.Freq() != plat.Power.DVFS().FMax {
		t.Errorf("initial frequency = %v, want peak", h.Freq())
	}
}

func TestHybridStaysAtPeakWhenCool(t *testing.T) {
	// A cool workload must never be throttled: the hybrid degenerates to
	// pure HotPotato.
	plat := testPlatform(t, 4, 4)
	b, _ := workload.ByName("canneal")
	specs, err := workload.HomogeneousFullLoad(b, 16, []int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	tasks, err := workload.Instantiate(specs)
	if err != nil {
		t.Fatal(err)
	}
	h := NewHotPotatoDVFS(plat, 70)
	res := runSim(t, plat, sim.DefaultConfig(), h, tasks)
	if h.Freq() < plat.Power.DVFS().FMax {
		t.Errorf("cool workload throttled to %.1f GHz", h.Freq()/1e9)
	}
	if res.PeakTemp > 70.5 {
		t.Errorf("peak %.2f °C", res.PeakTemp)
	}
}

func TestHybridThrottlesWhenRotationInsufficient(t *testing.T) {
	// Force a situation rotation cannot fix: every core holds a hot thread
	// (no cold cores to average against). The hybrid must step the frequency
	// down; pure HotPotato can only ride the DTM.
	plat := testPlatform(t, 4, 4)
	h := NewHotPotatoDVFS(plat, 70)
	threads := make([]sim.ThreadInfo, 16)
	for i := range threads {
		threads[i] = sim.ThreadInfo{
			ID:           sim.ThreadID{Task: i, Thread: 0},
			Core:         -1,
			CPI:          1,
			AvgPower:     6, // 16×6 W is far beyond the chip's envelope
			NominalWatts: 9,
			Perf:         workload.PARSEC()[0].Perf(),
		}
	}
	temps := make([]float64, 16)
	for i := range temps {
		temps[i] = 69.5
	}
	fmax := plat.Power.DVFS().FMax
	for step := 0; step < 20; step++ {
		st := &sim.State{
			Time:      float64(step) * 1.1e-3,
			Platform:  plat,
			CoreTemps: temps,
			Threads:   threads,
			TDTM:      70,
		}
		dec := h.Decide(st)
		if dec.Freq == nil {
			t.Fatal("hybrid returned nil frequencies")
		}
	}
	if h.Freq() >= fmax {
		t.Errorf("frequency still %.1f GHz on an impossible workload", h.Freq()/1e9)
	}
	if h.Tau() > h.tauMin {
		t.Errorf("rotation not at its floor (τ=%v) before throttling", h.Tau())
	}
}

func TestHybridRecoversFrequency(t *testing.T) {
	// After pressure disappears, the frequency must climb back to peak.
	plat := testPlatform(t, 4, 4)
	h := NewHotPotatoDVFS(plat, 70)
	h.freq = plat.Power.DVFS().FMin // start throttled

	threads := []sim.ThreadInfo{{
		ID: sim.ThreadID{Task: 0, Thread: 0}, Core: -1,
		CPI: 1, AvgPower: 1.5, NominalWatts: 4,
		Perf: workload.PARSEC()[2].Perf(),
	}}
	temps := make([]float64, 16)
	for i := range temps {
		temps[i] = 48
	}
	for step := 0; step < 60; step++ {
		st := &sim.State{
			Time:      float64(step) * 1.1e-3,
			Platform:  plat,
			CoreTemps: temps,
			Threads:   threads,
			TDTM:      70,
		}
		h.Decide(st)
	}
	if h.Freq() < plat.Power.DVFS().FMax {
		t.Errorf("frequency stuck at %.1f GHz with a single cool thread", h.Freq()/1e9)
	}
}

func TestHybridReducesDTMOnHotWorkload(t *testing.T) {
	// blackscholes full load trips DTM occasionally under pure HotPotato;
	// the hybrid's extra knob must not do worse, and must stay competitive
	// on makespan.
	b, _ := workload.ByName("blackscholes")
	mk := func() []*workload.Task {
		specs, err := workload.HomogeneousFullLoad(b, 16, []int{2, 4})
		if err != nil {
			t.Fatal(err)
		}
		tasks, err := workload.Instantiate(specs)
		if err != nil {
			t.Fatal(err)
		}
		return tasks
	}
	platA := testPlatform(t, 4, 4)
	pure := runSim(t, platA, sim.DefaultConfig(), NewHotPotato(platA, 70), mk())
	platB := testPlatform(t, 4, 4)
	hybrid := runSim(t, platB, sim.DefaultConfig(), NewHotPotatoDVFS(platB, 70), mk())

	if hybrid.DTMTime > pure.DTMTime+1e-3 {
		t.Errorf("hybrid DTM time %.2f ms worse than pure %.2f ms",
			hybrid.DTMTime*1e3, pure.DTMTime*1e3)
	}
	if hybrid.Makespan > pure.Makespan*1.15 {
		t.Errorf("hybrid makespan %.1f ms much worse than pure %.1f ms",
			hybrid.Makespan*1e3, pure.Makespan*1e3)
	}
	if hybrid.PeakTemp > 72 {
		t.Errorf("hybrid peak %.2f °C", hybrid.PeakTemp)
	}
}
