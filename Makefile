# Convenience targets for the hotpotato reproduction.

GO ?= go

# Benchtime for the hot-loop baseline; CI overrides with BENCHTIME=1x for a
# smoke run, a committed baseline should use the default statistical run.
BENCHTIME ?= 1s

.PHONY: all build test test-short race bench bench-all experiments vet fmt cover serve

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Race-detector pass over the short suite — validates docs/CONCURRENCY.md.
race:
	$(GO) test -short -race ./...

cover:
	$(GO) test -cover ./...

# Run the HTTP simulation service (docs/SERVICE.md) on :8080.
serve:
	$(GO) run ./cmd/hotpotato-server

# Regenerate every paper table & figure (tables to stdout).
experiments:
	$(GO) run ./cmd/experiments -exp all

# Hot-loop perf trajectory: kernel (matrix/thermal), epoch (sim), ring-scan
# (rotation) and sweep (experiments) benchmarks → BENCH_hotloop.json
# (docs/PERFORMANCE.md describes the format).
bench:
	$(GO) test -run '^$$' -bench '^BenchmarkHotloop' -benchmem -benchtime $(BENCHTIME) ./... \
		| $(GO) run ./cmd/benchjson -out BENCH_hotloop.json
	@echo "wrote BENCH_hotloop.json"

# One testing.B benchmark per paper table/figure.
bench-all:
	$(GO) test -bench=. -benchmem -benchtime 1x -run '^$$' ./...
