// Package sim is the interval thermal simulator — the reproduction of the
// HotSniper toolchain [12] the paper evaluates in. It advances simulated
// time in fixed slices; in each slice it executes the mapped threads with the
// interval performance model, converts their activity into per-core power,
// integrates the RC thermal model exactly (matrix exponential), enforces
// hardware DTM, and invokes the pluggable scheduler at its requested cadence
// and on task arrival/finish events.
package sim

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/floorplan"
	"repro/internal/noc"
	"repro/internal/perf"
	"repro/internal/power"
	"repro/internal/thermal"
)

// Platform bundles every hardware model of the simulated many-core.
type Platform struct {
	FP      *floorplan.Floorplan
	Net     *noc.Network
	Caches  *cache.Hierarchy
	Thermal *thermal.Model
	Power   power.Model
	Perf    *perf.Model
}

// PlatformConfig collects the knobs of all substrates. The zero value is not
// usable; start from DefaultPlatformConfig. It is a plain comparable value:
// copy freely, compare with ==, use as a map key (the platform cache of the
// serving layer keys shared Platforms this way).
type PlatformConfig struct {
	Width       int            `json:"width"`
	Height      int            `json:"height"`
	CoreEdge    float64        `json:"core_edge"` // meters
	NoC         noc.Config     `json:"noc"`
	Cache       cache.Config   `json:"cache"`
	Thermal     thermal.Config `json:"thermal"`
	Power       power.Model    `json:"power"`
	BankAccess  float64        `json:"bank_access"`  // LLC bank access time, seconds
	DRAMLatency float64        `json:"dram_latency"` // off-chip penalty paid by LLC misses, seconds
}

// DefaultPlatformConfig returns the paper's Table I platform at the given
// grid size (the evaluation uses 8×8 = 64 cores; the motivational example
// 4×4 = 16).
func DefaultPlatformConfig(width, height int) PlatformConfig {
	return PlatformConfig{
		Width:       width,
		Height:      height,
		CoreEdge:    0.0009, // 0.81 mm² per core
		NoC:         noc.DefaultConfig(),
		Cache:       cache.DefaultConfig(),
		Thermal:     thermal.DefaultConfig(),
		Power:       power.DefaultModel(),
		BankAccess:  perf.DefaultBankAccess,
		DRAMLatency: perf.DefaultDRAMLatency,
	}
}

// NewPlatform builds and validates all substrate models.
func NewPlatform(cfg PlatformConfig) (*Platform, error) {
	fp, err := floorplan.New(cfg.Width, cfg.Height, cfg.CoreEdge)
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	net, err := noc.New(fp, cfg.NoC)
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	caches, err := cache.New(net, fp.NumCores(), cfg.Cache)
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	thermalModel, err := thermal.New(fp, cfg.Thermal)
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	perfModel, err := perf.NewWithDRAM(net, cfg.BankAccess, cfg.DRAMLatency)
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	if err := cfg.Power.DVFS().Validate(); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	return &Platform{
		FP:      fp,
		Net:     net,
		Caches:  caches,
		Thermal: thermalModel,
		Power:   cfg.Power,
		Perf:    perfModel,
	}, nil
}

// NumCores returns the core count of the platform.
func (p *Platform) NumCores() int { return p.FP.NumCores() }
