package fabric

import (
	"path/filepath"
	"testing"
	"time"

	hotpotato "repro"
	"repro/internal/obs"
)

// drainSweep consumes a sweep's record stream in the background so results
// posts never block on the unread channel.
func drainSweep(sw *Sweep) {
	go func() {
		for range sw.Records() {
		}
	}()
}

func TestSweepStatusLifecycle(t *testing.T) {
	clock := &fakeClock{now: time.Unix(1000, 0)}
	d := newTestDispatcher(clock, 3)
	client := obs.NewTraceContext()
	sweep := d.Submit(testCells(t, 4), "req-42", client.Header())
	drainSweep(sweep)

	st, ok := d.SweepStatus(sweep.ID)
	if !ok {
		t.Fatal("fresh sweep unknown to SweepStatus")
	}
	if st.State != "active" || st.Pending != 4 || st.Leased != 0 {
		t.Fatalf("fresh status %+v, want active/4 pending", st)
	}
	if st.TraceID != client.TraceID {
		t.Errorf("trace ID %s, want the client's %s", st.TraceID, client.TraceID)
	}
	if st.RequestID != "req-42" {
		t.Errorf("request ID %q", st.RequestID)
	}

	grant := d.Lease("w1", 2)
	st, _ = d.SweepStatus(sweep.ID)
	if st.Pending != 2 || st.Leased != 2 {
		t.Fatalf("after lease: %+v, want 2 pending / 2 leased", st)
	}

	clock.Advance(2 * time.Second)
	n, ok := d.PostResults(ResultsRequest{
		WorkerID: "w1", LeaseID: grant.ID,
		Records: []hotpotato.SweepResultRecord{okRecord(grant.Cells[0].Index), okRecord(grant.Cells[1].Index)},
		Drift: []DriftReport{
			{Index: grant.Cells[0].Index, Hash: "sha256:x", ResidualC: 0.5, BoundC: 2},
			{Index: grant.Cells[1].Index, Hash: "sha256:y", ResidualC: -1.5, BoundC: 1, Violated: true},
		},
	})
	if !ok || n != 2 {
		t.Fatalf("results accepted=%d ok=%v", n, ok)
	}

	st, _ = d.SweepStatus(sweep.ID)
	if st.Completed != 2 || st.Leased != 0 {
		t.Fatalf("after results: %+v", st)
	}
	if len(st.Workers) != 1 || st.Workers[0].ID != "w1" || st.Workers[0].Done != 2 {
		t.Fatalf("worker attribution %+v", st.Workers)
	}
	if st.ETAMS <= 0 {
		t.Errorf("ETA %v, want > 0 with 2/4 done", st.ETAMS)
	}
	if st.Drift == nil || st.Drift.Checks != 2 || st.Drift.Violations != 1 {
		t.Fatalf("drift tally %+v", st.Drift)
	}
	if st.Drift.MaxAbsResidualC != 1.5 || st.Drift.MeanResidualC != -0.5 {
		t.Errorf("drift stats %+v, want max 1.5 mean -0.5", st.Drift)
	}

	// Finish the sweep; it must stay queryable from the recent ring.
	rest := d.Lease("w2", 2)
	d.PostResults(ResultsRequest{WorkerID: "w2", LeaseID: rest.ID,
		Records: []hotpotato.SweepResultRecord{okRecord(rest.Cells[0].Index), okRecord(rest.Cells[1].Index)}})
	st, ok = d.SweepStatus(sweep.ID)
	if !ok || st.State != "done" || st.Completed != 4 {
		t.Fatalf("closed sweep: ok=%v %+v", ok, st)
	}
	if st.ETAMS != 0 {
		t.Errorf("done sweep still reports ETA %v", st.ETAMS)
	}
	list := d.SweepStatuses(0)
	if len(list.Active) != 0 || len(list.Recent) != 1 || list.Recent[0].SweepID != sweep.ID {
		t.Fatalf("list %+v, want the sweep in recent only", list)
	}
}

func TestSweepStatusCountsRequeues(t *testing.T) {
	clock := &fakeClock{now: time.Unix(1000, 0)}
	d := newTestDispatcher(clock, 3)
	sweep := d.Submit(testCells(t, 2), "", "")
	drainSweep(sweep)

	d.Lease("doomed", 2)
	clock.Advance(11 * time.Second)
	d.ExpireLeases(clock.Now())

	st, _ := d.SweepStatus(sweep.ID)
	if st.Requeues != 2 {
		t.Fatalf("requeues %d, want 2 (one per recovered cell's lease expiry... counted per expiry cell)", st.Requeues)
	}
	if st.Pending != 2 || st.Leased != 0 {
		t.Fatalf("after expiry %+v", st)
	}
}

func TestRecentSweepRingIsBounded(t *testing.T) {
	clock := &fakeClock{now: time.Unix(1000, 0)}
	d := NewDispatcher(Config{LeaseTTL: 10 * time.Second, LeaseCells: 4, Clock: clock, RecentSweeps: 2})
	var ids []string
	for i := 0; i < 3; i++ {
		sw := d.Submit(testCells(t, 1), "", "")
		drainSweep(sw)
		g := d.Lease("w", 1)
		d.PostResults(ResultsRequest{WorkerID: "w", LeaseID: g.ID,
			Records: []hotpotato.SweepResultRecord{okRecord(g.Cells[0].Index)}})
		ids = append(ids, sw.ID)
	}
	if _, ok := d.SweepStatus(ids[0]); ok {
		t.Error("oldest sweep should have been evicted from the recent ring")
	}
	for _, id := range ids[1:] {
		if _, ok := d.SweepStatus(id); !ok {
			t.Errorf("sweep %s missing from the recent ring", id)
		}
	}
}

func TestSweepSpansMergeWorkerExports(t *testing.T) {
	clock := &fakeClock{now: time.Unix(1000, 0)}
	d := newTestDispatcher(clock, 3)
	sweep := d.Submit(testCells(t, 1), "", "")
	drainSweep(sweep)
	grant := d.Lease("w1", 1)
	if grant.TraceParent == "" {
		t.Fatal("lease grant carries no traceparent")
	}
	tc, ok := obs.ParseTraceParent(grant.TraceParent)
	if !ok {
		t.Fatalf("grant traceparent %q unparseable", grant.TraceParent)
	}

	// Simulate the worker's per-cell recorder export.
	rec := obs.NewSpanRecorder(8)
	cell := rec.Start("cell")
	cell.SetAttr("index", grant.Cells[0].Index)
	exec := cell.StartChild("execute_spec")
	exec.End()
	cell.End()

	d.PostResults(ResultsRequest{
		WorkerID: "w1", LeaseID: grant.ID,
		Records: []hotpotato.SweepResultRecord{okRecord(grant.Cells[0].Index)},
		Spans:   []CellSpans{{Index: grant.Cells[0].Index, Worker: "w1", Spans: rec.Records(), Dropped: 1}},
	})

	spans, ok := d.SweepSpans(sweep.ID)
	if !ok {
		t.Fatal("sweep spans unavailable")
	}
	if spans.TraceID != tc.TraceID {
		t.Errorf("spans trace ID %s, want the lease's %s", spans.TraceID, tc.TraceID)
	}
	if spans.Dropped != 1 {
		t.Errorf("dropped %d, want the worker-export 1", spans.Dropped)
	}
	if len(spans.Spans) != 1 || spans.Spans[0].Name != "sweep" {
		t.Fatalf("want one sweep root, got %+v", spans.Spans)
	}
	// sweep → lease → cell → execute_spec, all on one tree.
	var names []string
	var walk func(nodes []*obs.SpanNode)
	walk = func(nodes []*obs.SpanNode) {
		for _, n := range nodes {
			names = append(names, n.Name)
			walk(n.Children)
		}
	}
	walk(spans.Spans)
	want := []string{"sweep", "lease", "cell", "execute_spec"}
	if len(names) != len(want) {
		t.Fatalf("merged span names %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("merged span names %v, want %v", names, want)
		}
	}
	// The dispatcher stamps authoritative worker attribution on the batch root.
	cellNode := spans.Spans[0].Children[0].Children[0]
	if cellNode.Attrs["worker"] != "w1" {
		t.Errorf("cell worker attr %v", cellNode.Attrs["worker"])
	}
}

func TestSweepSpansDisabled(t *testing.T) {
	clock := &fakeClock{now: time.Unix(1000, 0)}
	d := NewDispatcher(Config{LeaseTTL: 10 * time.Second, Clock: clock, SweepSpanDepth: -1})
	sweep := d.Submit(testCells(t, 1), "", "")
	drainSweep(sweep)
	if g := d.Lease("w", 1); g.TraceParent != "" {
		t.Errorf("span-disabled dispatcher leaked traceparent %q", g.TraceParent)
	}
	if _, ok := d.SweepSpans(sweep.ID); ok {
		t.Error("span-disabled dispatcher served sweep spans")
	}
	if st, ok := d.SweepStatus(sweep.ID); !ok || st.TraceID != "" {
		t.Errorf("span-disabled status ok=%v trace=%q", ok, st.TraceID)
	}
}

func TestWorkerStatusesHealth(t *testing.T) {
	clock := &fakeClock{now: time.Unix(1000, 0)}
	d := newTestDispatcher(clock, 3) // TTL 10s
	d.Register(RegisterRequest{ID: "fresh", Capacity: 2})
	d.Register(RegisterRequest{ID: "lagging"})
	d.Register(RegisterRequest{ID: "gone"})

	// Age the workers differentially by touching them at different times.
	clock.Advance(31 * time.Second) // > 3×TTL for "gone" and "lagging"
	d.Lease("fresh", 1)             // refreshes lastSeen even with no work

	list := d.WorkerStatuses()
	if len(list.Workers) != 3 {
		t.Fatalf("%d workers, want 3", len(list.Workers))
	}
	byID := map[string]WorkerStatus{}
	for _, w := range list.Workers {
		byID[w.ID] = w
	}
	if byID["fresh"].Health != WorkerHealthOK {
		t.Errorf("fresh health %s", byID["fresh"].Health)
	}
	if byID["gone"].Health != WorkerHealthLost {
		t.Errorf("gone health %s", byID["gone"].Health)
	}
	if byID["fresh"].Capacity != 2 {
		t.Errorf("fresh capacity %d", byID["fresh"].Capacity)
	}
	// Sorted by ID for stable output.
	if list.Workers[0].ID != "fresh" || list.Workers[2].ID != "lagging" {
		t.Errorf("order %v", []string{list.Workers[0].ID, list.Workers[1].ID, list.Workers[2].ID})
	}

	// The late band: between one and three TTLs.
	clock2 := &fakeClock{now: time.Unix(2000, 0)}
	d2 := newTestDispatcher(clock2, 3)
	d2.Register(RegisterRequest{ID: "w"})
	clock2.Advance(15 * time.Second)
	if got := d2.WorkerStatuses().Workers[0].Health; got != WorkerHealthLate {
		t.Errorf("health %s, want late at 1.5×TTL", got)
	}
}

func TestFoldTelemetry(t *testing.T) {
	clock := &fakeClock{now: time.Unix(1000, 0)}
	d := newTestDispatcher(clock, 3)

	base := FleetCounters()["status_test_cells_done_total"]
	d.FoldTelemetry("w1", map[string]int64{"status_test_cells_done_total": 5}, nil)
	d.FoldTelemetry("w2", map[string]int64{"status_test_cells_done_total": 7}, nil)
	// Negative and zero deltas are dropped, never subtracted.
	d.FoldTelemetry("w1", map[string]int64{"status_test_cells_done_total": -3}, nil)
	if got := FleetCounters()["status_test_cells_done_total"] - base; got != 12 {
		t.Errorf("federated counter delta %d, want 12", got)
	}

	// Gauges: sum of each worker's latest value.
	d.FoldTelemetry("w1", nil, map[string]float64{"status_test_queue_depth": 3})
	d.FoldTelemetry("w2", nil, map[string]float64{"status_test_queue_depth": 4})
	d.FoldTelemetry("w1", nil, map[string]float64{"status_test_queue_depth": 1}) // replaces w1's 3
	fleetMu.Lock()
	g := fleetGauges["status_test_queue_depth"]
	fleetMu.Unlock()
	if g == nil {
		t.Fatal("fleet gauge never created")
	}
	if got := g.Value(); got != 5 {
		t.Errorf("federated gauge %g, want 5 (1+4)", got)
	}

	// Hostile names never reach the registry.
	dropped := metricFleetSeriesDropped.Value()
	d.FoldTelemetry("w1", map[string]int64{"bad name\nwith newline": 1, "": 2}, nil)
	if got := metricFleetSeriesDropped.Value() - dropped; got != 2 {
		t.Errorf("invalid names dropped %d, want 2", got)
	}
	for _, name := range fleetCounterNames() {
		if !validMetricName(name) {
			t.Errorf("registry holds invalid federated name %q", name)
		}
	}
}

func TestValidMetricName(t *testing.T) {
	for name, want := range map[string]bool{
		"sim_runs_total": true,
		"a:b_c9":         true,
		"9starts_digit":  false,
		"":               false,
		"has space":      false,
		"has\nnewline":   false,
		"uni_cöde":       false,
	} {
		if got := validMetricName(name); got != want {
			t.Errorf("validMetricName(%q) = %v, want %v", name, got, want)
		}
	}
	if validMetricName(string(make([]byte, 200))) {
		t.Error("over-long name accepted")
	}
}

func TestRecentManifestsNewestFirst(t *testing.T) {
	dir := t.TempDir()
	clock := &fakeClock{now: time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC)}
	archive, err := NewArchive(dir, clock)
	if err != nil {
		t.Fatal(err)
	}
	if err := archive.WriteManifest("sweep-000001", Manifest{SweepID: "sweep-000001", Total: 1}); err != nil {
		t.Fatal(err)
	}
	clock.Advance(24 * time.Hour)
	if err := archive.WriteManifest("sweep-000002", Manifest{SweepID: "sweep-000002", Total: 2}); err != nil {
		t.Fatal(err)
	}
	if err := archive.WriteManifest("sweep-000003", Manifest{SweepID: "sweep-000003", Total: 3}); err != nil {
		t.Fatal(err)
	}

	got := archive.RecentManifests(10)
	if len(got) != 3 {
		t.Fatalf("%d manifests, want 3", len(got))
	}
	wantOrder := []string{"sweep-000003", "sweep-000002", "sweep-000001"}
	for i, w := range wantOrder {
		if got[i].SweepID != w {
			t.Fatalf("order %v, want %v", got, wantOrder)
		}
	}
	if got[0].Date != "2026-08-02" || got[2].Date != "2026-08-01" {
		t.Errorf("dates %s / %s", got[0].Date, got[2].Date)
	}
	if limited := archive.RecentManifests(1); len(limited) != 1 || limited[0].SweepID != "sweep-000003" {
		t.Errorf("limit=1 returned %+v", limited)
	}

	// Unreadable entries are skipped, not fatal.
	if err := writeAtomic(filepath.Join(dir, "sweeps", "2026-08-02", "junk.json"), []byte("{")); err != nil {
		t.Fatal(err)
	}
	if got := archive.RecentManifests(10); len(got) != 3 {
		t.Errorf("corrupt manifest changed the listing: %d rows", len(got))
	}
	var nilArchive *Archive
	if got := nilArchive.RecentManifests(5); got != nil {
		t.Errorf("nil archive returned %v", got)
	}
}
