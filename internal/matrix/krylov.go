package matrix

import (
	"fmt"
	"math"
)

// krylov.go: Lanczos (symmetric Arnoldi) approximation of the matrix
// exponential acting on a vector, w ≈ e^{t·A}·v, without ever materializing
// e^{t·A}. This is the transient kernel of the sparse thermal path: the
// whitened thermal system Â = −A^{-1/2}·B·A^{-1/2} is symmetric negative
// semidefinite, so the Lanczos process applies, the Ritz approximation
//
//	w_m = β · V_m · e^{t·T_m} · e₁ ,   β = ‖v‖₂ ,
//
// is a projection onto the Krylov subspace K_m(A, v), and convergence is
// superlinear once m exceeds √(t·ρ(A)) (Hochbruck & Lubich 1997; restated
// with constants in docs/THEORY.md). The subspace dimension m is chosen
// adaptively per call from the a-posteriori bound derived from Saad's exact
// error representation (Saad 1992, Thm. 5.1):
//
//	‖e^{t·A}v − w_m‖ ≤ β · h_{m+1,m} · ∫₀ᵗ |e_mᵀ e^{s·T_m} e₁| ds ,
//
// valid whenever λ_max(A) ≤ 0 (then ‖e^{s·A}‖₂ ≤ 1), which the whitened
// thermal operator satisfies by construction. The integral is evaluated in
// the eigenbasis of T_m via φ₁(s) = (e^s − 1)/s with the mode sum taken
// signed: the integrand e_mᵀe^{s·T_m}e₁ ≈ s^{m−1}·∏β_i/(m−1)! is
// single-signed to leading order in the t·ρ(A) = O(1) regime the kernel is
// built for, so the signed sum equals ∫|·| up to roundoff while preserving
// the superlinear decay in m. (Summing per-mode absolute values instead
// would be a hard bound but stalls around h·t — it never reaches tight
// tolerances and silently pins every call at the subspace cap.) For
// strongly oscillatory regimes the quantity is an estimate, not a bound.
// The differential test suite pins the kernel against the dense
// eigendecomposition path on ≥100 random systems.

// SymOp is a symmetric linear operator given implicitly by its
// matrix–vector product — the interface the matrix-free Krylov kernels
// consume. MulVecTo must compute dst = A·x without allocating; dst and x
// have length Dim() and never alias each other when called by this package.
type SymOp interface {
	Dim() int
	MulVecTo(dst, x []float64)
}

// KrylovExpm computes e^{t·A}·v products for a fixed symmetric operator A
// with per-instance scratch, so that every call after construction is
// allocation-free. Like thermal.Stepper, a KrylovExpm is confined to one
// goroutine at a time; build one per worker (construction costs O(maxDim·n)
// memory and nothing else). The operator itself is only read.
type KrylovExpm struct {
	op     SymOp
	n      int
	maxDim int
	tol    float64

	basis []float64 // (maxDim+1)×n Lanczos vectors, row-major
	w     []float64 // matvec scratch, length n
	alpha []float64 // tridiagonal diagonal, length maxDim
	beta  []float64 // tridiagonal subdiagonal, length maxDim (beta[j] couples j, j+1)
	d, e  []float64 // destroyed copies for the QL sweep, length maxDim
	z     []float64 // maxDim×maxDim eigenvector workspace for the QL sweep
	y     []float64 // e^{tT}e₁ coefficients, length maxDim
}

// DefaultKrylovDim is the default subspace cap. The thermal stepper's
// spectra satisfy t·ρ(Â) = O(1) per step, where Lanczos reaches 1e-12
// in well under 30 dimensions; 64 leaves generous slack for long steps
// (τ-adaptation rebuilds) without noticeable memory cost.
const DefaultKrylovDim = 64

// DefaultKrylovTol is the default relative error target of ExpmVTo,
// comfortably below the 1e-9 K dense-vs-sparse equivalence bound the
// thermal golden tests enforce.
const DefaultKrylovTol = 1e-12

// NewKrylovExpm builds a Krylov exponential kernel over op with the given
// subspace cap and relative error target; maxDim ≤ 0 and tol ≤ 0 select
// DefaultKrylovDim and DefaultKrylovTol.
func NewKrylovExpm(op SymOp, maxDim int, tol float64) *KrylovExpm {
	if maxDim <= 0 {
		maxDim = DefaultKrylovDim
	}
	if tol <= 0 {
		tol = DefaultKrylovTol
	}
	n := op.Dim()
	if maxDim > n {
		maxDim = n
	}
	return &KrylovExpm{
		op: op, n: n, maxDim: maxDim, tol: tol,
		basis: make([]float64, (maxDim+1)*n),
		w:     make([]float64, n),
		alpha: make([]float64, maxDim),
		beta:  make([]float64, maxDim),
		d:     make([]float64, maxDim),
		e:     make([]float64, maxDim),
		z:     make([]float64, maxDim*maxDim),
		y:     make([]float64, maxDim),
	}
}

// Dim returns the operator dimension.
func (k *KrylovExpm) Dim() int { return k.n }

// MaxDim returns the subspace cap.
func (k *KrylovExpm) MaxDim() int { return k.maxDim }

// ExpmVTo computes dst ≈ e^{t·A}·v into dst (length Dim()) and reports the
// subspace dimension used and the a-posteriori error estimate relative to
// ‖v‖₂. It allocates nothing; dst may alias v (v is consumed into the
// Krylov basis before dst is written). The Lanczos vectors are kept fully
// reorthogonalized, so the result is deterministic and orthogonality loss
// cannot inflate the subspace. An error is returned only if the inner
// tridiagonal eigensolve fails or a non-finite value appears — neither
// occurs for the negative-semidefinite whitened thermal operator with
// finite inputs.
//
// If the estimate has not reached tol·‖v‖ at the subspace cap, the best
// available approximation is still written to dst and the (larger) estimate
// returned — callers that need a hard guarantee must check est themselves.
func (k *KrylovExpm) ExpmVTo(dst []float64, t float64, v []float64) (dim int, est float64, err error) {
	n := k.n
	if len(v) != n || len(dst) != n {
		panic(fmt.Sprintf("matrix: ExpmVTo got dst %d, v %d, want %d", len(dst), len(v), n))
	}

	beta0 := VecNorm2(v)
	if beta0 == 0 || t == 0 {
		// e^{0}·v = v; e^{tA}·0 = 0.
		copy(dst, v)
		return 0, 0, nil
	}

	v0 := k.basis[:n]
	inv := 1 / beta0
	for i, x := range v {
		v0[i] = x * inv
	}

	m := 0
	happy := false
	for m < k.maxDim {
		vj := k.basis[m*n : (m+1)*n]
		k.op.MulVecTo(k.w, vj)
		a := Dot(vj, k.w)
		k.alpha[m] = a
		// Three-term recurrence ...
		axpy(k.w, -a, vj)
		if m > 0 {
			axpy(k.w, -k.beta[m-1], k.basis[(m-1)*n:m*n])
		}
		// ... plus full reorthogonalization (one classical Gram–Schmidt
		// pass) to keep the basis orthonormal to working precision.
		for p := 0; p <= m; p++ {
			vp := k.basis[p*n : (p+1)*n]
			axpy(k.w, -Dot(vp, k.w), vp)
		}
		b := VecNorm2(k.w)
		m++
		if b <= 1e-14*beta0 || m == k.maxDim {
			// Happy breakdown: K_m is invariant and the projection exact
			// (up to roundoff) — or the cap is reached; either way stop
			// expanding and take the current subspace.
			happy = b <= 1e-14*beta0
			k.beta[m-1] = b
			break
		}
		k.beta[m-1] = b
		vnext := k.basis[m*n : (m+1)*n]
		invb := 1 / b
		for i, x := range k.w {
			vnext[i] = x * invb
		}
		// Convergence check. The small eigensolve is O(m³) with m ≤
		// maxDim; checking every iteration keeps m minimal, which the
		// matvec savings repay many times over on large operators.
		if est, err = k.smallExp(t, m); err != nil {
			return m, est, err
		}
		if est <= k.tol {
			k.assemble(dst, beta0, m)
			return m, est, nil
		}
	}

	if est, err = k.smallExp(t, m); err != nil {
		return m, est, err
	}
	if happy {
		est = 0
	}
	k.assemble(dst, beta0, m)
	if math.IsNaN(dst[0]) {
		return m, est, fmt.Errorf("matrix: ExpmVTo produced NaN (t=%g, beta0=%g)", t, beta0)
	}
	return m, est, nil
}

// smallExp diagonalizes the current m×m Lanczos tridiagonal, forms
// y = e^{t·T_m}·e₁ in k.y, and returns the a-posteriori error estimate
// β_{m} · |∫₀ᵗ e_mᵀ e^{s·T_m} e₁ ds| relative to ‖v‖₂, with the integral
// evaluated mode-wise in the eigenbasis: Σ_q z_{m,q}·z_{1,q} · t·φ₁(t·θ_q).
// The sum is signed — see the package comment for why that cancellation is
// essential and when it matches the true ∫|·| bound.
func (k *KrylovExpm) smallExp(t float64, m int) (float64, error) {
	copy(k.d[:m], k.alpha[:m])
	copy(k.e[:m], k.beta[:m])
	// Reset the used m×m block to the identity, honouring the row stride
	// maxDim — the workspace carries rotations from previous (larger) calls.
	for i := 0; i < m; i++ {
		row := k.z[i*k.maxDim : i*k.maxDim+m]
		for j := range row {
			row[j] = 0
		}
		row[i] = 1
	}
	if err := symTridEigen(k.d[:m], k.e[:m], m, k.z, k.maxDim); err != nil {
		return math.Inf(1), err
	}
	// y = Z·diag(e^{tθ})·Zᵀ·e₁ — columns of z are eigenvectors, row 0 their
	// first components — and the residual integral accumulated per mode.
	for i := 0; i < m; i++ {
		k.y[i] = 0
	}
	var residual float64
	for q := 0; q < m; q++ {
		theta := k.d[q]
		first := k.z[0*k.maxDim+q]
		w := math.Exp(t*theta) * first
		for i := 0; i < m; i++ {
			k.y[i] += w * k.z[i*k.maxDim+q]
		}
		residual += k.z[(m-1)*k.maxDim+q] * first * t * phi1(t*theta)
	}
	return k.beta[m-1] * math.Abs(residual), nil
}

// phi1 evaluates φ₁(x) = (e^x − 1)/x stably near zero.
func phi1(x float64) float64 {
	if math.Abs(x) < 1e-8 {
		return 1 + x/2
	}
	return (math.Exp(x) - 1) / x
}

// assemble writes dst = β₀ · V_m · y.
func (k *KrylovExpm) assemble(dst []float64, beta0 float64, m int) {
	n := k.n
	for i := range dst {
		dst[i] = 0
	}
	for j := 0; j < m; j++ {
		axpy(dst, beta0*k.y[j], k.basis[j*n:(j+1)*n])
	}
}

// axpy computes dst += s·x in place.
func axpy(dst []float64, s float64, x []float64) {
	if s == 0 {
		return
	}
	for i, v := range x {
		dst[i] += s * v
	}
}
