package matrix

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSolveKnownSystem(t *testing.T) {
	a := NewFromRows([][]float64{
		{2, 1, -1},
		{-3, -1, 2},
		{-2, 1, 2},
	})
	b := []float64{8, -11, -3}
	x, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, -1}
	if !VecApproxEqual(x, want, 1e-10) {
		t.Fatalf("x = %v, want %v", x, want)
	}
}

func TestSolveSingular(t *testing.T) {
	a := NewFromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := Solve(a, []float64{1, 2}); err == nil {
		t.Fatal("expected error for singular matrix")
	}
}

func TestLUNonSquare(t *testing.T) {
	if _, err := FactorLU(New(2, 3)); err == nil {
		t.Fatal("expected error for non-square LU")
	}
}

func TestInverseIdentity(t *testing.T) {
	inv, err := Inverse(Identity(4))
	if err != nil {
		t.Fatal(err)
	}
	if !inv.ApproxEqual(Identity(4), 1e-12) {
		t.Fatalf("Identity⁻¹ != Identity:\n%v", inv)
	}
}

func TestInverseKnown(t *testing.T) {
	a := NewFromRows([][]float64{{4, 7}, {2, 6}})
	inv, err := Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	want := NewFromRows([][]float64{{0.6, -0.7}, {-0.2, 0.4}})
	if !inv.ApproxEqual(want, 1e-12) {
		t.Fatalf("inverse =\n%vwant\n%v", inv, want)
	}
}

func TestDeterminant(t *testing.T) {
	cases := []struct {
		m    *Dense
		want float64
	}{
		{Identity(3), 1},
		{NewFromRows([][]float64{{2, 0}, {0, 3}}), 6},
		{NewFromRows([][]float64{{0, 1}, {1, 0}}), -1}, // forces a pivot swap
		{NewFromRows([][]float64{{1, 2}, {3, 4}}), -2},
	}
	for i, c := range cases {
		f, err := FactorLU(c.m)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got := f.Determinant(); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("case %d: det = %v, want %v", i, got, c.want)
		}
	}
}

func TestSolveVecWrongLength(t *testing.T) {
	f, err := FactorLU(Identity(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.SolveVec([]float64{1, 2}); err == nil {
		t.Fatal("expected length-mismatch error")
	}
}

func TestSolveMatrixWrongRows(t *testing.T) {
	f, err := FactorLU(Identity(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Solve(New(2, 2)); err == nil {
		t.Fatal("expected shape-mismatch error")
	}
}

// Property: A * A⁻¹ = I for random well-conditioned matrices.
func TestPropInverseRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(8)
		a := randomDense(r, n, n)
		// Make diagonally dominant so the matrix is well conditioned.
		for i := 0; i < n; i++ {
			a.Add(i, i, float64(n)+2)
		}
		inv, err := Inverse(a)
		if err != nil {
			return false
		}
		return a.Mul(inv).ApproxEqual(Identity(n), 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: Solve(a, a*x) recovers x.
func TestPropSolveRecoversX(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(10)
		a := randomDense(r, n, n)
		for i := 0; i < n; i++ {
			a.Add(i, i, float64(n)+2)
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		b := a.MulVec(x)
		got, err := Solve(a, b)
		if err != nil {
			return false
		}
		return VecApproxEqual(got, x, 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: det(A·B) = det(A)·det(B).
func TestPropDeterminantMultiplicative(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(5)
		a := randomDense(r, n, n)
		b := randomDense(r, n, n)
		fa, errA := FactorLU(a)
		fb, errB := FactorLU(b)
		fab, errAB := FactorLU(a.Mul(b))
		if errA != nil || errB != nil || errAB != nil {
			return true // singular draw; property vacuous
		}
		lhs := fab.Determinant()
		rhs := fa.Determinant() * fb.Determinant()
		scale := math.Max(1, math.Abs(lhs))
		return math.Abs(lhs-rhs) < 1e-8*scale
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func BenchmarkInverse129(b *testing.B) {
	// 129 nodes = 64 cores × 2 layers + 1 sink: the size used by the
	// 64-core thermal model.
	r := rand.New(rand.NewSource(7))
	n := 129
	a := randomDense(r, n, n)
	for i := 0; i < n; i++ {
		a.Add(i, i, float64(n))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Inverse(a); err != nil {
			b.Fatal(err)
		}
	}
}
