package sched

import (
	"math"
	"sort"

	"repro/internal/floorplan"
	"repro/internal/rotation"
	"repro/internal/sim"
)

// HotPotato is the paper's scheduler (Algorithm 2): threads are assigned to
// concentric AMD rings and rotate synchronously within their ring every τ
// seconds at peak frequency — no DVFS. Thermal safety of every decision is
// checked with the analytical peak-temperature method of Algorithm 1
// (internal/rotation), fed by each thread's 10 ms power history.
//
// Decisions:
//   - new thread: try rings inside-out (best performance first); accept the
//     first ring whose rotation keeps T_peak + Δ < T_DTM. If even the
//     outermost ring is unsafe, existing low-CPI threads are pushed outward
//     and, failing that, τ shrinks until the headroom appears (lines 1–14).
//   - thread exit / headroom growth: the highest-CPI (most memory-bound)
//     threads migrate inward while safe, then τ relaxes — growing up to
//     τ_max and finally stopping rotation entirely when the workload is
//     thermally sustainable without it (lines 15–27).
//
// One deliberate approximation, documented in DESIGN.md: when Algorithm 1
// evaluates a configuration, the ring under consideration rotates explicitly
// (δ = ring size) while every other occupied ring contributes its
// time-averaged, spatially uniform power — which is exactly what rotation
// achieves on average. This keeps the rotation period δ small instead of the
// lcm of all ring sizes, and makes slot choice within a ring a spacing
// heuristic rather than an exhaustive scan.
type HotPotato struct {
	calc     *rotation.Calculator
	ringEval *rotation.RingEvaluator
	rings    []floorplan.Ring

	tdtm    float64
	delta   float64 // headroom Δ (paper §VI: 1 °C)
	tauInit float64
	tauMin  float64
	tauMax  float64

	tau    float64
	rotate bool

	// slots[r][i] holds the thread occupying slot i of ring r (or empty).
	slots [][]slotEntry
	place map[sim.ThreadID]slotRef

	rotSteps    int
	lastRotTime float64

	rebalanceEvery float64
	lastRebalance  float64
	lastSafety     float64

	// powerScale rescales the above-idle part of every thread's power in
	// Algorithm 1 evaluations. It is 1 for pure HotPotato; the DVFS-unified
	// extension (HotPotatoDVFS) sets it to project measured powers onto a
	// candidate frequency.
	powerScale float64
	idleWatts  float64

	// estimator, when non-nil, pre-filters the per-ring Algorithm 1
	// evaluations (see RingPeakEstimator). estimatorHits/Fallbacks count the
	// outcomes for instrumentation.
	estimator          RingPeakEstimator
	estimatorHits      int
	estimatorFallbacks int
}

type slotEntry struct {
	id   sim.ThreadID
	used bool
}

type slotRef struct{ ring, slot int }

// RingPeakEstimator is an optional surrogate for Algorithm 1's ring
// evaluation (the analytical-twin pre-filter): given the same inputs as
// rotation.RingEvaluator.PeakRingRotation, it returns a peak estimate, a
// conservative error bound, and whether the bound is backed by calibration
// evidence. HotPotato consults it per ring and only trusts an answer that is
// conclusive AND places the ring strictly on one side of the decision
// threshold T_DTM − Δ; everything else falls back to the exact evaluation,
// which keeps scheduling decisions bit-identical to stock HotPotato.
// Implementations must be safe for the scheduler's goroutine and must not
// allocate (the Decide path is allocation-audited).
type RingPeakEstimator interface {
	EstimateRingPeak(tau float64, base []float64, ringCores []int, slotWatts []float64) (peakC, boundC float64, conclusive bool)
}

// WithRingEstimator installs a twin-backed pre-filter for the Algorithm 1
// ring evaluations. A nil estimator (the default) is stock HotPotato.
func WithRingEstimator(e RingPeakEstimator) HotPotatoOption {
	return func(h *HotPotato) { h.estimator = e }
}

// HotPotatoOption customises the scheduler.
type HotPotatoOption func(*HotPotato)

// WithHeadroom sets Δ (default 1 °C, paper §VI).
func WithHeadroom(delta float64) HotPotatoOption {
	return func(h *HotPotato) { h.delta = delta }
}

// WithRotationInterval sets the initial τ (default 0.5 ms, paper §VI).
func WithRotationInterval(tau float64) HotPotatoOption {
	return func(h *HotPotato) { h.tauInit = tau; h.tau = tau }
}

// WithRotationBounds sets the τ adaptation range (defaults 0.125–4 ms).
func WithRotationBounds(min, max float64) HotPotatoOption {
	return func(h *HotPotato) { h.tauMin = min; h.tauMax = max }
}

// WithRebalanceEvery sets how often the headroom re-evaluation of Algorithm 2
// lines 15–27 runs even without arrivals/departures (default 5 ms).
func WithRebalanceEvery(interval float64) HotPotatoOption {
	return func(h *HotPotato) { h.rebalanceEvery = interval }
}

// NewHotPotato builds the scheduler for a platform (the design-time phase of
// Algorithm 1 runs here).
func NewHotPotato(plat *sim.Platform, tdtm float64, opts ...HotPotatoOption) *HotPotato {
	rings := plat.FP.Rings()
	calc := rotation.NewCalculator(plat.Thermal)
	h := &HotPotato{
		calc:           calc,
		ringEval:       calc.NewRingEvaluator(),
		rings:          rings,
		tdtm:           tdtm,
		delta:          1,
		tauInit:        0.5e-3,
		tauMin:         0.125e-3,
		tauMax:         4e-3,
		tau:            0.5e-3,
		rotate:         true,
		place:          map[sim.ThreadID]slotRef{},
		rebalanceEvery: 5e-3,
		powerScale:     1,
		idleWatts:      plat.Power.IdleWatts,
	}
	h.slots = make([][]slotEntry, len(rings))
	for r, ring := range rings {
		h.slots[r] = make([]slotEntry, len(ring.Cores))
	}
	for _, o := range opts {
		o(h)
	}
	return h
}

// Name implements sim.Scheduler.
func (h *HotPotato) Name() string { return "hotpotato" }

// Tau returns the current rotation interval (for instrumentation).
func (h *HotPotato) Tau() float64 { return h.tau }

// Rotating reports whether rotation is currently enabled.
func (h *HotPotato) Rotating() bool { return h.rotate }

// Decide implements sim.Scheduler.
func (h *HotPotato) Decide(st *sim.State) sim.Decision {
	h.advanceRotation(st.Time)
	live := liveSet(st)

	// Departures free slots and create headroom (Algorithm 2 line 15).
	departed := false
	for id, ref := range h.place {
		if _, ok := live[id]; !ok {
			h.slots[ref.ring][ref.slot] = slotEntry{}
			delete(h.place, id)
			departed = true
		}
	}

	// Admissions (Algorithm 2 lines 1–14), gang FIFO per task.
	arrived := false
	for _, group := range queuedTasks(st) {
		if h.freeSlotCount() < len(group.threads) {
			break
		}
		for _, th := range group.threads {
			h.placeThread(st, live, th)
			arrived = true
		}
	}

	// Reactive safety: measured temperature near the threshold tightens τ
	// (the "sudden increase in thermal headroom demand" case). Rate-limited
	// so the evaluation cost stays off the per-epoch fast path.
	maxTemp := maxOf(st.CoreTemps)
	if maxTemp > h.tdtm-h.delta && st.Time-h.lastSafety >= 1e-3 {
		h.tighten(st, live)
		h.lastSafety = st.Time
	}

	if departed || st.Time-h.lastRebalance >= h.rebalanceEvery {
		h.rebalance(st, live)
		h.lastRebalance = st.Time
	}
	_ = arrived

	// Materialise the assignment with the current rotation offset.
	assignment := make(map[sim.ThreadID]int, len(h.place))
	for id, ref := range h.place {
		cores := h.rings[ref.ring].Cores
		idx := ref.slot
		if h.rotate {
			idx = (ref.slot + h.rotSteps) % len(cores)
		}
		assignment[id] = cores[idx]
	}

	if h.rotate {
		metricTau.Set(h.tau)
	} else {
		metricTau.Set(0)
	}
	next := h.tau
	if !h.rotate {
		next = 2e-3
	}
	return sim.Decision{Assignment: assignment, NextInvoke: next}
}

// advanceRotation moves the synchronous rotation forward with wall time.
func (h *HotPotato) advanceRotation(now float64) {
	if !h.rotate {
		h.lastRotTime = now
		return
	}
	for now-h.lastRotTime >= h.tau-1e-12 {
		h.rotSteps++
		h.lastRotTime += h.tau
	}
}

func (h *HotPotato) freeSlotCount() int {
	total := 0
	for r := range h.slots {
		for i := range h.slots[r] {
			if !h.slots[r][i].used {
				total++
			}
		}
	}
	return total
}

// bestFreeSlot picks the free slot of ring r that maximises the minimum
// circular distance to the ring's occupied slots (spreads heat sources).
func (h *HotPotato) bestFreeSlot(r int) int {
	size := len(h.slots[r])
	best, bestScore := -1, -1
	for i := 0; i < size; i++ {
		if h.slots[r][i].used {
			continue
		}
		score := size // min distance to an occupied slot
		for j := 0; j < size; j++ {
			if !h.slots[r][j].used {
				continue
			}
			d := abs(i - j)
			if size-d < d {
				d = size - d
			}
			if d < score {
				score = d
			}
		}
		if score > bestScore {
			best, bestScore = i, score
		}
	}
	return best
}

// placeThread implements Algorithm 2 lines 1–14 for one new thread.
func (h *HotPotato) placeThread(st *sim.State, live map[sim.ThreadID]sim.ThreadInfo, th sim.ThreadInfo) {
	// Lines 2–6: inside-out ring scan; accept the first thermally safe ring.
	for r := range h.rings {
		slot := h.bestFreeSlot(r)
		if slot < 0 {
			continue
		}
		h.slots[r][slot] = slotEntry{id: th.ID, used: true}
		h.place[th.ID] = slotRef{r, slot}
		if h.evalPeak(st, live)+0 < h.tdtm-h.delta {
			return
		}
		h.slots[r][slot] = slotEntry{}
		delete(h.place, th.ID)
	}

	// No ring is safe. Park the thread in the outermost ring with space,
	// then create headroom: push low-CPI threads outward (lines 8–11) and
	// shrink τ (lines 12–14).
	for r := len(h.rings) - 1; r >= 0; r-- {
		slot := h.bestFreeSlot(r)
		if slot < 0 {
			continue
		}
		h.slots[r][slot] = slotEntry{id: th.ID, used: true}
		h.place[th.ID] = slotRef{r, slot}
		break
	}
	if !h.rotate {
		h.rotate = true
		h.tau = h.tauInit
	}
	h.pushOutward(st, live)
	h.tighten(st, live)
}

// pushOutward migrates the lowest-CPI (most compute-bound, least
// placement-sensitive) threads to higher-AMD rings until the configuration
// is safe or no move helps (Algorithm 2 lines 8–11).
func (h *HotPotato) pushOutward(st *sim.State, live map[sim.ThreadID]sim.ThreadInfo) {
	for guard := 0; guard < 16; guard++ {
		if h.evalPeak(st, live) < h.tdtm-h.delta {
			return
		}
		type cand struct {
			id  sim.ThreadID
			cpi float64
		}
		var cands []cand
		for id, ref := range h.place {
			if ref.ring < len(h.rings)-1 {
				cands = append(cands, cand{id, live[id].CPI})
			}
		}
		if len(cands) == 0 {
			return
		}
		sort.Slice(cands, func(a, b int) bool {
			if cands[a].cpi != cands[b].cpi {
				return cands[a].cpi < cands[b].cpi // lowest CPI first
			}
			return less(cands[a].id, cands[b].id)
		})
		moved := false
		for _, c := range cands {
			ref := h.place[c.id]
			for r := ref.ring + 1; r < len(h.rings); r++ {
				slot := h.bestFreeSlot(r)
				if slot < 0 {
					continue
				}
				h.slots[ref.ring][ref.slot] = slotEntry{}
				h.slots[r][slot] = slotEntry{id: c.id, used: true}
				h.place[c.id] = slotRef{r, slot}
				moved = true
				break
			}
			if moved {
				break
			}
		}
		if !moved {
			return
		}
	}
}

// tighten shrinks τ toward τ_min until the configuration is safe
// (Algorithm 2 lines 12–14).
func (h *HotPotato) tighten(st *sim.State, live map[sim.ThreadID]sim.ThreadInfo) {
	if !h.rotate {
		h.rotate = true
		h.tau = h.tauInit
	}
	for h.tau > h.tauMin && h.evalPeak(st, live) >= h.tdtm-h.delta {
		h.tau /= 2
		if h.tau < h.tauMin {
			h.tau = h.tauMin
		}
	}
}

// rebalance implements Algorithm 2 lines 15–27: promote memory-bound threads
// inward while headroom allows, then relax τ — up to stopping rotation.
func (h *HotPotato) rebalance(st *sim.State, live map[sim.ThreadID]sim.ThreadInfo) {
	// Promotions: highest CPI first (most to gain from a low-AMD ring).
	for guard := 0; guard < 16; guard++ {
		if h.evalPeak(st, live) >= h.tdtm-h.delta {
			break
		}
		type cand struct {
			id  sim.ThreadID
			cpi float64
		}
		var cands []cand
		for id, ref := range h.place {
			if ref.ring > 0 {
				cands = append(cands, cand{id, live[id].CPI})
			}
		}
		sort.Slice(cands, func(a, b int) bool {
			if cands[a].cpi != cands[b].cpi {
				return cands[a].cpi > cands[b].cpi // highest CPI first
			}
			return less(cands[a].id, cands[b].id)
		})
		promoted := false
		for _, c := range cands {
			ref := h.place[c.id]
			for r := 0; r < ref.ring; r++ {
				slot := h.bestFreeSlot(r)
				if slot < 0 {
					continue
				}
				h.slots[ref.ring][ref.slot] = slotEntry{}
				h.slots[r][slot] = slotEntry{id: c.id, used: true}
				h.place[c.id] = slotRef{r, slot}
				if h.evalPeak(st, live) < h.tdtm-h.delta {
					promoted = true
					break
				}
				// Revert: promotion would burn the headroom.
				h.slots[r][slot] = slotEntry{}
				h.slots[ref.ring][ref.slot] = slotEntry{id: c.id, used: true}
				h.place[c.id] = ref
			}
			if promoted {
				break
			}
		}
		if !promoted {
			break
		}
	}

	// τ relaxation (lines 23–27): slower rotation means fewer migrations;
	// stop rotating entirely when static placement is safe.
	if h.evalPeak(st, live) >= h.tdtm-h.delta {
		h.tighten(st, live)
		return
	}
	for h.rotate {
		if h.evalStaticPeak(st, live) < h.tdtm-h.delta {
			h.rotate = false
			break
		}
		next := h.tau * 2
		if next > h.tauMax {
			break
		}
		old := h.tau
		h.tau = next
		if h.evalPeak(st, live) >= h.tdtm-h.delta {
			h.tau = old
			break
		}
	}
}

// evalPeak estimates the rotation's steady-periodic peak temperature with
// Algorithm 1: each occupied ring is evaluated rotating explicitly while the
// other rings contribute their time-averaged power; the worst ring wins.
func (h *HotPotato) evalPeak(st *sim.State, live map[sim.ThreadID]sim.ThreadInfo) float64 {
	if !h.rotate {
		return h.evalStaticPeak(st, live)
	}
	n := st.Platform.NumCores()
	idle := st.Platform.Power.IdleWatts

	// Ring means for the averaged background.
	ringMean := make([]float64, len(h.rings))
	ringOccupied := make([]bool, len(h.rings))
	for r, ring := range h.rings {
		total := 0.0
		for i := range h.slots[r] {
			if h.slots[r][i].used {
				total += h.threadPower(live, h.slots[r][i].id)
				ringOccupied[r] = true
			} else {
				total += idle
			}
		}
		ringMean[r] = total / float64(len(ring.Cores))
	}

	// Constant background: every ring contributes its time-averaged power.
	base := make([]float64, n)
	for i := range base {
		base[i] = idle
	}
	for r, ring := range h.rings {
		for _, c := range ring.Cores {
			base[c] = ringMean[r]
		}
	}

	peak := h.calc.Model().Ambient()
	slotWatts := make([]float64, 0, 32)
	for r, ring := range h.rings {
		if !ringOccupied[r] {
			continue
		}
		slotWatts = slotWatts[:0]
		for _, entry := range h.slots[r] {
			w := idle
			if entry.used {
				w = h.threadPower(live, entry.id)
			}
			slotWatts = append(slotWatts, w)
		}
		// Twin pre-filter: every caller of evalPeak compares the result only
		// against the decision threshold T_DTM − Δ, so a conclusive estimate
		// that bounds this ring strictly under (est+bound) or at/over
		// (est−bound) the threshold can stand in for the exact evaluation
		// without changing any decision. Inconclusive or straddling answers
		// fall back to Algorithm 1 — the default, and the bit-identical path.
		if h.estimator != nil {
			limit := h.tdtm - h.delta
			est, bound, ok := h.estimator.EstimateRingPeak(h.tau, base, ring.Cores, slotWatts)
			if ok && (est+bound < limit || est-bound >= limit) {
				h.estimatorHits++
				if est > peak {
					peak = est
				}
				continue
			}
			h.estimatorFallbacks++
		}
		t, err := h.ringEval.PeakRingRotation(h.tau, base, ring.Cores, slotWatts)
		if err != nil {
			// An invalid plan here is a programming error; fail safe by
			// reporting an unsafe temperature.
			return math.Inf(1)
		}
		if t > peak {
			peak = t
		}
	}
	return peak
}

// EstimatorStats reports how many per-ring evaluations the twin pre-filter
// answered conclusively and how many fell back to the exact Algorithm 1 path.
func (h *HotPotato) EstimatorStats() (hits, fallbacks int) {
	return h.estimatorHits, h.estimatorFallbacks
}

// evalStaticPeak is the non-rotating (τ stopped) safety check: the
// steady-state peak of the pinned assignment.
func (h *HotPotato) evalStaticPeak(st *sim.State, live map[sim.ThreadID]sim.ThreadInfo) float64 {
	n := st.Platform.NumCores()
	idle := st.Platform.Power.IdleWatts
	p := make([]float64, n)
	for i := range p {
		p[i] = idle
	}
	for id, ref := range h.place {
		cores := h.rings[ref.ring].Cores
		idx := ref.slot
		if h.rotate {
			idx = (ref.slot + h.rotSteps) % len(cores)
		}
		p[cores[idx]] = h.threadPower(live, id)
	}
	ss := h.calc.Model().SteadyState(p)
	return h.calc.Model().MaxCoreTemp(ss)
}

// threadPower is the Algorithm 1 power estimate for a thread: its 10 ms
// history average (the simulator substitutes the conservative nominal power
// until a history exists), with the above-idle component rescaled by
// powerScale for frequency projection.
func (h *HotPotato) threadPower(live map[sim.ThreadID]sim.ThreadInfo, id sim.ThreadID) float64 {
	th, ok := live[id]
	if !ok {
		return 0
	}
	if h.powerScale == 1 {
		return th.AvgPower
	}
	if th.AvgPower <= h.idleWatts {
		return th.AvgPower
	}
	return h.idleWatts + (th.AvgPower-h.idleWatts)*h.powerScale
}

func less(a, b sim.ThreadID) bool {
	if a.Task != b.Task {
		return a.Task < b.Task
	}
	return a.Thread < b.Thread
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func maxOf(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
