package hotpotato

// predict.go is the analytical-twin fast path over the RunSpec surface: it
// reduces an in-domain spec to the numeric case internal/twin predicts on,
// runs the simulator-as-oracle calibration that fits the twin, and exposes
// the glue the serving tier (POST /v1/predict), the sweep pruner, and the
// HotPotato pre-filter build on. The model is documented in
// docs/THEORY.md §"Surrogate model and error bounds"; docs/API.md
// documents the endpoint.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/matrix"
	"repro/internal/rotation"
	"repro/internal/sched"
	"repro/internal/twin"
	"repro/internal/workload"
)

// Twin model types, re-exported for callers of the prediction surface.
type (
	// TwinModel is the versioned, content-hashed calibration artifact
	// (TWIN_model.json; `hotpotato-sim -calibrate` regenerates it).
	TwinModel = twin.Model
	// TwinPrediction is the twin's answer for one run: three fields, each a
	// point estimate with a conservative confidence bound.
	TwinPrediction = twin.Prediction
	// TwinField is one prediction field (estimate, bound, conclusive).
	TwinField = twin.Field
)

// LoadTwinModel decodes and validates a calibration artifact; corrupt or
// truncated input is rejected with an error, never a panic.
func LoadTwinModel(data []byte) (*TwinModel, error) { return twin.Load(data) }

// LoadTwinModelFile is LoadTwinModel on a file path (the -twin-model flag).
func LoadTwinModelFile(path string) (*TwinModel, error) { return twin.LoadFile(path) }

// ErrTwinDomain reports that a spec lies outside the twin's calibrated
// domain: the surrogate only answers for specs it was fitted against
// (default-substrate platforms at a calibrated grid size, the static
// scheduler with an injective pinning, no NoC contention). Out-of-domain
// specs must run the full simulator.
var ErrTwinDomain = errors.New("hotpotato: spec outside the twin's calibrated domain")

// PredictSpec is the document POST /v1/predict accepts: exactly a RunSpec —
// the run to predict instead of simulate. It is a distinct type so the
// prediction surface can grow fields (e.g. requested percentiles) without
// touching the run document.
type PredictSpec struct {
	RunSpec
}

// twinCheckSpec verifies the declarative (platform-independent) part of the
// twin domain. spec must already carry defaults.
func twinCheckSpec(spec RunSpec) error {
	canon := DefaultPlatformConfig(spec.Platform.Width, spec.Platform.Height)
	p := spec.Platform
	p.Thermal.Solver = canon.Thermal.Solver // solver choice cannot change temperatures
	if p != canon {
		return fmt.Errorf("%w: platform deviates from the default substrates at %dx%d", ErrTwinDomain, spec.Platform.Width, spec.Platform.Height)
	}
	if spec.Scheduler.Name != "static" {
		return fmt.Errorf("%w: scheduler %q (only the static pinner is calibrated)", ErrTwinDomain, spec.Scheduler.Name)
	}
	if spec.Sim.NoCContention {
		return fmt.Errorf("%w: NoC contention model is not calibrated", ErrTwinDomain)
	}
	d := spec.Platform.Power.DVFS()
	if f := spec.Scheduler.Freq; f != 0 && (f < d.FMin || f > d.FMax) {
		return fmt.Errorf("%w: static frequency %g outside DVFS range", ErrTwinDomain, f)
	}
	return nil
}

// TwinCase reduces an in-domain spec to the twin's numeric case: the
// closed-form power fields and timing of the run. plat must be the platform
// spec.Platform describes; spec must already be defaulted and validated.
func TwinCase(plat *Platform, spec RunSpec) (twin.Case, error) {
	if err := twinCheckSpec(spec); err != nil {
		return twin.Case{}, err
	}
	taskSpecs, err := spec.Workload.specs(plat.NumCores())
	if err != nil {
		return twin.Case{}, err
	}
	tasks, err := Instantiate(taskSpecs)
	if err != nil {
		return twin.Case{}, err
	}
	schedSpec, err := spec.Scheduler.AutoPin(plat, tasks)
	if err != nil {
		return twin.Case{}, fmt.Errorf("%w: %v", ErrTwinDomain, err)
	}

	n := plat.NumCores()
	// The closed-form model needs one core per thread: with pin collisions
	// the threads would time-share and the timing model below is wrong.
	coreOf := make(map[ThreadID]int, len(schedSpec.Pins))
	taken := make(map[int]bool, len(schedSpec.Pins))
	for _, t := range tasks {
		for ti := 0; ti < t.Threads; ti++ {
			id := ThreadID{Task: t.ID, Thread: ti}
			core, ok := schedSpec.Pins[id]
			if !ok {
				return twin.Case{}, fmt.Errorf("%w: thread %v has no pin", ErrTwinDomain, id)
			}
			if core < 0 || core >= n {
				return twin.Case{}, fmt.Errorf("%w: thread %v pinned to core %d of %d", ErrTwinDomain, id, core, n)
			}
			if taken[core] {
				return twin.Case{}, fmt.Errorf("%w: core %d pinned twice (threads would time-share)", ErrTwinDomain, core)
			}
			taken[core] = true
			coreOf[id] = core
		}
	}

	freq := schedSpec.Freq
	if freq == 0 {
		freq = plat.Power.DVFS().FMax
	}
	idle := plat.Power.IdleWatts

	hot := make([]float64, n)
	energy := make([]float64, n) // above-idle watt-seconds per core
	for i := range hot {
		hot[i] = idle
	}

	// Closed-form timeline, mirroring the engine's interval model without
	// slice quantization: each phase splits its instruction budget evenly
	// over its active threads, each thread retires at its core's
	// time-per-instruction, and the barrier waits for the slowest.
	horizon := 0.0
	for _, t := range tasks {
		params := t.Bench.Perf()
		now := t.Arrival
		for _, ph := range t.Bench.Phases {
			active := twinActiveThreads(t, ph)
			budget := t.Bench.Work * t.WorkScale * ph.Frac / float64(len(active))
			phaseDur := 0.0
			for _, ti := range active {
				core := coreOf[ThreadID{Task: t.ID, Thread: ti}]
				tpi := plat.Perf.TimePerInstr(params, core, freq)
				busy, stall := plat.Perf.Fractions(params, core, freq)
				execWatts := plat.Power.IntervalPower(t.Bench.NominalWatts, freq, busy, stall)
				dur := budget * tpi
				energy[core] += (execWatts - idle) * dur
				if execWatts > hot[core] {
					hot[core] = execWatts
				}
				if dur > phaseDur {
					phaseDur = dur
				}
			}
			now += phaseDur
		}
		if now > horizon {
			horizon = now
		}
	}
	if !(horizon > 0) {
		return twin.Case{}, fmt.Errorf("%w: workload has no work", ErrTwinDomain)
	}

	avg := make([]float64, n)
	for i := range avg {
		avg[i] = idle + energy[i]/horizon
	}

	// The exact steady rises of the two power fields (closed-form linear
	// solves — microseconds, not a transient integration) feed the fitted
	// transient model as its strongest regressors.
	ambient := plat.Thermal.Ambient()
	shd := plat.Thermal.MaxCoreTemp(plat.Thermal.SteadyState(hot)) - ambient
	sad := plat.Thermal.MaxCoreTemp(plat.Thermal.SteadyState(avg)) - ambient

	c := twin.Case{
		Width:           plat.FP.Width,
		Height:          plat.FP.Height,
		Ambient:         ambient,
		HotPower:        hot,
		AvgPower:        avg,
		SteadyHotDeltaC: shd,
		SteadyAvgDeltaC: sad,
		Horizon:         horizon,
		RawMakespan:     horizon,
	}
	if err := c.Validate(); err != nil {
		return twin.Case{}, err
	}
	return c, nil
}

// twinActiveThreads mirrors the workload package's phase activity rule:
// serial phases (and single-threaded tasks) run the master, parallel phases
// run the workers 1..T-1.
func twinActiveThreads(t *Task, ph workload.Phase) []int {
	if ph.Kind == workload.Serial || t.Threads == 1 {
		return []int{0}
	}
	out := make([]int, t.Threads-1)
	for i := range out {
		out[i] = i + 1
	}
	return out
}

// TwinPredict evaluates the twin on one spec: defaults, validation, domain
// check, feature extraction, model evaluation, and the run-level
// conclusiveness gates the bare model cannot know about — hardware DTM (a
// tripped DTM throttles the run, so a transient estimate that cannot rule
// the trip out is inconclusive, as is the makespan) and Sim.MaxTime (a run
// that may hit the timeout has no honest makespan prediction). plat must be
// the platform spec.Platform describes.
func TwinPredict(model *TwinModel, plat *Platform, spec RunSpec) (TwinPrediction, error) {
	spec = spec.WithDefaults()
	if err := spec.Validate(); err != nil {
		return TwinPrediction{}, err
	}
	c, err := TwinCase(plat, spec)
	if err != nil {
		return TwinPrediction{}, err
	}
	pred, err := model.Predict(c)
	if err != nil {
		return TwinPrediction{}, fmt.Errorf("%w: %v", ErrTwinDomain, err)
	}
	if spec.Sim.DTMEnabled {
		// The calibration runs DTM-free physics; a run whose predicted peak
		// cannot be bounded under the trip temperature may throttle, which
		// invalidates both the transient and the makespan estimates.
		if pred.TransientPeakC.Estimate+pred.TransientPeakC.Bound >= spec.Sim.TDTM {
			pred.TransientPeakC.Conclusive = false
			pred.MakespanS.Conclusive = false
		}
	}
	if pred.MakespanS.Estimate+pred.MakespanS.Bound >= spec.Sim.MaxTime {
		pred.MakespanS.Conclusive = false
		pred.TransientPeakC.Conclusive = false
	}
	return pred, nil
}

// TwinCalibration parameterizes CalibrateTwin. The zero value is not usable;
// start from DefaultTwinCalibration.
type TwinCalibration struct {
	// Seed drives the whole design grid. Identical seeds (and counts) yield
	// byte-identical artifacts on every OS and architecture.
	Seed int64
	// Samples is the number of full-simulation oracle samples per bucket.
	Samples int
	// RingSamples is the number of Algorithm 1 oracle samples per bucket.
	RingSamples int
	// Buckets lists the calibrated grid sizes.
	Buckets [][2]int
}

// DefaultTwinCalibration is the committed artifact's recipe: the 4×4
// motivational and 8×8 evaluation platforms of the paper. Sample counts past
// the top power-of-two fit level still widen the calibration envelope (the
// conclusive domain), which is why Samples exceeds 128.
func DefaultTwinCalibration() TwinCalibration {
	return TwinCalibration{
		Seed:        1,
		Samples:     192,
		RingSamples: 320,
		Buckets:     [][2]int{{4, 4}, {8, 8}},
	}
}

// CalibrateTwin fits the analytical twin against the full simulator over a
// seeded design grid: per bucket, Samples random in-domain RunSpecs are
// simulated end-to-end (the transient/makespan oracle) and their worst-case
// power fields solved exactly (the steady-state oracle), plus RingSamples
// random ring rotations evaluated with Algorithm 1 (the HotPotato oracle).
// The fit itself is deterministic least squares (internal/twin), so the
// returned model — including its content hash — is a pure function of the
// calibration parameters.
func CalibrateTwin(ctx context.Context, cal TwinCalibration) (*TwinModel, error) {
	if cal.Samples < 1 || cal.RingSamples < 1 || len(cal.Buckets) == 0 {
		return nil, fmt.Errorf("hotpotato: calibration needs positive sample counts and at least one bucket")
	}
	model := &TwinModel{
		Version: twin.ModelVersion,
		Seed:    cal.Seed,
		Buckets: make(map[string]twin.BucketModel, len(cal.Buckets)),
	}
	for _, b := range cal.Buckets {
		w, h := b[0], b[1]
		bucket, err := calibrateBucket(ctx, cal.Seed, w, h, cal.Samples, cal.RingSamples)
		if err != nil {
			return nil, fmt.Errorf("hotpotato: calibrating bucket %s: %w", twin.BucketKey(w, h), err)
		}
		model.Buckets[twin.BucketKey(w, h)] = bucket
	}
	hash, err := model.ComputeHash()
	if err != nil {
		return nil, err
	}
	model.Hash = hash
	return model, nil
}

// calibrateBucket gathers the oracle samples of one grid size and fits them.
func calibrateBucket(ctx context.Context, seed int64, width, height, samples, ringSamples int) (twin.BucketModel, error) {
	plat, err := NewPlatform(width, height)
	if err != nil {
		return twin.BucketModel{}, err
	}
	// Independent streams for the two sample sequences: growing one density
	// must not shift the other's draws, or the per-axis bound monotonicity
	// (and prefix reproducibility) breaks.
	bucketSeed := seed + int64(width)*1009 + int64(height)*9176
	rng := rand.New(rand.NewSource(bucketSeed))
	ringRng := rand.New(rand.NewSource(bucketSeed + 7919))

	oracle := make([]twin.Sample, 0, samples)
	for i := 0; i < samples; i++ {
		spec := twinDesignSpec(rng, width, height)
		s, err := twinOracleSample(ctx, plat, spec)
		if err != nil {
			return twin.BucketModel{}, fmt.Errorf("sample %d: %w", i, err)
		}
		oracle = append(oracle, s)
	}

	ringEval := rotation.NewCalculator(plat.Thermal).NewRingEvaluator()
	steadyPeak := twinSteadyPeakFunc(plat)
	ringOracle := make([]twin.RingSample, 0, ringSamples)
	for i := 0; i < ringSamples; i++ {
		rc := twinDesignRing(ringRng, plat, steadyPeak)
		peak, err := ringEval.PeakRingRotation(rc.Tau, rc.Base, rc.RingCores, rc.SlotWatts)
		if err != nil {
			return twin.BucketModel{}, fmt.Errorf("ring sample %d: %w", i, err)
		}
		ringOracle = append(ringOracle, twin.RingSample{Case: rc, PeakC: peak})
	}

	return twin.FitBucket(width, height, plat.Thermal.Ambient(), oracle, ringOracle)
}

// twinOracleSample runs one calibration spec against the full simulator and
// the exact steady-state solver.
func twinOracleSample(ctx context.Context, plat *Platform, spec RunSpec) (twin.Sample, error) {
	spec = spec.WithDefaults()
	if err := spec.Validate(); err != nil {
		return twin.Sample{}, err
	}
	c, err := TwinCase(plat, spec)
	if err != nil {
		return twin.Sample{}, err
	}
	res, err := ExecuteSpecOnPlatform(ctx, plat, spec)
	if err != nil {
		return twin.Sample{}, err
	}
	steady := plat.Thermal.SteadyState(c.HotPower)
	return twin.Sample{
		Case: c,
		Obs: twin.Observation{
			SteadyTemps:    steady,
			SteadyPeakC:    plat.Thermal.MaxCoreTemp(steady),
			TransientPeakC: res.PeakTemp,
			MakespanS:      res.Makespan,
		},
	}, nil
}

// twinDesignSpec draws one random in-domain RunSpec: 1–3 explicit tasks with
// random benchmarks, thread counts, arrivals and (small) work scales, pinned
// injectively onto random cores at a random DVFS level, DTM off so the
// oracle physics stay linear. The twin_diff_test.go property suite draws
// held-out specs from the same generator at different seeds.
func twinDesignSpec(rng *rand.Rand, width, height int) RunSpec {
	n := width * height
	benches := workload.PARSEC()
	numTasks := 1 + rng.Intn(3)

	maxThreads := 4
	if n >= 64 {
		maxThreads = 8
	}
	tasks := make([]TaskSpec, 0, numTasks)
	total := 0
	for t := 0; t < numTasks; t++ {
		threads := 1 + rng.Intn(maxThreads)
		if total+threads > n {
			threads = n - total
		}
		if threads < 1 {
			break
		}
		total += threads
		tasks = append(tasks, TaskSpec{
			Bench:     benches[rng.Intn(len(benches))].Name,
			Threads:   threads,
			Arrival:   float64(rng.Intn(4)) * 0.5e-3,
			WorkScale: 0.02 + 0.10*rng.Float64(), // a few ms of simulated time
		})
	}

	pins := make(map[ThreadID]int, total)
	perm := rng.Perm(n)
	idx := 0
	for taskID, t := range tasks {
		for ti := 0; ti < t.Threads; ti++ {
			pins[ThreadID{Task: taskID, Thread: ti}] = perm[idx]
			idx++
		}
	}

	d := DefaultPlatformConfig(width, height).Power.DVFS()
	levels := d.Levels()
	freq := levels[rng.Intn(len(levels))]

	sim := DefaultSimConfig()
	sim.DTMEnabled = false

	return RunSpec{
		Platform: DefaultPlatformConfig(width, height),
		Sim:      sim,
		Scheduler: SchedulerSpec{
			Name: "static",
			Freq: freq,
			Pins: pins,
		},
		Workload: WorkloadSpec{Kind: WorkloadExplicit, Tasks: tasks},
	}
}

// twinSteadyPeakFunc returns the exact steady-peak evaluator of a platform:
// the hottest core's steady-state rise (K) of a per-core power field, via the
// cached core-influence matrix. The returned closure allocates nothing per
// call and is confined to one goroutine (it reuses a scratch vector).
func twinSteadyPeakFunc(plat *Platform) twin.SteadyPeakFunc {
	infl := plat.Thermal.CoreInfluence()
	rise := make([]float64, plat.NumCores())
	return func(field []float64) float64 {
		infl.MulVecTo(rise, field)
		return matrix.VecMax(rise)
	}
}

// twinDesignRing draws one random ring-rotation case in HotPotato's input
// distribution: a per-ring uniform background, one occupied ring carrying a
// mix of idle and busy slots, and a τ from the scheduler's adaptation range.
// steadyPeak supplies the exact quasi-steady rise the ring model anchors on.
func twinDesignRing(rng *rand.Rand, plat *Platform, steadyPeak twin.SteadyPeakFunc) twin.RingCase {
	idle := plat.Power.IdleWatts
	rings := plat.FP.Rings()
	n := plat.NumCores()

	base := make([]float64, n)
	for _, ring := range rings {
		mean := idle
		if rng.Float64() < 0.7 {
			mean = idle + rng.Float64()*5
		}
		for _, c := range ring.Cores {
			base[c] = mean
		}
	}

	ring := rings[rng.Intn(len(rings))]
	slots := make([]float64, len(ring.Cores))
	for i := range slots {
		slots[i] = idle
		if rng.Float64() < 0.6 {
			slots[i] = idle + 1 + rng.Float64()*8
		}
	}

	tau := 0.125e-3 * float64(int(1)<<rng.Intn(6)) // 0.125–4 ms, HotPotato's range

	field := make([]float64, n)
	sfdMax := twin.MaxInstantSteadyDelta(field, base, ring.Cores, slots, steadyPeak)
	mean := 0.0
	for _, w := range slots {
		mean += w
	}
	mean /= float64(len(slots))
	copy(field, base)
	for _, c := range ring.Cores {
		field[c] = mean
	}

	return twin.RingCase{
		Width:             plat.FP.Width,
		Height:            plat.FP.Height,
		Ambient:           plat.Thermal.Ambient(),
		Tau:               tau,
		Base:              base,
		RingCores:         ring.Cores,
		SlotWatts:         slots,
		SteadyFieldDeltaC: steadyPeak(field),
		SteadyMaxDeltaC:   sfdMax,
	}
}

// NewTwinSweepPruner builds the sweep-cell pruner behind a sweep's
// prune_above_temp threshold (see SweepOptions.Prune): a cell is pruned only
// when the twin's transient-peak interval [est−bound, est+bound] lies
// entirely on one side of the threshold — "above" when even the optimistic
// end exceeds it, "below" when even the pessimistic end stays under it.
// Out-of-domain cells, uncalibrated grid sizes, and inconclusive predictions
// all return ok=false, so those cells simulate as usual. The returned func
// is safe for concurrent calls (predictions are serialized internally; each
// costs microseconds against the cells' full simulations).
func NewTwinSweepPruner(model *TwinModel, threshold float64) func(ctx context.Context, cell SweepCell) (PruneDecision, bool) {
	var mu sync.Mutex
	plats := make(map[[2]int]*Platform)
	return func(ctx context.Context, cell SweepCell) (PruneDecision, bool) {
		w, h := cell.Spec.Platform.Width, cell.Spec.Platform.Height
		if _, ok := model.Buckets[twin.BucketKey(w, h)]; !ok {
			return PruneDecision{}, false
		}
		mu.Lock()
		defer mu.Unlock()
		plat, ok := plats[[2]int{w, h}]
		if !ok {
			var err error
			plat, err = NewPlatform(w, h)
			if err != nil {
				return PruneDecision{}, false
			}
			plats[[2]int{w, h}] = plat
		}
		pred, err := TwinPredict(model, plat, cell.Spec)
		if err != nil || !pred.TransientPeakC.Conclusive {
			return PruneDecision{}, false
		}
		est, bound := pred.TransientPeakC.Estimate, pred.TransientPeakC.Bound
		switch {
		case est-bound >= threshold:
			return PruneDecision{Verdict: "above", PeakC: est, BoundC: bound}, true
		case est+bound < threshold:
			return PruneDecision{Verdict: "below", PeakC: est, BoundC: bound}, true
		default:
			return PruneDecision{}, false
		}
	}
}

// NewTwinRingEstimator builds the HotPotato pre-filter for plat (see
// sched.RingPeakEstimator and WithTwinPreFilter): the model's bucket for the
// platform's grid size plus the platform's exact steady-peak solve. Like the
// exact ring evaluator it replaces, the estimator is confined to one
// goroutine.
func NewTwinRingEstimator(model *TwinModel, plat *Platform) (sched.RingPeakEstimator, error) {
	return twin.NewRingEstimator(model, plat.FP.Width, plat.FP.Height, twinSteadyPeakFunc(plat))
}

// WithTwinPreFilter returns the HotPotato option installing a twin-backed
// Decide pre-filter: per-ring Algorithm 1 evaluations whose outcome the twin
// bounds conclusively on one side of the decision threshold are answered by
// the twin; everything else falls back to the exact evaluation, keeping
// scheduling decisions bit-identical to stock HotPotato.
func WithTwinPreFilter(e sched.RingPeakEstimator) HotPotatoOption {
	return sched.WithRingEstimator(e)
}
