package tracerec

import (
	"fmt"

	"repro/internal/obs"
)

// FromEpochEvents builds a Recorder over a run's epoch-event trace, one
// sample per scheduler epoch, so the CSV exports and heatmaps work from an
// obs.Tracer exactly as they do from the per-slice SetTrace hook. Every
// event must carry equally-sized core vectors.
func FromEpochEvents(events []obs.EpochEvent) (*Recorder, error) {
	if len(events) == 0 {
		return nil, fmt.Errorf("tracerec: no epoch events")
	}
	n := len(events[0].CoreTemps)
	r := &Recorder{stride: 1}
	for i, ev := range events {
		if len(ev.CoreTemps) != n || len(ev.CorePower) != n || len(ev.Freqs) != n {
			return nil, fmt.Errorf("tracerec: event %d has vectors sized %d/%d/%d, want %d",
				i, len(ev.CoreTemps), len(ev.CorePower), len(ev.Freqs), n)
		}
		r.times = append(r.times, ev.Time)
		r.temps = append(r.temps, append([]float64(nil), ev.CoreTemps...))
		r.watts = append(r.watts, append([]float64(nil), ev.CorePower...))
		r.freqs = append(r.freqs, append([]float64(nil), ev.Freqs...))
	}
	r.slice = len(events)
	return r, nil
}
