package thermal

import (
	"fmt"

	"repro/internal/floorplan"
	"repro/internal/matrix"
)

// StackedConfig extends Config for 3D-stacked chips (the paper's §VII
// future-work direction, explored with CoMeT [25] there): `Layers` silicon
// core layers are bonded vertically, with only the top layer adjacent to the
// spreader/heatsink stack. Lower layers must evacuate heat through the
// layers above them — the defining thermal challenge of 3D integration.
type StackedConfig struct {
	Config
	// Layers is the number of stacked core layers (≥ 1; 1 reduces to the
	// planar model).
	Layers int
	// GInterLayer is the vertical conductance between vertically adjacent
	// cores of neighbouring layers (through the bonding/TSV interface),
	// W/K per core.
	GInterLayer float64
}

// DefaultStackedConfig returns a calibrated two-layer stack: the bonding
// interface conducts slightly better than the die-to-spreader path, but the
// buried layer still runs visibly hotter.
func DefaultStackedConfig(layers int) StackedConfig {
	return StackedConfig{
		Config:      DefaultConfig(),
		Layers:      layers,
		GInterLayer: 0.30,
	}
}

// NewStacked builds the RC model of a 3D-stacked chip: `Layers` copies of
// the floorplan's core grid, stacked with inter-layer conductances, topped
// by the spreader layer and heatsink of the planar model. Core (layer l,
// position i) is node l·n + i; layer Layers-1 is adjacent to the spreader.
// All of Model's methods — and therefore the Algorithm 1 rotation
// calculator — work unchanged, with NumCores() = Layers·n.
func NewStacked(fp *floorplan.Floorplan, cfg StackedConfig) (*Model, error) {
	if err := validate(cfg.Config); err != nil {
		return nil, err
	}
	if cfg.Layers < 1 {
		return nil, fmt.Errorf("thermal: need at least one layer, got %d", cfg.Layers)
	}
	if cfg.GInterLayer <= 0 {
		return nil, fmt.Errorf("thermal: inter-layer conductance must be positive, got %g", cfg.GInterLayer)
	}

	nPer := fp.NumCores()
	n := cfg.Layers * nPer
	m := &Model{fp: fp, cfg: cfg.Config, n: n, N: n + nPer + 1}
	if err := m.finish(m.buildStacked(cfg, nPer)); err != nil {
		return nil, fmt.Errorf("thermal: stacked model: %w", err)
	}
	return m, nil
}

// buildStacked assembles A, B and G for the 3D stack, emitting B as sparse
// triplets (see Model.build). Node layout:
// [layer 0 cores | layer 1 cores | ... | spreader (nPer) | sink].
func (m *Model) buildStacked(cfg StackedConfig, nPer int) *matrix.SparseBuilder {
	layers := cfg.Layers
	n := m.n
	N := m.N
	spreaderBase := n
	sink := N - 1

	m.aDiag = make([]float64, N)
	m.g = make([]float64, N)
	bb := matrix.NewSparseBuilder(N, N)

	for l := 0; l < layers; l++ {
		for i := 0; i < nPer; i++ {
			m.aDiag[l*nPer+i] = cfg.SiCapacitance
		}
	}
	for i := 0; i < nPer; i++ {
		m.aDiag[spreaderBase+i] = cfg.SpCapacitance
	}
	m.aDiag[sink] = cfg.SinkCapacitancePerCore * float64(nPer)

	addCoupling := func(i, j int, g float64) {
		if g == 0 {
			return
		}
		bb.Add(i, j, -g)
		bb.Add(j, i, -g)
		bb.Add(i, i, g)
		bb.Add(j, j, g)
	}

	for l := 0; l < layers; l++ {
		base := l * nPer
		for i := 0; i < nPer; i++ {
			// Lateral silicon couplings within the layer.
			for _, nb := range m.fp.Neighbors(i) {
				if nb > i {
					addCoupling(base+i, base+nb, cfg.GLateralSi)
				}
			}
			// Vertical: to the next layer up, or to the spreader from the
			// top layer.
			if l < layers-1 {
				addCoupling(base+i, base+nPer+i, cfg.GInterLayer)
			} else {
				addCoupling(base+i, spreaderBase+i, cfg.GVertical)
			}
		}
	}
	for i := 0; i < nPer; i++ {
		for _, nb := range m.fp.Neighbors(i) {
			if nb > i {
				addCoupling(spreaderBase+i, spreaderBase+nb, cfg.GLateralSp)
			}
		}
		exposed := 4 - len(m.fp.Neighbors(i))
		gSink := cfg.GSpreaderSink * (1 + cfg.GSpreaderEdgeBonus*float64(exposed))
		addCoupling(spreaderBase+i, sink, gSink)
	}

	gAmb := cfg.GSinkAmbientPerCore * float64(nPer)
	bb.Add(sink, sink, gAmb)
	m.g[sink] = gAmb
	return bb
}

// LayerOf returns the layer index of core id in a stacked model built over a
// floorplan with perLayer cores per layer.
func LayerOf(id, perLayer int) int { return id / perLayer }

// PositionOf returns the within-layer position of core id.
func PositionOf(id, perLayer int) int { return id % perLayer }

// StackedCoreID returns the node/core ID of (layer, position).
func StackedCoreID(layer, position, perLayer int) int { return layer*perLayer + position }
