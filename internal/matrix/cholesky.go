package matrix

import (
	"fmt"
	"math"
)

// Cholesky holds the factorization A = L·Lᵀ of a symmetric positive definite
// matrix, with L lower triangular. For the thermal conductance matrix B —
// which is SPD by construction — it is roughly twice as fast as LU and
// certifies positive definiteness as a side effect.
type Cholesky struct {
	n int
	l *Dense // lower triangle; upper strictly zero
}

// FactorCholesky computes the Cholesky factorization of a. It returns an
// error if a is not square, not symmetric, or not positive definite.
func FactorCholesky(a *Dense) (*Cholesky, error) {
	if a.rows != a.cols {
		return nil, fmt.Errorf("matrix: Cholesky of non-square %dx%d matrix", a.rows, a.cols)
	}
	tol := 1e-9 * (1 + a.MaxAbs())
	if !a.IsSymmetric(tol) {
		return nil, fmt.Errorf("matrix: Cholesky input is not symmetric within %g", tol)
	}
	n := a.rows
	l := New(n, n)
	for j := 0; j < n; j++ {
		var sum float64
		for k := 0; k < j; k++ {
			v := l.data[j*n+k]
			sum += v * v
		}
		d := a.data[j*n+j] - sum
		if d <= 0 {
			return nil, fmt.Errorf("matrix: not positive definite (pivot %d = %g)", j, d)
		}
		ljj := math.Sqrt(d)
		l.data[j*n+j] = ljj
		for i := j + 1; i < n; i++ {
			var s float64
			for k := 0; k < j; k++ {
				s += l.data[i*n+k] * l.data[j*n+k]
			}
			l.data[i*n+j] = (a.data[i*n+j] - s) / ljj
		}
	}
	return &Cholesky{n: n, l: l}, nil
}

// L returns a copy of the lower-triangular factor.
func (c *Cholesky) L() *Dense { return c.l.Clone() }

// SolveVec solves A·x = b via forward/back substitution.
func (c *Cholesky) SolveVec(b []float64) ([]float64, error) {
	if len(b) != c.n {
		return nil, fmt.Errorf("matrix: rhs length %d, want %d", len(b), c.n)
	}
	n := c.n
	l := c.l.data
	// Forward: L·y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= l[i*n+k] * y[k]
		}
		y[i] = s / l[i*n+i]
	}
	// Back: Lᵀ·x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l[k*n+i] * x[k]
		}
		x[i] = s / l[i*n+i]
	}
	return x, nil
}

// Solve solves A·X = B column by column.
func (c *Cholesky) Solve(b *Dense) (*Dense, error) {
	if b.rows != c.n {
		return nil, fmt.Errorf("matrix: rhs has %d rows, want %d", b.rows, c.n)
	}
	x := New(c.n, b.cols)
	col := make([]float64, c.n)
	for j := 0; j < b.cols; j++ {
		for i := 0; i < c.n; i++ {
			col[i] = b.data[i*b.cols+j]
		}
		sol, err := c.SolveVec(col)
		if err != nil {
			return nil, err
		}
		for i := 0; i < c.n; i++ {
			x.data[i*x.cols+j] = sol[i]
		}
	}
	return x, nil
}

// Inverse returns A⁻¹ from the factorization.
func (c *Cholesky) Inverse() (*Dense, error) {
	return c.Solve(Identity(c.n))
}

// LogDeterminant returns ln(det A) = 2·Σ ln(L_ii), numerically stable for
// the tiny determinants of large capacitance/conductance matrices.
func (c *Cholesky) LogDeterminant() float64 {
	var s float64
	for i := 0; i < c.n; i++ {
		s += math.Log(c.l.data[i*c.n+i])
	}
	return 2 * s
}

// IsPositiveDefinite reports whether the symmetric matrix a is positive
// definite (by attempting a Cholesky factorization).
func IsPositiveDefinite(a *Dense) bool {
	_, err := FactorCholesky(a)
	return err == nil
}
