package sched

import (
	"repro/internal/sim"
)

// AsyncMigrate isolates the paper's central comparison: asynchronous
// on-demand thread migration *without* DVFS — the "measure of last resort"
// strategy (§I) — against HotPotato's synchronous rotation. Threads run
// pinned at peak frequency until their core approaches the threshold, then
// hop to the coolest free core; there is no periodic averaging, so heat must
// build up before anything reacts.
type AsyncMigrate struct {
	tdtm float64
	// margin triggers a migration when a core reaches tdtm − margin.
	margin float64
	// minGain is the minimum temperature advantage a destination must offer.
	minGain float64
	epoch   float64

	assignment map[sim.ThreadID]int
}

// NewAsyncMigrate builds the migration-only policy.
func NewAsyncMigrate(tdtm float64) *AsyncMigrate {
	return &AsyncMigrate{
		tdtm:       tdtm,
		margin:     2,
		minGain:    2,
		epoch:      1e-3,
		assignment: map[sim.ThreadID]int{},
	}
}

// Name implements sim.Scheduler.
func (a *AsyncMigrate) Name() string { return "async-migration" }

// Decide implements sim.Scheduler.
func (a *AsyncMigrate) Decide(st *sim.State) sim.Decision {
	live := liveSet(st)
	for id := range a.assignment {
		if _, ok := live[id]; !ok {
			delete(a.assignment, id)
		}
	}

	// Shared gang-FIFO admission, cache-aware ordering.
	n := st.Platform.NumCores()
	for _, group := range queuedTasks(st) {
		free := coresByAMD(st, freeCores(n, a.assignment))
		if len(free) < len(group.threads) {
			break
		}
		for i, th := range group.threads {
			a.assignment[th.ID] = free[i]
		}
	}

	// On-demand migration away from hot cores, deterministic order.
	free := freeCores(n, a.assignment)
	for _, id := range sortedIDs(a.assignment) {
		core := a.assignment[id]
		if st.CoreTemps[core] < a.tdtm-a.margin {
			continue
		}
		bestCore, bestTemp, bestIdx := -1, st.CoreTemps[core]-a.minGain, -1
		for i, c := range free {
			if st.CoreTemps[c] < bestTemp {
				bestCore, bestTemp, bestIdx = c, st.CoreTemps[c], i
			}
		}
		if bestCore >= 0 {
			free[bestIdx] = core
			a.assignment[id] = bestCore
		}
	}

	out := make(map[sim.ThreadID]int, len(a.assignment))
	for id, core := range a.assignment {
		out[id] = core
	}
	// No DVFS: peak frequency everywhere (nil Freq).
	return sim.Decision{Assignment: out, NextInvoke: a.epoch}
}
