package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
)

// syncBuffer collects the server's structured log concurrently-safely, so
// tests can assert on access-log lines emitted from handler goroutines.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// logLines decodes every line of the captured log as JSON, failing the test
// on any line that is not a JSON object — the log stream contract.
func logLines(t *testing.T, raw string) []map[string]any {
	t.Helper()
	var out []map[string]any
	for _, line := range strings.Split(strings.TrimSpace(raw), "\n") {
		if line == "" {
			continue
		}
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("log line not JSON: %v\n%s", err, line)
		}
		out = append(out, rec)
	}
	return out
}

func newLoggedServer(t *testing.T, cfg Config) (*syncBuffer, *Server, string) {
	t.Helper()
	buf := &syncBuffer{}
	logger, err := obs.NewLogger(buf, "info", "json")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Logger = logger
	svc, ts := newTestServer(t, cfg)
	return buf, svc, ts.URL
}

// doRequest issues req and returns the response with its body drained, so the
// middleware's access-log line has been emitted by the time we return.
func doRequest(t *testing.T, req *http.Request) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func TestRequestIDEchoedAndLogged(t *testing.T) {
	buf, _, url := newLoggedServer(t, Config{Workers: 1})

	req, err := http.NewRequest(http.MethodGet, url+"/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(RequestIDHeader, "caller-supplied-42")
	resp, _ := doRequest(t, req)
	if got := resp.Header.Get(RequestIDHeader); got != "caller-supplied-42" {
		t.Fatalf("response %s = %q, want the inbound ID echoed", RequestIDHeader, got)
	}

	var access map[string]any
	for _, rec := range logLines(t, buf.String()) {
		if rec["msg"] == "http request" && rec["request_id"] == "caller-supplied-42" {
			access = rec
			break
		}
	}
	if access == nil {
		t.Fatalf("no access-log line with the request ID in:\n%s", buf.String())
	}
	if access["method"] != "GET" || access["path"] != "/healthz" {
		t.Errorf("access line = %v", access)
	}
	if status, ok := access["status"].(float64); !ok || int(status) != http.StatusOK {
		t.Errorf("access line status = %v", access["status"])
	}
	if _, ok := access["duration_ms"].(float64); !ok {
		t.Errorf("access line missing duration_ms: %v", access)
	}
	if bytes, ok := access["bytes"].(float64); !ok || bytes <= 0 {
		t.Errorf("access line bytes = %v", access["bytes"])
	}
}

func TestRequestIDGeneratedWhenAbsentOrInvalid(t *testing.T) {
	_, _, url := newLoggedServer(t, Config{Workers: 1})

	cases := map[string]string{
		"absent":       "",
		"has_space":    "two words",
		"has_control":  "evil\tid",
		"has_high_bit": "id-\x80x",
		"too_long":     strings.Repeat("x", maxRequestIDLen+1),
	}
	for name, inbound := range cases {
		t.Run(name, func(t *testing.T) {
			req, err := http.NewRequest(http.MethodGet, url+"/healthz", nil)
			if err != nil {
				t.Fatal(err)
			}
			if inbound != "" {
				req.Header.Set(RequestIDHeader, inbound)
			}
			resp, _ := doRequest(t, req)
			got := resp.Header.Get(RequestIDHeader)
			if got == "" || got == inbound {
				t.Fatalf("response ID = %q for inbound %q, want a generated one", got, inbound)
			}
			if !validRequestID(got) {
				t.Errorf("generated ID %q fails its own validation", got)
			}
		})
	}
}

// collectNames flattens a span tree into name → count.
func collectNames(nodes []*obs.SpanNode, into map[string]int) {
	for _, n := range nodes {
		into[n.Name]++
		collectNames(n.Children, into)
	}
}

func findChild(n *obs.SpanNode, name string) *obs.SpanNode {
	for _, c := range n.Children {
		if c.Name == name {
			return c
		}
	}
	return nil
}

func TestJobSpansEndpoint(t *testing.T) {
	_, _, url := newLoggedServer(t, Config{Workers: 2})

	req, err := http.NewRequest(http.MethodPost, url+"/v1/jobs", strings.NewReader(quickSpecJSON))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(RequestIDHeader, "span-test-1")
	resp, body := doRequest(t, req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var job Job
	if err := json.Unmarshal(body, &job); err != nil {
		t.Fatal(err)
	}
	if job.RequestID != "span-test-1" {
		t.Errorf("submitted job request_id = %q, want span-test-1", job.RequestID)
	}

	done := waitForJob(t, url, job.ID)
	if done.Status != JobDone {
		t.Fatalf("job ended %s: %s", done.Status, done.Error)
	}
	if done.RequestID != "span-test-1" {
		t.Errorf("finished job request_id = %q", done.RequestID)
	}
	if done.Profile == nil {
		t.Fatal("finished job has no profile")
	}
	if done.Profile.TotalNS <= 0 || done.Profile.Epochs <= 0 {
		t.Errorf("profile = %+v", done.Profile)
	}
	if sum := done.Profile.QueueNS + done.Profile.BuildNS + done.Profile.DecideNS + done.Profile.StepNS; sum > done.Profile.TotalNS*2 {
		t.Errorf("profile phases (%d ns) wildly exceed total (%d ns)", sum, done.Profile.TotalNS)
	}

	resp, body = getJSON(t, url+"/v1/jobs/"+job.ID+"/spans")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("spans status %d: %s", resp.StatusCode, body)
	}
	var envelope jobSpans
	if err := json.Unmarshal(body, &envelope); err != nil {
		t.Fatal(err)
	}
	if envelope.ID != job.ID || envelope.Status != JobDone {
		t.Errorf("envelope = %s/%s", envelope.ID, envelope.Status)
	}
	if len(envelope.Spans) != 1 {
		t.Fatalf("got %d root spans, want 1", len(envelope.Spans))
	}
	root := envelope.Spans[0]
	if root.Name != "run" || !root.Done {
		t.Fatalf("root = %q done=%v", root.Name, root.Done)
	}
	if root.Attrs["job_id"] != job.ID || root.Attrs["request_id"] != "span-test-1" {
		t.Errorf("root attrs = %v", root.Attrs)
	}
	if root.Attrs["status"] != string(JobDone) {
		t.Errorf("root status attr = %v", root.Attrs["status"])
	}

	names := map[string]int{}
	collectNames(envelope.Spans, names)
	for _, want := range []string{"queue_wait", "slot_wait", "platform_build", "execute_spec", "workload_build", "simulate"} {
		if names[want] != 1 {
			t.Errorf("span %q appears %d times, want 1 (all names: %v)", want, names[want], names)
		}
	}
	if names["epoch"] == 0 {
		t.Error("no epoch spans recorded")
	}
	if names["epoch"] != done.Profile.Epochs {
		t.Errorf("%d epoch spans for %d profiled epochs", names["epoch"], done.Profile.Epochs)
	}

	exec := findChild(root, "execute_spec")
	if exec == nil {
		t.Fatal("execute_spec is not a direct child of run")
	}
	sim := findChild(exec, "simulate")
	if sim == nil {
		t.Fatal("simulate is not a child of execute_spec")
	}
	if len(sim.Children) != names["epoch"] {
		t.Errorf("epoch spans not nested under simulate: %d of %d", len(sim.Children), names["epoch"])
	}
	// The root covers the whole job: no child may outlast it.
	for _, c := range root.Children {
		if c.DurationNS > root.DurationNS {
			t.Errorf("child %q (%d ns) outlasts root (%d ns)", c.Name, c.DurationNS, root.DurationNS)
		}
	}

	// JSONL export: one parseable record per line, ndjson content type.
	resp, body = getJSON(t, url+"/v1/jobs/"+job.ID+"/spans?format=jsonl")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("jsonl status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("jsonl content type = %q", ct)
	}
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	if int64(len(lines)) != envelope.Total {
		t.Errorf("jsonl has %d lines, envelope total %d", len(lines), envelope.Total)
	}
	for _, line := range lines {
		var rec obs.SpanRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("jsonl line not a SpanRecord: %v\n%s", err, line)
		}
	}

	resp, _ = getJSON(t, url+"/v1/jobs/no-such-job/spans")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job spans status = %d, want 404", resp.StatusCode)
	}
}

func TestJobSpansDisabled(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, SpanDepth: -1})

	resp, body := postJSON(t, ts.URL+"/v1/jobs", quickSpecJSON)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var job Job
	if err := json.Unmarshal(body, &job); err != nil {
		t.Fatal(err)
	}
	done := waitForJob(t, ts.URL, job.ID)
	if done.Status != JobDone {
		t.Fatalf("job ended %s: %s", done.Status, done.Error)
	}
	// The profile does not depend on span tracing.
	if done.Profile == nil || done.Profile.TotalNS <= 0 {
		t.Errorf("profile = %+v", done.Profile)
	}
	resp, _ = getJSON(t, ts.URL+"/v1/jobs/"+job.ID+"/spans")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("spans status with tracing disabled = %d, want 404", resp.StatusCode)
	}
}

// TestConcurrentTracedJobs pushes several traced, logged jobs through the
// service at once (run under -race in CI): every job must keep its own
// request ID and a well-formed span tree — no cross-talk between recorders.
func TestConcurrentTracedJobs(t *testing.T) {
	const jobs = 6
	buf, _, url := newLoggedServer(t, Config{Workers: 4, QueueDepth: jobs})

	type submitted struct {
		requestID string
		job       Job
	}
	results := make([]submitted, jobs)
	var wg sync.WaitGroup
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rid := fmt.Sprintf("concurrent-req-%d", i)
			req, err := http.NewRequest(http.MethodPost, url+"/v1/jobs", strings.NewReader(quickSpecJSON))
			if err != nil {
				t.Error(err)
				return
			}
			req.Header.Set("Content-Type", "application/json")
			req.Header.Set(RequestIDHeader, rid)
			resp, body := doRequest(t, req)
			if resp.StatusCode != http.StatusAccepted {
				t.Errorf("job %d: status %d: %s", i, resp.StatusCode, body)
				return
			}
			var job Job
			if err := json.Unmarshal(body, &job); err != nil {
				t.Error(err)
				return
			}
			results[i] = submitted{requestID: rid, job: job}
		}(i)
	}
	wg.Wait()

	seenIDs := make(map[string]bool, jobs)
	for i, sub := range results {
		if sub.job.ID == "" {
			t.Fatalf("job %d was not submitted", i)
		}
		done := waitForJob(t, url, sub.job.ID)
		if done.Status != JobDone {
			t.Fatalf("job %s ended %s: %s", sub.job.ID, done.Status, done.Error)
		}
		if done.RequestID != sub.requestID {
			t.Errorf("job %s carries request_id %q, submitted with %q", sub.job.ID, done.RequestID, sub.requestID)
		}
		if seenIDs[done.RequestID] {
			t.Errorf("request_id %q appears on more than one job", done.RequestID)
		}
		seenIDs[done.RequestID] = true

		_, body := getJSON(t, url+"/v1/jobs/"+sub.job.ID+"/spans")
		var envelope jobSpans
		if err := json.Unmarshal(body, &envelope); err != nil {
			t.Fatalf("job %s spans: %v", sub.job.ID, err)
		}
		if len(envelope.Spans) != 1 || envelope.Spans[0].Name != "run" {
			t.Fatalf("job %s: %d roots", sub.job.ID, len(envelope.Spans))
		}
		root := envelope.Spans[0]
		if root.Attrs["job_id"] != sub.job.ID || root.Attrs["request_id"] != sub.requestID {
			t.Errorf("job %s root attrs = %v — span cross-talk", sub.job.ID, root.Attrs)
		}
		if !root.Done {
			t.Errorf("job %s root span left open", sub.job.ID)
		}
		names := map[string]int{}
		collectNames(envelope.Spans, names)
		for _, want := range []string{"queue_wait", "execute_spec", "simulate"} {
			if names[want] != 1 {
				t.Errorf("job %s: span %q count %d", sub.job.ID, want, names[want])
			}
		}
	}

	// Every request left exactly one access-log line, each a JSON object
	// carrying its own request ID.
	accessByID := map[string]int{}
	for _, rec := range logLines(t, buf.String()) {
		if rec["msg"] == "http request" {
			if id, ok := rec["request_id"].(string); ok {
				accessByID[id]++
			}
		}
	}
	for i := 0; i < jobs; i++ {
		rid := fmt.Sprintf("concurrent-req-%d", i)
		if accessByID[rid] == 0 {
			t.Errorf("no access-log line for %s", rid)
		}
	}
}
