package sim

import "repro/internal/obs"

// Pre-registered metric handles (docs/OBSERVABILITY.md). Package-level
// concrete pointers keep the slice loop free of registry lookups and
// interface calls; every operation below is a single atomic instruction.
var (
	metricRuns = obs.NewCounter("sim_runs_total",
		"Simulation runs started (Run/RunContext entries).")
	metricEpochs = obs.NewCounter("sim_epochs_total",
		"Scheduler epochs simulated (Decide invocations) across all runs.")
	metricSlices = obs.NewCounter("sim_slices_total",
		"Time slices stepped through the thermal model across all runs.")
	metricMigrations = obs.NewCounter("sim_migrations_total",
		"Thread migrations performed by scheduler decisions across all runs.")
	metricDTMEvents = obs.NewCounter("sim_dtm_events_total",
		"Hardware DTM throttle engagements across all runs.")
	metricPeakTemp = obs.NewGauge("sim_peak_temp_celsius",
		"Peak core temperature of the most recently finalized run, °C.")
)
