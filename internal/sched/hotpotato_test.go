package sched

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/sim"
	"repro/internal/workload"
)

func TestHotPotatoNameAndAccessors(t *testing.T) {
	plat := testPlatform(t, 4, 4)
	hp := NewHotPotato(plat, 70, WithRotationInterval(1e-3), WithHeadroom(2))
	if hp.Name() != "hotpotato" {
		t.Errorf("name = %q", hp.Name())
	}
	if hp.Tau() != 1e-3 {
		t.Errorf("tau = %v", hp.Tau())
	}
	if !hp.Rotating() {
		t.Error("rotation disabled at start")
	}
}

func TestHotPotatoPlacesColdThreadInnermost(t *testing.T) {
	// A single cool thread must land in the lowest-AMD ring — the best
	// performance spot (Algorithm 2 line 2).
	plat := testPlatform(t, 4, 4)
	hp := NewHotPotato(plat, 70)
	id := sim.ThreadID{Task: 0, Thread: 0}
	st := &sim.State{
		Platform:  plat,
		CoreTemps: make([]float64, 16),
		Threads:   []sim.ThreadInfo{{ID: id, Core: -1, CPI: 1, AvgPower: 2}},
	}
	for i := range st.CoreTemps {
		st.CoreTemps[i] = 46
	}
	dec := hp.Decide(st)
	core, ok := dec.Assignment[id]
	if !ok {
		t.Fatal("thread not placed")
	}
	if plat.FP.RingOf(core) != 0 {
		t.Errorf("cool thread placed in ring %d, want innermost", plat.FP.RingOf(core))
	}
}

func TestHotPotatoRotatesAssignmentsOverTime(t *testing.T) {
	plat := testPlatform(t, 4, 4)
	hp := NewHotPotato(plat, 70, WithRotationInterval(0.5e-3))
	id := sim.ThreadID{Task: 0, Thread: 0}
	mkState := func(tm float64, core int) *sim.State {
		temps := make([]float64, 16)
		for i := range temps {
			temps[i] = 50
		}
		return &sim.State{
			Time:      tm,
			Platform:  plat,
			CoreTemps: temps,
			Threads:   []sim.ThreadInfo{{ID: id, Core: core, CPI: 1, AvgPower: 6}},
		}
	}
	dec := hp.Decide(mkState(0, -1))
	first := dec.Assignment[id]
	visited := map[int]bool{first: true}
	core := first
	for step := 1; step <= 8; step++ {
		dec = hp.Decide(mkState(float64(step)*0.5e-3, core))
		core = dec.Assignment[id]
		visited[core] = true
	}
	if len(visited) < 2 {
		t.Fatalf("thread never rotated: visited %v", visited)
	}
	// All visited cores must share the first core's ring.
	ring := plat.FP.RingOf(first)
	for c := range visited {
		if plat.FP.RingOf(c) != ring {
			t.Fatalf("rotation left the ring: core %d in ring %d, want %d", c, plat.FP.RingOf(c), ring)
		}
	}
}

func TestHotPotatoStopsRotatingCoolWorkload(t *testing.T) {
	// canneal at 16-core full load is thermally trivial: after the first
	// rebalance HotPotato should stop rotating (τ→stop, Algorithm 2 lines
	// 23–27), so migrations stay far below always-rotating levels.
	plat := testPlatform(t, 4, 4)
	b, _ := workload.ByName("canneal")
	specs, err := workload.HomogeneousFullLoad(b, 16, []int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	tasks, err := workload.Instantiate(specs)
	if err != nil {
		t.Fatal(err)
	}
	hp := NewHotPotato(plat, 70)
	res := runSim(t, plat, sim.DefaultConfig(), hp, tasks)
	// Always-rotating at τ=0.5 ms would migrate 16 threads ≈ every 0.5 ms:
	// ≈ 32k migrations per simulated second. Demand an order of magnitude
	// fewer.
	perSecond := float64(res.Migrations) / res.Makespan
	if perSecond > 8000 {
		t.Errorf("%.0f migrations/s — rotation apparently never stopped", perSecond)
	}
	if !hpStoppedOrSlow(hp) {
		t.Errorf("rotation still at initial speed: tau=%v rotating=%v", hp.Tau(), hp.Rotating())
	}
	if res.PeakTemp > 70.5 {
		t.Errorf("peak %.2f °C on a cool workload", res.PeakTemp)
	}
}

func hpStoppedOrSlow(hp *HotPotato) bool {
	return !hp.Rotating() || hp.Tau() > 0.5e-3
}

func TestHotPotatoThermallySafeOnHotWorkload(t *testing.T) {
	// blackscholes full load on 16 cores: HotPotato must keep the chip near
	// the threshold (brief DTM excursions tolerated) while clearly
	// outperforming the DVFS baseline.
	b, _ := workload.ByName("blackscholes")
	mkTasks := func() []*workload.Task {
		specs, err := workload.HomogeneousFullLoad(b, 16, []int{2, 4})
		if err != nil {
			t.Fatal(err)
		}
		tasks, err := workload.Instantiate(specs)
		if err != nil {
			t.Fatal(err)
		}
		for _, task := range tasks {
			task.WorkScale = 0.5
		}
		return tasks
	}
	platHP := testPlatform(t, 4, 4)
	resHP := runSim(t, platHP, sim.DefaultConfig(), NewHotPotato(platHP, 70), mkTasks())
	if resHP.PeakTemp > 72 {
		t.Errorf("HotPotato peak %.2f °C, want ≈≤ 70 (+DTM tolerance)", resHP.PeakTemp)
	}
	if resHP.DTMTime > 0.15*resHP.Makespan {
		t.Errorf("HotPotato spent %.1f%% of the run throttled", 100*resHP.DTMTime/resHP.Makespan)
	}
	if resHP.Migrations == 0 {
		t.Error("HotPotato never rotated a hot workload")
	}

	platPC := testPlatform(t, 4, 4)
	resPC := runSim(t, platPC, sim.DefaultConfig(), NewPCMig(70), mkTasks())
	if resHP.Makespan >= resPC.Makespan {
		t.Errorf("HotPotato (%.1f ms) not faster than PCMig (%.1f ms) on a hot workload",
			resHP.Makespan*1e3, resPC.Makespan*1e3)
	}
}

func TestHotPotatoHandlesArrivalsAndDepartures(t *testing.T) {
	// Open-system smoke test: staggered arrivals, all tasks must finish and
	// no decision may be rejected by the simulator.
	plat := testPlatform(t, 4, 4)
	b1, _ := workload.ByName("swaptions")
	b2, _ := workload.ByName("streamcluster")
	t0, _ := workload.NewTask(0, b1, 2, 0, 0.3)
	t1, _ := workload.NewTask(1, b2, 4, 5e-3, 0.3)
	t2, _ := workload.NewTask(2, b1, 2, 20e-3, 0.3)
	res := runSim(t, plat, sim.DefaultConfig(), NewHotPotato(plat, 70),
		[]*workload.Task{t0, t1, t2})
	for _, ts := range res.Tasks {
		if ts.Finish < 0 {
			t.Fatalf("task %d never finished", ts.ID)
		}
	}
}

func TestHotPotatoQueuesWhenChipFull(t *testing.T) {
	// 2×2 chip, a 4-thread task occupies everything; a later 2-thread task
	// must wait for it, then run.
	plat := testPlatform(t, 2, 2)
	b, _ := workload.ByName("dedup")
	big, _ := workload.NewTask(0, b, 4, 0, 0.2)
	small, _ := workload.NewTask(1, b, 2, 1e-3, 0.2)
	res := runSim(t, plat, sim.DefaultConfig(), NewHotPotato(plat, 70),
		[]*workload.Task{big, small})
	if res.Tasks[1].Start < res.Tasks[0].Finish-1e-3 {
		t.Errorf("second task started at %v while first finished at %v (capacity violated)",
			res.Tasks[1].Start, res.Tasks[0].Finish)
	}
}

func TestHotPotatoTightensTauUnderPressure(t *testing.T) {
	plat := testPlatform(t, 4, 4)
	hp := NewHotPotato(plat, 70)
	// Four very hot threads; nominal 10 W histories force the analytic peak
	// above the threshold in every ring, so τ must shrink.
	threads := make([]sim.ThreadInfo, 4)
	temps := make([]float64, 16)
	for i := range temps {
		temps[i] = 69.7 // near the threshold to trip the reactive path
	}
	for i := range threads {
		threads[i] = sim.ThreadInfo{
			ID: sim.ThreadID{Task: 0, Thread: i}, Core: -1,
			CPI: 1, AvgPower: 10, NominalWatts: 10,
		}
	}
	st := &sim.State{Time: 2e-3, Platform: plat, CoreTemps: temps, Threads: threads}
	before := hp.Tau()
	hp.Decide(st)
	if hp.Tau() >= before {
		t.Errorf("tau %v did not shrink under thermal pressure (was %v)", hp.Tau(), before)
	}
}

func TestHotPotatoRobustToSensorNoise(t *testing.T) {
	// Real thermal sensors err by ±1–2 K. HotPotato leans on Algorithm 1's
	// model prediction rather than raw sensor values, so moderate noise must
	// not destroy thermal safety or performance.
	b, _ := workload.ByName("blackscholes")
	run := func(noise float64) *sim.Result {
		plat := testPlatform(t, 4, 4)
		specs, err := workload.HomogeneousFullLoad(b, 16, []int{2, 4})
		if err != nil {
			t.Fatal(err)
		}
		tasks, err := workload.Instantiate(specs)
		if err != nil {
			t.Fatal(err)
		}
		for _, task := range tasks {
			task.WorkScale = 0.5
		}
		cfg := sim.DefaultConfig()
		cfg.SensorNoiseStdDev = noise
		cfg.SensorNoiseSeed = 99
		return runSim(t, plat, cfg, NewHotPotato(plat, 70), tasks)
	}
	clean := run(0)
	noisy := run(1.5)
	if noisy.PeakTemp > 72.5 {
		t.Errorf("noisy peak %.2f °C", noisy.PeakTemp)
	}
	if noisy.Makespan > clean.Makespan*1.25 {
		t.Errorf("1.5 K sensor noise cost %.0f%% makespan",
			100*(noisy.Makespan/clean.Makespan-1))
	}
}

// Property: under arbitrary arrival/departure sequences, HotPotato's
// assignment is always valid — every live thread either mapped to a unique
// in-range core or queued, and never more threads mapped than cores.
func TestPropHotPotatoAssignmentAlwaysValid(t *testing.T) {
	plat := testPlatform(t, 4, 4)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		hp := NewHotPotato(plat, 70)
		bs := workload.PARSEC()
		type liveThread struct {
			info sim.ThreadInfo
		}
		live := map[sim.ThreadID]*liveThread{}
		nextTask := 0
		now := 0.0
		for step := 0; step < 60; step++ {
			now += 0.5e-3
			// Random arrivals.
			if r.Float64() < 0.3 {
				b := bs[r.Intn(len(bs))]
				threads := 1 + r.Intn(4)
				for i := 0; i < threads; i++ {
					id := sim.ThreadID{Task: nextTask, Thread: i}
					live[id] = &liveThread{info: sim.ThreadInfo{
						ID: id, Core: -1, CPI: 1 + r.Float64()*3,
						AvgPower:     r.Float64() * 9,
						NominalWatts: b.NominalWatts, Perf: b.Perf(),
						Arrival: now,
					}}
				}
				nextTask++
			}
			// Random departures: drop a whole task.
			if r.Float64() < 0.2 && len(live) > 0 {
				var victim int = -1
				for id := range live {
					victim = id.Task
					break
				}
				for id := range live {
					if id.Task == victim {
						delete(live, id)
					}
				}
			}
			// Build state with random temperatures.
			var threads []sim.ThreadInfo
			for _, lt := range live {
				threads = append(threads, lt.info)
			}
			sort.Slice(threads, func(a, b int) bool { return less(threads[a].ID, threads[b].ID) })
			temps := make([]float64, 16)
			for i := range temps {
				temps[i] = 46 + r.Float64()*25
			}
			st := &sim.State{Time: now, Platform: plat, CoreTemps: temps, Threads: threads, TDTM: 70}
			dec := hp.Decide(st)

			// Validate.
			usedCores := map[int]bool{}
			for id, core := range dec.Assignment {
				if _, ok := live[id]; !ok {
					return false // assigned a dead thread
				}
				if core < 0 || core >= 16 {
					return false
				}
				if usedCores[core] {
					return false // two threads on one core
				}
				usedCores[core] = true
			}
			// Record where threads ended up for the next step.
			for id := range live {
				if core, ok := dec.Assignment[id]; ok {
					live[id].info.Core = core
				} else {
					live[id].info.Core = -1
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
