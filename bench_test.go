// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation (§VI), plus the ablations DESIGN.md calls out. Each
// benchmark reports the experiment's scientific metrics via b.ReportMetric,
// so `go test -bench=. -benchmem` regenerates the paper's rows:
//
//	BenchmarkFig2*          — Fig. 2 motivational traces (response ms, peak °C)
//	BenchmarkFig4a*         — Fig. 4(a) homogeneous full load (speedup %)
//	BenchmarkFig4b*         — Fig. 4(b) heterogeneous open system (speedup %)
//	BenchmarkTableI         — Table I construction (platform build cost)
//	BenchmarkOverhead*      — §VI run-time overhead (µs per decision)
//	BenchmarkAblation*      — τ sweep, migration cost, analytic-vs-brute
package hotpotato_test

import (
	"fmt"
	"runtime"
	"testing"

	hotpotato "repro"
	"repro/internal/experiments"
)

// --- Fig. 2: motivational example -----------------------------------------

func benchFig2(b *testing.B, pick func(*hotpotato.Fig2Result) *experiments.Fig2Policy) {
	for i := 0; i < b.N; i++ {
		res, err := hotpotato.Fig2(0)
		if err != nil {
			b.Fatal(err)
		}
		p := pick(res)
		b.ReportMetric(p.Response*1e3, "response_ms")
		b.ReportMetric(p.PeakTemp, "peak_C")
	}
}

func BenchmarkFig2aUnmanaged(b *testing.B) {
	benchFig2(b, func(r *hotpotato.Fig2Result) *experiments.Fig2Policy { return &r.None })
}

func BenchmarkFig2bTSP(b *testing.B) {
	benchFig2(b, func(r *hotpotato.Fig2Result) *experiments.Fig2Policy { return &r.TSP })
}

func BenchmarkFig2cRotation(b *testing.B) {
	benchFig2(b, func(r *hotpotato.Fig2Result) *experiments.Fig2Policy { return &r.Rotation })
}

// --- Fig. 4(a): homogeneous full load --------------------------------------

func BenchmarkFig4aHomogeneous(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := hotpotato.Fig4a(hotpotato.ExperimentOptions{})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(experiments.Fig4aAverageSpeedup(rows), "avg_speedup_%")
		for _, r := range rows {
			if r.Benchmark == "canneal" {
				b.ReportMetric(r.SpeedupPercent, "canneal_speedup_%")
			}
		}
	}
}

// --- Fig. 4(b): heterogeneous open system ----------------------------------

func BenchmarkFig4bHeterogeneous(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := hotpotato.Fig4b(hotpotato.ExperimentOptions{},
			experiments.DefaultFig4bRates(), 20, 12345)
		if err != nil {
			b.Fatal(err)
		}
		best := 0.0
		for _, r := range rows {
			if r.SpeedupPercent > best {
				best = r.SpeedupPercent
			}
		}
		b.ReportMetric(best, "peak_speedup_%")
	}
}

// --- Table I: platform -----------------------------------------------------

func BenchmarkTableIPlatformBuild(b *testing.B) {
	// The cost of building the full 64-core platform (floorplan, NoC,
	// caches, RC model with eigendecomposition — Algorithm 1's design-time
	// phase).
	for i := 0; i < b.N; i++ {
		if _, err := hotpotato.NewPlatform(8, 8); err != nil {
			b.Fatal(err)
		}
	}
}

// --- §VI run-time overhead ---------------------------------------------------

func BenchmarkOverheadAlgorithm1(b *testing.B) {
	var res *hotpotato.OverheadResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = hotpotato.Overhead()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.Alg1PerCall.Nanoseconds())/1e3, "alg1_us")
}

func BenchmarkOverheadHotPotatoDecision(b *testing.B) {
	// The paper's 23.76 µs measurement: one scheduling computation for a
	// fully loaded 64-core chip during steady rotation.
	var res *hotpotato.OverheadResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = hotpotato.Overhead()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.DecidePerCall.Nanoseconds())/1e3, "decide_us")
	b.ReportMetric(res.EpochFraction*100, "epoch_overhead_%")
	b.ReportMetric(float64(res.PlacementPerThread.Nanoseconds())/1e3, "placement_us")
}

// --- Ablations ----------------------------------------------------------------

func BenchmarkAblationTauSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.TauSweep(experiments.DefaultTaus())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].PeakTemp, "peak_fastest_tau_C")
		b.ReportMetric(rows[len(rows)-1].PeakTemp, "peak_slowest_tau_C")
	}
}

func BenchmarkAblationMigrationCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.MigrationCostSweep([]float64{1, 8},
			experiments.Options{WorkScale: 0.5})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].SpeedupPercent, "speedup_1x_%")
		b.ReportMetric(rows[1].SpeedupPercent, "speedup_8x_%")
	}
}

func BenchmarkAblationAnalyticVsBrute(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AnalyticVsBrute([]int{4})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].SpeedupFactor, "analytic_speedup_x")
	}
}

func BenchmarkFutureWorkHybrid(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Hybrid(experiments.Options{}, []string{"blackscholes"})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].Hybrid*1e3, "hybrid_makespan_ms")
		b.ReportMetric(rows[0].HybridDTM*1e3, "hybrid_dtm_ms")
	}
}

func BenchmarkAblationNoiseSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.NoiseSweep([]float64{0, 2}, experiments.Options{WorkScale: 0.5})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[1].Makespan/rows[0].Makespan, "noisy_vs_clean_ratio")
	}
}

func BenchmarkAblationHeadroomSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.HeadroomSweep([]float64{0.5, 4}, experiments.Options{WorkScale: 0.5})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rows[0].DTMEvents), "dtm_events_tight")
		b.ReportMetric(float64(rows[1].DTMEvents), "dtm_events_wide")
	}
}

func BenchmarkCharacterizeHeterogeneity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Heterogeneity()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Benchmark == "canneal" {
				b.ReportMetric(r.PlacementGainPercent, "canneal_placement_gain_%")
			}
		}
	}
}

// --- Parallel sweep harness -------------------------------------------------

// BenchmarkParallelSweep measures the worker-pool fan-out of the experiment
// harness on a fixed multi-seed Fig. 4(b) sweep (2 seeds × 2 rates × 2
// schedulers = 8 independent simulation cells). On an N-core machine the
// workers=N variant should approach N× the workers=1 throughput; the rows
// are bit-identical at every worker count (TestWorkerCountInvariance).
func BenchmarkParallelSweep(b *testing.B) {
	counts := []int{1, 2, runtime.GOMAXPROCS(0)}
	if counts[2] <= 2 {
		counts = counts[:2] // avoid a duplicate sub-benchmark on small hosts
	}
	for _, w := range counts {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			opts := hotpotato.ExperimentOptions{GridEdge: 4, WorkScale: 0.3, Workers: w}
			for i := 0; i < b.N; i++ {
				rows, err := experiments.Fig4bMultiSeed(opts, []float64{100, 200}, 6, []int64{1, 2})
				if err != nil {
					b.Fatal(err)
				}
				if len(rows) != 2 {
					b.Fatalf("rows = %d", len(rows))
				}
			}
		})
	}
}

func BenchmarkBaselinesLadder(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Baselines(experiments.Options{WorkScale: 0.5}, "x264")
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Policy == "hotpotato" {
				b.ReportMetric(r.Makespan*1e3, "hotpotato_ms")
			}
		}
	}
}
