package experiments

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Fig4aRow is one benchmark of the homogeneous full-load comparison.
type Fig4aRow struct {
	Benchmark          string
	HotPotatoMakespan  float64 // seconds
	PCMigMakespan      float64
	NormalizedMakespan float64 // HotPotato / PCMig (the paper's Fig. 4a y-axis)
	SpeedupPercent     float64 // (PCMig − HotPotato) / PCMig × 100
	HotPotatoPeak      float64 // °C
	PCMigPeak          float64
	HotPotatoEnergy    float64 // J (core energy over the whole run)
	PCMigEnergy        float64
}

// Fig4a reproduces the homogeneous full-load evaluation: the chip is fully
// loaded with vari-sized (2/4/8-thread) instances of one benchmark, all
// arriving at t = 0 (a closed system), and the makespans of HotPotato and
// PCMig are compared. The 8 benchmarks × 2 schedulers = 16 cells fan out
// over Options.Workers goroutines; rows come back in Fig. 4(a) benchmark
// order regardless of the worker count.
func Fig4a(opts Options) ([]Fig4aRow, error) {
	opts = opts.withDefaults()
	total := opts.GridEdge * opts.GridEdge
	bs := workload.PARSEC()
	specsPer := make([][]workload.Spec, len(bs))
	for i, b := range bs {
		specs, err := workload.HomogeneousFullLoad(b, total, []int{2, 4, 8})
		if err != nil {
			return nil, err
		}
		specsPer[i] = specs
	}
	pair := comparisonPair(opts)
	results := make([]*sim.Result, 2*len(bs))
	err := forEach(opts.workers(), len(results), func(i int) error {
		res, err := runWorkload(opts, pair[i%2], specsPer[i/2], sim.DefaultConfig())
		if err != nil {
			return fmt.Errorf("experiments: fig4a %s: %w", bs[i/2].Name, err)
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	rows := make([]Fig4aRow, len(bs))
	for i, b := range bs {
		hp, pc := results[2*i], results[2*i+1]
		rows[i] = Fig4aRow{
			Benchmark:          b.Name,
			HotPotatoMakespan:  hp.Makespan,
			PCMigMakespan:      pc.Makespan,
			NormalizedMakespan: hp.Makespan / pc.Makespan,
			SpeedupPercent:     (pc.Makespan - hp.Makespan) / pc.Makespan * 100,
			HotPotatoPeak:      hp.PeakTemp,
			PCMigPeak:          pc.PeakTemp,
			HotPotatoEnergy:    hp.EnergyJ,
			PCMigEnergy:        pc.EnergyJ,
		}
	}
	return rows, nil
}

// Fig4aAverageSpeedup returns the mean speedup across rows (the paper's
// headline 10.72%).
func Fig4aAverageSpeedup(rows []Fig4aRow) float64 {
	if len(rows) == 0 {
		return 0
	}
	var sum float64
	for _, r := range rows {
		sum += r.SpeedupPercent
	}
	return sum / float64(len(rows))
}

// Fig4bRow is one load level of the heterogeneous open-system comparison.
type Fig4bRow struct {
	ArrivalRate       float64 // tasks per second
	HotPotatoResponse float64 // mean response time, seconds
	PCMigResponse     float64
	SpeedupPercent    float64
}

// fig4bPairs runs the HotPotato/PCMig pair for every (seed, rate) cell of
// the heterogeneous evaluation on one bounded worker pool and returns the
// per-cell rows indexed [seed][rate]. Workload generation happens up front
// on the calling goroutine (RandomMix is deterministic per seed), so the
// pool only ever executes fully independent simulation cells.
func fig4bPairs(opts Options, rates []float64, taskCount int, seeds []int64) ([][]Fig4bRow, error) {
	cells := len(seeds) * len(rates)
	specsPer := make([][]workload.Spec, cells)
	for si, seed := range seeds {
		for ri, rate := range rates {
			specs, err := workload.RandomMix(taskCount, rate, seed)
			if err != nil {
				return nil, err
			}
			specsPer[si*len(rates)+ri] = specs
		}
	}
	pair := comparisonPair(opts)
	results := make([]*sim.Result, 2*cells)
	err := forEach(opts.workers(), len(results), func(i int) error {
		cell := i / 2
		res, err := runWorkload(opts, pair[i%2], specsPer[cell], sim.DefaultConfig())
		if err != nil {
			return fmt.Errorf("experiments: fig4b seed %d rate %.0f: %w",
				seeds[cell/len(rates)], rates[cell%len(rates)], err)
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make([][]Fig4bRow, len(seeds))
	for si := range seeds {
		out[si] = make([]Fig4bRow, len(rates))
		for ri, rate := range rates {
			cell := si*len(rates) + ri
			hp, pc := results[2*cell], results[2*cell+1]
			out[si][ri] = Fig4bRow{
				ArrivalRate:       rate,
				HotPotatoResponse: hp.AvgResponse,
				PCMigResponse:     pc.AvgResponse,
				SpeedupPercent:    (pc.AvgResponse - hp.AvgResponse) / pc.AvgResponse * 100,
			}
		}
	}
	return out, nil
}

// Fig4b reproduces the heterogeneous evaluation: a random 20-benchmark
// multi-program multi-threaded workload arrives as a Poisson process at each
// of the given rates (an open system under varying load), and mean response
// times of HotPotato and PCMig are compared. The rate × scheduler cells fan
// out over Options.Workers goroutines. Deterministic for a fixed seed at
// any worker count.
func Fig4b(opts Options, rates []float64, taskCount int, seed int64) ([]Fig4bRow, error) {
	opts = opts.withDefaults()
	if taskCount <= 0 {
		taskCount = 20
	}
	perSeed, err := fig4bPairs(opts, rates, taskCount, []int64{seed})
	if err != nil {
		return nil, err
	}
	return perSeed[0], nil
}

// DefaultFig4bRates spans under-loaded to over-loaded (tasks/second).
func DefaultFig4bRates() []float64 { return []float64{25, 50, 100, 200, 400} }

// Fig4bAggRow aggregates one load level over several workload seeds.
type Fig4bAggRow struct {
	ArrivalRate   float64
	MeanSpeedup   float64 // percent
	SpeedupCI95   float64 // ± half-width, percent
	MeanHotPotato float64 // seconds
	MeanPCMig     float64
	Seeds         int
}

// Fig4bMultiSeed repeats the heterogeneous comparison over several random
// workloads and reports mean speedup with a 95% confidence interval — the
// statistically honest form of Fig. 4(b). All seeds × rates × schedulers
// cells run on one worker pool, so the sweep saturates Options.Workers
// cores; aggregation order is fixed by (seed, rate) index, making the
// output bit-identical at any worker count.
func Fig4bMultiSeed(opts Options, rates []float64, taskCount int, seeds []int64) ([]Fig4bAggRow, error) {
	opts = opts.withDefaults()
	if len(seeds) == 0 {
		return nil, fmt.Errorf("experiments: need at least one seed")
	}
	if taskCount <= 0 {
		taskCount = 20
	}
	perSeed, err := fig4bPairs(opts, rates, taskCount, seeds)
	if err != nil {
		return nil, err
	}
	out := make([]Fig4bAggRow, 0, len(rates))
	for ri, rate := range rates {
		speedups := make([]float64, len(seeds))
		hps := make([]float64, len(seeds))
		pcs := make([]float64, len(seeds))
		for si := range seeds {
			r := perSeed[si][ri]
			speedups[si] = r.SpeedupPercent
			hps[si] = r.HotPotatoResponse
			pcs[si] = r.PCMigResponse
		}
		out = append(out, Fig4bAggRow{
			ArrivalRate:   rate,
			MeanSpeedup:   stats.Mean(speedups),
			SpeedupCI95:   stats.ConfidenceInterval95(speedups),
			MeanHotPotato: stats.Mean(hps),
			MeanPCMig:     stats.Mean(pcs),
			Seeds:         len(seeds),
		})
	}
	return out, nil
}
