package sim

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"repro/internal/obs"
	"repro/internal/perf"
	"repro/internal/power"
	"repro/internal/workload"
)

// Config controls one simulation run.
type Config struct {
	// TimeSlice is the integration/accounting step (seconds).
	TimeSlice float64 `json:"time_slice"`
	// SchedulerEpoch is the default scheduler cadence when a Decision leaves
	// NextInvoke at zero (paper §VI: 0.5 ms rotation epochs).
	SchedulerEpoch float64 `json:"scheduler_epoch"`
	// TDTM is the DTM trip temperature in °C (paper §VI: 70).
	TDTM float64 `json:"tdtm"`
	// DTMEnabled engages the hardware thermal protection. The motivational
	// Fig. 2(a) trace runs with it disabled to expose the violation.
	DTMEnabled bool `json:"dtm_enabled"`
	// DTMPerCore throttles only the cores above the threshold instead of
	// crashing the whole chip's frequency (the paper describes chip-wide
	// DTM, the default; modern parts often throttle per core).
	DTMPerCore bool `json:"dtm_per_core"`
	// DTMThrottleFreq is the chip-wide frequency DTM crashes to (Hz).
	DTMThrottleFreq float64 `json:"dtm_throttle_freq"`
	// DTMHysteresis is how far below TDTM the chip must cool before DTM
	// releases (K).
	DTMHysteresis float64 `json:"dtm_hysteresis"`
	// MaxTime aborts runaway simulations (seconds of simulated time).
	MaxTime float64 `json:"max_time"`
	// HistoryWindow is the per-thread power history span (paper §V: 10 ms).
	HistoryWindow float64 `json:"history_window"`
	// SensorNoiseStdDev injects zero-mean Gaussian error (K) into the core
	// temperatures the *scheduler* observes, modelling real thermal-sensor
	// inaccuracy. The physics and the hardware DTM see true temperatures.
	// Zero disables the noise.
	SensorNoiseStdDev float64 `json:"sensor_noise_std_dev,omitempty"`
	// SensorNoiseSeed makes the injected noise reproducible.
	SensorNoiseSeed int64 `json:"sensor_noise_seed,omitempty"`
	// NoCContention enables the load-dependent memory latency model: the
	// chip's aggregate LLC access rate drives an M/M/1 queueing factor on
	// every access (interval-simulation style, one damped fixed-point
	// iteration per slice). Off by default — the paper's evaluation regime
	// is thermally, not bandwidth, limited.
	NoCContention bool `json:"noc_contention,omitempty"`
}

// DefaultConfig returns the evaluation configuration of §VI.
func DefaultConfig() Config {
	return Config{
		TimeSlice:       0.1e-3,
		SchedulerEpoch:  0.5e-3,
		TDTM:            70,
		DTMEnabled:      true,
		DTMThrottleFreq: 1.0e9,
		DTMHysteresis:   2,
		MaxTime:         30,
		HistoryWindow:   power.DefaultWindow,
	}
}

// Validate checks the configuration and reports every violated constraint at
// once (errors.Join), so a declarative caller can fix all fields in one pass.
func (c Config) Validate() error {
	var errs []error
	if c.TimeSlice <= 0 {
		errs = append(errs, fmt.Errorf("sim: TimeSlice must be positive, got %g", c.TimeSlice))
	} else if c.SchedulerEpoch < c.TimeSlice {
		errs = append(errs, fmt.Errorf("sim: SchedulerEpoch %g below TimeSlice %g", c.SchedulerEpoch, c.TimeSlice))
	}
	if c.TDTM <= 0 {
		errs = append(errs, fmt.Errorf("sim: TDTM must be positive, got %g", c.TDTM))
	}
	if c.DTMThrottleFreq <= 0 {
		errs = append(errs, fmt.Errorf("sim: DTM throttle frequency must be positive, got %g", c.DTMThrottleFreq))
	}
	if c.DTMHysteresis < 0 {
		errs = append(errs, fmt.Errorf("sim: DTM hysteresis must be non-negative, got %g", c.DTMHysteresis))
	}
	if c.MaxTime <= 0 {
		errs = append(errs, fmt.Errorf("sim: MaxTime must be positive, got %g", c.MaxTime))
	}
	if c.HistoryWindow <= 0 {
		errs = append(errs, fmt.Errorf("sim: HistoryWindow must be positive, got %g", c.HistoryWindow))
	}
	if c.SensorNoiseStdDev < 0 {
		errs = append(errs, fmt.Errorf("sim: sensor noise must be non-negative, got %g", c.SensorNoiseStdDev))
	}
	return errors.Join(errs...)
}

// ErrTimeout reports that the simulation hit Config.MaxTime before all tasks
// finished.
var ErrTimeout = errors.New("sim: simulation exceeded MaxTime")

// ErrCanceled reports that a RunContext was cancelled before all tasks
// finished. The partial Result accompanying it is valid up to the moment of
// cancellation.
var ErrCanceled = errors.New("sim: run canceled")

// TaskStat records per-task outcome.
type TaskStat struct {
	ID        int
	Benchmark string
	Threads   int
	Arrival   float64
	Start     float64 // first instruction executed; -1 if never started
	Finish    float64 // completion time; -1 if unfinished at timeout
	Response  float64 // Finish − Arrival; NaN if unfinished
}

// taskStatJSON is the wire form of TaskStat. JSON has no NaN, so the
// unfinished-task sentinel Response=NaN travels as null.
type taskStatJSON struct {
	ID        int      `json:"id"`
	Benchmark string   `json:"benchmark"`
	Threads   int      `json:"threads"`
	Arrival   float64  `json:"arrival"`
	Start     float64  `json:"start"`
	Finish    float64  `json:"finish"`
	Response  *float64 `json:"response"`
}

// MarshalJSON implements json.Marshaler; a NaN Response becomes null.
func (t TaskStat) MarshalJSON() ([]byte, error) {
	j := taskStatJSON{
		ID: t.ID, Benchmark: t.Benchmark, Threads: t.Threads,
		Arrival: t.Arrival, Start: t.Start, Finish: t.Finish,
	}
	if !math.IsNaN(t.Response) && !math.IsInf(t.Response, 0) {
		j.Response = &t.Response
	}
	return json.Marshal(j)
}

// UnmarshalJSON implements json.Unmarshaler (inverse of MarshalJSON).
func (t *TaskStat) UnmarshalJSON(b []byte) error {
	var j taskStatJSON
	if err := json.Unmarshal(b, &j); err != nil {
		return err
	}
	*t = TaskStat{
		ID: j.ID, Benchmark: j.Benchmark, Threads: j.Threads,
		Arrival: j.Arrival, Start: j.Start, Finish: j.Finish,
		Response: math.NaN(),
	}
	if j.Response != nil {
		t.Response = *j.Response
	}
	return nil
}

// Result is the outcome of a run.
type Result struct {
	Scheduler     string
	SimulatedTime float64
	Makespan      float64 // latest task finish time
	AvgResponse   float64
	MaxResponse   float64
	// AvgWait is the mean queueing delay (first execution − arrival) of
	// finished tasks — the open-system congestion signal of Fig. 4(b).
	AvgWait              float64
	Tasks                []TaskStat
	PeakTemp             float64 // hottest core temperature ever observed
	DTMTime              float64 // seconds spent throttled by DTM
	DTMEvents            int
	Migrations           int
	EnergyJ              float64 // core energy
	SchedulerInvocations int
	SchedulerHostTime    time.Duration // wall-clock spent inside Decide
}

// resultJSON is the wire form of Result. PeakTemp starts at −Inf and stays
// there if a run is cancelled before its first slice, so it travels as a
// nullable field; SchedulerHostTime is explicit nanoseconds.
type resultJSON struct {
	Scheduler            string     `json:"scheduler"`
	SimulatedTime        float64    `json:"simulated_time"`
	Makespan             float64    `json:"makespan"`
	AvgResponse          float64    `json:"avg_response"`
	MaxResponse          float64    `json:"max_response"`
	AvgWait              float64    `json:"avg_wait"`
	Tasks                []TaskStat `json:"tasks"`
	PeakTemp             *float64   `json:"peak_temp"`
	DTMTime              float64    `json:"dtm_time"`
	DTMEvents            int        `json:"dtm_events"`
	Migrations           int        `json:"migrations"`
	EnergyJ              float64    `json:"energy_j"`
	SchedulerInvocations int        `json:"scheduler_invocations"`
	SchedulerHostTimeNS  int64      `json:"scheduler_host_time_ns"`
}

// MarshalJSON implements json.Marshaler; non-finite PeakTemp becomes null.
func (r Result) MarshalJSON() ([]byte, error) {
	j := resultJSON{
		Scheduler: r.Scheduler, SimulatedTime: r.SimulatedTime,
		Makespan: r.Makespan, AvgResponse: r.AvgResponse,
		MaxResponse: r.MaxResponse, AvgWait: r.AvgWait, Tasks: r.Tasks,
		DTMTime: r.DTMTime, DTMEvents: r.DTMEvents, Migrations: r.Migrations,
		EnergyJ: r.EnergyJ, SchedulerInvocations: r.SchedulerInvocations,
		SchedulerHostTimeNS: r.SchedulerHostTime.Nanoseconds(),
	}
	if !math.IsNaN(r.PeakTemp) && !math.IsInf(r.PeakTemp, 0) {
		j.PeakTemp = &r.PeakTemp
	}
	return json.Marshal(j)
}

// UnmarshalJSON implements json.Unmarshaler (inverse of MarshalJSON).
func (r *Result) UnmarshalJSON(b []byte) error {
	var j resultJSON
	if err := json.Unmarshal(b, &j); err != nil {
		return err
	}
	*r = Result{
		Scheduler: j.Scheduler, SimulatedTime: j.SimulatedTime,
		Makespan: j.Makespan, AvgResponse: j.AvgResponse,
		MaxResponse: j.MaxResponse, AvgWait: j.AvgWait, Tasks: j.Tasks,
		PeakTemp: math.Inf(-1), DTMTime: j.DTMTime, DTMEvents: j.DTMEvents,
		Migrations: j.Migrations, EnergyJ: j.EnergyJ,
		SchedulerInvocations: j.SchedulerInvocations,
		SchedulerHostTime:    time.Duration(j.SchedulerHostTimeNS),
	}
	if j.PeakTemp != nil {
		r.PeakTemp = *j.PeakTemp
	}
	return nil
}

// TraceFunc observes every simulation slice (for Fig. 2 style traces).
type TraceFunc func(t float64, coreTemps, coreWatts, coreFreq []float64)

// Simulator runs one workload under one scheduler on one platform.
type Simulator struct {
	plat        *Platform
	cfg         Config
	sched       Scheduler
	tasks       []*workload.Task
	trace       TraceFunc
	epochTracer obs.Tracer
}

// New prepares a simulation. Tasks may arrive at any time ≥ 0; they are
// admitted as simulated time passes their arrivals.
func New(plat *Platform, cfg Config, sched Scheduler, tasks []*workload.Task) (*Simulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if sched == nil {
		return nil, errors.New("sim: scheduler is nil")
	}
	if len(tasks) == 0 {
		return nil, errors.New("sim: no tasks")
	}
	sorted := append([]*workload.Task(nil), tasks...)
	sort.SliceStable(sorted, func(a, b int) bool {
		if sorted[a].Arrival != sorted[b].Arrival {
			return sorted[a].Arrival < sorted[b].Arrival
		}
		return sorted[a].ID < sorted[b].ID
	})
	return &Simulator{plat: plat, cfg: cfg, sched: sched, tasks: sorted}, nil
}

// SetTrace installs a per-slice observer. Must be called before Run.
func (s *Simulator) SetTrace(fn TraceFunc) { s.trace = fn }

// SetEpochTracer installs a per-epoch structured-event observer (one
// obs.EpochEvent per scheduler invocation). Must be called before Run. A nil
// tracer keeps the hot loop untouched: the only cost is a nil-check on the
// epoch cadence, never on the slice path.
func (s *Simulator) SetEpochTracer(t obs.Tracer) { s.epochTracer = t }

// threadRt is the runtime state of one thread.
type threadRt struct {
	task    *workload.Task
	idx     int
	id      ThreadID
	core    int // -1 while queued
	penalty float64
	history *power.History
}

// Run executes the simulation to completion (all tasks done) and returns the
// collected metrics. If MaxTime is hit first, the partial Result is returned
// together with ErrTimeout.
func (s *Simulator) Run() (*Result, error) {
	return s.RunContext(context.Background())
}

// RunContext is Run with cooperative cancellation. The context is polled once
// per scheduler invocation — i.e. at most one scheduler epoch of simulated
// progress elapses after ctx is cancelled — and a cancelled run returns its
// partial Result together with an error wrapping ErrCanceled. A nil ctx
// behaves like context.Background(). The overhead for an uncancellable
// context is one Err() call per epoch, invisible next to a Decide call.
func (s *Simulator) RunContext(ctx context.Context) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	n := s.plat.NumCores()
	dt := s.cfg.TimeSlice
	stepper, err := s.plat.Thermal.NewStepper(dt)
	if err != nil {
		return nil, err
	}

	// Span instrumentation: one child span per scheduler epoch under the
	// context's current span, covering the Decide call and the slice batch
	// until the next decision. Resolved once here — the slice loop never
	// consults the context, and a nil runSpan keeps the epoch block at a
	// single pointer test (the same contract as the epoch tracer).
	runSpan := obs.SpanFromContext(ctx)
	var epochSpan *obs.Span
	defer func() { epochSpan.End() }()

	metricRuns.Inc()
	res := &Result{Scheduler: s.sched.Name(), PeakTemp: math.Inf(-1)}
	temps := s.plat.Thermal.InitialTemps()
	freqs := make([]float64, n)
	fmax := s.plat.Power.DVFS().FMax
	for i := range freqs {
		freqs[i] = fmax
	}

	var live []*threadRt
	pendingIdx := 0
	now := 0.0
	nextSched := 0.0
	needSched := true
	dtmActive := false
	medianCore := s.plat.FP.ID(s.plat.FP.Width/2, s.plat.FP.Height/2)
	noise := rand.New(rand.NewSource(s.cfg.SensorNoiseSeed))
	contention := 1.0 // shared-resource latency factor (NoCContention)
	dtmCore := make([]bool, n)

	coreTemps := make([]float64, n)
	corePower := make([]float64, n)

	for {
		// Admit arrivals whose time has come.
		for pendingIdx < len(s.tasks) && s.tasks[pendingIdx].Arrival <= now+dt/2 {
			task := s.tasks[pendingIdx]
			pendingIdx++
			for ti := 0; ti < task.Threads; ti++ {
				h, err := power.NewHistory(s.cfg.HistoryWindow)
				if err != nil {
					return nil, err
				}
				live = append(live, &threadRt{
					task: task, idx: ti,
					id:      ThreadID{Task: task.ID, Thread: ti},
					core:    -1,
					history: h,
				})
			}
			needSched = true
		}

		// Termination: nothing left anywhere.
		if len(live) == 0 && pendingIdx >= len(s.tasks) {
			break
		}
		if now >= s.cfg.MaxTime {
			s.finalize(res, now)
			return res, fmt.Errorf("%w after %.3f s with %d live threads", ErrTimeout, now, len(live))
		}

		// Scheduler invocation. The cancellation poll lives here, on the
		// epoch cadence, so aborting costs at most one epoch of simulated
		// progress without touching the per-slice hot path.
		if needSched || now >= nextSched-dt/2 {
			if err := ctx.Err(); err != nil {
				s.finalize(res, now)
				return res, fmt.Errorf("%w after %.3f s: %v", ErrCanceled, now, err)
			}
			copy(coreTemps, temps[:n])
			if s.cfg.SensorNoiseStdDev > 0 {
				for i := range coreTemps {
					coreTemps[i] += noise.NormFloat64() * s.cfg.SensorNoiseStdDev
				}
			}
			st := s.buildState(now, coreTemps, live, dtmActive, medianCore)
			begin := time.Now()
			dec := s.sched.Decide(st)
			wall := time.Since(begin)
			res.SchedulerHostTime += wall
			res.SchedulerInvocations++
			metricEpochs.Inc()
			migBefore := res.Migrations
			if err := s.apply(dec, live, freqs, res); err != nil {
				return nil, err
			}
			if s.epochTracer != nil {
				s.recordEpoch(dec, res, now, temps, freqs, corePower, res.Migrations-migBefore, wall)
			}
			if runSpan != nil {
				// The previous epoch's span absorbed the slice batch that just
				// executed; close it and open the next. One span per epoch,
				// never per slice.
				epochSpan.End()
				epochSpan = runSpan.StartChild("epoch")
				epochSpan.SetAttr("epoch", res.SchedulerInvocations-1)
				epochSpan.SetAttr("sim_time_s", now)
				epochSpan.SetAttr("decide_ns", wall.Nanoseconds())
				epochSpan.SetAttr("migrations", res.Migrations-migBefore)
			}
			interval := dec.NextInvoke
			if interval <= 0 {
				interval = s.cfg.SchedulerEpoch
			}
			if interval < dt {
				interval = dt
			}
			nextSched = now + interval
			needSched = false
		}

		// Hardware DTM: chip-wide (paper) or per-core.
		maxT := s.plat.Thermal.MaxCoreTemp(temps)
		if s.cfg.DTMEnabled {
			if s.cfg.DTMPerCore {
				anyActive := false
				for c := 0; c < n; c++ {
					if !dtmCore[c] && temps[c] > s.cfg.TDTM {
						dtmCore[c] = true
						res.DTMEvents++
						metricDTMEvents.Inc()
					} else if dtmCore[c] && temps[c] < s.cfg.TDTM-s.cfg.DTMHysteresis {
						dtmCore[c] = false
					}
					anyActive = anyActive || dtmCore[c]
				}
				dtmActive = anyActive
			} else if !dtmActive && maxT > s.cfg.TDTM {
				dtmActive = true
				res.DTMEvents++
				metricDTMEvents.Inc()
			} else if dtmActive && maxT < s.cfg.TDTM-s.cfg.DTMHysteresis {
				dtmActive = false
			}
		}

		// Execute one slice.
		for i := range corePower {
			corePower[i] = s.plat.Power.IdleWatts
		}
		var llcAccesses float64
		for _, th := range live {
			if th.core < 0 {
				// Queued: no core, no attributable power; the history keeps
				// reflecting the thread's last execution.
				continue
			}
			f := freqs[th.core]
			throttled := dtmActive
			if s.cfg.DTMPerCore {
				throttled = dtmCore[th.core]
			}
			if throttled && f > s.cfg.DTMThrottleFreq {
				f = s.cfg.DTMThrottleFreq
			}
			w, instr := s.executeSlice(th, f, dt, now, contention)
			corePower[th.core] = w
			llcAccesses += instr * th.task.Bench.MPKI / 1000
		}
		if s.cfg.NoCContention {
			// Damped fixed point: utilization of the n LLC banks, each
			// serving one access per bank-access time.
			rho := llcAccesses / dt * s.plat.Perf.BankAccess / float64(n)
			target := perf.ContentionFactor(rho)
			contention = 0.5*contention + 0.5*target
		}

		stepper.StepTo(temps, temps, corePower)
		now += dt
		metricSlices.Inc()

		if mc := s.plat.Thermal.MaxCoreTemp(temps); mc > res.PeakTemp {
			res.PeakTemp = mc
		}
		if dtmActive {
			res.DTMTime += dt
		}
		for _, w := range corePower {
			res.EnergyJ += w * dt
		}

		// Task completions.
		remaining := live[:0]
		for _, th := range live {
			if th.task.Done() {
				if th.task.FinishTime < 0 {
					th.task.FinishTime = now
				}
				needSched = true
				continue
			}
			remaining = append(remaining, th)
		}
		live = remaining

		if s.trace != nil {
			copy(coreTemps, temps[:n])
			effFreqs := append([]float64(nil), freqs...)
			for i := range effFreqs {
				throttled := dtmActive
				if s.cfg.DTMPerCore {
					throttled = dtmCore[i]
				}
				if throttled && effFreqs[i] > s.cfg.DTMThrottleFreq {
					effFreqs[i] = s.cfg.DTMThrottleFreq
				}
			}
			s.trace(now, coreTemps, append([]float64(nil), corePower...), effFreqs)
		}
	}

	s.finalize(res, now)
	obs.LoggerFrom(ctx).Debug("sim: run complete",
		"scheduler", res.Scheduler,
		"simulated_s", res.SimulatedTime,
		"epochs", res.SchedulerInvocations,
		"peak_temp_c", res.PeakTemp,
		"migrations", res.Migrations,
		"decide_host_ns", res.SchedulerHostTime.Nanoseconds(),
	)
	return res, nil
}

// executeSlice advances thread th on its core at frequency f for dt seconds
// and returns the core's average power over the slice along with the
// instructions retired.
func (s *Simulator) executeSlice(th *threadRt, f, dt, now, contention float64) (watts, instructions float64) {
	pm := s.plat.Power
	params := th.task.Bench.Perf()
	tpi := s.plat.Perf.TimePerInstrContended(params, th.core, f, contention)
	busyF, stallF := s.plat.Perf.FractionsContended(params, th.core, f, contention)

	left := dt
	var energy float64 // watt-seconds over the slice

	// Migration penalty stalls the thread first.
	if th.penalty > 0 {
		p := math.Min(th.penalty, left)
		th.penalty -= p
		left -= p
		energy += p * pm.StallWatts
	}

	execWatts := pm.IntervalPower(th.task.Bench.NominalWatts, f, busyF, stallF)
	for guard := 0; left > 1e-12 && th.task.State(th.idx) == workload.ThreadRunning; guard++ {
		if guard > 64 {
			panic("sim: thread made no progress in a slice")
		}
		used := th.task.Execute(th.idx, left/tpi)
		if used <= 0 {
			break
		}
		if th.task.StartTime < 0 {
			th.task.StartTime = now
		}
		instructions += used
		t := used * tpi
		energy += t * execWatts
		left -= t
	}
	energy += left * pm.IdleWatts

	avg := energy / dt
	th.history.Record(dt, avg)
	return avg, instructions
}

// recordEpoch builds and delivers one obs.EpochEvent. Called only when a
// tracer is installed, on the epoch cadence — the copies and the map
// allocation here never touch the per-slice hot path.
func (s *Simulator) recordEpoch(dec Decision, res *Result, now float64, temps, freqs, corePower []float64, migrations int, wall time.Duration) {
	n := s.plat.NumCores()
	peak := s.plat.Thermal.MaxCoreTemp(temps)
	mapping := make(map[string]int, len(dec.Assignment))
	for id, core := range dec.Assignment {
		mapping[id.String()] = core
	}
	s.epochTracer.RecordEpoch(obs.EpochEvent{
		Epoch:        res.SchedulerInvocations - 1,
		Time:         now,
		Mapping:      mapping,
		Freqs:        append([]float64(nil), freqs...),
		CoreTemps:    append([]float64(nil), temps[:n]...),
		CorePower:    append([]float64(nil), corePower...),
		PeakTemp:     peak,
		AmbientDelta: peak - s.plat.Thermal.Ambient(),
		Migrations:   migrations,
		WallNS:       wall.Nanoseconds(),
	})
}

// buildState snapshots the system for the scheduler.
func (s *Simulator) buildState(now float64, coreTemps []float64, live []*threadRt, dtm bool, medianCore int) *State {
	fmax := s.plat.Power.DVFS().FMax
	infos := make([]ThreadInfo, len(live))
	for i, th := range live {
		core := th.core
		cpiCore := core
		if cpiCore < 0 {
			cpiCore = medianCore
		}
		infos[i] = ThreadInfo{
			ID:             th.id,
			Benchmark:      th.task.Bench.Name,
			Perf:           th.task.Bench.Perf(),
			NominalWatts:   th.task.Bench.NominalWatts,
			State:          th.task.State(th.idx),
			Core:           core,
			AvgPower:       th.history.Average(th.task.Bench.NominalWatts),
			CPI:            s.plat.Perf.EffectiveCPI(th.task.Bench.Perf(), cpiCore, fmax),
			RemainingInstr: th.task.TotalRemaining(),
			Arrival:        th.task.Arrival,
		}
	}
	tempsCopy := append([]float64(nil), coreTemps...)
	return &State{
		Time:      now,
		CoreTemps: tempsCopy,
		Threads:   infos,
		Platform:  s.plat,
		TDTM:      s.cfg.TDTM,
		DTMActive: dtm,
	}
}

// apply validates and installs a scheduler decision.
func (s *Simulator) apply(dec Decision, live []*threadRt, freqs []float64, res *Result) error {
	n := s.plat.NumCores()
	liveSet := make(map[ThreadID]*threadRt, len(live))
	for _, th := range live {
		liveSet[th.id] = th
	}
	coreUsed := make(map[int]ThreadID, len(dec.Assignment))
	for id, core := range dec.Assignment {
		if _, ok := liveSet[id]; !ok {
			return fmt.Errorf("sim: scheduler %s assigned unknown thread %v", s.sched.Name(), id)
		}
		if core < 0 || core >= n {
			return fmt.Errorf("sim: scheduler %s assigned thread %v to invalid core %d", s.sched.Name(), id, core)
		}
		if prev, clash := coreUsed[core]; clash {
			return fmt.Errorf("sim: scheduler %s assigned threads %v and %v to core %d", s.sched.Name(), prev, id, core)
		}
		coreUsed[core] = id
	}
	for _, th := range live {
		core, mapped := dec.Assignment[th.id]
		switch {
		case !mapped:
			th.core = -1
		case th.core >= 0 && th.core != core:
			th.penalty += s.plat.Caches.MigrationPenalty(th.core, core)
			res.Migrations++
			metricMigrations.Inc()
			th.core = core
		default:
			th.core = core
		}
	}
	if dec.Freq != nil {
		if len(dec.Freq) != n {
			return fmt.Errorf("sim: scheduler %s returned %d frequencies for %d cores", s.sched.Name(), len(dec.Freq), n)
		}
		d := s.plat.Power.DVFS()
		for i, f := range dec.Freq {
			freqs[i] = d.Clamp(f)
		}
	} else {
		fmax := s.plat.Power.DVFS().FMax
		for i := range freqs {
			freqs[i] = fmax
		}
	}
	return nil
}

// finalize computes the aggregate metrics.
func (s *Simulator) finalize(res *Result, now float64) {
	if !math.IsInf(res.PeakTemp, 0) && !math.IsNaN(res.PeakTemp) {
		metricPeakTemp.Set(res.PeakTemp)
		metricPeakTempDist.Observe(res.PeakTemp)
	}
	res.SimulatedTime = now
	var sum, waitSum float64
	finished := 0
	for _, task := range s.tasks {
		stat := TaskStat{
			ID:        task.ID,
			Benchmark: task.Bench.Name,
			Threads:   task.Threads,
			Arrival:   task.Arrival,
			Start:     task.StartTime,
			Finish:    task.FinishTime,
			Response:  task.ResponseTime(),
		}
		res.Tasks = append(res.Tasks, stat)
		if task.FinishTime >= 0 {
			finished++
			sum += stat.Response
			if stat.Start >= 0 {
				waitSum += stat.Start - stat.Arrival
			}
			if stat.Finish > res.Makespan {
				res.Makespan = stat.Finish
			}
			if stat.Response > res.MaxResponse {
				res.MaxResponse = stat.Response
			}
		}
	}
	if finished > 0 {
		res.AvgResponse = sum / float64(finished)
		res.AvgWait = waitSum / float64(finished)
	}
}

// String renders a one-paragraph human-readable summary of the run.
func (r *Result) String() string {
	return fmt.Sprintf(
		"%s: %d tasks, makespan %.1f ms, avg response %.1f ms (wait %.1f ms), "+
			"peak %.2f °C, DTM %d events/%.1f ms, %d migrations, %.2f J",
		r.Scheduler, len(r.Tasks), r.Makespan*1e3, r.AvgResponse*1e3, r.AvgWait*1e3,
		r.PeakTemp, r.DTMEvents, r.DTMTime*1e3, r.Migrations, r.EnergyJ)
}
