package matrix

import (
	"fmt"
	"math"
)

// Vector helpers. The thermal code passes temperatures and powers around as
// plain []float64; these functions keep that code terse without allocating a
// wrapper type.

// VecAdd returns a + b.
func VecAdd(a, b []float64) []float64 {
	checkLen(a, b)
	c := make([]float64, len(a))
	for i := range a {
		c[i] = a[i] + b[i]
	}
	return c
}

// VecSub returns a - b.
func VecSub(a, b []float64) []float64 {
	checkLen(a, b)
	c := make([]float64, len(a))
	for i := range a {
		c[i] = a[i] - b[i]
	}
	return c
}

// VecScale returns s*a.
func VecScale(s float64, a []float64) []float64 {
	c := make([]float64, len(a))
	for i := range a {
		c[i] = s * a[i]
	}
	return c
}

// VecSubTo computes dst = a − b without allocating. dst may alias a or b.
func VecSubTo(dst, a, b []float64) {
	checkLen(dst, a)
	checkLen(a, b)
	for i := range dst {
		dst[i] = a[i] - b[i]
	}
}

// VecAddTo accumulates dst += a in place.
func VecAddTo(dst, a []float64) {
	checkLen(dst, a)
	for i := range dst {
		dst[i] += a[i]
	}
}

// Dot returns the inner product of a and b.
func Dot(a, b []float64) float64 {
	checkLen(a, b)
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// VecMax returns the largest element of a. It panics on an empty slice.
func VecMax(a []float64) float64 {
	if len(a) == 0 {
		panic("matrix: VecMax of empty vector")
	}
	max := a[0]
	for _, v := range a[1:] {
		if v > max {
			max = v
		}
	}
	return max
}

// VecMaxIndex returns the index of the largest element of a.
func VecMaxIndex(a []float64) int {
	if len(a) == 0 {
		panic("matrix: VecMaxIndex of empty vector")
	}
	idx := 0
	for i, v := range a {
		if v > a[idx] {
			idx = i
		}
	}
	return idx
}

// VecNormInf returns the infinity norm of a.
func VecNormInf(a []float64) float64 {
	var max float64
	for _, v := range a {
		if x := math.Abs(v); x > max {
			max = x
		}
	}
	return max
}

// VecNorm2 returns the Euclidean norm of a.
func VecNorm2(a []float64) float64 {
	var s float64
	for _, v := range a {
		s += v * v
	}
	return math.Sqrt(s)
}

// VecApproxEqual reports whether a and b agree elementwise within tol.
func VecApproxEqual(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}

// Constant returns a length-n vector with every element v.
func Constant(n int, v float64) []float64 {
	c := make([]float64, n)
	for i := range c {
		c[i] = v
	}
	return c
}

func checkLen(a, b []float64) {
	if len(a) != len(b) {
		panic(fmt.Sprintf("matrix: vector length mismatch %d vs %d", len(a), len(b)))
	}
}
