// Package power models per-core power consumption of the simulated S-NUCA
// many-core: a McPAT-like split of dynamic and leakage power under DVFS, the
// paper's fixed idle power (0.3 W, §VI), reduced power while memory-stalled,
// and the sliding power history (last 10 ms) that Algorithm 1 consumes.
package power

import (
	"encoding/json"
	"fmt"
	"math"
)

// DVFS describes the discrete voltage/frequency ladder. The paper's PCMig
// baseline steps frequency in 100 MHz increments (§VI); voltage follows an
// affine map between (FMin, VMin) and (FMax, VMax).
type DVFS struct {
	FMin  float64 `json:"fmin"`  // Hz
	FMax  float64 `json:"fmax"`  // Hz
	FStep float64 `json:"fstep"` // Hz
	VMin  float64 `json:"vmin"`  // volts at FMin
	VMax  float64 `json:"vmax"`  // volts at FMax
}

// DefaultDVFS returns the ladder used throughout the evaluation:
// 1.0–4.0 GHz in 100 MHz steps, 0.70–1.00 V.
func DefaultDVFS() DVFS {
	return DVFS{FMin: 1.0e9, FMax: 4.0e9, FStep: 0.1e9, VMin: 0.70, VMax: 1.00}
}

// Validate checks the ladder for consistency.
func (d DVFS) Validate() error {
	switch {
	case d.FMin <= 0 || d.FMax <= 0 || d.FStep <= 0:
		return fmt.Errorf("power: frequencies must be positive (fmin=%g fmax=%g step=%g)", d.FMin, d.FMax, d.FStep)
	case d.FMin > d.FMax:
		return fmt.Errorf("power: fmin %g above fmax %g", d.FMin, d.FMax)
	case d.VMin <= 0 || d.VMax < d.VMin:
		return fmt.Errorf("power: invalid voltage range [%g, %g]", d.VMin, d.VMax)
	}
	return nil
}

// Levels returns the available frequencies, ascending.
func (d DVFS) Levels() []float64 {
	var out []float64
	for f := d.FMin; f <= d.FMax+d.FStep/2; f += d.FStep {
		out = append(out, math.Min(f, d.FMax))
	}
	return out
}

// Clamp snaps f onto the ladder: the highest level not exceeding f, never
// below FMin.
func (d DVFS) Clamp(f float64) float64 {
	if f <= d.FMin {
		return d.FMin
	}
	if f >= d.FMax {
		return d.FMax
	}
	steps := math.Floor((f - d.FMin) / d.FStep)
	return d.FMin + steps*d.FStep
}

// StepDown returns the next level below f, or FMin if already at the bottom.
func (d DVFS) StepDown(f float64) float64 {
	return d.Clamp(f - d.FStep)
}

// StepUp returns the next level above f, capped at FMax.
func (d DVFS) StepUp(f float64) float64 {
	nf := d.Clamp(f) + d.FStep
	if nf > d.FMax {
		return d.FMax
	}
	return nf
}

// VoltageAt returns the supply voltage at frequency f (affine interpolation,
// clamped to the ladder's range).
func (d DVFS) VoltageAt(f float64) float64 {
	if f <= d.FMin {
		return d.VMin
	}
	if f >= d.FMax {
		return d.VMax
	}
	frac := (f - d.FMin) / (d.FMax - d.FMin)
	return d.VMin + frac*(d.VMax-d.VMin)
}

// Model converts a thread's activity into core power.
type Model struct {
	dvfs DVFS

	// IdleWatts is the power of a core with no thread or a thread blocked at
	// a barrier (paper §VI: 0.3 W).
	IdleWatts float64
	// StallWatts is the power while the pipeline is stalled on a memory
	// access: clocks gate most of the core but caches and the NoC interface
	// stay active.
	StallWatts float64
	// DynFraction is the dynamic share of a benchmark's nominal power at
	// FMax; the remainder is leakage, which scales with voltage only.
	DynFraction float64
}

// DefaultModel returns the calibrated power model.
func DefaultModel() Model {
	return Model{
		dvfs:        DefaultDVFS(),
		IdleWatts:   0.3,
		StallWatts:  1.0,
		DynFraction: 0.8,
	}
}

// NewModel builds a model around a custom DVFS ladder.
func NewModel(d DVFS, idleWatts, stallWatts, dynFraction float64) (Model, error) {
	if err := d.Validate(); err != nil {
		return Model{}, err
	}
	if idleWatts < 0 || stallWatts < idleWatts {
		return Model{}, fmt.Errorf("power: need 0 ≤ idle (%g) ≤ stall (%g)", idleWatts, stallWatts)
	}
	if dynFraction < 0 || dynFraction > 1 {
		return Model{}, fmt.Errorf("power: dynamic fraction %g outside [0,1]", dynFraction)
	}
	return Model{dvfs: d, IdleWatts: idleWatts, StallWatts: stallWatts, DynFraction: dynFraction}, nil
}

// DVFS returns the model's frequency ladder.
func (m Model) DVFS() DVFS { return m.dvfs }

// modelJSON is the wire form of Model; the DVFS ladder is an unexported
// field, so (un)marshalling goes through this shadow struct.
type modelJSON struct {
	DVFS        DVFS    `json:"dvfs"`
	IdleWatts   float64 `json:"idle_watts"`
	StallWatts  float64 `json:"stall_watts"`
	DynFraction float64 `json:"dyn_fraction"`
}

// MarshalJSON implements json.Marshaler.
func (m Model) MarshalJSON() ([]byte, error) {
	return json.Marshal(modelJSON{
		DVFS: m.dvfs, IdleWatts: m.IdleWatts,
		StallWatts: m.StallWatts, DynFraction: m.DynFraction,
	})
}

// UnmarshalJSON implements json.Unmarshaler. Fields present in the document
// overlay the receiver's current values, so decoding a partial document over
// DefaultModel keeps the unspecified knobs at their defaults.
func (m *Model) UnmarshalJSON(b []byte) error {
	j := modelJSON{
		DVFS: m.dvfs, IdleWatts: m.IdleWatts,
		StallWatts: m.StallWatts, DynFraction: m.DynFraction,
	}
	if err := json.Unmarshal(b, &j); err != nil {
		return err
	}
	m.dvfs, m.IdleWatts, m.StallWatts, m.DynFraction =
		j.DVFS, j.IdleWatts, j.StallWatts, j.DynFraction
	return nil
}

// ActivePower returns the power of a core executing compute work at
// frequency f, for a benchmark whose nominal power at FMax is nominalWatts:
//
//	P(f) = dyn·nominal·(f/fmax)·(V/Vmax)² + leak·nominal·(V/Vmax)
//
// Dynamic power scales with f·V², leakage roughly with V.
func (m Model) ActivePower(nominalWatts, f float64) float64 {
	f = m.dvfs.Clamp(f)
	vr := m.dvfs.VoltageAt(f) / m.dvfs.VMax
	fr := f / m.dvfs.FMax
	dyn := m.DynFraction * nominalWatts * fr * vr * vr
	leak := (1 - m.DynFraction) * nominalWatts * vr
	return dyn + leak
}

// IntervalPower returns the average power of a core over an interval in
// which the thread spent busyFrac of the time executing, stallFrac stalled
// on memory, and the remainder idle (barrier wait or no thread). Fractions
// must sum to at most 1.
func (m Model) IntervalPower(nominalWatts, f, busyFrac, stallFrac float64) float64 {
	if busyFrac < 0 || stallFrac < 0 || busyFrac+stallFrac > 1+1e-9 {
		panic(fmt.Sprintf("power: invalid fractions busy=%g stall=%g", busyFrac, stallFrac))
	}
	idleFrac := 1 - busyFrac - stallFrac
	return busyFrac*m.ActivePower(nominalWatts, f) + stallFrac*m.StallWatts + idleFrac*m.IdleWatts
}
