package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	hotpotato "repro"
	"repro/internal/obs"
)

// batchStream serializes the NDJSON (or SSE) records of one /v1/batch
// response. Every record is flushed immediately — the whole point of the
// endpoint is that cell results arrive as they finish, not at the end.
type batchStream struct {
	mu  sync.Mutex
	w   http.ResponseWriter
	f   http.Flusher
	sse bool
}

func newBatchStream(w http.ResponseWriter, sse bool) *batchStream {
	f, _ := w.(http.Flusher)
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.Header().Set("X-Accel-Buffering", "no") // defeat proxy buffering
	return &batchStream{w: w, f: f, sse: sse}
}

// send writes one record. typ is the SSE event name; NDJSON carries the same
// discriminator inside the record's "type" field.
func (b *batchStream) send(typ string, rec any) {
	body, err := json.Marshal(rec)
	if err != nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.sse {
		fmt.Fprintf(b.w, "event: %s\ndata: %s\n\n", typ, body)
	} else {
		b.w.Write(body)
		b.w.Write([]byte("\n"))
	}
	if b.f != nil {
		b.f.Flush()
	}
}

// wantsSSE reports whether the request negotiated Server-Sent Events; the
// default (and anything ambiguous) is NDJSON.
func wantsSSE(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), "text/event-stream")
}

// handleBatch streams a sweep: it expands the SweepSpec cross-product,
// admission-checks the cell count, then executes every cell over the shared
// worker semaphore — each cell through the result cache, so repeated cells
// (and re-posted sweeps) replay instead of re-simulating. Records go out in
// completion order as NDJSON lines (or SSE events via Accept:
// text/event-stream): one "sweep" header, one "result" per cell, periodic
// "progress" heartbeats, and a terminal "summary". A client disconnect
// cancels the request context, which stops in-flight cells within one
// scheduler epoch and fails the rest immediately.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if s.closed.Load() {
		writeError(w, http.StatusServiceUnavailable, errors.New("server shutting down"))
		return
	}
	var sweep hotpotato.SweepSpec
	if err := json.NewDecoder(r.Body).Decode(&sweep); err != nil {
		metricBadRequests.Inc()
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding SweepSpec: %w", err))
		return
	}
	if err := sweep.Validate(); err != nil {
		metricBadRequests.Inc()
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if n := sweep.CellCount(); n > s.cfg.MaxSweepCells {
		metricBatchRejected.Inc()
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("sweep expands to %d cells, server limit is %d", n, s.cfg.MaxSweepCells))
		return
	}
	cells, err := sweep.Expand()
	if err != nil {
		// Unreachable after the admission check, but fail closed.
		writeError(w, http.StatusRequestEntityTooLarge, err)
		return
	}
	for i := range cells {
		if s.cfg.DefaultSolver != "" && cells[i].Spec.Platform.Thermal.Solver == "" {
			cells[i].Spec.Platform.Thermal.Solver = s.cfg.DefaultSolver
		}
	}

	// The sweep dies with the request (client disconnect) or the server
	// (shutdown force-cancel), whichever comes first — same rule as /v1/run.
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	defer context.AfterFunc(s.baseCtx, cancel)()

	s.runs.Add(1)
	defer s.runs.Done()

	metricBatchRequests.Inc()
	requestID := requestIDFrom(r.Context())
	logger := obs.LoggerFrom(r.Context())
	logger.Info("batch started", "cells", len(cells), "sse", wantsSSE(r))

	stream := newBatchStream(w, wantsSSE(r))
	began := time.Now()
	stream.send("sweep", hotpotato.SweepStarted{Type: "sweep", Total: len(cells), RequestID: requestID})

	var done atomic.Int64
	if s.cfg.BatchHeartbeat > 0 {
		tick := time.NewTicker(s.cfg.BatchHeartbeat)
		defer tick.Stop()
		hbCtx, hbStop := context.WithCancel(ctx)
		hbDone := make(chan struct{})
		// Join the heartbeat goroutine before the handler returns — a send
		// racing the server's end-of-request work on the ResponseWriter is
		// undefined behavior.
		defer func() { hbStop(); <-hbDone }()
		go func() {
			defer close(hbDone)
			for {
				select {
				case <-hbCtx.Done():
					return
				case <-tick.C:
					stream.send("progress", hotpotato.SweepProgress{
						Type: "progress", Done: int(done.Load()), Total: len(cells),
						ElapsedMS: float64(time.Since(began).Nanoseconds()) / 1e6,
					})
				}
			}
		}()
	}

	var completed, failed, canceled, cacheHits int
	sweepErr := hotpotato.ExecuteSweepCells(ctx, cells, hotpotato.SweepOptions{
		Workers: s.cfg.Workers,
		Run: func(ctx context.Context, cell hotpotato.SweepCell) (*hotpotato.Result, bool, error) {
			// ExecuteSweepCells hands us the canonical spec; its hash is the
			// cell's cache key.
			hash, err := hotpotato.SpecHash(cell.Spec)
			if err != nil {
				return nil, false, err
			}
			span := obs.SpanFromContext(ctx).StartChild("sweep_cell")
			span.SetAttr("index", fmt.Sprint(cell.Index))
			span.SetAttr("hash", hash)
			res, _, cached, err := s.cachedExecute(ctx, cell.Spec, hash)
			span.SetError(err)
			span.End()
			metricBatchCells.Inc()
			return res, cached, err
		},
	}, func(cellRes hotpotato.SweepCellResult) {
		// emit is serialized by ExecuteSweepCells, so the counters are safe.
		rec := hotpotato.NewSweepResultRecord(cellRes)
		switch rec.Status {
		case "ok":
			completed++
		case "canceled":
			canceled++
		default:
			failed++
		}
		if rec.Cached {
			cacheHits++
		}
		done.Add(1)
		stream.send("result", rec)
	})

	total := len(cells)
	stream.send("summary", hotpotato.SweepSummary{
		Type: "summary", Total: total, Completed: completed, Failed: failed,
		Canceled: canceled, CacheHits: cacheHits,
		ElapsedMS: float64(time.Since(began).Nanoseconds()) / 1e6,
	})
	logger.Info("batch finished",
		"cells", total, "completed", completed, "failed", failed,
		"canceled", canceled, "cache_hits", cacheHits,
		"duration_ms", float64(time.Since(began).Nanoseconds())/1e6,
		"error", errString(sweepErr),
	)
}
