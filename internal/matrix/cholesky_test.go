package matrix

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCholeskyKnown(t *testing.T) {
	// A = [[4,2],[2,3]] has L = [[2,0],[1,sqrt(2)]].
	a := NewFromRows([][]float64{{4, 2}, {2, 3}})
	c, err := FactorCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	l := c.L()
	want := NewFromRows([][]float64{{2, 0}, {1, math.Sqrt2}})
	if !l.ApproxEqual(want, 1e-12) {
		t.Fatalf("L =\n%vwant\n%v", l, want)
	}
}

func TestCholeskyRejects(t *testing.T) {
	if _, err := FactorCholesky(New(2, 3)); err == nil {
		t.Error("non-square accepted")
	}
	if _, err := FactorCholesky(NewFromRows([][]float64{{1, 2}, {0, 1}})); err == nil {
		t.Error("asymmetric accepted")
	}
	// Symmetric but indefinite.
	if _, err := FactorCholesky(NewFromRows([][]float64{{1, 2}, {2, 1}})); err == nil {
		t.Error("indefinite accepted")
	}
}

func TestIsPositiveDefinite(t *testing.T) {
	if !IsPositiveDefinite(Identity(3)) {
		t.Error("identity not PD")
	}
	if IsPositiveDefinite(NewFromRows([][]float64{{0, 0}, {0, 0}})) {
		t.Error("zero matrix PD")
	}
}

func TestCholeskySolveMatchesLU(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	spd := randomSPD(r, 8)
	b := make([]float64, 8)
	for i := range b {
		b[i] = r.NormFloat64()
	}
	c, err := FactorCholesky(spd)
	if err != nil {
		t.Fatal(err)
	}
	xc, err := c.SolveVec(b)
	if err != nil {
		t.Fatal(err)
	}
	xl, err := Solve(spd, b)
	if err != nil {
		t.Fatal(err)
	}
	if !VecApproxEqual(xc, xl, 1e-9) {
		t.Fatalf("Cholesky %v vs LU %v", xc, xl)
	}
}

func TestCholeskySolveVecValidation(t *testing.T) {
	c, err := FactorCholesky(Identity(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.SolveVec([]float64{1}); err == nil {
		t.Error("short rhs accepted")
	}
	if _, err := c.Solve(New(2, 2)); err == nil {
		t.Error("short rhs matrix accepted")
	}
}

func TestCholeskyLogDeterminant(t *testing.T) {
	d := Diagonal([]float64{2, 3, 4})
	c, err := FactorCholesky(d)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Log(24)
	if got := c.LogDeterminant(); math.Abs(got-want) > 1e-12 {
		t.Errorf("logdet = %v, want %v", got, want)
	}
}

// Property: L·Lᵀ reconstructs A, and Inverse agrees with the LU inverse.
func TestPropCholeskyReconstructionAndInverse(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(8)
		a := randomSPD(r, n)
		c, err := FactorCholesky(a)
		if err != nil {
			return false
		}
		l := c.L()
		if !l.Mul(l.Transpose()).ApproxEqual(a, 1e-8*(1+a.MaxAbs())) {
			return false
		}
		invC, err := c.Inverse()
		if err != nil {
			return false
		}
		invLU, err := Inverse(a)
		if err != nil {
			return false
		}
		return invC.ApproxEqual(invLU, 1e-7*(1+invLU.MaxAbs()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func BenchmarkCholeskyVsLU129(b *testing.B) {
	r := rand.New(rand.NewSource(9))
	spd := randomSPD(r, 129)
	b.Run("cholesky", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := FactorCholesky(spd); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("lu", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := FactorLU(spd); err != nil {
				b.Fatal(err)
			}
		}
	})
}
