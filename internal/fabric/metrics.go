package fabric

import "repro/internal/obs"

// Fabric metrics, registered in the shared obs registry so the dispatcher's
// GET /metrics exposes them alongside the process defaults. Names are
// package-unique (the obs registry panics on duplicates).
var (
	metricSweeps = obs.NewCounter("fabric_sweeps_total",
		"Sweeps submitted to the dispatcher.")
	metricCells = obs.NewCounter("fabric_cells_total",
		"Cells admitted across all sweeps.")
	metricCellsCompleted = obs.NewCounter("fabric_cells_completed_total",
		"Cells finished with status ok.")
	metricCellsFailed = obs.NewCounter("fabric_cells_failed_total",
		"Cells finished with status failed (including retry exhaustion).")
	metricCellsRequeued = obs.NewCounter("fabric_cells_requeued_total",
		"Cells re-queued after their lease expired.")
	metricLeases = obs.NewCounter("fabric_leases_total",
		"Leases granted to workers.")
	metricLeasesExpired = obs.NewCounter("fabric_leases_expired_total",
		"Leases expired without completing (worker died or stopped heartbeating).")
	metricArchiveHits = obs.NewCounter("fabric_archive_hits_total",
		"Cells answered from the result archive without leasing.")
	metricWorkers = obs.NewGauge("fabric_workers",
		"Distinct workers that have registered.")
	metricQueueDepth = obs.NewGauge("fabric_queue_depth",
		"Pending cells awaiting a lease.")
	metricDroppedRecords = obs.NewCounter("fabric_dropped_records_total",
		"Stream records the dispatcher refused to write (marshal failure or post-summary).")
	metricSpansGrafted = obs.NewCounter("fabric_spans_grafted_total",
		"Worker-exported span records merged into sweep trace trees.")
	metricFleetSeriesDropped = obs.NewCounter("fabric_fleet_series_dropped_total",
		"Federated metric series rejected (invalid name or fleet series budget exhausted).")
)
