package experiments

import (
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

// HeterogeneityRow characterizes one benchmark on the platform — the
// S-NUCA performance heterogeneity of [19] that both schedulers exploit.
type HeterogeneityRow struct {
	Benchmark string
	// BestIPS and WorstIPS are instructions/second at peak frequency on the
	// lowest- and highest-AMD cores.
	BestIPS  float64
	WorstIPS float64
	// PlacementGainPercent is the center-vs-corner speedup.
	PlacementGainPercent float64
	// DVFSSlowdownPercent is the performance lost at half frequency (on the
	// centre core) — the knob PCMig pays with.
	DVFSSlowdownPercent float64
}

// Heterogeneity tabulates placement and DVFS sensitivity of every PARSEC
// model on the 64-core platform: memory-bound benchmarks care about
// placement and shrug off DVFS; compute-bound benchmarks are the reverse.
// The benchmarks evaluate concurrently against one shared Platform — the
// read-only sharing the concurrency contract permits (all Platform query
// methods are pure after construction).
func Heterogeneity() ([]HeterogeneityRow, error) {
	plat, err := newPlatform(8)
	if err != nil {
		return nil, err
	}
	fp := plat.FP
	// Lowest- and highest-AMD cores.
	best, worst := 0, 0
	for c := 1; c < fp.NumCores(); c++ {
		if fp.AMD(c) < fp.AMD(best) {
			best = c
		}
		if fp.AMD(c) > fp.AMD(worst) {
			worst = c
		}
	}
	fmax := plat.Power.DVFS().FMax
	bs := workload.PARSEC()
	rows := make([]HeterogeneityRow, len(bs))
	err = forEach(0, len(bs), func(i int) error {
		b := bs[i]
		p := b.Perf()
		bestIPS := plat.Perf.IPS(p, best, fmax)
		worstIPS := plat.Perf.IPS(p, worst, fmax)
		slow := plat.Perf.SlowdownAt(p, best, fmax/2, fmax)
		rows[i] = HeterogeneityRow{
			Benchmark:            b.Name,
			BestIPS:              bestIPS,
			WorstIPS:             worstIPS,
			PlacementGainPercent: (bestIPS/worstIPS - 1) * 100,
			DVFSSlowdownPercent:  (slow - 1) * 100,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// NoiseSweepRow is one sensor-noise level of the robustness ablation.
type NoiseSweepRow struct {
	NoiseStdDev float64 // K
	Makespan    float64 // seconds
	PeakTemp    float64
	DTMTime     float64
}

// NoiseSweep reruns a hot full-load workload under HotPotato with increasing
// scheduler-visible thermal-sensor noise. HotPotato leans on the Algorithm 1
// model rather than raw sensor values, so moderate noise should cost little.
// The noise levels run concurrently over Options.Workers goroutines; every
// cell seeds its own noise source, so rows are deterministic and ordered.
func NoiseSweep(levels []float64, opts Options) ([]NoiseSweepRow, error) {
	opts = opts.withDefaults()
	b, err := workload.ByName("blackscholes")
	if err != nil {
		return nil, err
	}
	specs, err := workload.HomogeneousFullLoad(b, opts.GridEdge*opts.GridEdge, []int{2, 4, 8})
	if err != nil {
		return nil, err
	}
	rows := make([]NoiseSweepRow, len(levels))
	err = forEach(opts.workers(), len(levels), func(i int) error {
		cfg := sim.DefaultConfig()
		cfg.SensorNoiseStdDev = levels[i]
		cfg.SensorNoiseSeed = 77
		res, err := runWorkload(opts, func(p *sim.Platform) sim.Scheduler {
			return sched.NewHotPotato(p, opts.TDTM)
		}, specs, cfg)
		if err != nil {
			return err
		}
		rows[i] = NoiseSweepRow{
			NoiseStdDev: levels[i],
			Makespan:    res.Makespan,
			PeakTemp:    res.PeakTemp,
			DTMTime:     res.DTMTime,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// HeadroomSweepRow is one Δ setting of the headroom ablation.
type HeadroomSweepRow struct {
	Delta     float64 // K
	Makespan  float64
	PeakTemp  float64
	DTMEvents int
}

// HeadroomSweep varies HotPotato's Δ (paper default 1 °C): a larger margin
// buys fewer DTM excursions at the cost of more conservative scheduling.
// The Δ settings run concurrently over Options.Workers goroutines.
func HeadroomSweep(deltas []float64, opts Options) ([]HeadroomSweepRow, error) {
	opts = opts.withDefaults()
	b, err := workload.ByName("blackscholes")
	if err != nil {
		return nil, err
	}
	specs, err := workload.HomogeneousFullLoad(b, opts.GridEdge*opts.GridEdge, []int{2, 4, 8})
	if err != nil {
		return nil, err
	}
	rows := make([]HeadroomSweepRow, len(deltas))
	err = forEach(opts.workers(), len(deltas), func(i int) error {
		delta := deltas[i]
		res, err := runWorkload(opts, func(p *sim.Platform) sim.Scheduler {
			return sched.NewHotPotato(p, opts.TDTM, sched.WithHeadroom(delta))
		}, specs, sim.DefaultConfig())
		if err != nil {
			return err
		}
		rows[i] = HeadroomSweepRow{
			Delta:     delta,
			Makespan:  res.Makespan,
			PeakTemp:  res.PeakTemp,
			DTMEvents: res.DTMEvents,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// ContentionRow compares one benchmark with the NoC/bank contention model on
// and off.
type ContentionRow struct {
	Benchmark         string
	HotPotatoOff      float64 // makespan, contention-free
	HotPotatoOn       float64 // makespan with contention
	PCMigOn           float64
	SpeedupOnPercent  float64 // HotPotato vs PCMig, both with contention
	ContentionCostPct float64 // HotPotato slowdown from enabling contention
}

// Contention reruns the headline comparison with the bandwidth model
// enabled for the memory-heavy benchmarks: the HotPotato-vs-PCMig
// conclusion must survive shared-resource queueing. The three runs per
// benchmark (HotPotato off/on, PCMig on) fan out over Options.Workers
// goroutines together with the benchmark dimension.
func Contention(opts Options, benchmarks []string) ([]ContentionRow, error) {
	opts = opts.withDefaults()
	specsPer := make([][]workload.Spec, len(benchmarks))
	for i, name := range benchmarks {
		b, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		specs, err := workload.HomogeneousFullLoad(b, opts.GridEdge*opts.GridEdge, []int{2, 4, 8})
		if err != nil {
			return nil, err
		}
		specsPer[i] = specs
	}
	cfgOn := sim.DefaultConfig()
	cfgOn.NoCContention = true
	pair := comparisonPair(opts)
	// Cells per benchmark: 0 = HotPotato contention-free, 1 = HotPotato with
	// contention, 2 = PCMig with contention.
	const cells = 3
	results := make([]*sim.Result, cells*len(benchmarks))
	err := forEach(opts.workers(), len(results), func(i int) error {
		bi, ci := i/cells, i%cells
		cfg := cfgOn
		mk := pair[0]
		if ci == 0 {
			cfg = sim.DefaultConfig()
		}
		if ci == 2 {
			mk = pair[1]
		}
		res, err := runWorkload(opts, mk, specsPer[bi], cfg)
		if err != nil {
			return err
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	rows := make([]ContentionRow, len(benchmarks))
	for bi, name := range benchmarks {
		hpOff := results[bi*cells]
		hpOn := results[bi*cells+1]
		pcOn := results[bi*cells+2]
		rows[bi] = ContentionRow{
			Benchmark:         name,
			HotPotatoOff:      hpOff.Makespan,
			HotPotatoOn:       hpOn.Makespan,
			PCMigOn:           pcOn.Makespan,
			SpeedupOnPercent:  (pcOn.Makespan - hpOn.Makespan) / pcOn.Makespan * 100,
			ContentionCostPct: (hpOn.Makespan/hpOff.Makespan - 1) * 100,
		}
	}
	return rows, nil
}
