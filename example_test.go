package hotpotato_test

import (
	"fmt"
	"log"
	"strings"

	hotpotato "repro"
)

// Example runs the paper's motivational workload — a two-threaded
// blackscholes — on the 16-core chip under HotPotato and reports whether the
// execution stayed within the 70 °C threshold's neighbourhood. The
// simulation is fully deterministic.
func Example() {
	plat, err := hotpotato.NewPlatform(4, 4)
	if err != nil {
		log.Fatal(err)
	}
	task, err := hotpotato.NewTask(0, hotpotato.MustBenchmark("blackscholes"), 2, 0, 1)
	if err != nil {
		log.Fatal(err)
	}
	sched := hotpotato.NewHotPotatoScheduler(plat, 70)
	res, err := hotpotato.Run(plat, hotpotato.DefaultSimConfig(), sched, []*hotpotato.Task{task})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scheduler: %s\n", res.Scheduler)
	fmt.Printf("finished: %v\n", res.Tasks[0].Finish > 0)
	fmt.Printf("rotated: %v\n", res.Migrations > 0)
	fmt.Printf("peak within DTM neighbourhood: %v\n", res.PeakTemp < 72)
	// Output:
	// scheduler: hotpotato
	// finished: true
	// rotated: true
	// peak within DTM neighbourhood: true
}

// ExampleNewPeakCalculator evaluates a synchronous rotation analytically
// (the paper's Algorithm 1) without running a simulation.
func ExampleNewPeakCalculator() {
	plat, err := hotpotato.NewPlatform(4, 4)
	if err != nil {
		log.Fatal(err)
	}
	calc := hotpotato.NewPeakCalculator(plat)

	base := make([]float64, 16)
	for i := range base {
		base[i] = 0.3
	}
	base[5] = 9 // one hot thread

	pinned, err := calc.PeakTemperature(hotpotato.RotationPlan{Tau: 1e-3, Powers: [][]float64{base}})
	if err != nil {
		log.Fatal(err)
	}
	rotating, err := calc.PeakTemperature(hotpotato.RotatePlan(0.5e-3, base, []int{5, 6, 10, 9}))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pinned breaches 70 °C: %v\n", pinned > 70)
	fmt.Printf("rotation stays below 70 °C: %v\n", rotating < 70)
	// Output:
	// pinned breaches 70 °C: true
	// rotation stays below 70 °C: true
}

// ExampleTSPBudget computes the Thermal Safe Power budget for the four
// centre cores of the 16-core chip.
func ExampleTSPBudget() {
	plat, err := hotpotato.NewPlatform(4, 4)
	if err != nil {
		log.Fatal(err)
	}
	two := hotpotato.TSPBudget(plat, []int{5, 10}, 70)
	four := hotpotato.TSPBudget(plat, []int{5, 6, 9, 10}, 70)
	fmt.Printf("2 active cores get more watts than 4: %v\n", two > four)
	// Output:
	// 2 active cores get more watts than 4: true
}

// ExampleBenchmarksFromJSON loads a custom benchmark model from JSON.
func ExampleBenchmarksFromJSON() {
	src := `[{
	  "name": "mykernel", "nominal_watts": 7.5, "base_cpi": 0.9,
	  "mpki": 4, "work": 3.0e8,
	  "phases": [{"kind": "serial", "frac": 0.2}, {"kind": "parallel", "frac": 0.8}]
	}]`
	bs, err := hotpotato.BenchmarksFromJSON(strings.NewReader(src))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %.1f W, %d phases\n", bs[0].Name, bs[0].NominalWatts, len(bs[0].Phases))
	// Output:
	// mykernel: 7.5 W, 2 phases
}
