package hotpotato

// sweep.go is the batch half of the v1 API: a SweepSpec declares a
// cross-product of runs as one document, Expand turns it into ordered
// RunSpec cells, and ExecuteSweep runs the cells over a bounded worker pool,
// emitting each result as it finishes. POST /v1/batch and
// `hotpotato-sim -sweep` are both thin shells around these functions, and
// the SweepStarted/SweepResultRecord/SweepProgress/SweepSummary types are
// the shared wire records of their NDJSON streams.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
)

// MaxSweepCells is the hard ceiling on a single sweep's cross-product. A
// sweep above it fails Expand before any cell materializes — a declarative
// document a few hundred bytes long can otherwise demand billions of runs.
// Servers typically enforce a much lower admission limit on top (see
// internal/service Config.MaxSweepCells).
const MaxSweepCells = 65536

// SweepAxes are the cross-product dimensions of a SweepSpec. Each axis is a
// list of section overrides; an empty axis keeps the base spec's section and
// contributes a factor of one to the product. Within a cell the overrides
// compose in a fixed order — platform, then workload, then scheduler, then
// solver (written into the platform's thermal section), then seed (written
// into the workload) — so a solver axis composes with a platform axis and a
// seed axis with a workload axis.
type SweepAxes struct {
	// Platforms replaces the base platform wholesale; each entry is decoded
	// over the paper defaults at its own grid size, exactly like a RunSpec
	// platform section.
	Platforms []PlatformConfig `json:"platforms,omitempty"`
	// Workloads replaces the base workload wholesale.
	Workloads []WorkloadSpec `json:"workloads,omitempty"`
	// Schedulers replaces the base scheduler wholesale.
	Schedulers []SchedulerSpec `json:"schedulers,omitempty"`
	// Solvers sets platform.thermal.solver per cell ("auto"/"dense"/
	// "sparse"; "" keeps the platform's choice).
	Solvers []string `json:"solvers,omitempty"`
	// Seeds sets workload.seed per cell. Only the random workload kind
	// consults a seed; on other kinds the axis expands cells that
	// canonicalize (and hash) identically.
	Seeds []int64 `json:"seeds,omitempty"`
}

// SweepSpec declares a batch of runs as one serializable document: a base
// RunSpec plus cross-product axes. Decoding applies the same
// decode-over-defaults rule as RunSpec to the base and to every platform
// axis entry, so minimal documents stay minimal.
type SweepSpec struct {
	// Version is the wire version: absent or SpecVersion ("v1"), like
	// RunSpec.Version. Each expanded cell carries it into its own hash.
	Version string `json:"version,omitempty"`
	// Base is the spec every cell starts from; absent sections keep the
	// paper defaults.
	Base RunSpec `json:"base"`
	// Axes are the cross-product dimensions applied over Base.
	Axes SweepAxes `json:"axes"`
	// PruneAboveTemp opts the sweep into twin-backed cell pruning against a
	// peak-temperature threshold (°C): cells whose transient peak the
	// analytical twin bounds conclusively on either side of the threshold
	// skip simulation and stream as status "pruned" with the twin's verdict
	// ("above" or "below"), estimate, and bound. Cells the twin cannot
	// bound conclusively — or cannot predict at all (out-of-domain spec) —
	// simulate as usual. Requires a runner with a loaded twin model
	// (server -twin-model / sim -twin-model); without one the sweep runs
	// unpruned. Nil disables pruning.
	PruneAboveTemp *float64 `json:"prune_above_temp,omitempty"`
}

// UnmarshalJSON decodes the document with the RunSpec overlay rules: the
// base section and each platforms axis entry are decoded over the paper
// defaults (an absent base is the default 8×8 document).
func (s *SweepSpec) UnmarshalJSON(b []byte) error {
	var shadow struct {
		Version string          `json:"version"`
		Base    json.RawMessage `json:"base"`
		Axes    struct {
			Platforms  []json.RawMessage `json:"platforms"`
			Workloads  []WorkloadSpec    `json:"workloads"`
			Schedulers []SchedulerSpec   `json:"schedulers"`
			Solvers    []string          `json:"solvers"`
			Seeds      []int64           `json:"seeds"`
		} `json:"axes"`
		PruneAboveTemp *float64 `json:"prune_above_temp"`
	}
	if err := json.Unmarshal(b, &shadow); err != nil {
		return err
	}
	var base RunSpec
	if isPresent(shadow.Base) {
		if err := json.Unmarshal(shadow.Base, &base); err != nil {
			return fmt.Errorf("hotpotato: base section: %w", err)
		}
	}
	plats := make([]PlatformConfig, 0, len(shadow.Axes.Platforms))
	for i, raw := range shadow.Axes.Platforms {
		p, err := decodePlatformSection(raw)
		if err != nil {
			return fmt.Errorf("hotpotato: platforms axis entry %d: %w", i, err)
		}
		plats = append(plats, p)
	}
	*s = SweepSpec{
		Version: shadow.Version,
		Base:    base,
		Axes: SweepAxes{
			Platforms:  plats,
			Workloads:  shadow.Axes.Workloads,
			Schedulers: shadow.Axes.Schedulers,
			Solvers:    shadow.Axes.Solvers,
			Seeds:      shadow.Axes.Seeds,
		},
		PruneAboveTemp: shadow.PruneAboveTemp,
	}
	return nil
}

// CellCount returns the size of the sweep's cross-product: the product of
// every non-empty axis length (an empty sweep is one cell — the base spec).
// The count is computed without materializing cells and saturates at
// MaxSweepCells+1, so callers can reject oversized sweeps cheaply.
func (s SweepSpec) CellCount() int {
	count := 1
	for _, n := range []int{
		len(s.Axes.Platforms), len(s.Axes.Workloads), len(s.Axes.Schedulers),
		len(s.Axes.Solvers), len(s.Axes.Seeds),
	} {
		if n == 0 {
			continue
		}
		count *= n
		if count > MaxSweepCells {
			return MaxSweepCells + 1
		}
	}
	return count
}

// Validate checks the declaratively-visible constraints of the sweep
// document itself: the version string and every solvers axis entry. Per-cell
// constraints (does the expanded spec validate?) are checked on the expanded
// cells — use Expand followed by RunSpec.Validate or SpecHash, as
// ExecuteSweep and the /v1/batch handler do.
func (s SweepSpec) Validate() error {
	if err := validateVersion(s.Version); err != nil {
		return err
	}
	for i, solver := range s.Axes.Solvers {
		if err := ValidateSolver(solver); err != nil {
			return fmt.Errorf("hotpotato: solvers axis entry %d: %w", i, err)
		}
	}
	if s.PruneAboveTemp != nil {
		if t := *s.PruneAboveTemp; math.IsNaN(t) || math.IsInf(t, 0) {
			return fmt.Errorf("hotpotato: prune_above_temp must be finite, got %v", t)
		}
	}
	return nil
}

// SweepCell is one expanded run of a sweep: its position in the expansion
// order and the complete RunSpec it declares.
type SweepCell struct {
	// Index is the cell's position in the deterministic expansion order,
	// 0-based. Stream records and result archives key on it.
	Index int `json:"index"`
	// Spec is the cell's complete run declaration, defaults applied.
	Spec RunSpec `json:"spec"`
}

// Expand materializes the sweep's cells in their canonical order: nested
// loops with platforms outermost, then workloads, schedulers, solvers, and
// seeds innermost (the innermost axis varies fastest). Expansion is
// deterministic and purely structural — cells are not validated, so a sweep
// whose third scheduler is unknown still expands and reports the problem per
// cell downstream. The only error is a cross-product above MaxSweepCells.
func (s SweepSpec) Expand() ([]SweepCell, error) {
	if n := s.CellCount(); n > MaxSweepCells {
		return nil, fmt.Errorf("hotpotato: sweep expands to more than %d cells", MaxSweepCells)
	}
	// A nil axis iterates once with the sentinel index -1 (keep the base).
	idx := func(n int) []int {
		if n == 0 {
			return []int{-1}
		}
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	var cells []SweepCell
	for _, pi := range idx(len(s.Axes.Platforms)) {
		for _, wi := range idx(len(s.Axes.Workloads)) {
			for _, si := range idx(len(s.Axes.Schedulers)) {
				for _, vi := range idx(len(s.Axes.Solvers)) {
					for _, di := range idx(len(s.Axes.Seeds)) {
						spec := s.Base
						spec.Version = s.Version
						if pi >= 0 {
							spec.Platform = s.Axes.Platforms[pi]
						}
						if wi >= 0 {
							spec.Workload = s.Axes.Workloads[wi]
						}
						if si >= 0 {
							spec.Scheduler = s.Axes.Schedulers[si]
						}
						if vi >= 0 {
							spec.Platform.Thermal.Solver = s.Axes.Solvers[vi]
						}
						if di >= 0 {
							spec.Workload.Seed = s.Axes.Seeds[di]
						}
						cells = append(cells, SweepCell{Index: len(cells), Spec: spec.WithDefaults()})
					}
				}
			}
		}
	}
	return cells, nil
}

// PruneDecision is the analytical twin's conclusive verdict on one sweep
// cell against the sweep's prune_above_temp threshold: the twin's peak
// transient estimate, its conservative error bound, and which side of the
// threshold the whole interval [PeakC−BoundC, PeakC+BoundC] falls on.
type PruneDecision struct {
	// Verdict is "above" (est−bound ≥ threshold: the cell certainly
	// exceeds) or "below" (est+bound < threshold: it certainly does not).
	Verdict string `json:"verdict"`
	// PeakC is the twin's transient-peak point estimate (°C).
	PeakC float64 `json:"peak_c"`
	// BoundC is the twin's conservative error bound on PeakC (°C).
	BoundC float64 `json:"bound_c"`
}

// SweepCellResult is the outcome of one sweep cell, as handed to
// ExecuteSweep's emit callback. Exactly one of the terminal modes applies:
// Pruned non-nil is a cell skipped by the twin pruner (no Result, no Err);
// Err nil with a Result is a completed run; Err wrapping ErrTimeout still
// carries the partial Result; any other Err (ErrCanceled, validation,
// construction) is a failed cell.
type SweepCellResult struct {
	// Index is the cell's expansion-order position.
	Index int
	// Spec is the canonical form of the cell's spec ("" Hash means
	// canonicalization itself failed and Spec is the raw expanded cell).
	Spec RunSpec
	// Hash is the cell's SpecHash, empty when the cell's spec is invalid.
	Hash string
	// Result is the run's outcome; nil when the cell failed before running
	// or was pruned.
	Result *Result
	// Cached reports that Result came from a cache instead of a fresh run
	// (only runners that consult a cache, like the serving layer's, set it).
	Cached bool
	// Pruned, when non-nil, records that the twin pruner skipped this
	// cell's simulation and carries its verdict.
	Pruned *PruneDecision
	// Err is the cell's failure, nil on success.
	Err error
}

// SweepOptions tunes ExecuteSweep.
type SweepOptions struct {
	// Workers bounds how many cells run concurrently; 0 means
	// runtime.GOMAXPROCS(0).
	Workers int
	// Run executes one cell; nil means ExecuteSpec on the cell's canonical
	// spec. The serving layer substitutes a runner that consults its result
	// cache and worker semaphore; the returned bool reports a cache hit.
	// Run must be safe for concurrent calls.
	Run func(ctx context.Context, cell SweepCell) (*Result, bool, error)
	// Prune, when non-nil, is consulted per cell after canonicalization and
	// before Run: returning ok=true skips the simulation and emits the cell
	// as pruned with the decision attached. Inconclusive cells (ok=false)
	// run as usual. Shells install a twin-backed pruner here when the sweep
	// sets prune_above_temp and a twin model is loaded (see
	// NewTwinSweepPruner). Prune must be safe for concurrent calls.
	Prune func(ctx context.Context, cell SweepCell) (PruneDecision, bool)
}

// ExecuteSweep expands a sweep and executes every cell over a bounded worker
// pool, calling emit exactly once per cell as cells finish (completion
// order, not index order — records carry their Index). emit is never called
// concurrently with itself. Cells whose specs fail validation are emitted
// with the validation error and never run; cancelling ctx stops in-flight
// cells within one scheduler epoch (their results carry ErrCanceled) and
// fails the not-yet-started remainder immediately.
//
// ExecuteSweep returns an error only when the sweep itself is unusable (bad
// version, oversized cross-product) or ctx was cancelled; per-cell failures
// live in the emitted results. Determinism: with the default runner the set
// of emitted (Index, Hash, Result) triples is identical at any Workers
// value, because each cell is an independent deterministic simulation.
func ExecuteSweep(ctx context.Context, spec SweepSpec, opts SweepOptions, emit func(SweepCellResult)) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	cells, err := spec.Expand()
	if err != nil {
		return err
	}
	return ExecuteSweepCells(ctx, cells, opts, emit)
}

// ExecuteSweepCells is ExecuteSweep on pre-expanded cells — the serving
// path, where the handler has already expanded (and admission-checked) the
// sweep before streaming begins. See ExecuteSweep for the contract.
func ExecuteSweepCells(ctx context.Context, cells []SweepCell, opts SweepOptions, emit func(SweepCellResult)) error {
	n := len(cells)
	if n == 0 {
		return nil
	}
	run := opts.Run
	if run == nil {
		run = func(ctx context.Context, cell SweepCell) (*Result, bool, error) {
			res, err := ExecuteSpec(ctx, cell.Spec)
			return res, false, err
		}
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	var emitMu sync.Mutex
	emitOne := func(r SweepCellResult) {
		emitMu.Lock()
		defer emitMu.Unlock()
		emit(r)
	}

	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				cell := cells[i]
				out := SweepCellResult{Index: cell.Index, Spec: cell.Spec}
				canon, err := cell.Spec.Canonicalize()
				if err != nil {
					out.Err = fmt.Errorf("cell %d: %w", cell.Index, err)
					emitOne(out)
					continue
				}
				out.Spec = canon
				// Canonicalize succeeded, so SpecHash cannot fail.
				out.Hash, _ = SpecHash(canon)
				if ctx.Err() != nil {
					out.Err = fmt.Errorf("cell %d: %w: %v", cell.Index, ErrCanceled, context.Cause(ctx))
					emitOne(out)
					continue
				}
				if opts.Prune != nil {
					if dec, ok := opts.Prune(ctx, SweepCell{Index: cell.Index, Spec: canon}); ok {
						out.Pruned = &dec
						emitOne(out)
						continue
					}
				}
				out.Result, out.Cached, out.Err = run(ctx, SweepCell{Index: cell.Index, Spec: canon})
				emitOne(out)
			}
		}()
	}
	wg.Wait()
	return ctx.Err()
}

// Sweep stream records: the NDJSON/SSE wire shapes shared by POST /v1/batch
// and `hotpotato-sim -sweep`. Every record is one JSON object with a "type"
// discriminator — "sweep" (stream header), "result" (one per cell, in
// completion order), "progress" (mid-stream heartbeat), and "summary" (the
// terminal record).
type (
	// SweepStarted is the stream header: Type "sweep" plus the total cell
	// count, emitted before any cell finishes.
	SweepStarted struct {
		Type      string `json:"type"`
		Total     int    `json:"total"`
		RequestID string `json:"request_id,omitempty"`
		// SweepID names the sweep in the dispatcher's archive; only the
		// fabric dispatcher sets it (single-node streams omit it).
		SweepID string `json:"sweep_id,omitempty"`
	}
	// SweepResultRecord is one finished cell. Status is "ok" (Result
	// present; Error names a MaxTime stop when set), "pruned" (twin verdict
	// in Prune, Pruned true, no Result), "failed", or "canceled". Cached
	// marks results served from the result cache.
	SweepResultRecord struct {
		Type   string         `json:"type"`
		Index  int            `json:"index"`
		Hash   string         `json:"hash,omitempty"`
		Status string         `json:"status"`
		Cached bool           `json:"cached,omitempty"`
		Pruned bool           `json:"pruned,omitempty"`
		Prune  *PruneDecision `json:"prune,omitempty"`
		Error  string         `json:"error,omitempty"`
		Result *Result        `json:"result,omitempty"`
	}
	// SweepProgress is the heartbeat record: how many cells have finished
	// so far. It keeps idle connections alive through proxies during long
	// cells and lets clients render progress bars.
	SweepProgress struct {
		Type      string  `json:"type"`
		Done      int     `json:"done"`
		Total     int     `json:"total"`
		ElapsedMS float64 `json:"elapsed_ms"`
	}
	// SweepSummary is the terminal record of a stream; its presence tells a
	// client the sweep ended rather than the connection dying mid-flight.
	// Completed+Failed+Canceled+Pruned always equals the number of observed
	// result records (Total when the stream ran to completion).
	SweepSummary struct {
		Type      string  `json:"type"`
		Total     int     `json:"total"`
		Completed int     `json:"completed"`
		Failed    int     `json:"failed"`
		Canceled  int     `json:"canceled"`
		Pruned    int     `json:"pruned"`
		CacheHits int     `json:"cache_hits"`
		ElapsedMS float64 `json:"elapsed_ms"`
	}
)

// Observe counts one result record into the summary. Every record lands in
// exactly one of Completed/Failed/Canceled/Pruned (keyed on Status, with
// unknown statuses counted as failed so totals still partition), plus
// CacheHits when Cached. All stream producers — the /v1/batch handler, the
// fabric dispatcher's aggregate, and `hotpotato-sim -sweep` — count through
// this method so their summaries classify identically.
func (s *SweepSummary) Observe(rec SweepResultRecord) {
	switch rec.Status {
	case "ok":
		s.Completed++
	case "canceled":
		s.Canceled++
	case "pruned":
		s.Pruned++
	default:
		s.Failed++
	}
	if rec.Cached {
		s.CacheHits++
	}
}

// NewSweepResultRecord classifies one cell outcome into its wire record:
// Status "pruned" for cells the twin pruner skipped, "ok" for completed
// runs (including MaxTime stops, whose partial Result travels with the
// timeout text in Error), "canceled" for runs ended by context cancellation
// or deadline expiry — whether the runner wrapped ErrCanceled or returned
// the raw context error — and "failed" for everything else.
func NewSweepResultRecord(r SweepCellResult) SweepResultRecord {
	rec := SweepResultRecord{
		Type: "result", Index: r.Index, Hash: r.Hash,
		Cached: r.Cached, Result: r.Result,
	}
	switch {
	case r.Pruned != nil:
		rec.Status = "pruned"
		rec.Pruned = true
		rec.Prune = r.Pruned
		rec.Result = nil
	case r.Err == nil:
		rec.Status = "ok"
	case errors.Is(r.Err, ErrTimeout):
		rec.Status = "ok"
		rec.Error = r.Err.Error()
	case errors.Is(r.Err, ErrCanceled),
		errors.Is(r.Err, context.Canceled),
		errors.Is(r.Err, context.DeadlineExceeded):
		rec.Status = "canceled"
		rec.Error = r.Err.Error()
		rec.Result = nil
	default:
		rec.Status = "failed"
		rec.Error = r.Err.Error()
		rec.Result = nil
	}
	return rec
}
