package matrix

import (
	"fmt"
	"math"
)

// Expm computes the matrix exponential e^A with the scaling-and-squaring
// method and a degree-6 Padé approximant. It serves as the reference
// implementation; the thermal code uses the eigendecomposition-based
// ExpmEigen on every hot path.
func Expm(a *Dense) *Dense {
	if a.rows != a.cols {
		panic("matrix: Expm of non-square matrix")
	}
	n := a.rows

	// Scale A by 2^-s so that ‖A/2^s‖∞ ≤ 0.5.
	norm := a.InfNorm()
	s := 0
	if norm > 0.5 {
		s = int(math.Ceil(math.Log2(norm / 0.5)))
	}
	scaled := a.Scaled(math.Pow(2, -float64(s)))

	// Degree-6 diagonal Padé approximant:
	// e^X ≈ Q⁻¹ P with P = Σ c_k X^k (even+odd split for stability).
	c := padeCoefficients(6)
	x2 := scaled.Mul(scaled)

	// Even part E = c0 I + c2 X² + c4 X⁴ + c6 X⁶
	// Odd  part O = X (c1 I + c3 X² + c5 X⁴)
	x4 := x2.Mul(x2)
	x6 := x4.Mul(x2)

	even := Identity(n).Scaled(c[0]).
		Plus(x2.Scaled(c[2])).
		Plus(x4.Scaled(c[4])).
		Plus(x6.Scaled(c[6]))
	oddInner := Identity(n).Scaled(c[1]).
		Plus(x2.Scaled(c[3])).
		Plus(x4.Scaled(c[5]))
	odd := scaled.Mul(oddInner)

	p := even.Plus(odd)
	q := even.Minus(odd)

	f, err := FactorLU(q)
	if err != nil {
		panic("matrix: Expm Padé denominator singular: " + err.Error())
	}
	r, err := f.Solve(p)
	if err != nil {
		panic("matrix: Expm Padé solve failed: " + err.Error())
	}

	// Undo scaling: square s times.
	for i := 0; i < s; i++ {
		r = r.Mul(r)
	}
	return r
}

// padeCoefficients returns the coefficients of the degree-m diagonal Padé
// approximant numerator: c_k = m!(2m-k)! / ((2m)! k! (m-k)!).
func padeCoefficients(m int) []float64 {
	c := make([]float64, m+1)
	c[0] = 1
	for k := 1; k <= m; k++ {
		c[k] = c[k-1] * float64(m-k+1) / (float64(k) * float64(2*m-k+1))
	}
	return c
}

// ExpmEigen computes e^(A·t) from the factorization A = V·diag(λ)·V⁻¹:
// e^(A·t) = V·diag(e^{λ·t})·V⁻¹. This is the MatEx method the paper uses.
func ExpmEigen(v *Dense, lambda []float64, vinv *Dense, t float64) *Dense {
	n := v.rows
	dst := New(n, n)
	ExpmEigenTo(dst, New(n, n), v, lambda, vinv, t)
	return dst
}

// ExpmEigenTo is the destination-passing form of ExpmEigen: it computes
// e^(A·t) into dst, using scratch to hold the intermediate V·diag(e^{λt})
// product. dst and scratch must both be n×n (n = v.Rows()), must be distinct,
// and must not alias v or vinv. It performs no allocation, so a caller that
// re-derives propagators for many step sizes (τ adaptation, stepper rebuilds)
// can reuse one pair of buffers.
func ExpmEigenTo(dst, scratch *Dense, v *Dense, lambda []float64, vinv *Dense, t float64) {
	n := v.rows
	if len(lambda) != n {
		panic(fmt.Sprintf("matrix: ExpmEigenTo got %d eigenvalues for %dx%d eigenvectors", len(lambda), v.rows, v.cols))
	}
	if scratch.rows != n || scratch.cols != n {
		panic(fmt.Sprintf("matrix: ExpmEigenTo scratch is %dx%d, want %dx%d", scratch.rows, scratch.cols, n, n))
	}
	for k := 0; k < n; k++ {
		e := math.Exp(lambda[k] * t)
		for i := 0; i < n; i++ {
			scratch.data[i*n+k] = v.data[i*n+k] * e
		}
	}
	scratch.MulTo(dst, vinv)
}
