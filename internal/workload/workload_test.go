package workload

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPARSECAllValid(t *testing.T) {
	bs := PARSEC()
	if len(bs) != 8 {
		t.Fatalf("benchmark count = %d, want 8 (paper §VI)", len(bs))
	}
	for _, b := range bs {
		if err := b.Validate(); err != nil {
			t.Errorf("%s: %v", b.Name, err)
		}
	}
}

func TestPARSECPersonalities(t *testing.T) {
	// The qualitative spectrum the paper's evaluation relies on.
	get := func(name string) Benchmark {
		b, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	canneal := get("canneal")
	blackscholes := get("blackscholes")
	swaptions := get("swaptions")
	streamcluster := get("streamcluster")

	if canneal.NominalWatts >= blackscholes.NominalWatts {
		t.Error("canneal must be the cool benchmark (paper: 'produces very little heat')")
	}
	if canneal.MPKI <= streamcluster.MPKI {
		t.Error("canneal must be the most memory-intensive")
	}
	if swaptions.MPKI >= blackscholes.MPKI {
		t.Error("swaptions must be the most compute-bound")
	}
	for _, b := range PARSEC() {
		if b.NominalWatts < canneal.NominalWatts {
			t.Errorf("%s cooler than canneal", b.Name)
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("ferret"); err == nil {
		t.Error("ferret is excluded in the paper and must not resolve")
	}
}

func TestNamesSortedComplete(t *testing.T) {
	names := Names()
	if len(names) != 8 {
		t.Fatalf("names = %v", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i] <= names[i-1] {
			t.Fatal("names not sorted")
		}
	}
}

func TestBenchmarkValidateRejects(t *testing.T) {
	good, _ := ByName("blackscholes")
	cases := []func(*Benchmark){
		func(b *Benchmark) { b.Name = "" },
		func(b *Benchmark) { b.NominalWatts = 0 },
		func(b *Benchmark) { b.BaseCPI = 0 },
		func(b *Benchmark) { b.MPKI = -1 },
		func(b *Benchmark) { b.Work = 0 },
		func(b *Benchmark) { b.Phases = nil },
		func(b *Benchmark) { b.Phases = []Phase{{Serial, 0.5}} }, // doesn't sum to 1
		func(b *Benchmark) { b.Phases = []Phase{{PhaseKind(9), 1}} },
		func(b *Benchmark) { b.Phases = []Phase{{Serial, -0.2}, {Parallel, 1.2}} },
	}
	for i, mut := range cases {
		b := good
		b.Phases = append([]Phase(nil), good.Phases...)
		mut(&b)
		if err := b.Validate(); err == nil {
			t.Errorf("case %d: invalid benchmark accepted", i)
		}
	}
}

func TestNewTaskValidation(t *testing.T) {
	b, _ := ByName("blackscholes")
	if _, err := NewTask(0, b, 0, 0, 1); err == nil {
		t.Error("zero threads accepted")
	}
	if _, err := NewTask(0, b, 2, -1, 1); err == nil {
		t.Error("negative arrival accepted")
	}
	if _, err := NewTask(0, b, 2, 0, 0); err == nil {
		t.Error("zero work scale accepted")
	}
}

func TestTaskPhaseProgression(t *testing.T) {
	// blackscholes 2 threads: serial (master), parallel (worker), serial.
	b, _ := ByName("blackscholes")
	task, err := NewTask(0, b, 2, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if task.State(0) != ThreadRunning || task.State(1) != ThreadIdle {
		t.Fatal("phase 1 must run master only")
	}
	// Finish the master's serial budget.
	task.Execute(0, task.Remaining(0))
	if task.Phase() != 1 {
		t.Fatalf("phase = %d after serial completion, want 1", task.Phase())
	}
	if task.State(0) != ThreadIdle || task.State(1) != ThreadRunning {
		t.Fatal("phase 2 must run the worker only (master idles, Fig. 2)")
	}
	task.Execute(1, task.Remaining(1))
	if task.Phase() != 2 {
		t.Fatalf("phase = %d, want 2", task.Phase())
	}
	task.Execute(0, task.Remaining(0))
	if !task.Done() {
		t.Fatal("task not done after all phases")
	}
	if task.State(0) != ThreadDone || task.State(1) != ThreadDone {
		t.Fatal("threads not reported done")
	}
}

func TestTaskSingleThreadRunsAllPhases(t *testing.T) {
	b, _ := ByName("swaptions")
	task, err := NewTask(0, b, 1, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	for !task.Done() {
		if task.State(0) != ThreadRunning {
			t.Fatal("single thread must be active in every phase")
		}
		task.Execute(0, task.Remaining(0))
	}
}

func TestTaskWorkConservation(t *testing.T) {
	b, _ := ByName("bodytrack")
	task, err := NewTask(0, b, 4, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := task.TotalRemaining(); math.Abs(got-b.Work) > 1 {
		t.Fatalf("initial TotalRemaining = %g, want Work %g", got, b.Work)
	}
	executed := 0.0
	for !task.Done() {
		progressed := false
		for i := 0; i < 4; i++ {
			used := task.Execute(i, 1e7)
			executed += used
			if used > 0 {
				progressed = true
			}
		}
		if !progressed {
			t.Fatal("no thread can make progress but task not done")
		}
	}
	if math.Abs(executed-b.Work) > 1 {
		t.Fatalf("executed %g instructions, want %g", executed, b.Work)
	}
}

func TestWorkScale(t *testing.T) {
	b, _ := ByName("canneal")
	small, _ := NewTask(0, b, 2, 0, 0.5)
	big, _ := NewTask(1, b, 2, 0, 2)
	if math.Abs(small.TotalRemaining()-0.5*b.Work) > 1 {
		t.Errorf("small TotalRemaining = %g", small.TotalRemaining())
	}
	if math.Abs(big.TotalRemaining()-2*b.Work) > 1 {
		t.Errorf("big TotalRemaining = %g", big.TotalRemaining())
	}
}

func TestExecuteIgnoresIdleAndDone(t *testing.T) {
	b, _ := ByName("blackscholes")
	task, _ := NewTask(0, b, 2, 0, 1)
	if used := task.Execute(1, 1e6); used != 0 {
		t.Error("idle worker executed instructions in serial phase")
	}
	if used := task.Execute(0, -5); used != 0 {
		t.Error("negative instruction count executed")
	}
}

func TestResponseTime(t *testing.T) {
	b, _ := ByName("blackscholes")
	task, _ := NewTask(0, b, 2, 1.5, 1)
	if !math.IsNaN(task.ResponseTime()) {
		t.Error("unfinished task has response time")
	}
	task.FinishTime = 2.0
	if got := task.ResponseTime(); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("response = %v, want 0.5", got)
	}
}

func TestHomogeneousFullLoadExactCoverage(t *testing.T) {
	b, _ := ByName("x264")
	specs, err := HomogeneousFullLoad(b, 64, []int{2, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if got := TotalThreads(specs); got != 64 {
		t.Fatalf("total threads = %d, want 64", got)
	}
	for _, s := range specs {
		if s.Arrival != 0 {
			t.Fatal("closed system: all tasks arrive at 0")
		}
		if s.Bench.Name != "x264" {
			t.Fatal("homogeneous mix contains foreign benchmark")
		}
	}
}

func TestHomogeneousFullLoadTruncatesLast(t *testing.T) {
	b, _ := ByName("x264")
	specs, err := HomogeneousFullLoad(b, 7, []int{4})
	if err != nil {
		t.Fatal(err)
	}
	if TotalThreads(specs) != 7 {
		t.Fatalf("total = %d, want 7", TotalThreads(specs))
	}
	if specs[len(specs)-1].Threads != 3 {
		t.Fatalf("last instance = %d threads, want truncated 3", specs[len(specs)-1].Threads)
	}
}

func TestHomogeneousFullLoadValidation(t *testing.T) {
	b, _ := ByName("x264")
	if _, err := HomogeneousFullLoad(b, 0, []int{2}); err == nil {
		t.Error("zero threads accepted")
	}
	if _, err := HomogeneousFullLoad(b, 8, nil); err == nil {
		t.Error("empty sizes accepted")
	}
	if _, err := HomogeneousFullLoad(b, 8, []int{0}); err == nil {
		t.Error("zero size accepted")
	}
}

func TestRandomMixDeterministicPerSeed(t *testing.T) {
	a, err := RandomMix(20, 50, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := RandomMix(20, 50, 42)
	for i := range a {
		if a[i].Bench.Name != b[i].Bench.Name || a[i].Arrival != b[i].Arrival ||
			a[i].Threads != b[i].Threads || a[i].WorkScale != b[i].WorkScale {
			t.Fatal("same seed produced different mixes")
		}
	}
	c, _ := RandomMix(20, 50, 43)
	same := true
	for i := range a {
		if a[i].Bench.Name != c[i].Bench.Name || a[i].Arrival != c[i].Arrival {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical mixes")
	}
}

func TestRandomMixArrivalsIncreasing(t *testing.T) {
	specs, err := RandomMix(50, 100, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 50 {
		t.Fatalf("count = %d", len(specs))
	}
	prev := 0.0
	for _, s := range specs {
		if s.Arrival < prev {
			t.Fatal("arrivals not monotone")
		}
		prev = s.Arrival
	}
}

func TestRandomMixRateControlsDensity(t *testing.T) {
	// Higher arrival rate compresses the schedule (in expectation; use a
	// large count so the comparison is stable).
	slow, _ := RandomMix(200, 10, 1)
	fast, _ := RandomMix(200, 1000, 1)
	if fast[len(fast)-1].Arrival >= slow[len(slow)-1].Arrival {
		t.Error("higher rate did not compress arrivals")
	}
}

func TestRandomMixValidation(t *testing.T) {
	if _, err := RandomMix(0, 10, 1); err == nil {
		t.Error("zero count accepted")
	}
	if _, err := RandomMix(5, 0, 1); err == nil {
		t.Error("zero rate accepted")
	}
}

func TestInstantiate(t *testing.T) {
	b, _ := ByName("dedup")
	tasks, err := Instantiate([]Spec{
		{Bench: b, Threads: 2, Arrival: 0, WorkScale: 1},
		{Bench: b, Threads: 4, Arrival: 1, WorkScale: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 2 || tasks[0].ID != 0 || tasks[1].ID != 1 {
		t.Fatal("instantiation IDs wrong")
	}
	bad := []Spec{{Bench: b, Threads: 0, Arrival: 0, WorkScale: 1}}
	if _, err := Instantiate(bad); err == nil {
		t.Error("invalid spec accepted")
	}
}

// Property: tasks with random execution interleavings always terminate and
// conserve total work.
func TestPropTaskAlwaysTerminates(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		bs := PARSEC()
		b := bs[r.Intn(len(bs))]
		threads := 1 + r.Intn(8)
		task, err := NewTask(0, b, threads, 0, 0.5+r.Float64())
		if err != nil {
			return false
		}
		want := task.TotalRemaining()
		executed := 0.0
		for steps := 0; !task.Done(); steps++ {
			if steps > 1e6 {
				return false // stuck
			}
			idx := r.Intn(threads)
			executed += task.Execute(idx, r.Float64()*5e7)
		}
		return math.Abs(executed-want) < 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: phase barriers — a task is never simultaneously running threads
// of two different phases.
func TestPropBarrierConsistency(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		b := PARSEC()[r.Intn(8)]
		threads := 2 + r.Intn(7)
		task, err := NewTask(0, b, threads, 0, 1)
		if err != nil {
			return false
		}
		for !task.Done() {
			phase := task.Phase()
			kind := task.Bench.Phases[phase].Kind
			for i := 0; i < threads; i++ {
				running := task.State(i) == ThreadRunning
				switch {
				case kind == Serial && i != 0 && running:
					return false // worker running in serial phase
				case kind == Parallel && i == 0 && running && threads > 1:
					return false // master running in parallel phase
				}
			}
			// Make progress on one active thread.
			progressed := false
			for i := 0; i < threads; i++ {
				if task.State(i) == ThreadRunning {
					task.Execute(i, 1e7+r.Float64()*1e7)
					progressed = true
					break
				}
			}
			if !progressed {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
