package fabric_test

// End-to-end observability test: a client-supplied traceparent rides a sweep
// through the dispatcher and two pull-loop workers, one of which holds a
// leased cell hostage until it is killed. The assertions are the fleet
// observability contract itself — the status endpoint reports the requeue
// and attributes every completed cell to the survivor, and the merged span
// tree is rooted at the dispatcher's sweep span with the survivor's cell
// subtrees (each carrying an execute_spec descendant) grafted under its
// lease spans, all on the client's trace ID.

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	hotpotato "repro"
	"repro/internal/fabric"
	"repro/internal/obs"
	"repro/internal/service"
)

func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
}

// walkSpans visits every node of the merged tree with its parent (nil at the
// roots).
func walkSpans(nodes []*obs.SpanNode, parent *obs.SpanNode, visit func(n, parent *obs.SpanNode)) {
	for _, n := range nodes {
		visit(n, parent)
		walkSpans(n.Children, n, visit)
	}
}

func TestFabricEndToEndSpanMergeAndStatus(t *testing.T) {
	d := fabric.NewDispatcher(fabric.Config{
		LeaseTTL:   time.Second,
		LeaseCells: 1,
		Heartbeat:  -1,
	})
	reaperCtx, stopReaper := context.WithCancel(context.Background())
	defer stopReaper()
	go d.Run(reaperCtx)
	ds := httptest.NewServer(d.Handler())
	defer ds.Close()

	// The doomed worker swallows the first cell it leases and blocks until
	// killed — the deterministic stand-in for a worker dying mid-lease.
	doomedLeased := make(chan struct{})
	doomedCtx, killDoomed := context.WithCancel(context.Background())
	defer killDoomed()
	doomedDone := make(chan struct{})
	doomed := &fabric.Worker{
		Dispatcher: ds.URL,
		ID:         "doomed",
		LeaseCells: 1,
		IdlePoll:   20 * time.Millisecond,
		Exec: func(ctx context.Context, cell hotpotato.SweepCell) (*hotpotato.Result, bool, error) {
			select {
			case <-doomedLeased:
			default:
				close(doomedLeased)
			}
			<-ctx.Done()
			return nil, false, ctx.Err()
		},
	}
	go func() {
		defer close(doomedDone)
		doomed.Run(doomedCtx)
	}()

	// Submit with the client's own trace context and request ID: the sweep
	// must join that trace rather than mint a new one.
	clientTC := obs.NewTraceContext()
	req, err := http.NewRequest(http.MethodPost, ds.URL+"/v1/batch", strings.NewReader(e2eSweepJSON))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-Id", "e2e-trace-req")
	req.Header.Set(obs.TraceParentHeader, clientTC.Header())
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d", resp.StatusCode)
	}

	// Once the doomed worker is provably holding a cell, bring up the
	// survivor and kill the hostage-taker.
	select {
	case <-doomedLeased:
	case <-time.After(30 * time.Second):
		t.Fatal("doomed worker never leased a cell")
	}
	svc := service.New(service.Config{Workers: 2})
	t.Cleanup(func() {
		shCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		svc.Shutdown(shCtx)
	})
	survivorCtx, stopSurvivor := context.WithCancel(context.Background())
	defer stopSurvivor()
	survivor := &fabric.Worker{
		Dispatcher: ds.URL,
		ID:         "survivor",
		LeaseCells: 1,
		Exec:       svc.ExecuteCell,
		IdlePoll:   20 * time.Millisecond,
	}
	go survivor.Run(survivorCtx)
	killDoomed()
	<-doomedDone

	// Drain the stream: the sweep header names the sweep, and despite the
	// death every cell must complete exactly once.
	var sweepID string
	results := 0
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var r struct {
			Type    string `json:"type"`
			SweepID string `json:"sweep_id"`
			Status  string `json:"status"`
		}
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			t.Fatalf("bad record: %v\n%s", err, line)
		}
		switch r.Type {
		case "sweep":
			sweepID = r.SweepID
		case "result":
			if r.Status != "ok" {
				t.Errorf("cell finished %q, want ok", r.Status)
			}
			results++
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if sweepID == "" || results != 6 {
		t.Fatalf("stream: sweep_id %q, %d results (want 6)", sweepID, results)
	}

	// Status surface: the finished sweep stays queryable, reports the
	// requeue, carries the client's identifiers, and attributes all six
	// cells to the survivor.
	var st fabric.SweepStatus
	getJSON(t, ds.URL+"/v1/sweeps/"+sweepID, &st)
	if st.State != "done" || st.Total != 6 || st.Completed != 6 {
		t.Fatalf("status %+v, want done 6/6", st)
	}
	if st.Requeues < 1 {
		t.Errorf("requeues %d, want >= 1 (the doomed worker's cell)", st.Requeues)
	}
	if st.RequestID != "e2e-trace-req" {
		t.Errorf("request_id %q", st.RequestID)
	}
	if st.TraceID != clientTC.TraceID {
		t.Errorf("sweep trace ID %q, want the client's %q", st.TraceID, clientTC.TraceID)
	}
	if len(st.Workers) != 1 || st.Workers[0].ID != "survivor" || st.Workers[0].Done != 6 {
		t.Errorf("worker attribution %+v, want survivor with 6 cells", st.Workers)
	}

	var list fabric.SweepList
	getJSON(t, ds.URL+"/v1/sweeps", &list)
	foundRecent := false
	for _, s := range list.Recent {
		foundRecent = foundRecent || s.SweepID == sweepID
	}
	if len(list.Active) != 0 || !foundRecent {
		t.Errorf("sweep list: %d active, recent contains sweep: %v", len(list.Active), foundRecent)
	}

	// Worker surface: the survivor is healthy, the dead worker is still
	// known (it registered) but no longer ok.
	var workers fabric.WorkerList
	getJSON(t, ds.URL+"/fabric/v1/workers", &workers)
	byID := map[string]fabric.WorkerStatus{}
	for _, w := range workers.Workers {
		byID[w.ID] = w
	}
	if w, ok := byID["survivor"]; !ok || w.Health != fabric.WorkerHealthOK || w.CellsDone != 6 {
		t.Errorf("survivor status %+v, want ok with 6 cells", byID["survivor"])
	}
	if _, ok := byID["doomed"]; !ok {
		t.Errorf("doomed worker vanished from /fabric/v1/workers: %+v", workers.Workers)
	}

	// The merged span tree: one sweep root on the client's trace, the
	// survivor's six cell subtrees grafted under lease spans, each cell
	// carrying worker attribution and an execute_spec descendant.
	var spans fabric.SweepSpans
	getJSON(t, ds.URL+"/v1/sweeps/"+sweepID+"/spans", &spans)
	if spans.TraceID != clientTC.TraceID {
		t.Errorf("span tree trace ID %q, want %q", spans.TraceID, clientTC.TraceID)
	}
	if len(spans.Spans) != 1 || spans.Spans[0].Name != "sweep" {
		t.Fatalf("want a single sweep root, got %d roots (first %q)", len(spans.Spans), spans.Spans[0].Name)
	}
	cells := 0
	for _, n := range spans.Spans[0].Children {
		if n.Name != "lease" {
			t.Errorf("non-lease span %q directly under the sweep root", n.Name)
		}
	}
	walkSpans(spans.Spans, nil, func(n, parent *obs.SpanNode) {
		if n.Name != "cell" {
			return
		}
		cells++
		if parent == nil || parent.Name != "lease" {
			t.Errorf("cell span not grafted under a lease span (parent %v)", parent)
			return
		}
		if got := n.Attrs["worker"]; got != "survivor" {
			t.Errorf("cell span worker attr %v, want survivor", got)
		}
		if got := parent.Attrs["worker"]; got != "survivor" {
			t.Errorf("lease span worker attr %v, want survivor", got)
		}
		if got := n.Attrs["trace_id"]; got != clientTC.TraceID {
			t.Errorf("cell span trace_id attr %v, want %q", got, clientTC.TraceID)
		}
		execs := 0
		walkSpans(n.Children, n, func(c, _ *obs.SpanNode) {
			if c.Name == "execute_spec" {
				execs++
			}
		})
		if execs != 1 {
			t.Errorf("cell span has %d execute_spec descendants, want 1", execs)
		}
	})
	if cells != 6 {
		t.Errorf("merged tree holds %d cell subtrees, want 6", cells)
	}
}
