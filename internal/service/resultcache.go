package service

import (
	"container/list"
	"context"
	"encoding/json"
	"sync"
	"sync/atomic"

	hotpotato "repro"
)

// DefaultResultCacheEntries bounds the result cache when
// Config.ResultCacheEntries is zero.
const DefaultResultCacheEntries = 256

// ResultCache is a bounded LRU + singleflight cache of finished simulation
// results, keyed by hotpotato.SpecHash. The simulation is deterministic in
// its canonical spec, so a cached Result is bit-identical to a fresh run
// (host-time fields aside, which the cache does not store meaningfully) and
// never goes stale — entries leave only by LRU eviction.
//
// Singleflight follows the PlatformCache pattern: the first requester of a
// hash becomes the leader and runs the simulation; concurrent requesters for
// the same hash block on the entry until the leader fulfills or abandons it.
// Abandonment (the leader's run failed with a non-cacheable error, e.g. its
// client disconnected) wakes followers with ok=false and they fall back to
// running the spec themselves — a canceled leader must not poison the cell
// for everyone behind it.
//
// Only two outcomes are cached: clean completions and MaxTime stops (a
// deterministic property of the spec, replayed with the ErrTimeout identity
// intact via cachedError). Everything else is transient and never stored.
type ResultCache struct {
	mu      sync.Mutex
	max     int
	entries map[string]*resultEntry
	// lru orders fulfilled entries, front = most recently used. Pending
	// (in-flight) entries live only in the map so they can never be evicted
	// mid-build.
	lru   *list.List
	bytes int64

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
	abandoned atomic.Int64
}

// resultEntry is one singleflight slot: the leader fulfills (or abandons),
// followers block on ready.
type resultEntry struct {
	hash  string
	ready chan struct{}

	// Written by the leader before close(ready), read-only after.
	res       *hotpotato.Result
	errMsg    string // non-empty: the run hit MaxTime; replayed as cachedError
	abandoned bool
	bytes     int64
	elem      *list.Element // nil while pending or abandoned
}

// NewResultCache returns an empty cache bounded to maxEntries fulfilled
// results (maxEntries <= 0 means DefaultResultCacheEntries).
func NewResultCache(maxEntries int) *ResultCache {
	if maxEntries <= 0 {
		maxEntries = DefaultResultCacheEntries
	}
	return &ResultCache{
		max:     maxEntries,
		entries: make(map[string]*resultEntry),
		lru:     list.New(),
	}
}

// Lookup finds or creates the entry for hash. leader=true means the caller
// owns the slot: it must run the simulation and then call exactly one of
// Fulfill or Abandon, or followers block forever. leader=false means the
// entry is fulfilled or in flight — call Wait.
func (c *ResultCache) Lookup(hash string) (e *resultEntry, leader bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[hash]; ok {
		if e.elem != nil {
			c.lru.MoveToFront(e.elem)
		}
		return e, false
	}
	e = &resultEntry{hash: hash, ready: make(chan struct{})}
	c.entries[hash] = e
	c.misses.Add(1)
	metricResultCacheMisses.Inc()
	return e, true
}

// Wait blocks until the entry is fulfilled, abandoned, or ctx is done. On
// ok=true the cached outcome is valid: res plus errMsg ("" for a clean run,
// the timeout text for a MaxTime stop). ok=false means no cached outcome
// exists (abandoned or ctx expired) and the caller should run the spec
// itself, uncached.
func (e *resultEntry) Wait(ctx context.Context) (res *hotpotato.Result, errMsg string, ok bool) {
	select {
	case <-e.ready:
	case <-ctx.Done():
		return nil, "", false
	}
	if e.abandoned {
		return nil, "", false
	}
	return e.res, e.errMsg, true
}

// Fulfill publishes the leader's outcome, inserts the entry into the LRU
// order, and evicts the least-recently-used surplus.
func (c *ResultCache) Fulfill(hash string, res *hotpotato.Result, errMsg string) {
	size := approxResultBytes(res)
	c.mu.Lock()
	e, ok := c.entries[hash]
	if !ok || e.elem != nil {
		c.mu.Unlock()
		return
	}
	e.res, e.errMsg, e.bytes = res, errMsg, size
	e.elem = c.lru.PushFront(e)
	c.bytes += size
	for c.lru.Len() > c.max {
		oldest := c.lru.Back()
		victim := oldest.Value.(*resultEntry)
		c.lru.Remove(oldest)
		delete(c.entries, victim.hash)
		c.bytes -= victim.bytes
		c.evictions.Add(1)
		metricResultCacheEvictions.Inc()
	}
	bytes := c.bytes
	c.mu.Unlock()
	metricResultCacheBytes.Set(float64(bytes))
	close(e.ready)
}

// Abandon releases a pending slot without caching anything; followers wake
// with ok=false and run the spec themselves.
func (c *ResultCache) Abandon(hash string) {
	c.mu.Lock()
	e, ok := c.entries[hash]
	if !ok || e.elem != nil {
		c.mu.Unlock()
		return
	}
	e.abandoned = true
	delete(c.entries, hash)
	c.mu.Unlock()
	close(e.ready)
}

// RecordHit counts one lookup served from the cache. Separated from Lookup
// because a follower only knows it was served after Wait reports ok — an
// abandoned slot must not count as a hit.
func (c *ResultCache) RecordHit() {
	c.hits.Add(1)
	metricResultCacheHits.Inc()
}

// RecordAbandonedFallback counts a follower whose leader abandoned the slot:
// the follower re-ran the spec uncached. That run is a miss (the cache did
// not serve it) — Lookup only counted the leader's miss, so without this the
// fallback would vanish from the hit/miss ledger entirely and the hit ratio
// would overstate the cache. The dedicated abandoned counter additionally
// makes leader churn (disconnect-heavy clients) visible on its own.
func (c *ResultCache) RecordAbandonedFallback() {
	c.misses.Add(1)
	metricResultCacheMisses.Inc()
	c.abandoned.Add(1)
	metricResultCacheAbandoned.Inc()
}

// AbandonedFallbacks returns how many followers fell back to an uncached run
// after their leader abandoned the slot.
func (c *ResultCache) AbandonedFallbacks() int64 { return c.abandoned.Load() }

// Len returns how many fulfilled results are cached.
func (c *ResultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Bytes returns the approximate encoded size of all cached results.
func (c *ResultCache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Stats returns lifetime hit / miss / eviction counts.
func (c *ResultCache) Stats() (hits, misses, evictions int64) {
	return c.hits.Load(), c.misses.Load(), c.evictions.Load()
}

// approxResultBytes sizes a result by its JSON encoding — the same form it
// is served in, so the bytes gauge tracks real response weight.
func approxResultBytes(res *hotpotato.Result) int64 {
	if res == nil {
		return 0
	}
	b, err := json.Marshal(res)
	if err != nil {
		return 0
	}
	return int64(len(b))
}
