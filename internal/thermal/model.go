// Package thermal implements the compact RC thermal model of paper §III-B
// (Eq. 1–3) and the MatEx-style transient solver of Eq. 4 [22]. The network
// is built HotSpot-style [15] from the floorplan: one silicon node per core,
// one heat-spreader node per core, and a single heatsink node coupled to the
// ambient. The resulting matrices have exactly the structure the paper's
// peak-temperature derivation requires: A diagonal positive (capacitances),
// B symmetric positive definite (conductances), so C = −A⁻¹B is negative
// definite and diagonalizable with real negative eigenvalues.
package thermal

import (
	"fmt"

	"repro/internal/floorplan"
	"repro/internal/matrix"
)

// Config holds the RC network parameters. Values are calibrated such that a
// Table I style core (0.81 mm², 4 GHz, ≈8 W compute-bound) reaches ≈80 °C
// from a 45 °C ambient — the regime of the paper's motivational example.
type Config struct {
	// Capacitances, J/K.
	SiCapacitance          float64 `json:"si_capacitance"`            // silicon node, per core
	SpCapacitance          float64 `json:"sp_capacitance"`            // spreader node, per core
	SinkCapacitancePerCore float64 `json:"sink_capacitance_per_core"` // heatsink node scales with chip size

	// Conductances, W/K.
	GLateralSi    float64 `json:"g_lateral_si"`    // between neighbouring silicon nodes
	GVertical     float64 `json:"g_vertical"`      // silicon → spreader, per core
	GLateralSp    float64 `json:"g_lateral_sp"`    // between neighbouring spreader nodes
	GSpreaderSink float64 `json:"g_spreader_sink"` // spreader segment → heatsink, per core
	// GSpreaderEdgeBonus adds extra spreader→sink conductance per exposed
	// die edge of a cell (1 for edge cells, 2 for corners), modelling the
	// heat spreader extending beyond the die: border cores cool better, so
	// the chip centre runs hottest — the thermal heterogeneity of §III-A.
	GSpreaderEdgeBonus  float64 `json:"g_spreader_edge_bonus"`   // fraction of GSpreaderSink per exposed edge
	GSinkAmbientPerCore float64 `json:"g_sink_ambient_per_core"` // heatsink → ambient, scales with chip size

	Ambient float64 `json:"ambient"` // ambient temperature, °C (paper §VI: 45)
}

// DefaultConfig returns the calibrated model parameters.
func DefaultConfig() Config {
	return Config{
		SiCapacitance:          4.25e-4,
		SpCapacitance:          8.4e-3,
		SinkCapacitancePerCore: 0.5,
		GLateralSi:             0.045,
		GVertical:              0.20,
		GLateralSp:             0.40,
		GSpreaderSink:          0.50,
		GSpreaderEdgeBonus:     0.25,
		GSinkAmbientPerCore:    0.40,
		Ambient:                45.0,
	}
}

// Model is a compact RC thermal model over a floorplan.
type Model struct {
	fp  *floorplan.Floorplan
	cfg Config

	n int // cores
	N int // thermal nodes = 2n + 1

	aDiag []float64     // A: diagonal thermal capacitance matrix
	b     *matrix.Dense // B: symmetric conductance matrix
	g     []float64     // G: conductance to ambient per node

	binv *matrix.Dense            // B⁻¹ (used by Eq. 3 and the rotation math)
	eig  *matrix.GeneralizedEigen // factorization of A⁻¹B (λ > 0)

	steadyAmbient []float64 // B⁻¹·T_amb·G — the all-idle steady state
}

// New builds and factorizes the RC model for the given floorplan.
func New(fp *floorplan.Floorplan, cfg Config) (*Model, error) {
	if err := validate(cfg); err != nil {
		return nil, err
	}
	n := fp.NumCores()
	m := &Model{fp: fp, cfg: cfg, n: n, N: 2*n + 1}
	m.build()

	// B is SPD by construction; Cholesky both certifies that and inverts it
	// faster than LU.
	chol, err := matrix.FactorCholesky(m.b)
	if err != nil {
		return nil, fmt.Errorf("thermal: conductance matrix not SPD: %w", err)
	}
	if m.binv, err = chol.Inverse(); err != nil {
		return nil, fmt.Errorf("thermal: inverting conductance matrix: %w", err)
	}
	m.eig, err = matrix.SymDefEigen(m.aDiag, m.b)
	if err != nil {
		return nil, fmt.Errorf("thermal: eigendecomposition failed: %w", err)
	}
	m.steadyAmbient = matrix.VecScale(cfg.Ambient, m.binv.MulVec(m.g))
	return m, nil
}

func validate(cfg Config) error {
	checks := []struct {
		name string
		v    float64
	}{
		{"SiCapacitance", cfg.SiCapacitance},
		{"SpCapacitance", cfg.SpCapacitance},
		{"SinkCapacitancePerCore", cfg.SinkCapacitancePerCore},
		{"GVertical", cfg.GVertical},
		{"GSpreaderSink", cfg.GSpreaderSink},
		{"GSinkAmbientPerCore", cfg.GSinkAmbientPerCore},
	}
	for _, c := range checks {
		if c.v <= 0 {
			return fmt.Errorf("thermal: %s must be positive, got %g", c.name, c.v)
		}
	}
	if cfg.GLateralSi < 0 || cfg.GLateralSp < 0 {
		return fmt.Errorf("thermal: lateral conductances must be non-negative")
	}
	if cfg.GSpreaderEdgeBonus < 0 {
		return fmt.Errorf("thermal: spreader edge bonus must be non-negative, got %g", cfg.GSpreaderEdgeBonus)
	}
	return nil
}

// build assembles A, B and G. B is a weighted graph Laplacian plus the
// ambient conductance on the sink's diagonal, hence symmetric positive
// definite; the corresponding entry of G carries the same conductance so
// that zero power yields T = ambient everywhere.
func (m *Model) build() {
	n := m.n
	N := m.N
	sink := 2 * n

	m.aDiag = make([]float64, N)
	m.g = make([]float64, N)
	m.b = matrix.New(N, N)

	for i := 0; i < n; i++ {
		m.aDiag[i] = m.cfg.SiCapacitance
		m.aDiag[n+i] = m.cfg.SpCapacitance
	}
	m.aDiag[sink] = m.cfg.SinkCapacitancePerCore * float64(n)

	addCoupling := func(i, j int, g float64) {
		if g == 0 {
			return
		}
		m.b.Add(i, j, -g)
		m.b.Add(j, i, -g)
		m.b.Add(i, i, g)
		m.b.Add(j, j, g)
	}

	for i := 0; i < n; i++ {
		// Lateral couplings (count each edge once).
		for _, nb := range m.fp.Neighbors(i) {
			if nb > i {
				addCoupling(i, nb, m.cfg.GLateralSi)
				addCoupling(n+i, n+nb, m.cfg.GLateralSp)
			}
		}
		// Vertical stack. Border spreader cells conduct extra heat to the
		// sink through the spreader area extending beyond the die.
		addCoupling(i, n+i, m.cfg.GVertical)
		exposed := 4 - len(m.fp.Neighbors(i))
		gSink := m.cfg.GSpreaderSink * (1 + m.cfg.GSpreaderEdgeBonus*float64(exposed))
		addCoupling(n+i, sink, gSink)
	}

	gAmb := m.cfg.GSinkAmbientPerCore * float64(n)
	m.b.Add(sink, sink, gAmb)
	m.g[sink] = gAmb
}

// NumCores returns the number of cores n.
func (m *Model) NumCores() int { return m.n }

// NumNodes returns the number of thermal nodes N = 2n+1.
func (m *Model) NumNodes() int { return m.N }

// Ambient returns the ambient temperature in °C.
func (m *Model) Ambient() float64 { return m.cfg.Ambient }

// Floorplan returns the floorplan the model was built over.
func (m *Model) Floorplan() *floorplan.Floorplan { return m.fp }

// ADiag returns a copy of the diagonal of the capacitance matrix A.
func (m *Model) ADiag() []float64 {
	out := make([]float64, len(m.aDiag))
	copy(out, m.aDiag)
	return out
}

// B returns a copy of the conductance matrix.
func (m *Model) B() *matrix.Dense { return m.b.Clone() }

// BInv returns the precomputed B⁻¹. The caller must not modify it.
func (m *Model) BInv() *matrix.Dense { return m.binv }

// G returns a copy of the ambient conductance vector.
func (m *Model) G() []float64 {
	out := make([]float64, len(m.g))
	copy(out, m.g)
	return out
}

// Eigen returns the factorization of A⁻¹B: positive eigenvalues Lambda,
// eigenvectors V and V⁻¹. The eigenvalues of C = −A⁻¹B are −Lambda.
// Callers must not modify the returned value.
func (m *Model) Eigen() *matrix.GeneralizedEigen { return m.eig }

// AmbientSteady returns the all-idle steady state B⁻¹·T_amb·G (= ambient at
// every node). The caller must not modify it.
func (m *Model) AmbientSteady() []float64 { return m.steadyAmbient }

// ExtendPower lifts a per-core power vector (length n) to a per-node vector
// (length N) with zeros on spreader and sink nodes.
func (m *Model) ExtendPower(coreWatts []float64) []float64 {
	p := make([]float64, m.N)
	m.ExtendPowerInto(p, coreWatts)
	return p
}

// ExtendPowerInto is the destination-passing form of ExtendPower: dst (length
// N) receives coreWatts on the core nodes and zeros elsewhere. No allocation.
func (m *Model) ExtendPowerInto(dst, coreWatts []float64) {
	if len(coreWatts) != m.n {
		panic(fmt.Sprintf("thermal: power vector length %d, want %d cores", len(coreWatts), m.n))
	}
	if len(dst) != m.N {
		panic(fmt.Sprintf("thermal: extended power destination length %d, want %d nodes", len(dst), m.N))
	}
	copy(dst, coreWatts)
	for i := m.n; i < m.N; i++ {
		dst[i] = 0
	}
}

// SteadyState solves Eq. 3: T_steady = B⁻¹P + B⁻¹·T_amb·G for a per-core
// power vector, returning the temperature of all N nodes in °C.
func (m *Model) SteadyState(coreWatts []float64) []float64 {
	p := m.ExtendPower(coreWatts)
	t := m.binv.MulVec(p)
	matrix.VecAddTo(t, m.steadyAmbient)
	return t
}

// InitialTemps returns the simulation starting point: every node at ambient
// (the paper's T_init assumption in §IV).
func (m *Model) InitialTemps() []float64 {
	return matrix.Constant(m.N, m.cfg.Ambient)
}

// MaxCoreTemp returns the hottest core temperature in the node vector t.
func (m *Model) MaxCoreTemp(t []float64) float64 {
	return matrix.VecMax(t[:m.n])
}

// HottestCore returns the index of the hottest core in t.
func (m *Model) HottestCore(t []float64) int {
	return matrix.VecMaxIndex(t[:m.n])
}
