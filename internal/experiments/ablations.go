package experiments

import (
	"fmt"
	"time"

	"repro/internal/cache"
	"repro/internal/floorplan"
	"repro/internal/matrix"
	"repro/internal/rotation"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/thermal"
	"repro/internal/workload"
)

// TauSweepRow is one rotation-interval setting of the τ ablation.
type TauSweepRow struct {
	Tau        float64 // seconds
	Response   float64 // seconds
	PeakTemp   float64 // °C
	Migrations int
}

// TauSweep runs the Fig. 2(c) scenario at several rotation intervals,
// exposing the trade-off Algorithm 2 navigates: faster rotation averages
// temperature better but pays more migration overhead. The intervals run
// concurrently, each cell fully isolated; rows keep the input order.
func TauSweep(taus []float64) ([]TauSweepRow, error) {
	rows := make([]TauSweepRow, len(taus))
	err := forEach(0, len(taus), func(i int) error {
		tau := taus[i]
		slots := map[sim.ThreadID]int{
			{Task: 0, Thread: 0}: 0,
			{Task: 0, Thread: 1}: 2,
		}
		rot, err := sched.NewRotationStatic(slots, []int{5, 6, 10, 9}, tau)
		if err != nil {
			return err
		}
		plat, err := newPlatform(4)
		if err != nil {
			return err
		}
		b, err := workload.ByName("blackscholes")
		if err != nil {
			return err
		}
		task, err := workload.NewTask(0, b, 2, 0, 1)
		if err != nil {
			return err
		}
		cfg := sim.DefaultConfig()
		cfg.DTMEnabled = false // expose the raw thermal consequence of τ
		s, err := sim.New(plat, cfg, rot, []*workload.Task{task})
		if err != nil {
			return err
		}
		res, err := s.Run()
		if err != nil {
			return err
		}
		rows[i] = TauSweepRow{
			Tau: tau, Response: res.AvgResponse,
			PeakTemp: res.PeakTemp, Migrations: res.Migrations,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// DefaultTaus spans the τ adaptation range of HotPotato.
func DefaultTaus() []float64 {
	return []float64{0.125e-3, 0.25e-3, 0.5e-3, 1e-3, 2e-3, 4e-3}
}

// RingScopeRow compares rotation scopes.
type RingScopeRow struct {
	Scope    string
	Response float64
	PeakTemp float64
}

// RingScope contrasts HotPotato's within-ring rotation against rotating the
// same two threads around the whole chip perimeter: whole-chip rotation
// visits high-AMD cores (slower LLC) without a thermal advantage worth the
// cost — the reason HotPotato confines rotation to AMD rings.
func RingScope() ([]RingScopeRow, error) {
	slots := map[sim.ThreadID]int{
		{Task: 0, Thread: 0}: 0,
		{Task: 0, Thread: 1}: 2,
	}
	fp := floorplan.MustNew(4, 4, 0.0009)
	var outer []int
	for _, ring := range fp.Rings() {
		if len(ring.Cores) > len(outer) {
			outer = ring.Cores
		}
	}
	scopes := []struct {
		name  string
		cores []int
	}{
		{"inner-ring (HotPotato)", []int{5, 6, 10, 9}},
		{"outer-ring", outer},
	}
	rows := make([]RingScopeRow, len(scopes))
	err := forEach(0, len(scopes), func(i int) error {
		sc := scopes[i]
		slotsHere := map[sim.ThreadID]int{}
		for id := range slots {
			slotsHere[id] = slots[id] % len(sc.cores)
		}
		// Keep the two threads maximally separated in the cycle.
		slotsHere[sim.ThreadID{Task: 0, Thread: 1}] = len(sc.cores) / 2
		rot, err := sched.NewRotationStatic(slotsHere, sc.cores, 0.5e-3)
		if err != nil {
			return err
		}
		plat, err := newPlatform(4)
		if err != nil {
			return err
		}
		b, err := workload.ByName("streamcluster") // memory-bound: AMD matters
		if err != nil {
			return err
		}
		task, err := workload.NewTask(0, b, 2, 0, 0.5)
		if err != nil {
			return err
		}
		s, err := sim.New(plat, sim.DefaultConfig(), rot, []*workload.Task{task})
		if err != nil {
			return err
		}
		res, err := s.Run()
		if err != nil {
			return err
		}
		rows[i] = RingScopeRow{Scope: sc.name, Response: res.AvgResponse, PeakTemp: res.PeakTemp}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// MigrationCostRow is one point of the migration-cost sensitivity ablation.
type MigrationCostRow struct {
	CostScale      float64 // multiplier on the per-migration OS overhead
	HotPotato      float64 // makespan, seconds
	PCMig          float64
	SpeedupPercent float64
}

// MigrationCostSweep rescales the per-migration cost and reruns a hot
// homogeneous workload: HotPotato's advantage must shrink as migrations get
// more expensive — the observation the whole paper rests on (cheap S-NUCA
// migrations) run in reverse. The scale × scheduler cells fan out over
// Options.Workers goroutines, each on its own reconfigured platform.
func MigrationCostSweep(scales []float64, opts Options) ([]MigrationCostRow, error) {
	opts = opts.withDefaults()
	b, err := workload.ByName("blackscholes")
	if err != nil {
		return nil, err
	}
	total := opts.GridEdge * opts.GridEdge
	specs, err := workload.HomogeneousFullLoad(b, total, []int{2, 4, 8})
	if err != nil {
		return nil, err
	}
	pair := comparisonPair(opts)
	makespans := make([]float64, 2*len(scales))
	err = forEach(opts.workers(), len(makespans), func(i int) error {
		pcfg := sim.DefaultPlatformConfig(opts.GridEdge, opts.GridEdge)
		pcfg.Cache.OSOverhead = cache.DefaultConfig().OSOverhead * scales[i/2]
		plat, err := sim.NewPlatform(pcfg)
		if err != nil {
			return err
		}
		scaled := make([]workload.Spec, len(specs))
		copy(scaled, specs)
		for j := range scaled {
			scaled[j].WorkScale *= opts.WorkScale
		}
		tasks, err := workload.Instantiate(scaled)
		if err != nil {
			return err
		}
		s, err := sim.New(plat, sim.DefaultConfig(), pair[i%2](plat), tasks)
		if err != nil {
			return err
		}
		res, err := s.Run()
		if err != nil {
			return err
		}
		makespans[i] = res.Makespan
		return nil
	})
	if err != nil {
		return nil, err
	}
	rows := make([]MigrationCostRow, len(scales))
	for i, scale := range scales {
		hp, pc := makespans[2*i], makespans[2*i+1]
		rows[i] = MigrationCostRow{
			CostScale: scale, HotPotato: hp, PCMig: pc,
			SpeedupPercent: (pc - hp) / pc * 100,
		}
	}
	return rows, nil
}

// AnalyticVsBruteRow compares Algorithm 1 against explicit transient
// simulation.
type AnalyticVsBruteRow struct {
	Delta         int
	AnalyticPeak  float64
	BrutePeak     float64
	AnalyticTime  time.Duration
	BruteTime     time.Duration
	SpeedupFactor float64
}

// AnalyticVsBrute quantifies why Algorithm 1 matters: same answer as
// brute-force transient simulation, orders of magnitude faster. Uses a
// fast-time-constant model so the brute force converges in a bounded number
// of periods. Deliberately serial: both sides are wall-clock measurements,
// and concurrent cells contending for cores would corrupt the speedup factor.
func AnalyticVsBrute(deltas []int) ([]AnalyticVsBruteRow, error) {
	cfg := thermal.DefaultConfig()
	cfg.SiCapacitance /= 100
	cfg.SpCapacitance /= 100
	cfg.SinkCapacitancePerCore /= 100
	m, err := thermal.New(floorplan.MustNew(4, 4, 0.0009), cfg)
	if err != nil {
		return nil, err
	}
	calc := rotation.NewCalculator(m)

	var rows []AnalyticVsBruteRow
	for _, delta := range deltas {
		base := matrix.Constant(16, 0.3)
		base[5] = 9
		cores := []int{5, 6, 10, 9, 4, 1, 2, 7, 11, 14, 13, 8}
		if delta > len(cores) {
			return nil, fmt.Errorf("experiments: delta %d exceeds available cores", delta)
		}
		plan := rotation.Rotate(0.5e-3, base, cores[:delta])

		start := time.Now()
		analytic, err := calc.PeakTemperature(plan)
		if err != nil {
			return nil, err
		}
		analyticTime := time.Since(start)

		periods := int(0.3/(0.5e-3*float64(delta))) + 1
		start = time.Now()
		brute, err := calc.BruteForcePeak(plan, periods, 4)
		if err != nil {
			return nil, err
		}
		bruteTime := time.Since(start)

		rows = append(rows, AnalyticVsBruteRow{
			Delta:         delta,
			AnalyticPeak:  analytic,
			BrutePeak:     brute,
			AnalyticTime:  analyticTime,
			BruteTime:     bruteTime,
			SpeedupFactor: float64(bruteTime) / float64(analyticTime),
		})
	}
	return rows, nil
}
