package thermal

import (
	"math"
	"testing"

	"repro/internal/floorplan"
	"repro/internal/matrix"
)

func TestNewStackedValidation(t *testing.T) {
	fp := floorplan.MustNew(2, 2, 0.0009)
	cfg := DefaultStackedConfig(2)
	cfg.Layers = 0
	if _, err := NewStacked(fp, cfg); err == nil {
		t.Error("zero layers accepted")
	}
	cfg = DefaultStackedConfig(2)
	cfg.GInterLayer = 0
	if _, err := NewStacked(fp, cfg); err == nil {
		t.Error("zero inter-layer conductance accepted")
	}
	cfg = DefaultStackedConfig(2)
	cfg.SiCapacitance = 0
	if _, err := NewStacked(fp, cfg); err == nil {
		t.Error("invalid base config accepted")
	}
}

func TestStackedNodeCounts(t *testing.T) {
	fp := floorplan.MustNew(4, 4, 0.0009)
	m, err := NewStacked(fp, DefaultStackedConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if m.NumCores() != 32 {
		t.Errorf("cores = %d, want 32", m.NumCores())
	}
	if m.NumNodes() != 32+16+1 {
		t.Errorf("nodes = %d, want 49", m.NumNodes())
	}
}

func TestSingleLayerStackEqualsPlanarModel(t *testing.T) {
	// Layers=1 must reproduce the planar model exactly: same steady states.
	fp := floorplan.MustNew(4, 4, 0.0009)
	planar, err := New(fp, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	stacked, err := NewStacked(fp, DefaultStackedConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	p := matrix.Constant(16, 0.3)
	p[5] = 8
	a := planar.SteadyState(p)
	b := stacked.SteadyState(p)
	if !matrix.VecApproxEqual(a, b, 1e-9) {
		t.Fatal("1-layer stack differs from planar model")
	}
}

func TestBuriedLayerRunsHotter(t *testing.T) {
	// The 3D thermal problem: with identical power, the layer far from the
	// heatsink runs hotter than the layer adjacent to it.
	fp := floorplan.MustNew(4, 4, 0.0009)
	m, err := NewStacked(fp, DefaultStackedConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	p := matrix.Constant(32, 2) // uniform power everywhere
	ss := m.SteadyState(p)
	for i := 0; i < 16; i++ {
		buried := ss[StackedCoreID(0, i, 16)]
		top := ss[StackedCoreID(1, i, 16)]
		if buried <= top {
			t.Fatalf("position %d: buried %.2f °C not hotter than top %.2f °C", i, buried, top)
		}
	}
}

func TestStackedEigenvaluesPositive(t *testing.T) {
	// The Algorithm 1 prerequisites hold for the 3D model too.
	fp := floorplan.MustNew(3, 3, 0.0009)
	m, err := NewStacked(fp, DefaultStackedConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	for i, l := range m.Eigen().Lambda {
		if l <= 0 {
			t.Fatalf("lambda[%d] = %v", i, l)
		}
	}
}

func TestStackedIdleIsAmbient(t *testing.T) {
	fp := floorplan.MustNew(3, 3, 0.0009)
	m, err := NewStacked(fp, DefaultStackedConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	ss := m.SteadyState(make([]float64, 18))
	for i, temp := range ss {
		if math.Abs(temp-m.Ambient()) > 1e-8 {
			t.Fatalf("node %d idle steady = %v", i, temp)
		}
	}
}

func TestStackedTransientConverges(t *testing.T) {
	fp := floorplan.MustNew(3, 3, 0.0009)
	m, err := NewStacked(fp, DefaultStackedConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	s, err := m.NewStepper(10e-3)
	if err != nil {
		t.Fatal(err)
	}
	p := matrix.Constant(18, 1.5)
	ss := m.SteadyState(p)
	tv := m.InitialTemps()
	for i := 0; i < 3000; i++ {
		tv = s.Step(tv, p)
	}
	if !matrix.VecApproxEqual(tv, ss, 1e-3) {
		t.Fatal("stacked transient did not converge to steady state")
	}
}

func TestLayerHelpers(t *testing.T) {
	if LayerOf(17, 16) != 1 || PositionOf(17, 16) != 1 {
		t.Error("layer helpers wrong")
	}
	if StackedCoreID(1, 1, 16) != 17 {
		t.Error("StackedCoreID wrong")
	}
}
