// Package rotation implements the paper's central analytical contribution
// (§IV, Eqs. 5–11, Algorithm 1): a computationally efficient method to
// compute the peak temperature of a synchronous thread rotation on an RC
// thermal model, evaluated in its periodic steady state.
//
// A rotation executes δ epochs of length τ; during epoch e the chip consumes
// the per-core power vector P_e, and after δ epochs the pattern repeats (each
// thread is back on its starting core). With E = e^{Cτ} and per-epoch steady
// states S_e = B⁻¹P_e (relative to ambient), the epoch recurrence is
//
//	T_e = E·T_{e−1} + (I − E)·S_e ,
//
// and the start-of-period temperature of the periodic steady state is the
// fixed point
//
//	T* = (I − E^δ)⁻¹ · Σ_{e=1..δ} E^{δ−e} (I − E) S_e ,
//
// which is exactly the closed geometric-series form of the paper's Eq. 10:
// because C = −A⁻¹B is negative definite, E's eigenvalues e^{λτ} lie in
// (0,1) and the series Σ E^{iδ} converges to (I − E^δ)⁻¹ (Eq. 9).
//
// The Calculator performs the design-time phase of Algorithm 1 once
// (eigendecomposition of A⁻¹B, B⁻¹) and evaluates any plan at run time in
// O(δ·N²) by working in the eigenbasis.
package rotation

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/matrix"
	"repro/internal/thermal"
)

// Plan describes one synchronous rotation: epochs of length Tau seconds, with
// Powers[e] giving the per-core power (watts) during epoch e. len(Powers) is
// the rotation period δ. For a thread rotation the vectors are permutations
// of one another, but the math accepts any periodic power pattern.
type Plan struct {
	Tau    float64
	Powers [][]float64
}

// Delta returns the rotation period δ (number of epochs).
func (p Plan) Delta() int { return len(p.Powers) }

// Validate checks the plan against a model with n cores.
func (p Plan) Validate(n int) error {
	if p.Tau <= 0 {
		return fmt.Errorf("rotation: epoch length τ must be positive, got %g", p.Tau)
	}
	if len(p.Powers) == 0 {
		return errors.New("rotation: plan needs at least one epoch")
	}
	for e, pw := range p.Powers {
		if len(pw) != n {
			return fmt.Errorf("rotation: epoch %d power vector has %d cores, want %d", e, len(pw), n)
		}
		for c, w := range pw {
			if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
				return fmt.Errorf("rotation: epoch %d core %d has invalid power %g", e, c, w)
			}
		}
	}
	return nil
}

// Rotate returns a plan that rotates the given single-epoch power vector
// around the core sequence: epoch e places base[cores[i]]'s thread on
// cores[(i+e) mod len(cores)]. Cores not in the sequence keep their base
// power in every epoch.
func Rotate(tau float64, base []float64, cores []int) Plan {
	delta := len(cores)
	powers := make([][]float64, delta)
	for e := 0; e < delta; e++ {
		p := append([]float64(nil), base...)
		for i, c := range cores {
			p[cores[(i+e)%delta]] = base[c]
		}
		powers[e] = p
	}
	return Plan{Tau: tau, Powers: powers}
}

// Result carries the detailed output of a peak-temperature evaluation.
type Result struct {
	Peak      float64     // hottest core temperature at any epoch boundary, °C
	PeakEpoch int         // epoch index (0-based) at whose end the peak occurs
	PeakCore  int         // core attaining the peak
	EpochEnd  [][]float64 // absolute node temperatures at the end of each epoch
	Start     []float64   // absolute node temperatures at the period start (T*)
}

// Calculator evaluates rotation plans against a thermal model. Creating a
// Calculator performs the design-time phase of Algorithm 1; evaluations are
// then cheap enough for run-time scheduling use.
//
// Against a sparse-mode model (thermal.SolverSparse) no eigendecomposition
// exists, and the calculator evaluates plans by iterating the period map to
// its fixed point with the model's Krylov stepper instead (periodic.go) —
// same results within IterTol, higher per-evaluation cost. Iterative()
// reports which regime is active.
type Calculator struct {
	m      *thermal.Model
	n      int // cores
	nNodes int

	// Eigenbasis constants (nil when the model is sparse — see Iterative).
	lambda []float64     // eigenvalues of A⁻¹B (positive)
	v      *matrix.Dense // eigenvectors of A⁻¹B
	vinv   *matrix.Dense
	binv   *matrix.Dense

	iterTol float64 // fixed-point tolerance of the iterative path, K
}

// DefaultIterTol is the default convergence tolerance (kelvin) of the
// iterative periodic-steady-state evaluator used against sparse-mode
// models. The bound is on the start-of-period state error, certified by the
// geometric tail estimate of evaluateIterative.
const DefaultIterTol = 1e-7

// NewCalculator runs the design-time phase against model m: the eigenbasis
// capture in dense mode, nothing beyond bookkeeping in sparse mode.
func NewCalculator(m *thermal.Model) *Calculator {
	c := &Calculator{
		m:       m,
		n:       m.NumCores(),
		nNodes:  m.NumNodes(),
		iterTol: DefaultIterTol,
	}
	if eig := m.Eigen(); eig != nil {
		c.lambda = eig.Lambda
		c.v = eig.V
		c.vinv = eig.VInv
		c.binv = m.BInv()
	}
	return c
}

// Model returns the thermal model the calculator was built for.
func (c *Calculator) Model() *thermal.Model { return c.m }

// Iterative reports whether the calculator evaluates plans by fixed-point
// iteration (sparse-mode model) rather than in the eigenbasis.
func (c *Calculator) Iterative() bool { return c.v == nil }

// SetIterTol overrides the convergence tolerance (kelvin) of the iterative
// evaluator. It has no effect in eigenbasis mode.
func (c *Calculator) SetIterTol(tol float64) {
	if tol > 0 {
		c.iterTol = tol
	}
}

// PeakTemperature returns the peak core temperature (°C) the plan reaches in
// its periodic steady state, evaluated at epoch boundaries (Algorithm 1,
// Eq. 11). It is a safe upper bound for any execution that starts at or below
// the periodic steady state.
func (c *Calculator) PeakTemperature(plan Plan) (float64, error) {
	res, err := c.Evaluate(plan)
	if err != nil {
		return 0, err
	}
	return res.Peak, nil
}

// Evaluate computes the full periodic steady state of the plan. Against a
// sparse-mode model it falls back to fixed-point iteration (periodic.go).
func (c *Calculator) Evaluate(plan Plan) (*Result, error) {
	if err := plan.Validate(c.n); err != nil {
		return nil, err
	}
	if c.Iterative() {
		return c.evaluateIterative(plan, 1)
	}
	metricEvals.Inc()
	delta := plan.Delta()
	N := c.nNodes
	tau := plan.Tau

	// Eigenbasis constants for this τ.
	decay := make([]float64, N) // e^{−λ_k τ}  (diagonal of E in eigenspace)
	for k, l := range c.lambda {
		decay[k] = math.Exp(-l * tau)
	}

	// Per-epoch steady states S_e = B⁻¹ P_e (relative to ambient), then
	// their eigenspace images y_e = V⁻¹ S_e. The node-space intermediates
	// live in two per-call scratch vectors reused across epochs.
	y := make([][]float64, delta)
	p := make([]float64, N)
	se := make([]float64, N)
	for e := 0; e < delta; e++ {
		c.m.ExtendPowerInto(p, plan.Powers[e])
		c.binv.MulVecTo(se, p)
		y[e] = c.vinv.MulVec(se)
	}

	// z_k = Σ_e e^{−λ_k (δ−e) τ} (1 − e^{−λ_k τ}) y_e[k], accumulated with a
	// Horner-style recurrence: z ← D·z + (I−D)·y_e for e = 1..δ.
	z := make([]float64, N)
	for e := 0; e < delta; e++ {
		for k := 0; k < N; k++ {
			z[k] = decay[k]*z[k] + (1-decay[k])*y[e][k]
		}
	}

	// Start-of-period fixed point in eigenspace: u* = (I − D^δ)⁻¹ z.
	u := make([]float64, N)
	for k := 0; k < N; k++ {
		dDelta := math.Exp(-c.lambda[k] * tau * float64(delta))
		denom := 1 - dDelta
		if denom <= 0 {
			return nil, fmt.Errorf("rotation: non-decaying eigenmode %d (λ=%g); thermal model must be dissipative", k, c.lambda[k])
		}
		u[k] = z[k] / denom
	}

	ambient := c.m.AmbientSteady()
	res := &Result{
		EpochEnd: make([][]float64, delta),
		Peak:     math.Inf(-1),
	}
	start := c.v.MulVec(u)
	res.Start = matrix.VecAdd(start, ambient)

	// Walk one period from u*, recording absolute temperatures at each epoch
	// end and tracking the peak over cores. te is reused across epochs; the
	// only per-epoch allocation is the EpochEnd row the caller receives.
	te := make([]float64, N)
	for e := 0; e < delta; e++ {
		for k := 0; k < N; k++ {
			u[k] = decay[k]*u[k] + (1-decay[k])*y[e][k]
		}
		c.v.MulVecTo(te, u)
		abs := matrix.VecAdd(te, ambient)
		res.EpochEnd[e] = abs
		for core := 0; core < c.n; core++ {
			if abs[core] > res.Peak {
				res.Peak = abs[core]
				res.PeakEpoch = e
				res.PeakCore = core
			}
		}
	}
	return res, nil
}

// BruteForcePeak computes the same peak temperature by explicit transient
// simulation: it steps the thermal model from ambient through `periods` full
// rotation periods with `substeps` integration steps per epoch and returns
// the hottest core temperature observed at epoch boundaries during the final
// period. It is the obviously-correct reference used to validate Evaluate;
// with enough periods the two agree to within the convergence tolerance of
// the slowest thermal mode.
func (c *Calculator) BruteForcePeak(plan Plan, periods, substeps int) (float64, error) {
	if err := plan.Validate(c.n); err != nil {
		return 0, err
	}
	if periods < 1 || substeps < 1 {
		return 0, fmt.Errorf("rotation: periods (%d) and substeps (%d) must be at least 1", periods, substeps)
	}
	stepper, err := c.m.NewStepper(plan.Tau / float64(substeps))
	if err != nil {
		return 0, err
	}
	t := c.m.InitialTemps()
	peak := math.Inf(-1)
	for p := 0; p < periods; p++ {
		last := p == periods-1
		for e := 0; e < plan.Delta(); e++ {
			for s := 0; s < substeps; s++ {
				stepper.StepTo(t, t, plan.Powers[e])
			}
			if last {
				if mc := c.m.MaxCoreTemp(t); mc > peak {
					peak = mc
				}
			}
		}
	}
	return peak, nil
}
