package hotpotato

// twin_diff_test.go is the simulator-as-oracle validation harness of the
// analytical twin (docs/THEORY.md §"Surrogate model and error bounds"): the
// committed TWIN_model.json artifact is checked against the full simulator on
// hundreds of held-out random cases, and the calibration's determinism and
// bound-monotonicity contracts are pinned. The design-grid generators
// (twinDesignSpec, twinDesignRing) double as the held-out case generators at
// seeds disjoint from every calibration stream.

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"math/rand"
	"os"
	"testing"

	"repro/internal/rotation"
	"repro/internal/sched"
	"repro/internal/twin"
)

// committedTwinHash pins the committed calibration artifact: regenerating it
// with `hotpotato-sim -calibrate TWIN_model.json` must reproduce these bytes
// exactly (TestTwinCalibrationDeterministic proves it from scratch).
const committedTwinHash = "sha256:6e1d41d6baccfdc6d194901735c8546da5fd6a245c3824a052db8338af67364a"

// committedTwin loads the checked-in artifact the server ships with.
func committedTwin(t *testing.T) *TwinModel {
	t.Helper()
	model, err := LoadTwinModelFile("TWIN_model.json")
	if err != nil {
		t.Fatalf("loading committed TWIN_model.json: %v", err)
	}
	return model
}

func TestTwinArtifactPinned(t *testing.T) {
	model := committedTwin(t)
	if model.Hash != committedTwinHash {
		t.Fatalf("committed artifact hash = %s, want %s (recalibrate and update the pin only with the model change that justifies it)",
			model.Hash, committedTwinHash)
	}
	// LoadFile already verified hash integrity; re-derive it anyway so the
	// pin covers ComputeHash itself.
	recomputed, err := model.ComputeHash()
	if err != nil {
		t.Fatalf("ComputeHash: %v", err)
	}
	if recomputed != model.Hash {
		t.Fatalf("recomputed hash %s != embedded %s", recomputed, model.Hash)
	}
	for _, wh := range DefaultTwinCalibration().Buckets {
		if _, ok := model.Buckets[twin.BucketKey(wh[0], wh[1])]; !ok {
			t.Errorf("committed artifact lacks the default %dx%d bucket", wh[0], wh[1])
		}
	}
}

// TestTwinDifferential is the error-contract property suite: ≥200 seeded
// random in-domain cases across the calibrated 4×4 and 8×8 buckets, each
// simulated end-to-end, asserting per conclusive field
// |twin − simulator| ≤ bound. The held-out seeds are disjoint from the
// calibration streams (bucketSeed and bucketSeed+7919 for seed 1).
func TestTwinDifferential(t *testing.T) {
	model := committedTwin(t)
	ctx := context.Background()

	buckets := []struct {
		w, h  int
		cases int
		seed  int64
	}{
		{4, 4, 140, 42_0001},
		{8, 8, 70, 42_0002},
	}
	totalCases := 0
	for _, bk := range buckets {
		bk := bk
		t.Run(twin.BucketKey(bk.w, bk.h), func(t *testing.T) {
			plat, err := NewPlatform(bk.w, bk.h)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(bk.seed))
			var steadyOK, transOK, makeOK int
			for i := 0; i < bk.cases; i++ {
				spec := twinDesignSpec(rng, bk.w, bk.h)
				s, err := twinOracleSample(ctx, plat, spec)
				if err != nil {
					t.Fatalf("case %d: oracle: %v", i, err)
				}
				pred, err := TwinPredict(model, plat, spec)
				if err != nil {
					t.Fatalf("case %d: TwinPredict on an in-domain spec: %v", i, err)
				}
				if f := pred.SteadyPeakC; f.Conclusive {
					steadyOK++
					if d := math.Abs(f.Estimate - s.Obs.SteadyPeakC); d > f.Bound {
						t.Errorf("case %d: steady |%g − %g| = %g exceeds bound %g",
							i, f.Estimate, s.Obs.SteadyPeakC, d, f.Bound)
					}
				}
				if f := pred.TransientPeakC; f.Conclusive {
					transOK++
					if d := math.Abs(f.Estimate - s.Obs.TransientPeakC); d > f.Bound {
						t.Errorf("case %d: transient |%g − %g| = %g exceeds bound %g",
							i, f.Estimate, s.Obs.TransientPeakC, d, f.Bound)
					}
				}
				if f := pred.MakespanS; f.Conclusive {
					makeOK++
					if d := math.Abs(f.Estimate - s.Obs.MakespanS); d > f.Bound {
						t.Errorf("case %d: makespan |%g − %g| = %g exceeds bound %g",
							i, f.Estimate, s.Obs.MakespanS, d, f.Bound)
					}
				}
			}
			// The generator draws from the calibration distribution, so the
			// envelope gate must keep most held-out cases conclusive — a twin
			// that answers nothing satisfies the bound vacuously.
			floor := bk.cases * 8 / 10
			if steadyOK < floor || transOK < floor || makeOK < floor {
				t.Errorf("conclusive counts steady=%d trans=%d makespan=%d below floor %d of %d",
					steadyOK, transOK, makeOK, floor, bk.cases)
			}
			t.Logf("%d cases: conclusive steady=%d trans=%d makespan=%d",
				bk.cases, steadyOK, transOK, makeOK)
		})
		totalCases += bk.cases
	}
	if totalCases < 200 {
		t.Fatalf("suite covers %d cases, issue requires ≥200", totalCases)
	}
}

// TestTwinRingDifferential checks the HotPotato pre-filter model the same
// way: held-out random ring rotations, estimator vs the exact Algorithm 1
// evaluation, |twin − exact| ≤ bound whenever the estimator is conclusive.
func TestTwinRingDifferential(t *testing.T) {
	model := committedTwin(t)
	for _, wh := range [][2]int{{4, 4}, {8, 8}} {
		w, h := wh[0], wh[1]
		t.Run(twin.BucketKey(w, h), func(t *testing.T) {
			plat, err := NewPlatform(w, h)
			if err != nil {
				t.Fatal(err)
			}
			est, err := NewTwinRingEstimator(model, plat)
			if err != nil {
				t.Fatal(err)
			}
			ringEval := rotation.NewCalculator(plat.Thermal).NewRingEvaluator()
			steadyPeak := twinSteadyPeakFunc(plat)
			rng := rand.New(rand.NewSource(43_0000 + int64(w)))
			const cases = 300
			conclusive := 0
			for i := 0; i < cases; i++ {
				rc := twinDesignRing(rng, plat, steadyPeak)
				exact, err := ringEval.PeakRingRotation(rc.Tau, rc.Base, rc.RingCores, rc.SlotWatts)
				if err != nil {
					t.Fatalf("ring case %d: %v", i, err)
				}
				got, bound, ok := est.EstimateRingPeak(rc.Tau, rc.Base, rc.RingCores, rc.SlotWatts)
				if !ok {
					continue
				}
				conclusive++
				if d := math.Abs(got - exact); d > bound {
					t.Errorf("ring case %d: |%g − %g| = %g exceeds bound %g", i, got, exact, d, bound)
				}
			}
			if floor := cases * 8 / 10; conclusive < floor {
				t.Errorf("only %d/%d ring cases conclusive (floor %d)", conclusive, cases, floor)
			}
			t.Logf("%d/%d ring cases conclusive", conclusive, cases)
		})
	}
}

// TestTwinBoundMonotonicity pins the calibration-density contract: along each
// sample axis the published bound is monotone non-increasing (denser
// calibration never loosens the bound), and — because the two oracle streams
// are independently seeded — growing one axis leaves the other axis's fits
// byte-identical.
func TestTwinBoundMonotonicity(t *testing.T) {
	ctx := context.Background()
	calibrate := func(samples, ringSamples int) twin.BucketModel {
		t.Helper()
		m, err := CalibrateTwin(ctx, TwinCalibration{
			Seed: 1, Samples: samples, RingSamples: ringSamples,
			Buckets: [][2]int{{4, 4}},
		})
		if err != nil {
			t.Fatalf("calibrate(%d,%d): %v", samples, ringSamples, err)
		}
		return m.Buckets[twin.BucketKey(4, 4)]
	}
	base := calibrate(64, 64)
	denser := calibrate(128, 64)
	ringDenser := calibrate(64, 128)

	// Samples axis: the full-simulation bounds may only tighten…
	if denser.SteadyBoundC > base.SteadyBoundC {
		t.Errorf("steady bound grew with density: %g → %g", base.SteadyBoundC, denser.SteadyBoundC)
	}
	if denser.Transient.Bound > base.Transient.Bound {
		t.Errorf("transient bound grew with density: %g → %g", base.Transient.Bound, denser.Transient.Bound)
	}
	if denser.Makespan.Bound > base.Makespan.Bound {
		t.Errorf("makespan bound grew with density: %g → %g", base.Makespan.Bound, denser.Makespan.Bound)
	}
	// …while the independently-seeded ring fit does not move at all.
	if denser.Ring.Bound != base.Ring.Bound {
		t.Errorf("ring bound moved with the Samples axis: %g → %g", base.Ring.Bound, denser.Ring.Bound)
	}

	// RingSamples axis: mirror image.
	if ringDenser.Ring.Bound > base.Ring.Bound {
		t.Errorf("ring bound grew with density: %g → %g", base.Ring.Bound, ringDenser.Ring.Bound)
	}
	if ringDenser.SteadyBoundC != base.SteadyBoundC ||
		ringDenser.Transient.Bound != base.Transient.Bound ||
		ringDenser.Makespan.Bound != base.Makespan.Bound {
		t.Errorf("full-simulation bounds moved with the RingSamples axis: (%g,%g,%g) → (%g,%g,%g)",
			base.SteadyBoundC, base.Transient.Bound, base.Makespan.Bound,
			ringDenser.SteadyBoundC, ringDenser.Transient.Bound, ringDenser.Makespan.Bound)
	}
}

// TestTwinCalibrationDeterministic regenerates the committed artifact from
// scratch and requires byte identity — calibration is a pure function of its
// parameters, across OSes and architectures.
func TestTwinCalibrationDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerating the default artifact simulates the full design grid")
	}
	model, err := CalibrateTwin(context.Background(), DefaultTwinCalibration())
	if err != nil {
		t.Fatal(err)
	}
	data, err := model.Encode()
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile("TWIN_model.json")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, want) {
		t.Errorf("regenerated artifact differs from committed TWIN_model.json (%d vs %d bytes)", len(data), len(want))
	}
	if model.Hash != committedTwinHash {
		t.Errorf("regenerated hash %s != pinned %s", model.Hash, committedTwinHash)
	}
}

// TestTwinPredictDeterministic pins response-level determinism: the same spec
// against the same artifact yields bit-identical predictions, which is what
// lets /v1/predict serve an ETag over (spec hash, model hash).
func TestTwinPredictDeterministic(t *testing.T) {
	model := committedTwin(t)
	plat, err := NewPlatform(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20; i++ {
		spec := twinDesignSpec(rng, 4, 4)
		p1, err := TwinPredict(model, plat, spec)
		if err != nil {
			t.Fatal(err)
		}
		p2, err := TwinPredict(model, plat, spec)
		if err != nil {
			t.Fatal(err)
		}
		j1, _ := json.Marshal(p1)
		j2, _ := json.Marshal(p2)
		if !bytes.Equal(j1, j2) {
			t.Fatalf("case %d: repeated prediction differs:\n%s\n%s", i, j1, j2)
		}
	}
}

// inconclusiveEstimator is the degenerate pre-filter: it never answers, so
// every evaluation must fall back to the exact path.
type inconclusiveEstimator struct{ calls int }

func (e *inconclusiveEstimator) EstimateRingPeak(tau float64, base []float64, ringCores []int, slotWatts []float64) (float64, float64, bool) {
	e.calls++
	return 0, 0, false
}

// TestTwinPreFilterBitIdentical is the acceptance test of the HotPotato
// pre-filter: with the twin answering (and with an estimator that never
// answers), the full simulation — every migration, every temperature, the
// whole Result — is bit-identical to stock HotPotato. The estimator may only
// short-circuit ring evaluations whose thresholded outcome it can prove.
func TestTwinPreFilterBitIdentical(t *testing.T) {
	model := committedTwin(t)
	for _, wh := range [][2]int{{4, 4}, {8, 8}} {
		w, h := wh[0], wh[1]
		t.Run(twin.BucketKey(w, h), func(t *testing.T) {
			plat, err := NewPlatform(w, h)
			if err != nil {
				t.Fatal(err)
			}
			spec := RunSpec{
				Platform:  DefaultPlatformConfig(w, h),
				Scheduler: SchedulerSpec{Name: "hotpotato"},
				Workload:  WorkloadSpec{Kind: WorkloadRandom, Count: 6, Rate: 2000, Seed: 5},
			}
			spec = spec.WithDefaults()
			if err := spec.Validate(); err != nil {
				t.Fatal(err)
			}
			taskSpecs, err := spec.Workload.specs(plat.NumCores())
			if err != nil {
				t.Fatal(err)
			}
			run := func(opts ...HotPotatoOption) ([]byte, *sched.HotPotato) {
				t.Helper()
				tasks, err := Instantiate(taskSpecs)
				if err != nil {
					t.Fatal(err)
				}
				s := sched.NewHotPotato(plat, spec.Sim.TDTM, opts...)
				res, err := Run(plat, spec.Sim, s, tasks)
				if err != nil {
					t.Fatal(err)
				}
				res.SchedulerHostTime = 0
				b, err := json.Marshal(res)
				if err != nil {
					t.Fatal(err)
				}
				return b, s
			}

			stock, stockSched := run()
			if hits, fallbacks := stockSched.EstimatorStats(); hits != 0 || fallbacks != 0 {
				t.Errorf("stock scheduler counted estimator outcomes: hits=%d fallbacks=%d", hits, fallbacks)
			}

			// Never-conclusive estimator: pure fallback, still bit-identical.
			inconclusive := &inconclusiveEstimator{}
			viaFallback, fbSched := run(WithTwinPreFilter(inconclusive))
			if !bytes.Equal(stock, viaFallback) {
				t.Error("inconclusive estimator changed the simulation result")
			}
			hits, fallbacks := fbSched.EstimatorStats()
			if hits != 0 {
				t.Errorf("inconclusive estimator scored %d hits", hits)
			}
			if fallbacks == 0 || fallbacks != inconclusive.calls {
				t.Errorf("fallbacks=%d, estimator calls=%d — every consult must fall back", fallbacks, inconclusive.calls)
			}

			// The real twin pre-filter: answers where it can, identical either way.
			est, err := NewTwinRingEstimator(model, plat)
			if err != nil {
				t.Fatal(err)
			}
			viaTwin, twinSched := run(WithTwinPreFilter(est))
			if !bytes.Equal(stock, viaTwin) {
				t.Error("twin pre-filter changed the simulation result")
			}
			hits, fallbacks = twinSched.EstimatorStats()
			if hits+fallbacks != inconclusive.calls {
				t.Errorf("twin consults %d != stock evaluation count %d", hits+fallbacks, inconclusive.calls)
			}
			t.Logf("twin pre-filter: %d hits, %d fallbacks of %d ring evaluations", hits, fallbacks, hits+fallbacks)
		})
	}
}

// TestTwinRingEstimatorAllocFree holds the pre-filter to the scheduler's
// hot-loop discipline: estimating a ring peak allocates nothing, like the
// exact evaluator it short-circuits.
func TestTwinRingEstimatorAllocFree(t *testing.T) {
	model := committedTwin(t)
	plat, err := NewPlatform(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	est, err := NewTwinRingEstimator(model, plat)
	if err != nil {
		t.Fatal(err)
	}
	steadyPeak := twinSteadyPeakFunc(plat)
	rng := rand.New(rand.NewSource(11))
	rc := twinDesignRing(rng, plat, steadyPeak)
	allocs := testing.AllocsPerRun(200, func() {
		est.EstimateRingPeak(rc.Tau, rc.Base, rc.RingCores, rc.SlotWatts)
	})
	if allocs != 0 {
		t.Errorf("EstimateRingPeak allocates %.0f per call, want 0", allocs)
	}
}
