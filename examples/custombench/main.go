// Custombench: define a workload without recompiling — benchmark models are
// loaded from JSON, run under HotPotato, and the hottest moment of the run
// is rendered as an ASCII heatmap of the chip.
package main

import (
	"fmt"
	"log"
	"strings"

	hotpotato "repro"
)

// A two-benchmark custom suite: a scorching compute kernel and a cold
// pointer-chasing one (the JSON schema of BenchmarksFromJSON).
const customSuite = `[
  {
    "name": "furnace",
    "nominal_watts": 9.5,
    "base_cpi": 0.6,
    "mpki": 0.5,
    "llc_miss_ratio": 0.01,
    "work": 2.0e8,
    "phases": [
      {"kind": "serial", "frac": 0.1},
      {"kind": "parallel", "frac": 0.8},
      {"kind": "serial", "frac": 0.1}
    ]
  },
  {
    "name": "wanderer",
    "nominal_watts": 3.5,
    "base_cpi": 1.5,
    "mpki": 30,
    "llc_miss_ratio": 0.4,
    "work": 1.2e8,
    "phases": [
      {"kind": "parallel", "frac": 1.0}
    ]
  }
]`

func main() {
	benches, err := hotpotato.BenchmarksFromJSON(strings.NewReader(customSuite))
	if err != nil {
		log.Fatal(err)
	}
	plat, err := hotpotato.NewPlatform(4, 4)
	if err != nil {
		log.Fatal(err)
	}

	// Half the chip runs the furnace, half the wanderer.
	var tasks []*hotpotato.Task
	id := 0
	for _, b := range benches {
		for i := 0; i < 2; i++ {
			task, err := hotpotato.NewTask(id, b, 4, 0, 1)
			if err != nil {
				log.Fatal(err)
			}
			tasks = append(tasks, task)
			id++
		}
	}

	sched := hotpotato.NewHotPotatoScheduler(plat, 70)
	sim, err := hotpotato.NewSimulation(plat, hotpotato.DefaultSimConfig(), sched, tasks)
	if err != nil {
		log.Fatal(err)
	}
	rec, err := hotpotato.NewTraceRecorder(1)
	if err != nil {
		log.Fatal(err)
	}
	sim.SetTrace(rec.Hook())
	res, err := sim.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("custom suite under %s: makespan %.1f ms, peak %.2f °C, %d migrations\n\n",
		res.Scheduler, res.Makespan*1e3, res.PeakTemp, res.Migrations)
	for _, ts := range res.Tasks {
		fmt.Printf("  task %d (%s, %d threads): response %.1f ms\n",
			ts.ID, ts.Benchmark, ts.Threads, ts.Response*1e3)
	}

	heat, err := rec.HottestSampleHeatmap(4, 4, 45, 75)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(heat)
}
