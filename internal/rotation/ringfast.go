package rotation

import (
	"fmt"
	"math"

	"repro/internal/matrix"
)

// RingEvaluator is the run-time-optimised form of Algorithm 1 for the
// schedule shapes HotPotato actually evaluates: a constant background power
// field plus one ring whose slot powers rotate. Exploiting linearity, the
// background is folded into the eigenspace once, and each epoch's deviation
// touches only the ring's cores — O(N·size) per epoch instead of O(N²).
//
// Build it once per thermal model (it precomputes W = V⁻¹B⁻¹ and the core
// rows of V — the design-time α/β constants of Algorithm 1) and reuse it for
// every evaluation.
type RingEvaluator struct {
	c *Calculator
	// wT[j] is the j-th core's power-to-eigenspace column of W = V⁻¹B⁻¹,
	// stored row-major for fast accumulation: n×N.
	wT *matrix.Dense
	// vCore is the core-row block of V: n×N (maps eigenspace back to core
	// temperatures only).
	vCore *matrix.Dense

	// Scratch reused across PeakRingRotation calls — the reason a
	// RingEvaluator is confined to one goroutine (docs/CONCURRENCY.md).
	// After the first call for a given ring size, an evaluation allocates
	// nothing.
	decay []float64   // e^{−λτ} per eigenmode
	yBase []float64   // eigenspace image of the background power field
	y     [][]float64 // per-epoch deviation images, grown to the largest δ seen
	z     []float64   // Horner accumulator of the periodic forcing
	u     []float64   // periodic-steady-state eigenstate
	coreT []float64   // core temperatures at one epoch boundary
}

// NewRingEvaluator precomputes the design-time constants. Against a
// sparse-mode model (Calculator.Iterative) there is no eigenbasis to fold
// into; the evaluator is then a thin adapter whose PeakRingRotation
// synthesizes the rotation plan and delegates to the calculator's iterative
// fixed-point path — correct but allocating and far slower, sized for the
// occasional analysis call rather than the per-epoch scheduling hot loop.
func (c *Calculator) NewRingEvaluator() *RingEvaluator {
	if c.Iterative() {
		return &RingEvaluator{c: c}
	}
	N := c.nNodes
	n := c.n
	wFull := c.vinv.Mul(c.binv) // N×N; power only enters at core nodes
	wT := matrix.New(n, N)
	for j := 0; j < n; j++ {
		for k := 0; k < N; k++ {
			wT.Set(j, k, wFull.At(k, j))
		}
	}
	vCore := matrix.New(n, N)
	for i := 0; i < n; i++ {
		for k := 0; k < N; k++ {
			vCore.Set(i, k, c.v.At(i, k))
		}
	}
	return &RingEvaluator{
		c: c, wT: wT, vCore: vCore,
		decay: make([]float64, N),
		yBase: make([]float64, N),
		z:     make([]float64, N),
		u:     make([]float64, N),
		coreT: make([]float64, n),
	}
}

// PeakRingRotation returns the steady-periodic peak core temperature (°C) of
// the schedule: every core holds base[core] watts except the ring cores,
// where slot i's power slotWatts[i] executes on ringCores[(i+e) mod size]
// during epoch e. The rotation period is δ = len(ringCores) epochs of τ
// seconds.
func (e *RingEvaluator) PeakRingRotation(tau float64, base []float64, ringCores []int, slotWatts []float64) (float64, error) {
	c := e.c
	n := c.n
	N := c.nNodes
	size := len(ringCores)
	if tau <= 0 {
		return 0, fmt.Errorf("rotation: epoch length τ must be positive, got %g", tau)
	}
	if len(base) != n {
		return 0, fmt.Errorf("rotation: base power has %d cores, want %d", len(base), n)
	}
	if size == 0 {
		return 0, fmt.Errorf("rotation: empty ring")
	}
	if len(slotWatts) != size {
		return 0, fmt.Errorf("rotation: %d slot powers for ring of %d cores", len(slotWatts), size)
	}
	for _, cr := range ringCores {
		if cr < 0 || cr >= n {
			return 0, fmt.Errorf("rotation: ring core %d out of range", cr)
		}
	}
	if e.wT == nil {
		// Sparse-mode fallback: materialize the ring schedule as a Plan and
		// run the iterative evaluator (which counts the evaluation metric).
		powers := make([][]float64, size)
		for ep := range powers {
			p := append([]float64(nil), base...)
			for i, w := range slotWatts {
				p[ringCores[(i+ep)%size]] = w
			}
			powers[ep] = p
		}
		res, err := c.Evaluate(Plan{Tau: tau, Powers: powers})
		if err != nil {
			return 0, err
		}
		return res.Peak, nil
	}
	metricEvals.Inc()

	decay := e.decay
	for k, l := range c.lambda {
		decay[k] = math.Exp(-l * tau)
	}

	// Background image in eigenspace: yBase = W·P_base. W's rows are the
	// transposed columns in wT, so accumulate column-wise.
	yBase := e.yBase
	for k := range yBase {
		yBase[k] = 0
	}
	for j := 0; j < n; j++ {
		w := base[j]
		if w == 0 {
			continue
		}
		row := e.wT.RowView(j)
		for k := 0; k < N; k++ {
			yBase[k] += w * row[k]
		}
	}

	// Per-epoch deviation images: only the ring's cores differ from base.
	// The rows live in the evaluator's scratch, grown to the largest ring
	// evaluated so far.
	for len(e.y) < size {
		e.y = append(e.y, make([]float64, N))
	}
	y := e.y[:size]
	for ep := 0; ep < size; ep++ {
		ye := y[ep]
		copy(ye, yBase)
		for i, watts := range slotWatts {
			core := ringCores[(i+ep)%size]
			d := watts - base[core]
			if d == 0 {
				continue
			}
			row := e.wT.RowView(core)
			for k := 0; k < N; k++ {
				ye[k] += d * row[k]
			}
		}
	}

	// Horner accumulation of the periodic forcing, then the fixed point
	// (the geometric-series closed form of Eqs. 9–10).
	z := e.z
	for k := range z {
		z[k] = 0
	}
	for ep := 0; ep < size; ep++ {
		for k := 0; k < N; k++ {
			z[k] = decay[k]*z[k] + (1-decay[k])*y[ep][k]
		}
	}
	u := e.u
	for k := 0; k < N; k++ {
		denom := 1 - math.Exp(-c.lambda[k]*tau*float64(size))
		if denom <= 0 {
			return 0, fmt.Errorf("rotation: non-decaying eigenmode %d", k)
		}
		u[k] = z[k] / denom
	}

	// Walk one period; track the hottest core at epoch boundaries (Eq. 11).
	ambient := c.m.Ambient()
	peak := math.Inf(-1)
	for ep := 0; ep < size; ep++ {
		for k := 0; k < N; k++ {
			u[k] = decay[k]*u[k] + (1-decay[k])*y[ep][k]
		}
		e.vCore.MulVecTo(e.coreT, u)
		if t := matrix.VecMax(e.coreT); t > peak {
			peak = t
		}
	}
	return peak + ambient, nil
}
