package sched

import (
	"math"

	"repro/internal/sim"
)

// TSPBudget computes the Thermal Safe Power budget [14] for a set of active
// cores: the largest uniform per-core power x such that, with every active
// core at x and every other core at idle power, no core's steady-state
// temperature exceeds tdtm.
//
// Linearity of the RC model gives a closed form. With R the core block of
// B⁻¹ (temperature rise per watt):
//
//	T_i = T_amb + Σ_j R_ij·idle + (x − idle)·Σ_{j∈active} R_ij
//
// so each core i bounds x, and the budget is the minimum over cores.
func TSPBudget(plat *sim.Platform, active []int, tdtm float64) float64 {
	if len(active) == 0 {
		return math.Inf(1)
	}
	n := plat.NumCores()
	idle := plat.Power.IdleWatts
	// CoreInfluence is the core block of B⁻¹ in either solver mode (in
	// sparse mode BInv() is nil; the block is computed lazily and cached).
	binv := plat.Thermal.CoreInfluence()
	amb := plat.Thermal.Ambient()

	activeSet := make([]bool, n)
	for _, c := range active {
		activeSet[c] = true
	}

	budget := math.Inf(1)
	for i := 0; i < n; i++ {
		var base, activeSum float64
		for j := 0; j < n; j++ {
			r := binv.At(i, j)
			base += r * idle
			if activeSet[j] {
				activeSum += r
			}
		}
		if activeSum <= 0 {
			continue
		}
		x := idle + (tdtm-amb-base)/activeSum
		if x < budget {
			budget = x
		}
	}
	if budget < idle {
		budget = idle
	}
	return budget
}

// maxFreqWithinBudget returns the highest DVFS level at which a thread of
// the given nominal power stays within the power budget (at least the
// minimum level — TSP cannot power-gate a running thread).
func maxFreqWithinBudget(plat *sim.Platform, nominalWatts, budget float64) float64 {
	d := plat.Power.DVFS()
	best := d.FMin
	for _, f := range d.Levels() {
		if plat.Power.ActivePower(nominalWatts, f) <= budget {
			best = f
		}
	}
	return best
}

// TSPGovernor pins threads like Static but budgets their power with TSP,
// choosing per-core DVFS levels so the steady state stays below TDTM — the
// DVFS-only management of the paper's Fig. 2(b).
type TSPGovernor struct {
	pins map[sim.ThreadID]int
	tdtm float64
}

// NewTSPGovernor builds the governor for a pinned mapping.
func NewTSPGovernor(pins map[sim.ThreadID]int, tdtm float64) *TSPGovernor {
	copied := make(map[sim.ThreadID]int, len(pins))
	for k, v := range pins {
		copied[k] = v
	}
	return &TSPGovernor{pins: copied, tdtm: tdtm}
}

// Name implements sim.Scheduler.
func (g *TSPGovernor) Name() string { return "tsp-dvfs" }

// Decide implements sim.Scheduler.
func (g *TSPGovernor) Decide(st *sim.State) sim.Decision {
	assignment := make(map[sim.ThreadID]int)
	var active []int
	nominal := map[int]float64{}
	for _, th := range st.Threads {
		core, ok := g.pins[th.ID]
		if !ok {
			continue
		}
		assignment[th.ID] = core
		active = append(active, core)
		nominal[core] = th.NominalWatts
	}
	budget := TSPBudget(st.Platform, active, g.tdtm)
	fmax := st.Platform.Power.DVFS().FMax
	freqs := uniformFreq(st.Platform.NumCores(), fmax)
	for core, nom := range nominal {
		freqs[core] = maxFreqWithinBudget(st.Platform, nom, budget)
	}
	return sim.Decision{Assignment: assignment, Freq: freqs}
}
