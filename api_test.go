package hotpotato_test

import (
	"errors"
	"testing"

	hotpotato "repro"
)

func TestQuickstartFlow(t *testing.T) {
	plat, err := hotpotato.NewPlatform(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	b := hotpotato.MustBenchmark("blackscholes")
	task, err := hotpotato.NewTask(0, b, 2, 0, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	sched := hotpotato.NewHotPotatoScheduler(plat, 70)
	res, err := hotpotato.Run(plat, hotpotato.DefaultSimConfig(), sched, []*hotpotato.Task{task})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= 0 || res.PeakTemp <= 45 {
		t.Fatalf("implausible result: %+v", res)
	}
}

func TestFacadeSchedulerConstructors(t *testing.T) {
	plat, err := hotpotato.NewPlatform(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	pins := map[hotpotato.ThreadID]int{{Task: 0, Thread: 0}: 5}
	for _, s := range []hotpotato.Scheduler{
		hotpotato.NewHotPotatoScheduler(plat, 70, hotpotato.WithRotationInterval(1e-3)),
		hotpotato.NewPCMigScheduler(70),
		hotpotato.NewStaticScheduler(pins, 0),
		hotpotato.NewTSPScheduler(pins, 70),
	} {
		if s.Name() == "" {
			t.Error("scheduler without a name")
		}
	}
	if _, err := hotpotato.NewRotationScheduler(map[hotpotato.ThreadID]int{}, []int{5, 6, 10, 9}, 0.5e-3); err != nil {
		t.Errorf("rotation scheduler: %v", err)
	}
}

func TestFacadeAnalytics(t *testing.T) {
	plat, err := hotpotato.NewPlatform(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	calc := hotpotato.NewPeakCalculator(plat)
	base := make([]float64, 16)
	for i := range base {
		base[i] = 0.3
	}
	base[5] = 9
	plan := hotpotato.RotatePlan(0.5e-3, base, []int{5, 6, 10, 9})
	peak, err := calc.PeakTemperature(plan)
	if err != nil {
		t.Fatal(err)
	}
	if peak <= 45 || peak >= 90 {
		t.Fatalf("peak = %.1f °C", peak)
	}
}

func TestFacadeWorkloadBuilders(t *testing.T) {
	b := hotpotato.MustBenchmark("canneal")
	specs, err := hotpotato.HomogeneousFullLoad(b, 16, []int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hotpotato.Instantiate(specs); err != nil {
		t.Fatal(err)
	}
	mix, err := hotpotato.RandomMix(5, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(mix) != 5 {
		t.Fatalf("mix size %d", len(mix))
	}
	if len(hotpotato.PARSEC()) != 8 {
		t.Error("PARSEC() != 8 benchmarks")
	}
	if _, err := hotpotato.BenchmarkByName("nope"); err == nil {
		t.Error("unknown benchmark resolved")
	}
}

func TestFacadeTSPBudget(t *testing.T) {
	plat, err := hotpotato.NewPlatform(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	budget := hotpotato.TSPBudget(plat, []int{5, 10}, 70)
	if budget <= 0 || budget > 50 {
		t.Fatalf("budget = %v W", budget)
	}
}

func TestFacadeTimeoutErrorExposed(t *testing.T) {
	plat, err := hotpotato.NewPlatform(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	task, err := hotpotato.NewTask(0, hotpotato.MustBenchmark("swaptions"), 1, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := hotpotato.DefaultSimConfig()
	cfg.MaxTime = 1e-3 // far too short for the task
	_, err = hotpotato.Run(plat, cfg, hotpotato.NewHotPotatoScheduler(plat, 70), []*hotpotato.Task{task})
	if !errors.Is(err, hotpotato.ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

func TestMustBenchmarkPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustBenchmark of unknown name did not panic")
		}
	}()
	hotpotato.MustBenchmark("ferret")
}

func TestSimulationTraceViaFacade(t *testing.T) {
	plat, err := hotpotato.NewPlatform(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	task, err := hotpotato.NewTask(0, hotpotato.MustBenchmark("dedup"), 2, 0, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := hotpotato.NewSimulation(plat, hotpotato.DefaultSimConfig(),
		hotpotato.NewHotPotatoScheduler(plat, 70), []*hotpotato.Task{task})
	if err != nil {
		t.Fatal(err)
	}
	called := false
	s.SetTrace(func(tm float64, temps, watts, freqs []float64) { called = true })
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !called {
		t.Error("trace never invoked")
	}
}

func TestFacadeHybridSchedulerAndRecorder(t *testing.T) {
	plat, err := hotpotato.NewPlatform(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	task, err := hotpotato.NewTask(0, hotpotato.MustBenchmark("x264"), 2, 0, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := hotpotato.NewSimulation(plat, hotpotato.DefaultSimConfig(),
		hotpotato.NewHotPotatoDVFSScheduler(plat, 70), []*hotpotato.Task{task})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := hotpotato.NewTraceRecorder(2)
	if err != nil {
		t.Fatal(err)
	}
	s.SetTrace(rec.Hook())
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if rec.Len() == 0 {
		t.Error("recorder captured nothing")
	}
	if rec.TempSummary().Max <= 45 {
		t.Error("trace never heated")
	}
	if _, err := hotpotato.NewTraceRecorder(0); err == nil {
		t.Error("invalid stride accepted")
	}
}
