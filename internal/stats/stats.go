// Package stats provides the small set of descriptive statistics the
// experiment harnesses need: means, deviations, percentiles, and normal
// confidence intervals for multi-seed runs, plus fixed-width histograms for
// temperature traces.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs; NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance; NaN for fewer than two
// samples.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)-1)
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the smallest element; NaN for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element; NaN for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) using linear
// interpolation between closest ranks; NaN for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 || p < 0 || p > 100 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 50th percentile.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Summary bundles the descriptive statistics of one sample.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	P50    float64
	P95    float64
	Max    float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    Min(xs),
		P50:    Median(xs),
		P95:    Percentile(xs, 95),
		Max:    Max(xs),
	}
}

// String implements fmt.Stringer.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g sd=%.3g min=%.4g p50=%.4g p95=%.4g max=%.4g",
		s.N, s.Mean, s.StdDev, s.Min, s.P50, s.P95, s.Max)
}

// ConfidenceInterval95 returns the half-width of the normal-approximation
// 95% confidence interval of the mean (1.96·σ/√n); NaN for n < 2.
func ConfidenceInterval95(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	return 1.96 * StdDev(xs) / math.Sqrt(float64(len(xs)))
}

// Histogram counts xs into `bins` equal-width bins spanning [lo, hi); values
// outside the range clamp into the first/last bin. It returns the counts and
// the bin edges (len bins+1).
func Histogram(xs []float64, lo, hi float64, bins int) (counts []int, edges []float64, err error) {
	if bins < 1 {
		return nil, nil, fmt.Errorf("stats: need at least one bin, got %d", bins)
	}
	if hi <= lo {
		return nil, nil, fmt.Errorf("stats: invalid range [%g, %g)", lo, hi)
	}
	counts = make([]int, bins)
	edges = make([]float64, bins+1)
	width := (hi - lo) / float64(bins)
	for i := range edges {
		edges[i] = lo + float64(i)*width
	}
	for _, x := range xs {
		idx := int((x - lo) / width)
		if idx < 0 {
			idx = 0
		}
		if idx >= bins {
			idx = bins - 1
		}
		counts[idx]++
	}
	return counts, edges, nil
}
