package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	hotpotato "repro"
	"repro/internal/fabric"
	"repro/internal/obs"
)

// The batch stream writer lives in internal/fabric (fabric.RecordStream):
// the dispatcher's client-facing /v1/batch speaks the identical wire
// contract, so both endpoints share one implementation — including the
// structural guarantee that nothing can be written after the terminal
// "summary" record, and that a record the stream refuses (marshal failure,
// post-terminal) is counted and logged instead of silently vanishing.

// wantsSSE reports whether the request negotiated Server-Sent Events; the
// default (and anything ambiguous) is NDJSON.
func wantsSSE(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), "text/event-stream")
}

// handleBatch streams a sweep: it expands the SweepSpec cross-product,
// admission-checks the cell count, then executes every cell over the shared
// worker semaphore — each cell through the result cache, so repeated cells
// (and re-posted sweeps) replay instead of re-simulating. Records go out in
// completion order as NDJSON lines (or SSE events via Accept:
// text/event-stream): one "sweep" header, one "result" per cell, periodic
// "progress" heartbeats, and a terminal "summary". A client disconnect
// cancels the request context, which stops in-flight cells within one
// scheduler epoch and fails the rest immediately.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if s.closed.Load() {
		writeError(w, http.StatusServiceUnavailable, errors.New("server shutting down"))
		return
	}
	var sweep hotpotato.SweepSpec
	if err := json.NewDecoder(r.Body).Decode(&sweep); err != nil {
		metricBadRequests.Inc()
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding SweepSpec: %w", err))
		return
	}
	if err := sweep.Validate(); err != nil {
		metricBadRequests.Inc()
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if n := sweep.CellCount(); n > s.cfg.MaxSweepCells {
		metricBatchRejected.Inc()
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("sweep expands to %d cells, server limit is %d", n, s.cfg.MaxSweepCells))
		return
	}
	cells, err := sweep.Expand()
	if err != nil {
		// Unreachable after the admission check, but fail closed.
		writeError(w, http.StatusRequestEntityTooLarge, err)
		return
	}
	// Expand has already applied WithDefaults per cell (which never fills the
	// solver), so the shared helper sees exactly the cells whose clients left
	// the choice open — the same post-defaults point where decodeSpec applies
	// it for /v1/run, keeping SpecHash (and so the cache key) endpoint-
	// independent for identical specs.
	for i := range cells {
		fabric.ApplyDefaultSolver(&cells[i].Spec, s.cfg.DefaultSolver)
	}

	// The sweep dies with the request (client disconnect) or the server
	// (shutdown force-cancel), whichever comes first — same rule as /v1/run.
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	defer context.AfterFunc(s.baseCtx, cancel)()

	s.runs.Add(1)
	defer s.runs.Done()

	metricBatchRequests.Inc()
	requestID := requestIDFrom(r.Context())
	logger := obs.LoggerFrom(r.Context())
	logger.Info("batch started", "cells", len(cells), "sse", wantsSSE(r))

	stream := fabric.NewRecordStream(w, wantsSSE(r), func(typ, reason string) {
		metricBatchDroppedRecords.Inc()
		logger.Warn("batch dropped stream record", "record", typ, "reason", reason)
	})
	began := time.Now()
	stream.Send("sweep", hotpotato.SweepStarted{Type: "sweep", Total: len(cells), RequestID: requestID})

	var done atomic.Int64
	// stopHeartbeat joins the heartbeat goroutine. It MUST run before the
	// summary is sent, not on handler return: a late tick racing the terminal
	// record would put a "progress" after the documented-final "summary"
	// (stream.Send would refuse and count it, but the contract is to stop the
	// source, not lean on the guard). The deferred call makes the early
	// writeError/panic exits safe; stopHeartbeat is idempotent.
	stopHeartbeat := func() {}
	if s.cfg.BatchHeartbeat > 0 {
		tick := time.NewTicker(s.cfg.BatchHeartbeat)
		hbCtx, hbStop := context.WithCancel(ctx)
		hbDone := make(chan struct{})
		var hbOnce sync.Once
		stopHeartbeat = func() {
			hbOnce.Do(func() {
				hbStop()
				<-hbDone
				tick.Stop()
			})
		}
		defer stopHeartbeat()
		go func() {
			defer close(hbDone)
			for {
				select {
				case <-hbCtx.Done():
					return
				case <-tick.C:
					stream.Send("progress", hotpotato.SweepProgress{
						Type: "progress", Done: int(done.Load()), Total: len(cells),
						ElapsedMS: float64(time.Since(began).Nanoseconds()) / 1e6,
					})
				}
			}
		}()
	}

	// A sweep that asks for pruning gets it only when the server holds a twin
	// model; without one every cell simulates (the stream stays well-formed,
	// just without "pruned" records).
	var prune func(context.Context, hotpotato.SweepCell) (hotpotato.PruneDecision, bool)
	if sweep.PruneAboveTemp != nil && s.twin != nil {
		prune = hotpotato.NewTwinSweepPruner(s.twin, *sweep.PruneAboveTemp)
	}

	summary := hotpotato.SweepSummary{Type: "summary", Total: len(cells)}
	sweepErr := hotpotato.ExecuteSweepCells(ctx, cells, hotpotato.SweepOptions{
		Workers: s.cfg.Workers,
		Run:     s.ExecuteCell,
		Prune:   prune,
	}, func(cellRes hotpotato.SweepCellResult) {
		// emit is serialized by ExecuteSweepCells, so the counters are safe.
		rec := hotpotato.NewSweepResultRecord(cellRes)
		summary.Observe(rec)
		if rec.Status == "pruned" {
			metricBatchPruned.Inc()
		}
		done.Add(1)
		stream.Send("result", rec)
	})

	// Every result is out and the heartbeat goroutine is joined before the
	// terminal record goes on the wire — "summary is the last record" holds
	// by construction, and RecordStream seals the stream right after as a
	// second line of defense.
	stopHeartbeat()

	summary.ElapsedMS = float64(time.Since(began).Nanoseconds()) / 1e6
	stream.Send("summary", summary)
	logger.Info("batch finished",
		"cells", summary.Total, "completed", summary.Completed,
		"failed", summary.Failed, "canceled", summary.Canceled,
		"pruned", summary.Pruned, "cache_hits", summary.CacheHits,
		"dropped_records", stream.Dropped(),
		"duration_ms", summary.ElapsedMS,
		"error", errString(sweepErr),
	)
}

// ExecuteCell runs one sweep cell through the server's serving stack: spec
// hash as the cache key, the shared result cache (singleflight included),
// the worker semaphore, and a span per cell. It is the Run callback of the
// local /v1/batch pool and, unchanged, the executor a fabric worker plugs
// into its pull loop — the same function body is what makes a distributed
// sweep's records bit-identical to a single-node run's. ExecuteCell expects
// the canonical spec ExecuteSweepCells hands its runner; the reported bool
// is a cache hit.
func (s *Server) ExecuteCell(ctx context.Context, cell hotpotato.SweepCell) (*hotpotato.Result, bool, error) {
	hash, err := hotpotato.SpecHash(cell.Spec)
	if err != nil {
		return nil, false, err
	}
	span := obs.SpanFromContext(ctx).StartChild("sweep_cell")
	span.SetAttr("index", fmt.Sprint(cell.Index))
	span.SetAttr("hash", hash)
	res, _, cached, err := s.cachedExecute(ctx, cell.Spec, hash)
	span.SetError(err)
	span.End()
	metricBatchCells.Inc()
	return res, cached, err
}
