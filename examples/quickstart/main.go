// Quickstart: run a two-threaded blackscholes on a 16-core S-NUCA chip under
// the HotPotato scheduler and print the headline metrics.
package main

import (
	"fmt"
	"log"

	hotpotato "repro"
)

func main() {
	// The motivational 16-core chip (the paper's Fig. 1); the evaluation
	// platform would be NewPlatform(8, 8).
	plat, err := hotpotato.NewPlatform(4, 4)
	if err != nil {
		log.Fatal(err)
	}

	// A two-threaded blackscholes instance arriving at t = 0.
	task, err := hotpotato.NewTask(0, hotpotato.MustBenchmark("blackscholes"), 2, 0, 1)
	if err != nil {
		log.Fatal(err)
	}

	// HotPotato with the paper's 70 °C DTM threshold.
	sched := hotpotato.NewHotPotatoScheduler(plat, 70)

	res, err := hotpotato.Run(plat, hotpotato.DefaultSimConfig(), sched, []*hotpotato.Task{task})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("scheduler:    %s\n", res.Scheduler)
	fmt.Printf("response:     %.1f ms\n", res.AvgResponse*1e3)
	fmt.Printf("peak temp:    %.1f °C (threshold 70 °C)\n", res.PeakTemp)
	fmt.Printf("migrations:   %d\n", res.Migrations)
	fmt.Printf("core energy:  %.2f J\n", res.EnergyJ)
	fmt.Printf("DTM events:   %d (%.1f ms throttled)\n", res.DTMEvents, res.DTMTime*1e3)
}
