package fabric_test

// End-to-end fabric test: a dispatcher with two pull-loop workers (each a
// real service stack, so leased cells run through a ResultCache exactly as
// in production) executes a sweep whose first worker dies mid-flight. The
// surviving worker absorbs the re-queued cells and the client stream must
// carry the same (Index, Hash, Result) triples as a single-node
// hotpotato.ExecuteSweep of the identical spec — the acceptance criterion of
// the distributed fabric. The external test package breaks the
// service→fabric import cycle.

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	hotpotato "repro"
	"repro/internal/fabric"
	"repro/internal/service"
)

const e2eSweepJSON = `{
	"base": {"platform": {"width": 4, "height": 4}},
	"axes": {
		"schedulers": [{"name": "hotpotato"}, {"name": "reactive"}],
		"workloads": [
			{"kind": "explicit", "tasks": [{"bench": "blackscholes", "threads": 2, "work_scale": 0.6}]},
			{"kind": "explicit", "tasks": [{"bench": "swaptions", "threads": 3, "work_scale": 0.6}]},
			{"kind": "explicit", "tasks": [{"bench": "bodytrack", "threads": 2, "work_scale": 0.6}]}
		]
	}
}`

func TestFabricEndToEndWorkerDeathParity(t *testing.T) {
	d := fabric.NewDispatcher(fabric.Config{
		LeaseTTL:   time.Second,
		LeaseCells: 1, // one cell per lease spreads the sweep across workers
		Heartbeat:  -1,
	})
	reaperCtx, stopReaper := context.WithCancel(context.Background())
	defer stopReaper()
	go d.Run(reaperCtx)
	ds := httptest.NewServer(d.Handler())
	defer ds.Close()

	// Two workers, each with its own service stack. The doomed one gets a
	// hard-cancelable context — the in-process stand-in for kill -9 (the CI
	// smoke kills a real process).
	startWorker := func(ctx context.Context, id string) <-chan struct{} {
		svc := service.New(service.Config{Workers: 2})
		t.Cleanup(func() {
			shCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			svc.Shutdown(shCtx)
		})
		done := make(chan struct{})
		w := &fabric.Worker{
			Dispatcher: ds.URL,
			ID:         id,
			LeaseCells: 1,
			Exec:       svc.ExecuteCell,
			IdlePoll:   20 * time.Millisecond,
		}
		go func() {
			defer close(done)
			w.Run(ctx)
		}()
		return done
	}

	doomedCtx, killDoomed := context.WithCancel(context.Background())
	defer killDoomed()
	doomedDone := startWorker(doomedCtx, "doomed")
	survivorCtx, stopSurvivor := context.WithCancel(context.Background())
	defer stopSurvivor()
	startWorker(survivorCtx, "survivor")

	resp, err := http.Post(ds.URL+"/v1/batch", "application/json", strings.NewReader(e2eSweepJSON))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d", resp.StatusCode)
	}

	// Stream records; the moment the first result lands, kill the doomed
	// worker so whatever it holds mid-lease must be recovered.
	type rec struct {
		Type    string            `json:"type"`
		Index   int               `json:"index"`
		Hash    string            `json:"hash"`
		Status  string            `json:"status"`
		Error   string            `json:"error"`
		Result  *hotpotato.Result `json:"result"`
		SweepID string            `json:"sweep_id"`
		Total   int               `json:"total"`
	}
	var records []rec
	killed := false
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var r rec
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			t.Fatalf("bad record: %v\n%s", err, line)
		}
		records = append(records, r)
		if r.Type == "result" && !killed {
			killed = true
			killDoomed()
			<-doomedDone
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	if records[0].Type != "sweep" || records[0].SweepID == "" {
		t.Fatalf("stream header %+v", records[0])
	}
	if last := records[len(records)-1]; last.Type != "summary" {
		t.Fatalf("last record %q, want summary", last.Type)
	}
	got := map[int]rec{}
	for _, r := range records {
		if r.Type != "result" {
			continue
		}
		if _, dup := got[r.Index]; dup {
			t.Fatalf("cell %d emitted twice", r.Index)
		}
		got[r.Index] = r
	}
	if len(got) != 6 {
		t.Fatalf("stream carried %d cells, want 6 (worker death must not lose cells)", len(got))
	}

	// Single-node reference of the identical sweep.
	var spec hotpotato.SweepSpec
	if err := json.Unmarshal([]byte(e2eSweepJSON), &spec); err != nil {
		t.Fatal(err)
	}
	want := map[int]hotpotato.SweepResultRecord{}
	err = hotpotato.ExecuteSweep(context.Background(), spec, hotpotato.SweepOptions{},
		func(r hotpotato.SweepCellResult) { want[r.Index] = hotpotato.NewSweepResultRecord(r) })
	if err != nil {
		t.Fatal(err)
	}

	for idx, w := range want {
		g, ok := got[idx]
		if !ok {
			t.Errorf("cell %d missing from the fabric stream", idx)
			continue
		}
		if g.Status != "ok" || w.Status != "ok" {
			t.Errorf("cell %d status fabric=%q single=%q (%s)", idx, g.Status, w.Status, g.Error)
			continue
		}
		if g.Hash != w.Hash {
			t.Errorf("cell %d hash fabric=%q single=%q", idx, g.Hash, w.Hash)
		}
		// Only the host wall-clock field may differ between hosts/runs.
		g.Result.SchedulerHostTime = 0
		w.Result.SchedulerHostTime = 0
		gj, _ := json.Marshal(g.Result)
		wj, _ := json.Marshal(w.Result)
		if string(gj) != string(wj) {
			t.Errorf("cell %d result diverges from single-node run:\nfabric: %s\nsingle: %s", idx, gj, wj)
		}
	}
}
