package rotation

import "repro/internal/obs"

// metricEvals counts Algorithm-1 analytic evaluations (general Evaluate plus
// the allocation-free ring fast path). A single atomic increment keeps the
// ring scan's zero-allocation regression test honest.
var metricEvals = obs.NewCounter("rotation_alg1_evals_total",
	"Algorithm-1 analytic peak-temperature evaluations (Evaluate + PeakRingRotation).")
