package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"time"

	hotpotato "repro"
	"repro/internal/obs"
)

// RunCell executes one sweep cell and reports (result, cache-hit, error) —
// the same shape as hotpotato.SweepOptions.Run. hotpotato-server plugs its
// cache-consulting executor in here, so fabric cells flow through the same
// ResultCache as the worker's own /v1/run traffic.
type RunCell func(ctx context.Context, cell hotpotato.SweepCell) (*hotpotato.Result, bool, error)

// DriftQuery asks the worker's serving stack whether finishing a cell with
// this SpecHash closed a twin-drift observation (a pending /v1/predict
// answer for the same hash). hotpotato-server plugs its drift tracker in
// here; the report rides the results post to the dispatcher's sweep status.
type DriftQuery func(hash string) (DriftReport, bool)

// DefaultCellSpanDepth caps the spans exported per cell. A cell's subtree is
// its root plus the service phases plus one span per scheduler epoch, so the
// cap keeps long simulations from shipping megabytes of epoch spans on every
// results post; the overflow is counted in CellSpans.Dropped.
const DefaultCellSpanDepth = 128

// Worker is the pull loop a hotpotato-server runs when given a dispatcher:
// register, then lease → execute → post results → heartbeat, forever. It
// never applies local policy (like the worker's own -solver default) to
// fabric cells — the dispatcher already finalized every spec, and a worker
// that rewrote them would break the fleet-wide hash agreement.
type Worker struct {
	// Dispatcher is the dispatcher's base URL (e.g. http://host:8080).
	Dispatcher string
	// ID is the worker identity offered at registration; empty lets the
	// dispatcher assign one.
	ID string
	// LeaseCells is the per-lease cell ask; 0 accepts the dispatcher default.
	LeaseCells int
	// Exec executes one cell (required).
	Exec RunCell
	// Client is the HTTP client used for dispatcher calls; nil means a
	// client with a 30s timeout.
	Client *http.Client
	// Logger receives the worker's structured log stream; nil is quiet.
	Logger *slog.Logger
	// IdlePoll is the lease-poll interval while the queue is empty; 0 means
	// one second.
	IdlePoll time.Duration
	// SpanDepth caps the span records captured (and exported) per cell: 0
	// means DefaultCellSpanDepth, negative disables span capture entirely.
	SpanDepth int
	// Drift, when set, is consulted after every finished cell; closed
	// twin-drift observations are reported with the cell's result.
	Drift DriftQuery

	// lastCounters is the previous heartbeat's counter snapshot — the
	// baseline the federation deltas are computed against. Only the (one at
	// a time) heartbeat goroutine touches it after Run seeds it.
	lastCounters map[string]int64
}

// Run registers and pulls work until ctx is done. Transient dispatcher
// errors back off and retry: a worker outlives dispatcher restarts.
func (w *Worker) Run(ctx context.Context) error {
	if w.Exec == nil {
		return fmt.Errorf("fabric: Worker.Exec is required")
	}
	if w.Client == nil {
		w.Client = &http.Client{Timeout: 30 * time.Second}
	}
	if w.Logger == nil {
		w.Logger = obs.NopLogger()
	}
	if w.IdlePoll <= 0 {
		w.IdlePoll = time.Second
	}
	// Federation deltas start from here, not zero: a process hosting several
	// workers (tests) must not re-report the process counters per worker.
	w.lastCounters, _ = obs.Default().Values()

	var reg RegisterResponse
	for {
		var err error
		reg, err = w.register(ctx)
		if err == nil {
			break
		}
		w.Logger.Warn("fabric register failed, retrying", "error", err.Error())
		if !sleepCtx(ctx, w.IdlePoll) {
			return ctx.Err()
		}
	}
	w.ID = reg.ID
	heartbeatEvery := time.Duration(reg.HeartbeatMS) * time.Millisecond
	if heartbeatEvery <= 0 {
		heartbeatEvery = 5 * time.Second
	}
	w.Logger.Info("fabric worker running",
		"worker", w.ID, "dispatcher", w.Dispatcher, "heartbeat", heartbeatEvery.String())

	for ctx.Err() == nil {
		grant, err := w.lease(ctx)
		if err != nil {
			w.Logger.Warn("fabric lease failed, retrying", "error", err.Error())
			sleepCtx(ctx, w.IdlePoll)
			continue
		}
		if grant == nil {
			sleepCtx(ctx, w.IdlePoll)
			continue
		}
		w.executeLease(ctx, grant, heartbeatEvery)
	}
	return ctx.Err()
}

// executeLease runs one granted lease: cells sequentially (the worker's own
// /v1/run concurrency is governed by its serving stack; the fabric's
// parallelism comes from many workers, not many goroutines per lease), each
// result posted as it finishes, with a heartbeat goroutine keeping the lease
// alive. A heartbeat or results response with OK=false abandons the rest.
func (w *Worker) executeLease(ctx context.Context, grant *LeaseGrant, heartbeatEvery time.Duration) {
	w.Logger.Info("fabric lease accepted",
		"lease", grant.ID, "sweep", grant.SweepID, "cells", len(grant.Cells))

	// leaseCtx cancels cell execution when the lease dies under us
	// (dispatcher forgot it, or the sweep was canceled).
	leaseCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	var done int
	doneCh := make(chan int, len(grant.Cells))
	hbStopped := make(chan struct{})
	go func() {
		defer close(hbStopped)
		tick := time.NewTicker(heartbeatEvery)
		defer tick.Stop()
		for {
			select {
			case <-leaseCtx.Done():
				return
			case n := <-doneCh:
				done = n
			case <-tick.C:
				resp, err := w.heartbeat(leaseCtx, grant.ID, done)
				if err != nil {
					// Transient: the lease TTL tolerates a few missed beats.
					w.Logger.Warn("fabric heartbeat failed", "lease", grant.ID, "error", err.Error())
					continue
				}
				if !resp.OK || resp.Canceled {
					w.Logger.Info("fabric lease abandoned",
						"lease", grant.ID, "ok", resp.OK, "canceled", resp.Canceled)
					cancel()
					return
				}
			}
		}
	}()

	// Span capture: when the grant carries a trace context, every cell runs
	// under a fresh bounded recorder whose root span joins the dispatcher's
	// trace (trace_id attr, lease span as remote parent). The recorder map
	// needs no lock — Workers: 1 below means the exec wrapper and the emit
	// callback share one goroutine.
	exec := w.Exec
	recorders := map[int]*obs.SpanRecorder{}
	tc, traced := obs.ParseTraceParent(grant.TraceParent)
	if traced && w.SpanDepth >= 0 {
		depth := w.SpanDepth
		if depth == 0 {
			depth = DefaultCellSpanDepth
		}
		exec = func(ctx context.Context, cell hotpotato.SweepCell) (*hotpotato.Result, bool, error) {
			rec := obs.NewSpanRecorder(depth)
			recorders[cell.Index] = rec
			root := rec.Start("cell")
			root.SetAttr("index", cell.Index)
			root.SetAttr("worker", w.ID)
			root.SetAttr("trace_id", tc.TraceID)
			root.SetAttr("parent_span_id", tc.SpanID)
			ctx = obs.ContextWithTraceContext(obs.ContextWithSpan(ctx, root), tc)
			res, cached, err := w.Exec(ctx, cell)
			if cached {
				root.SetAttr("cached", true)
			}
			root.SetError(err)
			root.End()
			return res, cached, err
		}
	}

	// Cells run through the library's own sweep executor (Workers: 1 — the
	// fabric's parallelism is many workers, not many goroutines per lease),
	// so canonicalization, hashing, and result classification are the exact
	// code path a single-node /v1/batch uses. That shared path is what makes
	// a distributed sweep's (Index, Hash, Result) triples bit-identical to a
	// local run's.
	finished := 0
	hotpotato.ExecuteSweepCells(leaseCtx, grant.Cells, hotpotato.SweepOptions{
		Workers: 1,
		Run:     exec,
	}, func(cr hotpotato.SweepCellResult) {
		rec := hotpotato.NewSweepResultRecord(cr)
		if leaseCtx.Err() != nil && rec.Status == "canceled" {
			// Lease died under us: the dispatcher re-queues these cells, so
			// reporting them canceled would wrongly finish them.
			return
		}
		req := ResultsRequest{WorkerID: w.ID, LeaseID: grant.ID,
			Records: []hotpotato.SweepResultRecord{rec}}
		if sr := recorders[cr.Index]; sr != nil {
			delete(recorders, cr.Index)
			req.Spans = []CellSpans{{
				Index: cr.Index, Worker: w.ID, Spans: sr.Records(), Dropped: sr.Dropped(),
			}}
		}
		if w.Drift != nil && rec.Hash != "" {
			if dr, closed := w.Drift(rec.Hash); closed {
				dr.Index = cr.Index
				dr.Hash = rec.Hash
				req.Drift = []DriftReport{dr}
			}
		}
		// Post with ctx, not leaseCtx: a result finished microseconds before
		// the lease was canceled is still worth delivering.
		resp, perr := w.postResults(ctx, req)
		if perr != nil {
			w.Logger.Warn("fabric results post failed", "lease", grant.ID, "error", perr.Error())
			// The cell is done but unreported; the lease expires and the cell
			// re-runs elsewhere (cheaply here, if this worker re-leases it —
			// its result is in the local cache).
			cancel()
			return
		}
		if !resp.OK {
			w.Logger.Info("fabric lease abandoned", "lease", grant.ID, "ok", false)
			cancel()
			return
		}
		finished += resp.Accepted
		select {
		case doneCh <- finished:
		default:
		}
	})
	cancel()
	<-hbStopped
	// Final telemetry flush, after the heartbeat goroutine is joined (the
	// telemetry snapshot is single-goroutine state). Short leases finish
	// before the first heartbeat tick ever fires, which would leave a fast
	// sweep entirely unfederated; the dispatcher folds the payload even when
	// the lease itself is already forgotten.
	if ctx.Err() == nil {
		if _, err := w.heartbeat(ctx, grant.ID, finished); err != nil {
			w.Logger.Warn("fabric telemetry flush failed", "lease", grant.ID, "error", err.Error())
		}
	}
}

func (w *Worker) register(ctx context.Context) (RegisterResponse, error) {
	var resp RegisterResponse
	err := w.post(ctx, "/fabric/v1/register", RegisterRequest{ID: w.ID, Capacity: w.LeaseCells}, &resp)
	return resp, err
}

func (w *Worker) lease(ctx context.Context) (*LeaseGrant, error) {
	var resp LeaseResponse
	err := w.post(ctx, "/fabric/v1/lease", LeaseRequest{WorkerID: w.ID, MaxCells: w.LeaseCells}, &resp)
	return resp.Lease, err
}

func (w *Worker) heartbeat(ctx context.Context, leaseID string, done int) (HeartbeatResponse, error) {
	counters, gauges := w.telemetry()
	var resp HeartbeatResponse
	err := w.post(ctx, "/fabric/v1/heartbeat",
		HeartbeatRequest{WorkerID: w.ID, LeaseID: leaseID, Done: done,
			Counters: counters, Gauges: gauges}, &resp)
	return resp, err
}

// telemetry assembles the federation payload: counter deltas since the last
// heartbeat (zero deltas omitted) and current gauge values. Called only from
// the per-lease heartbeat goroutine — one at a time, joined before the next
// lease — so lastCounters needs no lock.
func (w *Worker) telemetry() (map[string]int64, map[string]float64) {
	counters, gauges := obs.Default().Values()
	deltas := make(map[string]int64)
	for name, v := range counters {
		if d := v - w.lastCounters[name]; d > 0 {
			deltas[name] = d
		}
		w.lastCounters[name] = v
	}
	if len(deltas) == 0 {
		deltas = nil
	}
	return deltas, gauges
}

func (w *Worker) postResults(ctx context.Context, req ResultsRequest) (ResultsResponse, error) {
	var resp ResultsResponse
	err := w.post(ctx, "/fabric/v1/results", req, &resp)
	return resp, err
}

// post is the one dispatcher RPC shape: JSON in, JSON out, any non-2xx is an
// error carrying the body's first line.
func (w *Worker) post(ctx context.Context, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.Dispatcher+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var env struct {
			Error struct {
				Message string `json:"message"`
			} `json:"error"`
		}
		json.NewDecoder(resp.Body).Decode(&env)
		return fmt.Errorf("%s: %s (%s)", path, resp.Status, env.Error.Message)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// sleepCtx sleeps d or until ctx is done; it reports whether ctx survived.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
