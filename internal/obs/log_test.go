package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
)

func TestParseLogLevel(t *testing.T) {
	cases := map[string]slog.Level{
		"debug":   slog.LevelDebug,
		"info":    slog.LevelInfo,
		"":        slog.LevelInfo,
		"WARN":    slog.LevelWarn,
		"warning": slog.LevelWarn,
		" error ": slog.LevelError,
	}
	for in, want := range cases {
		got, err := ParseLogLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLogLevel(%q) = %v, %v — want %v", in, got, err, want)
		}
	}
	if _, err := ParseLogLevel("loud"); err == nil {
		t.Error("ParseLogLevel accepted \"loud\"")
	}
}

func TestNewLoggerJSON(t *testing.T) {
	var buf bytes.Buffer
	l, err := NewLogger(&buf, "info", "json")
	if err != nil {
		t.Fatal(err)
	}
	l.Debug("hidden")
	l.Info("hello", "k", "v")
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("got %d lines, want 1 (debug filtered):\n%s", len(lines), buf.String())
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("not JSON: %v", err)
	}
	if rec["msg"] != "hello" || rec["k"] != "v" || rec["level"] != "INFO" {
		t.Errorf("record = %v", rec)
	}
}

func TestNewLoggerText(t *testing.T) {
	var buf bytes.Buffer
	l, err := NewLogger(&buf, "warn", "text")
	if err != nil {
		t.Fatal(err)
	}
	l.Info("hidden")
	l.Warn("careful")
	out := buf.String()
	if strings.Contains(out, "hidden") || !strings.Contains(out, "careful") {
		t.Errorf("output = %q", out)
	}
}

func TestNewLoggerRejectsBadInputs(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewLogger(&buf, "loud", "json"); err == nil {
		t.Error("accepted bad level")
	}
	if _, err := NewLogger(&buf, "info", "xml"); err == nil {
		t.Error("accepted bad format")
	}
}

func TestNopLoggerDisabled(t *testing.T) {
	l := NopLogger()
	for _, lv := range []slog.Level{slog.LevelDebug, slog.LevelInfo, slog.LevelWarn, slog.LevelError} {
		if l.Enabled(context.Background(), lv) {
			t.Errorf("NopLogger enabled at %v", lv)
		}
	}
}

func TestLoggerContext(t *testing.T) {
	ctx := context.Background()
	if LoggerFrom(ctx) != nopLogger {
		t.Error("uninstrumented context did not fall back to the nop logger")
	}
	var buf bytes.Buffer
	l, err := NewLogger(&buf, "info", "json")
	if err != nil {
		t.Fatal(err)
	}
	ctx = ContextWithLogger(ctx, l)
	if LoggerFrom(ctx) != l {
		t.Error("logger did not round-trip through context")
	}
	if ContextWithLogger(ctx, nil) != ctx {
		t.Error("ContextWithLogger(nil) allocated a new context")
	}
}
