// Package perf is the interval performance model (the Sniper/HotSniper
// abstraction level): a thread's execution rate on a core is derived from a
// two-component CPI stack — a compute component that scales with core
// frequency, and a memory component in wall-clock seconds set by the S-NUCA
// LLC round-trip for the core's AMD. The model captures the two effects the
// paper's schedulers trade on:
//
//   - S-NUCA performance heterogeneity: low-AMD (central) cores see faster
//     average LLC accesses, so memory-bound threads prefer them ([19]);
//   - DVFS asymmetry: lowering f stretches only the compute component, so
//     memory-bound threads lose less performance than compute-bound ones.
package perf

import (
	"fmt"

	"repro/internal/noc"
)

// Params is the per-benchmark CPI stack description.
type Params struct {
	BaseCPI float64 // cycles per instruction when not stalled on the LLC
	MPKI    float64 // LLC accesses per kilo-instruction
	// LLCMissRatio is the fraction of LLC accesses that miss the distributed
	// LLC entirely and pay the off-chip DRAM round trip on top of the bank
	// access. Zero models a fully cache-resident working set.
	LLCMissRatio float64
}

// Validate checks the parameters.
func (p Params) Validate() error {
	if p.BaseCPI <= 0 {
		return fmt.Errorf("perf: BaseCPI must be positive, got %g", p.BaseCPI)
	}
	if p.MPKI < 0 {
		return fmt.Errorf("perf: MPKI must be non-negative, got %g", p.MPKI)
	}
	if p.LLCMissRatio < 0 || p.LLCMissRatio > 1 {
		return fmt.Errorf("perf: LLC miss ratio %g outside [0,1]", p.LLCMissRatio)
	}
	return nil
}

// Model computes execution rates on a platform.
type Model struct {
	net *noc.Network

	// BankAccess is the LLC bank array access time added to every LLC
	// round-trip (seconds).
	BankAccess float64
	// DRAMLatency is the additional off-chip round trip an LLC miss pays:
	// home bank → memory controller → DRAM array and back. It is
	// placement-independent (the bank→controller hop averages out over the
	// statically interleaved banks).
	DRAMLatency float64
}

// DefaultBankAccess is a typical 128 KB SRAM bank access time.
const DefaultBankAccess = 5e-9

// DefaultDRAMLatency is a typical off-chip access penalty (controller
// queueing + DRAM array access).
const DefaultDRAMLatency = 60e-9

// New builds a performance model over the NoC with no off-chip penalty;
// use NewWithDRAM to model LLC misses.
func New(net *noc.Network, bankAccess float64) (*Model, error) {
	return NewWithDRAM(net, bankAccess, 0)
}

// NewWithDRAM builds a performance model that charges dramLatency seconds on
// the LLCMissRatio fraction of LLC accesses.
func NewWithDRAM(net *noc.Network, bankAccess, dramLatency float64) (*Model, error) {
	if bankAccess < 0 {
		return nil, fmt.Errorf("perf: bank access time must be non-negative, got %g", bankAccess)
	}
	if dramLatency < 0 {
		return nil, fmt.Errorf("perf: DRAM latency must be non-negative, got %g", dramLatency)
	}
	return &Model{net: net, BankAccess: bankAccess, DRAMLatency: dramLatency}, nil
}

// MemTimePerInstr returns the average wall-clock memory stall per instruction
// for a thread on core `core`: MPKI/1000 accesses, each paying the bank
// access plus the AMD-dependent NoC round trip, and the missing fraction
// additionally paying the off-chip DRAM penalty. Frequency-independent.
func (m *Model) MemTimePerInstr(p Params, core int) float64 {
	perAccess := m.BankAccess + m.net.AvgLLCRoundTrip(core) + p.LLCMissRatio*m.DRAMLatency
	return p.MPKI / 1000 * perAccess
}

// TimePerInstr returns the average wall-clock seconds per instruction on core
// `core` at frequency f.
func (m *Model) TimePerInstr(p Params, core int, f float64) float64 {
	if f <= 0 {
		panic(fmt.Sprintf("perf: frequency must be positive, got %g", f))
	}
	return p.BaseCPI/f + m.MemTimePerInstr(p, core)
}

// IPS returns instructions per second on core `core` at frequency f.
func (m *Model) IPS(p Params, core int, f float64) float64 {
	return 1 / m.TimePerInstr(p, core, f)
}

// EffectiveCPI returns the observed cycles per instruction on core `core` at
// frequency f, the metric HotPotato sorts threads by (Algorithm 2): a high
// effective CPI marks a memory-bound thread.
func (m *Model) EffectiveCPI(p Params, core int, f float64) float64 {
	return m.TimePerInstr(p, core, f) * f
}

// Fractions splits a thread's time on core `core` at frequency f into the
// busy (compute) and stall (memory) shares, which the power model converts
// into watts. busy + stall = 1.
func (m *Model) Fractions(p Params, core int, f float64) (busy, stall float64) {
	compute := p.BaseCPI / f
	mem := m.MemTimePerInstr(p, core)
	total := compute + mem
	return compute / total, mem / total
}

// SlowdownAt returns the performance loss factor of running at frequency f
// instead of fMax: TimePerInstr(f)/TimePerInstr(fMax) ≥ 1. Memory-bound
// threads have values close to 1 — the asymmetry PCMig's DVFS suffers from.
func (m *Model) SlowdownAt(p Params, core int, f, fMax float64) float64 {
	return m.TimePerInstr(p, core, f) / m.TimePerInstr(p, core, fMax)
}

// MemTimePerInstrContended is MemTimePerInstr with the shared-resource
// contention factor applied: under load, LLC banks and NoC links queue, and
// every access takes `factor` times longer (factor ≥ 1; 1 = contention-free).
func (m *Model) MemTimePerInstrContended(p Params, core int, factor float64) float64 {
	if factor < 1 {
		factor = 1
	}
	return m.MemTimePerInstr(p, core) * factor
}

// TimePerInstrContended is TimePerInstr under a contention factor.
func (m *Model) TimePerInstrContended(p Params, core int, f, factor float64) float64 {
	if f <= 0 {
		panic(fmt.Sprintf("perf: frequency must be positive, got %g", f))
	}
	return p.BaseCPI/f + m.MemTimePerInstrContended(p, core, factor)
}

// FractionsContended splits busy/stall time under a contention factor.
func (m *Model) FractionsContended(p Params, core int, f, factor float64) (busy, stall float64) {
	compute := p.BaseCPI / f
	mem := m.MemTimePerInstrContended(p, core, factor)
	total := compute + mem
	return compute / total, mem / total
}

// ContentionFactor converts a bank/NoC utilization ρ ∈ [0,1) into an M/M/1
// latency multiplier 1/(1−ρ), clamped at ρ = 0.95 (20×) to keep the
// interval fixed point stable under overload.
func ContentionFactor(rho float64) float64 {
	if rho < 0 {
		rho = 0
	}
	if rho > 0.95 {
		rho = 0.95
	}
	return 1 / (1 - rho)
}
