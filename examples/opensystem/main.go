// Opensystem: the paper's Fig. 4(b) scenario at one load level — a random
// multi-program PARSEC mix arrives as a Poisson process on the 64-core chip;
// HotPotato and PCMig are compared on mean response time.
package main

import (
	"flag"
	"fmt"
	"log"

	hotpotato "repro"
)

func main() {
	rate := flag.Float64("rate", 100, "task arrival rate, tasks/second")
	count := flag.Int("tasks", 20, "number of tasks in the mix")
	seed := flag.Int64("seed", 12345, "workload random seed")
	flag.Parse()

	specs, err := hotpotato.RandomMix(*count, *rate, *seed)
	if err != nil {
		log.Fatal(err)
	}

	type policy struct {
		name string
		mk   func(*hotpotato.Platform) hotpotato.Scheduler
	}
	policies := []policy{
		{"hotpotato", func(p *hotpotato.Platform) hotpotato.Scheduler {
			return hotpotato.NewHotPotatoScheduler(p, 70)
		}},
		{"pcmig", func(*hotpotato.Platform) hotpotato.Scheduler {
			return hotpotato.NewPCMigScheduler(70)
		}},
	}

	fmt.Printf("open system: %d tasks, Poisson arrivals at %.0f/s, seed %d\n\n", *count, *rate, *seed)
	responses := map[string]float64{}
	for _, p := range policies {
		plat, err := hotpotato.NewPlatform(8, 8)
		if err != nil {
			log.Fatal(err)
		}
		tasks, err := hotpotato.Instantiate(specs)
		if err != nil {
			log.Fatal(err)
		}
		res, err := hotpotato.Run(plat, hotpotato.DefaultSimConfig(), p.mk(plat), tasks)
		if err != nil {
			log.Fatal(err)
		}
		responses[p.name] = res.AvgResponse
		fmt.Printf("%-10s avg response %.1f ms, max %.1f ms, peak %.1f °C, %d migrations\n",
			p.name, res.AvgResponse*1e3, res.MaxResponse*1e3, res.PeakTemp, res.Migrations)
	}
	speedup := (responses["pcmig"] - responses["hotpotato"]) / responses["pcmig"] * 100
	fmt.Printf("\nHotPotato speedup over PCMig: %.2f%%\n", speedup)
}
