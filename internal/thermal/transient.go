package thermal

import (
	"fmt"

	"repro/internal/matrix"
)

// Stepper advances the transient thermal state with a fixed step dt using the
// exact matrix-exponential solution of Eq. 4 (the MatEx method [22]):
//
//	T(t+dt) = T_steady(P) + e^{C·dt} (T(t) − T_steady(P))
//
// e^{C·dt} is computed once from the model's eigendecomposition, so each step
// costs one matrix–vector product (O(N²)). The solution is exact for power
// held constant over the step — the interval-simulation contract.
type Stepper struct {
	m   *Model
	dt  float64
	exp *matrix.Dense // e^{C·dt}
}

// NewStepper precomputes the propagator for step size dt (seconds).
func (m *Model) NewStepper(dt float64) (*Stepper, error) {
	if dt <= 0 {
		return nil, fmt.Errorf("thermal: step size must be positive, got %g", dt)
	}
	negLambda := matrix.VecScale(-1, m.eig.Lambda) // eigenvalues of C
	exp := matrix.ExpmEigen(m.eig.V, negLambda, m.eig.VInv, dt)
	return &Stepper{m: m, dt: dt, exp: exp}, nil
}

// Dt returns the step size in seconds.
func (s *Stepper) Dt() float64 { return s.dt }

// Step advances the node temperature vector t by dt under the per-core power
// vector coreWatts (held constant for the step) and returns the new node
// temperatures.
func (s *Stepper) Step(t []float64, coreWatts []float64) []float64 {
	if len(t) != s.m.N {
		panic(fmt.Sprintf("thermal: temperature vector length %d, want %d", len(t), s.m.N))
	}
	tss := s.m.SteadyState(coreWatts)
	diff := matrix.VecSub(t, tss)
	next := s.exp.MulVec(diff)
	matrix.VecAddTo(next, tss)
	return next
}

// Propagator returns e^{C·dt}. The caller must not modify it.
func (s *Stepper) Propagator() *matrix.Dense { return s.exp }

// Transient simulates from the initial node temperatures t0 under a sequence
// of per-core power vectors (one per step) and returns the temperature
// trajectory including the initial point: len(powers)+1 node vectors.
func (s *Stepper) Transient(t0 []float64, powers [][]float64) [][]float64 {
	out := make([][]float64, 0, len(powers)+1)
	cur := append([]float64(nil), t0...)
	out = append(out, append([]float64(nil), cur...))
	for _, p := range powers {
		cur = s.Step(cur, p)
		out = append(out, append([]float64(nil), cur...))
	}
	return out
}
