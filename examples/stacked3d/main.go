// Stacked3d: the paper's §VII outlook — thermal management of 3D-stacked
// S-NUCA chips — explored with the analytical peak-temperature method. A
// 9 W thread on the buried layer of a two-layer stack is evaluated pinned
// and under several rotation scopes; only rotations spanning enough cores
// bring it under the 70 °C threshold.
package main

import (
	"fmt"
	"log"

	hotpotato "repro"
)

func main() {
	const perLayer = 16 // 4×4 grid per layer
	model, err := hotpotato.NewStackedPlatformThermal(4, 4, 2)
	if err != nil {
		log.Fatal(err)
	}
	calc := hotpotato.NewPeakCalculatorForModel(model)

	fmt.Printf("2-layer stacked 4x4 chip: %d cores, %d thermal nodes\n\n",
		model.NumCores(), model.NumNodes())

	// One 9 W thread on buried-layer core 5 (a centre core), idle elsewhere.
	base := make([]float64, model.NumCores())
	for i := range base {
		base[i] = 0.3
	}
	buried := hotpotato.StackedCoreID(0, 5, perLayer)
	base[buried] = 9

	// Layer asymmetry first: uniform power, steady state.
	uniform := make([]float64, model.NumCores())
	for i := range uniform {
		uniform[i] = 2
	}
	ss := model.SteadyState(uniform)
	fmt.Printf("uniform 2 W/core steady state: buried core 5 at %.2f °C, top core 5 at %.2f °C\n\n",
		ss[hotpotato.StackedCoreID(0, 5, perLayer)],
		ss[hotpotato.StackedCoreID(1, 5, perLayer)])

	scopes := []struct {
		name  string
		cores []int
	}{
		{"pinned (no rotation)", []int{buried}},
		{"vertical pair", []int{
			buried,
			hotpotato.StackedCoreID(1, 5, perLayer),
		}},
		{"buried centre ring", []int{
			hotpotato.StackedCoreID(0, 5, perLayer),
			hotpotato.StackedCoreID(0, 6, perLayer),
			hotpotato.StackedCoreID(0, 10, perLayer),
			hotpotato.StackedCoreID(0, 9, perLayer),
		}},
		{"both centre rings (3D)", []int{
			hotpotato.StackedCoreID(0, 5, perLayer),
			hotpotato.StackedCoreID(0, 6, perLayer),
			hotpotato.StackedCoreID(0, 10, perLayer),
			hotpotato.StackedCoreID(0, 9, perLayer),
			hotpotato.StackedCoreID(1, 5, perLayer),
			hotpotato.StackedCoreID(1, 6, perLayer),
			hotpotato.StackedCoreID(1, 10, perLayer),
			hotpotato.StackedCoreID(1, 9, perLayer),
		}},
	}

	fmt.Println("rotation scope, peak_C (Algorithm 1, τ = 0.5 ms)")
	for _, sc := range scopes {
		var plan hotpotato.RotationPlan
		if len(sc.cores) == 1 {
			plan = hotpotato.RotationPlan{Tau: 0.5e-3, Powers: [][]float64{base}}
		} else {
			plan = hotpotato.RotatePlan(0.5e-3, base, sc.cores)
		}
		peak, err := calc.PeakTemperature(plan)
		if err != nil {
			log.Fatal(err)
		}
		marker := ""
		if peak <= 70 {
			marker = "  <= 70 °C threshold"
		}
		fmt.Printf("%-24s %.2f%s\n", sc.name+",", peak, marker)
	}
}
