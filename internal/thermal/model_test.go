package thermal

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/floorplan"
	"repro/internal/matrix"
)

func testModel(t testing.TB, w, h int) *Model {
	t.Helper()
	m, err := New(floorplan.MustNew(w, h, 0.0009), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewValidation(t *testing.T) {
	fp := floorplan.MustNew(2, 2, 0.0009)
	mutations := []func(*Config){
		func(c *Config) { c.SiCapacitance = 0 },
		func(c *Config) { c.SpCapacitance = -1 },
		func(c *Config) { c.SinkCapacitancePerCore = 0 },
		func(c *Config) { c.GVertical = 0 },
		func(c *Config) { c.GSpreaderSink = -0.1 },
		func(c *Config) { c.GSinkAmbientPerCore = 0 },
		func(c *Config) { c.GLateralSi = -0.01 },
	}
	for i, mut := range mutations {
		cfg := DefaultConfig()
		mut(&cfg)
		if _, err := New(fp, cfg); err == nil {
			t.Errorf("mutation %d: expected validation error", i)
		}
	}
}

func TestNodeCount(t *testing.T) {
	m := testModel(t, 4, 4)
	if m.NumCores() != 16 {
		t.Errorf("cores = %d", m.NumCores())
	}
	if m.NumNodes() != 33 {
		t.Errorf("nodes = %d, want 2*16+1", m.NumNodes())
	}
}

func TestBMatrixSymmetricPositiveDefinite(t *testing.T) {
	m := testModel(t, 4, 4)
	b := m.B()
	if !b.IsSymmetric(1e-12) {
		t.Fatal("B not symmetric")
	}
	e, err := matrix.SymEigen(b)
	if err != nil {
		t.Fatal(err)
	}
	for i, l := range e.Values {
		if l <= 0 {
			t.Fatalf("B eigenvalue %d = %v, want positive (SPD)", i, l)
		}
	}
}

func TestEigenvaluesOfCNegative(t *testing.T) {
	// Paper §IV: C = −A⁻¹B is negative definite, eigenvalues all negative.
	m := testModel(t, 4, 4)
	for i, l := range m.Eigen().Lambda {
		if l <= 0 {
			t.Fatalf("lambda[%d] of A⁻¹B = %v, want positive (so C's is negative)", i, l)
		}
	}
}

func TestZeroPowerSteadyStateIsAmbient(t *testing.T) {
	m := testModel(t, 4, 4)
	ss := m.SteadyState(make([]float64, 16))
	for i, temp := range ss {
		if math.Abs(temp-m.Ambient()) > 1e-8 {
			t.Fatalf("node %d idle steady = %v, want ambient %v", i, temp, m.Ambient())
		}
	}
}

func TestSteadyStateAboveAmbientWithPower(t *testing.T) {
	m := testModel(t, 4, 4)
	p := make([]float64, 16)
	p[5] = 5
	ss := m.SteadyState(p)
	for i, temp := range ss {
		if temp < m.Ambient()-1e-9 {
			t.Fatalf("node %d = %v below ambient with non-negative power", i, temp)
		}
	}
	if ss[5] <= m.Ambient()+1 {
		t.Fatalf("powered core at %v, expected clearly above ambient", ss[5])
	}
}

func TestHotspotAtPoweredCore(t *testing.T) {
	m := testModel(t, 4, 4)
	p := make([]float64, 16)
	p[9] = 8
	ss := m.SteadyState(p)
	if got := m.HottestCore(ss); got != 9 {
		t.Errorf("hottest core = %d, want 9", got)
	}
}

func TestSteadyStateSuperposition(t *testing.T) {
	// The model is linear: steady(p1+p2) - ambient = (steady(p1)-amb) + (steady(p2)-amb).
	m := testModel(t, 4, 4)
	p1 := make([]float64, 16)
	p2 := make([]float64, 16)
	p1[3], p2[12] = 4, 6
	s1 := m.SteadyState(p1)
	s2 := m.SteadyState(p2)
	s12 := m.SteadyState(matrix.VecAdd(p1, p2))
	for i := range s12 {
		want := s1[i] + s2[i] - m.Ambient()
		if math.Abs(s12[i]-want) > 1e-8 {
			t.Fatalf("superposition violated at node %d: %v vs %v", i, s12[i], want)
		}
	}
}

func TestCalibration16CoreMotivationalExample(t *testing.T) {
	// Paper Fig. 2(a): one ~9 W blackscholes thread drives its core to ≈80 °C
	// — clearly above the 70 °C threshold, but below silicon-killing levels.
	m := testModel(t, 4, 4)
	p := matrix.Constant(16, 0.3)
	p[5] = 9
	ss := m.SteadyState(p)
	if ss[5] < 72 || ss[5] > 90 {
		t.Errorf("single 9 W core steady = %.1f °C, want ≈80 (72–90)", ss[5])
	}
	// Rotating that thread over the 4 centre cores averages the power and
	// must be thermally safe (< 70 °C steady).
	avg := matrix.Constant(16, 0.3)
	for _, c := range []int{5, 6, 9, 10} {
		avg[c] = (9 + 3*0.3) / 4
	}
	ssRot := m.SteadyState(avg)
	if got := m.MaxCoreTemp(ssRot); got >= 68 {
		t.Errorf("rotated average steady = %.1f °C, want < 68 (headroom under 70)", got)
	}
}

func TestCalibration64CoreFullLoad(t *testing.T) {
	// The 64-core chip must be sustainable near ~2.5 W/core and unsustainable
	// at full-tilt compute power (≥5 W/core), so thermal management matters.
	m := testModel(t, 8, 8)
	safe := m.SteadyState(matrix.Constant(64, 2.3))
	if got := m.MaxCoreTemp(safe); got >= 70 {
		t.Errorf("2.3 W/core steady max = %.1f °C, want < 70", got)
	}
	unsafe := m.SteadyState(matrix.Constant(64, 5))
	if got := m.MaxCoreTemp(unsafe); got <= 75 {
		t.Errorf("5 W/core steady max = %.1f °C, want well above 70", got)
	}
}

func TestCenterHotterThanCornerUniformPower(t *testing.T) {
	// Thermal heterogeneity mirrors AMD: central cores run hotter under
	// uniform power (paper §III-A).
	m := testModel(t, 8, 8)
	fp := m.Floorplan()
	ss := m.SteadyState(matrix.Constant(64, 3))
	center := fp.ID(3, 3)
	corner := fp.ID(0, 0)
	if ss[center] <= ss[corner] {
		t.Errorf("center %.2f °C not hotter than corner %.2f °C", ss[center], ss[corner])
	}
}

func TestExtendPowerShape(t *testing.T) {
	m := testModel(t, 4, 4)
	p := m.ExtendPower(matrix.Constant(16, 2))
	if len(p) != 33 {
		t.Fatalf("extended length %d", len(p))
	}
	for i := 16; i < 33; i++ {
		if p[i] != 0 {
			t.Fatalf("non-core node %d has power %v", i, p[i])
		}
	}
}

func TestExtendPowerWrongLengthPanics(t *testing.T) {
	m := testModel(t, 4, 4)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for wrong power length")
		}
	}()
	m.ExtendPower(make([]float64, 7))
}

func TestAccessorsReturnCopies(t *testing.T) {
	m := testModel(t, 2, 2)
	a := m.ADiag()
	a[0] = -999
	if m.ADiag()[0] == -999 {
		t.Error("ADiag returned a view")
	}
	g := m.G()
	g[len(g)-1] = -999
	if m.G()[len(g)-1] == -999 {
		t.Error("G returned a view")
	}
	b := m.B()
	b.Set(0, 0, -999)
	if m.B().At(0, 0) == -999 {
		t.Error("B returned a view")
	}
}

func TestInitialTempsAllAmbient(t *testing.T) {
	m := testModel(t, 4, 4)
	for i, v := range m.InitialTemps() {
		if v != m.Ambient() {
			t.Fatalf("initial temp of node %d = %v", i, v)
		}
	}
}

// Property: the steady state under random non-negative power is bounded below
// by ambient and the hottest node is a core (power enters at cores).
func TestPropSteadyStateBounds(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		w := 2 + r.Intn(4)
		fp := floorplan.MustNew(w, w, 0.0009)
		m, err := New(fp, DefaultConfig())
		if err != nil {
			return false
		}
		p := make([]float64, fp.NumCores())
		for i := range p {
			p[i] = r.Float64() * 8
		}
		ss := m.SteadyState(p)
		maxNode := matrix.VecMaxIndex(ss)
		for _, temp := range ss {
			if temp < m.Ambient()-1e-9 {
				return false
			}
		}
		return maxNode < fp.NumCores()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: steady-state core temperature is monotone in that core's power.
func TestPropSteadyMonotoneInPower(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, err := New(floorplan.MustNew(4, 4, 0.0009), DefaultConfig())
		if err != nil {
			return false
		}
		core := r.Intn(16)
		base := make([]float64, 16)
		for i := range base {
			base[i] = r.Float64() * 3
		}
		more := append([]float64(nil), base...)
		more[core] += 1 + r.Float64()*5
		return m.SteadyState(more)[core] > m.SteadyState(base)[core]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
