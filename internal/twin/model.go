package twin

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"os"
)

// ModelVersion is the artifact wire version. Load rejects anything else, so
// a model from a future format fails loudly instead of being misread.
const ModelVersion = "twin-v1"

// envelopeSlack widens the calibration envelope when judging whether an
// input is close enough to the fitted domain for the bound to be evidence:
// totals up to 10% outside the calibrated range still count as conclusive.
const envelopeSlack = 0.10

// FieldModel is one fitted linear predictor: its coefficients and the
// conservative confidence bound that travels with every estimate (max
// calibration residual × safety + small-sample penalty; see calibrate.go).
type FieldModel struct {
	// Coef are the fitted regression coefficients.
	Coef []float64 `json:"coef"`
	// Bound is the conservative error bound (°C for temperatures, seconds
	// for the makespan).
	Bound float64 `json:"bound"`
}

// validate checks the field model against an expected regressor count.
func (f FieldModel) validate(name string, dim int) error {
	if len(f.Coef) != dim {
		return fmt.Errorf("twin: %s model has %d coefficients, want %d", name, len(f.Coef), dim)
	}
	for i, c := range f.Coef {
		if math.IsNaN(c) || math.IsInf(c, 0) {
			return fmt.Errorf("twin: %s coefficient %d is not finite", name, i)
		}
	}
	if !(f.Bound > 0) || math.IsInf(f.Bound, 0) {
		return fmt.Errorf("twin: %s bound must be positive and finite, got %g", name, f.Bound)
	}
	return nil
}

// BucketModel is the fitted surrogate of one platform-size bucket (one grid
// geometry with the paper-default substrates). All bounds are per-bucket: a
// 4×4 estimate travels with the 4×4 calibration residuals, never the 8×8
// ones.
type BucketModel struct {
	// Width and Height are the bucket's core grid dimensions.
	Width  int `json:"width"`
	Height int `json:"height"`
	// Ambient is the ambient temperature the bucket was calibrated at (°C).
	Ambient float64 `json:"ambient"`
	// Kernel is the fitted spatial influence kernel (K/W): entries
	// 0..maxManhattan are indexed by Manhattan distance, followed by two
	// edge-correction coefficients (self power × missing neighbors, total
	// power × missing neighbors). The steady-state rise at core i is
	// Σ_j Kernel[d(i,j)]·p_j + e_i·(Kernel[D+1]·p_i + Kernel[D+2]·Σp),
	// where e_i counts i's off-die neighbors and D = maxManhattan.
	Kernel []float64 `json:"kernel"`
	// SteadyBoundC is the confidence bound of the steady-peak prediction.
	SteadyBoundC float64 `json:"steady_bound_c"`
	// Transient predicts the full run's peak temperature (bound in °C).
	Transient FieldModel `json:"transient"`
	// Makespan predicts the full run's makespan (bound in seconds).
	Makespan FieldModel `json:"makespan"`
	// Ring predicts the steady-periodic peak of a ring rotation (bound in
	// °C) — the HotPotato pre-filter model.
	Ring FieldModel `json:"ring"`
	// Samples and RingSamples record the calibration density behind the
	// published bounds.
	Samples     int `json:"samples"`
	RingSamples int `json:"ring_samples"`
	// MinTotalW and MaxTotalW are the calibration envelope on total chip
	// power (Σ HotPower): estimates for fields outside it (±10%) are marked
	// inconclusive because the bound is no longer evidence there.
	MinTotalW float64 `json:"min_total_w"`
	MaxTotalW float64 `json:"max_total_w"`
	// MaxTauS is the largest rotation epoch seen during ring calibration;
	// ring estimates above it (+10%) are inconclusive.
	MaxTauS float64 `json:"max_tau_s"`
	// RingMinW and RingMaxW are the ring calibration envelope on the
	// time-averaged total chip power of a rotation (background + mean slot
	// watts on the ring).
	RingMinW float64 `json:"ring_min_w"`
	RingMaxW float64 `json:"ring_max_w"`
}

// maxManhattan returns the largest Manhattan distance on a w×h grid.
func maxManhattan(w, h int) int { return (w - 1) + (h - 1) }

// kernelDim returns the kernel coefficient count on a w×h grid: one per
// Manhattan distance plus the two edge-correction terms.
func kernelDim(w, h int) int { return maxManhattan(w, h) + 3 }

// validate checks the bucket's structural and numeric invariants.
func (b BucketModel) validate(key string) error {
	if b.Width < 1 || b.Height < 1 {
		return fmt.Errorf("twin: bucket %q has invalid grid %dx%d", key, b.Width, b.Height)
	}
	if want := BucketKey(b.Width, b.Height); key != want {
		return fmt.Errorf("twin: bucket key %q does not match its %dx%d grid (want %q)", key, b.Width, b.Height, want)
	}
	if want := kernelDim(b.Width, b.Height); len(b.Kernel) != want {
		return fmt.Errorf("twin: bucket %q kernel has %d entries, want %d", key, len(b.Kernel), want)
	}
	for i, k := range b.Kernel {
		if math.IsNaN(k) || math.IsInf(k, 0) {
			return fmt.Errorf("twin: bucket %q kernel[%d] is not finite", key, i)
		}
	}
	if math.IsNaN(b.Ambient) || math.IsInf(b.Ambient, 0) {
		return fmt.Errorf("twin: bucket %q ambient is not finite", key)
	}
	if !(b.SteadyBoundC > 0) || math.IsInf(b.SteadyBoundC, 0) {
		return fmt.Errorf("twin: bucket %q steady bound must be positive and finite, got %g", key, b.SteadyBoundC)
	}
	if err := b.Transient.validate("transient", transientDim); err != nil {
		return fmt.Errorf("bucket %q: %w", key, err)
	}
	if err := b.Makespan.validate("makespan", makespanDim); err != nil {
		return fmt.Errorf("bucket %q: %w", key, err)
	}
	if err := b.Ring.validate("ring", ringDim); err != nil {
		return fmt.Errorf("bucket %q: %w", key, err)
	}
	if b.Samples < 1 || b.RingSamples < 1 {
		return fmt.Errorf("twin: bucket %q records no calibration samples", key)
	}
	if math.IsNaN(b.MinTotalW) || math.IsNaN(b.MaxTotalW) || b.MinTotalW > b.MaxTotalW {
		return fmt.Errorf("twin: bucket %q has invalid power envelope [%g, %g]", key, b.MinTotalW, b.MaxTotalW)
	}
	if !(b.MaxTauS > 0) || math.IsInf(b.MaxTauS, 0) {
		return fmt.Errorf("twin: bucket %q max tau must be positive and finite, got %g", key, b.MaxTauS)
	}
	if math.IsNaN(b.RingMinW) || math.IsNaN(b.RingMaxW) || b.RingMinW > b.RingMaxW {
		return fmt.Errorf("twin: bucket %q has invalid ring power envelope [%g, %g]", key, b.RingMinW, b.RingMaxW)
	}
	return nil
}

// steadyPeakDelta evaluates the kernel on a power field: the predicted
// steady-state rise (K) of the hottest core. Allocates nothing.
func (b *BucketModel) steadyPeakDelta(p []float64) float64 {
	n := b.Width * b.Height
	base := maxManhattan(b.Width, b.Height) + 1
	total := totalPower(p)
	peak := math.Inf(-1)
	for i := 0; i < n; i++ {
		sum := 0.0
		for j := 0; j < n; j++ {
			sum += b.Kernel[manhattan(b.Width, i, j)] * p[j]
		}
		if e := float64(missingNeighbors(b.Width, b.Height, i)); e != 0 {
			sum += e * (b.Kernel[base]*p[i] + b.Kernel[base+1]*total)
		}
		if sum > peak {
			peak = sum
		}
	}
	return peak
}

// inEnvelope reports whether a total chip power lies within the bucket's
// calibration envelope, widened by envelopeSlack.
func (b *BucketModel) inEnvelope(totalW float64) bool {
	lo := b.MinTotalW * (1 - envelopeSlack)
	hi := b.MaxTotalW * (1 + envelopeSlack)
	return totalW >= lo && totalW <= hi
}

// Model is the versioned calibration artifact: one fitted BucketModel per
// platform-size bucket plus the provenance (seed) and content hash that make
// it reproducible and tamper-evident. The committed artifact lives at the
// repository root (TWIN_model.json) and is regenerated byte-identically by
// `hotpotato-sim -calibrate` with the same seed.
type Model struct {
	// Version is the artifact format version (ModelVersion).
	Version string `json:"version"`
	// Hash is the content hash of the artifact ("sha256:…" over the
	// canonical encoding with this field empty).
	Hash string `json:"hash"`
	// Seed is the design-grid seed the calibration ran with.
	Seed int64 `json:"seed"`
	// Buckets maps BucketKey(w, h) to the bucket's fitted model.
	Buckets map[string]BucketModel `json:"buckets"`
}

// BucketKey names a platform-size bucket ("4x4", "8x8").
func BucketKey(width, height int) string { return fmt.Sprintf("%dx%d", width, height) }

// ComputeHash returns the artifact's content hash: "sha256:" + hex of the
// canonical JSON encoding with the Hash field blanked. encoding/json writes
// struct fields in declaration order and map keys sorted, and Go renders
// floats in shortest round-trip form, so the encoding — and therefore the
// hash — is deterministic across runs and platforms.
func (m *Model) ComputeHash() (string, error) {
	shadow := *m
	shadow.Hash = ""
	b, err := json.Marshal(&shadow)
	if err != nil {
		return "", fmt.Errorf("twin: hashing model: %w", err)
	}
	sum := sha256.Sum256(b)
	return "sha256:" + hex.EncodeToString(sum[:]), nil
}

// Validate checks the whole artifact: version, bucket invariants, and the
// integrity of the embedded content hash.
func (m *Model) Validate() error {
	if m.Version != ModelVersion {
		return fmt.Errorf("twin: unsupported model version %q (want %q)", m.Version, ModelVersion)
	}
	if len(m.Buckets) == 0 {
		return fmt.Errorf("twin: model has no buckets")
	}
	for key, b := range m.Buckets {
		if err := b.validate(key); err != nil {
			return err
		}
	}
	want, err := m.ComputeHash()
	if err != nil {
		return err
	}
	if m.Hash != want {
		return fmt.Errorf("twin: model hash %q does not match content (%s) — corrupt or hand-edited artifact", m.Hash, want)
	}
	return nil
}

// Encode renders the artifact as committed: content hash filled in,
// indented, trailing newline. Encoding the same model twice yields identical
// bytes.
func (m *Model) Encode() ([]byte, error) {
	hash, err := m.ComputeHash()
	if err != nil {
		return nil, err
	}
	out := *m
	out.Hash = hash
	b, err := json.MarshalIndent(&out, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("twin: encoding model: %w", err)
	}
	return append(b, '\n'), nil
}

// Load decodes and fully validates a calibration artifact. Corrupt,
// truncated, version-skewed, or hash-mismatched input returns an error —
// never a panic and never a silently degraded model.
func Load(data []byte) (*Model, error) {
	var m Model
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("twin: decoding model: %w", err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// LoadFile is Load on a file path (the -twin-model server flag).
func LoadFile(path string) (*Model, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("twin: reading model: %w", err)
	}
	m, err := Load(data)
	if err != nil {
		return nil, fmt.Errorf("twin: %s: %w", path, err)
	}
	return m, nil
}

// Field is one prediction field: a point estimate with its conservative
// confidence bound. Conclusive is false when the input lies outside the
// calibration envelope — the estimate is still the model's best answer, but
// the bound is no longer backed by calibration evidence.
type Field struct {
	// Estimate is the point prediction (°C or seconds).
	Estimate float64 `json:"estimate"`
	// Bound is the conservative error bound: the true value is expected in
	// [Estimate−Bound, Estimate+Bound] (see docs/THEORY.md).
	Bound float64 `json:"bound"`
	// Conclusive reports whether the bound is backed by the calibration
	// envelope.
	Conclusive bool `json:"conclusive"`
}

// Prediction is the twin's full answer for one case.
type Prediction struct {
	// Bucket is the platform-size bucket that answered.
	Bucket string `json:"bucket"`
	// SteadyPeakC is the steady-state peak of the case's HotPower field.
	SteadyPeakC Field `json:"peak_steady_c"`
	// TransientPeakC is the predicted full-run peak temperature.
	TransientPeakC Field `json:"peak_transient_c"`
	// MakespanS is the predicted makespan in seconds.
	MakespanS Field `json:"makespan_s"`
}

// Predict evaluates the surrogate on one case. The error paths are
// structural (invalid case, no fitted bucket for the grid); a case outside
// the calibration envelope still predicts, with Conclusive false.
func (m *Model) Predict(c Case) (Prediction, error) {
	if err := c.Validate(); err != nil {
		return Prediction{}, err
	}
	key := BucketKey(c.Width, c.Height)
	b, ok := m.Buckets[key]
	if !ok {
		return Prediction{}, fmt.Errorf("twin: no calibrated bucket %q (have %d buckets)", key, len(m.Buckets))
	}
	conclusive := b.inEnvelope(totalPower(c.HotPower))

	var tx [transientDim]float64
	transientFeatures(tx[:], c)
	var mx [makespanDim]float64
	makespanFeatures(mx[:], c)

	return Prediction{
		Bucket: key,
		SteadyPeakC: Field{
			Estimate:   b.Ambient + b.steadyPeakDelta(c.HotPower),
			Bound:      b.SteadyBoundC,
			Conclusive: conclusive,
		},
		TransientPeakC: Field{
			Estimate:   b.Ambient + dot(b.Transient.Coef, tx[:]),
			Bound:      b.Transient.Bound,
			Conclusive: conclusive,
		},
		MakespanS: Field{
			Estimate:   dot(b.Makespan.Coef, mx[:]),
			Bound:      b.Makespan.Bound,
			Conclusive: conclusive,
		},
	}, nil
}
