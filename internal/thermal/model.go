// Package thermal implements the compact RC thermal model of paper §III-B
// (Eq. 1–3) and the MatEx-style transient solver of Eq. 4 [22]. The network
// is built HotSpot-style [15] from the floorplan: one silicon node per core,
// one heat-spreader node per core, and a single heatsink node coupled to the
// ambient. The resulting matrices have exactly the structure the paper's
// peak-temperature derivation requires: A diagonal positive (capacitances),
// B symmetric positive definite (conductances), so C = −A⁻¹B is negative
// definite and diagonalizable with real negative eigenvalues.
package thermal

import (
	"fmt"
	"sync"

	"repro/internal/floorplan"
	"repro/internal/matrix"
)

// Solver backend names accepted by Config.Solver. The empty string is
// equivalent to SolverAuto, so a zero Config keeps selecting sensibly.
const (
	// SolverAuto picks SolverDense below SparseAutoNodeThreshold nodes and
	// SolverSparse above it.
	SolverAuto = "auto"
	// SolverDense factorizes B densely (Cholesky inverse + generalized
	// eigendecomposition) — exact propagator, O(N²) per step, O(N³) setup.
	// The oracle the sparse path is differentially tested against.
	SolverDense = "dense"
	// SolverSparse keeps B as CSR with a banded-arrowhead Cholesky for
	// steady states and a Krylov expm·v transient kernel — O(nnz·m) per
	// step, never materializing an N×N matrix. Required for big chips
	// (64×64 dense would need ≥ 0.5 GB per matrix and an infeasible
	// eigendecomposition).
	SolverSparse = "sparse"
)

// SparseAutoNodeThreshold is the node count above which SolverAuto selects
// the sparse backend: 8×8 chips (N = 129) stay dense, 16×16 (N = 513) and
// larger go sparse. The crossover is measured in docs/PERFORMANCE.md.
const SparseAutoNodeThreshold = 512

// resolveSolver maps a validated Config.Solver to the concrete backend.
func resolveSolver(choice string, nodes int) string {
	switch choice {
	case SolverDense:
		return SolverDense
	case SolverSparse:
		return SolverSparse
	default: // "" or SolverAuto (validate rejects the rest)
		if nodes > SparseAutoNodeThreshold {
			return SolverSparse
		}
		return SolverDense
	}
}

// Config holds the RC network parameters. Values are calibrated such that a
// Table I style core (0.81 mm², 4 GHz, ≈8 W compute-bound) reaches ≈80 °C
// from a 45 °C ambient — the regime of the paper's motivational example.
type Config struct {
	// Capacitances, J/K.
	SiCapacitance          float64 `json:"si_capacitance"`            // silicon node, per core
	SpCapacitance          float64 `json:"sp_capacitance"`            // spreader node, per core
	SinkCapacitancePerCore float64 `json:"sink_capacitance_per_core"` // heatsink node scales with chip size

	// Conductances, W/K.
	GLateralSi    float64 `json:"g_lateral_si"`    // between neighbouring silicon nodes
	GVertical     float64 `json:"g_vertical"`      // silicon → spreader, per core
	GLateralSp    float64 `json:"g_lateral_sp"`    // between neighbouring spreader nodes
	GSpreaderSink float64 `json:"g_spreader_sink"` // spreader segment → heatsink, per core
	// GSpreaderEdgeBonus adds extra spreader→sink conductance per exposed
	// die edge of a cell (1 for edge cells, 2 for corners), modelling the
	// heat spreader extending beyond the die: border cores cool better, so
	// the chip centre runs hottest — the thermal heterogeneity of §III-A.
	GSpreaderEdgeBonus  float64 `json:"g_spreader_edge_bonus"`   // fraction of GSpreaderSink per exposed edge
	GSinkAmbientPerCore float64 `json:"g_sink_ambient_per_core"` // heatsink → ambient, scales with chip size

	Ambient float64 `json:"ambient"` // ambient temperature, °C (paper §VI: 45)

	// Solver selects the numerical backend: SolverDense, SolverSparse, or
	// SolverAuto / "" to pick by platform size (sparse above
	// SparseAutoNodeThreshold nodes). Both backends agree to ≤ 1e-9 K on
	// every query — the equivalence the golden differential tests pin —
	// but in sparse mode the dense artifacts (BInv, Eigen, Propagator)
	// are nil; see those methods.
	Solver string `json:"solver,omitempty"`
}

// DefaultConfig returns the calibrated model parameters.
func DefaultConfig() Config {
	return Config{
		SiCapacitance:          4.25e-4,
		SpCapacitance:          8.4e-3,
		SinkCapacitancePerCore: 0.5,
		GLateralSi:             0.045,
		GVertical:              0.20,
		GLateralSp:             0.40,
		GSpreaderSink:          0.50,
		GSpreaderEdgeBonus:     0.25,
		GSinkAmbientPerCore:    0.40,
		Ambient:                45.0,
	}
}

// Model is a compact RC thermal model over a floorplan. Which factorization
// it carries depends on the resolved solver backend (Solver()): dense mode
// holds B, B⁻¹ and the generalized eigendecomposition; sparse mode holds a
// CSR conductance matrix with a banded-arrowhead Cholesky and no N×N
// artifacts at all. Either way a Model is immutable after construction and
// freely shareable between goroutines.
type Model struct {
	fp  *floorplan.Floorplan
	cfg Config

	n int // cores
	N int // thermal nodes = 2n + 1

	solver string // resolved backend: SolverDense or SolverSparse

	aDiag []float64 // A: diagonal thermal capacitance matrix
	g     []float64 // G: conductance to ambient per node

	// Dense-mode artifacts (nil in sparse mode).
	b    *matrix.Dense            // B: symmetric conductance matrix
	binv *matrix.Dense            // B⁻¹ (used by Eq. 3 and the rotation math)
	eig  *matrix.GeneralizedEigen // factorization of A⁻¹B (λ > 0)

	// Sparse-mode artifacts (nil in dense mode).
	sp *sparseSolver

	steadyAmbient []float64 // B⁻¹·T_amb·G — the all-idle steady state

	// Lazily computed core block of B⁻¹ (CoreInfluence).
	coreInflOnce sync.Once
	coreInfl     *matrix.Dense
}

// New builds and factorizes the RC model for the given floorplan.
func New(fp *floorplan.Floorplan, cfg Config) (*Model, error) {
	if err := validate(cfg); err != nil {
		return nil, err
	}
	n := fp.NumCores()
	m := &Model{fp: fp, cfg: cfg, n: n, N: 2*n + 1}
	if err := m.finish(m.build()); err != nil {
		return nil, err
	}
	return m, nil
}

// finish factorizes the assembled conductance matrix under the resolved
// solver backend and precomputes the all-idle steady state. Shared by New
// and NewStacked.
func (m *Model) finish(builder *matrix.SparseBuilder) error {
	m.solver = resolveSolver(m.cfg.Solver, m.N)
	if m.solver == SolverSparse {
		sp, err := newSparseSolver(builder.ToCSR(), m.aDiag)
		if err != nil {
			return err
		}
		m.sp = sp
	} else {
		m.b = builder.ToDense()
		// B is SPD by construction; Cholesky both certifies that and
		// inverts it faster than LU.
		chol, err := matrix.FactorCholesky(m.b)
		if err != nil {
			return fmt.Errorf("thermal: conductance matrix not SPD: %w", err)
		}
		if m.binv, err = chol.Inverse(); err != nil {
			return fmt.Errorf("thermal: inverting conductance matrix: %w", err)
		}
		if m.eig, err = matrix.SymDefEigen(m.aDiag, m.b); err != nil {
			return fmt.Errorf("thermal: eigendecomposition failed: %w", err)
		}
	}
	m.steadyAmbient = m.solveB(matrix.VecScale(m.cfg.Ambient, m.g))
	return nil
}

// solveB solves B·x = p, allocating the result — the mode-agnostic solve
// both backends provide (dense: precomputed inverse; sparse: banded
// arrowhead Cholesky). Hot paths use Stepper.SteadyStateInto instead.
func (m *Model) solveB(p []float64) []float64 {
	out := make([]float64, m.N)
	if m.sp != nil {
		m.sp.solveInto(out, p, make([]float64, m.N-1))
	} else {
		m.binv.MulVecTo(out, p)
	}
	return out
}

func validate(cfg Config) error {
	checks := []struct {
		name string
		v    float64
	}{
		{"SiCapacitance", cfg.SiCapacitance},
		{"SpCapacitance", cfg.SpCapacitance},
		{"SinkCapacitancePerCore", cfg.SinkCapacitancePerCore},
		{"GVertical", cfg.GVertical},
		{"GSpreaderSink", cfg.GSpreaderSink},
		{"GSinkAmbientPerCore", cfg.GSinkAmbientPerCore},
	}
	for _, c := range checks {
		if c.v <= 0 {
			return fmt.Errorf("thermal: %s must be positive, got %g", c.name, c.v)
		}
	}
	if cfg.GLateralSi < 0 || cfg.GLateralSp < 0 {
		return fmt.Errorf("thermal: lateral conductances must be non-negative")
	}
	if cfg.GSpreaderEdgeBonus < 0 {
		return fmt.Errorf("thermal: spreader edge bonus must be non-negative, got %g", cfg.GSpreaderEdgeBonus)
	}
	return ValidateSolver(cfg.Solver)
}

// ValidateSolver checks a Config.Solver value. "" is accepted as SolverAuto.
// It is exported so declarative layers (RunSpec validation, CLI flags) can
// reject a bad solver name with the same message model construction would.
func ValidateSolver(name string) error {
	switch name {
	case "", SolverAuto, SolverDense, SolverSparse:
		return nil
	default:
		return fmt.Errorf("thermal: unknown solver %q (want %q, %q or %q)",
			name, SolverAuto, SolverDense, SolverSparse)
	}
}

// build assembles A, B and G, emitting B as sparse triplets so either
// backend can finalize it (finish). B is a weighted graph Laplacian plus
// the ambient conductance on the sink's diagonal, hence symmetric positive
// definite; the corresponding entry of G carries the same conductance so
// that zero power yields T = ambient everywhere. The sink is the last node
// — the arrowhead invariant the sparse backend relies on.
func (m *Model) build() *matrix.SparseBuilder {
	n := m.n
	N := m.N
	sink := 2 * n

	m.aDiag = make([]float64, N)
	m.g = make([]float64, N)
	bb := matrix.NewSparseBuilder(N, N)

	for i := 0; i < n; i++ {
		m.aDiag[i] = m.cfg.SiCapacitance
		m.aDiag[n+i] = m.cfg.SpCapacitance
	}
	m.aDiag[sink] = m.cfg.SinkCapacitancePerCore * float64(n)

	addCoupling := func(i, j int, g float64) {
		if g == 0 {
			return
		}
		bb.Add(i, j, -g)
		bb.Add(j, i, -g)
		bb.Add(i, i, g)
		bb.Add(j, j, g)
	}

	for i := 0; i < n; i++ {
		// Lateral couplings (count each edge once).
		for _, nb := range m.fp.Neighbors(i) {
			if nb > i {
				addCoupling(i, nb, m.cfg.GLateralSi)
				addCoupling(n+i, n+nb, m.cfg.GLateralSp)
			}
		}
		// Vertical stack. Border spreader cells conduct extra heat to the
		// sink through the spreader area extending beyond the die.
		addCoupling(i, n+i, m.cfg.GVertical)
		exposed := 4 - len(m.fp.Neighbors(i))
		gSink := m.cfg.GSpreaderSink * (1 + m.cfg.GSpreaderEdgeBonus*float64(exposed))
		addCoupling(n+i, sink, gSink)
	}

	gAmb := m.cfg.GSinkAmbientPerCore * float64(n)
	bb.Add(sink, sink, gAmb)
	m.g[sink] = gAmb
	return bb
}

// NumCores returns the number of cores n.
func (m *Model) NumCores() int { return m.n }

// NumNodes returns the number of thermal nodes N = 2n+1.
func (m *Model) NumNodes() int { return m.N }

// Ambient returns the ambient temperature in °C.
func (m *Model) Ambient() float64 { return m.cfg.Ambient }

// Floorplan returns the floorplan the model was built over.
func (m *Model) Floorplan() *floorplan.Floorplan { return m.fp }

// ADiag returns a copy of the diagonal of the capacitance matrix A.
func (m *Model) ADiag() []float64 {
	out := make([]float64, len(m.aDiag))
	copy(out, m.aDiag)
	return out
}

// Solver returns the resolved solver backend, SolverDense or SolverSparse
// (auto selection already applied).
func (m *Model) Solver() string { return m.solver }

// B returns a copy of the conductance matrix as a dense N×N matrix. In
// sparse mode this materializes the CSR — O(N²) memory — so it is meant for
// tests and small-model inspection; hot paths use SparseB or the solver
// methods instead.
func (m *Model) B() *matrix.Dense {
	if m.sp != nil {
		return m.sp.bs.ToDense()
	}
	return m.b.Clone()
}

// SparseB returns the conductance matrix in CSR form, or nil in dense mode.
// The caller must not modify it (CSR is immutable; this is shared state).
func (m *Model) SparseB() *matrix.CSR {
	if m.sp == nil {
		return nil
	}
	return m.sp.bs
}

// BInv returns the precomputed B⁻¹, or nil in sparse mode, where the
// inverse is never materialized — use CoreInfluence for the core block, or
// Stepper.SteadyStateInto / SteadyState for solves. The caller must not
// modify it.
func (m *Model) BInv() *matrix.Dense { return m.binv }

// CoreInfluence returns the n×n core block of B⁻¹: entry (i, j) is the
// steady-state temperature rise of core i per watt on core j. It is
// computed lazily on first call — free in dense mode, n banded solves in
// sparse mode — then cached; safe for concurrent callers. The caller must
// not modify the returned matrix.
func (m *Model) CoreInfluence() *matrix.Dense {
	m.coreInflOnce.Do(func() {
		inf := matrix.New(m.n, m.n)
		if m.sp == nil {
			for i := 0; i < m.n; i++ {
				for j := 0; j < m.n; j++ {
					inf.Set(i, j, m.binv.At(i, j))
				}
			}
		} else {
			p := make([]float64, m.N)
			x := make([]float64, m.N)
			scratch := make([]float64, m.N-1)
			for j := 0; j < m.n; j++ {
				p[j] = 1
				m.sp.solveInto(x, p, scratch)
				p[j] = 0
				for i := 0; i < m.n; i++ {
					inf.Set(i, j, x[i])
				}
			}
		}
		m.coreInfl = inf
	})
	return m.coreInfl
}

// G returns a copy of the ambient conductance vector.
func (m *Model) G() []float64 {
	out := make([]float64, len(m.g))
	copy(out, m.g)
	return out
}

// Eigen returns the factorization of A⁻¹B: positive eigenvalues Lambda,
// eigenvectors V and V⁻¹. The eigenvalues of C = −A⁻¹B are −Lambda. In
// sparse mode it returns nil — no eigendecomposition exists; transient
// evaluation goes through the Krylov Stepper and iterative consumers (the
// rotation calculator) must fall back to stepping. Callers must not modify
// the returned value.
func (m *Model) Eigen() *matrix.GeneralizedEigen { return m.eig }

// AmbientSteady returns the all-idle steady state B⁻¹·T_amb·G (= ambient at
// every node). The caller must not modify it.
func (m *Model) AmbientSteady() []float64 { return m.steadyAmbient }

// ExtendPower lifts a per-core power vector (length n) to a per-node vector
// (length N) with zeros on spreader and sink nodes.
func (m *Model) ExtendPower(coreWatts []float64) []float64 {
	p := make([]float64, m.N)
	m.ExtendPowerInto(p, coreWatts)
	return p
}

// ExtendPowerInto is the destination-passing form of ExtendPower: dst (length
// N) receives coreWatts on the core nodes and zeros elsewhere. No allocation.
func (m *Model) ExtendPowerInto(dst, coreWatts []float64) {
	if len(coreWatts) != m.n {
		panic(fmt.Sprintf("thermal: power vector length %d, want %d cores", len(coreWatts), m.n))
	}
	if len(dst) != m.N {
		panic(fmt.Sprintf("thermal: extended power destination length %d, want %d nodes", len(dst), m.N))
	}
	copy(dst, coreWatts)
	for i := m.n; i < m.N; i++ {
		dst[i] = 0
	}
}

// SteadyState solves Eq. 3: T_steady = B⁻¹P + B⁻¹·T_amb·G for a per-core
// power vector, returning the temperature of all N nodes in °C. Works in
// both solver modes; the zero-allocation twin is Stepper.SteadyStateInto.
func (m *Model) SteadyState(coreWatts []float64) []float64 {
	t := m.solveB(m.ExtendPower(coreWatts))
	matrix.VecAddTo(t, m.steadyAmbient)
	return t
}

// InitialTemps returns the simulation starting point: every node at ambient
// (the paper's T_init assumption in §IV).
func (m *Model) InitialTemps() []float64 {
	return matrix.Constant(m.N, m.cfg.Ambient)
}

// MaxCoreTemp returns the hottest core temperature in the node vector t.
func (m *Model) MaxCoreTemp(t []float64) float64 {
	return matrix.VecMax(t[:m.n])
}

// HottestCore returns the index of the hottest core in t.
func (m *Model) HottestCore(t []float64) int {
	return matrix.VecMaxIndex(t[:m.n])
}
