package rotation

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestQuickAnalyticMatchesBruteForceOnGrids is the differential sweep pinning
// Algorithm 1 to ground truth: on random 3×3 and 4×4 platforms with random
// rings, epoch lengths and power histories, the analytic peak (both the
// general Evaluate path and the allocation-free ring fast path) must agree
// with an explicit transient simulation run to convergence. The fastConfig
// capacitance compression keeps each brute-force case to a few hundred steps
// without moving any steady state.
func TestQuickAnalyticMatchesBruteForceOnGrids(t *testing.T) {
	type grid struct {
		w, h int
		c    *Calculator
		ev   *RingEvaluator
	}
	var grids []grid
	for _, wh := range [][2]int{{3, 3}, {4, 4}} {
		c := newCalc(t, wh[0], wh[1], fastConfig())
		grids = append(grids, grid{wh[0], wh[1], c, c.NewRingEvaluator()})
	}

	maxCount := 100
	if testing.Short() {
		maxCount = 25
	}
	cases := 0
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := grids[cases%len(grids)] // alternate grids deterministically
		cases++
		n := g.w * g.h

		// Random ring of 2–6 distinct cores, random background, random
		// per-slot power history with a deliberately hot slot so the peak is
		// ring-dominated in some cases and background-dominated in others.
		size := 2 + r.Intn(5)
		ring := r.Perm(n)[:size]
		base := make([]float64, n)
		for i := range base {
			base[i] = r.Float64() * 1.5
		}
		slotWatts := make([]float64, size)
		for i := range slotWatts {
			slotWatts[i] = r.Float64() * 6
		}
		slotWatts[r.Intn(size)] += 4
		tau := (0.4 + r.Float64()) * 1e-3

		plan := buildEquivalentPlan(tau, base, ring, slotWatts)
		analytic, err := g.c.PeakTemperature(plan)
		if err != nil {
			t.Logf("seed %d: Evaluate failed: %v", seed, err)
			return false
		}
		fast, err := g.ev.PeakRingRotation(tau, base, ring, slotWatts)
		if err != nil {
			t.Logf("seed %d: fast path failed: %v", seed, err)
			return false
		}
		if math.Abs(analytic-fast) > 1e-6 {
			t.Logf("seed %d: general %.6f vs ring fast path %.6f", seed, analytic, fast)
			return false
		}

		// Simulate ≥ 200 ms (compressed time constants) so even the slow sink
		// mode converges regardless of the random period length.
		periods := int(0.2/(tau*float64(size))) + 1
		brute, err := g.c.BruteForcePeak(plan, periods, 3)
		if err != nil {
			t.Logf("seed %d: brute force failed: %v", seed, err)
			return false
		}
		if math.Abs(analytic-brute) > 0.1 {
			t.Logf("seed %d (%dx%d ring %v τ=%g): analytic %.4f vs brute %.4f",
				seed, g.w, g.h, ring, tau, analytic, brute)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: maxCount}); err != nil {
		t.Error(err)
	}
	if cases < maxCount {
		t.Errorf("ran %d cases, want %d", cases, maxCount)
	}
}
