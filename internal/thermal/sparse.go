package thermal

import (
	"fmt"
	"math"

	"repro/internal/matrix"
)

// sparse.go implements the large-platform solver backend: the conductance
// matrix B is kept as CSR for matrix–vector products, its steady-state
// solves go through a banded Cholesky factorization with the sink node
// eliminated as an arrowhead border, and the transient propagator is a
// matrix-free Krylov expm·v kernel over the whitened operator
// Â = −A^{−1/2}·B·A^{−1/2}. Nothing of size N×N is ever materialized.
// docs/THEORY.md §"Sparse numerics" derives the structure; the decision
// table for dense vs sparse lives there too.
//
// Structure being exploited: B is a weighted graph Laplacian over the
// si/spreader grid — O(N) non-zeros, bandwidth O(grid width) under an RCM
// ordering — except for the sink node, which couples to every spreader cell
// and would ruin any bandwidth. Ordering the sink last turns B into an
// arrowhead matrix
//
//	B = P̃ᵀ · [ K  c ] · P̃ ,   K the RCM-permuted head block (banded SPD),
//	          [ cᵀ d ]         c the sink couplings, d the sink diagonal,
//
// whose Cholesky factor is [[L, 0], [lᵀ, λ]] with L = chol(K), l = L⁻¹c and
// λ = √(d − lᵀl) — one extra triangular solve at factorization time, two
// dot products per solve after that.
type sparseSolver struct {
	n  int         // thermal nodes N (sink = N−1 by model construction)
	bs *matrix.CSR // full B, CSR — the matvec substrate of the Krylov kernel

	// Whitening diagonals: sqrtA[i] = √a_i, invSqrtA[i] = 1/√a_i.
	sqrtA, invSqrtA []float64

	// Arrowhead banded factorization of the head block (nodes 0..N−2).
	order    []int // order[k] = head node placed at banded position k
	chol     *matrix.BandedCholesky
	arrowL   []float64 // l = L⁻¹·c in banded positions
	arrowLam float64   // λ = √(d − lᵀl), the sink pivot
}

// newSparseSolver builds the sparse backend from the assembled conductance
// matrix (node N−1 must be the sink — the only dense-coupled row) and the
// capacitance diagonal. Factorization failure means B is not SPD, i.e. the
// model is not dissipative.
func newSparseSolver(bs *matrix.CSR, aDiag []float64) (*sparseSolver, error) {
	N := bs.Rows()
	sink := N - 1

	// Split B into head block, sink couplings c and sink diagonal d. The
	// head keeps its own builder so RCM sees only the banded structure.
	head := matrix.NewSparseBuilder(N-1, N-1)
	c := make([]float64, N-1)
	var d float64
	bs.Range(func(i, j int, v float64) {
		switch {
		case i == sink && j == sink:
			d = v
		case i == sink:
			c[j] += v // symmetric: the (j, sink) copies carry the same values
		case j == sink:
			// counted via the sink row
		default:
			head.Add(i, j, v)
		}
	})
	hcsr := head.ToCSR()

	order := matrix.RCMOrder(hcsr)
	pos := make([]int, N-1)
	for k, v := range order {
		pos[v] = k
	}
	bw := matrix.BandwidthUnder(hcsr, order)
	bandK := matrix.NewSymBanded(N-1, bw)
	hcsr.Range(func(i, j int, v float64) {
		// Each off-diagonal coupling is stored in both triangles; take
		// exactly one copy per banded slot.
		if pi, pj := pos[i], pos[j]; pi > pj || i == j {
			bandK.Add(pi, pj, v)
		}
	})

	chol, err := matrix.FactorBandedCholesky(bandK)
	if err != nil {
		return nil, fmt.Errorf("thermal: conductance head block not SPD: %w", err)
	}

	// Border column of the arrowhead factor: l = L⁻¹·c (in banded positions)
	// and the sink pivot λ² = d − lᵀl, positive iff B is SPD.
	cperm := make([]float64, N-1)
	for k, v := range order {
		cperm[k] = c[v]
	}
	arrowL := make([]float64, N-1)
	chol.ForwardTo(arrowL, cperm)
	lam2 := d - matrix.Dot(arrowL, arrowL)
	if lam2 <= 0 {
		return nil, fmt.Errorf("thermal: conductance matrix not SPD (sink Schur complement %g)", lam2)
	}

	sqrtA := make([]float64, N)
	invSqrtA := make([]float64, N)
	for i, a := range aDiag {
		s := math.Sqrt(a)
		sqrtA[i] = s
		invSqrtA[i] = 1 / s
	}

	return &sparseSolver{
		n: N, bs: bs,
		sqrtA: sqrtA, invSqrtA: invSqrtA,
		order: order, chol: chol,
		arrowL: arrowL, arrowLam: math.Sqrt(lam2),
	}, nil
}

// solveInto solves B·x = p into dst in O(N·k) with no allocation. scratch
// must have length N−1 and must alias neither dst nor p; dst may alias p
// (all of p is read before dst is written).
func (s *sparseSolver) solveInto(dst, p, scratch []float64) {
	N := s.n
	if len(dst) != N || len(p) != N {
		panic(fmt.Sprintf("thermal: sparse solve got dst %d, rhs %d, want %d", len(dst), len(p), N))
	}
	if len(scratch) != N-1 {
		panic(fmt.Sprintf("thermal: sparse solve scratch length %d, want %d", len(scratch), N-1))
	}
	// Forward sweep of the arrowhead factor: L·z_h = b_h, then the border
	// row λ·z_s = b_s − lᵀ·z_h.
	for k := 0; k < N-1; k++ {
		scratch[k] = p[s.order[k]]
	}
	s.chol.ForwardTo(scratch, scratch)
	zs := (p[N-1] - matrix.Dot(s.arrowL, scratch)) / s.arrowLam
	// Backward sweep: λ·x_s = z_s, then Lᵀ·x_h = z_h − l·x_s.
	xs := zs / s.arrowLam
	for k := 0; k < N-1; k++ {
		scratch[k] -= s.arrowL[k] * xs
	}
	s.chol.BackwardTo(scratch, scratch)
	for k := 0; k < N-1; k++ {
		dst[s.order[k]] = scratch[k]
	}
	dst[N-1] = xs
}

// bandwidth returns the half-bandwidth of the factored head block — a
// diagnostic for tests and the performance docs.
func (s *sparseSolver) bandwidth() int { return s.chol.Bandwidth() }

// whitenedOp is the symmetric negative semidefinite operator
// Â = −A^{−1/2}·B·A^{−1/2} as a matrix-free matrix.SymOp: one CSR matvec
// plus two diagonal scalings per application, O(nnz). It owns matvec
// scratch, so — like the Stepper that embeds it — it is confined to one
// goroutine at a time; the CSR and diagonals it reads stay shared.
type whitenedOp struct {
	bs       *matrix.CSR
	invSqrtA []float64
	tmp      []float64
}

func newWhitenedOp(s *sparseSolver) *whitenedOp {
	return &whitenedOp{bs: s.bs, invSqrtA: s.invSqrtA, tmp: make([]float64, s.n)}
}

// Dim returns the operator dimension N.
func (o *whitenedOp) Dim() int { return len(o.invSqrtA) }

// MulVecTo computes dst = Â·x with no allocation; dst must not alias x
// (the matrix.SymOp contract).
func (o *whitenedOp) MulVecTo(dst, x []float64) {
	for i, v := range x {
		o.tmp[i] = o.invSqrtA[i] * v
	}
	o.bs.MulVecTo(dst, o.tmp)
	for i := range dst {
		dst[i] *= -o.invSqrtA[i]
	}
}
