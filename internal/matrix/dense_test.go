package matrix

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewZeroed(t *testing.T) {
	m := New(3, 4)
	if m.Rows() != 3 || m.Cols() != 4 {
		t.Fatalf("got %dx%d, want 3x4", m.Rows(), m.Cols())
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Fatalf("New not zeroed at (%d,%d)", i, j)
			}
		}
	}
}

func TestNewPanicsOnBadDims(t *testing.T) {
	for _, dims := range [][2]int{{0, 1}, {1, 0}, {-1, 2}, {2, -3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) did not panic", dims[0], dims[1])
				}
			}()
			New(dims[0], dims[1])
		}()
	}
}

func TestNewFromRows(t *testing.T) {
	m := NewFromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if m.Rows() != 3 || m.Cols() != 2 {
		t.Fatalf("shape: got %dx%d", m.Rows(), m.Cols())
	}
	if m.At(2, 1) != 6 || m.At(0, 0) != 1 || m.At(1, 0) != 3 {
		t.Fatalf("wrong contents:\n%v", m)
	}
}

func TestNewFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("ragged NewFromRows did not panic")
		}
	}()
	NewFromRows([][]float64{{1, 2}, {3}})
}

func TestSetAtAdd(t *testing.T) {
	m := New(2, 2)
	m.Set(0, 1, 5)
	m.Add(0, 1, 2.5)
	if got := m.At(0, 1); got != 7.5 {
		t.Fatalf("At(0,1) = %v, want 7.5", got)
	}
}

func TestAtOutOfRangePanics(t *testing.T) {
	m := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range At did not panic")
		}
	}()
	m.At(2, 0)
}

func TestIdentityAndDiagonal(t *testing.T) {
	id := Identity(3)
	d := Diagonal([]float64{1, 1, 1})
	if !id.ApproxEqual(d, 0) {
		t.Fatal("Identity(3) != Diagonal(ones)")
	}
}

func TestCloneIndependence(t *testing.T) {
	m := NewFromRows([][]float64{{1, 2}, {3, 4}})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestRowColCopies(t *testing.T) {
	m := NewFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	r := m.Row(1)
	c := m.Col(2)
	if r[0] != 4 || r[2] != 6 {
		t.Fatalf("Row(1) = %v", r)
	}
	if c[0] != 3 || c[1] != 6 {
		t.Fatalf("Col(2) = %v", c)
	}
	r[0] = -1
	c[0] = -1
	if m.At(1, 0) != 4 || m.At(0, 2) != 3 {
		t.Fatal("Row/Col returned views, want copies")
	}
}

func TestMulAgainstHandComputed(t *testing.T) {
	a := NewFromRows([][]float64{{1, 2}, {3, 4}})
	b := NewFromRows([][]float64{{5, 6}, {7, 8}})
	got := a.Mul(b)
	want := NewFromRows([][]float64{{19, 22}, {43, 50}})
	if !got.ApproxEqual(want, 1e-12) {
		t.Fatalf("a*b =\n%vwant\n%v", got, want)
	}
}

func TestMulShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched Mul did not panic")
		}
	}()
	New(2, 3).Mul(New(2, 3))
}

func TestMulVec(t *testing.T) {
	a := NewFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	got := a.MulVec([]float64{1, 0, -1})
	if got[0] != -2 || got[1] != -2 {
		t.Fatalf("MulVec = %v, want [-2 -2]", got)
	}
}

func TestTranspose(t *testing.T) {
	a := NewFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	at := a.Transpose()
	if at.Rows() != 3 || at.Cols() != 2 {
		t.Fatalf("shape %dx%d", at.Rows(), at.Cols())
	}
	if at.At(2, 1) != 6 || at.At(0, 1) != 4 {
		t.Fatalf("wrong transpose:\n%v", at)
	}
}

func TestNorms(t *testing.T) {
	a := NewFromRows([][]float64{{3, -4}, {0, 0}})
	if got := a.FrobeniusNorm(); math.Abs(got-5) > 1e-12 {
		t.Errorf("Frobenius = %v, want 5", got)
	}
	if got := a.InfNorm(); got != 7 {
		t.Errorf("InfNorm = %v, want 7", got)
	}
	if got := a.MaxAbs(); got != 4 {
		t.Errorf("MaxAbs = %v, want 4", got)
	}
}

func TestIsSymmetric(t *testing.T) {
	s := NewFromRows([][]float64{{2, 1}, {1, 2}})
	if !s.IsSymmetric(0) {
		t.Error("symmetric matrix reported asymmetric")
	}
	a := NewFromRows([][]float64{{2, 1}, {0, 2}})
	if a.IsSymmetric(1e-12) {
		t.Error("asymmetric matrix reported symmetric")
	}
	if New(2, 3).IsSymmetric(1) {
		t.Error("non-square matrix reported symmetric")
	}
}

func randomDense(rng *rand.Rand, rows, cols int) *Dense {
	m := New(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			m.Set(i, j, rng.NormFloat64())
		}
	}
	return m
}

// Property: (A*B)ᵀ = Bᵀ*Aᵀ.
func TestPropTransposeOfProduct(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(6)
		m := 1 + r.Intn(6)
		k := 1 + r.Intn(6)
		a := randomDense(r, n, m)
		b := randomDense(r, m, k)
		lhs := a.Mul(b).Transpose()
		rhs := b.Transpose().Mul(a.Transpose())
		return lhs.ApproxEqual(rhs, 1e-10)
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: matrix multiplication is associative.
func TestPropMulAssociative(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(5)
		a := randomDense(r, n, n)
		b := randomDense(r, n, n)
		c := randomDense(r, n, n)
		lhs := a.Mul(b).Mul(c)
		rhs := a.Mul(b.Mul(c))
		return lhs.ApproxEqual(rhs, 1e-8*(1+lhs.MaxAbs()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: distributivity A(B+C) = AB + AC.
func TestPropMulDistributive(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(5)
		a := randomDense(r, n, n)
		b := randomDense(r, n, n)
		c := randomDense(r, n, n)
		lhs := a.Mul(b.Plus(c))
		rhs := a.Mul(b).Plus(a.Mul(c))
		return lhs.ApproxEqual(rhs, 1e-9*(1+lhs.MaxAbs()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: MulVec agrees with Mul against a one-column matrix.
func TestPropMulVecConsistent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(7)
		m := 1 + r.Intn(7)
		a := randomDense(r, n, m)
		x := make([]float64, m)
		xm := New(m, 1)
		for i := range x {
			x[i] = r.NormFloat64()
			xm.Set(i, 0, x[i])
		}
		y := a.MulVec(x)
		ym := a.Mul(xm)
		for i := range y {
			if math.Abs(y[i]-ym.At(i, 0)) > 1e-10 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestScaledAndArithmetic(t *testing.T) {
	a := NewFromRows([][]float64{{1, -2}, {0, 3}})
	if got := a.Scaled(2).At(1, 1); got != 6 {
		t.Errorf("Scaled: got %v", got)
	}
	sum := a.Plus(a.Scaled(-1))
	if sum.MaxAbs() != 0 {
		t.Errorf("a + (-a) != 0:\n%v", sum)
	}
	diff := a.Minus(a)
	if diff.MaxAbs() != 0 {
		t.Errorf("a - a != 0:\n%v", diff)
	}
}

func TestStringRendersAllEntries(t *testing.T) {
	s := NewFromRows([][]float64{{1.5, -2}, {0, 42}}).String()
	for _, want := range []string{"1.5", "-2", "42"} {
		if !containsStr(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}

func containsStr(haystack, needle string) bool {
	return len(haystack) >= len(needle) && indexStr(haystack, needle) >= 0
}

func indexStr(haystack, needle string) int {
	for i := 0; i+len(needle) <= len(haystack); i++ {
		if haystack[i:i+len(needle)] == needle {
			return i
		}
	}
	return -1
}
