package sched

import (
	"math"
	"testing"

	"repro/internal/sim"
	"repro/internal/workload"
)

func testPlatform(t testing.TB, w, h int) *sim.Platform {
	t.Helper()
	plat, err := sim.NewPlatform(sim.DefaultPlatformConfig(w, h))
	if err != nil {
		t.Fatal(err)
	}
	return plat
}

func mustTask(t testing.TB, id int, bench string, threads int, arrival, scale float64) *workload.Task {
	t.Helper()
	b, err := workload.ByName(bench)
	if err != nil {
		t.Fatal(err)
	}
	task, err := workload.NewTask(id, b, threads, arrival, scale)
	if err != nil {
		t.Fatal(err)
	}
	return task
}

func runSim(t testing.TB, plat *sim.Platform, cfg sim.Config, sch sim.Scheduler, tasks []*workload.Task) *sim.Result {
	t.Helper()
	s, err := sim.New(plat, cfg, sch, tasks)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestHelperFreeCores(t *testing.T) {
	free := freeCores(4, map[sim.ThreadID]int{{Task: 0, Thread: 0}: 1, {Task: 0, Thread: 1}: 3})
	if len(free) != 2 || free[0] != 0 || free[1] != 2 {
		t.Fatalf("freeCores = %v", free)
	}
}

func TestHelperQueuedTasksOrderAndGrouping(t *testing.T) {
	st := &sim.State{
		Threads: []sim.ThreadInfo{
			{ID: sim.ThreadID{Task: 2, Thread: 0}, Core: -1, Arrival: 1.0},
			{ID: sim.ThreadID{Task: 1, Thread: 1}, Core: -1, Arrival: 0.5},
			{ID: sim.ThreadID{Task: 1, Thread: 0}, Core: -1, Arrival: 0.5},
			{ID: sim.ThreadID{Task: 3, Thread: 0}, Core: 4, Arrival: 0.1}, // mapped: excluded
		},
	}
	groups := queuedTasks(st)
	if len(groups) != 2 {
		t.Fatalf("groups = %d", len(groups))
	}
	if groups[0].taskID != 1 || groups[1].taskID != 2 {
		t.Fatalf("order = %d,%d", groups[0].taskID, groups[1].taskID)
	}
	// Workers before master within a group.
	if groups[0].threads[0].ID.Thread != 1 || groups[0].threads[1].ID.Thread != 0 {
		t.Fatalf("within-group order = %v", groups[0].threads)
	}
}

func TestStaticPinsAndName(t *testing.T) {
	plat := testPlatform(t, 4, 4)
	pins := map[sim.ThreadID]int{
		{Task: 0, Thread: 0}: 5,
		{Task: 0, Thread: 1}: 10,
	}
	sch := NewStatic(pins, 0)
	if sch.Name() != "static" {
		t.Errorf("name = %q", sch.Name())
	}
	st := &sim.State{
		Platform: plat,
		Threads: []sim.ThreadInfo{
			{ID: sim.ThreadID{Task: 0, Thread: 0}},
			{ID: sim.ThreadID{Task: 0, Thread: 1}},
			{ID: sim.ThreadID{Task: 9, Thread: 0}}, // unpinned: stays queued
		},
	}
	dec := sch.Decide(st)
	if dec.Assignment[sim.ThreadID{Task: 0, Thread: 0}] != 5 {
		t.Error("pin not honoured")
	}
	if _, ok := dec.Assignment[sim.ThreadID{Task: 9, Thread: 0}]; ok {
		t.Error("unpinned thread assigned")
	}
}

func TestRotationStaticValidation(t *testing.T) {
	if _, err := NewRotationStatic(nil, []int{1, 2}, 0); err == nil {
		t.Error("zero τ accepted")
	}
	if _, err := NewRotationStatic(nil, nil, 1e-3); err == nil {
		t.Error("empty cycle accepted")
	}
	if _, err := NewRotationStatic(nil, []int{1, 1}, 1e-3); err == nil {
		t.Error("duplicate core accepted")
	}
	if _, err := NewRotationStatic(map[sim.ThreadID]int{{}: 5}, []int{1, 2}, 1e-3); err == nil {
		t.Error("out-of-range slot accepted")
	}
}

func TestRotationStaticVisitsAllCores(t *testing.T) {
	id := sim.ThreadID{Task: 0, Thread: 0}
	sch, err := NewRotationStatic(map[sim.ThreadID]int{id: 0}, []int{5, 6, 10, 9}, 0.5e-3)
	if err != nil {
		t.Fatal(err)
	}
	plat := testPlatform(t, 4, 4)
	visited := map[int]bool{}
	for step := 0; step < 4; step++ {
		st := &sim.State{
			Time:     float64(step) * 0.5e-3,
			Platform: plat,
			Threads:  []sim.ThreadInfo{{ID: id}},
		}
		dec := sch.Decide(st)
		visited[dec.Assignment[id]] = true
		if dec.NextInvoke != 0.5e-3 {
			t.Fatalf("NextInvoke = %v", dec.NextInvoke)
		}
	}
	if len(visited) != 4 {
		t.Fatalf("visited %d cores, want 4: %v", len(visited), visited)
	}
}

func TestRotationStaticSynchronous(t *testing.T) {
	// Two threads two slots apart must always stay two slots apart.
	a := sim.ThreadID{Task: 0, Thread: 0}
	b := sim.ThreadID{Task: 0, Thread: 1}
	cores := []int{5, 6, 10, 9}
	sch, err := NewRotationStatic(map[sim.ThreadID]int{a: 0, b: 2}, cores, 0.5e-3)
	if err != nil {
		t.Fatal(err)
	}
	plat := testPlatform(t, 4, 4)
	pos := func(core int) int {
		for i, c := range cores {
			if c == core {
				return i
			}
		}
		return -1
	}
	for step := 0; step < 8; step++ {
		st := &sim.State{
			Time:     float64(step) * 0.5e-3,
			Platform: plat,
			Threads:  []sim.ThreadInfo{{ID: a}, {ID: b}},
		}
		dec := sch.Decide(st)
		d := (pos(dec.Assignment[b]) - pos(dec.Assignment[a]) + 4) % 4
		if d != 2 {
			t.Fatalf("step %d: threads %d slots apart, want 2", step, d)
		}
	}
}

func TestTSPBudgetProperties(t *testing.T) {
	plat := testPlatform(t, 4, 4)
	if got := TSPBudget(plat, nil, 70); !math.IsInf(got, 1) {
		t.Errorf("budget with no active cores = %v, want +Inf", got)
	}
	// Fewer active cores → larger budget.
	few := TSPBudget(plat, []int{5}, 70)
	many := TSPBudget(plat, []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15}, 70)
	if few <= many {
		t.Errorf("budget(1 core)=%v not above budget(16 cores)=%v", few, many)
	}
	// Higher threshold → larger budget.
	low := TSPBudget(plat, []int{5, 10}, 60)
	high := TSPBudget(plat, []int{5, 10}, 80)
	if high <= low {
		t.Errorf("budget not monotone in threshold: %v vs %v", low, high)
	}
}

func TestTSPBudgetIsThermallySafe(t *testing.T) {
	// The defining property: running every active core exactly at the budget
	// (others idle) must not exceed the threshold in steady state.
	plat := testPlatform(t, 4, 4)
	for _, active := range [][]int{{5}, {5, 10}, {5, 6, 9, 10}, {0, 3, 12, 15}} {
		budget := TSPBudget(plat, active, 70)
		p := make([]float64, 16)
		for i := range p {
			p[i] = plat.Power.IdleWatts
		}
		for _, c := range active {
			p[c] = budget
		}
		ss := plat.Thermal.SteadyState(p)
		if got := plat.Thermal.MaxCoreTemp(ss); got > 70+1e-6 {
			t.Errorf("active %v at budget %.2f W: steady max %.3f > 70", active, budget, got)
		}
		// And it is tight: 10% more power must breach.
		for _, c := range active {
			p[c] = budget * 1.1
		}
		ss = plat.Thermal.SteadyState(p)
		if got := plat.Thermal.MaxCoreTemp(ss); got <= 70 {
			t.Errorf("active %v: budget not tight (%.3f at +10%%)", active, got)
		}
	}
}

func TestTSPGovernorKeepsThermalLimit(t *testing.T) {
	// The Fig. 2(b) policy: thermally safe but slower than unmanaged.
	plat := testPlatform(t, 4, 4)
	pins := map[sim.ThreadID]int{
		{Task: 0, Thread: 0}: 5,
		{Task: 0, Thread: 1}: 10,
	}
	cfg := sim.DefaultConfig()
	cfg.DTMEnabled = false // expose the governor's own safety
	res := runSim(t, plat, cfg, NewTSPGovernor(pins, 70),
		[]*workload.Task{mustTask(t, 0, "blackscholes", 2, 0, 1)})
	if res.PeakTemp > 70.2 {
		t.Errorf("TSP peak %.2f > 70 °C", res.PeakTemp)
	}
	resStatic := runSim(t, plat, cfg, NewStatic(pins, 0),
		[]*workload.Task{mustTask(t, 0, "blackscholes", 2, 0, 1)})
	if res.Makespan <= resStatic.Makespan {
		t.Errorf("TSP (%.1fms) not slower than unmanaged (%.1fms)",
			res.Makespan*1e3, resStatic.Makespan*1e3)
	}
}

func TestPCMigAdmissionMapsMemoryBoundInward(t *testing.T) {
	plat := testPlatform(t, 4, 4)
	sch := NewPCMig(70)
	// One canneal (memory-bound) and one swaptions (compute-bound) thread.
	st := &sim.State{
		Platform:  plat,
		CoreTemps: make([]float64, 16),
		Threads: []sim.ThreadInfo{
			{ID: sim.ThreadID{Task: 0, Thread: 0}, Core: -1, CPI: 3.5, AvgPower: 2, Arrival: 0},
			{ID: sim.ThreadID{Task: 0, Thread: 1}, Core: -1, CPI: 0.9, AvgPower: 8, Arrival: 0},
		},
	}
	for i := range st.CoreTemps {
		st.CoreTemps[i] = 50
	}
	dec := sch.Decide(st)
	memCore := dec.Assignment[sim.ThreadID{Task: 0, Thread: 0}]
	cmpCore := dec.Assignment[sim.ThreadID{Task: 0, Thread: 1}]
	if plat.FP.AMD(memCore) > plat.FP.AMD(cmpCore) {
		t.Errorf("memory-bound thread on AMD %.2f, compute-bound on %.2f",
			plat.FP.AMD(memCore), plat.FP.AMD(cmpCore))
	}
}

func TestPCMigGangAdmissionFIFO(t *testing.T) {
	plat := testPlatform(t, 2, 2) // 4 cores
	sch := NewPCMig(70)
	// Task 0 (arrival 0) needs 3 cores, task 1 (arrival 1ms) needs 2: only
	// task 0 fits; task 1 must wait even though 1 core stays free.
	threads := []sim.ThreadInfo{
		{ID: sim.ThreadID{Task: 0, Thread: 0}, Core: -1, Arrival: 0},
		{ID: sim.ThreadID{Task: 0, Thread: 1}, Core: -1, Arrival: 0},
		{ID: sim.ThreadID{Task: 0, Thread: 2}, Core: -1, Arrival: 0},
		{ID: sim.ThreadID{Task: 1, Thread: 0}, Core: -1, Arrival: 1e-3},
		{ID: sim.ThreadID{Task: 1, Thread: 1}, Core: -1, Arrival: 1e-3},
	}
	st := &sim.State{Platform: plat, CoreTemps: make([]float64, 4), Threads: threads}
	dec := sch.Decide(st)
	for i := 0; i < 3; i++ {
		if _, ok := dec.Assignment[sim.ThreadID{Task: 0, Thread: i}]; !ok {
			t.Fatalf("task 0 thread %d not admitted", i)
		}
	}
	for i := 0; i < 2; i++ {
		if _, ok := dec.Assignment[sim.ThreadID{Task: 1, Thread: i}]; ok {
			t.Fatalf("task 1 admitted before task 0 finished (gang violation)")
		}
	}
}

func TestPCMigAsyncMigrationOnHotCore(t *testing.T) {
	plat := testPlatform(t, 4, 4)
	sch := NewPCMig(70)
	id := sim.ThreadID{Task: 0, Thread: 0}
	st := &sim.State{
		Platform:  plat,
		CoreTemps: make([]float64, 16),
		Threads:   []sim.ThreadInfo{{ID: id, Core: -1, CPI: 1, AvgPower: 5}},
	}
	for i := range st.CoreTemps {
		st.CoreTemps[i] = 50
	}
	dec := sch.Decide(st)
	core := dec.Assignment[id]

	// Now the thread's core runs hot; everything else is cool.
	st2 := &sim.State{
		Platform:  plat,
		CoreTemps: make([]float64, 16),
		Threads:   []sim.ThreadInfo{{ID: id, Core: core, CPI: 1, AvgPower: 5}},
	}
	for i := range st2.CoreTemps {
		st2.CoreTemps[i] = 50
	}
	st2.CoreTemps[core] = 69.8
	dec2 := sch.Decide(st2)
	if dec2.Assignment[id] == core {
		t.Error("PCMig did not migrate away from a near-threshold core")
	}
}

func TestPCMigThermalSafetyEndToEnd(t *testing.T) {
	// Full-load 16-core blackscholes: PCMig must keep the chip essentially
	// at or below the threshold (brief DTM excursions at phase changes are
	// tolerated, sustained violation is not).
	plat := testPlatform(t, 4, 4)
	b, _ := workload.ByName("blackscholes")
	specs, err := workload.HomogeneousFullLoad(b, 16, []int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	tasks, err := workload.Instantiate(specs)
	if err != nil {
		t.Fatal(err)
	}
	for _, task := range tasks {
		task.WorkScale = 0.5
	}
	res := runSim(t, plat, sim.DefaultConfig(), NewPCMig(70), tasks)
	if res.PeakTemp > 71.5 {
		t.Errorf("PCMig peak %.2f °C, want ≈≤ 70", res.PeakTemp)
	}
	if res.DTMTime > 0.1*res.Makespan {
		t.Errorf("PCMig spent %.1f%% of the run in DTM", 100*res.DTMTime/res.Makespan)
	}
}

func TestReactiveGovernor(t *testing.T) {
	plat := testPlatform(t, 4, 4)
	r := NewReactive(70)
	if r.Name() != "reactive" {
		t.Errorf("name = %q", r.Name())
	}
	id := sim.ThreadID{Task: 0, Thread: 0}
	mkState := func(temp float64, core int) *sim.State {
		temps := make([]float64, 16)
		for i := range temps {
			temps[i] = 50
		}
		info := sim.ThreadInfo{ID: id, Core: core, CPI: 1, AvgPower: 8}
		st := &sim.State{Platform: plat, CoreTemps: temps, Threads: []sim.ThreadInfo{info}}
		if core >= 0 {
			st.CoreTemps[core] = temp
		}
		return st
	}
	dec := r.Decide(mkState(50, -1))
	core := dec.Assignment[id]
	fmax := plat.Power.DVFS().FMax
	if dec.Freq[core] != fmax {
		t.Fatal("cool core not at peak frequency")
	}
	// Hot core steps down by one DVFS level per epoch.
	dec = r.Decide(mkState(69.5, core))
	if dec.Freq[core] >= fmax {
		t.Fatal("hot core did not step down")
	}
	down := dec.Freq[core]
	// Cooled core steps back up.
	dec = r.Decide(mkState(55, core))
	if dec.Freq[core] <= down {
		t.Fatal("cooled core did not step up")
	}
}

func TestReactiveEndToEndThermallyBounded(t *testing.T) {
	// The naive governor must still keep the chip near the threshold (DTM
	// as backstop), just less efficiently than the model-driven policies.
	plat := testPlatform(t, 4, 4)
	b, _ := workload.ByName("blackscholes")
	specs, err := workload.HomogeneousFullLoad(b, 16, []int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	tasks, err := workload.Instantiate(specs)
	if err != nil {
		t.Fatal(err)
	}
	for _, task := range tasks {
		task.WorkScale = 0.5
	}
	res := runSim(t, plat, sim.DefaultConfig(), NewReactive(70), tasks)
	if res.PeakTemp > 73 {
		t.Errorf("reactive peak %.2f °C", res.PeakTemp)
	}
	for _, ts := range res.Tasks {
		if ts.Finish < 0 {
			t.Fatal("reactive run did not finish")
		}
	}
}

func TestAsyncMigrateFleesHotCore(t *testing.T) {
	plat := testPlatform(t, 4, 4)
	a := NewAsyncMigrate(70)
	if a.Name() != "async-migration" {
		t.Errorf("name = %q", a.Name())
	}
	id := sim.ThreadID{Task: 0, Thread: 0}
	temps := make([]float64, 16)
	for i := range temps {
		temps[i] = 50
	}
	st := &sim.State{Platform: plat, CoreTemps: temps,
		Threads: []sim.ThreadInfo{{ID: id, Core: -1, CPI: 1, AvgPower: 8}}}
	dec := a.Decide(st)
	core := dec.Assignment[id]
	if dec.Freq != nil {
		t.Fatal("async-migration must not use DVFS")
	}
	st.CoreTemps[core] = 69
	st.Threads[0].Core = core
	dec = a.Decide(st)
	if dec.Assignment[id] == core {
		t.Error("thread not migrated off the hot core")
	}
}

func TestSynchronousBeatsAsynchronous(t *testing.T) {
	// The paper's central claim in isolation: on a hot full load, periodic
	// synchronous rotation (HotPotato) sustains more performance than
	// on-demand asynchronous migration at the same peak frequency, because
	// the async policy lets hotspots form before reacting (DTM bites).
	b, _ := workload.ByName("blackscholes")
	mk := func() []*workload.Task {
		specs, err := workload.HomogeneousFullLoad(b, 16, []int{2, 4})
		if err != nil {
			t.Fatal(err)
		}
		tasks, err := workload.Instantiate(specs)
		if err != nil {
			t.Fatal(err)
		}
		return tasks
	}
	platA := testPlatform(t, 4, 4)
	async := runSim(t, platA, sim.DefaultConfig(), NewAsyncMigrate(70), mk())
	platS := testPlatform(t, 4, 4)
	syncR := runSim(t, platS, sim.DefaultConfig(), NewHotPotato(platS, 70), mk())
	if syncR.Makespan >= async.Makespan {
		t.Errorf("synchronous (%.1f ms) not faster than asynchronous (%.1f ms)",
			syncR.Makespan*1e3, async.Makespan*1e3)
	}
	if async.DTMTime <= syncR.DTMTime {
		t.Errorf("async DTM time %.1f ms not above synchronous %.1f ms",
			async.DTMTime*1e3, syncR.DTMTime*1e3)
	}
}
